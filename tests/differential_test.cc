// Differential correctness harness: every generated query runs through the
// real engine — under a matrix of strategic kill switches and storage
// layouts — and through the deliberately naive reference interpreter in
// src/testing. Any disagreement fails with a self-contained repro (data
// seed, query seed, table specs, SQL, config) that regenerates the case
// exactly.
//
// Environment knobs:
//   TDE_DIFF_SEEDS      number of query seeds to sweep (default 240)
//   TDE_DIFF_DATA_SEED  dataset seed (default 1)
//   TDE_DIFF_ROWS       fact-table rows (default 900)
//   TDE_DIFF_SEG_ROWS   rows per segment in the segmented layout (default 256)

#include <algorithm>
#include <cstdlib>
#include <map>
#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "src/core/engine.h"
#include "src/exec/scheduler.h"
#include "src/plan/strategic.h"
#include "src/sql/parser.h"
#include "src/testing/genquery.h"
#include "src/testing/reference.h"

namespace tde {
namespace {

uint64_t EnvU64(const char* name, uint64_t fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  return std::strtoull(v, nullptr, 10);
}

/// A result rendered to strings, the common currency both sides are
/// compared in. Rendering rules match on both sides by construction
/// (RefValueString mirrors QueryResult::ValueString).
struct Rendered {
  std::vector<std::string> names;
  std::vector<std::vector<std::string>> rows;
};

Rendered RenderEngine(const QueryResult& r) {
  Rendered out;
  for (size_t c = 0; c < r.schema().num_fields(); ++c) {
    out.names.push_back(r.schema().field(c).name);
  }
  out.rows.resize(r.num_rows());
  for (uint64_t i = 0; i < r.num_rows(); ++i) {
    out.rows[i].reserve(out.names.size());
    for (size_t c = 0; c < out.names.size(); ++c) {
      out.rows[i].push_back(r.ValueString(i, c));
    }
  }
  return out;
}

Rendered RenderOracle(const testing::RefResult& r) {
  Rendered out;
  for (const auto& f : r.fields) out.names.push_back(f.name);
  out.rows.resize(r.rows.size());
  for (size_t i = 0; i < r.rows.size(); ++i) {
    out.rows[i].reserve(r.rows[i].size());
    for (const auto& v : r.rows[i]) {
      out.rows[i].push_back(testing::RefValueString(v));
    }
  }
  return out;
}

std::string RowToString(const std::vector<std::string>& row) {
  std::string s = "[";
  for (size_t i = 0; i < row.size(); ++i) {
    if (i > 0) s += ", ";
    s += row[i];
  }
  return s + "]";
}

std::string Preview(const std::vector<std::vector<std::string>>& rows,
                    size_t limit = 6) {
  std::string s;
  for (size_t i = 0; i < rows.size() && i < limit; ++i) {
    s += "    " + RowToString(rows[i]) + "\n";
  }
  if (rows.size() > limit) {
    s += "    ... (" + std::to_string(rows.size()) + " rows total)\n";
  }
  return s;
}

/// Compares engine output against the oracle. `oracle` has the query's
/// LIMIT applied; `oracle_full` is the same result without the top-level
/// LIMIT (identical object when the query has none). Returns "" on
/// agreement, otherwise a description of the first disagreement.
std::string CompareResults(const testing::GeneratedQuery& q,
                           const Rendered& oracle, const Rendered& oracle_full,
                           const Rendered& engine) {
  if (engine.names != oracle.names) {
    std::string s = "output schema differs\n  oracle: ";
    s += RowToString(oracle.names) + "\n  engine: " + RowToString(engine.names);
    return s;
  }
  if (q.has_order_by) {
    // Generated ORDER BY lists are total orders: compare positionally.
    if (engine.rows.size() != oracle.rows.size()) {
      return "row count differs (ordered): oracle " +
             std::to_string(oracle.rows.size()) + ", engine " +
             std::to_string(engine.rows.size()) + "\n  oracle:\n" +
             Preview(oracle.rows) + "  engine:\n" + Preview(engine.rows);
    }
    for (size_t i = 0; i < engine.rows.size(); ++i) {
      if (engine.rows[i] != oracle.rows[i]) {
        return "row " + std::to_string(i) + " differs (ordered)\n  oracle: " +
               RowToString(oracle.rows[i]) +
               "\n  engine: " + RowToString(engine.rows[i]);
      }
    }
    return "";
  }
  if (q.has_limit) {
    // Unordered LIMIT: any `limit`-sized sub-multiset of the full result
    // is correct.
    const size_t want =
        std::min<size_t>(q.limit, oracle_full.rows.size());
    if (engine.rows.size() != want) {
      return "row count differs (unordered LIMIT " + std::to_string(q.limit) +
             "): expected " + std::to_string(want) + ", engine " +
             std::to_string(engine.rows.size());
    }
    auto full = oracle_full.rows;
    auto got = engine.rows;
    std::sort(full.begin(), full.end());
    std::sort(got.begin(), got.end());
    size_t j = 0;
    for (const auto& row : got) {
      while (j < full.size() && full[j] < row) ++j;
      if (j == full.size() || full[j] != row) {
        return "engine row not in full oracle result (unordered LIMIT)\n"
               "  engine row: " +
               RowToString(row);
      }
      ++j;
    }
    return "";
  }
  // Unordered, no LIMIT: multiset equality.
  auto want = oracle.rows;
  auto got = engine.rows;
  std::sort(want.begin(), want.end());
  std::sort(got.begin(), got.end());
  if (want == got) return "";
  if (want.size() != got.size()) {
    return "row count differs (unordered): oracle " +
           std::to_string(want.size()) + ", engine " +
           std::to_string(got.size()) + "\n  oracle:\n" + Preview(want) +
           "  engine:\n" + Preview(got);
  }
  for (size_t i = 0; i < want.size(); ++i) {
    if (want[i] != got[i]) {
      return "multiset mismatch at sorted position " + std::to_string(i) +
             "\n  oracle: " + RowToString(want[i]) +
             "\n  engine: " + RowToString(got[i]);
    }
  }
  return "impossible";
}

struct Config {
  std::string name;
  StrategicOptions opts;
};

std::vector<Config> MakeConfigs() {
  std::vector<Config> configs;
  configs.push_back({"default", StrategicOptions{}});

  StrategicOptions off;
  off.enable_invisible_join = false;
  off.enable_rank_join = false;
  off.enable_simplification = false;
  off.enable_filter_pushdown = false;
  off.enable_projection_pruning = false;
  off.enable_metadata_pruning = false;
  off.enable_run_filters = false;
  off.enable_dict_predicates = false;
  off.enable_dict_grouping = false;
  off.enable_run_aggregation = false;
  off.enable_metadata_aggregates = false;
  off.enable_topn = false;
  off.enable_dict_sort = false;
  off.enable_sort_pruning = false;
  configs.push_back({"everything-off", off});

  StrategicOptions o = StrategicOptions{};
  o.enable_dict_grouping = false;
  configs.push_back({"no-dict-grouping", o});

  o = StrategicOptions{};
  o.enable_run_aggregation = false;
  o.enable_rank_join = false;
  configs.push_back({"no-run-aggregation", o});

  o = StrategicOptions{};
  o.enable_metadata_aggregates = false;
  o.enable_metadata_pruning = false;
  configs.push_back({"no-metadata", o});

  o = StrategicOptions{};
  o.enable_dict_predicates = false;
  o.enable_run_filters = false;
  configs.push_back({"no-compressed-predicates", o});

  o = StrategicOptions{};
  o.enable_simplification = false;
  o.enable_filter_pushdown = false;
  o.enable_projection_pruning = false;
  configs.push_back({"no-rewrites", o});

  // The Top-N axis: heap vs full sort must agree on order, ties, and NULL
  // placement; with the fusion off the engine still exercises the
  // rewritten Sort (dict keys, parallel chunks).
  o = StrategicOptions{};
  o.enable_topn = false;
  configs.push_back({"no-topn", o});

  o = StrategicOptions{};
  o.enable_dict_sort = false;
  configs.push_back({"no-dict-sort", o});

  o = StrategicOptions{};
  o.enable_sort_pruning = false;
  configs.push_back({"no-sort-pruning", o});
  return configs;
}

/// Wraps every scan of a cloned plan in a parallel Exchange, the layout
/// the strategic optimizer never inserts on its own but the executor must
/// still get right.
PlanNodePtr WrapScansInExchange(PlanNodePtr node, int workers) {
  if (node == nullptr) return nullptr;
  for (PlanNodePtr& child : node->children) {
    child = WrapScansInExchange(child, workers);
  }
  if (node->kind == PlanNodeKind::kScan) {
    auto ex = std::make_shared<PlanNode>();
    ex->kind = PlanNodeKind::kExchange;
    ex->exchange_workers = workers;
    ex->children = {node};
    return ex;
  }
  return node;
}

/// Strips a top-level LIMIT (for the unordered-LIMIT prefix check, which
/// needs the full result on the oracle side).
PlanNodePtr WithoutTopLimit(const PlanNodePtr& root) {
  if (root != nullptr && root->kind == PlanNodeKind::kLimit) {
    return root->children[0];
  }
  return root;
}

class DifferentialTest : public ::testing::Test {
 protected:
  void BuildDatasets(uint64_t data_seed, uint64_t fact_rows,
                     uint64_t seg_rows) {
    seg_rows_ = seg_rows;
    fact_ = testing::GenerateDataset(testing::MakeFactSpec(data_seed, fact_rows));
    dim_ = testing::GenerateDataset(testing::MakeDimSpec(data_seed + 1, 40));
    tables_ = {{"fact", &fact_.ref}, {"dim", &dim_.ref}};

    ASSERT_TRUE(mono_.ImportTextBuffer(fact_.csv, "fact").ok());
    ASSERT_TRUE(mono_.ImportTextBuffer(dim_.csv, "dim").ok());

    ImportOptions seg;
    seg.flow.segment_rows = seg_rows;
    ASSERT_TRUE(seg_.ImportTextBuffer(fact_.csv, "fact", seg).ok());
    ASSERT_TRUE(seg_.ImportTextBuffer(dim_.csv, "dim", seg).ok());
  }

  std::string Repro(uint64_t data_seed, uint64_t seed,
                    const testing::GeneratedQuery& q, const std::string& layout,
                    const std::string& config) const {
    std::string s = "=== differential divergence ===\n";
    s += "data_seed=" + std::to_string(data_seed) +
         " query_seed=" + std::to_string(seed) + "\n";
    s += "layout=" + layout + " config=" + config + "\n";
    s += "sql: " + q.sql + "\n";
    s += fact_.spec.ToString() + "\n";
    s += dim_.spec.ToString() + "\n";
    s += "repro: TDE_DIFF_DATA_SEED=" + std::to_string(data_seed) +
         " TDE_DIFF_ROWS=" + std::to_string(fact_.spec.rows) +
         " TDE_DIFF_SEG_ROWS=" + std::to_string(seg_rows_) +
         " TDE_DIFF_SEEDS=" + std::to_string(seed) +
         " ./differential_test  (query seed " + std::to_string(seed) +
         " runs last)\n";
    return s;
  }

  testing::Dataset fact_;
  testing::Dataset dim_;
  std::map<std::string, const testing::RefTable*> tables_;
  uint64_t seg_rows_ = 256;
  Engine mono_;
  Engine seg_;
};

TEST_F(DifferentialTest, RandomizedSweep) {
  const uint64_t data_seed = EnvU64("TDE_DIFF_DATA_SEED", 1);
  const uint64_t num_seeds = EnvU64("TDE_DIFF_SEEDS", 240);
  const uint64_t fact_rows = EnvU64("TDE_DIFF_ROWS", 900);
  const uint64_t seg_rows = EnvU64("TDE_DIFF_SEG_ROWS", 256);
  BuildDatasets(data_seed, fact_rows, seg_rows);
  const std::vector<Config> configs = MakeConfigs();

  // A deliberately tiny shared pool for the pool2-exchange leg: with two
  // workers serving four-way exchanges, admission parking, task rotation
  // and consumer helping all fire on every query.
  TaskScheduler pool2(2);

  uint64_t executed = 0;
  int failures = 0;
  for (uint64_t seed = 1; seed <= num_seeds; ++seed) {
    const testing::GeneratedQuery q =
        testing::GenerateQuery(seed, fact_, dim_);

    // Oracle: interpret the *parsed* (pre-optimization) plan.
    auto parsed = sql::ParseQuery(q.sql, *mono_.database());
    ASSERT_TRUE(parsed.ok()) << "generator produced unparseable SQL\n"
                             << Repro(data_seed, seed, q, "-", "-")
                             << parsed.status().ToString();
    auto oracle_res = testing::EvalReference(parsed.value().plan.root(), tables_);
    Rendered oracle, oracle_full;
    if (oracle_res.ok()) {
      oracle = RenderOracle(oracle_res.value());
      oracle_full = oracle;
      if (q.has_limit && !q.has_order_by) {
        auto full = testing::EvalReference(
            WithoutTopLimit(parsed.value().plan.root()), tables_);
        ASSERT_TRUE(full.ok()) << full.status().ToString();
        oracle_full = RenderOracle(full.value());
      }
    }

    struct Run {
      std::string layout;
      std::string config;
      Result<QueryResult> result;
    };
    std::vector<Run> runs;
    for (const Config& c : configs) {
      runs.push_back({"monolithic", c.name, mono_.ExecuteSql(q.sql, c.opts)});
      runs.push_back({"segmented", c.name, seg_.ExecuteSql(q.sql, c.opts)});
    }
    // Exchange variants: parallel scans under the default options. Skipped
    // for unordered LIMIT queries, where "which rows" legitimately depends
    // on arrival order.
    if (!(q.has_limit && !q.has_order_by)) {
      for (Engine* e : {&mono_, &seg_}) {
        auto p = sql::ParseQuery(q.sql, *e->database());
        ASSERT_TRUE(p.ok());
        PlanNodePtr wrapped =
            WrapScansInExchange(ClonePlan(p.value().plan.root()), 4);
        auto optimized = StrategicOptimize(wrapped, StrategicOptions{});
        if (optimized.ok()) {
          runs.push_back({e == &mono_ ? "monolithic" : "segmented",
                          "exchange-wrapped", ExecutePlanNode(optimized.value())});
        } else {
          runs.push_back({e == &mono_ ? "monolithic" : "segmented",
                          "exchange-wrapped", optimized.status()});
        }
      }
      // Shared-pool leg: the same exchange-wrapped plans, but scheduled
      // onto a pool of two workers instead of the process-wide pool.
      {
        TaskScheduler::ScopedOverride override_pool(&pool2);
        for (Engine* e : {&mono_, &seg_}) {
          auto p = sql::ParseQuery(q.sql, *e->database());
          ASSERT_TRUE(p.ok());
          PlanNodePtr wrapped =
              WrapScansInExchange(ClonePlan(p.value().plan.root()), 4);
          auto optimized = StrategicOptimize(wrapped, StrategicOptions{});
          if (optimized.ok()) {
            runs.push_back({e == &mono_ ? "monolithic" : "segmented",
                            "pool2-exchange",
                            ExecutePlanNode(optimized.value())});
          } else {
            runs.push_back({e == &mono_ ? "monolithic" : "segmented",
                            "pool2-exchange", optimized.status()});
          }
        }
      }
    }

    for (Run& run : runs) {
      ++executed;
      if (!oracle_res.ok()) {
        // The oracle refused (e.g. integer overflow in SUM): the engine
        // must refuse too. Messages may differ; statuses must agree.
        if (run.result.ok()) {
          ADD_FAILURE() << Repro(data_seed, seed, q, run.layout, run.config)
                        << "oracle errored but engine succeeded\n  oracle: "
                        << oracle_res.status().ToString();
          ++failures;
        }
        continue;
      }
      if (!run.result.ok()) {
        ADD_FAILURE() << Repro(data_seed, seed, q, run.layout, run.config)
                      << "engine errored but oracle succeeded\n  engine: "
                      << run.result.status().ToString();
        ++failures;
        continue;
      }
      const Rendered engine = RenderEngine(run.result.value());
      const std::string diff = CompareResults(q, oracle, oracle_full, engine);
      if (!diff.empty()) {
        ADD_FAILURE() << Repro(data_seed, seed, q, run.layout, run.config)
                      << diff;
        ++failures;
      }
      if (failures > 12) {
        FAIL() << "too many divergences; stopping after "
               << executed << " executions";
      }
    }
  }
  RecordProperty("executions", static_cast<int>(executed));
  EXPECT_GE(executed, num_seeds * configs.size() * 2);
}

// ---------------------------------------------------------------------------
// Oracle self-checks: the reference interpreter itself is pinned against
// hand-computed answers, so a sweep pass can't mean "both sides share a
// bug introduced by the oracle".

TEST(ReferenceOracle, HandComputedAggregate) {
  testing::RefTable t;
  t.fields = {{"k", TypeId::kString}, {"v", TypeId::kInteger}};
  auto sval = [](const std::string& s) {
    testing::RefValue v;
    v.type = TypeId::kString;
    v.null = false;
    v.s = s;
    return v;
  };
  auto ival = [](int64_t i) {
    testing::RefValue v;
    v.type = TypeId::kInteger;
    v.null = false;
    v.i = i;
    return v;
  };
  testing::RefValue inull;
  inull.type = TypeId::kInteger;
  t.rows = {{sval("b"), ival(10)},
            {sval("a"), ival(1)},
            {sval("b"), ival(5)},
            {sval("a"), inull},
            {sval("a"), ival(3)}};

  // Oracle needs a plan; parse against an engine holding a same-shaped
  // table (plans resolve tables by name).
  Engine e;
  ASSERT_TRUE(e.ImportTextBuffer("k,v\nb,10\na,1\nb,5\na,\na,3\n", "t").ok());
  auto parsed = sql::ParseQuery(
      "SELECT k, SUM(v) AS s, COUNT(*) AS n, AVG(v) AS m FROM t "
      "GROUP BY k ORDER BY k",
      *e.database());
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();

  std::map<std::string, const testing::RefTable*> tables = {{"t", &t}};
  auto res = testing::EvalReference(parsed.value().plan.root(), tables);
  ASSERT_TRUE(res.ok()) << res.status().ToString();
  ASSERT_EQ(res.value().rows.size(), 2u);
  EXPECT_EQ(testing::RefValueString(res.value().rows[0][0]), "a");
  EXPECT_EQ(testing::RefValueString(res.value().rows[0][1]), "4");   // 1 + 3
  EXPECT_EQ(testing::RefValueString(res.value().rows[0][2]), "3");   // COUNT(*)
  EXPECT_EQ(testing::RefValueString(res.value().rows[0][3]), "2");   // AVG: %g
  EXPECT_EQ(testing::RefValueString(res.value().rows[1][0]), "b");
  EXPECT_EQ(testing::RefValueString(res.value().rows[1][1]), "15");
  EXPECT_EQ(testing::RefValueString(res.value().rows[1][2]), "2");
  EXPECT_EQ(testing::RefValueString(res.value().rows[1][3]), "7.5");
}

TEST(ReferenceOracle, NullComparisonSemantics) {
  Engine e;
  ASSERT_TRUE(e.ImportTextBuffer("x\n1\n\n3\n", "t").ok());
  testing::RefTable t;
  t.fields = {{"x", TypeId::kInteger}};
  auto ival = [](int64_t i) {
    testing::RefValue v;
    v.type = TypeId::kInteger;
    v.null = false;
    v.i = i;
    return v;
  };
  testing::RefValue inull;
  inull.type = TypeId::kInteger;
  t.rows = {{ival(1)}, {inull}, {ival(3)}};
  std::map<std::string, const testing::RefTable*> tables = {{"t", &t}};

  // NULL never satisfies a comparison...
  auto parsed = sql::ParseQuery("SELECT x FROM t WHERE x < 5", *e.database());
  ASSERT_TRUE(parsed.ok());
  auto res = testing::EvalReference(parsed.value().plan.root(), tables);
  ASSERT_TRUE(res.ok());
  EXPECT_EQ(res.value().rows.size(), 2u);

  // ...but two-valued NOT turns that false into true.
  parsed = sql::ParseQuery("SELECT x FROM t WHERE NOT (x < 5)", *e.database());
  ASSERT_TRUE(parsed.ok());
  res = testing::EvalReference(parsed.value().plan.root(), tables);
  ASSERT_TRUE(res.ok());
  ASSERT_EQ(res.value().rows.size(), 1u);
  EXPECT_TRUE(res.value().rows[0][0].null);
}

TEST(ReferenceLikeMatcher, Utf8AndWildcards) {
  using testing::ReferenceLikeMatch;
  // '_' consumes one code point, never a lone continuation byte.
  EXPECT_TRUE(ReferenceLikeMatch("é", "_", true));
  EXPECT_FALSE(ReferenceLikeMatch("é", "__", true));
  EXPECT_TRUE(ReferenceLikeMatch("éclair", "_clair", true));
  // Empty pattern matches only the empty string.
  EXPECT_TRUE(ReferenceLikeMatch("", "", true));
  EXPECT_FALSE(ReferenceLikeMatch("a", "", true));
  // Trailing and consecutive wildcards.
  EXPECT_TRUE(ReferenceLikeMatch("oak", "oak%", true));
  EXPECT_TRUE(ReferenceLikeMatch("oak", "%%oak", true));
  EXPECT_TRUE(ReferenceLikeMatch("oak", "%", true));
  EXPECT_TRUE(ReferenceLikeMatch("", "%", true));
  EXPECT_FALSE(ReferenceLikeMatch("", "_%", true));
  // Case folding is ASCII-only.
  EXPECT_TRUE(ReferenceLikeMatch("OAK", "oak", true));
  EXPECT_FALSE(ReferenceLikeMatch("OAK", "oak", false));
}

}  // namespace
}  // namespace tde
