// Width-parameterized stream coverage: every encoding must round-trip at
// every element width it can be narrowed to, and the dictionary cuckoo hash
// must survive adversarial loads.

#include <random>

#include <gtest/gtest.h>

#include "src/encoding/manipulate.h"
#include "src/encoding/streams_internal.h"

namespace tde {
namespace {

class WidthSweep
    : public ::testing::TestWithParam<std::tuple<EncodingType, int>> {};

TEST_P(WidthSweep, RoundTripsAtWidth) {
  const auto [type, width_i] = GetParam();
  const uint8_t width = static_cast<uint8_t>(width_i);
  // Values that fit the signed range of `width`.
  const int64_t hi = width >= 8 ? 100000 : (int64_t{1} << (8 * width - 1)) - 1;
  const int64_t lo = -hi - 1;
  std::mt19937_64 rng(width * 7 + static_cast<int>(type));
  std::vector<Lane> v(4000);
  for (size_t i = 0; i < v.size(); ++i) {
    switch (type) {
      case EncodingType::kAffine:
        v[i] = lo + static_cast<Lane>(i) % (hi - lo);
        break;
      case EncodingType::kDelta:
        v[i] = lo + static_cast<Lane>(i * 3) % (hi - lo);
        break;
      case EncodingType::kRunLength:
        v[i] = lo + static_cast<Lane>(i / 100) % 50;
        break;
      default:
        v[i] = lo + static_cast<Lane>(rng() % 64);
        break;
    }
  }
  if (type == EncodingType::kAffine) {
    // Affine needs an exact progression that stays inside the width: use
    // the widest constant-step ramp that fits, then hold at the top.
    const Lane step = 1;
    for (size_t i = 0; i < v.size(); ++i) {
      const Lane val = lo + static_cast<Lane>(i) * step;
      v[i] = val <= hi ? val : v[i - 1];
    }
    // A held tail breaks the affine progression; truncate to the ramp.
    const size_t ramp = static_cast<size_t>(
        std::min<int64_t>(static_cast<int64_t>(v.size()), hi - lo + 1));
    v.resize(ramp);
  }
  EncodingStats stats;
  stats.Update(v.data(), v.size());
  auto r = EncodedStream::Create(type, width, /*sign_extend=*/true, stats, 0);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  auto s = r.MoveValue();
  ASSERT_TRUE(s->Append(v.data(), v.size()).ok());
  ASSERT_TRUE(s->Finalize().ok());
  EXPECT_EQ(s->width(), width);
  std::vector<Lane> back(v.size());
  ASSERT_TRUE(s->Get(0, back.size(), back.data()).ok());
  EXPECT_EQ(back, v);
  // Reopen from bytes too.
  auto reopened = EncodedStream::Open(s->buffer()).MoveValue();
  ASSERT_TRUE(reopened->Get(0, back.size(), back.data()).ok());
  EXPECT_EQ(back, v);
}

INSTANTIATE_TEST_SUITE_P(
    AllWidths, WidthSweep,
    ::testing::Combine(
        ::testing::Values(EncodingType::kUncompressed,
                          EncodingType::kFrameOfReference,
                          EncodingType::kDelta, EncodingType::kDictionary,
                          EncodingType::kAffine, EncodingType::kRunLength),
        ::testing::Values(1, 2, 4, 8)),
    [](const auto& info) {
      std::string n = EncodingName(std::get<0>(info.param));
      for (char& c : n) {
        if (c == '-') c = '_';
      }
      return n + "_w" + std::to_string(std::get<1>(info.param));
    });

TEST(DictCuckoo, SurvivesFullCapacityRandomKeys) {
  // Fill a maximal dictionary (2^15 entries) with adversarially wide keys;
  // every index must resolve back to its key.
  std::mt19937_64 rng(31337);
  std::vector<Lane> keys;
  keys.reserve(kMaxDictEntries);
  while (keys.size() < kMaxDictEntries) {
    keys.push_back(static_cast<Lane>(rng()));
  }
  std::sort(keys.begin(), keys.end());
  keys.erase(std::unique(keys.begin(), keys.end()), keys.end());

  auto s = internal::DictStream::Make(8, /*sign_extend=*/true, /*bits=*/15);
  ASSERT_TRUE(s->Append(keys.data(), keys.size()).ok());
  ASSERT_TRUE(s->Finalize().ok());
  EXPECT_EQ(s->entry_count(), keys.size());
  std::vector<Lane> back(keys.size());
  ASSERT_TRUE(s->Get(0, back.size(), back.data()).ok());
  EXPECT_EQ(back, keys);
}

TEST(DictCuckoo, ClusteredKeysStillResolve) {
  // Sequential keys sharing high bits stress the two-bucket scheme.
  std::vector<Lane> keys(10000);
  for (size_t i = 0; i < keys.size(); ++i) {
    keys[i] = static_cast<Lane>(i) + (int64_t{1} << 40);
  }
  auto s = internal::DictStream::Make(8, true, 14);
  ASSERT_TRUE(s->Append(keys.data(), keys.size()).ok());
  std::vector<Lane> back(keys.size());
  ASSERT_TRUE(s->Get(0, back.size(), back.data()).ok());
  EXPECT_EQ(back, keys);
}

TEST(NarrowedStreams, AppendAfterNarrowRespectsWidth) {
  // A narrowed dictionary stream must reject entries that no longer fit.
  std::vector<Lane> v = {1, 2, 3};
  EncodingStats stats;
  stats.Update(v.data(), v.size());
  auto s = EncodedStream::Create(EncodingType::kDictionary, 8, true, stats, 2)
               .MoveValue();
  ASSERT_TRUE(s->Append(v.data(), v.size()).ok());
  ASSERT_TRUE(NarrowStreamWidth(s->mutable_buffer(), true).ok());
  ASSERT_EQ(s->width(), 1);
  Lane wide = 300;
  EXPECT_EQ(s->Append(&wide, 1).code(), StatusCode::kOutOfRange);
  Lane fits = 4;
  EXPECT_TRUE(s->Append(&fits, 1).ok());
}

}  // namespace
}  // namespace tde
