#include "src/workload/tpch.h"

#include <set>
#include <string>

#include <gtest/gtest.h>

#include "src/textscan/inference.h"
#include "src/workload/flights.h"

namespace tde {
namespace {

TEST(Tpch, AllTablesGenerateAndInfer) {
  for (TpchTable t : AllTpchTables()) {
    const std::string data = GenerateTpchTable(t, 0.001);
    ASSERT_FALSE(data.empty()) << TpchTableName(t);
    InferenceOptions opts;
    opts.field_separator = '|';
    auto fmt = InferFormat(data, opts);
    ASSERT_TRUE(fmt.ok()) << TpchTableName(t);
    EXPECT_TRUE(fmt.value().has_header) << TpchTableName(t);
    const Schema expect = TpchSchema(t);
    ASSERT_EQ(fmt.value().schema.num_fields(), expect.num_fields())
        << TpchTableName(t);
    for (size_t i = 0; i < expect.num_fields(); ++i) {
      EXPECT_EQ(fmt.value().schema.field(i).name, expect.field(i).name);
      EXPECT_EQ(fmt.value().schema.field(i).type, expect.field(i).type)
          << TpchTableName(t) << "." << expect.field(i).name;
    }
  }
}

TEST(Tpch, RowCountsScale) {
  EXPECT_EQ(TpchRowCount(TpchTable::kRegion, 1), 5u);
  EXPECT_EQ(TpchRowCount(TpchTable::kNation, 1), 25u);
  EXPECT_EQ(TpchRowCount(TpchTable::kCustomer, 1), 150000u);
  EXPECT_EQ(TpchRowCount(TpchTable::kCustomer, 0.01), 1500u);
  EXPECT_EQ(TpchRowCount(TpchTable::kOrders, 0.1), 150000u);
}

TEST(Tpch, CustomerNamesAreFixedWidthUnique) {
  const std::string data = GenerateTpchTable(TpchTable::kCustomer, 0.001);
  size_t pos = 0;
  std::string_view rec;
  NextRecord(data, &pos, &rec);  // header
  std::vector<std::string_view> fields;
  std::set<std::string> names;
  size_t width = 0;
  while (NextRecord(data, &pos, &rec)) {
    SplitRecord(rec, '|', &fields);
    ASSERT_GE(fields.size(), 2u);
    if (width == 0) width = fields[1].size();
    // Fixed-width (the affine-encoding trigger of Sect. 6.2).
    EXPECT_EQ(fields[1].size(), width);
    names.emplace(fields[1]);
  }
  EXPECT_EQ(names.size(), 150u);  // all unique
}

TEST(Tpch, LineitemOrderKeysFormRuns) {
  const std::string data = GenerateTpchTable(TpchTable::kLineitem, 0.001);
  size_t pos = 0;
  std::string_view rec;
  NextRecord(data, &pos, &rec);
  std::vector<std::string_view> fields;
  long long prev = -1;
  uint64_t rows = 0, runs = 0;
  while (NextRecord(data, &pos, &rec)) {
    SplitRecord(rec, '|', &fields);
    const long long key = std::stoll(std::string(fields[0]));
    EXPECT_GE(key, prev);  // sorted
    if (key != prev) ++runs;
    prev = key;
    ++rows;
  }
  EXPECT_GT(rows, 1000u);
  EXPECT_LT(runs, rows);  // 1-7 lines per order
}

TEST(Flights, ShapeMatchesFaaData) {
  const std::string data = GenerateFlights(5000);
  auto fmt = InferFormat(data);
  ASSERT_TRUE(fmt.ok());
  EXPECT_TRUE(fmt.value().has_header);
  const Schema expect = FlightsSchema();
  ASSERT_EQ(fmt.value().schema.num_fields(), expect.num_fields());
  for (size_t i = 0; i < expect.num_fields(); ++i) {
    EXPECT_EQ(fmt.value().schema.field(i).type, expect.field(i).type)
        << expect.field(i).name;
  }
  // Dates ascend across the file.
  size_t pos = 0;
  std::string_view rec;
  NextRecord(data, &pos, &rec);
  std::vector<std::string_view> fields;
  std::string prev;
  while (NextRecord(data, &pos, &rec)) {
    SplitRecord(rec, ',', &fields);
    const std::string d(fields[0]);
    EXPECT_GE(d, prev);
    prev = d;
  }
}

TEST(Flights, RowCountExact) {
  const std::string data = GenerateFlights(777);
  size_t pos = 0;
  std::string_view rec;
  uint64_t rows = 0;
  while (NextRecord(data, &pos, &rec)) ++rows;
  EXPECT_EQ(rows, 778u);  // header + 777
}

}  // namespace
}  // namespace tde
