#include "src/exec/indexed_scan.h"

#include <gtest/gtest.h>

#include "src/exec/flow_table.h"
#include "src/plan/tactical.h"
#include "src/workload/rle_data.h"
#include "tests/test_util.h"

namespace tde {
namespace {

using testutil::Drain;
using testutil::Flatten;
using testutil::VectorSource;

std::shared_ptr<Table> RunsTable() {
  // value runs: 5 x3, 2 x2, 9 x4, 2 x1 — deliberately non-monotonic.
  std::vector<Lane> v = {5, 5, 5, 2, 2, 9, 9, 9, 9, 2};
  std::vector<Lane> other = {0, 1, 2, 3, 4, 5, 6, 7, 8, 9};
  return FlowTable::Build(VectorSource::Ints({{"v", v}, {"other", other}}))
      .MoveValue();
}

TEST(IndexTable, ValuesCountsAndRunningTotals) {
  auto t = RunsTable();
  auto index = BuildIndexTable(*t->ColumnByName("v").value()).MoveValue();
  ASSERT_EQ(index.size(), 4u);
  EXPECT_EQ(index[0].value, 5);
  EXPECT_EQ(index[0].count, 3u);
  EXPECT_EQ(index[0].start, 0u);
  EXPECT_EQ(index[2].value, 9);
  EXPECT_EQ(index[2].start, 5u);
  EXPECT_EQ(index[3].value, 2);
  EXPECT_EQ(index[3].start, 9u);
}

TEST(IndexTable, SortByValueForOrderedRetrieval) {
  auto t = RunsTable();
  auto index = BuildIndexTable(*t->ColumnByName("v").value()).MoveValue();
  SortIndexByValue(&index);
  EXPECT_EQ(index[0].value, 2);
  EXPECT_EQ(index[1].value, 2);
  EXPECT_EQ(index[3].value, 9);
  // stable: first 2-run (start 3) before second (start 9)
  EXPECT_EQ(index[0].start, 3u);
  EXPECT_EQ(index[1].start, 9u);
}

TEST(IndexedScan, FetchesOuterRangesInIndexOrder) {
  auto t = RunsTable();
  auto index = BuildIndexTable(*t->ColumnByName("v").value()).MoveValue();
  SortIndexByValue(&index);
  IndexedScanOptions opts;
  opts.value_name = "v";
  opts.payload = {"other"};
  IndexedScan scan(t, index, opts);
  auto blocks = Drain(&scan);
  EXPECT_EQ(Flatten(blocks, 0),
            (std::vector<Lane>{2, 2, 2, 5, 5, 5, 9, 9, 9, 9}));
  EXPECT_EQ(Flatten(blocks, 1),
            (std::vector<Lane>{3, 4, 9, 0, 1, 2, 5, 6, 7, 8}));
}

TEST(IndexedScan, FilteredIndexSkipsRanges) {
  auto t = RunsTable();
  auto index = BuildIndexTable(*t->ColumnByName("v").value()).MoveValue();
  std::erase_if(index, [](const IndexEntry& e) { return e.value != 9; });
  IndexedScanOptions opts;
  opts.value_name = "v";
  opts.payload = {"other"};
  IndexedScan scan(t, index, opts);
  auto blocks = Drain(&scan);
  EXPECT_EQ(Flatten(blocks, 1), (std::vector<Lane>{5, 6, 7, 8}));
}

TEST(IndexedScan, ContiguousRangesCoalesceIntoOneAccess) {
  auto t = RunsTable();
  auto index = BuildIndexTable(*t->ColumnByName("v").value()).MoveValue();
  IndexedScanOptions opts;
  opts.value_name = "v";
  IndexedScan scan(t, index, opts);
  auto blocks = Drain(&scan);
  // The unsorted index covers the table contiguously: one storage access.
  EXPECT_EQ(scan.blocks_emitted(), 1u);
  EXPECT_EQ(Flatten(blocks, 0),
            (std::vector<Lane>{5, 5, 5, 2, 2, 9, 9, 9, 9, 2}));
}

TEST(IndexedScan, SortedIndexLosesAdjacency) {
  // Sorting by value breaks physical contiguity, so each range segment is
  // its own block — the Sect. 6.6 small-run overhead is structural.
  auto t = RunsTable();
  auto index = BuildIndexTable(*t->ColumnByName("v").value()).MoveValue();
  SortIndexByValue(&index);
  IndexedScanOptions opts;
  opts.value_name = "v";
  IndexedScan scan(t, index, opts);
  Drain(&scan);
  EXPECT_EQ(scan.blocks_emitted(), 4u);
}

TEST(IndexedScan, LargeRunsSplitAtBlockSize) {
  std::vector<Lane> v(3 * kBlockSize + 10, 7);
  auto t =
      FlowTable::Build(VectorSource::Ints({{"v", v}})).MoveValue();
  auto index = BuildIndexTable(*t->ColumnByName("v").value()).MoveValue();
  ASSERT_EQ(index.size(), 1u);
  IndexedScanOptions opts;
  opts.value_name = "v";
  IndexedScan scan(t, index, opts);
  auto blocks = Drain(&scan);
  EXPECT_EQ(scan.blocks_emitted(), 4u);
  EXPECT_EQ(Flatten(blocks, 0).size(), v.size());
}

TEST(Tactical, OrderedAggregationFreeOnPrimaryKey) {
  std::vector<IndexEntry> entries = {{1, 10, 0}, {2, 5, 10}};
  const auto c = ChooseIndexedAggregation(entries, /*already_value_ordered=*/true);
  EXPECT_TRUE(c.ordered_aggregation);
  EXPECT_FALSE(c.sort_index);
}

TEST(Tactical, SortsWhenRunsAreLong) {
  std::vector<IndexEntry> entries = {{1, 2 * kBlockSize, 0},
                                     {0, 3 * kBlockSize, 2 * kBlockSize}};
  const auto c = ChooseIndexedAggregation(entries, false);
  EXPECT_TRUE(c.sort_index);
  EXPECT_TRUE(c.ordered_aggregation);
}

TEST(Tactical, AvoidsSortWhenRunsAreSmall) {
  // Runs of ~100 rows (the paper's degraded 1M-row secondary case).
  std::vector<IndexEntry> entries;
  for (int i = 0; i < 100; ++i) {
    entries.push_back({i % 10, 100, static_cast<uint64_t>(i) * 100});
  }
  const auto c = ChooseIndexedAggregation(entries, false);
  EXPECT_FALSE(c.sort_index);
  EXPECT_FALSE(c.ordered_aggregation);
}

TEST(RleWorkload, TableShapeMatchesSect53) {
  auto t = MakeRleTable(200000).MoveValue();
  ASSERT_EQ(t->rows(), 200000u);
  auto p = t->ColumnByName("primary").value();
  auto s = t->ColumnByName("secondary").value();
  EXPECT_EQ(p->data()->type(), EncodingType::kRunLength);
  EXPECT_EQ(s->data()->type(), EncodingType::kRunLength);
  EXPECT_TRUE(p->metadata().sorted);
  EXPECT_EQ(p->metadata().min_value, 0);
  EXPECT_EQ(p->metadata().max_value, 99);
  // Primary has ~100 runs; secondary ~10000.
  auto pi = BuildIndexTable(*p).MoveValue();
  auto si = BuildIndexTable(*s).MoveValue();
  EXPECT_EQ(pi.size(), 100u);
  EXPECT_GT(si.size(), 5000u);
  EXPECT_LE(si.size(), 10000u);
  // Within each primary run, secondary ascends (sorted on both).
  EXPECT_LE(si.size(), 10000u);
}

}  // namespace
}  // namespace tde
