#include "src/exec/exchange.h"

#include <memory>
#include <numeric>

#include <gtest/gtest.h>

#include "src/exec/limit.h"

#include "tests/test_util.h"

namespace tde {
namespace {

using testutil::Drain;
using testutil::Flatten;
using testutil::VectorSource;

BlockTransform KeepEven() {
  return [](const Schema&, Block* b) -> Status {
    std::vector<char> keep(b->rows());
    for (size_t i = 0; i < keep.size(); ++i) {
      keep[i] = b->columns[0].lanes[i] % 2 == 0;
    }
    b->Compact(keep);
    return Status::OK();
  };
}

std::vector<Lane> Ramp(size_t n) {
  std::vector<Lane> v(n);
  std::iota(v.begin(), v.end(), 0);
  return v;
}

TEST(Exchange, OrderPreservingKeepsBlockOrder) {
  const auto input = Ramp(20 * kBlockSize);
  ExchangeOptions opts;
  opts.workers = 4;
  opts.order_preserving = true;
  Exchange ex(VectorSource::Ints({{"x", input}}), opts);
  const auto got = Flatten(Drain(&ex), 0);
  EXPECT_EQ(got, input);
}

TEST(Exchange, UnorderedDeliversSameMultiset) {
  const auto input = Ramp(20 * kBlockSize);
  ExchangeOptions opts;
  opts.workers = 4;
  opts.order_preserving = false;
  Exchange ex(VectorSource::Ints({{"x", input}}), opts);
  auto got = Flatten(Drain(&ex), 0);
  ASSERT_EQ(got.size(), input.size());
  std::sort(got.begin(), got.end());
  EXPECT_EQ(got, input);
}

TEST(Exchange, TransformAppliesPerBlock) {
  const auto input = Ramp(8 * kBlockSize);
  ExchangeOptions opts;
  opts.workers = 3;
  opts.order_preserving = true;
  opts.transform = KeepEven();
  Exchange ex(VectorSource::Ints({{"x", input}}), opts);
  const auto got = Flatten(Drain(&ex), 0);
  ASSERT_EQ(got.size(), input.size() / 2);
  for (size_t i = 0; i < got.size(); ++i) {
    ASSERT_EQ(got[i], static_cast<Lane>(2 * i));
  }
}

TEST(Exchange, UnorderedTransformedMultisetMatches) {
  const auto input = Ramp(8 * kBlockSize);
  ExchangeOptions opts;
  opts.workers = 3;
  opts.order_preserving = false;
  opts.transform = KeepEven();
  Exchange ex(VectorSource::Ints({{"x", input}}), opts);
  auto got = Flatten(Drain(&ex), 0);
  std::sort(got.begin(), got.end());
  ASSERT_EQ(got.size(), input.size() / 2);
  for (size_t i = 0; i < got.size(); ++i) {
    ASSERT_EQ(got[i], static_cast<Lane>(2 * i));
  }
}

TEST(Exchange, SingleWorkerWorks) {
  const auto input = Ramp(3 * kBlockSize);
  ExchangeOptions opts;
  opts.workers = 1;
  Exchange ex(VectorSource::Ints({{"x", input}}), opts);
  EXPECT_EQ(Flatten(Drain(&ex), 0), input);
}

TEST(Exchange, EmptyInput) {
  ExchangeOptions opts;
  opts.workers = 2;
  Exchange ex(VectorSource::Ints({{"x", {}}}), opts);
  EXPECT_TRUE(Drain(&ex).empty());
}

TEST(Exchange, TransformErrorPropagates) {
  ExchangeOptions opts;
  opts.workers = 2;
  opts.transform = [](const Schema&, Block*) {
    return Status::Internal("boom");
  };
  Exchange ex(VectorSource::Ints({{"x", Ramp(kBlockSize)}}), opts);
  ASSERT_TRUE(ex.Open().ok());
  Block b;
  bool eos = false;
  Status st;
  while (st.ok() && !eos) st = ex.Next(&b, &eos);
  EXPECT_EQ(st.code(), StatusCode::kInternal);
  ex.Close();
}

TEST(Exchange, CloseMidStreamOrderedDoesNotDeadlock) {
  // Abort a query after consuming a couple of blocks from an
  // order-preserving exchange over a large input: Close() must drain and
  // join every thread without wedging on the in-flight bound.
  const auto input = Ramp(200 * kBlockSize);
  ExchangeOptions opts;
  opts.workers = 4;
  opts.order_preserving = true;
  Exchange ex(VectorSource::Ints({{"x", input}}), opts);
  ASSERT_TRUE(ex.Open().ok());
  Block b;
  bool eos = false;
  for (int i = 0; i < 3 && !eos; ++i) {
    ASSERT_TRUE(ex.Next(&b, &eos).ok());
    ASSERT_FALSE(eos);
    ASSERT_EQ(b.columns[0].lanes[0], static_cast<Lane>(i * kBlockSize));
  }
  ex.Close();  // mid-stream abort
}

TEST(Exchange, CloseWithoutConsumingAnything) {
  const auto input = Ramp(100 * kBlockSize);
  ExchangeOptions opts;
  opts.workers = 3;
  Exchange ex(VectorSource::Ints({{"x", input}}), opts);
  ASSERT_TRUE(ex.Open().ok());
  ex.Close();
}

TEST(Exchange, DestructorJoinsWithoutClose) {
  const auto input = Ramp(50 * kBlockSize);
  ExchangeOptions opts;
  opts.workers = 3;
  auto ex = std::make_unique<Exchange>(VectorSource::Ints({{"x", input}}),
                                       opts);
  ASSERT_TRUE(ex->Open().ok());
  Block b;
  bool eos = false;
  ASSERT_TRUE(ex->Next(&b, &eos).ok());
  ex.reset();  // the error/abort path skips Close; ~Exchange must join
}

TEST(Exchange, CloseAfterErrorJoinsCleanly) {
  ExchangeOptions opts;
  opts.workers = 2;
  opts.order_preserving = true;
  opts.transform = [](const Schema&, Block* b) -> Status {
    if (b->columns[0].lanes[0] >= 4 * kBlockSize) {
      return Status::Internal("mid-stream failure");
    }
    return Status::OK();
  };
  Exchange ex(VectorSource::Ints({{"x", Ramp(64 * kBlockSize)}}), opts);
  ASSERT_TRUE(ex.Open().ok());
  Block b;
  bool eos = false;
  Status st;
  while (st.ok() && !eos) st = ex.Next(&b, &eos);
  EXPECT_EQ(st.code(), StatusCode::kInternal);
  // Error already delivered; Close must not hang or lose the threads.
  ex.Close();
  // The error sticks on further Next calls.
  EXPECT_FALSE(ex.Next(&b, &eos).ok());
}

TEST(Exchange, NextBeforeOpenFailsCleanly) {
  ExchangeOptions opts;
  Exchange ex(VectorSource::Ints({{"x", Ramp(kBlockSize)}}), opts);
  Block b;
  bool eos = false;
  EXPECT_EQ(ex.Next(&b, &eos).code(), StatusCode::kInternal);
}

TEST(Exchange, RunStatsAccountForEveryBlock) {
  const size_t kBlocks = 20;
  const auto input = Ramp(kBlocks * kBlockSize);
  ExchangeOptions opts;
  opts.workers = 4;
  opts.order_preserving = true;
  Exchange ex(VectorSource::Ints({{"x", input}}), opts);
  const auto got = Flatten(Drain(&ex), 0);
  EXPECT_EQ(got, input);
  const ExchangeRunStats& rs = ex.run_stats();
  EXPECT_EQ(rs.blocks_in, kBlocks);
  ASSERT_EQ(rs.workers.size(), 4u);
  uint64_t worker_blocks = 0, worker_rows = 0;
  for (const ExchangeWorkerStats& w : rs.workers) {
    worker_blocks += w.blocks;
    worker_rows += w.rows_emitted;
  }
  EXPECT_EQ(worker_blocks, kBlocks);
  EXPECT_EQ(worker_rows, input.size());
}

/// Flags whether Open/Close were forwarded (regression harness for Limit's
/// early child shutdown).
class ProbeSource : public Operator {
 public:
  ProbeSource(std::unique_ptr<Operator> inner, bool* opened, bool* closed)
      : inner_(std::move(inner)), opened_(opened), closed_(closed) {}
  Status Open() override {
    *opened_ = true;
    return inner_->Open();
  }
  Status Next(Block* b, bool* eos) override { return inner_->Next(b, eos); }
  void Close() override {
    *closed_ = true;
    inner_->Close();
  }
  const Schema& output_schema() const override {
    return inner_->output_schema();
  }

 private:
  std::unique_ptr<Operator> inner_;
  bool* opened_;
  bool* closed_;
};

TEST(Limit, ClosesChildAsSoonAsLimitIsReached) {
  bool opened = false, closed = false;
  Limit limit(std::make_unique<ProbeSource>(
                  VectorSource::Ints({{"x", Ramp(8 * kBlockSize)}}), &opened,
                  &closed),
              kBlockSize + 5);
  ASSERT_TRUE(limit.Open().ok());
  EXPECT_TRUE(opened);
  Block b;
  bool eos = false;
  ASSERT_TRUE(limit.Next(&b, &eos).ok());
  ASSERT_FALSE(eos);
  EXPECT_FALSE(closed);  // limit not reached yet
  ASSERT_TRUE(limit.Next(&b, &eos).ok());
  ASSERT_FALSE(eos);
  EXPECT_EQ(b.rows(), 5u);   // truncated to the limit...
  EXPECT_TRUE(closed);       // ...and the child is already shut down
  ASSERT_TRUE(limit.Next(&b, &eos).ok());
  EXPECT_TRUE(eos);
  limit.Close();  // idempotent: the child must not be closed twice
}

TEST(Limit, ZeroNeverOpensChild) {
  bool opened = false, closed = false;
  Limit limit(std::make_unique<ProbeSource>(
                  VectorSource::Ints({{"x", Ramp(kBlockSize)}}), &opened,
                  &closed),
              0);
  ASSERT_TRUE(limit.Open().ok());
  EXPECT_FALSE(opened);
  Block b;
  bool eos = false;
  ASSERT_TRUE(limit.Next(&b, &eos).ok());
  EXPECT_TRUE(eos);
  limit.Close();
  EXPECT_FALSE(opened);
  EXPECT_FALSE(closed);  // never opened, so never closed
}

TEST(Limit, OverExchangeStopsWorkersEarly) {
  // A small LIMIT over a many-block Exchange: reaching the limit must abort
  // the exchange mid-stream instead of letting the producer pump all input
  // through the queues.
  const size_t kBlocks = 64;
  ExchangeOptions opts;
  opts.workers = 4;
  opts.order_preserving = true;
  auto exchange = std::make_unique<Exchange>(
      VectorSource::Ints({{"x", Ramp(kBlocks * kBlockSize)}}), opts);
  Exchange* raw = exchange.get();
  Limit limit(std::move(exchange), kBlockSize / 2);
  std::vector<Block> out;
  ASSERT_TRUE(DrainOperator(&limit, &out).ok());
  size_t rows = 0;
  for (const Block& b : out) rows += b.rows();
  EXPECT_EQ(rows, kBlockSize / 2);
  // The exchange was closed after one output block; the producer cannot
  // have admitted more than the queue bound while we consumed just one.
  EXPECT_LT(raw->run_stats().blocks_in, kBlocks);
}

TEST(Exchange, NestedExchangeOnPoolOfOneCompletes) {
  // Exchange over Exchange: the outer producer runs as a pool task and
  // consumes the inner exchange from a worker thread. With a single-worker
  // pool this deadlocks unless the inner consumer helps the pool (or the
  // inner exchange degraded to inline mode); either way the rows must all
  // come through in order.
  TaskScheduler pool(1);
  TaskScheduler::ScopedOverride ov(&pool);
  const auto input = Ramp(16 * kBlockSize);
  ExchangeOptions inner_opts;
  inner_opts.workers = 2;
  inner_opts.order_preserving = true;
  auto inner = std::make_unique<Exchange>(
      VectorSource::Ints({{"x", input}}), inner_opts);
  ExchangeOptions outer_opts;
  outer_opts.workers = 2;
  outer_opts.order_preserving = true;
  Exchange outer(std::move(inner), outer_opts);
  const auto got = Flatten(Drain(&outer), 0);
  EXPECT_EQ(got, input);
}

TEST(Exchange, ConcurrentExchangesShareOnePool) {
  // Eight ordered exchanges race on a pool of two; every one must still
  // deliver its own input intact — the scheduler's round-robin may starve
  // none of them.
  TaskScheduler pool(2);
  TaskScheduler::ScopedOverride ov(&pool);
  const Status st = testutil::RunConcurrently(8, [&](int t) -> Status {
    const auto input = Ramp(12 * kBlockSize);
    ExchangeOptions opts;
    opts.workers = 3;
    opts.order_preserving = true;
    opts.transform = KeepEven();
    Exchange ex(VectorSource::Ints({{"x", input}}), opts);
    std::vector<Block> blocks;
    TDE_RETURN_NOT_OK(DrainOperator(&ex, &blocks));
    const auto got = Flatten(blocks, 0);
    if (got.size() != input.size() / 2) {
      return Status::Internal("thread " + std::to_string(t) + ": got " +
                              std::to_string(got.size()) + " rows, want " +
                              std::to_string(input.size() / 2));
    }
    for (size_t i = 0; i < got.size(); ++i) {
      if (got[i] != static_cast<Lane>(2 * i)) {
        return Status::Internal("thread " + std::to_string(t) +
                                ": wrong value at row " + std::to_string(i));
      }
    }
    return Status::OK();
  });
  EXPECT_TRUE(st.ok()) << st.ToString();
}

TEST(Exchange, AutoWorkerCountFollowsThePool) {
  // workers == 0 resolves against the shared pool's suggested share.
  TaskScheduler pool(8);
  TaskScheduler::ScopedOverride ov(&pool);
  const auto input = Ramp(6 * kBlockSize);
  ExchangeOptions opts;
  opts.workers = 0;
  opts.order_preserving = true;
  Exchange ex(VectorSource::Ints({{"x", input}}), opts);
  ASSERT_TRUE(ex.Open().ok());
  Block b;
  bool eos = false;
  std::vector<Lane> got;
  while (true) {
    ASSERT_TRUE(ex.Next(&b, &eos).ok());
    if (eos) break;
    got.insert(got.end(), b.columns[0].lanes.begin(),
               b.columns[0].lanes.end());
  }
  ex.Close();
  EXPECT_EQ(got, input);
  EXPECT_EQ(ex.run_stats().workers.size(),
            static_cast<size_t>(pool.SuggestedQueryParallelism()));
}

}  // namespace
}  // namespace tde
