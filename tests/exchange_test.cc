#include "src/exec/exchange.h"

#include <numeric>

#include <gtest/gtest.h>

#include "tests/test_util.h"

namespace tde {
namespace {

using testutil::Drain;
using testutil::Flatten;
using testutil::VectorSource;

BlockTransform KeepEven() {
  return [](const Schema&, Block* b) -> Status {
    std::vector<char> keep(b->rows());
    for (size_t i = 0; i < keep.size(); ++i) {
      keep[i] = b->columns[0].lanes[i] % 2 == 0;
    }
    b->Compact(keep);
    return Status::OK();
  };
}

std::vector<Lane> Ramp(size_t n) {
  std::vector<Lane> v(n);
  std::iota(v.begin(), v.end(), 0);
  return v;
}

TEST(Exchange, OrderPreservingKeepsBlockOrder) {
  const auto input = Ramp(20 * kBlockSize);
  ExchangeOptions opts;
  opts.workers = 4;
  opts.order_preserving = true;
  Exchange ex(VectorSource::Ints({{"x", input}}), opts);
  const auto got = Flatten(Drain(&ex), 0);
  EXPECT_EQ(got, input);
}

TEST(Exchange, UnorderedDeliversSameMultiset) {
  const auto input = Ramp(20 * kBlockSize);
  ExchangeOptions opts;
  opts.workers = 4;
  opts.order_preserving = false;
  Exchange ex(VectorSource::Ints({{"x", input}}), opts);
  auto got = Flatten(Drain(&ex), 0);
  ASSERT_EQ(got.size(), input.size());
  std::sort(got.begin(), got.end());
  EXPECT_EQ(got, input);
}

TEST(Exchange, TransformAppliesPerBlock) {
  const auto input = Ramp(8 * kBlockSize);
  ExchangeOptions opts;
  opts.workers = 3;
  opts.order_preserving = true;
  opts.transform = KeepEven();
  Exchange ex(VectorSource::Ints({{"x", input}}), opts);
  const auto got = Flatten(Drain(&ex), 0);
  ASSERT_EQ(got.size(), input.size() / 2);
  for (size_t i = 0; i < got.size(); ++i) {
    ASSERT_EQ(got[i], static_cast<Lane>(2 * i));
  }
}

TEST(Exchange, UnorderedTransformedMultisetMatches) {
  const auto input = Ramp(8 * kBlockSize);
  ExchangeOptions opts;
  opts.workers = 3;
  opts.order_preserving = false;
  opts.transform = KeepEven();
  Exchange ex(VectorSource::Ints({{"x", input}}), opts);
  auto got = Flatten(Drain(&ex), 0);
  std::sort(got.begin(), got.end());
  ASSERT_EQ(got.size(), input.size() / 2);
  for (size_t i = 0; i < got.size(); ++i) {
    ASSERT_EQ(got[i], static_cast<Lane>(2 * i));
  }
}

TEST(Exchange, SingleWorkerWorks) {
  const auto input = Ramp(3 * kBlockSize);
  ExchangeOptions opts;
  opts.workers = 1;
  Exchange ex(VectorSource::Ints({{"x", input}}), opts);
  EXPECT_EQ(Flatten(Drain(&ex), 0), input);
}

TEST(Exchange, EmptyInput) {
  ExchangeOptions opts;
  opts.workers = 2;
  Exchange ex(VectorSource::Ints({{"x", {}}}), opts);
  EXPECT_TRUE(Drain(&ex).empty());
}

TEST(Exchange, TransformErrorPropagates) {
  ExchangeOptions opts;
  opts.workers = 2;
  opts.transform = [](const Schema&, Block*) {
    return Status::Internal("boom");
  };
  Exchange ex(VectorSource::Ints({{"x", Ramp(kBlockSize)}}), opts);
  ASSERT_TRUE(ex.Open().ok());
  Block b;
  bool eos = false;
  Status st;
  while (st.ok() && !eos) st = ex.Next(&b, &eos);
  EXPECT_EQ(st.code(), StatusCode::kInternal);
  ex.Close();
}

}  // namespace
}  // namespace tde
