#include "src/storage/database_file.h"

#include <cstdio>

#include <gtest/gtest.h>

#include "src/exec/flow_table.h"
#include "src/storage/heap_accelerator.h"

namespace tde {
namespace {

std::shared_ptr<Column> MakeIntColumn(const std::string& name,
                                      const std::vector<Lane>& v) {
  ColumnBuildInput in;
  in.name = name;
  in.type = TypeId::kInteger;
  in.lanes = v;
  auto r = BuildColumn(std::move(in), FlowTableOptions{});
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  return r.MoveValue();
}

std::shared_ptr<Column> MakeStringColumn(
    const std::string& name, const std::vector<std::string>& strings) {
  ColumnBuildInput in;
  in.name = name;
  in.type = TypeId::kString;
  in.heap = std::make_shared<StringHeap>();
  HeapAccelerator acc(in.heap.get());
  for (const auto& s : strings) in.lanes.push_back(acc.Add(s));
  in.accel_active = true;
  in.accel_distinct = acc.distinct_count();
  in.accel_arrived_sorted = acc.arrived_sorted();
  auto r = BuildColumn(std::move(in), FlowTableOptions{});
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  return r.MoveValue();
}

TEST(Column, WidthAndSizes) {
  auto col = MakeIntColumn("x", {1, 2, 3, 4, 5, 6, 7, 8});
  EXPECT_EQ(col->rows(), 8u);
  EXPECT_LE(col->TokenWidth(), 8);
  EXPECT_GT(col->PhysicalSize(), 0u);
  EXPECT_EQ(col->LogicalSize(), 64u);
}

TEST(Column, GetLanesDecodes) {
  std::vector<Lane> v = {10, 20, 30, 40};
  auto col = MakeIntColumn("x", v);
  std::vector<Lane> got(4);
  ASSERT_TRUE(col->GetLanes(0, 4, got.data()).ok());
  EXPECT_EQ(got, v);
}

TEST(Table, ColumnLookup) {
  Table t("demo");
  t.AddColumn(MakeIntColumn("a", {1}));
  t.AddColumn(MakeIntColumn("b", {2}));
  EXPECT_EQ(t.num_columns(), 2u);
  EXPECT_EQ(t.rows(), 1u);
  EXPECT_TRUE(t.ColumnIndex("b").ok());
  EXPECT_EQ(t.ColumnIndex("b").value(), 1u);
  EXPECT_EQ(t.ColumnIndex("zzz").status().code(), StatusCode::kNotFound);
  EXPECT_EQ(t.GetSchema().ToString(), "(a: integer, b: integer)");
}

TEST(DatabaseFile, RoundTripsTablesColumnsAndMetadata) {
  Database db;
  auto t = std::make_shared<Table>("facts");
  t->AddColumn(MakeIntColumn("id", {1, 2, 3, 4, 5}));
  t->AddColumn(MakeIntColumn("v", {9, 9, 9, 9, 9}));
  t->AddColumn(MakeStringColumn("tag", {"b", "a", "b", "c", "a"}));
  db.AddTable(t);

  std::vector<uint8_t> bytes;
  SerializeDatabase(db, &bytes);
  auto back = DeserializeDatabase(bytes);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  ASSERT_EQ(back.value().num_tables(), 1u);
  auto ft = back.value().GetTable("facts").value();
  EXPECT_EQ(ft->rows(), 5u);
  ASSERT_EQ(ft->num_columns(), 3u);

  // Metadata survives: id was dense/unique/sorted.
  auto id = ft->ColumnByName("id").value();
  EXPECT_TRUE(id->metadata().dense);
  EXPECT_TRUE(id->metadata().unique);
  EXPECT_EQ(id->metadata().min_value, 1);
  EXPECT_EQ(id->metadata().max_value, 5);

  // String column resolves through its restored heap.
  auto tag = ft->ColumnByName("tag").value();
  std::vector<Lane> lanes(5);
  ASSERT_TRUE(tag->GetLanes(0, 5, lanes.data()).ok());
  EXPECT_EQ(tag->GetString(lanes[0]), "b");
  EXPECT_EQ(tag->GetString(lanes[3]), "c");
}

TEST(DatabaseFile, SingleFileOnDisk) {
  Database db;
  auto t = std::make_shared<Table>("t");
  t->AddColumn(MakeIntColumn("x", {1, 2, 3}));
  db.AddTable(t);
  const std::string path = ::testing::TempDir() + "/tde_test.tde";
  ASSERT_TRUE(WriteDatabase(db, path).ok());
  auto back = ReadDatabase(path);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(back.value().GetTable("t").value()->rows(), 3u);
  std::remove(path.c_str());
}

TEST(DatabaseFile, RejectsGarbage) {
  std::vector<uint8_t> garbage = {1, 2, 3, 4, 5, 6, 7, 8, 9};
  EXPECT_EQ(DeserializeDatabase(garbage).status().code(),
            StatusCode::kIOError);
}

TEST(DatabaseFile, RejectsTruncation) {
  Database db;
  auto t = std::make_shared<Table>("t");
  t->AddColumn(MakeIntColumn("x", {1, 2, 3}));
  db.AddTable(t);
  std::vector<uint8_t> bytes;
  SerializeDatabase(db, &bytes);
  bytes.resize(bytes.size() / 2);
  EXPECT_FALSE(DeserializeDatabase(bytes).ok());
}

TEST(DatabaseFile, CompressionShrinksTheSingleFileCopy) {
  // Sect. 2.3.3: the single-file copy is unavoidable; encodings shrink it.
  std::vector<Lane> v(100000);
  for (size_t i = 0; i < v.size(); ++i) v[i] = static_cast<Lane>(i % 100);

  auto encoded = std::make_shared<Table>("e");
  encoded->AddColumn(MakeIntColumn("x", v));
  Database db_enc;
  db_enc.AddTable(encoded);

  ColumnBuildInput in;
  in.name = "x";
  in.type = TypeId::kInteger;
  in.lanes = v;
  FlowTableOptions off;
  off.enable_encodings = false;
  auto unencoded = std::make_shared<Table>("u");
  unencoded->AddColumn(BuildColumn(std::move(in), off).MoveValue());
  Database db_raw;
  db_raw.AddTable(unencoded);

  std::vector<uint8_t> enc_bytes, raw_bytes;
  SerializeDatabase(db_enc, &enc_bytes);
  SerializeDatabase(db_raw, &raw_bytes);
  EXPECT_LT(enc_bytes.size() * 4, raw_bytes.size());
}

}  // namespace
}  // namespace tde
