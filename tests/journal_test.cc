#include "src/observe/journal.h"

#include <algorithm>
#include <array>
#include <atomic>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "src/core/engine.h"
#include "src/observe/json.h"
#include "src/observe/metrics.h"
#include "src/plan/executor.h"
#include "src/workload/tpch.h"
#include "tests/test_util.h"

namespace tde {
namespace {

using observe::QueryCounter;
using observe::QueryJournal;
using observe::QueryJournalEntry;
using observe::StatsScope;

uint64_t GlobalCounterValue(QueryCounter c) {
  return observe::MetricsRegistry::Global()
      .GetCounter(observe::QueryCounterMetricName(c))
      ->value();
}

TEST(Journal, RingEvictsOldestPastCapacity) {
  QueryJournal j(/*capacity=*/3);
  for (uint64_t i = 1; i <= 5; ++i) {
    QueryJournalEntry e;
    e.id = j.NextId();
    e.rows_out = i;
    j.Record(std::move(e));
  }
  EXPECT_EQ(j.size(), 3u);
  const auto snap = j.Snapshot();
  ASSERT_EQ(snap.size(), 3u);
  // Oldest first, the two earliest entries evicted.
  EXPECT_EQ(snap[0].id, 3u);
  EXPECT_EQ(snap[2].id, 5u);
  j.Clear();
  EXPECT_EQ(j.size(), 0u);
  // Ids are never reused after a clear.
  EXPECT_GT(j.NextId(), 5u);
}

TEST(Journal, QueryCountFeedsScopeAndGlobal) {
  observe::SetStatsEnabled(true);
  const uint64_t before = GlobalCounterValue(QueryCounter::kRowsPruned);
  {
    StatsScope scope;
    observe::QueryCount(QueryCounter::kRowsPruned, 7);
    EXPECT_EQ(scope.value(QueryCounter::kRowsPruned), 7u);
    // Nested scope shadows the outer one.
    {
      StatsScope inner;
      observe::QueryCount(QueryCounter::kRowsPruned, 2);
      EXPECT_EQ(inner.value(QueryCounter::kRowsPruned), 2u);
    }
    EXPECT_EQ(scope.value(QueryCounter::kRowsPruned), 7u);
  }
  EXPECT_EQ(GlobalCounterValue(QueryCounter::kRowsPruned), before + 9);
  // Outside any scope the global still advances.
  observe::QueryCount(QueryCounter::kRowsPruned, 1);
  EXPECT_EQ(GlobalCounterValue(QueryCounter::kRowsPruned), before + 10);
}

TEST(Journal, QueryCountDisabledIsNoOp) {
  observe::SetStatsEnabled(false);
  const uint64_t before = GlobalCounterValue(QueryCounter::kCacheHits);
  StatsScope scope;
  observe::QueryCount(QueryCounter::kCacheHits, 5);
  observe::SetStatsEnabled(true);
  EXPECT_EQ(GlobalCounterValue(QueryCounter::kCacheHits), before);
  EXPECT_EQ(scope.value(QueryCounter::kCacheHits), 0u);
}

TEST(Journal, BindAdoptsScopeOnWorkerThreads) {
  observe::SetStatsEnabled(true);
  StatsScope scope;
  std::vector<std::thread> pool;
  for (int t = 0; t < 4; ++t) {
    pool.emplace_back([&scope]() {
      StatsScope::Bind bind(&scope);
      for (int i = 0; i < 1000; ++i) {
        observe::QueryCount(QueryCounter::kRunsFolded, 1);
      }
    });
  }
  for (auto& t : pool) t.join();
  EXPECT_EQ(scope.value(QueryCounter::kRunsFolded), 4000u);
  // Null scope is a no-op bind (workers outside any query).
  std::thread([&]() {
    StatsScope::Bind bind(nullptr);
    observe::QueryCount(QueryCounter::kRunsFolded, 1);
  }).join();
  EXPECT_EQ(scope.value(QueryCounter::kRunsFolded), 4000u);
}

TEST(Journal, ExecuteSqlRecordsEntries) {
  observe::SetStatsEnabled(true);
  Engine engine;
  auto imported = engine.ImportTextBuffer(
      GenerateTpchTable(TpchTable::kLineitem, 0.002), "lineitem", {});
  ASSERT_TRUE(imported.ok()) << imported.status().ToString();

  QueryJournal& journal = QueryJournal::Global();
  journal.Clear();
  const std::string q =
      "SELECT l_returnflag, COUNT(*) AS n FROM lineitem "
      "WHERE l_quantity > 10 GROUP BY l_returnflag";
  auto r = engine.ExecuteSql(q);
  ASSERT_TRUE(r.ok()) << r.status().ToString();

  ASSERT_EQ(journal.size(), 1u);
  const QueryJournalEntry e = journal.Snapshot()[0];
  EXPECT_EQ(e.sql, q);
  EXPECT_TRUE(e.ok);
  EXPECT_EQ(e.rows_out, r.value().num_rows());
  EXPECT_GT(e.wall_ns, 0u);
  EXPECT_NE(e.plan_fingerprint, 0u);
  // The scan traversed stored bytes and decoded them.
  EXPECT_GT(e.counters[static_cast<size_t>(
                QueryCounter::kBytesScannedCompressed)],
            0u);
  EXPECT_GT(
      e.counters[static_cast<size_t>(QueryCounter::kBytesScannedDecoded)],
      0u);
  // Compressed-domain execution moves fewer bytes than it stands for.
  EXPECT_LT(e.counters[static_cast<size_t>(
                QueryCounter::kBytesScannedCompressed)],
            e.counters[static_cast<size_t>(
                QueryCounter::kBytesScannedDecoded)]);

  // Same statement, same plan shape -> same fingerprint; different
  // statement -> different fingerprint.
  ASSERT_TRUE(engine.ExecuteSql(q).ok());
  auto other = engine.ExecuteSql("SELECT COUNT(*) AS n FROM lineitem");
  ASSERT_TRUE(other.ok()) << other.status().ToString();
  const auto snap = journal.Snapshot();
  ASSERT_EQ(snap.size(), 3u);
  EXPECT_EQ(snap[0].plan_fingerprint, snap[1].plan_fingerprint);
  EXPECT_NE(snap[0].plan_fingerprint, snap[2].plan_fingerprint);
  EXPECT_GT(snap[1].id, snap[0].id);
}

TEST(Journal, ExplainAnalyzePrintsJournalId) {
  observe::SetStatsEnabled(true);
  Engine engine;
  auto imported = engine.ImportTextBuffer(
      GenerateTpchTable(TpchTable::kNation, 1.0), "nation", {});
  ASSERT_TRUE(imported.ok()) << imported.status().ToString();
  auto analyzed =
      engine.ExecuteSql("EXPLAIN ANALYZE SELECT COUNT(*) AS n FROM nation");
  ASSERT_TRUE(analyzed.ok()) << analyzed.status().ToString();
  const uint64_t last = observe::LastJournalIdOnThread();
  ASSERT_GT(last, 0u);
  bool saw_id = false;
  for (uint64_t r = 0; r < analyzed.value().num_rows(); ++r) {
    if (analyzed.value().ValueString(r, 0).find(
            "journal query id: " + std::to_string(last)) !=
        std::string::npos) {
      saw_id = true;
    }
  }
  EXPECT_TRUE(saw_id);
  // The id resolves to the journal entry for the analyzed statement.
  bool found = false;
  for (const QueryJournalEntry& e : QueryJournal::Global().Snapshot()) {
    if (e.id == last) {
      found = true;
      EXPECT_NE(e.sql.find("FROM nation"), std::string::npos);
    }
  }
  EXPECT_TRUE(found);
}

TEST(Journal, TdeQueriesVirtualTable) {
  observe::SetStatsEnabled(true);
  Engine engine;
  auto imported = engine.ImportTextBuffer(
      GenerateTpchTable(TpchTable::kNation, 1.0), "nation", {});
  ASSERT_TRUE(imported.ok()) << imported.status().ToString();
  QueryJournal::Global().Clear();
  ASSERT_TRUE(engine.ExecuteSql("SELECT COUNT(*) AS n FROM nation").ok());
  auto rows = engine.ExecuteSql(
      "SELECT id, rows_out, ok FROM tde_queries WHERE ok = 1");
  ASSERT_TRUE(rows.ok()) << rows.status().ToString();
  ASSERT_EQ(rows.value().num_rows(), 1u);
  EXPECT_GT(rows.value().Value(0, 0), 0);
  EXPECT_EQ(rows.value().Value(0, 1), 1);  // COUNT(*) returns one row
  EXPECT_EQ(rows.value().Value(0, 2), 1);
}

/// The acceptance criterion of the journal design: per-query deltas sum
/// exactly to the global counter movement, including under concurrent
/// queries, because every increment lands in exactly one scope.
TEST(Journal, DeltasSumToGlobalsAcrossConcurrentQueries) {
  observe::SetStatsEnabled(true);
  Engine engine;
  auto imported = engine.ImportTextBuffer(
      GenerateTpchTable(TpchTable::kLineitem, 0.005), "lineitem", {});
  ASSERT_TRUE(imported.ok()) << imported.status().ToString();

  QueryJournal& journal = QueryJournal::Global();
  journal.Clear();
  journal.set_capacity(QueryJournal::kDefaultCapacity);

  std::array<uint64_t, observe::kNumQueryCounters> before{};
  for (int i = 0; i < observe::kNumQueryCounters; ++i) {
    before[static_cast<size_t>(i)] =
        GlobalCounterValue(static_cast<QueryCounter>(i));
  }

  const std::vector<std::string> queries = {
      "SELECT l_returnflag, COUNT(*) AS n FROM lineitem GROUP BY "
      "l_returnflag",
      "SELECT COUNT(*) AS n FROM lineitem WHERE l_quantity > 25",
      "SELECT l_linestatus, SUM(l_quantity) AS s FROM lineitem GROUP BY "
      "l_linestatus",
      "SELECT MIN(l_quantity) AS lo, MAX(l_quantity) AS hi FROM lineitem",
  };
  constexpr int kThreads = 4;
  constexpr int kPerThread = 6;
  const Status st = testutil::RunConcurrently(kThreads, [&](int t) -> Status {
    for (int i = 0; i < kPerThread; ++i) {
      auto r = engine.ExecuteSql(
          queries[static_cast<size_t>(t + i) % queries.size()]);
      if (!r.ok()) return r.status();
    }
    return Status::OK();
  });
  ASSERT_TRUE(st.ok()) << st.ToString();

  const auto snap = journal.Snapshot();
  ASSERT_EQ(snap.size(), static_cast<size_t>(kThreads * kPerThread));
  for (int i = 0; i < observe::kNumQueryCounters; ++i) {
    const auto c = static_cast<QueryCounter>(i);
    uint64_t summed = 0;
    for (const QueryJournalEntry& e : snap) {
      summed += e.counters[static_cast<size_t>(i)];
    }
    EXPECT_EQ(GlobalCounterValue(c) - before[static_cast<size_t>(i)], summed)
        << observe::QueryCounterMetricName(c);
  }
  // The workload actually exercised the compressed-domain counters.
  uint64_t scanned = 0;
  for (const QueryJournalEntry& e : snap) {
    scanned += e.counters[static_cast<size_t>(
        QueryCounter::kBytesScannedCompressed)];
  }
  EXPECT_GT(scanned, 0u);
}

/// Acceptance check for the compressed-domain sort counters: a Top-N over
/// a segmented table materializes far fewer rows than it scans and skips
/// the segments whose zone maps cannot beat the heap, dictionary keys
/// compare in the integer domain, and a single-key sort over a
/// run-length column orders runs instead of rows. All of it must surface
/// in the journal and in EXPLAIN ANALYZE.
TEST(Journal, SortCountersFlowToJournalAndExplain) {
  observe::SetStatsEnabled(true);
  Engine engine;
  ImportOptions opts;
  opts.flow.segment_rows = 512;
  // k ascending -> disjoint per-segment zones; s low-cardinality strings;
  // r in non-monotone runs of 256 rows.
  const char* words[] = {"walnut", "elm", "cedar", "ash"};
  std::string csv = "k,s,r\n";
  for (int i = 0; i < 4096; ++i) {
    csv += std::to_string(i) + "," + words[i % 4] + "," +
           std::to_string((i / 256) * 3 % 7) + "\n";
  }
  auto imported = engine.ImportTextBuffer(csv, "seq", opts);
  ASSERT_TRUE(imported.ok()) << imported.status().ToString();

  QueryJournal& journal = QueryJournal::Global();
  const auto counter = [](const QueryJournalEntry& e, QueryCounter c) {
    return e.counters[static_cast<size_t>(c)];
  };

  // Top-N over the segmented scan: the first segment already holds the
  // 100 smallest keys, so every other segment's minimum loses against the
  // full heap and is skipped unopened.
  journal.Clear();
  auto topn = engine.ExecuteSql("SELECT * FROM seq ORDER BY k LIMIT 100");
  ASSERT_TRUE(topn.ok()) << topn.status().ToString();
  ASSERT_EQ(topn.value().num_rows(), 100u);
  EXPECT_EQ(topn.value().Value(0, 0), 0);
  EXPECT_EQ(topn.value().Value(99, 0), 99);
  ASSERT_EQ(journal.size(), 1u);
  {
    const QueryJournalEntry e = journal.Snapshot()[0];
    const uint64_t kept = counter(e, QueryCounter::kRowsMaterialized);
    EXPECT_GE(kept, 100u);
    EXPECT_LT(kept, 4096u / 4);  // the bound: k rows + heap churn, not n
    EXPECT_EQ(counter(e, QueryCounter::kTopNSegmentsSkipped), 7u);
  }
  // The same numbers annotate the TopN node in EXPLAIN ANALYZE.
  auto analyzed = engine.ExecuteSql(
      "EXPLAIN ANALYZE SELECT * FROM seq ORDER BY k LIMIT 100");
  ASSERT_TRUE(analyzed.ok()) << analyzed.status().ToString();
  std::string tree;
  for (uint64_t r = 0; r < analyzed.value().num_rows(); ++r) {
    tree += analyzed.value().ValueString(r, 0) + "\n";
  }
  EXPECT_NE(tree.find("rows_materialized"), std::string::npos) << tree;
  EXPECT_NE(tree.find("segments_skipped=7"), std::string::npos) << tree;

  // Dictionary-coded sort keys: a string first key compares as integers.
  journal.Clear();
  auto dict = engine.ExecuteSql("SELECT * FROM seq ORDER BY s, k LIMIT 3");
  ASSERT_TRUE(dict.ok()) << dict.status().ToString();
  ASSERT_EQ(dict.value().num_rows(), 3u);
  EXPECT_EQ(dict.value().ValueString(0, 1), "ash");
  EXPECT_EQ(dict.value().Value(0, 0), 3);  // lowest k among the ash rows
  EXPECT_EQ(dict.value().Value(1, 0), 7);
  ASSERT_EQ(journal.size(), 1u);
  EXPECT_GE(counter(journal.Snapshot()[0], QueryCounter::kDictKeySorts), 1u);

  // Run-aware ordering: ORDER BY on a run-length column sorts the run
  // index, never the rows. 4096 rows in 16 runs -> 16 runs ordered.
  Engine mono;  // monolithic layout so the run directory spans the table
  auto imported2 = mono.ImportTextBuffer(csv, "seq", {});
  ASSERT_TRUE(imported2.ok()) << imported2.status().ToString();
  journal.Clear();
  auto runs = mono.ExecuteSql("SELECT * FROM seq ORDER BY r");
  ASSERT_TRUE(runs.ok()) << runs.status().ToString();
  ASSERT_EQ(runs.value().num_rows(), 4096u);
  EXPECT_EQ(runs.value().Value(0, 2), 0);
  EXPECT_EQ(runs.value().Value(4095, 2), 6);
  ASSERT_EQ(journal.size(), 1u);
  {
    const QueryJournalEntry e = journal.Snapshot()[0];
    EXPECT_EQ(counter(e, QueryCounter::kRunsSorted), 16u);
    EXPECT_EQ(counter(e, QueryCounter::kRowsMaterialized), 0u);
  }
}

TEST(Journal, SlowQueryLineOnThreshold) {
  observe::SetStatsEnabled(true);
  const int64_t saved = QueryJournal::SlowQueryThresholdMs();
  QueryJournal::SetSlowQueryThresholdMs(0);  // everything is slow
  Engine engine;
  auto imported = engine.ImportTextBuffer(
      GenerateTpchTable(TpchTable::kNation, 1.0), "nation", {});
  ASSERT_TRUE(imported.ok()) << imported.status().ToString();
  testing::internal::CaptureStderr();
  // The predicate defeats the metadata-answer shortcut, so the query
  // actually scans bytes and the line carries the scan counters (zero
  // counters are elided from the breakdown).
  ASSERT_TRUE(
      engine.ExecuteSql(
                "SELECT COUNT(*) AS n FROM nation WHERE n_nationkey > 3")
          .ok());
  const std::string err = testing::internal::GetCapturedStderr();
  QueryJournal::SetSlowQueryThresholdMs(saved);
  EXPECT_NE(err.find("[tde] slow query id="), std::string::npos) << err;
  EXPECT_NE(err.find("sql=SELECT COUNT(*) AS n FROM nation"),
            std::string::npos)
      << err;
  EXPECT_NE(err.find("bytes_scanned_compressed="), std::string::npos) << err;
  // Threshold -1 disables the line.
  QueryJournal::SetSlowQueryThresholdMs(-1);
  testing::internal::CaptureStderr();
  ASSERT_TRUE(
      engine.ExecuteSql("SELECT COUNT(*) AS n FROM nation").ok());
  EXPECT_EQ(testing::internal::GetCapturedStderr(), "");
  QueryJournal::SetSlowQueryThresholdMs(saved);
}

TEST(Journal, NdjsonEscapesSqlText) {
  QueryJournal j(4);
  QueryJournalEntry e;
  e.id = j.NextId();
  e.sql = "SELECT \"x\"\nFROM t\twhere c = '\x01'";
  e.plan_fingerprint = 0xabcdef;
  j.Record(std::move(e));
  const std::string ndjson = j.ToNdjson();
  EXPECT_NE(ndjson.find("\\\"x\\\""), std::string::npos) << ndjson;
  EXPECT_NE(ndjson.find("\\n"), std::string::npos);
  EXPECT_NE(ndjson.find("\\t"), std::string::npos);
  EXPECT_NE(ndjson.find("\\u0001"), std::string::npos);
  EXPECT_NE(ndjson.find("\"fingerprint\":\"0000000000abcdef\""),
            std::string::npos)
      << ndjson;
  // One line per entry, and no raw control characters survive.
  EXPECT_EQ(std::count(ndjson.begin(), ndjson.end(), '\n'), 1);
  for (char c : ndjson) {
    if (c == '\n') continue;
    EXPECT_GE(static_cast<unsigned char>(c), 0x20u);
  }
}

TEST(Journal, StatsOffExecutesWithoutRecording) {
  observe::SetStatsEnabled(false);
  Engine engine;
  auto imported = engine.ImportTextBuffer(
      GenerateTpchTable(TpchTable::kNation, 1.0), "nation", {});
  if (!imported.ok()) {
    observe::SetStatsEnabled(true);
    FAIL() << imported.status().ToString();
  }
  QueryJournal::Global().Clear();
  auto r = engine.ExecuteSql("SELECT COUNT(*) AS n FROM nation");
  const size_t recorded = QueryJournal::Global().size();
  observe::SetStatsEnabled(true);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r.value().num_rows(), 1u);
  EXPECT_EQ(recorded, 0u);
}

}  // namespace
}  // namespace tde
