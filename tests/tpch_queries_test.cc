// Integration: real TPC-H queries over an imported lineitem table,
// validated against reference answers computed directly from the raw scan.

#include <bit>
#include <map>

#include <gtest/gtest.h>

#include "src/core/engine.h"
#include "src/workload/tpch.h"

namespace tde {
namespace {

using namespace tde::expr;  // NOLINT

class TpchQueriesFixture : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    engine_ = new Engine();
    ImportOptions opts;
    opts.text.field_separator = '|';
    auto t = engine_->ImportTextBuffer(
        GenerateTpchTable(TpchTable::kLineitem, 0.002), "lineitem", opts);
    ASSERT_TRUE(t.ok()) << t.status().ToString();
    lineitem_ = t.MoveValue();
  }
  static void TearDownTestSuite() {
    delete engine_;
    engine_ = nullptr;
    lineitem_ = nullptr;
  }

  static double AsReal(Lane v) {
    return std::bit_cast<double>(static_cast<uint64_t>(v));
  }

  static Engine* engine_;
  static std::shared_ptr<Table> lineitem_;
};

Engine* TpchQueriesFixture::engine_ = nullptr;
std::shared_ptr<Table> TpchQueriesFixture::lineitem_ = nullptr;

TEST_F(TpchQueriesFixture, Q1PricingSummary) {
  // SELECT l_returnflag, l_linestatus, SUM(qty), SUM(extprice),
  //        AVG(qty), COUNT(*)
  // FROM lineitem WHERE l_shipdate <= date '1998-09-02'
  // GROUP BY l_returnflag, l_linestatus ORDER BY ...
  const auto cutoff = Date(1998, 9, 2);
  auto r = engine_->Execute(
      Plan::Scan(lineitem_)
          .Filter(Le(Col("l_shipdate"), cutoff))
          .Aggregate({"l_returnflag", "l_linestatus"},
                     {{AggKind::kSum, "l_quantity", "sum_qty"},
                      {AggKind::kSum, "l_extendedprice", "sum_price"},
                      {AggKind::kAvg, "l_quantity", "avg_qty"},
                      {AggKind::kCountStar, "", "count_order"}})
          .OrderBy({{"l_returnflag", true}, {"l_linestatus", true}}));
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  const QueryResult& q = r.value();
  // 3 flags x 2 statuses.
  ASSERT_EQ(q.num_rows(), 6u);

  // Reference from a raw scan.
  auto raw = engine_->Execute(Plan::Scan(lineitem_)).MoveValue();
  std::map<std::pair<std::string, std::string>,
           std::tuple<int64_t, double, uint64_t>>
      ref;
  const int64_t cutoff_days = DaysFromCivil(1998, 9, 2);
  size_t flag_i = 8, status_i = 9, qty_i = 4, price_i = 5, ship_i = 10;
  for (uint64_t row = 0; row < raw.num_rows(); ++row) {
    if (raw.Value(row, ship_i) > cutoff_days) continue;
    auto& [qty, price, count] =
        ref[{raw.ValueString(row, flag_i), raw.ValueString(row, status_i)}];
    qty += raw.Value(row, qty_i);
    price += AsReal(raw.Value(row, price_i));
    ++count;
  }
  ASSERT_EQ(ref.size(), 6u);
  uint64_t total = 0;
  for (uint64_t row = 0; row < q.num_rows(); ++row) {
    const auto key = std::make_pair(q.ValueString(row, 0),
                                    q.ValueString(row, 1));
    ASSERT_TRUE(ref.count(key)) << key.first << key.second;
    const auto& [qty, price, count] = ref[key];
    EXPECT_EQ(q.Value(row, 2), qty);
    EXPECT_NEAR(AsReal(q.Value(row, 3)), price, 1e-6 * std::abs(price));
    EXPECT_NEAR(AsReal(q.Value(row, 4)),
                static_cast<double>(qty) / static_cast<double>(count), 1e-9);
    EXPECT_EQ(static_cast<uint64_t>(q.Value(row, 5)), count);
    total += count;
  }
  EXPECT_GT(total, 0u);
  // Output is sorted by the group keys.
  EXPECT_LE(q.ValueString(0, 0), q.ValueString(5, 0));
}

TEST_F(TpchQueriesFixture, Q6ForecastRevenue) {
  // SELECT SUM(l_extendedprice * l_discount) FROM lineitem
  // WHERE l_shipdate >= '1994-01-01' AND l_shipdate < '1995-01-01'
  //   AND l_discount BETWEEN 0.05 AND 0.07 AND l_quantity < 24
  auto r = engine_->Execute(
      Plan::Scan(lineitem_)
          .Filter(And(
              And(Ge(Col("l_shipdate"), Date(1994, 1, 1)),
                  Lt(Col("l_shipdate"), Date(1995, 1, 1))),
              And(And(Ge(Col("l_discount"), Real(0.05)),
                      Le(Col("l_discount"), Real(0.07))),
                  Lt(Col("l_quantity"), Int(24)))))
          .Project({{Mul(Col("l_extendedprice"), Col("l_discount")),
                     "revenue"}})
          .Aggregate({}, {{AggKind::kSum, "revenue", "revenue"},
                          {AggKind::kCountStar, "", "n"}}));
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_EQ(r.value().num_rows(), 1u);

  // Reference.
  auto raw = engine_->Execute(Plan::Scan(lineitem_)).MoveValue();
  double ref = 0;
  uint64_t ref_n = 0;
  const int64_t lo = DaysFromCivil(1994, 1, 1), hi = DaysFromCivil(1995, 1, 1);
  for (uint64_t row = 0; row < raw.num_rows(); ++row) {
    const int64_t ship = raw.Value(row, 10);
    const double disc = AsReal(raw.Value(row, 6));
    const int64_t qty = raw.Value(row, 4);
    if (ship >= lo && ship < hi && disc >= 0.05 && disc <= 0.07 && qty < 24) {
      ref += AsReal(raw.Value(row, 5)) * disc;
      ++ref_n;
    }
  }
  EXPECT_GT(ref_n, 0u);
  EXPECT_EQ(static_cast<uint64_t>(r.value().Value(0, 1)), ref_n);
  EXPECT_NEAR(AsReal(r.value().Value(0, 0)), ref, 1e-6 * std::abs(ref));
}

TEST_F(TpchQueriesFixture, ShipmodeBreakdownThroughInvisibleJoin) {
  // Group by a dictionary-compressed string with a filter on another one:
  // exercises the invisible-join path inside a richer plan.
  auto r = engine_->Execute(
      Plan::Scan(lineitem_)
          .Filter(Eq(Col("l_returnflag"), Str("R")))
          .Aggregate({"l_shipmode"},
                     {{AggKind::kCountStar, "", "n"},
                      {AggKind::kSum, "l_quantity", "qty"}})
          .OrderBy({{"l_shipmode", true}}));
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r.value().num_rows(), 7u);  // 7 ship modes
  // Cross-check total count against a direct filter count.
  auto direct = engine_->Execute(
      Plan::Scan(lineitem_)
          .Filter(Eq(Col("l_returnflag"), Str("R")))
          .Aggregate({}, {{AggKind::kCountStar, "", "n"}}),
      StrategicOptions{.enable_invisible_join = false});
  ASSERT_TRUE(direct.ok());
  uint64_t total = 0;
  for (uint64_t row = 0; row < r.value().num_rows(); ++row) {
    total += static_cast<uint64_t>(r.value().Value(row, 1));
  }
  EXPECT_EQ(total, static_cast<uint64_t>(direct.value().Value(0, 0)));
}

TEST_F(TpchQueriesFixture, MonthlyShipmentsViaDateFunctions) {
  auto r = engine_->Execute(
      Plan::Scan(lineitem_)
          .Project({{DateF(DateFunc::kYear, Col("l_shipdate")), "y"},
                    {Col("l_quantity"), "q"}})
          .Aggregate({"y"}, {{AggKind::kCountStar, "", "n"}})
          .OrderBy({{"y", true}}));
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  // Shipments span 1992..1998.
  ASSERT_GE(r.value().num_rows(), 6u);
  EXPECT_EQ(r.value().Value(0, 0), 1992);
  uint64_t total = 0;
  for (uint64_t row = 0; row < r.value().num_rows(); ++row) {
    total += static_cast<uint64_t>(r.value().Value(row, 1));
  }
  EXPECT_EQ(total, lineitem_->rows());
}

}  // namespace
}  // namespace tde

// ------------------------------------------------------- SQL query module

#include "src/workload/tpch_queries.h"

namespace tde {
namespace {

TEST(TpchSql, AllQueriesParseAndRun) {
  Engine engine;
  ASSERT_TRUE(LoadTpchTables(&engine, 0.002).ok());
  for (const TpchQuery& q : TpchQueries()) {
    auto r = engine.ExecuteSql(q.sql);
    ASSERT_TRUE(r.ok()) << q.id << ": " << r.status().ToString();
    EXPECT_GT(r.value().num_rows(), 0u) << q.id;
    if (std::string(q.id) == "Q1") {
      EXPECT_EQ(r.value().num_rows(), 6u);
      EXPECT_EQ(r.value().num_columns(), 9u);
    }
    if (std::string(q.id) == "Q3") {
      EXPECT_LE(r.value().num_rows(), 10u);  // LIMIT 10
      // Revenue descending.
      for (uint64_t i = 1; i < r.value().num_rows(); ++i) {
        const double prev = std::bit_cast<double>(
            static_cast<uint64_t>(r.value().Value(i - 1, 1)));
        const double cur = std::bit_cast<double>(
            static_cast<uint64_t>(r.value().Value(i, 1)));
        EXPECT_GE(prev, cur);
      }
    }
    if (std::string(q.id) == "Q12") {
      EXPECT_EQ(r.value().num_rows(), 2u);  // MAIL and SHIP
    }
  }
}

TEST(TpchSql, Q6MatchesPlanApiAnswer) {
  Engine engine;
  ASSERT_TRUE(LoadTpchTables(&engine, 0.002).ok());
  auto sql = engine.ExecuteSql(TpchQueries()[3].sql);  // Q6
  ASSERT_TRUE(sql.ok()) << sql.status().ToString();
  auto table = engine.database()->GetTable("lineitem").value();
  using namespace tde::expr;  // NOLINT
  auto api = engine.Execute(
      Plan::Scan(table)
          .Filter(And(And(Ge(Col("l_shipdate"), Date(1994, 1, 1)),
                          Lt(Col("l_shipdate"), Date(1995, 1, 1))),
                      And(And(Ge(Col("l_discount"), Real(0.05)),
                              Le(Col("l_discount"), Real(0.07))),
                          Lt(Col("l_quantity"), Int(24)))))
          .Project({{Mul(Col("l_extendedprice"), Col("l_discount")), "r"}})
          .Aggregate({}, {{AggKind::kSum, "r", "revenue"}}));
  ASSERT_TRUE(api.ok());
  const double a = std::bit_cast<double>(
      static_cast<uint64_t>(sql.value().Value(0, 0)));
  const double b = std::bit_cast<double>(
      static_cast<uint64_t>(api.value().Value(0, 0)));
  EXPECT_NEAR(a, b, 1e-6 * std::abs(b));
}

}  // namespace
}  // namespace tde
