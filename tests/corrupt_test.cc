// Failure injection: corrupt or truncated serialized streams and database
// files must fail with clean IOError statuses, never fault.

#include <random>

#include <gtest/gtest.h>

#include "src/encoding/stream.h"
#include "src/exec/flow_table.h"
#include "src/storage/database_file.h"
#include "src/storage/pager/column_cache.h"
#include "src/storage/pager/crc32c.h"
#include "src/storage/pager/format.h"
#include "src/textscan/text_scan.h"
#include "src/storage/heap_accelerator.h"
#include "tests/test_util.h"

namespace tde {
namespace {

std::vector<uint8_t> GoodStream(EncodingType type) {
  EncodingStats stats;
  std::vector<Lane> v(3000);
  for (size_t i = 0; i < v.size(); ++i) {
    v[i] = type == EncodingType::kAffine ? static_cast<Lane>(i)
                                         : static_cast<Lane>(i % 40);
  }
  stats.Update(v.data(), v.size());
  auto s = EncodedStream::Create(type, 8, true, stats, 0).MoveValue();
  EXPECT_TRUE(s->Append(v.data(), v.size()).ok());
  EXPECT_TRUE(s->Finalize().ok());
  return s->buffer();
}

class CorruptStream : public ::testing::TestWithParam<EncodingType> {};

TEST_P(CorruptStream, GoodBufferOpens) {
  EXPECT_TRUE(EncodedStream::Open(GoodStream(GetParam())).ok());
}

TEST_P(CorruptStream, TruncatedHeaderRejected) {
  auto buf = GoodStream(GetParam());
  buf.resize(16);
  EXPECT_EQ(EncodedStream::Open(buf).status().code(), StatusCode::kIOError);
}

TEST_P(CorruptStream, TruncatedDataRejected) {
  auto buf = GoodStream(GetParam());
  if (GetParam() == EncodingType::kAffine) GTEST_SKIP();  // no data section
  buf.resize(buf.size() - (buf.size() - 40) / 2);
  EXPECT_EQ(EncodedStream::Open(buf).status().code(), StatusCode::kIOError);
}

TEST_P(CorruptStream, BadAlgorithmByteRejected) {
  auto buf = GoodStream(GetParam());
  buf[20] = 99;
  EXPECT_FALSE(EncodedStream::Open(buf).ok());
}

TEST_P(CorruptStream, BadWidthRejected) {
  auto buf = GoodStream(GetParam());
  buf[21] = 3;
  EXPECT_EQ(EncodedStream::Open(buf).status().code(), StatusCode::kIOError);
}

TEST_P(CorruptStream, HugeDataOffsetRejected) {
  auto buf = GoodStream(GetParam());
  HeaderView(&buf).set_data_offset(uint64_t{1} << 40);
  EXPECT_EQ(EncodedStream::Open(buf).status().code(), StatusCode::kIOError);
}

TEST_P(CorruptStream, InflatedLogicalSizeRejected) {
  auto buf = GoodStream(GetParam());
  if (GetParam() == EncodingType::kAffine) GTEST_SKIP();
  HeaderView(&buf).set_logical_size(uint64_t{1} << 30);
  EXPECT_EQ(EncodedStream::Open(buf).status().code(), StatusCode::kIOError);
}

TEST_P(CorruptStream, BadBlockSizeRejected) {
  auto buf = GoodStream(GetParam());
  HeaderView(&buf).set_block_size(7);  // not a multiple of 32
  EXPECT_EQ(EncodedStream::Open(buf).status().code(), StatusCode::kIOError);
}

INSTANTIATE_TEST_SUITE_P(
    AllEncodings, CorruptStream,
    ::testing::Values(EncodingType::kUncompressed,
                      EncodingType::kFrameOfReference, EncodingType::kDelta,
                      EncodingType::kDictionary, EncodingType::kAffine,
                      EncodingType::kRunLength),
    [](const auto& info) {
      std::string n = EncodingName(info.param);
      for (char& c : n) {
        if (c == '-') c = '_';
      }
      return n;
    });

TEST(CorruptStream, DictBitsPastLimitRejected) {
  auto buf = GoodStream(EncodingType::kDictionary);
  HeaderView(&buf).set_bits(16);
  EXPECT_EQ(EncodedStream::Open(buf).status().code(), StatusCode::kIOError);
}

TEST(CorruptStream, DictEntryCountPastCapacityRejected) {
  auto buf = GoodStream(EncodingType::kDictionary);
  HeaderView(&buf).SetU64(24, uint64_t{1} << 20);
  EXPECT_EQ(EncodedStream::Open(buf).status().code(), StatusCode::kIOError);
}

TEST(CorruptStream, RleZeroFieldWidthRejected) {
  auto buf = GoodStream(EncodingType::kRunLength);
  buf[24] = 0;
  EXPECT_EQ(EncodedStream::Open(buf).status().code(), StatusCode::kIOError);
}

/// Parametrized over the file format version: the sweeps must hold for the
/// eager v1 layout, the paged, checksummed v2 layout, and the segmented v3
/// directory extension alike (DeserializeDatabase sniffs the magic and
/// takes the right path).
class CorruptDatabase : public ::testing::TestWithParam<int> {
 protected:
  std::vector<uint8_t> GoodDatabase() {
    Database db;
    auto t = std::make_shared<Table>("t");
    FlowTableOptions fopt;
    // v3: segment the columns (2000 rows / 400 = 5 segments each). The
    // other formats pin a threshold above the row count so the fixture
    // stays monolithic whatever TDE_SEGMENT_ROWS the suite runs under.
    fopt.segment_rows = GetParam() == 3 ? 400 : 1 << 20;
    ColumnBuildInput in;
    in.name = "x";
    in.type = TypeId::kInteger;
    for (int i = 0; i < 2000; ++i) in.lanes.push_back(i % 10);
    t->AddColumn(BuildColumn(std::move(in), fopt).MoveValue());

    ColumnBuildInput sin;
    sin.name = "s";
    sin.type = TypeId::kString;
    sin.heap = std::make_shared<StringHeap>();
    HeapAccelerator acc(sin.heap.get());
    for (int i = 0; i < 2000; ++i) {
      sin.lanes.push_back(acc.Add("v" + std::to_string(i % 5)));
    }
    sin.accel_active = true;
    sin.accel_distinct = acc.distinct_count();
    sin.accel_arrived_sorted = acc.arrived_sorted();
    t->AddColumn(BuildColumn(std::move(sin), fopt).MoveValue());
    db.AddTable(t);
    std::vector<uint8_t> bytes;
    if (GetParam() >= 2) {
      // Small pages keep the sweep positions dense across real content.
      pager::WriteOptionsV2 opts;
      opts.page_size = 512;
      EXPECT_TRUE(pager::SerializeDatabaseV2(db, &bytes, opts).ok());
    } else {
      EXPECT_TRUE(SerializeDatabase(db, &bytes).ok());
    }
    return bytes;
  }
};

TEST_P(CorruptDatabase, TruncationAtManyOffsetsFailsCleanly) {
  const auto good = GoodDatabase();
  ASSERT_TRUE(DeserializeDatabase(good).ok());
  for (size_t cut = 0; cut < good.size(); cut += good.size() / 37 + 1) {
    std::vector<uint8_t> bad(good.begin(),
                             good.begin() + static_cast<ptrdiff_t>(cut));
    const auto r = DeserializeDatabase(bad);
    EXPECT_FALSE(r.ok()) << "cut at " << cut;
  }
}

TEST_P(CorruptDatabase, BitFlipsInStreamHeadersFailCleanlyOrRoundTrip) {
  const auto good = GoodDatabase();
  // Flip a byte at a sweep of positions; each must either fail cleanly or
  // produce a database that can still be walked without faulting.
  for (size_t pos = 8; pos < good.size(); pos += good.size() / 53 + 1) {
    std::vector<uint8_t> bad = good;
    bad[pos] ^= 0x5A;
    auto r = DeserializeDatabase(bad);
    if (!r.ok()) continue;
    for (const auto& t : r.value().tables()) {
      for (size_t c = 0; c < t->num_columns(); ++c) {
        const Column& col = t->column(c);
        std::vector<Lane> lanes(
            std::min<uint64_t>(col.rows(), 64));
        (void)col.GetLanes(0, lanes.size(), lanes.data());
      }
    }
  }
}

TEST_P(CorruptDatabase, DenseBitFlipsNearTheFrontFailCleanlyOrRoundTrip) {
  // The first kilobyte holds the format's most load-bearing bytes (v1:
  // table/column counts and the first stream header; v2: the entire file
  // header). Walk it exhaustively with every single-bit flip.
  const auto good = GoodDatabase();
  const size_t limit = std::min<size_t>(good.size(), 1024);
  for (size_t pos = 0; pos < limit; ++pos) {
    for (int bit = 0; bit < 8; ++bit) {
      std::vector<uint8_t> bad = good;
      bad[pos] ^= static_cast<uint8_t>(1u << bit);
      auto r = DeserializeDatabase(bad);
      if (!r.ok()) continue;
      for (const auto& t : r.value().tables()) {
        for (size_t c = 0; c < t->num_columns(); ++c) {
          const Column& col = t->column(c);
          std::vector<Lane> lanes(std::min<uint64_t>(col.rows(), 16));
          (void)col.GetLanes(0, lanes.size(), lanes.data());
        }
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Formats, CorruptDatabase,
                         ::testing::Values(1, 2, 3),
                         [](const auto& info) {
                           return "v" + std::to_string(info.param);
                         });

TEST(CorruptDatabaseV2, BlobCorruptionIsCaughtByChecksumOnEagerLoad) {
  // v2 blob bytes are CRC-protected: any flip inside a column blob must be
  // rejected at materialization, naming the column it hit.
  Database db;
  auto t = std::make_shared<Table>("t");
  ColumnBuildInput in;
  in.name = "x";
  in.type = TypeId::kInteger;
  for (int i = 0; i < 2000; ++i) in.lanes.push_back(i);
  FlowTableOptions fopt;
  fopt.segment_rows = 1 << 20;  // monolithic whatever TDE_SEGMENT_ROWS is
  t->AddColumn(BuildColumn(std::move(in), fopt).MoveValue());
  db.AddTable(t);
  pager::WriteOptionsV2 opts;
  opts.page_size = 512;
  std::vector<uint8_t> good;
  ASSERT_TRUE(pager::SerializeDatabaseV2(db, &good, opts).ok());

  // Flip a byte inside the actual stream blob of "t.x" (located through
  // the directory — page padding is not CRC-covered, blob bytes are).
  const auto dir = pager::ParseDirectoryV2(good);
  ASSERT_TRUE(dir.ok());
  const pager::BlobRef& blob = dir.value().tables[0].columns[0].stream;
  ASSERT_GT(blob.length, 0u);
  std::vector<uint8_t> bad = good;
  bad[blob.offset + blob.length / 2] ^= 0x01;
  const auto r = DeserializeDatabase(bad);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kIOError);
  EXPECT_NE(r.status().ToString().find("t.x"), std::string::npos)
      << r.status().ToString();
}

// ------------------------------------------------- v3 segment corruption

std::vector<uint8_t> GoodSegmentedV3() {
  Database db;
  auto t = std::make_shared<Table>("t");
  ColumnBuildInput in;
  in.name = "x";
  in.type = TypeId::kInteger;
  for (int i = 0; i < 2000; ++i) in.lanes.push_back(i);
  FlowTableOptions fopt;
  fopt.segment_rows = 400;
  auto col = BuildColumn(std::move(in), fopt);
  EXPECT_TRUE(col.ok()) << col.status().ToString();
  t->AddColumn(col.MoveValue());
  db.AddTable(t);
  pager::WriteOptionsV2 opts;
  opts.page_size = 512;
  std::vector<uint8_t> bytes;
  EXPECT_TRUE(pager::SerializeDatabaseV2(db, &bytes, opts).ok());
  return bytes;
}

TEST(CorruptDatabaseV3, SegmentBlobCorruptionCaughtByChecksum) {
  const auto good = GoodSegmentedV3();
  const auto dir = pager::ParseDirectoryV2(good);
  ASSERT_TRUE(dir.ok()) << dir.status().ToString();
  EXPECT_EQ(dir.value().version, pager::kFormatVersion3);
  const auto& segs = dir.value().tables[0].columns[0].segments;
  ASSERT_EQ(segs.size(), 5u);
  ASSERT_GT(segs[2].blob.length, 0u);

  // Flip one byte in the middle of segment 2's blob: the eager load must
  // reject the file, naming the column.
  std::vector<uint8_t> bad = good;
  bad[segs[2].blob.offset + segs[2].blob.length / 2] ^= 0x01;
  const auto r = DeserializeDatabase(bad);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kIOError);
  EXPECT_NE(r.status().ToString().find("t.x"), std::string::npos)
      << r.status().ToString();
}

TEST(CorruptDatabaseV3, CorruptSegmentLeavesSiblingSegmentsReadable) {
  const auto good = GoodSegmentedV3();
  const auto dir = pager::ParseDirectoryV2(good);
  ASSERT_TRUE(dir.ok());
  const auto& segs = dir.value().tables[0].columns[0].segments;
  ASSERT_EQ(segs.size(), 5u);
  std::vector<uint8_t> bad = good;
  bad[segs[2].blob.offset + segs[2].blob.length / 2] ^= 0x01;

  const std::string path = ::testing::TempDir() + "/corrupt_seg_v3.tde";
  {
    std::FILE* f = std::fopen(path.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    ASSERT_EQ(std::fwrite(bad.data(), 1, bad.size(), f), bad.size());
    std::fclose(f);
  }

  // On the lazy path a segment faults in only when touched: rows in the
  // corrupt segment fail with a clean Status, rows in its siblings keep
  // answering correctly.
  auto cache = std::make_shared<pager::ColumnCache>(64ull << 20);
  auto db = pager::OpenDatabaseV2(path, cache);
  ASSERT_TRUE(db.ok()) << db.status().ToString();
  auto col = db.value().GetTable("t").value()->ColumnByName("x").value();

  std::vector<Lane> lanes(64);
  ASSERT_TRUE(col->GetLanes(0, 64, lanes.data()).ok());      // segment 0
  EXPECT_EQ(lanes[63], 63);
  ASSERT_TRUE(col->GetLanes(1700, 64, lanes.data()).ok());   // segment 4
  EXPECT_EQ(lanes[0], 1700);
  const Status corrupt = col->GetLanes(900, 64, lanes.data());  // segment 2
  EXPECT_FALSE(corrupt.ok());
  EXPECT_EQ(corrupt.code(), StatusCode::kIOError);
  // The siblings stay readable afterwards too.
  EXPECT_TRUE(col->GetLanes(400, 64, lanes.data()).ok());    // segment 1
  std::remove(path.c_str());
}

TEST(CorruptDatabaseV3, DirectoryFlipsWithFixedCrcsFailCleanlyOrRoundTrip) {
  // Byte flips inside the segment directory with the directory and header
  // CRCs recomputed: this drives the structural validation itself —
  // truncated segment tables, segment row-count overflows, dangling blob
  // refs — rather than the checksum. Every flip must either be rejected
  // with a Status or produce a database that walks without faulting.
  const auto good = GoodSegmentedV3();
  auto u64 = [](const uint8_t* p) {
    uint64_t v;
    std::memcpy(&v, p, 8);
    return v;
  };
  const uint64_t dir_offset = u64(good.data() + 16);
  const uint64_t dir_length = u64(good.data() + 24);
  ASSERT_EQ(dir_offset + dir_length, good.size());

  for (uint64_t pos = dir_offset; pos < dir_offset + dir_length; ++pos) {
    std::vector<uint8_t> bad = good;
    bad[pos] ^= 0x5A;
    const uint32_t dir_crc =
        pager::Crc32c(bad.data() + dir_offset, dir_length);
    std::memcpy(bad.data() + 32, &dir_crc, 4);
    const uint32_t header_crc = pager::Crc32c(bad.data(), 56);
    std::memcpy(bad.data() + 56, &header_crc, 4);

    auto r = DeserializeDatabase(bad);
    if (!r.ok()) continue;
    for (const auto& t : r.value().tables()) {
      for (size_t c = 0; c < t->num_columns(); ++c) {
        const Column& col = t->column(c);
        std::vector<Lane> lanes(std::min<uint64_t>(col.rows(), 64));
        (void)col.GetLanes(0, lanes.size(), lanes.data());
      }
    }
  }
}

TEST(CorruptDatabase2, EmptyFileRejected) {
  EXPECT_FALSE(DeserializeDatabase({}).ok());
}

TEST(CorruptText, RandomGarbageImportsOrFailsCleanly) {
  // TextScan + inference over arbitrary bytes: any Status is acceptable,
  // crashing is not; a successful import must be walkable.
  std::mt19937_64 rng(2024);
  for (int trial = 0; trial < 200; ++trial) {
    std::string data;
    const size_t len = rng() % 400;
    for (size_t i = 0; i < len; ++i) {
      data.push_back(static_cast<char>(rng() % 256));
    }
    auto scan = TextScan::FromBuffer(data);
    if (!scan->Open().ok()) continue;
    std::vector<Block> blocks;
    (void)DrainOperator(scan.get(), &blocks);
  }
}

TEST(CorruptText, MisalignedRowsSurvive) {
  auto scan = TextScan::FromBuffer(
      "a,b,c\n1,2,3\n4,5\n6,7,8,9,10\n,,\n");
  ASSERT_TRUE(scan->Open().ok());
  std::vector<Block> blocks;
  ASSERT_TRUE(DrainOperator(scan.get(), &blocks).ok());
  uint64_t rows = 0;
  for (const Block& b : blocks) rows += b.rows();
  EXPECT_EQ(rows, 4u);
}

}  // namespace
}  // namespace tde
