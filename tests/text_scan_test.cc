#include "src/textscan/text_scan.h"

#include <gtest/gtest.h>

namespace tde {
namespace {

std::vector<Block> DrainScan(TextScan* scan) {
  std::vector<Block> out;
  EXPECT_TRUE(DrainOperator(scan, &out).ok());
  return out;
}

TEST(TextScan, ParsesTypedColumns) {
  auto scan = TextScan::FromBuffer(
      "id,price,when,name\n"
      "1,1.5,2001-01-05,aa\n"
      "2,2.5,2001-01-06,bb\n");
  ASSERT_TRUE(scan->Open().ok());
  EXPECT_TRUE(scan->has_header());
  EXPECT_EQ(scan->field_separator(), ',');
  auto blocks = DrainScan(scan.get());
  ASSERT_EQ(blocks.size(), 1u);
  const Block& b = blocks[0];
  ASSERT_EQ(b.rows(), 2u);
  EXPECT_EQ(b.columns[0].lanes[1], 2);
  EXPECT_EQ(b.columns[2].lanes[0], DaysFromCivil(2001, 1, 5));
  EXPECT_EQ(b.columns[3].GetString(1), "bb");
  EXPECT_EQ(scan->parse_errors(), 0u);
}

TEST(TextScan, ProvidedSchemaSkipsInference) {
  TextScanOptions opts;
  opts.schema = Schema({{"a", TypeId::kInteger}, {"b", TypeId::kString}});
  opts.has_header = false;
  opts.field_separator = '|';
  auto scan = TextScan::FromBuffer("1|x\n2|y\n", opts);
  ASSERT_TRUE(scan->Open().ok());
  auto blocks = DrainScan(scan.get());
  ASSERT_EQ(blocks.size(), 1u);
  EXPECT_EQ(blocks[0].columns[0].lanes[0], 1);
  EXPECT_EQ(blocks[0].columns[1].GetString(1), "y");
}

TEST(TextScan, UnparseableFieldsBecomeNullAndCount) {
  TextScanOptions opts;
  opts.schema = Schema({{"a", TypeId::kInteger}});
  opts.has_header = false;
  auto scan = TextScan::FromBuffer("1\nbad\n3\n", opts);
  ASSERT_TRUE(scan->Open().ok());
  auto blocks = DrainScan(scan.get());
  ASSERT_EQ(blocks[0].rows(), 3u);
  EXPECT_EQ(blocks[0].columns[0].lanes[1], kNullSentinel);
  EXPECT_EQ(scan->parse_errors(), 1u);
}

TEST(TextScan, MissingTrailingFieldsAreNull) {
  TextScanOptions opts;
  opts.schema = Schema({{"a", TypeId::kInteger}, {"b", TypeId::kInteger}});
  opts.has_header = false;
  auto scan = TextScan::FromBuffer("1,2\n3\n", opts);
  ASSERT_TRUE(scan->Open().ok());
  auto blocks = DrainScan(scan.get());
  EXPECT_EQ(blocks[0].columns[1].lanes[1], kNullSentinel);
}

TEST(TextScan, ColumnProjection) {
  TextScanOptions opts;
  opts.columns = {"c", "a"};
  auto scan = TextScan::FromBuffer("a,b,c\n1,2,3\n4,5,6\n", opts);
  ASSERT_TRUE(scan->Open().ok());
  EXPECT_EQ(scan->output_schema().num_fields(), 2u);
  EXPECT_EQ(scan->output_schema().field(0).name, "c");
  auto blocks = DrainScan(scan.get());
  EXPECT_EQ(blocks[0].columns[0].lanes[0], 3);
  EXPECT_EQ(blocks[0].columns[1].lanes[0], 1);
}

TEST(TextScan, ManyRowsSpanBlocks) {
  std::string data = "v\n";
  const int n = 3000;
  for (int i = 0; i < n; ++i) data += std::to_string(i) + "\n";
  auto scan = TextScan::FromBuffer(data);
  ASSERT_TRUE(scan->Open().ok());
  auto blocks = DrainScan(scan.get());
  ASSERT_GE(blocks.size(), 2u);
  uint64_t rows = 0;
  Lane expect = 0;
  for (const Block& b : blocks) {
    for (Lane v : b.columns[0].lanes) {
      ASSERT_EQ(v, expect++);
    }
    rows += b.rows();
  }
  EXPECT_EQ(rows, static_cast<uint64_t>(n));
}

TEST(TextScan, ParallelMatchesSerial) {
  std::string data = "a,b,c,d\n";
  for (int i = 0; i < 5000; ++i) {
    data += std::to_string(i) + "," + std::to_string(i * 2) + ",s" +
            std::to_string(i % 7) + "," + std::to_string(i % 2 == 0) + "\n";
  }
  auto serial = TextScan::FromBuffer(data);
  TextScanOptions par;
  par.parallel = true;
  par.workers = 3;
  auto parallel = TextScan::FromBuffer(data, par);
  ASSERT_TRUE(serial->Open().ok());
  ASSERT_TRUE(parallel->Open().ok());
  auto sb = DrainScan(serial.get());
  auto pb = DrainScan(parallel.get());
  ASSERT_EQ(sb.size(), pb.size());
  for (size_t i = 0; i < sb.size(); ++i) {
    ASSERT_EQ(sb[i].rows(), pb[i].rows());
    for (size_t c = 0; c < sb[i].columns.size(); ++c) {
      if (sb[i].columns[c].type == TypeId::kString) {
        for (size_t r = 0; r < sb[i].rows(); ++r) {
          ASSERT_EQ(sb[i].columns[c].GetString(r),
                    pb[i].columns[c].GetString(r));
        }
      } else {
        ASSERT_EQ(sb[i].columns[c].lanes, pb[i].columns[c].lanes);
      }
    }
  }
}

TEST(TextScan, QuotedFieldsRoundTrip) {
  // RFC-4180: quoted separators, embedded newlines, and doubled quotes
  // all survive import as literal field content.
  auto scan = TextScan::FromBuffer(
      "id,note\n"
      "1,\"plain\"\n"
      "2,\"comma, inside\"\n"
      "3,\"line one\nline two\"\n"
      "4,\"she said \"\"ok\"\"\"\n"
      "5,unquoted\n");
  ASSERT_TRUE(scan->Open().ok());
  EXPECT_TRUE(scan->has_header());
  auto blocks = DrainScan(scan.get());
  ASSERT_EQ(blocks.size(), 1u);
  const Block& b = blocks[0];
  ASSERT_EQ(b.rows(), 5u);
  EXPECT_EQ(b.columns[0].lanes[2], 3);  // ids parse despite the newline row
  EXPECT_EQ(b.columns[1].GetString(0), "plain");
  EXPECT_EQ(b.columns[1].GetString(1), "comma, inside");
  EXPECT_EQ(b.columns[1].GetString(2), "line one\nline two");
  EXPECT_EQ(b.columns[1].GetString(3), "she said \"ok\"");
  EXPECT_EQ(b.columns[1].GetString(4), "unquoted");
  EXPECT_EQ(scan->parse_errors(), 0u);
}

TEST(TextScan, QuotedNumbersStillParse) {
  TextScanOptions opts;
  opts.schema = Schema({{"a", TypeId::kInteger}, {"b", TypeId::kReal}});
  opts.has_header = false;
  auto scan = TextScan::FromBuffer("\"1\",\"2.5\"\n\"-3\",\"1e2\"\n", opts);
  ASSERT_TRUE(scan->Open().ok());
  auto blocks = DrainScan(scan.get());
  ASSERT_EQ(blocks.size(), 1u);
  EXPECT_EQ(blocks[0].columns[0].lanes[0], 1);
  EXPECT_EQ(blocks[0].columns[0].lanes[1], -3);
  EXPECT_EQ(scan->parse_errors(), 0u);
}

TEST(TextScan, ReopenRestarts) {
  auto scan = TextScan::FromBuffer("a\n1\n2\n");
  ASSERT_TRUE(scan->Open().ok());
  auto first = DrainScan(scan.get());
  ASSERT_TRUE(scan->Open().ok());
  auto second = DrainScan(scan.get());
  ASSERT_EQ(first.size(), second.size());
  EXPECT_EQ(first[0].columns[0].lanes, second[0].columns[0].lanes);
}

}  // namespace
}  // namespace tde
