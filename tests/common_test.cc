// Coverage for the common substrate: Status/Result plumbing, bit utils,
// blocks, schemas, and API error paths.

#include <gtest/gtest.h>

#include "src/common/bitutil.h"
#include "src/core/engine.h"
#include "tests/test_util.h"

namespace tde {
namespace {

using namespace tde::expr;  // NOLINT

TEST(Status, CodesAndMessages) {
  EXPECT_TRUE(Status::OK().ok());
  EXPECT_EQ(Status::OK().ToString(), "OK");
  const Status s = Status::OutOfRange("needs 17 bits");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOutOfRange);
  EXPECT_EQ(s.ToString(), "OutOfRange: needs 17 bits");
  EXPECT_EQ(Status::CapacityExceeded("x").ToString(), "CapacityExceeded: x");
  EXPECT_EQ(Status::ParseError("").ToString(), "ParseError");
}

Result<int> Half(int x) {
  if (x % 2 != 0) return {Status::InvalidArgument("odd")};
  return x / 2;
}

Result<int> Quarter(int x) {
  TDE_ASSIGN_OR_RETURN(int h, Half(x));
  TDE_ASSIGN_OR_RETURN(int q, Half(h));
  return q;
}

TEST(Result, MacrosPropagate) {
  EXPECT_EQ(Quarter(8).value(), 2);
  EXPECT_EQ(Quarter(6).status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(Quarter(3).status().code(), StatusCode::kInvalidArgument);
}

TEST(Result, MoveValue) {
  Result<std::vector<int>> r(std::vector<int>{1, 2, 3});
  ASSERT_TRUE(r.ok());
  const std::vector<int> v = r.MoveValue();
  EXPECT_EQ(v.size(), 3u);
}

TEST(BitUtil, BitsFor) {
  EXPECT_EQ(BitsFor(0), 0);
  EXPECT_EQ(BitsFor(1), 1);
  EXPECT_EQ(BitsFor(2), 2);
  EXPECT_EQ(BitsFor(255), 8);
  EXPECT_EQ(BitsFor(256), 9);
  EXPECT_EQ(BitsFor(~uint64_t{0}), 64);
}

TEST(BitUtil, LoadStoreRoundTrip) {
  uint8_t buf[8];
  for (const uint8_t w : {1, 2, 4, 8}) {
    const int64_t v = w == 8 ? -123456789012345LL : -7;
    StoreBytes(buf, static_cast<uint64_t>(v), w);
    EXPECT_EQ(LoadSigned(buf, w), v) << static_cast<int>(w);
  }
  StoreBytes(buf, 0xABCD, 2);
  EXPECT_EQ(LoadUnsigned(buf, 2), 0xABCDu);
}

TEST(BitUtil, Fits) {
  EXPECT_TRUE(FitsSigned(127, 1));
  EXPECT_FALSE(FitsSigned(128, 1));
  EXPECT_TRUE(FitsSigned(-128, 1));
  EXPECT_FALSE(FitsSigned(-129, 1));
  EXPECT_TRUE(FitsUnsigned(255, 1));
  EXPECT_FALSE(FitsUnsigned(256, 1));
  EXPECT_TRUE(FitsSigned(INT64_MIN, 8));
}

TEST(Block, CompactDropsRowsAcrossColumns) {
  Block b;
  b.columns.resize(2);
  b.columns[0].lanes = {1, 2, 3, 4};
  b.columns[1].lanes = {10, 20, 30, 40};
  b.Compact({1, 0, 0, 1});
  EXPECT_EQ(b.rows(), 2u);
  EXPECT_EQ(b.columns[0].lanes, (std::vector<Lane>{1, 4}));
  EXPECT_EQ(b.columns[1].lanes, (std::vector<Lane>{10, 40}));
}

TEST(Block, EmptyBlockBasics) {
  Block b;
  EXPECT_EQ(b.rows(), 0u);
  b.columns.resize(1);
  b.columns[0].lanes = {1};
  b.Clear();
  EXPECT_EQ(b.rows(), 0u);
}

TEST(Schema, FieldLookupAndPrint) {
  Schema s({{"a", TypeId::kInteger}, {"b", TypeId::kString}});
  EXPECT_EQ(s.FieldIndex("b").value(), 1u);
  EXPECT_EQ(s.FieldIndex("nope").status().code(), StatusCode::kNotFound);
  EXPECT_EQ(s.ToString(), "(a: integer, b: string)");
}

TEST(Engine, OpenMissingDatabaseFails) {
  EXPECT_EQ(Engine::OpenDatabase("/nonexistent/path.tde").status().code(),
            StatusCode::kIOError);
}

TEST(Engine, ImportMissingFileFails) {
  Engine e;
  EXPECT_EQ(
      e.ImportTextFile("/nonexistent/file.csv", "t").status().code(),
      StatusCode::kIOError);
}

TEST(Engine, AttachMissingFileFails) {
  Engine e;
  EXPECT_EQ(e.AttachTextFile("/nonexistent.csv", "t").status().code(),
            StatusCode::kIOError);
}

TEST(Plan, UnknownColumnSurfacesCleanly) {
  Engine e;
  auto t = e.ImportTextBuffer("a\n1\n", "t").MoveValue();
  auto r = e.Execute(Plan::Scan(t).Filter(Gt(Col("nope"), Int(0))));
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(Plan, AggregateUnknownInputFails) {
  Engine e;
  auto t = e.ImportTextBuffer("a\n1\n", "t").MoveValue();
  auto r = e.Execute(
      Plan::Scan(t).Aggregate({"a"}, {{AggKind::kSum, "nope", "s"}}));
  EXPECT_FALSE(r.ok());
}

TEST(QueryResult, AccessorsAndTruncatedToString) {
  Engine e;
  std::string csv = "x\n";
  for (int i = 0; i < 30; ++i) csv += std::to_string(i) + "\n";
  auto t = e.ImportTextBuffer(csv, "t").MoveValue();
  auto r = e.Execute(Plan::Scan(t)).MoveValue();
  EXPECT_EQ(r.num_rows(), 30u);
  EXPECT_EQ(r.num_columns(), 1u);
  EXPECT_EQ(r.Value(29, 0), 29);
  EXPECT_EQ(r.Value(99, 0), kNullSentinel);  // out of range -> NULL
  const std::string s = r.ToString(5);
  EXPECT_NE(s.find("(25 more rows)"), std::string::npos);
}

TEST(PlanPrint, AllNodeKindsRender) {
  auto t = FlowTable::Build(testutil::VectorSource::Ints({{"x", {1, 2}}}))
               .MoveValue();
  auto plan = Plan::Scan(t)
                  .Filter(Gt(Col("x"), Int(0)))
                  .Project({{Col("x"), "y"}})
                  .Aggregate({"y"}, {{AggKind::kCountStar, "", "n"}})
                  .OrderBy({{"y", true}})
                  .ExchangeBy(2)
                  .Materialize();
  const std::string s = PlanToString(plan.root());
  for (const char* part : {"Materialize", "Exchange", "Sort", "Aggregate",
                           "Project", "Filter", "Scan"}) {
    EXPECT_NE(s.find(part), std::string::npos) << part;
  }
}

TEST(DrainOperator, CollectsAllBlocks) {
  std::vector<Lane> v(3 * kBlockSize);
  for (size_t i = 0; i < v.size(); ++i) v[i] = static_cast<Lane>(i);
  auto src = testutil::VectorSource::Ints({{"x", v}});
  std::vector<Block> blocks;
  ASSERT_TRUE(DrainOperator(src.get(), &blocks).ok());
  EXPECT_EQ(blocks.size(), 3u);
  EXPECT_EQ(testutil::Flatten(blocks, 0), v);
}

}  // namespace
}  // namespace tde
