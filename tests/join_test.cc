#include "src/exec/hash_join.h"

#include <gtest/gtest.h>

#include "src/exec/dictionary_table.h"
#include "src/exec/filter.h"
#include "src/exec/flow_table.h"
#include "tests/test_util.h"

namespace tde {
namespace {

using testutil::Drain;
using testutil::Flatten;
using testutil::VectorSource;

std::shared_ptr<Table> InnerTable(const std::vector<Lane>& keys,
                                  const std::vector<Lane>& values) {
  return FlowTable::Build(VectorSource::Ints({{"k", keys}, {"v", values}}))
      .MoveValue();
}

TEST(HashJoin, TacticalFetchForDenseSortedUniqueKeys) {
  auto inner = InnerTable({10, 11, 12, 13}, {100, 110, 120, 130});
  HashJoinOptions opts;
  opts.outer_key = "k";
  opts.inner_key = "k";
  opts.inner_payload = {"v"};
  HashJoin join(VectorSource::Ints({{"k", {12, 10, 99, 13}}}), inner, opts);
  auto blocks = Drain(&join);
  EXPECT_EQ(join.strategy(), JoinStrategy::kFetch);
  // 99 has no match and is dropped (many-to-one inner join).
  EXPECT_EQ(Flatten(blocks, 0), (std::vector<Lane>{12, 10, 13}));
  EXPECT_EQ(Flatten(blocks, 1), (std::vector<Lane>{120, 100, 130}));
}

TEST(HashJoin, FetchWithNonUnitAffineStride) {
  std::vector<Lane> keys(500), vals(500);
  for (int i = 0; i < 500; ++i) {
    keys[i] = i * 5;  // affine with stride 5
    vals[i] = i + 1;
  }
  auto inner = InnerTable(keys, vals);
  ASSERT_EQ(inner->ColumnByName("k").value()->data()->type(),
            EncodingType::kAffine);
  HashJoinOptions opts;
  opts.outer_key = "k";
  opts.inner_key = "k";
  opts.inner_payload = {"v"};
  HashJoin join(VectorSource::Ints({{"k", {10, 3, 15}}}), inner, opts);
  auto blocks = Drain(&join);
  EXPECT_EQ(join.strategy(), JoinStrategy::kFetch);
  // 3 is not on the affine lattice -> dropped.
  EXPECT_EQ(Flatten(blocks, 1), (std::vector<Lane>{3, 4}));
}

TEST(HashJoin, NarrowKeysUseDirectHash) {
  auto inner = InnerTable({3, 1, 7}, {30, 10, 70});  // unsorted -> no fetch
  HashJoinOptions opts;
  opts.outer_key = "k";
  opts.inner_key = "k";
  opts.inner_payload = {"v"};
  HashJoin join(VectorSource::Ints({{"k", {1, 7, 5}}}), inner, opts);
  auto blocks = Drain(&join);
  EXPECT_EQ(join.strategy(), JoinStrategy::kHashDirect);
  EXPECT_EQ(Flatten(blocks, 1), (std::vector<Lane>{10, 70}));
}

TEST(HashJoin, WideKeysFallBackToCollision) {
  // Wide scattered keys: no narrowing possible, range too large for a
  // perfect hash.
  std::vector<Lane> keys = {1LL << 40, 5, -(1LL << 50)};
  auto inner = InnerTable(keys, {1, 2, 3});
  HashJoinOptions opts;
  opts.outer_key = "k";
  opts.inner_key = "k";
  opts.inner_payload = {"v"};
  HashJoin join(VectorSource::Ints({{"k", {5, 1LL << 40}}}), inner, opts);
  auto blocks = Drain(&join);
  EXPECT_EQ(join.strategy(), JoinStrategy::kHashCollision);
  EXPECT_EQ(Flatten(blocks, 1), (std::vector<Lane>{2, 1}));
}

TEST(HashJoin, ForcedStrategiesAgree) {
  std::vector<Lane> ik, iv, ok;
  for (int i = 0; i < 500; ++i) {
    ik.push_back(i * 3 % 500);  // permutation, unsorted
    iv.push_back(i);
  }
  for (int i = 0; i < 2000; ++i) ok.push_back(i % 600);  // some misses
  std::vector<std::vector<Lane>> results;
  for (JoinStrategy s :
       {JoinStrategy::kHashDirect, JoinStrategy::kHashPerfect,
        JoinStrategy::kHashCollision}) {
    auto inner = InnerTable(ik, iv);
    HashJoinOptions opts;
    opts.outer_key = "k";
    opts.inner_key = "k";
    opts.inner_payload = {"v"};
    opts.force_strategy = s;
    HashJoin join(VectorSource::Ints({{"k", ok}}), inner, opts);
    results.push_back(Flatten(Drain(&join), 1));
    EXPECT_EQ(join.strategy(), s);
  }
  EXPECT_EQ(results[0], results[1]);
  EXPECT_EQ(results[0], results[2]);
}

TEST(HashJoin, ForcedFetchFailsOnNonAffineInner) {
  auto inner = InnerTable({3, 1, 7}, {1, 2, 3});
  HashJoinOptions opts;
  opts.outer_key = "k";
  opts.inner_key = "k";
  auto join = MakeFetchJoin(VectorSource::Ints({{"k", {1}}}), inner, opts);
  EXPECT_EQ(join->Open().code(), StatusCode::kInvalidArgument);
}

TEST(HashJoin, RejectsDuplicateInnerKeys) {
  auto inner = InnerTable({1, 2, 2}, {1, 2, 3});
  HashJoinOptions opts;
  opts.outer_key = "k";
  opts.inner_key = "k";
  HashJoin join(VectorSource::Ints({{"k", {1}}}), inner, opts);
  EXPECT_EQ(join.Open().code(), StatusCode::kInvalidArgument);
}

TEST(HashJoin, StringPayloadResolvesThroughHeap) {
  auto src = VectorSource::Ints({{"k", {0, 1, 2}}});
  src->AddStringColumn("name", {"zero", "one", "two"});
  auto inner = FlowTable::Build(std::move(src)).MoveValue();
  HashJoinOptions opts;
  opts.outer_key = "k";
  opts.inner_key = "k";
  opts.inner_payload = {"name"};
  HashJoin join(VectorSource::Ints({{"k", {2, 0}}}), inner, opts);
  auto blocks = Drain(&join);
  ASSERT_EQ(blocks.size(), 1u);
  const ColumnVector& names = blocks[0].columns[1];
  EXPECT_EQ(names.GetString(0), "two");
  EXPECT_EQ(names.GetString(1), "zero");
}

TEST(DictionaryTable, StringColumnSharesHeap) {
  auto src = VectorSource::Ints({{"id", {0, 1, 2, 3}}});
  src->AddStringColumn("s", {"b", "a", "b", "a"});
  auto table = FlowTable::Build(std::move(src)).MoveValue();
  auto col = table->ColumnByName("s").value();
  auto dict = BuildDictionaryTable(col).MoveValue();
  EXPECT_EQ(dict->rows(), 2u);  // distinct strings
  EXPECT_TRUE(dict->ColumnByName("s$token").ok());
  auto value_col = dict->ColumnByName("s").value();
  EXPECT_EQ(value_col->heap(), col->heap());  // copy of the heap (shared)
  // Token column rows correspond to value rows.
  std::vector<Lane> tokens(2), values(2);
  ASSERT_TRUE(
      dict->ColumnByName("s$token").value()->GetLanes(0, 2, tokens.data()).ok());
  ASSERT_TRUE(value_col->GetLanes(0, 2, values.data()).ok());
  EXPECT_EQ(tokens, values);  // for strings, the value lanes ARE the tokens
}

TEST(DictionaryTable, InvisibleJoinFiltersMainTable) {
  // The Fig. 2 shape: push a string predicate to the dictionary side, then
  // join back over tokens.
  auto src = VectorSource::Ints({{"id", {0, 1, 2, 3, 4, 5}}});
  src->AddStringColumn("color", {"red", "blue", "red", "green", "blue",
                                 "red"});
  auto main = FlowTable::Build(std::move(src)).MoveValue();
  auto color = main->ColumnByName("color").value();
  auto dict = BuildDictionaryTable(color).MoveValue();

  auto inner_scan = std::make_unique<TableScan>(dict);
  auto inner_filtered = std::make_unique<Filter>(
      std::move(inner_scan), expr::Eq(expr::Col("color"), expr::Str("red")));
  FlowTableOptions ft;
  ft.allowed = kAllowRandomAccess;
  auto inner = FlowTable::Build(std::move(inner_filtered), ft).MoveValue();
  EXPECT_EQ(inner->rows(), 1u);

  TableScanOptions scan_opts;
  scan_opts.columns = {"id"};
  scan_opts.token_columns = {"color"};
  HashJoinOptions join_opts;
  join_opts.outer_key = "color$token";
  join_opts.inner_key = "color$token";
  HashJoin join(std::make_unique<TableScan>(main, scan_opts), inner,
                join_opts);
  auto blocks = Drain(&join);
  EXPECT_EQ(Flatten(blocks, 0), (std::vector<Lane>{0, 2, 5}));
}

TEST(DictionaryTable, ScalarDictColumnGetsTokenAndValueColumns) {
  auto col = std::make_shared<Column>("d", TypeId::kDate);
  auto dict = std::make_shared<ArrayDictionary>();
  dict->type = TypeId::kDate;
  dict->values = {100, 200, 300};
  dict->sorted = true;
  col->set_array_dict(dict);
  col->set_compression(CompressionKind::kArrayDict);
  auto table = BuildDictionaryTable(col).MoveValue();
  ASSERT_EQ(table->rows(), 3u);
  // Token column is affine (0,1,2) -> joins against it become fetch joins.
  auto token = table->ColumnByName("d$token").value();
  EXPECT_EQ(token->data()->type(), EncodingType::kAffine);
  std::vector<Lane> values(3);
  ASSERT_TRUE(table->ColumnByName("d").value()->GetLanes(0, 3, values.data()).ok());
  EXPECT_EQ(values, (std::vector<Lane>{100, 200, 300}));
}

TEST(DictionaryTable, FailsOnUncompressedColumn) {
  auto col = std::make_shared<Column>("x", TypeId::kInteger);
  EXPECT_EQ(BuildDictionaryTable(col).status().code(),
            StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace tde
