// Compressed-domain predicate evaluation: the rewritten plans must answer
// byte-for-byte identically to decode-then-filter, across encodings and
// predicate shapes, while EXPLAIN ANALYZE and the metrics registry surface
// what was pruned, skipped, and rewritten.

#include <random>

#include <gtest/gtest.h>

#include "src/core/engine.h"
#include "src/exec/compressed_predicate.h"
#include "src/observe/metrics.h"
#include "src/plan/executor.h"
#include "src/plan/strategic.h"
#include "src/storage/heap_accelerator.h"
#include "tests/test_util.h"

namespace tde {
namespace {

using testutil::VectorSource;
using namespace tde::expr;  // NOLINT

/// A table with a low-cardinality string column `s` (optionally nullable),
/// an integer column `v`, and a row id — FlowTable sorts the heap, so the
/// dictionary-code rewrite sees collation-ordered tokens.
std::shared_ptr<Table> StringTable(size_t rows, bool with_nulls,
                                   uint64_t seed) {
  static const std::vector<std::string> kVocab = {
      "apple", "banana", "cherry", "date", "elderberry", "fig", "grape"};
  Schema schema;
  schema.AddField({"id", TypeId::kInteger});
  schema.AddField({"v", TypeId::kInteger});
  schema.AddField({"s", TypeId::kString});
  std::vector<ColumnVector> cols(3);
  cols[0].type = TypeId::kInteger;
  cols[1].type = TypeId::kInteger;
  cols[2].type = TypeId::kString;
  auto heap = std::make_shared<StringHeap>();
  HeapAccelerator acc(heap.get());
  std::mt19937_64 rng(seed);
  for (size_t i = 0; i < rows; ++i) {
    cols[0].lanes.push_back(static_cast<Lane>(i));
    cols[1].lanes.push_back(static_cast<Lane>(rng() % 1000));
    if (with_nulls && rng() % 7 == 0) {
      cols[2].lanes.push_back(kNullSentinel);
    } else {
      cols[2].lanes.push_back(acc.Add(kVocab[rng() % kVocab.size()]));
    }
  }
  cols[2].heap = std::move(heap);
  auto src = std::make_unique<VectorSource>(std::move(schema),
                                            std::move(cols));
  return FlowTable::Build(std::move(src)).MoveValue();
}

/// A table whose `r` column is sorted and low-cardinality (run-length
/// encodes) with an unsorted integer payload `p`.
std::shared_ptr<Table> RleTable(size_t rows, uint64_t seed) {
  std::vector<Lane> r(rows), p(rows);
  std::mt19937_64 rng(seed);
  for (size_t i = 0; i < rows; ++i) {
    r[i] = static_cast<Lane>(i / ((rows / 10) + 1));
    p[i] = static_cast<Lane>(rng() % 100000);
  }
  auto t = FlowTable::Build(VectorSource::Ints({{"r", r}, {"p", p}}))
               .MoveValue();
  return t;
}

/// Control options: every compressed-domain path off — the plan stays a
/// plain decode-then-filter Filter over Scan.
StrategicOptions DecodeThenFilter() {
  StrategicOptions off;
  off.enable_invisible_join = false;
  off.enable_rank_join = false;
  off.enable_metadata_pruning = false;
  off.enable_run_filters = false;
  off.enable_dict_predicates = false;
  return off;
}

/// Byte-identical comparison: same row count, same order, same rendering
/// of every cell (strings through their heaps, NULLs as NULL).
void ExpectIdentical(const QueryResult& a, const QueryResult& b,
                     const std::string& label) {
  ASSERT_EQ(a.num_rows(), b.num_rows()) << label;
  ASSERT_EQ(a.schema().num_fields(), b.schema().num_fields()) << label;
  for (uint64_t r = 0; r < a.num_rows(); ++r) {
    for (size_t c = 0; c < a.schema().num_fields(); ++c) {
      ASSERT_EQ(a.ValueString(r, c), b.ValueString(r, c))
          << label << " row " << r << " col " << c;
    }
  }
}

struct Shape {
  const char* name;
  std::function<ExprPtr()> make;
};

std::vector<Shape> StringShapes() {
  return {
      {"eq", [] { return Eq(Col("s"), Str("cherry")); }},
      {"eq_absent", [] { return Eq(Col("s"), Str("zucchini")); }},
      {"ne", [] { return Ne(Col("s"), Str("banana")); }},
      {"range_le", [] { return Le(Col("s"), Str("date")); }},
      {"range_gt", [] { return Gt(Col("s"), Str("cherry")); }},
      {"in",
       [] {
         return In(Col("s"), {Str("apple"), Str("fig"), Str("zucchini")});
       }},
      {"is_null", [] { return IsNull(Col("s")); }},
      {"not_eq", [] { return Not(Eq(Col("s"), Str("grape"))); }},
      {"not_is_null", [] { return Not(IsNull(Col("s"))); }},
      {"or_mixed",
       [] { return Or(IsNull(Col("s")), Eq(Col("s"), Str("banana"))); }},
      {"and_two_cols",
       [] {
         return And(Eq(Col("s"), Str("apple")), Gt(Col("v"), Int(500)));
       }},
  };
}

std::vector<Shape> RleShapes() {
  return {
      {"eq", [] { return Eq(Col("r"), Int(3)); }},
      {"range_gt", [] { return Gt(Col("r"), Int(5)); }},
      {"range_between",
       [] { return And(Ge(Col("r"), Int(2)), Lt(Col("r"), Int(7))); }},
      {"in", [] { return In(Col("r"), {Int(1), Int(8), Int(42)}); }},
      {"is_null", [] { return IsNull(Col("r")); }},
      {"ne", [] { return Ne(Col("r"), Int(4)); }},
  };
}

TEST(CompressedFilter, StringPredicatesMatchDecodeThenFilter) {
  // Invisible join off on both sides: this test pins the dictionary-code
  // lowering (the invisible join is a different rewrite with inner-join
  // NULL semantics, covered by its own tests).
  StrategicOptions compressed_opts;
  compressed_opts.enable_invisible_join = false;
  for (const bool with_nulls : {false, true}) {
    auto t = StringTable(4000, with_nulls, with_nulls ? 11 : 7);
    for (const Shape& shape : StringShapes()) {
      auto make = [&] { return Plan::Scan(t).Filter(shape.make()); };
      auto control =
          ExecutePlanNode(
              StrategicOptimize(make().root(), DecodeThenFilter())
                  .MoveValue())
              .MoveValue();
      auto compressed =
          ExecutePlanNode(
              StrategicOptimize(make().root(), compressed_opts).MoveValue())
              .MoveValue();
      ExpectIdentical(control, compressed,
                      std::string(shape.name) +
                          (with_nulls ? " (nulls)" : " (no nulls)"));
    }
  }
}

TEST(CompressedFilter, RunFilterMatchesDecodeThenFilter) {
  auto t = RleTable(30000, 3);
  ASSERT_EQ(t->ColumnByName("r").value()->encoding_type(),
            EncodingType::kRunLength);
  for (const Shape& shape : RleShapes()) {
    auto make = [&] { return Plan::Scan(t).Filter(shape.make()); };
    auto control =
        ExecutePlanNode(StrategicOptimize(make().root(), DecodeThenFilter())
                            .MoveValue())
            .MoveValue();
    auto compressed =
        ExecutePlanNode(StrategicOptimize(make().root()).MoveValue())
            .MoveValue();
    ExpectIdentical(control, compressed, shape.name);
  }
}

TEST(CompressedFilter, RunFilterRewritesPlanAndPreservesRowOrder) {
  auto t = RleTable(30000, 5);
  auto optimized =
      StrategicOptimize(
          Plan::Scan(t).Filter(Gt(Col("r"), Int(5))).root())
          .MoveValue();
  // Filter over Scan became Project over IndexedScan (predicate evaluated
  // once per run).
  ASSERT_EQ(optimized->kind, PlanNodeKind::kProject);
  ASSERT_EQ(optimized->children[0]->kind, PlanNodeKind::kIndexedScan);
  EXPECT_EQ(optimized->children[0]->index_column, "r");
  EXPECT_EQ(optimized->children[0]->sort_index_by_value, false);

  // Row order is the physical order: r ascends, and within equal r the
  // payload sequence matches the unrewritten plan exactly (checked by the
  // byte-identical test above); here assert monotone r.
  auto result = ExecutePlanNode(optimized).MoveValue();
  for (uint64_t row = 1; row < result.num_rows(); ++row) {
    ASSERT_GE(result.Value(row, 0), result.Value(row - 1, 0)) << row;
  }
}

TEST(CompressedFilter, MetadataPruneFalseBecomesLimitZero) {
  auto t = RleTable(30000, 9);  // r in [0, 9], no NULLs
  auto optimized =
      StrategicOptimize(
          Plan::Scan(t).Filter(Gt(Col("r"), Int(1000))).root())
          .MoveValue();
  ASSERT_EQ(optimized->kind, PlanNodeKind::kLimit);
  EXPECT_EQ(optimized->limit, 0u);
  EXPECT_EQ(optimized->pruned_rows, t->rows());
  auto result = ExecutePlanNode(optimized).MoveValue();
  EXPECT_EQ(result.num_rows(), 0u);
  // Schema is preserved even though the scan never opens.
  EXPECT_EQ(result.schema().num_fields(), t->num_columns());
}

TEST(CompressedFilter, MetadataPruneTrueDissolvesFilter) {
  auto t = RleTable(30000, 9);
  auto plan = Plan::Scan(t).Filter(Ge(Col("r"), Int(0)));
  auto optimized = StrategicOptimize(plan.root()).MoveValue();
  EXPECT_EQ(optimized->kind, PlanNodeKind::kScan);
  auto result = ExecutePlanNode(optimized).MoveValue();
  EXPECT_EQ(result.num_rows(), t->rows());
}

TEST(CompressedFilter, MetadataPruneRespectsNulls) {
  // A nullable column must not dissolve IS NULL or fold always-TRUE
  // comparisons: NULL rows fail every comparison.
  std::vector<Lane> vals(2000);
  for (size_t i = 0; i < vals.size(); ++i) {
    vals[i] = i % 5 == 0 ? kNullSentinel : static_cast<Lane>(i % 50);
  }
  auto t =
      FlowTable::Build(VectorSource::Ints({{"x", vals}})).MoveValue();
  auto pruned = StrategicOptimize(
                    Plan::Scan(t).Filter(Ge(Col("x"), Int(0))).root())
                    .MoveValue();
  EXPECT_EQ(pruned->kind, PlanNodeKind::kFilter);  // not provably true
  auto result = ExecutePlanNode(pruned).MoveValue();
  EXPECT_EQ(result.num_rows(), 1600u);  // the 400 NULLs filtered out
}

TEST(CompressedFilter, DictRewriteWrapsOnlyStringSubtrees) {
  Schema schema;
  schema.AddField({"s", TypeId::kString});
  schema.AddField({"v", TypeId::kInteger});
  int rewrites = 0;
  ExprPtr p = RewriteDictPredicates(
      And(Eq(Col("s"), Str("x")), Gt(Col("v"), Int(1))), schema, &rewrites);
  EXPECT_EQ(rewrites, 1);
  EXPECT_FALSE(IsDictCodePredicate(p));  // the AND itself is untouched
  EXPECT_TRUE(IsDictCodePredicate(p->Children()[0]));

  rewrites = 0;
  ExprPtr whole =
      RewriteDictPredicates(Eq(Col("s"), Str("x")), schema, &rewrites);
  EXPECT_EQ(rewrites, 1);
  EXPECT_TRUE(IsDictCodePredicate(whole));
  // Idempotent: lowering an already-lowered predicate changes nothing.
  rewrites = 0;
  EXPECT_EQ(RewriteDictPredicates(whole, schema, &rewrites).get(),
            whole.get());
  EXPECT_EQ(rewrites, 0);

  rewrites = 0;
  ExprPtr ints =
      RewriteDictPredicates(Gt(Col("v"), Int(1)), schema, &rewrites);
  EXPECT_EQ(rewrites, 0);
  EXPECT_FALSE(IsDictCodePredicate(ints));
}

TEST(CompressedFilter, InExpressionSemantics) {
  auto t = StringTable(500, /*with_nulls=*/true, 21);
  // IN matches listed values only; NULL input rows never match.
  auto r = ExecutePlan(Plan::Scan(t).Filter(
                           In(Col("s"), {Str("apple"), Str("fig")})))
               .MoveValue();
  for (uint64_t row = 0; row < r.num_rows(); ++row) {
    const std::string s = r.ValueString(row, 2);
    ASSERT_TRUE(s == "apple" || s == "fig") << s;
  }
  // Integer IN with an empty-ish match set.
  auto t2 = FlowTable::Build(VectorSource::Ints({{"x", {1, 2, 3, 4, 5}}}))
                .MoveValue();
  auto r2 = ExecutePlan(Plan::Scan(t2).Filter(
                            In(Col("x"), {Int(2), Int(5), Int(99)})))
                .MoveValue();
  ASSERT_EQ(r2.num_rows(), 2u);
  EXPECT_EQ(r2.Value(0, 0), 2);
  EXPECT_EQ(r2.Value(1, 0), 5);
}

TEST(CompressedFilter, MetricsAndExplainAnalyzeSurfaceCounters) {
  observe::MetricsRegistry& reg = observe::MetricsRegistry::Global();

  // Metadata pruning reports the rows it proved away.
  {
    auto t = RleTable(30000, 13);
    const uint64_t before = reg.GetCounter("filter.rows_pruned")->value();
    QueryResult result;
    std::string analyzed =
        ExplainAnalyzePlan(Plan::Scan(t).Filter(Gt(Col("r"), Int(1000))),
                           &result)
            .MoveValue();
    EXPECT_EQ(reg.GetCounter("filter.rows_pruned")->value(),
              before + t->rows());
    EXPECT_NE(analyzed.find("rows_pruned"), std::string::npos) << analyzed;
  }

  // Run-level filtering reports skipped runs.
  {
    auto t = RleTable(30000, 17);
    const uint64_t before = reg.GetCounter("filter.runs_skipped")->value();
    QueryResult result;
    std::string analyzed =
        ExplainAnalyzePlan(Plan::Scan(t).Filter(Gt(Col("r"), Int(5))),
                           &result)
            .MoveValue();
    EXPECT_GT(reg.GetCounter("filter.runs_skipped")->value(), before);
    EXPECT_NE(analyzed.find("runs_skipped"), std::string::npos) << analyzed;
  }

  // Dictionary-code lowering reports its rewrites. (Disable the invisible
  // join so the plan keeps a Filter for the lowering to rewrite.)
  {
    auto t = StringTable(4000, /*with_nulls=*/false, 23);
    StrategicOptions opts;
    opts.enable_invisible_join = false;
    const uint64_t before = reg.GetCounter("filter.dict_rewrites")->value();
    const bool was = observe::StatsEnabled();
    observe::SetStatsEnabled(true);
    auto result = ExecutePlanNode(
        StrategicOptimize(
            Plan::Scan(t).Filter(Eq(Col("s"), Str("cherry"))).root(), opts)
            .MoveValue());
    observe::SetStatsEnabled(was);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    EXPECT_EQ(reg.GetCounter("filter.dict_rewrites")->value(), before + 1);
  }
}

TEST(CompressedFilter, DictPredicatesDisableOptionFallsBack) {
  auto t = StringTable(2000, /*with_nulls=*/true, 29);
  StrategicOptions opts;
  opts.enable_invisible_join = false;
  opts.enable_dict_predicates = false;
  auto plain =
      ExecutePlanNode(
          StrategicOptimize(
              Plan::Scan(t).Filter(Ne(Col("s"), Str("date"))).root(), opts)
              .MoveValue())
          .MoveValue();
  auto control =
      ExecutePlanNode(
          StrategicOptimize(
              Plan::Scan(t).Filter(Ne(Col("s"), Str("date"))).root(),
              DecodeThenFilter())
              .MoveValue())
          .MoveValue();
  ExpectIdentical(plain, control, "dict predicates disabled");
}

// --- Regressions from the differential harness (tests/differential_test) --

/// A small engine table with a nullable low-cardinality string column so
/// the strategic optimizer rewrites filters/computations on `s` into an
/// invisible join against its dictionary.
void FillNullableDict(Engine* e) {
  std::string csv = "v,s\n";
  static const char* kColors[] = {"red", "green", "blue"};
  for (int i = 0; i < 40; ++i) {
    csv += std::to_string(i) + ",";
    if (i % 5 != 0) csv += kColors[i % 3];  // every fifth row: NULL
    csv += "\n";
  }
  ASSERT_TRUE(e->ImportTextBuffer(csv, "t").ok());
}

/// Found by differential seed 10: the invisible join dropped every NULL
/// row of the dictionary column because the dictionary had no NULL entry.
TEST(CompressedFilter, InvisibleJoinKeepsNullRowsForIsNull) {
  Engine e;
  FillNullableDict(&e);
  auto r = e.ExecuteSql("SELECT * FROM t WHERE s IS NULL");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r.value().num_rows(), 8u);  // i % 5 == 0 for i in [0, 40)
  // SELECT * keeps the table's column order even though the invisible
  // join routes `s` through the inner side.
  ASSERT_EQ(r.value().schema().num_fields(), 2u);
  EXPECT_EQ(r.value().schema().field(0).name, "v");
  EXPECT_EQ(r.value().schema().field(1).name, "s");
  for (uint64_t row = 0; row < r.value().num_rows(); ++row) {
    EXPECT_EQ(r.value().ValueString(row, 1), "NULL");
  }
}

/// Same root cause through the computation-pushdown rewrite: a projection
/// of a NULL value is NULL, not a dropped row.
TEST(CompressedFilter, InvisibleJoinComputePushdownKeepsNullRows) {
  Engine e;
  FillNullableDict(&e);
  auto r = e.ExecuteSql("SELECT LENGTH(s) AS n, v FROM t");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_EQ(r.value().num_rows(), 40u);
  int nulls = 0;
  for (uint64_t row = 0; row < 40; ++row) {
    if (r.value().ValueString(row, 0) == "NULL") ++nulls;
  }
  EXPECT_EQ(nulls, 8);
}

/// A pushed-down CASE with an ELSE branch is NOT null on NULL input; the
/// NULL dictionary row must flow through the expression, not be replaced
/// by a hard-wired NULL payload.
TEST(CompressedFilter, InvisibleJoinPushedCaseEvaluatesNullBranch) {
  Engine e;
  FillNullableDict(&e);
  auto r = e.ExecuteSql(
      "SELECT CASE WHEN (s = 'red') THEN 'hot' ELSE 'cold' END AS m "
      "FROM t");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_EQ(r.value().num_rows(), 40u);
  for (uint64_t row = 0; row < 40; ++row) {
    const std::string m = r.value().ValueString(row, 0);
    EXPECT_TRUE(m == "hot" || m == "cold") << m;  // never NULL
  }
}

/// Found by differential seed 37: LIKE '_' consumed one byte, so
/// multi-byte UTF-8 code points never matched width-based patterns.
TEST(CompressedFilter, LikeWildcardsCountCodePointsNotBytes) {
  Engine e;
  ImportOptions opts;
  opts.text.has_header = true;  // an all-string table defeats inference
  ASSERT_TRUE(
      e.ImportTextBuffer("s\némigré\nnaïve\nfjord\nüber\n", "w", opts).ok());
  auto six = e.ExecuteSql("SELECT s FROM w WHERE s LIKE '______'");
  ASSERT_TRUE(six.ok()) << six.status().ToString();
  ASSERT_EQ(six.value().num_rows(), 1u);  // émigré: 6 code points, 8 bytes
  EXPECT_EQ(six.value().ValueString(0, 0), "émigré");
  auto mid = e.ExecuteSql("SELECT s FROM w WHERE s LIKE 'na_ve'");
  ASSERT_TRUE(mid.ok()) << mid.status().ToString();
  ASSERT_EQ(mid.value().num_rows(), 1u);  // '_' spans the two-byte ï
  EXPECT_EQ(mid.value().ValueString(0, 0), "naïve");
  auto pct = e.ExecuteSql("SELECT s FROM w WHERE s LIKE '%ber'");
  ASSERT_TRUE(pct.ok()) << pct.status().ToString();
  ASSERT_EQ(pct.value().num_rows(), 1u);
  EXPECT_EQ(pct.value().ValueString(0, 0), "über");
}

/// Found by differential seed 171 (data seed 3): LIMIT 0 over a Project
/// returned a result with no columns at all — the child was never opened,
/// so its schema was never built.
TEST(CompressedFilter, LimitZeroPreservesProjectedSchema) {
  Engine e;
  FillNullableDict(&e);
  auto r = e.ExecuteSql("SELECT s, v, s FROM t LIMIT 0");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r.value().num_rows(), 0u);
  ASSERT_EQ(r.value().schema().num_fields(), 3u);
  EXPECT_EQ(r.value().schema().field(0).name, "s");
  EXPECT_EQ(r.value().schema().field(1).name, "v");
  EXPECT_EQ(r.value().schema().field(2).name, "s");
}

/// Found by differential seed 2: a string CASE whose branches read
/// different columns stamped branch 0's heap on the output, so every lane
/// rendered through the wrong heap.
TEST(CompressedFilter, CaseAcrossColumnsMergesBranchHeaps) {
  Engine e;
  ImportOptions opts;
  opts.text.has_header = true;  // mostly-string rows defeat inference
  ASSERT_TRUE(e.ImportTextBuffer(
                   "v,a,b\n1,one-a,one-b\n2,two-a,two-b\n3,three-a,three-b\n",
                   "c", opts)
                  .ok());
  auto r = e.ExecuteSql(
      "SELECT v, CASE WHEN (v = 2) THEN a ELSE b END AS m "
      "FROM c ORDER BY v");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_EQ(r.value().num_rows(), 3u);
  EXPECT_EQ(r.value().ValueString(0, 1), "one-b");
  EXPECT_EQ(r.value().ValueString(1, 1), "two-a");
  EXPECT_EQ(r.value().ValueString(2, 1), "three-b");
}

}  // namespace
}  // namespace tde
