#include "src/exec/flow_table.h"

#include <gtest/gtest.h>

#include "tests/test_util.h"

namespace tde {
namespace {

using testutil::VectorSource;

std::vector<Lane> ColumnLanes(const Table& t, const std::string& name) {
  auto col = t.ColumnByName(name).value();
  std::vector<Lane> out(col->rows());
  EXPECT_TRUE(col->GetLanes(0, out.size(), out.data()).ok());
  return out;
}

TEST(FlowTable, BuildsEncodedTableFromFlow) {
  std::vector<Lane> ids(5000), small(5000);
  for (size_t i = 0; i < ids.size(); ++i) {
    ids[i] = static_cast<Lane>(i);
    small[i] = static_cast<Lane>(i % 9);
  }
  auto table = FlowTable::Build(
                   VectorSource::Ints({{"id", ids}, {"cat", small}}))
                   .MoveValue();
  EXPECT_EQ(table->rows(), 5000u);
  EXPECT_EQ(ColumnLanes(*table, "id"), ids);
  EXPECT_EQ(ColumnLanes(*table, "cat"), small);
  // id is a ramp -> affine; cat is a small domain -> dictionary or FoR.
  EXPECT_EQ(table->ColumnByName("id").value()->data()->type(),
            EncodingType::kAffine);
  EXPECT_NE(table->ColumnByName("cat").value()->data()->type(),
            EncodingType::kUncompressed);
}

TEST(FlowTable, ExtractsMetadataDuringBuild) {
  std::vector<Lane> ids(1000);
  for (size_t i = 0; i < ids.size(); ++i) ids[i] = static_cast<Lane>(i + 10);
  auto table =
      FlowTable::Build(VectorSource::Ints({{"id", ids}})).MoveValue();
  const ColumnMetadata& m = table->ColumnByName("id").value()->metadata();
  EXPECT_TRUE(m.sorted);
  EXPECT_TRUE(m.dense);
  EXPECT_TRUE(m.unique);
  EXPECT_EQ(m.min_value, 10);
  EXPECT_EQ(m.max_value, 1009);
}

TEST(FlowTable, EncodingOffExtractsAlmostNothing) {
  std::vector<Lane> ids(100);
  for (size_t i = 0; i < ids.size(); ++i) ids[i] = static_cast<Lane>(i);
  FlowTableOptions opts;
  opts.enable_encodings = false;
  auto table =
      FlowTable::Build(VectorSource::Ints({{"id", ids}}), opts).MoveValue();
  const Column& c = *table->ColumnByName("id").value();
  EXPECT_EQ(c.data()->type(), EncodingType::kUncompressed);
  EXPECT_EQ(c.metadata().DetectedCount(), 0);
}

TEST(FlowTable, NarrowsIntegerWidths) {
  std::vector<Lane> v(3000);
  for (size_t i = 0; i < v.size(); ++i) v[i] = static_cast<Lane>(i % 50);
  auto table = FlowTable::Build(VectorSource::Ints({{"x", v}})).MoveValue();
  EXPECT_EQ(table->ColumnByName("x").value()->TokenWidth(), 1);
}

TEST(FlowTable, RehomesStringsAndDeduplicates) {
  auto src = VectorSource::Ints({{"id", {0, 1, 2, 3}}});
  src->AddStringColumn("s", {"x", "y", "x", "x"});
  auto table = FlowTable::Build(std::move(src)).MoveValue();
  const Column& c = *table->ColumnByName("s").value();
  EXPECT_EQ(c.compression(), CompressionKind::kHeap);
  EXPECT_EQ(c.heap()->entry_count(), 2u);
  std::vector<Lane> lanes(4);
  ASSERT_TRUE(c.GetLanes(0, 4, lanes.data()).ok());
  EXPECT_EQ(c.GetString(lanes[0]), "x");
  EXPECT_EQ(c.GetString(lanes[1]), "y");
  EXPECT_EQ(lanes[0], lanes[2]);
}

TEST(FlowTable, SortsHeapOfDictEncodedStringColumn) {
  // Small unsorted domain repeated many times -> dictionary encoding ->
  // post-processing sorts the heap (Sect. 6.3) without touching rows.
  std::vector<std::string> domain = {"delta", "alpha", "charlie", "bravo"};
  std::vector<std::string> values;
  std::vector<Lane> ids;
  for (int i = 0; i < 4000; ++i) {
    values.push_back(domain[static_cast<size_t>(i * 2654435761u % 4)]);
    ids.push_back(i);
  }
  auto src = VectorSource::Ints({{"id", ids}});
  src->AddStringColumn("s", values);
  auto table = FlowTable::Build(std::move(src)).MoveValue();
  const Column& c = *table->ColumnByName("s").value();
  ASSERT_EQ(c.data()->type(), EncodingType::kDictionary);
  EXPECT_TRUE(c.heap()->sorted());
  // Heap order is collation order.
  const auto tokens = c.heap()->AllTokens();
  ASSERT_EQ(tokens.size(), 4u);
  EXPECT_EQ(c.heap()->Get(tokens[0]), "alpha");
  EXPECT_EQ(c.heap()->Get(tokens[3]), "delta");
  // Rows still resolve to the right strings.
  std::vector<Lane> lanes(values.size());
  ASSERT_TRUE(c.GetLanes(0, lanes.size(), lanes.data()).ok());
  for (size_t i = 0; i < values.size(); ++i) {
    ASSERT_EQ(c.GetString(lanes[i]), values[i]);
  }
}

TEST(FlowTable, FortuitousSortedArrivalDetectedWithoutEncodings) {
  FlowTableOptions opts;
  opts.enable_encodings = false;
  auto src = VectorSource::Ints({{"id", {0, 1, 2}}});
  src->AddStringColumn("s", {"a", "b", "c"});
  auto table = FlowTable::Build(std::move(src), opts).MoveValue();
  const Column& c = *table->ColumnByName("s").value();
  EXPECT_TRUE(c.heap()->sorted());
  EXPECT_TRUE(c.metadata().cardinality_known);  // accelerator statistic
  EXPECT_EQ(c.metadata().cardinality, 3u);
}

TEST(FlowTable, AccelerationOffKeepsDuplicates) {
  FlowTableOptions opts;
  opts.heap_acceleration = false;
  auto src = VectorSource::Ints({{"id", {0, 1}}});
  src->AddStringColumn("s", {"dup", "dup"});
  auto table = FlowTable::Build(std::move(src), opts).MoveValue();
  EXPECT_EQ(table->ColumnByName("s").value()->heap()->entry_count(), 2u);
}

TEST(FlowTable, ParallelColumnsMatchSerial) {
  std::vector<Lane> a(20000), b(20000), c(20000);
  for (size_t i = 0; i < a.size(); ++i) {
    a[i] = static_cast<Lane>(i);
    b[i] = static_cast<Lane>(i % 123);
    c[i] = static_cast<Lane>(i / 100);
  }
  FlowTableOptions par;
  par.parallel_columns = true;
  auto serial = FlowTable::Build(
                    VectorSource::Ints({{"a", a}, {"b", b}, {"c", c}}))
                    .MoveValue();
  auto parallel = FlowTable::Build(
                      VectorSource::Ints({{"a", a}, {"b", b}, {"c", c}}), par)
                      .MoveValue();
  for (const char* name : {"a", "b", "c"}) {
    EXPECT_EQ(ColumnLanes(*serial, name), ColumnLanes(*parallel, name));
    EXPECT_EQ(serial->ColumnByName(name).value()->data()->type(),
              parallel->ColumnByName(name).value()->data()->type());
  }
}

TEST(FlowTable, RestrictedEncodingMaskHonored) {
  std::vector<Lane> runs;
  for (int i = 0; i < 30; ++i) runs.insert(runs.end(), 2000, i);
  FlowTableOptions opts;
  opts.allowed = kAllowRandomAccess;
  auto table =
      FlowTable::Build(VectorSource::Ints({{"r", runs}}), opts).MoveValue();
  EXPECT_NE(table->ColumnByName("r").value()->data()->type(),
            EncodingType::kRunLength);
}

TEST(FlowTable, NullStringsSurvive) {
  auto src = VectorSource::Ints({{"id", {0, 1, 2}}});
  Schema schema = src->output_schema();
  // Build a string column with a NULL lane by hand.
  auto heap = std::make_shared<StringHeap>();
  ColumnVector cv;
  cv.type = TypeId::kString;
  cv.lanes = {heap->Add("a"), kNullSentinel, heap->Add("b")};
  cv.heap = heap;
  schema.AddField({"s", TypeId::kString});
  std::vector<ColumnVector> cols;
  cols.push_back(ColumnVector{TypeId::kInteger, {0, 1, 2}, nullptr, nullptr});
  cols.push_back(cv);
  auto table = FlowTable::Build(std::make_unique<VectorSource>(
                                    schema, std::move(cols)))
                   .MoveValue();
  const Column& c = *table->ColumnByName("s").value();
  std::vector<Lane> lanes(3);
  ASSERT_TRUE(c.GetLanes(0, 3, lanes.data()).ok());
  EXPECT_EQ(lanes[1], kNullSentinel);
  EXPECT_EQ(c.GetString(lanes[2]), "b");
  EXPECT_TRUE(c.metadata().has_nulls);
}

TEST(FlowTable, OperatesAsRescannableOperator) {
  std::vector<Lane> v = {5, 6, 7};
  FlowTable ft(VectorSource::Ints({{"x", v}}));
  ASSERT_TRUE(ft.Open().ok());
  auto blocks = testutil::Drain(&ft);
  // Drain closed it; FlowTable Open again streams again from the table.
  ASSERT_TRUE(ft.Open().ok());
  auto blocks2 = testutil::Drain(&ft);
  EXPECT_EQ(testutil::Flatten(blocks, 0), v);
  EXPECT_EQ(testutil::Flatten(blocks2, 0), v);
}

}  // namespace
}  // namespace tde
