#include "src/observe/introspect.h"

#include <cstdio>
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/core/engine.h"
#include "src/observe/metrics.h"
#include "src/plan/executor.h"
#include "tests/test_util.h"

namespace tde {
namespace {

using testutil::VectorSource;

/// A table whose columns drive the dynamic encoder into every encoding it
/// produces: runs, small domains, arithmetic progressions, sorted values,
/// narrow ranges, and incompressible noise.
Result<std::shared_ptr<Table>> BuildMixedTable() {
  std::vector<Lane> rle, dict, affine, delta, forr, raw;
  uint64_t state = 88172645463325252ull;
  auto rnd = [&state]() {
    state ^= state << 13;
    state ^= state >> 7;
    state ^= state << 17;
    return state;
  };
  for (int i = 0; i < 6000; ++i) {
    rle.push_back(i / 500);                      // 12 long runs
    dict.push_back(static_cast<Lane>(rnd() % 5) * 100003);  // 5 values
    affine.push_back(7 + 5 * i);                 // exact progression
    delta.push_back(1000000 + i * 3 +
                    static_cast<Lane>(rnd() % 3));  // sorted, small gaps
    forr.push_back(5000000 + static_cast<Lane>(rnd() % 200));  // narrow
    raw.push_back(static_cast<Lane>(rnd() >> 1));  // noise
  }
  return FlowTable::Build(
      VectorSource::Ints({{"rle", rle},
                          {"dict", dict},
                          {"affine", affine},
                          {"delta", delta},
                          {"forr", forr},
                          {"raw", raw}}),
      {.table_name = "mixed"});
}

/// The differential check: every report field that claims to describe the
/// stored stream must equal what the stream itself answers.
TEST(Introspect, ColumnReportsMatchActualStreams) {
  auto table_r = BuildMixedTable();
  ASSERT_TRUE(table_r.ok()) << table_r.status().ToString();
  auto table = table_r.MoveValue();
  Database db;
  db.AddTable(table);

  const auto reports = observe::BuildColumnReports(db);
  ASSERT_EQ(reports.size(), table->num_columns());
  std::set<std::string> encodings_seen;
  for (const observe::ColumnReport& r : reports) {
    SCOPED_TRACE(r.column);
    auto col_r = table->ColumnByName(r.column);
    ASSERT_TRUE(col_r.ok());
    const Column& col = *col_r.value();
    const EncodedStream* stream = col.data();
    ASSERT_NE(stream, nullptr);

    EXPECT_EQ(r.table, "mixed");
    EXPECT_EQ(std::string(r.encoding), EncodingName(stream->type()));
    EXPECT_EQ(std::string(r.residency), "hot");
    EXPECT_EQ(r.rows, col.rows());
    EXPECT_EQ(r.bits, stream->bits());
    EXPECT_EQ(r.compressed_bytes, col.PhysicalSize());
    EXPECT_EQ(r.logical_bytes, col.LogicalSize());
    std::vector<RleRun> runs;
    ASSERT_TRUE(stream->GetRuns(&runs).ok());
    EXPECT_EQ(r.runs, static_cast<int64_t>(runs.size()));
    encodings_seen.insert(r.encoding);
  }
  // The inputs above must actually fan out across the encoder's repertoire.
  EXPECT_GE(encodings_seen.size(), 4u) << [&] {
    std::string all;
    for (const auto& e : encodings_seen) all += e + " ";
    return all;
  }();
  EXPECT_TRUE(encodings_seen.count("run-length"));
  EXPECT_TRUE(encodings_seen.count("affine"));
}

TEST(Introspect, TdeColumnsVirtualTable) {
  observe::SetStatsEnabled(true);
  auto table_r = BuildMixedTable();
  ASSERT_TRUE(table_r.ok()) << table_r.status().ToString();
  Engine engine;
  engine.database()->AddTable(table_r.MoveValue());

  auto rows = engine.ExecuteSql(
      "SELECT column_name, runs, compressed_bytes FROM tde_columns "
      "WHERE encoding = 'run-length'");
  ASSERT_TRUE(rows.ok()) << rows.status().ToString();
  ASSERT_EQ(rows.value().num_rows(), 1u);
  EXPECT_EQ(rows.value().ValueString(0, 0), "rle");
  EXPECT_EQ(rows.value().Value(0, 1), 12);
  EXPECT_GT(rows.value().Value(0, 2), 0);

  auto count = engine.ExecuteSql("SELECT COUNT(*) AS n FROM tde_columns");
  ASSERT_TRUE(count.ok()) << count.status().ToString();
  EXPECT_EQ(count.value().Value(0, 0), 6);
}

TEST(Introspect, ColdColumnsReportFromDirectoryAndWarmOnTouch) {
  observe::SetStatsEnabled(true);
  const std::string path = ::testing::TempDir() + "/introspect_cold.tde";
  {
    Engine writer;
    auto table_r = BuildMixedTable();
    ASSERT_TRUE(table_r.ok()) << table_r.status().ToString();
    writer.database()->AddTable(table_r.MoveValue());
    ASSERT_TRUE(writer.SaveDatabase(path).ok());
  }
  auto opened = Engine::OpenDatabase(path);
  ASSERT_TRUE(opened.ok()) << opened.status().ToString();
  Engine engine = std::move(opened.value());
  ASSERT_NE(engine.column_cache(), nullptr);

  // Untouched: every column is cold, stream-only facts are unknown, and
  // the directory still answers sizes.
  for (const observe::ColumnReport& r :
       observe::BuildColumnReports(*engine.database())) {
    SCOPED_TRACE(r.column);
    EXPECT_EQ(std::string(r.residency), "cold");
    EXPECT_EQ(r.runs, -1);
    EXPECT_EQ(r.bits, -1);
    EXPECT_GT(r.compressed_bytes, 0u);
    EXPECT_EQ(r.rows, 6000u);
  }
  EXPECT_TRUE(observe::BuildCacheReport(engine.column_cache()).entries.empty());

  // One query warms exactly the touched column; the cache now reports it
  // and the report flips to stream-backed facts.
  ASSERT_TRUE(
      engine.ExecuteSql("SELECT COUNT(*) AS n FROM mixed WHERE rle = 3")
          .ok());
  bool saw_warm_rle = false;
  for (const observe::ColumnReport& r :
       observe::BuildColumnReports(*engine.database())) {
    if (r.column != "rle") continue;
    saw_warm_rle = true;
    EXPECT_EQ(std::string(r.residency), "warm");
    EXPECT_EQ(r.runs, 12);
    EXPECT_GE(r.bits, 0);
  }
  EXPECT_TRUE(saw_warm_rle);
  const observe::CacheReport cache =
      observe::BuildCacheReport(engine.column_cache());
  ASSERT_TRUE(cache.present);
  ASSERT_EQ(cache.entries.size(), 1u);
  EXPECT_EQ(cache.entries[0].table, "mixed");
  EXPECT_EQ(cache.entries[0].column, "rle");
  EXPECT_GT(cache.entries[0].bytes, 0u);
  EXPECT_FALSE(cache.entries[0].pinned);
  EXPECT_EQ(cache.bytes_resident, cache.entries[0].bytes);

  // The same picture through SQL.
  auto rows = engine.ExecuteSql(
      "SELECT table_name, column_name, pinned FROM tde_cache");
  ASSERT_TRUE(rows.ok()) << rows.status().ToString();
  ASSERT_EQ(rows.value().num_rows(), 1u);
  EXPECT_EQ(rows.value().ValueString(0, 1), "rle");
  auto cold_rows = engine.ExecuteSql(
      "SELECT COUNT(*) AS n FROM tde_columns WHERE residency = 'cold'");
  ASSERT_TRUE(cold_rows.ok()) << cold_rows.status().ToString();
  EXPECT_EQ(cold_rows.value().Value(0, 0), 5);

  // And as one JSON document.
  const std::string json = engine.StorageReportJson();
  EXPECT_NE(json.find("\"columns\":["), std::string::npos);
  EXPECT_NE(json.find("\"residency\":\"warm\""), std::string::npos);
  EXPECT_NE(json.find("\"cache\":{"), std::string::npos);
  EXPECT_NE(json.find("\"budget_bytes\":"), std::string::npos);
  std::remove(path.c_str());
}

TEST(Introspect, GroupByOnVirtualTableStringColumns) {
  // Regression: the virtual-table builders append strings row by row, and
  // without interning equal strings landed on distinct heap entries —
  // dictionary-code grouping then split one group per row.
  observe::SetStatsEnabled(true);
  auto table_r = BuildMixedTable();
  ASSERT_TRUE(table_r.ok()) << table_r.status().ToString();
  Engine engine;
  engine.database()->AddTable(table_r.MoveValue());

  auto rows = engine.ExecuteSql(
      "SELECT residency, COUNT(*) AS n FROM tde_columns GROUP BY residency");
  ASSERT_TRUE(rows.ok()) << rows.status().ToString();
  ASSERT_EQ(rows.value().num_rows(), 1u);
  EXPECT_EQ(rows.value().ValueString(0, 0), "hot");
  EXPECT_EQ(rows.value().Value(0, 1), 6);

  auto kinds = engine.ExecuteSql(
      "SELECT kind, COUNT(*) AS n FROM tde_stats GROUP BY kind");
  ASSERT_TRUE(kinds.ok()) << kinds.status().ToString();
  // However many kinds the registry currently holds, each appears once.
  std::set<std::string> seen;
  for (uint64_t r = 0; r < kinds.value().num_rows(); ++r) {
    EXPECT_TRUE(seen.insert(kinds.value().ValueString(r, 0)).second)
        << "duplicate group " << kinds.value().ValueString(r, 0);
  }
}

TEST(Introspect, StorageReportJsonWithoutCache) {
  auto table_r = BuildMixedTable();
  ASSERT_TRUE(table_r.ok()) << table_r.status().ToString();
  Engine engine;
  engine.database()->AddTable(table_r.MoveValue());
  const std::string json = engine.StorageReportJson();
  EXPECT_NE(json.find("\"cache\":null"), std::string::npos);
  EXPECT_NE(json.find("\"encoding\":\"run-length\""), std::string::npos);
  // Balanced structure.
  int depth = 0;
  for (char ch : json) {
    if (ch == '{' || ch == '[') ++depth;
    if (ch == '}' || ch == ']') --depth;
    ASSERT_GE(depth, 0);
  }
  EXPECT_EQ(depth, 0);
}

TEST(Introspect, TdeMetricsVirtualTableExposesPercentiles) {
  observe::SetStatsEnabled(true);
  Engine engine;
  auto table_r = BuildMixedTable();
  ASSERT_TRUE(table_r.ok()) << table_r.status().ToString();
  engine.database()->AddTable(table_r.MoveValue());
  // Run a query first so query.latency_us exists and has a sample.
  ASSERT_TRUE(engine.ExecuteSql("SELECT COUNT(*) AS n FROM mixed").ok());
  auto rows = engine.ExecuteSql(
      "SELECT metric, value, p50, p99 FROM tde_metrics "
      "WHERE metric = 'query.latency_us'");
  ASSERT_TRUE(rows.ok()) << rows.status().ToString();
  ASSERT_EQ(rows.value().num_rows(), 1u);
  EXPECT_GT(rows.value().Value(0, 1), 0);
  EXPECT_LE(rows.value().Value(0, 2), rows.value().Value(0, 3));
}

TEST(Introspect, PrometheusRendering) {
  observe::MetricsRegistry reg;
  reg.GetCounter("scan.bytes_compressed")->Add(123);
  reg.GetGauge("pager.bytes_resident")->Set(456);
  observe::Histogram* h = reg.GetHistogram("query.latency_us");
  for (int i = 0; i < 100; ++i) h->Record(static_cast<uint64_t>(i));
  const std::string text = reg.RenderPrometheus();
  EXPECT_NE(text.find("# TYPE tde_scan_bytes_compressed counter\n"
                      "tde_scan_bytes_compressed 123\n"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("# TYPE tde_pager_bytes_resident gauge\n"
                      "tde_pager_bytes_resident 456\n"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE tde_query_latency_us summary"),
            std::string::npos);
  EXPECT_NE(text.find("tde_query_latency_us{quantile=\"0.5\"} "),
            std::string::npos);
  EXPECT_NE(text.find("tde_query_latency_us_count 100"), std::string::npos);
  // Every non-comment line is "name[{labels}] value".
  size_t start = 0;
  while (start < text.size()) {
    size_t end = text.find('\n', start);
    if (end == std::string::npos) end = text.size();
    const std::string line = text.substr(start, end - start);
    start = end + 1;
    if (line.empty() || line[0] == '#') continue;
    EXPECT_NE(line.find(' '), std::string::npos) << line;
  }
}

}  // namespace
}  // namespace tde
