#include "src/textscan/parsers.h"

#include <bit>

#include <gtest/gtest.h>

namespace tde {
namespace {

TEST(ParseInt, Basics) {
  int64_t v;
  EXPECT_TRUE(ParseInt64("42", &v));
  EXPECT_EQ(v, 42);
  EXPECT_TRUE(ParseInt64("-17", &v));
  EXPECT_EQ(v, -17);
  EXPECT_TRUE(ParseInt64("+5", &v));
  EXPECT_EQ(v, 5);
  EXPECT_TRUE(ParseInt64("  99  ", &v));
  EXPECT_EQ(v, 99);
  EXPECT_TRUE(ParseInt64("0", &v));
  EXPECT_EQ(v, 0);
}

TEST(ParseInt, Extremes) {
  int64_t v;
  EXPECT_TRUE(ParseInt64("9223372036854775807", &v));
  EXPECT_EQ(v, INT64_MAX);
  EXPECT_TRUE(ParseInt64("-9223372036854775808", &v));
  EXPECT_EQ(v, INT64_MIN);
  EXPECT_FALSE(ParseInt64("9223372036854775808", &v));
  EXPECT_FALSE(ParseInt64("-9223372036854775809", &v));
}

TEST(ParseInt, Rejections) {
  int64_t v;
  EXPECT_FALSE(ParseInt64("", &v));
  EXPECT_FALSE(ParseInt64("abc", &v));
  EXPECT_FALSE(ParseInt64("12x", &v));
  EXPECT_FALSE(ParseInt64("1.5", &v));
  EXPECT_FALSE(ParseInt64("-", &v));
  EXPECT_FALSE(ParseInt64("1 2", &v));
}

TEST(ParseDouble, Basics) {
  double d;
  EXPECT_TRUE(ParseDouble("3.25", &d));
  EXPECT_DOUBLE_EQ(d, 3.25);
  EXPECT_TRUE(ParseDouble("-0.5", &d));
  EXPECT_DOUBLE_EQ(d, -0.5);
  EXPECT_TRUE(ParseDouble("42", &d));
  EXPECT_DOUBLE_EQ(d, 42.0);
  EXPECT_TRUE(ParseDouble(".5", &d));
  EXPECT_DOUBLE_EQ(d, 0.5);
  EXPECT_TRUE(ParseDouble("7.", &d));
  EXPECT_DOUBLE_EQ(d, 7.0);
}

TEST(ParseDouble, Exponents) {
  double d;
  EXPECT_TRUE(ParseDouble("1e3", &d));
  EXPECT_DOUBLE_EQ(d, 1000.0);
  EXPECT_TRUE(ParseDouble("2.5E-2", &d));
  EXPECT_DOUBLE_EQ(d, 0.025);
  EXPECT_FALSE(ParseDouble("1e", &d));
  EXPECT_FALSE(ParseDouble("1e999", &d));
}

TEST(ParseDouble, Rejections) {
  double d;
  EXPECT_FALSE(ParseDouble("", &d));
  EXPECT_FALSE(ParseDouble(".", &d));
  EXPECT_FALSE(ParseDouble("1.2.3", &d));
  EXPECT_FALSE(ParseDouble("x", &d));
}

TEST(ParseBool, AllSpellings) {
  bool b;
  for (const char* s : {"true", "TRUE", "True", "1"}) {
    ASSERT_TRUE(ParseBool(s, &b)) << s;
    EXPECT_TRUE(b);
  }
  for (const char* s : {"false", "FALSE", "False", "0"}) {
    ASSERT_TRUE(ParseBool(s, &b)) << s;
    EXPECT_FALSE(b);
  }
  EXPECT_FALSE(ParseBool("yes", &b));
}

TEST(ParseDate, IsoFormat) {
  int64_t v;
  ASSERT_TRUE(ParseDate("1994-06-22", &v));
  EXPECT_EQ(v, DaysFromCivil(1994, 6, 22));
  ASSERT_TRUE(ParseDate("1970/01/01", &v));
  EXPECT_EQ(v, 0);
  EXPECT_FALSE(ParseDate("1994-13-01", &v));
  EXPECT_FALSE(ParseDate("1994-06-32", &v));
  EXPECT_FALSE(ParseDate("94-06-22", &v));
  EXPECT_FALSE(ParseDate("1994-06", &v));
  EXPECT_FALSE(ParseDate("1994-06-22x", &v));
  EXPECT_FALSE(ParseDate("1994-06/22", &v));  // mixed separators
}

TEST(ParseDateTime, Formats) {
  int64_t v;
  ASSERT_TRUE(ParseDateTime("1994-06-22 01:02:03", &v));
  EXPECT_EQ(v, DaysFromCivil(1994, 6, 22) * 86400 + 3723);
  ASSERT_TRUE(ParseDateTime("1994-06-22T10:30", &v));
  EXPECT_EQ(v, DaysFromCivil(1994, 6, 22) * 86400 + 37800);
  EXPECT_FALSE(ParseDateTime("1994-06-22", &v));
  EXPECT_FALSE(ParseDateTime("1994-06-22 25:00:00", &v));
}

TEST(TrimField, WhitespaceAndQuotes) {
  EXPECT_EQ(TrimField("  x  "), "x");
  EXPECT_EQ(TrimField("\"quoted\""), "quoted");
  EXPECT_EQ(TrimField(" \"q\" "), "q");
  EXPECT_EQ(TrimField("\""), "\"");
  EXPECT_EQ(TrimField(""), "");
}

TEST(ParseField, EmptyBecomesNull) {
  Lane v;
  ASSERT_TRUE(ParseField(TypeId::kInteger, "", &v));
  EXPECT_EQ(v, kNullSentinel);
  ASSERT_TRUE(ParseField(TypeId::kDate, "  ", &v));
  EXPECT_EQ(v, kNullSentinel);
}

TEST(ParseField, TypedLanes) {
  Lane v;
  ASSERT_TRUE(ParseField(TypeId::kInteger, "7", &v));
  EXPECT_EQ(v, 7);
  ASSERT_TRUE(ParseField(TypeId::kBool, "true", &v));
  EXPECT_EQ(v, 1);
  ASSERT_TRUE(ParseField(TypeId::kReal, "2.5", &v));
  EXPECT_DOUBLE_EQ(std::bit_cast<double>(static_cast<uint64_t>(v)), 2.5);
  EXPECT_FALSE(ParseField(TypeId::kInteger, "x", &v));
  EXPECT_FALSE(ParseField(TypeId::kString, "s", &v));
}

}  // namespace
}  // namespace tde
