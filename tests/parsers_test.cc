#include "src/textscan/parsers.h"

#include <bit>
#include <charconv>
#include <cmath>
#include <random>
#include <string>
#include <vector>

#include <gtest/gtest.h>

namespace tde {
namespace {

TEST(ParseInt, Basics) {
  int64_t v;
  EXPECT_TRUE(ParseInt64("42", &v));
  EXPECT_EQ(v, 42);
  EXPECT_TRUE(ParseInt64("-17", &v));
  EXPECT_EQ(v, -17);
  EXPECT_TRUE(ParseInt64("+5", &v));
  EXPECT_EQ(v, 5);
  EXPECT_TRUE(ParseInt64("  99  ", &v));
  EXPECT_EQ(v, 99);
  EXPECT_TRUE(ParseInt64("0", &v));
  EXPECT_EQ(v, 0);
}

TEST(ParseInt, Extremes) {
  int64_t v;
  EXPECT_TRUE(ParseInt64("9223372036854775807", &v));
  EXPECT_EQ(v, INT64_MAX);
  EXPECT_TRUE(ParseInt64("-9223372036854775808", &v));
  EXPECT_EQ(v, INT64_MIN);
  EXPECT_FALSE(ParseInt64("9223372036854775808", &v));
  EXPECT_FALSE(ParseInt64("-9223372036854775809", &v));
}

TEST(ParseInt, Rejections) {
  int64_t v;
  EXPECT_FALSE(ParseInt64("", &v));
  EXPECT_FALSE(ParseInt64("abc", &v));
  EXPECT_FALSE(ParseInt64("12x", &v));
  EXPECT_FALSE(ParseInt64("1.5", &v));
  EXPECT_FALSE(ParseInt64("-", &v));
  EXPECT_FALSE(ParseInt64("1 2", &v));
}

TEST(ParseDouble, Basics) {
  double d;
  EXPECT_TRUE(ParseDouble("3.25", &d));
  EXPECT_DOUBLE_EQ(d, 3.25);
  EXPECT_TRUE(ParseDouble("-0.5", &d));
  EXPECT_DOUBLE_EQ(d, -0.5);
  EXPECT_TRUE(ParseDouble("42", &d));
  EXPECT_DOUBLE_EQ(d, 42.0);
  EXPECT_TRUE(ParseDouble(".5", &d));
  EXPECT_DOUBLE_EQ(d, 0.5);
  EXPECT_TRUE(ParseDouble("7.", &d));
  EXPECT_DOUBLE_EQ(d, 7.0);
}

TEST(ParseDouble, Exponents) {
  double d;
  EXPECT_TRUE(ParseDouble("1e3", &d));
  EXPECT_DOUBLE_EQ(d, 1000.0);
  EXPECT_TRUE(ParseDouble("2.5E-2", &d));
  EXPECT_DOUBLE_EQ(d, 0.025);
  EXPECT_FALSE(ParseDouble("1e", &d));
  EXPECT_FALSE(ParseDouble("1e999", &d));
}

TEST(ParseDouble, Rejections) {
  double d;
  EXPECT_FALSE(ParseDouble("", &d));
  EXPECT_FALSE(ParseDouble(".", &d));
  EXPECT_FALSE(ParseDouble("1.2.3", &d));
  EXPECT_FALSE(ParseDouble("x", &d));
}

TEST(ParseBool, AllSpellings) {
  bool b;
  for (const char* s : {"true", "TRUE", "True", "1"}) {
    ASSERT_TRUE(ParseBool(s, &b)) << s;
    EXPECT_TRUE(b);
  }
  for (const char* s : {"false", "FALSE", "False", "0"}) {
    ASSERT_TRUE(ParseBool(s, &b)) << s;
    EXPECT_FALSE(b);
  }
  EXPECT_FALSE(ParseBool("yes", &b));
}

TEST(ParseDate, IsoFormat) {
  int64_t v;
  ASSERT_TRUE(ParseDate("1994-06-22", &v));
  EXPECT_EQ(v, DaysFromCivil(1994, 6, 22));
  ASSERT_TRUE(ParseDate("1970/01/01", &v));
  EXPECT_EQ(v, 0);
  EXPECT_FALSE(ParseDate("1994-13-01", &v));
  EXPECT_FALSE(ParseDate("1994-06-32", &v));
  EXPECT_FALSE(ParseDate("94-06-22", &v));
  EXPECT_FALSE(ParseDate("1994-06", &v));
  EXPECT_FALSE(ParseDate("1994-06-22x", &v));
  EXPECT_FALSE(ParseDate("1994-06/22", &v));  // mixed separators
}

TEST(ParseDateTime, Formats) {
  int64_t v;
  ASSERT_TRUE(ParseDateTime("1994-06-22 01:02:03", &v));
  EXPECT_EQ(v, DaysFromCivil(1994, 6, 22) * 86400 + 3723);
  ASSERT_TRUE(ParseDateTime("1994-06-22T10:30", &v));
  EXPECT_EQ(v, DaysFromCivil(1994, 6, 22) * 86400 + 37800);
  EXPECT_FALSE(ParseDateTime("1994-06-22", &v));
  EXPECT_FALSE(ParseDateTime("1994-06-22 25:00:00", &v));
}

TEST(TrimField, WhitespaceAndQuotes) {
  EXPECT_EQ(TrimField("  x  "), "x");
  EXPECT_EQ(TrimField("\"quoted\""), "quoted");
  EXPECT_EQ(TrimField(" \"q\" "), "q");
  EXPECT_EQ(TrimField("\""), "\"");
  EXPECT_EQ(TrimField(""), "");
}

TEST(ParseField, EmptyBecomesNull) {
  Lane v;
  ASSERT_TRUE(ParseField(TypeId::kInteger, "", &v));
  EXPECT_EQ(v, kNullSentinel);
  ASSERT_TRUE(ParseField(TypeId::kDate, "  ", &v));
  EXPECT_EQ(v, kNullSentinel);
}

TEST(ParseField, TypedLanes) {
  Lane v;
  ASSERT_TRUE(ParseField(TypeId::kInteger, "7", &v));
  EXPECT_EQ(v, 7);
  ASSERT_TRUE(ParseField(TypeId::kBool, "true", &v));
  EXPECT_EQ(v, 1);
  ASSERT_TRUE(ParseField(TypeId::kReal, "2.5", &v));
  EXPECT_DOUBLE_EQ(std::bit_cast<double>(static_cast<uint64_t>(v)), 2.5);
  EXPECT_FALSE(ParseField(TypeId::kInteger, "x", &v));
  EXPECT_FALSE(ParseField(TypeId::kString, "s", &v));
}

// ParseDouble must agree bit-for-bit with the library's correctly-rounded
// conversion — the old binary-accumulation parser drifted by several ULP
// on values like 0.1 repeated through long fractions.
TEST(ParseDouble, RoundTripsAgainstFromChars) {
  const std::vector<std::string> cases = {
      "0.1",
      "0.2",
      "0.3",
      "1.7976931348623157e308",   // DBL_MAX
      "2.2250738585072014e-308",  // DBL_MIN
      "4.9406564584124654e-324",  // smallest denormal
      "0.000001",
      "123456789.123456789",
      "9007199254740993",          // 2^53 + 1: needs the slow path
      "18446744073709551615",      // UINT64_MAX
      "184467440737095516159.5",   // > UINT64_MAX: mantissa saturates
      "3.141592653589793238462643", // more digits than a double holds
      "1e308",
      "1e-308",
      "0.00000000000000000000000000000000000001",
      "-0.5",
      "5e-1",
      "2.5e2",
      "1234567890123456789012345678901234567890",
  };
  for (const std::string& s : cases) {
    double got;
    ASSERT_TRUE(ParseDouble(s, &got)) << s;
    double want;
    auto r = std::from_chars(s.data(), s.data() + s.size(), want);
    ASSERT_TRUE(r.ec == std::errc()) << s;
    EXPECT_EQ(std::bit_cast<uint64_t>(got), std::bit_cast<uint64_t>(want))
        << s << ": got " << got << " want " << want;
  }
}

TEST(ParseDouble, RandomRoundTripsAgainstFromChars) {
  std::mt19937_64 rng(12345);
  for (int i = 0; i < 5000; ++i) {
    // Random decimal strings: mantissa digits split around a point, with
    // an occasional exponent.
    std::string s;
    if (rng() % 2) s += '-';
    const int int_digits = 1 + static_cast<int>(rng() % 20);
    for (int d = 0; d < int_digits; ++d) {
      s += static_cast<char>('0' + rng() % 10);
    }
    if (rng() % 2) {
      s += '.';
      const int frac_digits = 1 + static_cast<int>(rng() % 20);
      for (int d = 0; d < frac_digits; ++d) {
        s += static_cast<char>('0' + rng() % 10);
      }
    }
    if (rng() % 3 == 0) {
      s += 'e';
      if (rng() % 2) s += '-';
      s += std::to_string(rng() % 320);
    }
    double got;
    ASSERT_TRUE(ParseDouble(s, &got)) << s;
    double want;
    auto r = std::from_chars(s.data(), s.data() + s.size(), want);
    if (r.ec == std::errc::result_out_of_range) {
      // from_chars reports overflow/underflow; our parser folds them to
      // +/-inf and 0 — the values the rounding would produce.
      continue;
    }
    ASSERT_TRUE(r.ec == std::errc()) << s;
    EXPECT_EQ(std::bit_cast<uint64_t>(got), std::bit_cast<uint64_t>(want))
        << s;
  }
}

TEST(ParseDouble, OverflowSaturatesLikeFromChars) {
  double d;
  EXPECT_TRUE(ParseDouble("1e309", &d));
  EXPECT_TRUE(std::isinf(d) && d > 0);
  EXPECT_TRUE(ParseDouble("-1e309", &d));
  EXPECT_TRUE(std::isinf(d) && d < 0);
  EXPECT_TRUE(ParseDouble("1e-324", &d));
  EXPECT_EQ(d, 0.0);
  EXPECT_FALSE(ParseDouble("1e401", &d));  // absurd exponents stay errors
}

TEST(ParseDate, RejectsImpossibleDays) {
  int64_t v;
  EXPECT_FALSE(ParseDate("2021-02-30", &v));
  EXPECT_FALSE(ParseDate("2021-02-29", &v));  // not a leap year
  EXPECT_FALSE(ParseDate("2021-04-31", &v));
  EXPECT_FALSE(ParseDate("2021-06-31", &v));
  EXPECT_FALSE(ParseDate("2021-09-31", &v));
  EXPECT_FALSE(ParseDate("2021-11-31", &v));
  EXPECT_FALSE(ParseDate("2020-02-30", &v));
  EXPECT_TRUE(ParseDate("2021-01-31", &v));
  EXPECT_TRUE(ParseDate("2021-12-31", &v));
}

TEST(ParseDate, LeapYearRules) {
  int64_t v;
  EXPECT_TRUE(ParseDate("2020-02-29", &v));   // divisible by 4
  EXPECT_TRUE(ParseDate("2000-02-29", &v));   // divisible by 400
  EXPECT_FALSE(ParseDate("1900-02-29", &v));  // divisible by 100, not 400
  EXPECT_FALSE(ParseDate("2100-02-29", &v));
  EXPECT_TRUE(ParseDate("2400-02-29", &v));
  EXPECT_TRUE(ParseDate("2020-02-28", &v));
}

TEST(ParseDateTime, RejectsImpossibleDates) {
  int64_t v;
  EXPECT_FALSE(ParseDateTime("2021-02-30 10:00:00", &v));
  EXPECT_FALSE(ParseDateTime("1900-02-29T00:00", &v));
  EXPECT_TRUE(ParseDateTime("2020-02-29 23:59:59", &v));
}

TEST(UnquoteField, UnescapesDoubledQuotes) {
  std::string scratch;
  EXPECT_EQ(UnquoteField("plain", &scratch), "plain");
  EXPECT_EQ(UnquoteField("\"quoted\"", &scratch), "quoted");
  EXPECT_EQ(UnquoteField("  \"padded\"  ", &scratch), "padded");
  EXPECT_EQ(UnquoteField("\"say \"\"hi\"\"\"", &scratch), "say \"hi\"");
  EXPECT_EQ(UnquoteField("\"a,b\"", &scratch), "a,b");
  EXPECT_EQ(UnquoteField("\"line1\nline2\"", &scratch), "line1\nline2");
  EXPECT_EQ(UnquoteField("\"\"", &scratch), "");
  EXPECT_EQ(UnquoteField("\"\"\"\"", &scratch), "\"");
  EXPECT_EQ(UnquoteField("", &scratch), "");
}

}  // namespace
}  // namespace tde
