// Compressed-domain aggregation: dictionary-code grouping, run-level
// folding, and metadata short-circuits must answer byte-for-byte
// identically to decode-then-aggregate across every encoding, aggregate
// kind, and NULL pattern — while EXPLAIN ANALYZE and the metrics registry
// surface the rows, runs, and heap lookups that were skipped.

#include <limits>
#include <random>

#include <gtest/gtest.h>

#include "src/exec/parallel_rollup.h"
#include "src/observe/metrics.h"
#include "src/plan/executor.h"
#include "src/plan/strategic.h"
#include "src/storage/heap_accelerator.h"
#include "src/workload/rle_data.h"
#include "tests/test_util.h"

namespace tde {
namespace {

using testutil::VectorSource;

constexpr Lane kInt64Max = std::numeric_limits<int64_t>::max();
constexpr Lane kInt64Min = std::numeric_limits<int64_t>::min();

/// Control options: every compressed-domain aggregation path off (plus the
/// join rewrites, so the control plan is literally decode-then-aggregate).
StrategicOptions DecodeThenAggregate() {
  StrategicOptions off;
  off.enable_invisible_join = false;
  off.enable_rank_join = false;
  off.enable_dict_predicates = false;
  off.enable_run_filters = false;
  off.enable_dict_grouping = false;
  off.enable_run_aggregation = false;
  off.enable_metadata_aggregates = false;
  return off;
}

/// Byte-identical comparison: same row count, same order, same rendering
/// of every cell (strings through their heaps, NULLs as NULL).
void ExpectIdentical(const QueryResult& a, const QueryResult& b,
                     const std::string& label) {
  ASSERT_EQ(a.num_rows(), b.num_rows()) << label;
  ASSERT_EQ(a.schema().num_fields(), b.schema().num_fields()) << label;
  for (uint64_t r = 0; r < a.num_rows(); ++r) {
    for (size_t c = 0; c < a.schema().num_fields(); ++c) {
      ASSERT_EQ(a.ValueString(r, c), b.ValueString(r, c))
          << label << " row " << r << " col " << c;
    }
  }
}

AggSpec Agg(AggKind kind, std::string input, std::string output) {
  return AggSpec{kind, std::move(input), std::move(output)};
}

struct Kind {
  const char* name;
  AggKind kind;
};

std::vector<Kind> AllKinds() {
  return {{"count_star", AggKind::kCountStar},
          {"count", AggKind::kCount},
          {"sum", AggKind::kSum},
          {"min", AggKind::kMin},
          {"max", AggKind::kMax},
          {"avg", AggKind::kAvg},
          {"countd", AggKind::kCountDistinct},
          {"median", AggKind::kMedian}};
}

/// NULL injection patterns for the value column.
enum class Nulls { kNone, kSome, kOneGroupAllNull, kAll };

const char* NullsName(Nulls n) {
  switch (n) {
    case Nulls::kNone: return "none";
    case Nulls::kSome: return "some";
    case Nulls::kOneGroupAllNull: return "group0_null";
    case Nulls::kAll: return "all";
  }
  return "?";
}

/// Value distributions chosen so the FlowTable dynamic encoder picks a
/// different physical encoding for each (the same families property_test
/// uses): wild stays uncompressed, narrow goes frame-of-reference,
/// monotonic goes delta, ramp goes affine, runs goes run-length, small
/// domain goes array-dictionary, constant goes constant.
struct Distribution {
  const char* name;
  std::function<Lane(size_t, std::mt19937_64&)> gen;
};

std::vector<Distribution> ValueDistributions() {
  return {
      {"wild",
       [](size_t, std::mt19937_64& rng) {
         // Wide and signed, but bounded so a 4000-row SUM cannot overflow.
         return static_cast<Lane>(rng() % (uint64_t{1} << 40)) -
                (Lane{1} << 39);
       }},
      {"narrow_range",
       [](size_t, std::mt19937_64& rng) {
         return static_cast<Lane>(1000000000 + rng() % 5000);
       }},
      {"monotonic",
       [](size_t i, std::mt19937_64& rng) {
         return static_cast<Lane>(i * 11 + rng() % 10);
       }},
      {"ramp", [](size_t i, std::mt19937_64&) {
         return static_cast<Lane>(40 + 8 * i);
       }},
      {"runs",
       [](size_t i, std::mt19937_64&) {
         return static_cast<Lane>((i / 97) % 13);
       }},
      {"small_domain",
       [](size_t, std::mt19937_64& rng) {
         return static_cast<Lane>((rng() % 16) * 1000003);
       }},
      {"constant", [](size_t, std::mt19937_64&) { return Lane{42}; }},
  };
}

/// A table with an integer group key `g` (10 groups, interleaved) and a
/// value column `v` drawn from `dist` with NULLs injected per `nulls`.
std::shared_ptr<Table> EncodedTable(const Distribution& dist, Nulls nulls,
                                    size_t rows, uint64_t seed) {
  std::vector<Lane> g(rows), v(rows);
  std::mt19937_64 rng(seed);
  for (size_t i = 0; i < rows; ++i) {
    g[i] = static_cast<Lane>((i * 7 + 3) % 10);
    Lane val = dist.gen(i, rng);
    switch (nulls) {
      case Nulls::kNone:
        break;
      case Nulls::kSome:
        if (rng() % 7 == 0) val = kNullSentinel;
        break;
      case Nulls::kOneGroupAllNull:
        if (g[i] == 0) val = kNullSentinel;
        break;
      case Nulls::kAll:
        val = kNullSentinel;
        break;
    }
    v[i] = val;
  }
  return FlowTable::Build(VectorSource::Ints({{"g", g}, {"v", v}}))
      .MoveValue();
}

/// A table with a low-cardinality string column `s` (optionally nullable)
/// and an integer payload `v`. FlowTable post-processing sorts the heap,
/// so the grouping rewrite sees collation-ordered tokens; pass
/// `sorted_heap = false` to keep the heap in arrival order instead (the
/// unsorted-dictionary variant).
std::shared_ptr<Table> StringTable(size_t rows, bool with_nulls,
                                   uint64_t seed, bool sorted_heap = true) {
  static const std::vector<std::string> kVocab = {
      "apple", "banana", "cherry", "date", "elderberry", "fig", "grape"};
  Schema schema;
  schema.AddField({"v", TypeId::kInteger});
  schema.AddField({"s", TypeId::kString});
  std::vector<ColumnVector> cols(2);
  cols[0].type = TypeId::kInteger;
  cols[1].type = TypeId::kString;
  auto heap = std::make_shared<StringHeap>();
  HeapAccelerator acc(heap.get());
  std::mt19937_64 rng(seed);
  for (size_t i = 0; i < rows; ++i) {
    cols[0].lanes.push_back(static_cast<Lane>(rng() % 1000));
    if (with_nulls && rng() % 7 == 0) {
      cols[1].lanes.push_back(kNullSentinel);
    } else {
      cols[1].lanes.push_back(acc.Add(kVocab[rng() % kVocab.size()]));
    }
  }
  cols[1].heap = std::move(heap);
  auto src = std::make_unique<VectorSource>(std::move(schema),
                                            std::move(cols));
  FlowTableOptions opts;
  opts.post_process = sorted_heap;
  return FlowTable::Build(std::move(src), opts).MoveValue();
}

/// A table whose `r` column is sorted and low-cardinality (run-length
/// encodes) with an unsorted integer payload `p`.
std::shared_ptr<Table> RleTable(size_t rows, uint64_t seed) {
  std::vector<Lane> r(rows), p(rows);
  std::mt19937_64 rng(seed);
  for (size_t i = 0; i < rows; ++i) {
    r[i] = static_cast<Lane>(i / ((rows / 10) + 1));
    p[i] = static_cast<Lane>(rng() % 100000);
  }
  return FlowTable::Build(VectorSource::Ints({{"r", r}, {"p", p}}))
      .MoveValue();
}

QueryResult RunPlan(const Plan& plan, const StrategicOptions& opts) {
  return ExecutePlanNode(StrategicOptimize(plan.root(), opts).MoveValue())
      .MoveValue();
}

// ---------------------------------------------------------------------------
// The differential matrix: encoding x aggregate kind x NULL pattern, both
// grouped and whole-table, compressed-domain rewrites on vs everything off.
// ---------------------------------------------------------------------------

TEST(CompressedAgg, EncodingByKindByNullPattern) {
  const StrategicOptions control = DecodeThenAggregate();
  const StrategicOptions full;
  uint64_t seed = 20260806;
  for (const auto& dist : ValueDistributions()) {
    for (Nulls nulls : {Nulls::kNone, Nulls::kSome, Nulls::kOneGroupAllNull,
                        Nulls::kAll}) {
      auto t = EncodedTable(dist, nulls, 4000, seed++);
      for (const auto& k : AllKinds()) {
        const std::string label = std::string(dist.name) + "/" +
                                  NullsName(nulls) + "/" + k.name;
        auto grouped = [&] {
          return Plan::Scan(t).Aggregate(
              {"g"}, {Agg(k.kind, "v", "a"),
                      Agg(AggKind::kCountStar, "", "n")});
        };
        ExpectIdentical(RunPlan(grouped(), full), RunPlan(grouped(), control),
                        "grouped " + label);
        auto whole = [&] {
          return Plan::Scan(t).Aggregate(
              {}, {Agg(k.kind, "v", "a"),
                   Agg(AggKind::kCountStar, "", "n")});
        };
        ExpectIdentical(RunPlan(whole(), full), RunPlan(whole(), control),
                        "whole " + label);
      }
    }
  }
}

TEST(CompressedAgg, EmptyInput) {
  auto t = FlowTable::Build(VectorSource::Ints({{"g", {}}, {"v", {}}}))
               .MoveValue();
  const StrategicOptions control = DecodeThenAggregate();
  const StrategicOptions full;
  for (const auto& k : AllKinds()) {
    auto grouped = [&] {
      return Plan::Scan(t).Aggregate({"g"}, {Agg(k.kind, "v", "a")});
    };
    QueryResult g_full = RunPlan(grouped(), full);
    ExpectIdentical(g_full, RunPlan(grouped(), control),
                    std::string("empty grouped ") + k.name);
    EXPECT_EQ(g_full.num_rows(), 0u) << k.name;
    // Whole-table aggregation over zero rows still yields one row (COUNTs
    // are 0, everything else NULL) — and the metadata rewrite answers it
    // without opening the scan.
    auto whole = [&] {
      return Plan::Scan(t).Aggregate({}, {Agg(k.kind, "v", "a")});
    };
    QueryResult w_full = RunPlan(whole(), full);
    ExpectIdentical(w_full, RunPlan(whole(), control),
                    std::string("empty whole ") + k.name);
    EXPECT_EQ(w_full.num_rows(), 1u) << k.name;
  }
}

// ---------------------------------------------------------------------------
// Dictionary-code grouping.
// ---------------------------------------------------------------------------

TEST(CompressedAgg, StringKeyGroupingMatchesDecoded) {
  const StrategicOptions control = DecodeThenAggregate();
  const StrategicOptions full;
  for (bool with_nulls : {false, true}) {
    for (bool sorted_heap : {true, false}) {
      auto t = StringTable(4000, with_nulls, 7 + with_nulls, sorted_heap);
      for (const auto& k : AllKinds()) {
        const std::string label =
            std::string(k.name) + (with_nulls ? " nullable" : "") +
            (sorted_heap ? " sorted" : " unsorted");
        auto make = [&] {
          return Plan::Scan(t).Aggregate(
              {"s"}, {Agg(k.kind, "v", "a"),
                      Agg(AggKind::kCountStar, "", "n")});
        };
        ExpectIdentical(RunPlan(make(), full), RunPlan(make(), control), label);
      }
      // Aggregates over the string column itself (MIN/MAX/COUNTD of s,
      // grouped by s) exercise string-typed aggregate outputs alongside
      // late-materialized keys.
      auto strs = [&] {
        return Plan::Scan(t).Aggregate(
            {"s"}, {Agg(AggKind::kMin, "s", "lo"),
                    Agg(AggKind::kMax, "s", "hi"),
                    Agg(AggKind::kCountDistinct, "s", "d")});
      };
      ExpectIdentical(RunPlan(strs(), full), RunPlan(strs(), control),
                      "string aggs over string key");
    }
  }
}

TEST(CompressedAgg, MultiKeyDictGroupingMatchesDecoded) {
  auto t = StringTable(6000, /*with_nulls=*/true, 11);
  const StrategicOptions control = DecodeThenAggregate();
  const StrategicOptions full;
  // Second key: a computed bucket of v, so the key list mixes a string
  // key (normalized to codes) with an integer key (passed through).
  auto make = [&] {
    return Plan::Scan(t)
        .Project({{expr::Col("s"), "s"},
                  {expr::Arith(ArithOp::kMod, expr::Col("v"), expr::Int(4)),
                   "b"},
                  {expr::Col("v"), "v"}})
        .Aggregate({"s", "b"}, {Agg(AggKind::kSum, "v", "sum"),
                                Agg(AggKind::kCountStar, "", "n")});
  };
  ExpectIdentical(RunPlan(make(), full), RunPlan(make(), control), "multi-key");
}

TEST(CompressedAgg, OrderedAggregateNormalizesStringKeys) {
  auto t = StringTable(4000, /*with_nulls=*/true, 13);
  const StrategicOptions control = DecodeThenAggregate();
  const StrategicOptions full;
  // Sorting on s marks the aggregation input grouped, so the lowering
  // picks OrderedAggregate — which also groups on codes now.
  auto make = [&] {
    return Plan::Scan(t)
        .OrderBy({{"s", /*ascending=*/true}})
        .Aggregate({"s"}, {Agg(AggKind::kSum, "v", "sum"),
                           Agg(AggKind::kCount, "v", "c")});
  };
  ExpectIdentical(RunPlan(make(), full), RunPlan(make(), control), "ordered");
}

TEST(CompressedAgg, DictGroupingKillSwitchFallsBack) {
  auto t = StringTable(2000, /*with_nulls=*/true, 17);
  StrategicOptions off;
  off.enable_dict_grouping = false;
  auto make = [&] {
    return Plan::Scan(t).Aggregate({"s"},
                                   {Agg(AggKind::kSum, "v", "sum")});
  };
  PlanNodePtr node = StrategicOptimize(make().root(), off).MoveValue();
  EXPECT_FALSE(node->agg.dict_code_keys);
  EXPECT_FALSE(node->compressed_agg);
  ExpectIdentical(RunPlan(make(), off), RunPlan(make(), DecodeThenAggregate()),
                  "kill switch");
}

// Mode A -> Mode B: the normalizer starts on the first heap it sees (zero
// decodes) and pivots to a canonical first-seen-order heap when a second
// heap appears; codes remain stable across the pivot.
TEST(CompressedAgg, NormalizerSurvivesHeapChange) {
  auto h1 = std::make_shared<StringHeap>();
  auto h2 = std::make_shared<StringHeap>();
  Lane a1 = h1->Add("alpha"), b1 = h1->Add("beta");
  Lane b2 = h2->Add("beta"), c2 = h2->Add("gamma");
  StringKeyNormalizer norm;
  uint32_t ca = norm.Code(h1, a1);
  uint32_t cb = norm.Code(h1, b1);
  uint32_t cn = norm.Code(h1, kNullSentinel);
  EXPECT_NE(ca, cb);
  // Mode A: emit heap is the input heap, tokens pass through untouched.
  EXPECT_EQ(norm.emit_heap().get(), h1.get());
  EXPECT_EQ(norm.Token(ca), a1);
  // Second heap: equal strings must map to the code assigned under the
  // first heap, new strings get fresh codes.
  EXPECT_EQ(norm.Code(h2, b2), cb);
  uint32_t cc = norm.Code(h2, c2);
  EXPECT_EQ(norm.distinct(), 4u);  // alpha, beta, NULL, gamma
  // Mode B: a canonical heap renders every code, including ones assigned
  // before the pivot, and NULL round-trips as the sentinel.
  auto emit = norm.emit_heap();
  EXPECT_NE(emit.get(), h1.get());
  EXPECT_EQ(emit->Get(norm.Token(ca)), "alpha");
  EXPECT_EQ(emit->Get(norm.Token(cb)), "beta");
  EXPECT_EQ(emit->Get(norm.Token(cc)), "gamma");
  EXPECT_EQ(norm.Token(cn), kNullSentinel);
  // Re-presenting heap 1 tokens after the pivot still resolves.
  EXPECT_EQ(norm.Code(h1, b1), cb);
}

// ---------------------------------------------------------------------------
// Run-level folding.
// ---------------------------------------------------------------------------

TEST(CompressedAgg, RunFoldRewriteMatchesDecoded) {
  auto t = RleTable(50000, 23);
  const StrategicOptions control = DecodeThenAggregate();
  const StrategicOptions full;
  // Grouping the RLE column by itself with every foldable aggregate.
  auto make = [&] {
    return Plan::Scan(t).Aggregate(
        {"r"}, {Agg(AggKind::kSum, "r", "sum"),
                Agg(AggKind::kCountStar, "", "n"),
                Agg(AggKind::kCount, "r", "c"),
                Agg(AggKind::kMin, "r", "lo"),
                Agg(AggKind::kMax, "r", "hi"),
                Agg(AggKind::kAvg, "r", "avg"),
                Agg(AggKind::kCountDistinct, "r", "d")});
  };
  PlanNodePtr folded = StrategicOptimize(make().root(), full).MoveValue();
  std::string shape = PlanToString(folded);
  EXPECT_NE(shape.find("[fold-runs]"), std::string::npos) << shape;
  EXPECT_NE(shape.find("IndexedScan(r)"), std::string::npos) << shape;
  ExpectIdentical(ExecutePlanNode(folded).MoveValue(),
                  RunPlan(make(), control), "grouped fold");

  // Whole-table SUM over the RLE column folds too (group_by_value off).
  auto whole = [&] {
    return Plan::Scan(t).Aggregate({}, {Agg(AggKind::kSum, "r", "sum"),
                                        Agg(AggKind::kAvg, "r", "avg")});
  };
  PlanNodePtr wnode = StrategicOptimize(whole().root(), full).MoveValue();
  EXPECT_NE(PlanToString(wnode).find("[fold-runs]"), std::string::npos);
  ExpectIdentical(ExecutePlanNode(wnode).MoveValue(),
                  RunPlan(whole(), control), "whole fold");
}

TEST(CompressedAgg, RunFoldDeclinesWhenNotProfitable) {
  auto t = RleTable(20000, 29);
  const StrategicOptions full;
  // MEDIAN is not foldable: UpdateRun degenerates to O(count).
  auto median = Plan::Scan(t).Aggregate(
      {"r"}, {Agg(AggKind::kMedian, "r", "med")});
  std::string shape =
      PlanToString(StrategicOptimize(median.root(), full).MoveValue());
  EXPECT_EQ(shape.find("[fold-runs]"), std::string::npos) << shape;
  // Aggregating the unsorted payload cannot fold either.
  auto payload = Plan::Scan(t).Aggregate(
      {"r"}, {Agg(AggKind::kSum, "p", "sum")});
  shape = PlanToString(StrategicOptimize(payload.root(), full).MoveValue());
  EXPECT_EQ(shape.find("[fold-runs]"), std::string::npos) << shape;
  // Both still answer correctly.
  auto med = [&] {
    return Plan::Scan(t).Aggregate({"r"},
                                   {Agg(AggKind::kMedian, "r", "med")});
  };
  ExpectIdentical(RunPlan(med(), full), RunPlan(med(), DecodeThenAggregate()),
                  "median");
  auto pay = [&] {
    return Plan::Scan(t).Aggregate({"r"},
                                   {Agg(AggKind::kSum, "p", "sum")});
  };
  ExpectIdentical(RunPlan(pay(), full), RunPlan(pay(), DecodeThenAggregate()),
                  "payload");
}

TEST(CompressedAgg, RunFoldKillSwitch) {
  auto t = RleTable(20000, 31);
  StrategicOptions off;
  off.enable_run_aggregation = false;
  auto make = Plan::Scan(t).Aggregate(
      {"r"}, {Agg(AggKind::kSum, "r", "sum")});
  std::string shape =
      PlanToString(StrategicOptimize(make.root(), off).MoveValue());
  EXPECT_EQ(shape.find("[fold-runs]"), std::string::npos) << shape;
  EXPECT_EQ(shape.find("IndexedScan"), std::string::npos) << shape;
}

TEST(CompressedAgg, ParallelRollupFoldParity) {
  auto t = MakeRleTable(200000).MoveValue();
  auto col = t->ColumnByName("primary").MoveValue();
  auto index = BuildIndexTable(*col).MoveValue();
  SortIndexByValue(&index);
  ParallelRollupOptions on;
  on.value_name = "primary";
  on.aggs = {Agg(AggKind::kSum, "primary", "sum"),
             Agg(AggKind::kCountStar, "", "n"),
             Agg(AggKind::kMin, "primary", "lo")};
  on.workers = 4;
  ParallelRollupOptions off = on;
  off.fold_runs = false;
  auto fold = ParallelIndexedAggregate(t, index, on).MoveValue();
  auto row = ParallelIndexedAggregate(t, index, off).MoveValue();
  EXPECT_GT(fold.runs_folded, 0u);
  EXPECT_EQ(row.runs_folded, 0u);
  QueryResult a(fold.schema, std::move(fold.blocks));
  QueryResult b(row.schema, std::move(row.blocks));
  ExpectIdentical(a, b, "parallel rollup fold vs rows");
}

// ---------------------------------------------------------------------------
// Metadata short-circuits.
// ---------------------------------------------------------------------------

TEST(CompressedAgg, MetadataAnswersWholeTableAggregates) {
  auto t = RleTable(30000, 37);
  const StrategicOptions full;
  auto make = [&] {
    return Plan::Scan(t).Aggregate(
        {}, {Agg(AggKind::kCountStar, "", "n"),
             Agg(AggKind::kCount, "r", "c"),
             Agg(AggKind::kMin, "r", "lo"),
             Agg(AggKind::kMax, "r", "hi"),
             Agg(AggKind::kCountDistinct, "r", "d")});
  };
  PlanNodePtr node = StrategicOptimize(make().root(), full).MoveValue();
  EXPECT_TRUE(node->metadata_answered) << PlanToString(node);
  EXPECT_NE(PlanToString(node).find("[metadata]"), std::string::npos);
  ExpectIdentical(ExecutePlanNode(node).MoveValue(),
                  RunPlan(make(), DecodeThenAggregate()), "metadata");
}

TEST(CompressedAgg, MetadataIsAllOrNothing) {
  auto t = RleTable(30000, 41);
  const StrategicOptions full;
  // SUM is never metadata-answerable, so the presence of one SUM keeps
  // the whole node on the execution path (no half-answered rows).
  auto mixed = Plan::Scan(t).Aggregate(
      {}, {Agg(AggKind::kCountStar, "", "n"),
           Agg(AggKind::kSum, "r", "sum")});
  PlanNodePtr node = StrategicOptimize(mixed.root(), full).MoveValue();
  EXPECT_FALSE(node->metadata_answered) << PlanToString(node);
}

TEST(CompressedAgg, MetadataDeclinesNullableMin) {
  // MIN over a nullable column is not metadata-answerable (the encoder's
  // min is the NULL sentinel), but MAX still is — the all-or-nothing rule
  // decides per aggregate list.
  auto t = EncodedTable(ValueDistributions()[4], Nulls::kSome, 4000, 43);
  const StrategicOptions full;
  auto minq = Plan::Scan(t).Aggregate({},
                                      {Agg(AggKind::kMin, "v", "lo")});
  EXPECT_FALSE(
      StrategicOptimize(minq.root(), full).MoveValue()->metadata_answered);
  auto maxq = [&] {
    return Plan::Scan(t).Aggregate({}, {Agg(AggKind::kMax, "v", "hi")});
  };
  PlanNodePtr mx = StrategicOptimize(maxq().root(), full).MoveValue();
  EXPECT_TRUE(mx->metadata_answered) << PlanToString(mx);
  ExpectIdentical(ExecutePlanNode(mx).MoveValue(),
                  RunPlan(maxq(), DecodeThenAggregate()), "nullable max");
}

TEST(CompressedAgg, MetadataKillSwitch) {
  auto t = RleTable(10000, 47);
  StrategicOptions off;
  off.enable_metadata_aggregates = false;
  auto make = Plan::Scan(t).Aggregate({},
                                      {Agg(AggKind::kCountStar, "", "n")});
  PlanNodePtr node = StrategicOptimize(make.root(), off).MoveValue();
  EXPECT_FALSE(node->metadata_answered);
}

// ---------------------------------------------------------------------------
// SUM overflow: detected, not wrapped — identically on the row path and
// the run-fold path.
// ---------------------------------------------------------------------------

TEST(CompressedAgg, SumOverflowKernels) {
  using agg_internal::Update;
  using agg_internal::UpdateRun;
  // Row path: reaching INT64_MAX exactly is fine, one more overflows.
  AggState s;
  ASSERT_TRUE(Update(AggKind::kSum, TypeId::kInteger, kInt64Max - 1, &s).ok());
  ASSERT_TRUE(Update(AggKind::kSum, TypeId::kInteger, 1, &s).ok());
  EXPECT_EQ(s.i, kInt64Max);
  Status st = Update(AggKind::kSum, TypeId::kInteger, 1, &s);
  EXPECT_FALSE(st.ok());
  EXPECT_NE(st.message().find("overflow"), std::string::npos);
  // Negative direction.
  AggState sn;
  ASSERT_TRUE(
      Update(AggKind::kSum, TypeId::kInteger, kInt64Min + 2, &sn).ok());
  EXPECT_FALSE(Update(AggKind::kSum, TypeId::kInteger, -3, &sn).ok());
  // Run path: v * count that lands exactly on the boundary is accepted,
  // one past it is rejected — matching what count row-adds would do.
  AggState r;
  ASSERT_TRUE(
      UpdateRun(AggKind::kSum, TypeId::kInteger, kInt64Max / 7, 7, &r).ok());
  EXPECT_FALSE(
      UpdateRun(AggKind::kSum, TypeId::kInteger, kInt64Max / 7, 7, &r).ok());
  AggState r2;
  EXPECT_FALSE(
      UpdateRun(AggKind::kSum, TypeId::kInteger, kInt64Max / 2, 3, &r2).ok());
}

TEST(CompressedAgg, SumOverflowEndToEnd) {
  const Lane big = kInt64Max / 4;
  // Two long runs of huge values: the run-fold plan and the row plan must
  // both report the overflow as an error (not a wrapped number).
  std::vector<Lane> r(20000);
  for (size_t i = 0; i < r.size(); ++i) r[i] = i < 10000 ? big : big - 1;
  auto t = FlowTable::Build(VectorSource::Ints({{"r", r}})).MoveValue();
  auto make = [&] {
    return Plan::Scan(t).Aggregate({}, {Agg(AggKind::kSum, "r", "sum")});
  };
  auto folded = ExecutePlanNode(
      StrategicOptimize(make().root(), StrategicOptions{}).MoveValue());
  EXPECT_FALSE(folded.ok());
  EXPECT_NE(folded.status().message().find("overflow"), std::string::npos);
  auto rowwise = ExecutePlanNode(
      StrategicOptimize(make().root(), DecodeThenAggregate()).MoveValue());
  EXPECT_FALSE(rowwise.ok());
  // Near the boundary but not past it: both succeed and agree.
  std::vector<Lane> ok_vals(8, kInt64Max / 8);
  auto t2 = FlowTable::Build(VectorSource::Ints({{"r", ok_vals}}))
                .MoveValue();
  auto make2 = [&] {
    return Plan::Scan(t2).Aggregate({}, {Agg(AggKind::kSum, "r", "sum")});
  };
  ExpectIdentical(RunPlan(make2(), StrategicOptions{}),
                  RunPlan(make2(), DecodeThenAggregate()), "boundary sum");
}

// ---------------------------------------------------------------------------
// Observability: counters and EXPLAIN ANALYZE notes.
// ---------------------------------------------------------------------------

TEST(CompressedAgg, CountersAndExplain) {
  observe::SetStatsEnabled(true);
  auto& reg = observe::MetricsRegistry::Global();
  {
    auto t = RleTable(20000, 53);
    const uint64_t before = reg.GetCounter("agg.runs_folded")->value();
    QueryResult result;
    std::string text =
        ExplainAnalyzePlan(Plan::Scan(t).Aggregate(
                               {"r"}, {Agg(AggKind::kSum, "r", "sum")}),
                           &result)
            .MoveValue();
    EXPECT_GT(reg.GetCounter("agg.runs_folded")->value(), before);
    EXPECT_NE(text.find("folded"), std::string::npos) << text;
    EXPECT_NE(text.find("compressed domain"), std::string::npos) << text;
  }
  {
    auto t = StringTable(4000, /*with_nulls=*/true, 59);
    const uint64_t before =
        reg.GetCounter("agg.groups_late_materialized")->value();
    QueryResult result;
    std::string text =
        ExplainAnalyzePlan(Plan::Scan(t).Aggregate(
                               {"s"}, {Agg(AggKind::kSum, "v", "sum")}),
                           &result)
            .MoveValue();
    EXPECT_GT(reg.GetCounter("agg.groups_late_materialized")->value(),
              before);
    EXPECT_NE(text.find("dictionary codes"), std::string::npos) << text;
  }
  {
    auto t = RleTable(20000, 61);
    const uint64_t before = reg.GetCounter("agg.metadata_answers")->value();
    QueryResult result;
    std::string text =
        ExplainAnalyzePlan(
            Plan::Scan(t).Aggregate({}, {Agg(AggKind::kCountStar, "", "n"),
                                         Agg(AggKind::kMax, "r", "hi")}),
            &result)
            .MoveValue();
    EXPECT_GT(reg.GetCounter("agg.metadata_answers")->value(), before);
    EXPECT_NE(text.find("answered from metadata"), std::string::npos)
        << text;
    EXPECT_EQ(result.num_rows(), 1u);
  }
  observe::SetStatsEnabled(false);
}

}  // namespace
}  // namespace tde
