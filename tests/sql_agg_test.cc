// Randomized SQL differential smoke test for compressed-domain
// aggregation: a seeded generator produces ~200 GROUP BY / HAVING /
// aggregate queries over a mixed-encoding table (dictionary strings,
// run-length integers, plain integers, NULLs), and every query is answered
// three ways — the engine with all rewrites on, the engine with every
// compressed-domain path off, and a naive row-at-a-time reference
// evaluator built right here — which must all agree cell for cell.

#include <algorithm>
#include <cstdio>
#include <map>
#include <optional>
#include <random>
#include <set>

#include <gtest/gtest.h>

#include "src/core/engine.h"
#include "src/plan/executor.h"
#include "src/plan/strategic.h"
#include "src/sql/parser.h"
#include "src/workload/tpch_queries.h"

namespace tde {
namespace {

StrategicOptions DecodeThenAggregate() {
  StrategicOptions off;
  off.enable_invisible_join = false;
  off.enable_rank_join = false;
  off.enable_dict_predicates = false;
  off.enable_run_filters = false;
  off.enable_dict_grouping = false;
  off.enable_run_aggregation = false;
  off.enable_metadata_aggregates = false;
  return off;
}

/// Rows rendered the way QueryResult renders them, sorted — queries whose
/// output order the plan does not pin compare as multisets.
std::vector<std::string> SortedRows(const QueryResult& r) {
  std::vector<std::string> rows;
  for (uint64_t i = 0; i < r.num_rows(); ++i) {
    std::string row;
    for (size_t c = 0; c < r.schema().num_fields(); ++c) {
      if (c > 0) row += "|";
      row += r.ValueString(i, c);
    }
    rows.push_back(std::move(row));
  }
  std::sort(rows.begin(), rows.end());
  return rows;
}

std::string RenderReal(double d) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%g", d);
  return buf;
}

// ---------------------------------------------------------------------------
// The generated dataset: kept in plain vectors (the reference ground
// truth) and round-tripped through CSV import (the engine's view, with
// dictionary / run-length / frame-of-reference encodings picked by the
// importer). Empty CSV cells become NULLs.
// ---------------------------------------------------------------------------

struct Dataset {
  std::vector<std::optional<std::string>> s;  // low-cardinality dictionary
  std::vector<std::optional<int64_t>> r;      // sorted, run-length encodes
  std::vector<std::optional<int64_t>> v;      // plain payload, some NULLs
  std::vector<std::optional<int64_t>> w;      // narrow range
  size_t rows = 0;

  std::string ToCsv() const {
    std::string csv = "s,r,v,w\n";
    for (size_t i = 0; i < rows; ++i) {
      csv += s[i] ? *s[i] : "";
      csv += ",";
      csv += r[i] ? std::to_string(*r[i]) : "";
      csv += ",";
      csv += v[i] ? std::to_string(*v[i]) : "";
      csv += ",";
      csv += w[i] ? std::to_string(*w[i]) : "";
      csv += "\n";
    }
    return csv;
  }
};

Dataset MakeDataset(size_t rows, uint64_t seed) {
  static const std::vector<std::string> kVocab = {
      "apple", "banana", "cherry", "date", "elderberry", "fig", "grape"};
  Dataset d;
  d.rows = rows;
  std::mt19937_64 rng(seed);
  for (size_t i = 0; i < rows; ++i) {
    if (rng() % 8 == 0) {
      d.s.push_back(std::nullopt);
    } else {
      d.s.push_back(kVocab[rng() % kVocab.size()]);
    }
    d.r.push_back(static_cast<int64_t>(i / 37));
    if (rng() % 11 == 0) {
      d.v.push_back(std::nullopt);
    } else {
      d.v.push_back(static_cast<int64_t>(rng() % 1000));
    }
    d.w.push_back(static_cast<int64_t>(rng() % 90));
  }
  return d;
}

// ---------------------------------------------------------------------------
// The naive reference evaluator: row-at-a-time over the vectors, no
// encodings, no rewrites — the semantics the engine must reproduce.
// ---------------------------------------------------------------------------

enum class RefAgg { kCountStar, kCount, kSum, kMin, kMax, kAvg, kCountD,
                    kMedian };

struct AggCol {
  RefAgg kind;
  std::string input;  // "", "s", "r", "v", "w"
  std::string alias;
};

enum class WhereKind { kNone, kVGt, kRBetween, kSEq, kSNotNull };
enum class HavingKind { kNone, kFirstAggGe, kImpossible };

struct GenQuery {
  std::vector<std::string> keys;  // subset of {s, r}
  std::vector<AggCol> aggs;
  WhereKind where = WhereKind::kNone;
  int64_t where_a = 0, where_b = 0;
  HavingKind having = HavingKind::kNone;
  int64_t having_k = 0;

  std::string ToSql() const {
    std::string sql = "SELECT ";
    for (const auto& k : keys) sql += k + ", ";
    for (size_t i = 0; i < aggs.size(); ++i) {
      if (i > 0) sql += ", ";
      static const char* kNames[] = {"COUNT", "COUNT", "SUM", "MIN",
                                     "MAX",   "AVG",   "COUNTD", "MEDIAN"};
      const auto& a = aggs[i];
      sql += kNames[static_cast<int>(a.kind)];
      sql += "(";
      sql += a.kind == RefAgg::kCountStar ? "*" : a.input;
      sql += ") AS " + a.alias;
    }
    sql += " FROM t";
    switch (where) {
      case WhereKind::kNone:
        break;
      case WhereKind::kVGt:
        sql += " WHERE v > " + std::to_string(where_a);
        break;
      case WhereKind::kRBetween:
        sql += " WHERE r BETWEEN " + std::to_string(where_a) + " AND " +
               std::to_string(where_b);
        break;
      case WhereKind::kSEq:
        sql += " WHERE s = 'cherry'";
        break;
      case WhereKind::kSNotNull:
        sql += " WHERE s IS NOT NULL";
        break;
    }
    if (!keys.empty()) {
      sql += " GROUP BY " + keys[0];
      for (size_t i = 1; i < keys.size(); ++i) sql += ", " + keys[i];
    }
    if (having == HavingKind::kFirstAggGe) {
      sql += " HAVING " + aggs[0].alias + " >= " + std::to_string(having_k);
    } else if (having == HavingKind::kImpossible) {
      sql += " HAVING " + aggs[0].alias + " > 1000000000";
    }
    return sql;
  }
};

bool RowPasses(const Dataset& d, const GenQuery& q, size_t i) {
  switch (q.where) {
    case WhereKind::kNone:
      return true;
    case WhereKind::kVGt:
      return d.v[i] && *d.v[i] > q.where_a;
    case WhereKind::kRBetween:
      return d.r[i] && *d.r[i] >= q.where_a && *d.r[i] <= q.where_b;
    case WhereKind::kSEq:
      return d.s[i] && *d.s[i] == "cherry";
    case WhereKind::kSNotNull:
      return d.s[i].has_value();
  }
  return true;
}

/// One reference cell: NULL, integer, real, or string.
struct RefVal {
  enum Kind { kNull, kInt, kReal, kStr } kind = kNull;
  int64_t i = 0;
  double d = 0;
  std::string s;

  std::string Render() const {
    switch (kind) {
      case kNull: return "NULL";
      case kInt: return std::to_string(i);
      case kReal: return RenderReal(d);
      case kStr: return s;
    }
    return "NULL";
  }
};

RefVal EvalAgg(const Dataset& d, const AggCol& a,
               const std::vector<size_t>& rows) {
  RefVal out;
  if (a.kind == RefAgg::kCountStar) {
    out.kind = RefVal::kInt;
    out.i = static_cast<int64_t>(rows.size());
    return out;
  }
  if (a.input == "s") {
    std::vector<std::string> vals;
    for (size_t i : rows) {
      if (d.s[i]) vals.push_back(*d.s[i]);
    }
    switch (a.kind) {
      case RefAgg::kCount:
        return {RefVal::kInt, static_cast<int64_t>(vals.size()), 0, ""};
      case RefAgg::kCountD: {
        std::set<std::string> u(vals.begin(), vals.end());
        return {RefVal::kInt, static_cast<int64_t>(u.size()), 0, ""};
      }
      case RefAgg::kMin:
      case RefAgg::kMax: {
        if (vals.empty()) return out;
        auto it = a.kind == RefAgg::kMin
                      ? std::min_element(vals.begin(), vals.end())
                      : std::max_element(vals.begin(), vals.end());
        return {RefVal::kStr, 0, 0, *it};
      }
      case RefAgg::kMedian: {
        if (vals.empty()) return out;
        std::sort(vals.begin(), vals.end());
        return {RefVal::kStr, 0, 0, vals[(vals.size() - 1) / 2]};
      }
      default:
        ADD_FAILURE() << "numeric aggregate over string column";
        return out;
    }
  }
  const auto& col = a.input == "r" ? d.r : a.input == "v" ? d.v : d.w;
  std::vector<int64_t> vals;
  for (size_t i : rows) {
    if (col[i]) vals.push_back(*col[i]);
  }
  switch (a.kind) {
    case RefAgg::kCount:
      return {RefVal::kInt, static_cast<int64_t>(vals.size()), 0, ""};
    case RefAgg::kCountD: {
      std::set<int64_t> u(vals.begin(), vals.end());
      return {RefVal::kInt, static_cast<int64_t>(u.size()), 0, ""};
    }
    case RefAgg::kSum: {
      if (vals.empty()) return out;
      int64_t sum = 0;
      for (int64_t x : vals) sum += x;
      return {RefVal::kInt, sum, 0, ""};
    }
    case RefAgg::kMin:
    case RefAgg::kMax: {
      if (vals.empty()) return out;
      auto it = a.kind == RefAgg::kMin
                    ? std::min_element(vals.begin(), vals.end())
                    : std::max_element(vals.begin(), vals.end());
      return {RefVal::kInt, *it, 0, ""};
    }
    case RefAgg::kAvg: {
      if (vals.empty()) return out;
      double sum = 0;
      for (int64_t x : vals) sum += static_cast<double>(x);
      return {RefVal::kReal, 0, sum / static_cast<double>(vals.size()), ""};
    }
    case RefAgg::kMedian: {
      if (vals.empty()) return out;
      std::sort(vals.begin(), vals.end());
      return {RefVal::kInt, vals[(vals.size() - 1) / 2], 0, ""};
    }
    default:
      return out;
  }
}

std::vector<std::string> ReferenceRows(const Dataset& d, const GenQuery& q) {
  // Group the passing rows by the rendered key tuple.
  std::map<std::vector<std::string>, std::vector<size_t>> groups;
  for (size_t i = 0; i < d.rows; ++i) {
    if (!RowPasses(d, q, i)) continue;
    std::vector<std::string> key;
    for (const auto& k : q.keys) {
      if (k == "s") {
        key.push_back(d.s[i] ? *d.s[i] : "NULL");
      } else {
        key.push_back(d.r[i] ? std::to_string(*d.r[i]) : "NULL");
      }
    }
    groups[key].push_back(i);
  }
  // Whole-table aggregation always yields one row, even over no input.
  if (q.keys.empty() && groups.empty()) groups[{}] = {};
  std::vector<std::string> rows;
  for (const auto& [key, members] : groups) {
    std::vector<RefVal> cells;
    for (const auto& a : q.aggs) cells.push_back(EvalAgg(d, a, members));
    if (q.having != HavingKind::kNone) {
      const RefVal& h = cells[0];
      if (h.kind != RefVal::kInt) continue;  // NULL comparisons are false
      if (q.having == HavingKind::kFirstAggGe && h.i < q.having_k) continue;
      if (q.having == HavingKind::kImpossible && h.i <= 1000000000) continue;
    }
    std::string row;
    for (const auto& k : key) {
      if (!row.empty()) row += "|";
      row += k;
    }
    for (const auto& c : cells) {
      if (!row.empty()) row += "|";
      row += c.Render();
    }
    rows.push_back(std::move(row));
  }
  std::sort(rows.begin(), rows.end());
  return rows;
}

// ---------------------------------------------------------------------------
// The generator.
// ---------------------------------------------------------------------------

GenQuery GenerateQuery(std::mt19937_64& rng) {
  GenQuery q;
  switch (rng() % 4) {
    case 0: break;
    case 1: q.keys = {"s"}; break;
    case 2: q.keys = {"r"}; break;
    case 3: q.keys = {"s", "r"}; break;
  }
  const size_t naggs = 1 + rng() % 3;
  static const RefAgg kAll[] = {RefAgg::kCountStar, RefAgg::kCount,
                                RefAgg::kSum,       RefAgg::kMin,
                                RefAgg::kMax,       RefAgg::kAvg,
                                RefAgg::kCountD,    RefAgg::kMedian};
  static const char* kIntCols[] = {"r", "v", "w"};
  static const char* kAnyCols[] = {"s", "r", "v", "w"};
  for (size_t i = 0; i < naggs; ++i) {
    AggCol a;
    a.kind = kAll[rng() % 8];
    a.alias = "a" + std::to_string(i);
    if (a.kind == RefAgg::kCountStar) {
      a.input = "";
    } else if (a.kind == RefAgg::kSum || a.kind == RefAgg::kAvg) {
      a.input = kIntCols[rng() % 3];
    } else {
      a.input = kAnyCols[rng() % 4];
    }
    q.aggs.push_back(std::move(a));
  }
  switch (rng() % 5) {
    case 0: q.where = WhereKind::kNone; break;
    case 1:
      q.where = WhereKind::kVGt;
      q.where_a = static_cast<int64_t>(rng() % 900);
      break;
    case 2:
      q.where = WhereKind::kRBetween;
      q.where_a = static_cast<int64_t>(rng() % 60);
      q.where_b = q.where_a + static_cast<int64_t>(rng() % 30);
      break;
    case 3: q.where = WhereKind::kSEq; break;
    case 4: q.where = WhereKind::kSNotNull; break;
  }
  // HAVING compares the first aggregate when it is integer-valued.
  const RefAgg k0 = q.aggs[0].kind;
  const bool int_agg = k0 == RefAgg::kCountStar || k0 == RefAgg::kCount ||
                       k0 == RefAgg::kCountD ||
                       (k0 == RefAgg::kSum && true);
  if (!q.keys.empty() && int_agg) {
    switch (rng() % 4) {
      case 0:
        q.having = HavingKind::kFirstAggGe;
        q.having_k = static_cast<int64_t>(rng() % 50);
        break;
      case 1:
        q.having = HavingKind::kImpossible;
        break;
      default:
        break;
    }
  }
  return q;
}

// ---------------------------------------------------------------------------
// Tests.
// ---------------------------------------------------------------------------

class SqlAggTest : public ::testing::Test {
 protected:
  void SetUp() override {
    data_ = MakeDataset(3000, 0xC0FFEE);
    auto t = engine_.ImportTextBuffer(data_.ToCsv(), "t");
    ASSERT_TRUE(t.ok()) << t.status().message();
  }

  Dataset data_;
  Engine engine_;
};

TEST_F(SqlAggTest, RandomizedDifferentialSmoke) {
  std::mt19937_64 rng(987654321);  // deterministic: same 200 queries always
  const StrategicOptions control = DecodeThenAggregate();
  int group_by = 0, having = 0;
  for (int qi = 0; qi < 200; ++qi) {
    GenQuery q = GenerateQuery(rng);
    group_by += q.keys.empty() ? 0 : 1;
    having += q.having == HavingKind::kNone ? 0 : 1;
    const std::string sql = q.ToSql();
    SCOPED_TRACE("query " + std::to_string(qi) + ": " + sql);

    std::vector<std::string> expected = ReferenceRows(data_, q);

    auto full = engine_.ExecuteSql(sql);
    ASSERT_TRUE(full.ok()) << full.status().message();
    EXPECT_EQ(SortedRows(full.value()), expected);

    auto parsed = sql::ParseQuery(sql, *engine_.database());
    ASSERT_TRUE(parsed.ok()) << parsed.status().message();
    auto off = engine_.Execute(parsed.value().plan, control);
    ASSERT_TRUE(off.ok()) << off.status().message();
    EXPECT_EQ(SortedRows(off.value()), expected);
  }
  // The generator must actually exercise the interesting shapes.
  EXPECT_GT(group_by, 100);
  EXPECT_GT(having, 20);
}

TEST_F(SqlAggTest, GroupByNullableDictionaryColumn) {
  const std::string sql =
      "SELECT s, COUNT(*) AS n, COUNT(v) AS c, SUM(v) AS total "
      "FROM t GROUP BY s";
  auto full = engine_.ExecuteSql(sql);
  ASSERT_TRUE(full.ok()) << full.status().message();
  // 7 vocabulary entries plus the NULL group.
  EXPECT_EQ(full.value().num_rows(), 8u);
  bool saw_null_group = false;
  for (uint64_t i = 0; i < full.value().num_rows(); ++i) {
    if (full.value().ValueString(i, 0) == "NULL") saw_null_group = true;
  }
  EXPECT_TRUE(saw_null_group);
  auto parsed = sql::ParseQuery(sql, *engine_.database());
  ASSERT_TRUE(parsed.ok());
  auto off = engine_.Execute(parsed.value().plan, DecodeThenAggregate());
  ASSERT_TRUE(off.ok());
  EXPECT_EQ(SortedRows(full.value()), SortedRows(off.value()));
}

TEST_F(SqlAggTest, HavingEliminatesEveryGroup) {
  auto r = engine_.ExecuteSql(
      "SELECT s, COUNT(*) AS n FROM t GROUP BY s HAVING n > 1000000");
  ASSERT_TRUE(r.ok()) << r.status().message();
  EXPECT_EQ(r.value().num_rows(), 0u);
}

TEST_F(SqlAggTest, GroupByOverEmptyInput) {
  // The filter admits no row (v is never negative; NULL fails too), so
  // the aggregation sees an empty input: zero groups.
  auto r = engine_.ExecuteSql(
      "SELECT s, COUNT(*) AS n, SUM(v) AS total FROM t "
      "WHERE v < -5 GROUP BY s");
  ASSERT_TRUE(r.ok()) << r.status().message();
  EXPECT_EQ(r.value().num_rows(), 0u);
  // Whole-table over the same empty input still yields its one row.
  auto w = engine_.ExecuteSql(
      "SELECT COUNT(*) AS n, SUM(v) AS total FROM t WHERE v < -5");
  ASSERT_TRUE(w.ok()) << w.status().message();
  ASSERT_EQ(w.value().num_rows(), 1u);
  EXPECT_EQ(w.value().ValueString(0, 0), "0");
  EXPECT_EQ(w.value().ValueString(0, 1), "NULL");
}

TEST(SqlAggTpch, RollupQueriesMatchWithRewritesOff) {
  Engine engine;
  ASSERT_TRUE(LoadTpchTables(&engine, 0.002).ok());
  const StrategicOptions control = DecodeThenAggregate();
  for (const auto& q : TpchQueries()) {
    SCOPED_TRACE(q.id);
    auto parsed = sql::ParseQuery(q.sql, *engine.database());
    ASSERT_TRUE(parsed.ok()) << parsed.status().message();
    auto on = engine.Execute(parsed.value().plan);
    ASSERT_TRUE(on.ok()) << on.status().message();
    auto off = engine.Execute(parsed.value().plan, control);
    ASSERT_TRUE(off.ok()) << off.status().message();
    EXPECT_EQ(SortedRows(on.value()), SortedRows(off.value()));
    EXPECT_GT(on.value().num_rows(), 0u);
  }
}

}  // namespace
}  // namespace tde
