#include "src/encoding/dynamic_encoder.h"

#include <gtest/gtest.h>

namespace tde {
namespace {

std::vector<Lane> Roundtrip(const EncodedColumn& col) {
  std::vector<Lane> out(col.stream->size());
  EXPECT_TRUE(col.stream->Get(0, out.size(), out.data()).ok());
  return out;
}

TEST(DynamicEncoder, EncodesStableColumnWithoutChanges) {
  DynamicEncoder enc(DynamicEncoderOptions{});
  std::vector<Lane> v(8 * kBlockSize);
  for (size_t i = 0; i < v.size(); ++i) v[i] = static_cast<Lane>(i % 50);
  for (size_t i = 0; i < v.size(); i += kBlockSize) {
    ASSERT_TRUE(enc.Append(v.data() + i, kBlockSize).ok());
  }
  auto r = enc.Finalize();
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r.value().encoding_changes, 0);
  EXPECT_EQ(Roundtrip(r.value()), v);
}

TEST(DynamicEncoder, ReencodesWhenValueEscapesRange) {
  DynamicEncoder enc(DynamicEncoderOptions{});
  // First: a near-affine ramp -> affine; then a jump forces re-encode.
  std::vector<Lane> ramp(2 * kBlockSize);
  for (size_t i = 0; i < ramp.size(); ++i) ramp[i] = static_cast<Lane>(i);
  ASSERT_TRUE(enc.Append(ramp.data(), kBlockSize).ok());
  ASSERT_TRUE(enc.Append(ramp.data() + kBlockSize, kBlockSize).ok());
  EXPECT_EQ(enc.current_encoding(), EncodingType::kAffine);
  std::vector<Lane> jump(kBlockSize, 1'000'000);
  ASSERT_TRUE(enc.Append(jump.data(), jump.size()).ok());
  EXPECT_GE(enc.encoding_changes(), 1);
  auto r = enc.Finalize();
  ASSERT_TRUE(r.ok());
  std::vector<Lane> expect = ramp;
  expect.insert(expect.end(), jump.begin(), jump.end());
  EXPECT_EQ(Roundtrip(r.value()), expect);
}

TEST(DynamicEncoder, StabilizesQuickly) {
  // A drifting-but-bounded column: after the first adjustments, no more
  // re-encodes (the paper saw 2 changes across all of SF-1 lineitem).
  DynamicEncoder enc(DynamicEncoderOptions{});
  uint64_t x = 42;
  for (int block = 0; block < 64; ++block) {
    std::vector<Lane> v(kBlockSize);
    for (auto& o : v) {
      x ^= x << 13;
      x ^= x >> 7;
      x ^= x << 17;
      o = static_cast<Lane>(x % 10000);
    }
    ASSERT_TRUE(enc.Append(v.data(), v.size()).ok());
  }
  EXPECT_LE(enc.encoding_changes(), 3);
}

TEST(DynamicEncoder, ConvertsToOptimalAtFinalize) {
  DynamicEncoderOptions opts;
  opts.convert_to_optimal = true;
  DynamicEncoder enc(opts);
  // Starts wide (needs 20 bits in block 1), then... stays there. The
  // *final* optimal encoding for a 2-value domain is dictionary.
  std::vector<Lane> v(4 * kBlockSize);
  for (size_t i = 0; i < v.size(); ++i) v[i] = (i % 2) ? 0 : (1 << 20);
  ASSERT_TRUE(enc.Append(v.data(), v.size()).ok());
  auto r = enc.Finalize();
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().stream->type(), EncodingType::kDictionary);
  EXPECT_EQ(Roundtrip(r.value()), v);
}

TEST(DynamicEncoder, EncodingOffProducesUncompressed) {
  DynamicEncoderOptions opts;
  opts.enable_encodings = false;
  DynamicEncoder enc(opts);
  std::vector<Lane> v(kBlockSize, 7);
  ASSERT_TRUE(enc.Append(v.data(), v.size()).ok());
  auto r = enc.Finalize();
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().stream->type(), EncodingType::kUncompressed);
  EXPECT_EQ(r.value().encoding_changes, 0);
}

TEST(DynamicEncoder, AllowedMaskRestrictsChoice) {
  DynamicEncoderOptions opts;
  opts.allowed = kAllowRandomAccess;
  DynamicEncoder enc(opts);
  std::vector<Lane> v;
  for (int i = 0; i < 20; ++i) v.insert(v.end(), 3000, i);
  for (size_t i = 0; i < v.size(); i += kBlockSize) {
    const size_t take = std::min<size_t>(kBlockSize, v.size() - i);
    ASSERT_TRUE(enc.Append(v.data() + i, take).ok());
  }
  auto r = enc.Finalize();
  ASSERT_TRUE(r.ok());
  EXPECT_NE(r.value().stream->type(), EncodingType::kRunLength);
  EXPECT_EQ(Roundtrip(r.value()), v);
}

TEST(DynamicEncoder, EmptyColumnFinalizes) {
  DynamicEncoder enc(DynamicEncoderOptions{});
  auto r = enc.Finalize();
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().stream->size(), 0u);
}

TEST(DynamicEncoder, RewriteIoStaysBelowUnencodedWrite) {
  // Sect. 3.2: rewrites still performed less disk I/O than writing the
  // unencoded column.
  DynamicEncoder enc(DynamicEncoderOptions{});
  std::vector<Lane> v(64 * kBlockSize);
  for (size_t i = 0; i < v.size(); ++i) {
    v[i] = static_cast<Lane>(i % 200);  // narrow domain
  }
  for (size_t i = 0; i < v.size(); i += kBlockSize) {
    ASSERT_TRUE(enc.Append(v.data() + i, kBlockSize).ok());
  }
  auto r = enc.Finalize();
  ASSERT_TRUE(r.ok());
  EXPECT_LT(r.value().stream->PhysicalSize(), v.size() * 8);
}

TEST(DynamicEncoder, NullsEncodeAndRoundTrip) {
  DynamicEncoder enc(DynamicEncoderOptions{});
  std::vector<Lane> v(kBlockSize, 5);
  v[10] = kNullSentinel;
  v[500] = kNullSentinel;
  ASSERT_TRUE(enc.Append(v.data(), v.size()).ok());
  auto r = enc.Finalize();
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(Roundtrip(r.value()), v);
  EXPECT_EQ(r.value().stats.null_count(), 2u);
}

}  // namespace
}  // namespace tde
