#include <bit>
#include <map>

#include <gtest/gtest.h>

#include "src/exec/expression.h"
#include "src/exec/flow_table.h"
#include "src/plan/executor.h"
#include "src/plan/strategic.h"
#include "tests/test_util.h"

namespace tde {
namespace {

using testutil::VectorSource;
using namespace tde::expr;  // NOLINT

bool LiteralEquals(const ExprPtr& e, TypeId type, Lane value) {
  TypeId t;
  Lane v;
  return e->AsLiteral(&t, &v) && t == type && v == value;
}

TEST(Simplify, FoldsConstantArithmetic) {
  const auto e = Simplify(Add(Int(2), Mul(Int(3), Int(4))));
  EXPECT_TRUE(LiteralEquals(e, TypeId::kInteger, 14));
}

TEST(Simplify, FoldsConstantComparison) {
  EXPECT_TRUE(LiteralEquals(Simplify(Lt(Int(1), Int(2))), TypeId::kBool, 1));
  EXPECT_TRUE(LiteralEquals(Simplify(Eq(Int(1), Int(2))), TypeId::kBool, 0));
}

TEST(Simplify, FoldsConstantStringComparison) {
  EXPECT_TRUE(
      LiteralEquals(Simplify(Eq(Str("a"), Str("a"))), TypeId::kBool, 1));
}

TEST(Simplify, FoldsConstantDateFunctions) {
  const auto e = Simplify(DateF(DateFunc::kYear, Date(1999, 12, 31)));
  EXPECT_TRUE(LiteralEquals(e, TypeId::kInteger, 1999));
}

TEST(Simplify, FoldsRealArithmetic) {
  const auto e = Simplify(Mul(Real(1.5), Real(2.0)));
  TypeId t;
  Lane v;
  ASSERT_TRUE(e->AsLiteral(&t, &v));
  EXPECT_EQ(t, TypeId::kReal);
  EXPECT_DOUBLE_EQ(std::bit_cast<double>(static_cast<uint64_t>(v)), 3.0);
}

TEST(Simplify, AndOrIdentities) {
  const auto x = Gt(Col("x"), Int(5));
  EXPECT_EQ(Simplify(And(x, Bool(true))).get(), x.get());
  EXPECT_TRUE(LiteralEquals(Simplify(And(x, Bool(false))), TypeId::kBool, 0));
  EXPECT_EQ(Simplify(Or(Bool(false), x)).get(), x.get());
  EXPECT_TRUE(LiteralEquals(Simplify(Or(x, Bool(true))), TypeId::kBool, 1));
}

TEST(Simplify, DoubleNegationCancels) {
  const auto x = Gt(Col("x"), Int(5));
  EXPECT_EQ(Simplify(Not(Not(x))).get(), x.get());
}

TEST(Simplify, FoldsInsideNonConstantTrees) {
  // x > (2 + 3) -> x > 5
  const auto e = Simplify(Gt(Col("x"), Add(Int(2), Int(3))));
  EXPECT_EQ(e->ToString(), "(x > 5)");
}

TEST(Simplify, LeavesNonConstantAlone) {
  const auto e = Gt(Col("x"), Col("y"));
  EXPECT_EQ(Simplify(e).get(), e.get());
}

TEST(Simplify, NullPropagationFolds) {
  // NULL + 1 folds to NULL.
  const auto e = Simplify(Add(Null(TypeId::kInteger), Int(1)));
  EXPECT_TRUE(LiteralEquals(e, TypeId::kInteger, kNullSentinel));
}

TEST(Simplify, FoldsConstantLikeAndCase) {
  // LIKE over a literal folds to a boolean literal.
  EXPECT_TRUE(LiteralEquals(Simplify(Like(Str("index.html"), "%.html")),
                            TypeId::kBool, 1));
  EXPECT_TRUE(LiteralEquals(Simplify(Like(Str("logo.png"), "%.html")),
                            TypeId::kBool, 0));
  // CASE with constant branches folds too.
  const auto c = Simplify(Case({{Lt(Int(1), Int(2)), Int(10)}}, Int(20)));
  EXPECT_TRUE(LiteralEquals(c, TypeId::kInteger, 10));
  // Non-constant CASE folds its constant pieces only.
  const auto partial =
      Simplify(Case({{Gt(Col("x"), Add(Int(1), Int(1))), Int(10)}}, Int(20)));
  EXPECT_EQ(partial->ToString(), "CASE WHEN (x > 2) THEN 10 ELSE 20 END");
}

TEST(RenameColumns, RewritesReferences) {
  const auto e = And(Gt(Col("a"), Int(1)), Eq(Col("b"), Col("a")));
  const auto r = RenameColumns(e, {{"a", "x"}});
  EXPECT_EQ(r->ToString(), "((x > 1) AND (b = x))");
}

TEST(RenameColumns, NoMatchSharesTree) {
  const auto e = Gt(Col("a"), Int(1));
  EXPECT_EQ(RenameColumns(e, {{"z", "y"}}).get(), e.get());
}

TEST(StrategicSimplify, RemovesWhereTrue) {
  auto t = FlowTable::Build(VectorSource::Ints({{"x", {1, 2, 3}}}))
               .MoveValue();
  auto plan = Plan::Scan(t).Filter(Or(Gt(Col("x"), Int(0)), Bool(true)));
  auto optimized = StrategicOptimize(plan.root()).MoveValue();
  EXPECT_EQ(optimized->kind, PlanNodeKind::kScan);
}

TEST(StrategicSimplify, SimplifiesPredicatesInPlace) {
  auto t = FlowTable::Build(VectorSource::Ints({{"x", {1, 2, 3}}}))
               .MoveValue();
  auto plan = Plan::Scan(t).Filter(Gt(Col("x"), Add(Int(1), Int(1))));
  auto optimized = StrategicOptimize(plan.root()).MoveValue();
  ASSERT_EQ(optimized->kind, PlanNodeKind::kFilter);
  EXPECT_EQ(optimized->predicate->ToString(), "(x > 2)");
}

TEST(StrategicPushdown, FilterCommutesWithProjection) {
  auto t = FlowTable::Build(
               VectorSource::Ints({{"x", {1, 5, 9}}, {"y", {2, 4, 6}}}))
               .MoveValue();
  auto plan = Plan::Scan(t)
                  .Project({{Col("x"), "renamed"},
                            {Add(Col("y"), Int(1)), "computed"}})
                  .Filter(Gt(Col("renamed"), Int(3)));
  StrategicOptions opts;
  opts.enable_invisible_join = false;
  auto optimized = StrategicOptimize(plan.root(), opts).MoveValue();
  // Filter moved below the projection, renamed back to the scan column.
  ASSERT_EQ(optimized->kind, PlanNodeKind::kProject);
  ASSERT_EQ(optimized->children[0]->kind, PlanNodeKind::kFilter);
  EXPECT_EQ(optimized->children[0]->predicate->ToString(), "(x > 3)");
  // And the results are unchanged.
  auto result = ExecutePlanNode(optimized).MoveValue();
  EXPECT_EQ(result.num_rows(), 2u);
  EXPECT_EQ(result.Value(0, 0), 5);
  EXPECT_EQ(result.Value(0, 1), 5);
}

TEST(StrategicPushdown, BlockedByComputedColumns) {
  auto t = FlowTable::Build(
               VectorSource::Ints({{"x", {1, 5, 9}}, {"y", {2, 4, 6}}}))
               .MoveValue();
  auto plan = Plan::Scan(t)
                  .Project({{Add(Col("x"), Int(1)), "computed"}})
                  .Filter(Gt(Col("computed"), Int(3)));
  StrategicOptions opts;
  opts.enable_invisible_join = false;
  auto optimized = StrategicOptimize(plan.root(), opts).MoveValue();
  EXPECT_EQ(optimized->kind, PlanNodeKind::kFilter);
}

TEST(StrategicPushdown, ExposesInvisibleJoinThroughProjection) {
  // Filter above a projection over a dictionary-compressed string column:
  // pushdown + invisible join must chain.
  auto src = VectorSource::Ints({{"id", {0, 1, 2, 3}}});
  src->AddStringColumn("color", {"red", "blue", "red", "green"});
  auto t = FlowTable::Build(std::move(src)).MoveValue();
  auto plan = Plan::Scan(t)
                  .Project({{Col("color"), "c"}, {Col("id"), "id"}})
                  .Filter(Eq(Col("c"), Str("red")));
  auto optimized = StrategicOptimize(plan.root()).MoveValue();
  ASSERT_EQ(optimized->kind, PlanNodeKind::kProject);
  EXPECT_EQ(optimized->children[0]->kind, PlanNodeKind::kInvisibleJoin);
  auto result = ExecutePlanNode(optimized).MoveValue();
  EXPECT_EQ(result.num_rows(), 2u);
}

TEST(StrategicComputePushdown, StringFunctionMovesToDictionarySide) {
  // The Sect. 4.1.2 URL scenario, through the optimizer: EXTENSION(url)
  // over a dictionary-compressed column becomes an invisible join with the
  // computation on the inner side.
  auto src = VectorSource::Ints({{"bytes", {}}});
  std::vector<Lane> bytes;
  std::vector<std::string> urls;
  const char* domain[] = {"/a.html", "/b.png", "/c.html", "/d.css"};
  for (int i = 0; i < 4000; ++i) {
    bytes.push_back(i % 100);
    urls.push_back(domain[i % 4]);
  }
  src = VectorSource::Ints({{"bytes", bytes}});
  src->AddStringColumn("url", urls);
  auto t = FlowTable::Build(std::move(src)).MoveValue();

  auto plan = Plan::Scan(t)
                  .Project({{StrF(StrFunc::kExtension, Col("url")), "ext"},
                            {Col("bytes"), "bytes"}})
                  .Aggregate({"ext"}, {{AggKind::kCountStar, "", "n"},
                                       {AggKind::kSum, "bytes", "total"}});
  auto optimized = StrategicOptimize(plan.root()).MoveValue();
  // Project -> InvisibleJoin somewhere beneath the aggregate.
  ASSERT_EQ(optimized->kind, PlanNodeKind::kAggregate);
  ASSERT_EQ(optimized->children[0]->kind, PlanNodeKind::kProject);
  EXPECT_EQ(optimized->children[0]->children[0]->kind,
            PlanNodeKind::kInvisibleJoin);
  EXPECT_EQ(optimized->children[0]->children[0]->inner_projections.size(),
            1u);

  // Same answers as the unrewritten plan.
  StrategicOptions off;
  off.enable_invisible_join = false;
  auto control =
      ExecutePlanNode(StrategicOptimize(plan.root(), off).MoveValue())
          .MoveValue();
  auto rewritten = ExecutePlanNode(optimized).MoveValue();
  ASSERT_EQ(control.num_rows(), rewritten.num_rows());
  std::map<std::string, std::pair<Lane, Lane>> c, x;
  for (uint64_t r = 0; r < control.num_rows(); ++r) {
    c[control.ValueString(r, 0)] = {control.Value(r, 1), control.Value(r, 2)};
    x[rewritten.ValueString(r, 0)] = {rewritten.Value(r, 1),
                                      rewritten.Value(r, 2)};
  }
  EXPECT_EQ(c, x);
}

TEST(StrategicComputePushdown, SkippedForLargeDomains) {
  // Near-unique strings: computing per distinct value buys nothing.
  auto src = VectorSource::Ints({{"id", {}}});
  std::vector<Lane> ids;
  std::vector<std::string> urls;
  for (int i = 0; i < 500; ++i) {
    ids.push_back(i);
    urls.push_back("/file" + std::to_string(i) + ".html");
  }
  src = VectorSource::Ints({{"id", ids}});
  src->AddStringColumn("url", urls);
  auto t = FlowTable::Build(std::move(src)).MoveValue();
  auto plan = Plan::Scan(t).Project(
      {{StrF(StrFunc::kExtension, Col("url")), "ext"}});
  auto optimized = StrategicOptimize(plan.root()).MoveValue();
  ASSERT_EQ(optimized->kind, PlanNodeKind::kProject);
  EXPECT_EQ(optimized->children[0]->kind, PlanNodeKind::kScan);
}

}  // namespace
}  // namespace tde
