#include "src/encoding/manipulate.h"

#include <chrono>

#include <gtest/gtest.h>

#include "src/encoding/dynamic_encoder.h"
#include "src/encoding/streams_internal.h"

namespace tde {
namespace {

std::unique_ptr<EncodedStream> Encode(EncodingType t,
                                      const std::vector<Lane>& v,
                                      bool sign_extend = true) {
  EncodingStats stats;
  stats.Update(v.data(), v.size());
  auto r = EncodedStream::Create(t, 8, sign_extend, stats, 0);
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  auto s = r.MoveValue();
  EXPECT_TRUE(s->Append(v.data(), v.size()).ok());
  EXPECT_TRUE(s->Finalize().ok());
  return s;
}

std::vector<Lane> Decode(const EncodedStream& s) {
  std::vector<Lane> out(s.size());
  EXPECT_TRUE(s.Get(0, out.size(), out.data()).ok());
  return out;
}

TEST(Narrow, ForColumnNarrowsFromEnvelope) {
  std::vector<Lane> v(3000);
  for (size_t i = 0; i < v.size(); ++i) v[i] = 40 + static_cast<Lane>(i % 50);
  auto s = Encode(EncodingType::kFrameOfReference, v);
  auto r = NarrowStreamWidth(s->mutable_buffer(), /*signed_values=*/true);
  ASSERT_TRUE(r.ok());
  // range 49 -> 6 bits; envelope [40, 40 + 63] fits int8.
  EXPECT_EQ(r.value(), 1);
  // Values are untouched.
  auto reopened = EncodedStream::Open(s->buffer()).MoveValue();
  EXPECT_EQ(Decode(*reopened), v);
  EXPECT_EQ(reopened->width(), 1);
}

TEST(Narrow, ForUsesEnvelopeNotActuals) {
  // Frame 0 with 12 packing bits: envelope [0, 4095] -> 2 bytes, even if
  // the actual values would fit 1 (the O(1) edit cannot know that).
  std::vector<Lane> v = {0, 100};
  EncodingStats stats;
  stats.Update(v.data(), v.size());
  auto s = EncodedStream::Create(EncodingType::kFrameOfReference, 8, true,
                                 stats, /*headroom=*/5)
               .MoveValue();
  ASSERT_TRUE(s->Append(v.data(), v.size()).ok());
  ASSERT_TRUE(s->Finalize().ok());
  ASSERT_EQ(s->bits(), 12);
  auto r = NarrowStreamWidth(s->mutable_buffer(), true);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 2);
}

TEST(Narrow, AffineNarrowsFromEndpoints) {
  std::vector<Lane> v(500);
  for (size_t i = 0; i < v.size(); ++i) v[i] = static_cast<Lane>(i);
  auto s = Encode(EncodingType::kAffine, v);
  auto r = NarrowStreamWidth(s->mutable_buffer(), true);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 2);  // [0, 499]
  EXPECT_EQ(Decode(*EncodedStream::Open(s->buffer()).MoveValue()), v);
}

TEST(Narrow, DictRewritesEntriesInPlace) {
  std::vector<Lane> v(5000);
  for (size_t i = 0; i < v.size(); ++i) v[i] = static_cast<Lane>(i % 17) - 8;
  auto s = Encode(EncodingType::kDictionary, v);
  const uint64_t data_offset = ConstHeaderView(s->buffer()).data_offset();
  const size_t physical = s->buffer().size();
  auto r = NarrowStreamWidth(s->mutable_buffer(), true);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 1);
  // Offset (and the packing behind it) untouched — Sect. 3.4.1.
  EXPECT_EQ(ConstHeaderView(s->buffer()).data_offset(), data_offset);
  EXPECT_EQ(s->buffer().size(), physical);
  EXPECT_EQ(Decode(*EncodedStream::Open(s->buffer()).MoveValue()), v);
}

TEST(Narrow, DeltaAndRleAreNotAmenable) {
  std::vector<Lane> sorted(3000);
  for (size_t i = 0; i < sorted.size(); ++i) {
    sorted[i] = static_cast<Lane>(i * 3);
  }
  auto d = Encode(EncodingType::kDelta, sorted);
  auto r1 = NarrowStreamWidth(d->mutable_buffer(), true);
  ASSERT_TRUE(r1.ok());
  EXPECT_EQ(r1.value(), 8);

  std::vector<Lane> runs(3000, 4);
  auto rle = Encode(EncodingType::kRunLength, runs);
  auto r2 = NarrowStreamWidth(rle->mutable_buffer(), true);
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ(r2.value(), 8);
}

TEST(Narrow, CostIndependentOfColumnSize) {
  // O(1)/O(2^bits): narrowing a 2M-row frame-of-reference column must not
  // be meaningfully slower than narrowing a 2K-row one.
  auto make = [](size_t n) {
    std::vector<Lane> v(n);
    for (size_t i = 0; i < n; ++i) v[i] = static_cast<Lane>(i % 100);
    return Encode(EncodingType::kFrameOfReference, v);
  };
  auto small = make(2000);
  auto big = make(2000000);
  const auto t0 = std::chrono::steady_clock::now();
  ASSERT_TRUE(NarrowStreamWidth(small->mutable_buffer(), true).ok());
  const auto t1 = std::chrono::steady_clock::now();
  ASSERT_TRUE(NarrowStreamWidth(big->mutable_buffer(), true).ok());
  const auto t2 = std::chrono::steady_clock::now();
  const auto small_ns = (t1 - t0).count();
  const auto big_ns = (t2 - t1).count();
  // Allow generous noise; the point is it is not ~1000x.
  EXPECT_LT(big_ns, small_ns * 100 + 10000000);
}

TEST(Remap, RewritesEveryDictEntry) {
  std::vector<Lane> v(2000);
  for (size_t i = 0; i < v.size(); ++i) v[i] = static_cast<Lane>(i % 10);
  auto s = Encode(EncodingType::kDictionary, v);
  ASSERT_TRUE(
      RemapDictEntries(s->mutable_buffer(), [](Lane x) { return x * 7; })
          .ok());
  auto reopened = EncodedStream::Open(s->buffer()).MoveValue();
  const auto got = Decode(*reopened);
  for (size_t i = 0; i < v.size(); ++i) ASSERT_EQ(got[i], v[i] * 7);
}

TEST(Remap, RejectsEntriesThatNoLongerFit) {
  std::vector<Lane> v = {0, 1, 2, 3};
  auto s = Encode(EncodingType::kDictionary, v);
  ASSERT_TRUE(NarrowStreamWidth(s->mutable_buffer(), true).ok());
  ASSERT_EQ(ConstHeaderView(s->buffer()).width(), 1);
  const Status st = RemapDictEntries(s->mutable_buffer(),
                                     [](Lane) { return Lane{100000}; });
  EXPECT_EQ(st.code(), StatusCode::kOutOfRange);
}

TEST(Remap, FailsOnNonDictStream) {
  auto s = Encode(EncodingType::kFrameOfReference, {1, 2, 3});
  EXPECT_EQ(
      RemapDictEntries(s->mutable_buffer(), [](Lane x) { return x; }).code(),
      StatusCode::kInvalidArgument);
}

TEST(RleDecompose, SplitsAndRebuilds) {
  std::vector<Lane> v;
  for (int i = 0; i < 20; ++i) v.insert(v.end(), 100 + i, 1000 + i);
  auto s = Encode(EncodingType::kRunLength, v);
  auto parts = DecomposeRle(*s);
  ASSERT_TRUE(parts.ok());
  EXPECT_EQ(parts.value().values.size(), 20u);
  EXPECT_EQ(parts.value().counts[0], 100u);

  // Narrow the value stream (e.g. after a dictionary conversion) and
  // rebuild with the original counts (Sect. 3.4.1).
  for (Lane& x : parts.value().values) x -= 1000;
  auto rebuilt = RebuildRle(parts.value(), 8, true);
  ASSERT_TRUE(rebuilt.ok());
  ASSERT_TRUE(rebuilt.value()->Finalize().ok());
  const auto got = Decode(*rebuilt.value());
  ASSERT_EQ(got.size(), v.size());
  for (size_t i = 0; i < v.size(); ++i) ASSERT_EQ(got[i], v[i] - 1000);
  // Value field narrowed to 1 byte.
  EXPECT_EQ(static_cast<internal::RleStream*>(rebuilt.value().get())
                ->value_width(),
            1);
}

TEST(EncodingToCompression, ProducesSortedDenseTokens) {
  // Scalar domain out of order: entries arrive as 30,10,20.
  std::vector<Lane> v;
  for (int rep = 0; rep < 500; ++rep) {
    v.push_back(30);
    v.push_back(10);
    v.push_back(20);
  }
  auto s = Encode(EncodingType::kDictionary, v);
  auto dc = EncodingToCompression(*s, /*signed_values=*/true);
  ASSERT_TRUE(dc.ok()) << dc.status().ToString();
  EXPECT_EQ(dc.value().dictionary, (std::vector<Lane>{10, 20, 30}));
  const auto tokens = Decode(*dc.value().tokens);
  // Tokens are ranks into the sorted dictionary...
  EXPECT_EQ(tokens[0], 2);
  EXPECT_EQ(tokens[1], 0);
  EXPECT_EQ(tokens[2], 1);
  // ...at minimal width (Sect. 3.4.3).
  EXPECT_EQ(dc.value().tokens->width(), 1);
  // And resolving them through the dictionary restores the values.
  for (size_t i = 0; i < v.size(); ++i) {
    ASSERT_EQ(dc.value().dictionary[static_cast<size_t>(tokens[i])], v[i]);
  }
}

TEST(ForToCompression, EnvelopeBecomesSortedDictionary) {
  // Dates in a narrow window, repeated — FoR-encoded.
  std::vector<Lane> v;
  for (int i = 0; i < 5000; ++i) v.push_back(1000 + (i * 13) % 100);
  auto s = Encode(EncodingType::kFrameOfReference, v);
  auto dc = ForToCompression(*s);
  ASSERT_TRUE(dc.ok()) << dc.status().ToString();
  // The dictionary is the whole envelope [frame, frame + 2^bits - 1] —
  // sorted, but it may contain values not present in the column.
  const auto& dict = dc.value().dictionary;
  ASSERT_EQ(dict.size(), uint64_t{1} << s->bits());
  EXPECT_EQ(dict.front(), 1000);
  EXPECT_TRUE(std::is_sorted(dict.begin(), dict.end()));
  // Tokens resolve back to the original values.
  const auto tokens = Decode(*dc.value().tokens);
  for (size_t i = 0; i < v.size(); ++i) {
    ASSERT_EQ(dict[static_cast<size_t>(tokens[i])], v[i]);
  }
  // Token width narrowed to 1 byte (envelope of 128 values).
  EXPECT_EQ(dc.value().tokens->width(), 1);
}

TEST(ForToCompression, RejectsWideEnvelopes) {
  std::vector<Lane> v = {0, 1 << 20};
  EncodingStats stats;
  stats.Update(v.data(), v.size());
  auto s = EncodedStream::Create(EncodingType::kFrameOfReference, 8, true,
                                 stats, 0)
               .MoveValue();
  ASSERT_TRUE(s->Append(v.data(), v.size()).ok());
  ASSERT_TRUE(s->Finalize().ok());
  EXPECT_EQ(ForToCompression(*s).status().code(),
            StatusCode::kCapacityExceeded);
}

TEST(ForToCompression, RequiresForStream) {
  auto s = Encode(EncodingType::kAffine, {1, 2, 3});
  EXPECT_EQ(ForToCompression(*s).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(EncodingToCompression, RequiresDictStream) {
  auto s = Encode(EncodingType::kAffine, {1, 2, 3});
  EXPECT_EQ(EncodingToCompression(*s, true).status().code(),
            StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace tde
