#include "src/exec/scheduler.h"

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <vector>

#include <gtest/gtest.h>

#include "src/observe/journal.h"
#include "src/observe/metrics.h"
#include "tests/test_util.h"

namespace tde {
namespace {

/// A manually-released gate a task can block on: the test parks the pool's
/// only worker inside one of these to control scheduling deterministically.
class Gate {
 public:
  void Release() {
    std::lock_guard<std::mutex> lock(mu_);
    open_ = true;
    cv_.notify_all();
  }
  void Await() {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [this]() { return open_; });
  }

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  bool open_ = false;
};

TEST(TaskScheduler, RunsEverySubmittedTask) {
  TaskScheduler pool(4);
  auto group = pool.CreateGroup();
  std::atomic<int> count{0};
  for (int i = 0; i < 100; ++i) {
    group->Submit([&count]() { count.fetch_add(1); });
  }
  group->Wait();
  EXPECT_EQ(count.load(), 100);
  const TaskScheduler::GroupStats stats = group->stats();
  EXPECT_EQ(stats.tasks_run, 100u);
  EXPECT_EQ(stats.tasks_cancelled, 0u);
}

TEST(TaskScheduler, PoolSizeFromConstructorAndSuggestedParallelism) {
  EXPECT_EQ(TaskScheduler(8).workers(), 8);
  EXPECT_EQ(TaskScheduler(8).SuggestedQueryParallelism(), 4);
  EXPECT_EQ(TaskScheduler(3).SuggestedQueryParallelism(), 2);
  EXPECT_EQ(TaskScheduler(2).SuggestedQueryParallelism(), 2);
  // A pool of one cannot grant more than one worker.
  EXPECT_EQ(TaskScheduler(1).SuggestedQueryParallelism(), 1);
}

TEST(TaskScheduler, FifoFairnessInterleavesGroups) {
  // One worker, parked on a gate while two groups queue up: round-robin
  // serving must strictly alternate between the groups afterwards.
  TaskScheduler pool(1);
  auto blocker_group = pool.CreateGroup();
  Gate gate;
  blocker_group->Submit([&gate]() { gate.Await(); });

  auto ga = pool.CreateGroup();
  auto gb = pool.CreateGroup();
  std::mutex mu;
  std::vector<char> order;
  for (int i = 0; i < 8; ++i) {
    ga->Submit([&]() {
      std::lock_guard<std::mutex> lock(mu);
      order.push_back('a');
    });
    gb->Submit([&]() {
      std::lock_guard<std::mutex> lock(mu);
      order.push_back('b');
    });
  }
  gate.Release();
  // Poll instead of Wait(): Wait helps drain the queue inline, which
  // would scramble the single-worker serving order under test.
  while (true) {
    {
      std::lock_guard<std::mutex> lock(mu);
      if (order.size() == 16u) break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ga->Wait();
  gb->Wait();
  ASSERT_EQ(order.size(), 16u);
  // ga was enqueued first; one task per turn alternates a, b, a, b, ...
  for (size_t i = 0; i < order.size(); ++i) {
    EXPECT_EQ(order[i], i % 2 == 0 ? 'a' : 'b') << "position " << i;
  }
}

TEST(TaskScheduler, CancelRetiresQueuedTasksAndSparesOtherGroups) {
  TaskScheduler pool(1);
  auto blocker_group = pool.CreateGroup();
  Gate gate;
  blocker_group->Submit([&gate]() { gate.Await(); });

  auto doomed = pool.CreateGroup();
  auto healthy = pool.CreateGroup();
  std::atomic<int> doomed_ran{0};
  std::atomic<int> healthy_ran{0};
  for (int i = 0; i < 10; ++i) {
    doomed->Submit([&]() { doomed_ran.fetch_add(1); });
  }
  for (int i = 0; i < 5; ++i) {
    healthy->Submit([&]() { healthy_ran.fetch_add(1); });
  }
  doomed->Cancel();
  gate.Release();
  doomed->Wait();
  healthy->Wait();
  EXPECT_EQ(doomed_ran.load(), 0);
  EXPECT_EQ(healthy_ran.load(), 5);
  EXPECT_EQ(doomed->stats().tasks_cancelled, 10u);
  EXPECT_EQ(healthy->stats().tasks_run, 5u);

  // Submit after Cancel retires immediately.
  doomed->Submit([&]() { doomed_ran.fetch_add(1); });
  doomed->Wait();
  EXPECT_EQ(doomed_ran.load(), 0);
  EXPECT_EQ(doomed->stats().tasks_cancelled, 11u);
}

TEST(TaskScheduler, WaitHelpsWhenThePoolIsSaturated) {
  // The only worker is parked on the gate, so Wait() must drain the
  // group's queue inline on the calling thread to make progress.
  TaskScheduler pool(1);
  auto blocker_group = pool.CreateGroup();
  Gate gate;
  blocker_group->Submit([&gate]() { gate.Await(); });

  auto group = pool.CreateGroup();
  std::atomic<int> count{0};
  for (int i = 0; i < 10; ++i) {
    group->Submit([&count]() { count.fetch_add(1); });
  }
  group->Wait();  // would deadlock without helping
  EXPECT_EQ(count.load(), 10);
  gate.Release();
  blocker_group->Wait();
}

TEST(TaskScheduler, WorkersAdoptTheGroupsStatsScope) {
  observe::SetStatsEnabled(true);
  observe::StatsScope scope;
  TaskScheduler pool(4);
  // CreateGroup captures the calling thread's scope; every task runs
  // under StatsScope::Bind of it, so counters workers bump land in the
  // submitting query's journal delta.
  auto group = pool.CreateGroup();
  for (int i = 0; i < 16; ++i) {
    group->Submit([]() { observe::QueryCount(observe::QueryCounter::kRowsPruned, 3); });
  }
  group->Wait();
  EXPECT_EQ(scope.value(observe::QueryCounter::kRowsPruned), 16u * 3u);
}

TEST(TaskScheduler, GroupStatsAccumulateWaitAndRunTime) {
  TaskScheduler pool(2);
  auto group = pool.CreateGroup();
  for (int i = 0; i < 8; ++i) {
    group->Submit([]() {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    });
  }
  group->Wait();
  const TaskScheduler::GroupStats stats = group->stats();
  EXPECT_EQ(stats.tasks_run, 8u);
  // 8 x 1ms of work on 2 workers: at least ~4ms of recorded run time.
  EXPECT_GE(stats.run_ns, 4u * 1000u * 1000u);
}

TEST(TaskScheduler, ScopedOverrideReroutesGlobal) {
  TaskScheduler pool(2);
  {
    TaskScheduler::ScopedOverride ov(&pool);
    EXPECT_EQ(&TaskScheduler::Global(), &pool);
  }
  EXPECT_NE(&TaskScheduler::Global(), &pool);
}

TEST(TaskScheduler, OnWorkerThreadIsVisibleInsideTasks) {
  TaskScheduler pool(1);
  EXPECT_FALSE(TaskScheduler::OnWorkerThread());
  auto group = pool.CreateGroup();
  std::atomic<int> on_worker{-1};
  group->Submit(
      [&]() { on_worker.store(TaskScheduler::OnWorkerThread() ? 1 : 0); });
  // Poll instead of Wait(): Wait would help-drain the task inline on this
  // thread, and the point is to observe the flag from a pool worker.
  while (on_worker.load() == -1) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  group->Wait();
  EXPECT_EQ(on_worker.load(), 1);
}

TEST(TaskScheduler, GlobalMetricsCountTasks) {
  observe::SetStatsEnabled(true);
  auto& registry = observe::MetricsRegistry::Global();
  const uint64_t before = registry.GetCounter("scheduler.tasks_run")->value();
  TaskScheduler pool(2);
  auto group = pool.CreateGroup();
  for (int i = 0; i < 12; ++i) group->Submit([]() {});
  group->Wait();
  EXPECT_GE(registry.GetCounter("scheduler.tasks_run")->value(), before + 12);
}

TEST(TaskScheduler, ManyGroupsFromManyThreads) {
  TaskScheduler pool(4);
  TaskScheduler::ScopedOverride ov(&pool);
  std::atomic<uint64_t> total{0};
  const Status st = testutil::RunConcurrently(8, [&](int t) -> Status {
    for (int round = 0; round < 20; ++round) {
      auto group = pool.CreateGroup();
      std::atomic<uint64_t> local{0};
      for (int i = 0; i < 16; ++i) {
        group->Submit([&local]() { local.fetch_add(1); });
      }
      group->Wait();
      if (local.load() != 16u) {
        return Status::Internal("thread " + std::to_string(t) + " round " +
                                std::to_string(round) + ": ran " +
                                std::to_string(local.load()) + "/16 tasks");
      }
      total.fetch_add(local.load());
    }
    return Status::OK();
  });
  ASSERT_TRUE(st.ok()) << st.ToString();
  EXPECT_EQ(total.load(), 8u * 20u * 16u);
}

}  // namespace
}  // namespace tde
