#include "src/plan/plan.h"

#include <map>

#include <gtest/gtest.h>

#include "src/exec/instrument.h"
#include "src/plan/executor.h"
#include "src/plan/strategic.h"
#include "src/workload/rle_data.h"
#include "tests/test_util.h"

namespace tde {
namespace {

using testutil::VectorSource;
using namespace tde::expr;  // NOLINT

std::shared_ptr<Table> ColorTable() {
  auto src = VectorSource::Ints({{"id", {0, 1, 2, 3, 4, 5}},
                                 {"qty", {10, 20, 30, 40, 50, 60}}});
  src->AddStringColumn("color",
                       {"red", "blue", "red", "green", "blue", "red"});
  return FlowTable::Build(std::move(src)).MoveValue();
}

TEST(Strategic, InvisibleJoinRewriteFires) {
  auto t = ColorTable();
  auto plan = Plan::Scan(t).Filter(Eq(Col("color"), Str("red")));
  auto optimized = StrategicOptimize(plan.root()).MoveValue();
  EXPECT_EQ(optimized->kind, PlanNodeKind::kInvisibleJoin);
  EXPECT_EQ(optimized->dict_column, "color");
}

TEST(Strategic, InvisibleJoinDisabledLeavesFilter) {
  auto t = ColorTable();
  auto plan = Plan::Scan(t).Filter(Eq(Col("color"), Str("red")));
  StrategicOptions opts;
  opts.enable_invisible_join = false;
  auto optimized = StrategicOptimize(plan.root(), opts).MoveValue();
  EXPECT_EQ(optimized->kind, PlanNodeKind::kFilter);
}

TEST(Strategic, NoRewriteForMultiColumnPredicate) {
  auto t = ColorTable();
  auto plan = Plan::Scan(t).Filter(
      And(Eq(Col("color"), Str("red")), Gt(Col("qty"), Int(10))));
  auto optimized = StrategicOptimize(plan.root()).MoveValue();
  EXPECT_EQ(optimized->kind, PlanNodeKind::kFilter);
}

TEST(Strategic, RankJoinRewriteFires) {
  auto t = MakeRleTable(100000).MoveValue();
  auto plan = Plan::Scan(t)
                  .Filter(Gt(Col("primary"), Int(90)))
                  .Aggregate({"primary"},
                             {{AggKind::kMax, "secondary", "m"}});
  auto optimized = StrategicOptimize(plan.root()).MoveValue();
  ASSERT_EQ(optimized->kind, PlanNodeKind::kAggregate);
  EXPECT_EQ(optimized->children[0]->kind, PlanNodeKind::kIndexedScan);
  EXPECT_EQ(optimized->children[0]->index_column, "primary");
  EXPECT_EQ(optimized->children[0]->payload,
            (std::vector<std::string>{"secondary"}));
}

TEST(Strategic, RankJoinRequiresRleColumn) {
  auto t = ColorTable();
  auto plan = Plan::Scan(t)
                  .Filter(Gt(Col("qty"), Int(20)))
                  .Aggregate({"qty"}, {{AggKind::kCountStar, "", "n"}});
  auto optimized = StrategicOptimize(plan.root()).MoveValue();
  EXPECT_EQ(optimized->kind, PlanNodeKind::kAggregate);
  EXPECT_EQ(optimized->children[0]->kind, PlanNodeKind::kFilter);
}

TEST(Strategic, ExchangeUnderMaterializeForcedOrdered) {
  auto t = ColorTable();
  auto plan = Plan::Scan(t)
                  .Filter(Gt(Col("qty"), Int(0)))
                  .ExchangeBy(4, /*order_preserving=*/false)
                  .Materialize();
  auto optimized = StrategicOptimize(plan.root()).MoveValue();
  ASSERT_EQ(optimized->kind, PlanNodeKind::kMaterialize);
  const PlanNodePtr& ex = optimized->children[0];
  ASSERT_EQ(ex->kind, PlanNodeKind::kExchange);
  EXPECT_TRUE(ex->order_preserving);
}

TEST(Strategic, ExchangeWithoutEncoderStaysUnordered) {
  auto t = ColorTable();
  auto plan = Plan::Scan(t)
                  .Filter(Gt(Col("qty"), Int(0)))
                  .ExchangeBy(4, /*order_preserving=*/false);
  auto optimized = StrategicOptimize(plan.root()).MoveValue();
  EXPECT_FALSE(optimized->order_preserving);
}

TEST(Executor, InvisibleJoinPlanMatchesControl) {
  auto t = ColorTable();
  const auto pred = Eq(Col("color"), Str("red"));
  // Control: no rewrites.
  StrategicOptions off;
  off.enable_invisible_join = false;
  auto control = ExecutePlanNode(
      StrategicOptimize(Plan::Scan(t).Filter(pred).root(), off).MoveValue());
  ASSERT_TRUE(control.ok()) << control.status().ToString();
  auto rewritten = ExecutePlanNode(
      StrategicOptimize(Plan::Scan(t).Filter(pred).root()).MoveValue());
  ASSERT_TRUE(rewritten.ok()) << rewritten.status().ToString();
  EXPECT_EQ(control.value().num_rows(), 3u);
  EXPECT_EQ(rewritten.value().num_rows(), 3u);
  // Same ids survive (column order may differ; locate by name).
  const auto id_col = [](const QueryResult& r) {
    for (size_t i = 0; i < r.schema().num_fields(); ++i) {
      if (r.schema().field(i).name == "id") return i;
    }
    return size_t{999};
  };
  for (uint64_t row = 0; row < 3; ++row) {
    EXPECT_EQ(control.value().Value(row, id_col(control.value())),
              rewritten.value().Value(row, id_col(rewritten.value())));
  }
}

TEST(Executor, RankJoinPlanMatchesControl) {
  auto t = MakeRleTable(300000).MoveValue();
  auto make_plan = [&]() {
    return Plan::Scan(t)
        .Filter(Ge(Col("primary"), Int(95)))
        .Aggregate({"primary"}, {{AggKind::kMax, "secondary", "m"},
                                 {AggKind::kCountStar, "", "n"}});
  };
  StrategicOptions off;
  off.enable_rank_join = false;
  off.enable_invisible_join = false;
  auto control = ExecutePlanNode(
      StrategicOptimize(make_plan().root(), off).MoveValue());
  ASSERT_TRUE(control.ok()) << control.status().ToString();
  auto indexed =
      ExecutePlanNode(StrategicOptimize(make_plan().root()).MoveValue());
  ASSERT_TRUE(indexed.ok()) << indexed.status().ToString();

  ASSERT_EQ(control.value().num_rows(), 5u);
  ASSERT_EQ(indexed.value().num_rows(), 5u);
  // Both report groups 95..99; compare as maps (order may differ).
  std::map<Lane, std::pair<Lane, Lane>> c, x;
  for (uint64_t r = 0; r < 5; ++r) {
    c[control.value().Value(r, 0)] = {control.value().Value(r, 1),
                                      control.value().Value(r, 2)};
    x[indexed.value().Value(r, 0)] = {indexed.value().Value(r, 1),
                                      indexed.value().Value(r, 2)};
  }
  EXPECT_EQ(c, x);
}

TEST(Executor, ProjectAggregateSortPipeline) {
  auto t = ColorTable();
  auto result = ExecutePlan(
      Plan::Scan(t)
          .Project({{Col("qty"), "qty"},
                    {Arith(ArithOp::kMod, Col("id"), Int(2)), "parity"}})
          .Aggregate({"parity"}, {{AggKind::kSum, "qty", "total"}})
          .OrderBy({{"parity", true}}));
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_EQ(result.value().num_rows(), 2u);
  EXPECT_EQ(result.value().Value(0, 0), 0);
  EXPECT_EQ(result.value().Value(0, 1), 10 + 30 + 50);
  EXPECT_EQ(result.value().Value(1, 1), 20 + 40 + 60);
}

TEST(Executor, JoinTablePlan) {
  auto dim_src = VectorSource::Ints({{"k", {0, 1, 2}}});
  dim_src->AddStringColumn("name", {"zero", "one", "two"});
  auto dim = FlowTable::Build(std::move(dim_src)).MoveValue();
  auto fact = FlowTable::Build(VectorSource::Ints(
                                   {{"k", {2, 2, 0, 1}}, {"v", {1, 2, 3, 4}}}))
                  .MoveValue();
  HashJoinOptions join;
  join.outer_key = "k";
  join.inner_key = "k";
  join.inner_payload = {"name"};
  auto result = ExecutePlan(Plan::Scan(fact).Join(dim, join));
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result.value().num_rows(), 4u);
  EXPECT_EQ(result.value().ValueString(0, 2), "two");
  EXPECT_EQ(result.value().ValueString(2, 2), "zero");
}

TEST(Executor, TacticalHashChoiceFlowsFromMetadata) {
  // Narrow key column -> the aggregation should get a direct hash.
  std::vector<Lane> keys(5000);
  for (size_t i = 0; i < keys.size(); ++i) keys[i] = static_cast<Lane>(i % 7);
  auto t = FlowTable::Build(VectorSource::Ints({{"k", keys}})).MoveValue();
  ASSERT_EQ(t->ColumnByName("k").value()->TokenWidth(), 1);
  auto built = BuildExecutable(
      StrategicOptimize(
          Plan::Scan(t)
              .Aggregate({"k"}, {{AggKind::kCountStar, "", "n"}})
              .root())
          .MoveValue());
  ASSERT_TRUE(built.ok()) << built.status().ToString();
  auto* agg = dynamic_cast<HashAggregate*>(Unwrap(built.value().op.get()));
  ASSERT_NE(agg, nullptr);
  std::vector<Block> blocks;
  ASSERT_TRUE(DrainOperator(agg, &blocks).ok());
  EXPECT_EQ(agg->algorithm_used(), HashAlgorithm::kDirect);
}

TEST(Plan, ToStringRendersTree) {
  auto t = ColorTable();
  auto plan = Plan::Scan(t)
                  .Filter(Gt(Col("qty"), Int(5)))
                  .Aggregate({"color"}, {{AggKind::kCountStar, "", "n"}});
  const std::string s = PlanToString(plan.root());
  EXPECT_NE(s.find("Aggregate"), std::string::npos);
  EXPECT_NE(s.find("Filter"), std::string::npos);
  EXPECT_NE(s.find("Scan(flow)"), std::string::npos);
}

}  // namespace
}  // namespace tde
