#include "src/common/hash.h"

#include <random>
#include <unordered_map>

#include <gtest/gtest.h>

namespace tde {
namespace {

TEST(ChooseHash, NarrowKeysUseDirect) {
  EXPECT_EQ(ChooseHashAlgorithm(1, false, 0, 0), HashAlgorithm::kDirect);
  EXPECT_EQ(ChooseHashAlgorithm(2, false, 0, 0), HashAlgorithm::kDirect);
  EXPECT_EQ(ChooseHashAlgorithm(2, true, -100, 100), HashAlgorithm::kDirect);
}

TEST(ChooseHash, MidKeysWithRangeUsePerfect) {
  EXPECT_EQ(ChooseHashAlgorithm(4, true, 0, 1000000),
            HashAlgorithm::kPerfect);
  EXPECT_EQ(ChooseHashAlgorithm(3, true, -500, 500),
            HashAlgorithm::kPerfect);
}

TEST(ChooseHash, MidKeysWithoutRangeFallBack) {
  EXPECT_EQ(ChooseHashAlgorithm(4, false, 0, 0),
            HashAlgorithm::kCollision);
}

TEST(ChooseHash, HugeRangeFallsBack) {
  EXPECT_EQ(ChooseHashAlgorithm(4, true, 0, int64_t{1} << 40),
            HashAlgorithm::kCollision);
}

TEST(ChooseHash, WideKeysNeedCollisionDetection) {
  EXPECT_EQ(ChooseHashAlgorithm(8, true, 0, 10),
            HashAlgorithm::kCollision);
}

class GroupMapBehavior : public ::testing::TestWithParam<HashAlgorithm> {};

TEST_P(GroupMapBehavior, AssignsDenseStableIds) {
  GroupMap m(GetParam(), -50, 5000);
  std::mt19937_64 rng(3);
  std::unordered_map<Lane, uint32_t> reference;
  for (int i = 0; i < 20000; ++i) {
    const Lane key = static_cast<Lane>(rng() % 5000) - 50;
    const uint32_t g = m.GetOrInsert(key);
    auto [it, inserted] = reference.emplace(key, g);
    if (!inserted) {
      ASSERT_EQ(it->second, g);
    }
  }
  EXPECT_EQ(m.group_count(), reference.size());
  // Find agrees with GetOrInsert, and the key list indexes correctly.
  for (const auto& [key, g] : reference) {
    EXPECT_EQ(m.Find(key), g);
    EXPECT_EQ(m.keys()[g], key);
  }
}

TEST_P(GroupMapBehavior, FindMissesReturnSentinel) {
  GroupMap m(GetParam(), 0, 1000);
  m.GetOrInsert(5);
  EXPECT_EQ(m.Find(6), UINT32_MAX);
}

INSTANTIATE_TEST_SUITE_P(
    AllAlgorithms, GroupMapBehavior,
    ::testing::Values(HashAlgorithm::kDirect, HashAlgorithm::kPerfect,
                      HashAlgorithm::kCollision),
    [](const auto& info) { return HashAlgorithmName(info.param); });

TEST(GroupMap, DirectAndPerfectNeverCollide) {
  GroupMap direct(HashAlgorithm::kDirect, 0, 0);
  GroupMap perfect(HashAlgorithm::kPerfect, 0, 65535);
  for (Lane k = 0; k < 65536; k += 7) {
    direct.GetOrInsert(k);
    perfect.GetOrInsert(k);
  }
  EXPECT_EQ(direct.collisions(), 0u);
  EXPECT_EQ(perfect.collisions(), 0u);
}

TEST(GroupMap, CollisionTableGrowsCorrectly) {
  GroupMap m(HashAlgorithm::kCollision, 0, 0);
  for (Lane k = 0; k < 100000; ++k) {
    ASSERT_EQ(m.GetOrInsert(k * 1000003), static_cast<uint32_t>(k));
  }
  EXPECT_EQ(m.group_count(), 100000u);
  EXPECT_EQ(m.Find(5 * 1000003), 5u);
}

TEST(GroupMap, NegativeKeysWorkInCollisionMode) {
  GroupMap m(HashAlgorithm::kCollision, 0, 0);
  const uint32_t a = m.GetOrInsert(-42);
  const uint32_t b = m.GetOrInsert(42);
  EXPECT_NE(a, b);
  EXPECT_EQ(m.Find(-42), a);
}

TEST(Mix64, IsDeterministicAndSpreads) {
  EXPECT_EQ(Mix64(1), Mix64(1));
  EXPECT_NE(Mix64(1), Mix64(2));
  // Low bits differ for adjacent inputs (needed for masked tables).
  int diffs = 0;
  for (uint64_t i = 0; i < 64; ++i) {
    if ((Mix64(i) & 0xFF) != (Mix64(i + 1) & 0xFF)) ++diffs;
  }
  EXPECT_GT(diffs, 48);
}

}  // namespace
}  // namespace tde
