#include "src/sql/parser.h"

#include <random>

#include <gtest/gtest.h>

#include "src/core/engine.h"
#include "src/sql/lexer.h"

namespace tde {
namespace {

// -------------------------------------------------------------------- lexer

TEST(Lexer, TokenKinds) {
  auto r = sql::Lex("SELECT x, 42 1.5 'it''s' \"quoted id\" <= <> (");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  const auto& t = r.value();
  EXPECT_EQ(t[0].kind, sql::TokenKind::kKeyword);
  EXPECT_EQ(t[0].text, "SELECT");
  EXPECT_EQ(t[1].kind, sql::TokenKind::kIdent);
  EXPECT_EQ(t[1].text, "x");
  EXPECT_EQ(t[3].kind, sql::TokenKind::kInteger);
  EXPECT_EQ(t[4].kind, sql::TokenKind::kReal);
  EXPECT_EQ(t[5].kind, sql::TokenKind::kString);
  EXPECT_EQ(t[5].text, "it's");
  EXPECT_EQ(t[6].kind, sql::TokenKind::kIdent);
  EXPECT_EQ(t[6].text, "quoted id");
  EXPECT_EQ(t[7].text, "<=");
  EXPECT_EQ(t[8].text, "<>");
  EXPECT_EQ(t[9].text, "(");
  EXPECT_EQ(t.back().kind, sql::TokenKind::kEnd);
}

TEST(Lexer, KeywordsAreCaseInsensitive) {
  auto r = sql::Lex("select From wHeRe");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value()[0].text, "SELECT");
  EXPECT_EQ(r.value()[1].text, "FROM");
  EXPECT_EQ(r.value()[2].text, "WHERE");
}

TEST(Lexer, Rejections) {
  EXPECT_FALSE(sql::Lex("SELECT 'oops").ok());
  EXPECT_FALSE(sql::Lex("a @ b").ok());
  EXPECT_FALSE(sql::Lex("\"unterminated").ok());
}

// -------------------------------------------------------------- expressions

std::string Parsed(const std::string& text) {
  auto r = sql::ParseExpression(text);
  EXPECT_TRUE(r.ok()) << text << ": " << r.status().ToString();
  return r.ok() ? r.value()->ToString() : "<error>";
}

TEST(SqlExpr, PrecedenceAndAssociativity) {
  EXPECT_EQ(Parsed("1 + 2 * 3"), "(1 + (2 * 3))");
  EXPECT_EQ(Parsed("(1 + 2) * 3"), "((1 + 2) * 3)");
  EXPECT_EQ(Parsed("a - b - c"), "((a - b) - c)");
  EXPECT_EQ(Parsed("a OR b AND c"), "(a OR (b AND c))");
  EXPECT_EQ(Parsed("NOT a AND b"), "(NOT a AND b)");
  EXPECT_EQ(Parsed("x % 2 = 0"), "((x % 2) = 0)");
}

TEST(SqlExpr, ComparisonSpellings) {
  EXPECT_EQ(Parsed("a <> b"), "(a <> b)");
  EXPECT_EQ(Parsed("a != b"), "(a <> b)");
  EXPECT_EQ(Parsed("a == b"), "(a = b)");
}

TEST(SqlExpr, BetweenAndIsNull) {
  EXPECT_EQ(Parsed("x BETWEEN 1 AND 5"), "((x >= 1) AND (x <= 5))");
  EXPECT_EQ(Parsed("x IS NULL"), "x IS NULL");
  EXPECT_EQ(Parsed("x IS NOT NULL"), "NOT x IS NULL");
}

TEST(SqlExpr, Literals) {
  EXPECT_EQ(Parsed("TRUE"), "true");
  EXPECT_EQ(Parsed("'hi'"), "'hi'");
  EXPECT_EQ(Parsed("DATE '1994-06-22'"), "1994-06-22");
  EXPECT_EQ(Parsed("-5"), "-5");  // folded unary minus
  EXPECT_EQ(Parsed("1.5"), "1.5");
}

TEST(SqlExpr, Functions) {
  EXPECT_EQ(Parsed("YEAR(d)"), "YEAR(d)");
  EXPECT_EQ(Parsed("trunc_month(d)"), "TRUNC_MONTH(d)");
  EXPECT_EQ(Parsed("upper(s)"), "UPPER(s)");
  EXPECT_EQ(Parsed("extension(url)"), "EXTENSION(url)");
}

TEST(SqlExpr, Rejections) {
  EXPECT_FALSE(sql::ParseExpression("1 +").ok());
  EXPECT_FALSE(sql::ParseExpression("nosuchfn(x)").ok());
  EXPECT_FALSE(sql::ParseExpression("SUM(x)").ok());  // agg outside SELECT
  EXPECT_FALSE(sql::ParseExpression("(1").ok());
  EXPECT_FALSE(sql::ParseExpression("1 2").ok());
  EXPECT_FALSE(sql::ParseExpression("x BETWEEN 1").ok());
  EXPECT_FALSE(sql::ParseExpression("DATE '06/22/1994'").ok());
}

// ------------------------------------------------------------------ queries

class SqlQueries : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    engine_ = new Engine();
    std::string csv = "region,amount,day\n";
    const char* regions[] = {"west", "east", "north", "south"};
    const int64_t start = DaysFromCivil(2020, 1, 1);
    for (int i = 0; i < 1000; ++i) {
      csv += std::string(regions[i % 4]) + "," + std::to_string(i % 50) +
             "," + FormatLane(TypeId::kDate, start + i % 90) + "\n";
    }
    ASSERT_TRUE(engine_->ImportTextBuffer(csv, "sales").ok());
  }
  static void TearDownTestSuite() {
    delete engine_;
    engine_ = nullptr;
  }

  QueryResult Run(const std::string& q) {
    auto r = engine_->ExecuteSql(q);
    EXPECT_TRUE(r.ok()) << q << ": " << r.status().ToString();
    return r.ok() ? r.MoveValue() : QueryResult();
  }

  static Engine* engine_;
};

Engine* SqlQueries::engine_ = nullptr;

TEST_F(SqlQueries, SelectStar) {
  auto r = Run("SELECT * FROM sales");
  EXPECT_EQ(r.num_rows(), 1000u);
  EXPECT_EQ(r.num_columns(), 3u);
}

TEST_F(SqlQueries, ProjectionWithAliases) {
  auto r = Run("SELECT amount * 2 AS double_amount, region FROM sales LIMIT 3");
  ASSERT_EQ(r.num_rows(), 3u);
  EXPECT_EQ(r.schema().field(0).name, "double_amount");
  EXPECT_EQ(r.Value(1, 0), 2);
  EXPECT_EQ(r.ValueString(1, 1), "east");
}

TEST_F(SqlQueries, WhereFilters) {
  auto r = Run("SELECT * FROM sales WHERE amount >= 48");
  EXPECT_EQ(r.num_rows(), 40u);  // amounts 48,49 x 20 each
  auto r2 = Run("SELECT * FROM sales WHERE region = 'west' AND amount < 4");
  EXPECT_EQ(r2.num_rows(), 20u);  // west rows have amounts 0,4,8,...
}

TEST_F(SqlQueries, DateLiteralsAndFunctions) {
  auto r = Run(
      "SELECT * FROM sales WHERE day >= DATE '2020-03-01' AND "
      "day < DATE '2020-03-08'");
  // Days 60..66 of the 90-day cycle: 11 full cycles in 1000 rows.
  EXPECT_EQ(r.num_rows(), 77u);
  auto r2 = Run(
      "SELECT MONTH(day) AS m, COUNT(*) AS n FROM sales GROUP BY m "
      "ORDER BY m");
  EXPECT_EQ(r2.num_rows(), 3u);  // Jan, Feb, Mar
  EXPECT_EQ(r2.Value(0, 0), 1);
}

TEST_F(SqlQueries, GroupByWithAggregates) {
  auto r = Run(
      "SELECT region, COUNT(*) AS n, SUM(amount) AS total, MAX(amount) "
      "AS biggest FROM sales GROUP BY region ORDER BY region");
  ASSERT_EQ(r.num_rows(), 4u);
  EXPECT_EQ(r.ValueString(0, 0), "east");
  EXPECT_EQ(r.Value(0, 1), 250);
  // east amounts: 1,5,9,... (i%4==1 -> amount=(i%50)); sum over 250 rows.
  int64_t expect = 0;
  for (int i = 0; i < 1000; ++i) {
    if (i % 4 == 1) expect += i % 50;
  }
  EXPECT_EQ(r.Value(0, 2), expect);
}

TEST_F(SqlQueries, ImplicitGroupByFromSelectList) {
  auto r = Run("SELECT region, COUNT(*) FROM sales ORDER BY region");
  ASSERT_EQ(r.num_rows(), 4u);
  EXPECT_EQ(r.schema().field(1).name, "count");
}

TEST_F(SqlQueries, GlobalAggregates) {
  auto r = Run(
      "SELECT COUNT(*) AS n, AVG(amount) AS avg_amount, COUNTD(region) AS "
      "regions, MEDIAN(amount) AS med FROM sales");
  ASSERT_EQ(r.num_rows(), 1u);
  EXPECT_EQ(r.Value(0, 0), 1000);
  EXPECT_EQ(r.Value(0, 2), 4);
}

TEST_F(SqlQueries, ComputedGroupKeyAndAggInput) {
  auto r = Run(
      "SELECT amount % 2 AS parity, SUM(amount * 10) AS total FROM sales "
      "GROUP BY parity ORDER BY parity");
  ASSERT_EQ(r.num_rows(), 2u);
  int64_t even = 0, odd = 0;
  for (int i = 0; i < 1000; ++i) {
    ((i % 50) % 2 == 0 ? even : odd) += (i % 50) * 10;
  }
  EXPECT_EQ(r.Value(0, 1), even);
  EXPECT_EQ(r.Value(1, 1), odd);
}

TEST_F(SqlQueries, OrderByDescAndLimit) {
  auto r = Run(
      "SELECT region, SUM(amount) AS total FROM sales GROUP BY region "
      "ORDER BY total DESC LIMIT 2");
  ASSERT_EQ(r.num_rows(), 2u);
  EXPECT_GE(r.Value(0, 1), r.Value(1, 1));
}

TEST_F(SqlQueries, StringFunctions) {
  auto r = Run(
      "SELECT UPPER(region) AS u, LENGTH(region) AS len FROM sales "
      "WHERE region = 'west' LIMIT 1");
  ASSERT_EQ(r.num_rows(), 1u);
  EXPECT_EQ(r.ValueString(0, 0), "WEST");
  EXPECT_EQ(r.Value(0, 1), 4);
}

TEST_F(SqlQueries, BetweenInWhere) {
  auto r = Run("SELECT COUNT(*) AS n FROM sales WHERE amount BETWEEN 10 AND "
               "19");
  EXPECT_EQ(r.Value(0, 0), 200);
}

TEST_F(SqlQueries, ExplainReturnsPlanText) {
  auto r = Run("EXPLAIN SELECT region, COUNT(*) FROM sales WHERE "
               "region = 'west' GROUP BY region");
  ASSERT_GE(r.num_rows(), 2u);
  std::string all;
  for (uint64_t i = 0; i < r.num_rows(); ++i) all += r.ValueString(i, 0) + "\n";
  EXPECT_NE(all.find("InvisibleJoin"), std::string::npos) << all;
  EXPECT_NE(all.find("Aggregate"), std::string::npos) << all;
}

TEST_F(SqlQueries, MinMaxOverStringsUsesSortedHeapTokens) {
  // The heap is sorted by FlowTable post-processing, so token order is
  // collation order and MIN/MAX over tokens is MIN/MAX over strings.
  auto r = Run("SELECT MIN(region) AS lo, MAX(region) AS hi FROM sales");
  ASSERT_EQ(r.num_rows(), 1u);
  EXPECT_EQ(r.ValueString(0, 0), "east");
  EXPECT_EQ(r.ValueString(0, 1), "west");
}

TEST_F(SqlQueries, RankJoinRewriteFiresThroughSql) {
  // A sorted RLE column filtered and grouped: the optimizer should turn
  // the SQL plan into an IndexedScan (visible via EXPLAIN).
  std::string csv = "bucket,other\n";
  for (int b = 0; b < 100; ++b) {
    for (int i = 0; i < 300; ++i) {
      csv += std::to_string(b) + "," + std::to_string(i) + "\n";
    }
  }
  ASSERT_TRUE(engine_->ImportTextBuffer(csv, "rle_sql").ok());
  auto explain = Run(
      "EXPLAIN SELECT bucket, MAX(other) AS m FROM rle_sql "
      "WHERE bucket > 90 GROUP BY bucket");
  std::string all;
  for (uint64_t i = 0; i < explain.num_rows(); ++i) {
    all += explain.ValueString(i, 0) + "\n";
  }
  EXPECT_NE(all.find("IndexedScan(bucket)"), std::string::npos) << all;
  EXPECT_NE(all.find("ordered"), std::string::npos) << all;

  auto r = Run(
      "SELECT bucket, MAX(other) AS m FROM rle_sql WHERE bucket > 90 "
      "GROUP BY bucket ORDER BY bucket");
  ASSERT_EQ(r.num_rows(), 9u);
  EXPECT_EQ(r.Value(0, 0), 91);
  EXPECT_EQ(r.Value(0, 1), 299);
}

TEST_F(SqlQueries, SemicolonTolerated) {
  EXPECT_EQ(Run("SELECT COUNT(*) AS n FROM sales;").Value(0, 0), 1000);
}

class SqlJoins : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    engine_ = new Engine();
    // Dimension: unique-keyed regions with a country payload.
    ASSERT_TRUE(engine_
                    ->ImportTextBuffer(
                        "rid,rname,country\n"
                        "1,west,US\n2,east,US\n3,emea,DE\n",
                        "regions")
                    .ok());
    std::string facts = "rid,amount\n";
    for (int i = 0; i < 300; ++i) {
      facts += std::to_string(i % 3 + 1) + "," + std::to_string(i % 10) + "\n";
    }
    ASSERT_TRUE(engine_->ImportTextBuffer(facts, "facts").ok());
  }
  static void TearDownTestSuite() {
    delete engine_;
    engine_ = nullptr;
  }
  static Engine* engine_;
};

Engine* SqlJoins::engine_ = nullptr;

TEST_F(SqlJoins, JoinUsing) {
  auto r = engine_->ExecuteSql(
      "SELECT rname, SUM(amount) AS total FROM facts JOIN regions "
      "USING (rid) GROUP BY rname ORDER BY rname");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_EQ(r.value().num_rows(), 3u);
  EXPECT_EQ(r.value().ValueString(0, 0), "east");
  int64_t east = 0;
  for (int i = 0; i < 300; ++i) {
    if (i % 3 + 1 == 2) east += i % 10;
  }
  EXPECT_EQ(r.value().Value(0, 1), east);
}

TEST_F(SqlJoins, JoinOnQualifiedColumns) {
  auto r = engine_->ExecuteSql(
      "SELECT country, COUNT(*) AS n FROM facts "
      "INNER JOIN regions ON facts.rid = regions.rid "
      "GROUP BY country ORDER BY country");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_EQ(r.value().num_rows(), 2u);
  EXPECT_EQ(r.value().ValueString(0, 0), "DE");
  EXPECT_EQ(r.value().Value(0, 1), 100);
  EXPECT_EQ(r.value().Value(1, 1), 200);
}

TEST_F(SqlJoins, JoinThenWhereOnPayload) {
  auto r = engine_->ExecuteSql(
      "SELECT COUNT(*) AS n FROM facts JOIN regions USING (rid) "
      "WHERE country = 'US'");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r.value().Value(0, 0), 200);
}

TEST_F(SqlJoins, Having) {
  auto r = engine_->ExecuteSql(
      "SELECT rname, COUNT(*) AS n FROM facts JOIN regions USING (rid) "
      "GROUP BY rname HAVING n >= 100 ORDER BY rname");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r.value().num_rows(), 3u);  // all groups have exactly 100
  auto r2 = engine_->ExecuteSql(
      "SELECT rid, SUM(amount) AS total FROM facts GROUP BY rid "
      "HAVING total > 440 ORDER BY rid");
  ASSERT_TRUE(r2.ok()) << r2.status().ToString();
  // rid sums: rid1 <- i%3==0 -> sum(i%10 for i%3==0)...
  int64_t sums[4] = {0, 0, 0, 0};
  for (int i = 0; i < 300; ++i) sums[i % 3 + 1] += i % 10;
  uint64_t expect = 0;
  for (int k = 1; k <= 3; ++k) expect += sums[k] > 440;
  EXPECT_EQ(r2.value().num_rows(), expect);
}

TEST_F(SqlJoins, HavingWithoutGroupingFails) {
  EXPECT_FALSE(
      engine_->ExecuteSql("SELECT * FROM facts HAVING amount > 1").ok());
}

TEST_F(SqlJoins, JoinUnknownTableFails) {
  EXPECT_FALSE(engine_->ExecuteSql(
                          "SELECT * FROM facts JOIN nope USING (rid)")
                   .ok());
}

TEST_F(SqlQueries, ErrorsSurfaceCleanly) {
  EXPECT_FALSE(engine_->ExecuteSql("SELECT FROM sales").ok());
  EXPECT_FALSE(engine_->ExecuteSql("SELECT * FROM nope").ok());
  EXPECT_FALSE(engine_->ExecuteSql("SELECT amount FROM sales GROUP BY "
                                   "region").ok());  // not a key
  EXPECT_FALSE(engine_->ExecuteSql("SELECT * , COUNT(*) FROM sales").ok());
  EXPECT_FALSE(engine_->ExecuteSql("SELECT * FROM sales LIMIT x").ok());
  EXPECT_FALSE(engine_->ExecuteSql("SELECT * FROM sales WHERE").ok());
  EXPECT_FALSE(engine_->ExecuteSql("SELECT SUM(amount) + 1 FROM sales").ok());
}

TEST(SqlLikeIn, LikePatterns) {
  using expr::Like;
  Engine engine;
  // (The numeric column forces header detection; all-string files have no
  // parser errors on row 0 and are taken as headerless, per Sect. 5.1.1.)
  auto t = engine
               .ImportTextBuffer(
                   "s,n\nindex.html,1\nlogo.png,2\nmain.html,3\nx,4\n",
                   "files")
               .MoveValue();
  auto count = [&](const std::string& q) {
    auto r = engine.ExecuteSql(q);
    EXPECT_TRUE(r.ok()) << q << ": " << r.status().ToString();
    return r.ok() ? static_cast<int>(r.value().num_rows()) : -1;
  };
  EXPECT_EQ(count("SELECT * FROM files WHERE s LIKE '%.html'"), 2);
  EXPECT_EQ(count("SELECT * FROM files WHERE s LIKE 'logo%'"), 1);
  EXPECT_EQ(count("SELECT * FROM files WHERE s LIKE '_'"), 1);
  EXPECT_EQ(count("SELECT * FROM files WHERE s LIKE '%o%o%'"), 1);
  EXPECT_EQ(count("SELECT * FROM files WHERE s LIKE '%'"), 4);
  // Locale heaps fold case.
  EXPECT_EQ(count("SELECT * FROM files WHERE s LIKE '%.HTML'"), 2);
  // LIKE over non-strings fails cleanly.
  std::vector<std::string> cols;  // silence unused-warning paranoia
  (void)cols;
  auto bad = engine.ImportTextBuffer("n\n1\n", "nums").MoveValue();
  EXPECT_FALSE(
      engine.ExecuteSql("SELECT * FROM nums WHERE n LIKE '1%'").ok());
}

TEST(SqlLikeIn, LikeMatcherEdgeCases) {
  using LM = bool (*)(std::string_view, std::string_view, bool);
  // Exercise the matcher through expressions: backtracking cases.
  auto match = [](const std::string& s, const std::string& p) {
    Schema schema({{"s", TypeId::kString}});
    Block b;
    b.columns.resize(1);
    b.columns[0].type = TypeId::kString;
    auto heap = std::make_shared<StringHeap>(Collation::kBinary);
    b.columns[0].lanes = {heap->Add(s)};
    b.columns[0].heap = heap;
    auto e = expr::Like(expr::Col("s"), p);
    auto r = e->Eval(b, schema);
    EXPECT_TRUE(r.ok());
    return r.value().lanes[0] == 1;
  };
  (void)static_cast<LM>(nullptr);
  EXPECT_TRUE(match("", ""));
  EXPECT_TRUE(match("", "%"));
  EXPECT_FALSE(match("", "_"));
  EXPECT_TRUE(match("abc", "a%c"));
  EXPECT_FALSE(match("abc", "a%d"));
  EXPECT_TRUE(match("aXbXc", "a%b%c"));
  EXPECT_TRUE(match("mississippi", "%iss%pi"));
  EXPECT_FALSE(match("mississippi", "%iss%pix"));
  EXPECT_TRUE(match("a%b", "a%b"));  // '%' in data matched by literal pass
}

TEST(SqlLikeIn, InList) {
  Engine engine;
  std::string csv = "mode,v\n";
  const char* modes[] = {"MAIL", "SHIP", "AIR", "RAIL"};
  for (int i = 0; i < 400; ++i) {
    csv += std::string(modes[i % 4]) + "," + std::to_string(i) + "\n";
  }
  ASSERT_TRUE(engine.ImportTextBuffer(csv, "m").ok());
  auto r = engine.ExecuteSql(
      "SELECT COUNT(*) AS n FROM m WHERE mode IN ('MAIL', 'SHIP')");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r.value().Value(0, 0), 200);
  auto r2 = engine.ExecuteSql(
      "SELECT COUNT(*) AS n FROM m WHERE mode NOT IN ('MAIL', 'SHIP', "
      "'RAIL')");
  ASSERT_TRUE(r2.ok()) << r2.status().ToString();
  EXPECT_EQ(r2.value().Value(0, 0), 100);
  auto r3 = engine.ExecuteSql("SELECT COUNT(*) AS n FROM m WHERE v IN (1, "
                              "2, 3, 999)");
  ASSERT_TRUE(r3.ok());
  EXPECT_EQ(r3.value().Value(0, 0), 3);
  EXPECT_FALSE(engine.ExecuteSql("SELECT * FROM m WHERE v IN ()").ok());
  EXPECT_FALSE(engine.ExecuteSql("SELECT * FROM m WHERE v NOT 5").ok());
}

TEST(SqlCase, CaseWhenExpressions) {
  Engine engine;
  std::string csv = "grade,score\n";
  for (int i = 0; i < 100; ++i) {
    csv += std::string(1, static_cast<char>('A' + i % 3)) + "," +
           std::to_string(i) + "\n";
  }
  ASSERT_TRUE(engine.ImportTextBuffer(csv, "g").ok());
  // Scalar CASE in a projection.
  auto r = engine.ExecuteSql(
      "SELECT score, CASE WHEN score >= 66 THEN 3 WHEN score >= 33 THEN 2 "
      "ELSE 1 END AS band FROM g ORDER BY score LIMIT 100");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r.value().Value(0, 1), 1);
  EXPECT_EQ(r.value().Value(40, 1), 2);
  EXPECT_EQ(r.value().Value(99, 1), 3);
  // CASE without ELSE yields NULL.
  auto r2 = engine.ExecuteSql(
      "SELECT COUNT(*) AS n FROM g WHERE "
      "(CASE WHEN grade = 'A' THEN 1 END) IS NULL");
  ASSERT_TRUE(r2.ok()) << r2.status().ToString();
  EXPECT_EQ(r2.value().Value(0, 0), 66);  // B and C rows
  // Conditional aggregation (the Q12 idiom).
  auto r3 = engine.ExecuteSql(
      "SELECT SUM(CASE WHEN grade = 'A' THEN score ELSE 0 END) AS a_total, "
      "SUM(CASE WHEN grade <> 'A' THEN 1 ELSE 0 END) AS others FROM g");
  ASSERT_TRUE(r3.ok()) << r3.status().ToString();
  int64_t a_total = 0;
  for (int i = 0; i < 100; i += 3) a_total += i;
  EXPECT_EQ(r3.value().Value(0, 0), a_total);
  EXPECT_EQ(r3.value().Value(0, 1), 66);
  // Parse errors.
  EXPECT_FALSE(engine.ExecuteSql("SELECT CASE END FROM g").ok());
  EXPECT_FALSE(
      engine.ExecuteSql("SELECT CASE WHEN grade = 'A' THEN 1 FROM g").ok());
}

TEST(SqlSort, OrderByDictionaryColumnAcrossSegments) {
  // A dictionary column split across 512-row segments: each segment
  // re-interns into its own heap, so the sort must unify heaps before
  // comparing tokens, in both directions and under LIMIT.
  Engine engine;
  ImportOptions opts;
  opts.flow.segment_rows = 512;
  const char* words[] = {"walnut", "elm", "cedar", "ash"};
  std::string csv = "s,k\n";
  for (int i = 0; i < 2048; ++i) {
    csv += std::string(words[i % 4]) + "," + std::to_string(i) + "\n";
  }
  ASSERT_TRUE(engine.ImportTextBuffer(csv, "t", opts).ok());

  auto asc = engine.ExecuteSql("SELECT s, k FROM t ORDER BY s, k LIMIT 5");
  ASSERT_TRUE(asc.ok()) << asc.status().ToString();
  ASSERT_EQ(asc.value().num_rows(), 5u);
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(asc.value().ValueString(i, 0), "ash");
    EXPECT_EQ(asc.value().Value(i, 1), 3 + 4 * i);  // ash rows are k%4==3
  }
  auto desc = engine.ExecuteSql(
      "SELECT s, k FROM t ORDER BY s DESC, k DESC LIMIT 2");
  ASSERT_TRUE(desc.ok()) << desc.status().ToString();
  ASSERT_EQ(desc.value().num_rows(), 2u);
  EXPECT_EQ(desc.value().ValueString(0, 0), "walnut");
  EXPECT_EQ(desc.value().Value(0, 1), 2044);
  EXPECT_EQ(desc.value().Value(1, 1), 2040);
  // Unlimited sort crosses every segment boundary in order.
  auto full = engine.ExecuteSql("SELECT s, k FROM t ORDER BY s, k");
  ASSERT_TRUE(full.ok()) << full.status().ToString();
  ASSERT_EQ(full.value().num_rows(), 2048u);
  EXPECT_EQ(full.value().ValueString(0, 0), "ash");
  EXPECT_EQ(full.value().ValueString(511, 0), "ash");
  EXPECT_EQ(full.value().ValueString(512, 0), "cedar");
  EXPECT_EQ(full.value().ValueString(2047, 0), "walnut");
  EXPECT_EQ(full.value().Value(2047, 1), 2044);
}

TEST(SqlFuzz, RandomInputNeverCrashes) {
  // Random byte soup and random token recombinations must produce clean
  // ParseErrors, never faults.
  Engine engine;
  ASSERT_TRUE(engine.ImportTextBuffer("a,b\n1,2\n", "t").ok());
  std::mt19937_64 rng(777);
  const std::string alphabet =
      "SELECT FROM WHERE GROUP BY ORDER LIMIT ( ) , * + - / = < > ' \" . "
      "x y t 1 2.5 AND OR NOT aVg( COUNT BETWEEN IS NULL DATE ; % != ";
  for (int trial = 0; trial < 500; ++trial) {
    std::string q;
    const int len = 1 + static_cast<int>(rng() % 60);
    for (int i = 0; i < len; ++i) {
      q.push_back(alphabet[rng() % alphabet.size()]);
    }
    (void)engine.ExecuteSql(q);  // any Status is fine; no crash is the test
  }
  // And pure binary garbage through the lexer.
  for (int trial = 0; trial < 200; ++trial) {
    std::string q;
    const int len = static_cast<int>(rng() % 40);
    for (int i = 0; i < len; ++i) {
      q.push_back(static_cast<char>(rng() % 256));
    }
    (void)sql::Lex(q);
  }
}

}  // namespace
}  // namespace tde
