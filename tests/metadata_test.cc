#include "src/encoding/metadata.h"

#include <gtest/gtest.h>

namespace tde {
namespace {

ColumnMetadata From(const std::vector<Lane>& v) {
  EncodingStats s;
  s.Update(v.data(), v.size());
  return ExtractMetadata(s);
}

TEST(Metadata, EmptyStatsYieldNothing) {
  EncodingStats s;
  const ColumnMetadata m = ExtractMetadata(s);
  EXPECT_EQ(m.DetectedCount(), 0);
}

TEST(Metadata, MinMaxAndNullability) {
  const auto m = From({4, -2, 9});
  ASSERT_TRUE(m.min_max_known);
  EXPECT_EQ(m.min_value, -2);
  EXPECT_EQ(m.max_value, 9);
  ASSERT_TRUE(m.null_known);
  EXPECT_FALSE(m.has_nulls);
}

TEST(Metadata, NullsDetectedViaSentinel) {
  const auto m = From({4, kNullSentinel, 9});
  ASSERT_TRUE(m.null_known);
  EXPECT_TRUE(m.has_nulls);
}

TEST(Metadata, SortedFromDeltaSign) {
  EXPECT_TRUE(From({1, 1, 2, 5}).sorted);
  EXPECT_FALSE(From({1, 5, 2}).sorted);
}

TEST(Metadata, DenseUniqueFromAffineDeltaOne) {
  const auto m = From({10, 11, 12, 13});
  EXPECT_TRUE(m.sorted);
  EXPECT_TRUE(m.dense);   // enables fetch joins (Sect. 3.4.2)
  EXPECT_TRUE(m.unique);
}

TEST(Metadata, UniqueFromNonUnitConstantDelta) {
  const auto m = From({0, 5, 10, 15});
  EXPECT_TRUE(m.unique);
  EXPECT_FALSE(m.dense);
}

TEST(Metadata, UniqueFromFullCardinality) {
  const auto m = From({7, 3, 9, 1});
  EXPECT_TRUE(m.unique);
  EXPECT_FALSE(m.sorted);
}

TEST(Metadata, CardinalityFromDistinctTracking) {
  const auto m = From({5, 5, 7, 5, 7});
  ASSERT_TRUE(m.cardinality_known);
  EXPECT_EQ(m.cardinality, 2u);
}

TEST(Metadata, DetectedCountMatchesFig7Accounting) {
  // min + max + cardinality + nullability + sorted + dense + unique = 7.
  EXPECT_EQ(From({1, 2, 3}).DetectedCount(), 7);
  // Unsorted multiset: min, max, cardinality, nullability only.
  EXPECT_EQ(From({3, 1, 1}).DetectedCount(), 4);
}

TEST(Metadata, ToStringIsReadable) {
  const auto m = From({1, 2, 3});
  const std::string s = m.ToString();
  EXPECT_NE(s.find("sorted"), std::string::npos);
  EXPECT_NE(s.find("min=1"), std::string::npos);
}

}  // namespace
}  // namespace tde
