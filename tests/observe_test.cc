#include "src/observe/metrics.h"

#include <atomic>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "src/core/engine.h"
#include "src/observe/import_stats.h"
#include "src/observe/json.h"
#include "src/observe/query_stats.h"
#include "src/observe/trace.h"
#include "src/plan/executor.h"
#include "src/workload/tpch.h"
#include "tests/test_util.h"

namespace tde {
namespace {

using testutil::VectorSource;

TEST(Metrics, CounterConcurrentIncrements) {
  observe::MetricsRegistry reg;
  observe::Counter* c = reg.GetCounter("test.hits");
  constexpr int kThreads = 8;
  constexpr int kAdds = 10000;
  std::vector<std::thread> pool;
  for (int t = 0; t < kThreads; ++t) {
    pool.emplace_back([c]() {
      for (int i = 0; i < kAdds; ++i) c->Add();
    });
  }
  for (auto& t : pool) t.join();
  EXPECT_EQ(c->value(), uint64_t{kThreads} * kAdds);
  // Same name -> same handle; new name -> fresh handle.
  EXPECT_EQ(reg.GetCounter("test.hits"), c);
  EXPECT_NE(reg.GetCounter("test.other"), c);
}

TEST(Metrics, HistogramBucketing) {
  observe::MetricsRegistry reg;
  observe::Histogram* h = reg.GetHistogram("test.lat");
  h->Record(0);     // bucket 0
  h->Record(1);     // bucket 1: [1, 2)
  h->Record(2);     // bucket 2: [2, 4)
  h->Record(3);     // bucket 2
  h->Record(1024);  // bucket 11: [1024, 2048)
  EXPECT_EQ(h->bucket(0), 1u);
  EXPECT_EQ(h->bucket(1), 1u);
  EXPECT_EQ(h->bucket(2), 2u);
  EXPECT_EQ(h->bucket(11), 1u);
  EXPECT_EQ(h->count(), 5u);
  EXPECT_EQ(h->sum(), 1030u);
  EXPECT_EQ(observe::Histogram::BucketLow(0), 0u);
  EXPECT_EQ(observe::Histogram::BucketLow(1), 1u);
  EXPECT_EQ(observe::Histogram::BucketLow(11), 1024u);
  // Quantiles are approximate (bucket resolution) but must be ordered and
  // within the recorded range.
  EXPECT_LE(h->ApproxQuantile(0.5), h->ApproxQuantile(0.99));
  EXPECT_LE(h->ApproxQuantile(0.99), 2048u);
  h->Reset();
  EXPECT_EQ(h->count(), 0u);
  EXPECT_EQ(h->bucket(2), 0u);
}

TEST(Metrics, SnapshotAndJson) {
  observe::MetricsRegistry reg;
  reg.GetCounter("b.counter")->Add(7);
  reg.GetGauge("a.gauge")->Set(-3);
  reg.GetHistogram("c.hist")->Record(5);
  const auto snap = reg.Snapshot();
  ASSERT_EQ(snap.size(), 3u);
  // Sorted by name.
  EXPECT_EQ(snap[0].name, "a.gauge");
  EXPECT_EQ(snap[0].value, -3);
  EXPECT_EQ(snap[1].name, "b.counter");
  EXPECT_EQ(snap[1].value, 7);
  EXPECT_EQ(snap[2].kind, observe::MetricKind::kHistogram);
  const std::string json = reg.ToJson();
  EXPECT_NE(json.find("\"metrics\":["), std::string::npos);
  EXPECT_NE(json.find("\"b.counter\""), std::string::npos);
  reg.Reset();
  EXPECT_EQ(reg.GetCounter("b.counter")->value(), 0u);
}

TEST(Trace, ChromeJsonWellFormed) {
  observe::TraceRecorder& rec = observe::TraceRecorder::Global();
  rec.Clear();
  rec.set_enabled(true);
  {
    observe::TraceSpan outer("outer \"quoted\"", "test");
    observe::TraceSpan inner("inner\\path", "test");
  }
  rec.set_enabled(false);
  ASSERT_EQ(rec.size(), 2u);
  const std::string json = rec.ToChromeJson();
  EXPECT_EQ(json.rfind("{\"traceEvents\":[", 0), 0u);
  EXPECT_EQ(json.substr(json.size() - 2), "]}");
  // Special characters must be escaped, and spans are complete events.
  EXPECT_NE(json.find("outer \\\"quoted\\\""), std::string::npos);
  EXPECT_NE(json.find("inner\\\\path"), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"cat\":\"test\""), std::string::npos);
  // Balanced braces/brackets (no raw quotes can unbalance them: all
  // payload strings above are escaped).
  int depth = 0;
  for (char ch : json) {
    if (ch == '{' || ch == '[') ++depth;
    if (ch == '}' || ch == ']') --depth;
    ASSERT_GE(depth, 0);
  }
  EXPECT_EQ(depth, 0);
  rec.Clear();
}

TEST(Trace, DisabledRecorderDropsSpans) {
  observe::TraceRecorder& rec = observe::TraceRecorder::Global();
  rec.Clear();
  rec.set_enabled(false);
  { observe::TraceSpan s("ignored"); }
  EXPECT_EQ(rec.size(), 0u);
}

TEST(QueryStats, ResultCarriesOperatorTree) {
  observe::SetStatsEnabled(true);
  std::vector<Lane> keys, vals;
  for (int i = 0; i < 5000; ++i) {
    keys.push_back(i % 7);
    vals.push_back(i);
  }
  auto t = FlowTable::Build(VectorSource::Ints({{"k", keys}, {"v", vals}}))
               .MoveValue();
  auto result = ExecutePlan(
      Plan::Scan(t).Aggregate({"k"}, {{AggKind::kCountStar, "", "n"}}));
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  const observe::QueryStats* qs = result.value().stats();
  ASSERT_NE(qs, nullptr);
  ASSERT_NE(qs->root, nullptr);
  // The annotated root must agree with the materialized result.
  EXPECT_EQ(qs->root->rows, result.value().num_rows());
  uint64_t blocks = 0;
  for (const Block& b : result.value().blocks()) blocks += b.rows() > 0;
  EXPECT_EQ(qs->root->blocks, blocks);
  // The scan leaf saw every input row.
  const observe::OperatorStats* node = qs->root.get();
  while (!node->children.empty()) node = node->children[0].get();
  EXPECT_EQ(node->rows, keys.size());
  EXPECT_NE(node->name.find("TableScan"), std::string::npos);
  const std::string text = qs->ToString();
  EXPECT_NE(text.find("rows=7"), std::string::npos);
  EXPECT_NE(text.find("total:"), std::string::npos);
  const std::string json = qs->ToJson();
  EXPECT_NE(json.find("\"rows\":7"), std::string::npos);
}

TEST(QueryStats, DisabledCollectsNothing) {
  observe::SetStatsEnabled(false);
  auto t = FlowTable::Build(VectorSource::Ints({{"k", {1, 2, 3}}}))
               .MoveValue();
  auto result = ExecutePlan(Plan::Scan(t));
  observe::SetStatsEnabled(true);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result.value().stats(), nullptr);
}

TEST(ExplainAnalyze, CountsMatchExecutionOnTpch) {
  observe::SetStatsEnabled(true);
  Engine engine;
  ImportOptions opt;
  auto imported = engine.ImportTextBuffer(
      GenerateTpchTable(TpchTable::kLineitem, 0.002), "lineitem", opt);
  ASSERT_TRUE(imported.ok()) << imported.status().ToString();

  const std::string q =
      "SELECT l_returnflag, COUNT(*) AS n FROM lineitem "
      "WHERE l_quantity > 10 GROUP BY l_returnflag";
  auto direct = engine.ExecuteSql(q);
  ASSERT_TRUE(direct.ok()) << direct.status().ToString();
  const uint64_t expect_rows = direct.value().num_rows();
  ASSERT_GT(expect_rows, 0u);

  auto analyzed = engine.ExecuteSql("EXPLAIN ANALYZE " + q);
  ASSERT_TRUE(analyzed.ok()) << analyzed.status().ToString();
  // The rendering comes back as one row per line; the root line must carry
  // the actually executed row count.
  const std::string root_line = analyzed.value().ValueString(0, 0);
  EXPECT_NE(root_line.find("rows=" + std::to_string(expect_rows)),
            std::string::npos)
      << root_line;
  bool saw_notes = false;
  for (uint64_t r = 0; r < analyzed.value().num_rows(); ++r) {
    if (analyzed.value().ValueString(r, 0).find("tactical decisions") !=
        std::string::npos) {
      saw_notes = true;
    }
  }
  EXPECT_TRUE(saw_notes);

  // The plan-API variant hands back the executed result too.
  QueryResult run;
  auto text = ExplainAnalyzePlan(
      Plan::Scan(engine.database()->GetTable("lineitem").value())
          .Aggregate({"l_returnflag"}, {{AggKind::kCountStar, "", "n"}}),
      &run);
  ASSERT_TRUE(text.ok()) << text.status().ToString();
  ASSERT_NE(run.stats(), nullptr);
  EXPECT_EQ(run.stats()->root->rows, run.num_rows());
  EXPECT_NE(text.value().find("rows=" + std::to_string(run.num_rows())),
            std::string::npos);
}

TEST(ImportStats, TelemetryAndStatsTable) {
  observe::SetStatsEnabled(true);
  Engine engine;
  ImportOptions opt;
  Schema s;
  s.AddField({"k", TypeId::kInteger});
  s.AddField({"v", TypeId::kInteger});
  s.AddField({"name", TypeId::kString});
  opt.text.schema = s;
  opt.text.has_header = true;
  auto imported = engine.ImportTextBuffer(
      "k,v,name\n1,10,aa\n2,20,bb\n1,bad,aa\n3,40,cc\n", "t", opt);
  ASSERT_TRUE(imported.ok()) << imported.status().ToString();
  ASSERT_EQ(engine.import_stats().size(), 1u);
  const observe::ImportStats& st = engine.import_stats()[0];
  EXPECT_EQ(st.table_name, "t");
  EXPECT_EQ(st.rows, 4u);
  EXPECT_EQ(st.parse_errors, 1u);  // "bad" in an integer column
  EXPECT_GT(st.bytes_parsed, 0u);
  ASSERT_EQ(st.columns.size(), 3u);
  for (const observe::ColumnImportStats& c : st.columns) {
    EXPECT_EQ(c.rows, 4u);
    EXPECT_FALSE(c.encoding.empty());
    EXPECT_GT(c.input_bytes, 0u);
    EXPECT_GT(c.encoded_bytes, 0u);
  }
  const std::string json = st.ToJson();
  EXPECT_NE(json.find("\"table\":\"t\""), std::string::npos);
  EXPECT_NE(json.find("\"columns\":["), std::string::npos);
  EXPECT_NE(engine.StatsJson().find("\"imports\":["), std::string::npos);

  // The telemetry is queryable through the tde_stats virtual table.
  auto rows = engine.ExecuteSql(
      "SELECT metric, value FROM tde_stats "
      "WHERE metric = 'import.t.rows'");
  ASSERT_TRUE(rows.ok()) << rows.status().ToString();
  ASSERT_EQ(rows.value().num_rows(), 1u);
  EXPECT_EQ(rows.value().Value(0, 1), 4);
}


TEST(Metrics, ApproxQuantileEdgeCases) {
  observe::Histogram h;
  // Empty histogram: every quantile answers 0.
  EXPECT_EQ(h.ApproxQuantile(0.0), 0u);
  EXPECT_EQ(h.ApproxQuantile(0.5), 0u);
  EXPECT_EQ(h.ApproxQuantile(1.0), 0u);

  // A single sample: all quantiles land in its bucket.
  h.Record(7);
  const uint64_t only = h.ApproxQuantile(0.5);
  EXPECT_EQ(h.ApproxQuantile(0.0), only);
  EXPECT_EQ(h.ApproxQuantile(1.0), only);
  // Bucket midpoints stay in the sample's power-of-two bucket [4, 7].
  EXPECT_GE(only, 4u);
  EXPECT_LE(only, 7u);

  // Out-of-range q clamps instead of reading past the bucket array.
  EXPECT_EQ(h.ApproxQuantile(-3.0), h.ApproxQuantile(0.0));
  EXPECT_EQ(h.ApproxQuantile(42.0), h.ApproxQuantile(1.0));

  // Quantiles are monotone in q even across a wide value spread.
  h.Reset();
  EXPECT_EQ(h.count(), 0u);
  for (uint64_t v : {1ull, 10ull, 100ull, 1000ull, 100000ull}) h.Record(v);
  uint64_t prev = 0;
  for (double q : {0.0, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0}) {
    const uint64_t cur = h.ApproxQuantile(q);
    EXPECT_GE(cur, prev) << "q=" << q;
    prev = cur;
  }
  // The extremes bracket the data (to bucket resolution).
  EXPECT_LE(h.ApproxQuantile(0.0), 1u);
  EXPECT_GE(h.ApproxQuantile(1.0), 65536u);

  // Values at and beyond the last bucket boundary don't overflow.
  h.Reset();
  h.Record(~0ull);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_GT(h.ApproxQuantile(0.5), 0u);
}

TEST(Metrics, ConcurrentRecordAndReset) {
  // Record/Reset race freely; TSan (ci/run_tests.sh) checks the atomics,
  // this test checks the counts stay coherent: after the dust settles, a
  // final Reset+Record sequence observes exactly its own data.
  observe::Histogram h;
  std::atomic<bool> stop{false};
  std::vector<std::thread> writers;
  for (int t = 0; t < 4; ++t) {
    writers.emplace_back([&h, &stop, t] {
      uint64_t v = static_cast<uint64_t>(t) + 1;
      while (!stop.load(std::memory_order_relaxed)) {
        h.Record(v);
        v = v * 2 + 1;
        if (v > (1ull << 40)) v = 1;
      }
    });
  }
  for (int i = 0; i < 50; ++i) h.Reset();
  stop.store(true);
  for (auto& t : writers) t.join();
  h.Reset();
  for (int i = 0; i < 10; ++i) h.Record(5);
  EXPECT_EQ(h.count(), 10u);
  EXPECT_EQ(h.sum(), 50u);
}

TEST(Json, EscapesControlAndSpecialCharacters) {
  using observe::JsonEscape;
  EXPECT_EQ(JsonEscape("plain"), "plain");
  EXPECT_EQ(JsonEscape("a\"b"), "a\\\"b");
  EXPECT_EQ(JsonEscape("a\\b"), "a\\\\b");
  EXPECT_EQ(JsonEscape("a\nb\tc"), "a\\nb\\tc");
  // The ones ad-hoc escapers forget: \b \f \r and low control bytes.
  EXPECT_EQ(JsonEscape("\b\f\r"), "\\b\\f\\r");
  EXPECT_EQ(JsonEscape(std::string("\x01", 1)), "\\u0001");
  EXPECT_EQ(JsonEscape(std::string("\x1f", 1)), "\\u001f");
  // NUL embedded mid-string survives as an escape, not a truncation.
  EXPECT_EQ(JsonEscape(std::string("a\0b", 3)), "a\\u0000b");
  // High-bit bytes (UTF-8 payload) pass through untouched; in particular
  // 0x81 must not sign-extend into \uffffff81 (the old %04x-of-char bug).
  EXPECT_EQ(JsonEscape("\xc3\xa9"), "\xc3\xa9");
  EXPECT_EQ(JsonEscape(std::string("\x81", 1)), std::string("\x81", 1));

  std::string quoted;
  observe::AppendJsonString(&quoted, "say \"hi\"\n");
  EXPECT_EQ(quoted, "\"say \\\"hi\\\"\\n\"");
}

TEST(Json, ExportersEscapeEmbeddedStrings) {
  // Trace names with quotes/newlines used to corrupt the Chrome JSON.
  observe::TraceRecorder& rec = observe::TraceRecorder::Global();
  rec.set_enabled(true);
  rec.Clear();
  {
    observe::TraceSpan span("evil\"name\nline", "cat\\egory");
  }
  rec.set_enabled(false);
  const std::string json = rec.ToChromeJson();
  rec.Clear();
  EXPECT_NE(json.find("evil\\\"name\\nline"), std::string::npos) << json;
  EXPECT_NE(json.find("cat\\\\egory"), std::string::npos) << json;
  EXPECT_EQ(json.find('\n'), std::string::npos);

  // Import stats: a table name with a quote stays one JSON document.
  observe::ImportStats st;
  st.table_name = "t\"bl";
  observe::ColumnImportStats c;
  c.column = "c\\1";
  c.type = "integer";
  c.encoding = "delta";
  st.columns.push_back(c);
  const std::string sj = st.ToJson();
  EXPECT_NE(sj.find("\"table\":\"t\\\"bl\""), std::string::npos) << sj;
  EXPECT_NE(sj.find("\"column\":\"c\\\\1\""), std::string::npos) << sj;
}

}  // namespace
}  // namespace tde
