// Concurrent-query stress harness: many threads firing a mixed SQL
// workload (metadata counts, compressed filters, dict-grouped rollups,
// joins, exchange-wrapped plans) at ONE engine sharing ONE task-scheduler
// pool, with every answer checked against the single-threaded result.
// A second leg interleaves AppendRows with readers and asserts that no
// reader ever observes a torn batch.
//
// Tier-1 runs a bounded number of iterations; set TDE_STRESS_ITERS (and
// optionally TDE_STRESS_THREADS) for extended soak runs, e.g.
//   TDE_STRESS_ITERS=200 TDE_STRESS_THREADS=8 ./concurrency_test

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "src/core/engine.h"
#include "src/exec/scheduler.h"
#include "tests/test_util.h"

namespace tde {
namespace {

int EnvInt(const char* name, int fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  const int parsed = std::atoi(v);
  return parsed > 0 ? parsed : fallback;
}

int StressIters() { return EnvInt("TDE_STRESS_ITERS", 3); }
int StressThreads() { return EnvInt("TDE_STRESS_THREADS", 4); }

/// fact: fk (joins into dim.dk), v (numeric payload), s (low-cardinality
/// string, dictionary-encodes) — the shape the SQL generator uses.
std::string FactCsv(int rows) {
  static const char* kColors[] = {"red", "green", "blue", "teal"};
  std::string csv = "fk,v,s\n";
  for (int i = 0; i < rows; ++i) {
    csv += std::to_string(i % 20) + "," + std::to_string(i % 97) + "," +
           kColors[i % 4] + "\n";
  }
  return csv;
}

std::string DimCsv() {
  std::string csv = "dk,name\n";
  for (int i = 0; i < 20; ++i) {
    csv += std::to_string(i) + ",node" + std::to_string(i % 7) + "\n";
  }
  return csv;
}

TEST(ConcurrentQueries, MixedWorkloadMatchesSingleThreadedAnswers) {
  Engine engine;
  ImportOptions import;
  import.text.parallel = true;  // imports also ride the shared pool
  ASSERT_TRUE(engine.ImportTextBuffer(FactCsv(3000), "fact", import).ok());
  ASSERT_TRUE(engine.ImportTextBuffer(DimCsv(), "dim", import).ok());

  // Every query is fully ordered (or single-row) so rendered CSV is a
  // deterministic fingerprint of the answer.
  const std::vector<std::string> queries = {
      "SELECT COUNT(*) AS n FROM fact",
      "SELECT fk, SUM(v) AS sv FROM fact GROUP BY fk ORDER BY fk",
      "SELECT s, COUNT(*) AS n FROM fact GROUP BY s ORDER BY s",
      "SELECT SUM(v) AS sv FROM fact WHERE s = 'blue'",
      "SELECT fk, v FROM fact WHERE v < 9 ORDER BY fk, v LIMIT 50",
      "SELECT name, SUM(v) AS total FROM fact JOIN dim ON dim.dk = fk "
      "GROUP BY name ORDER BY name",
  };

  // Single-threaded reference answers, computed before any concurrency.
  std::vector<std::string> expected;
  for (const std::string& q : queries) {
    auto r = engine.ExecuteSql(q);
    ASSERT_TRUE(r.ok()) << q << ": " << r.status().ToString();
    expected.push_back(r.value().ToCsv());
  }

  const int iters = StressIters();
  const Status st = testutil::RunConcurrently(
      StressThreads(), [&](int t) -> Status {
        for (int iter = 0; iter < iters; ++iter) {
          for (size_t qi = 0; qi < queries.size(); ++qi) {
            // Rotate the starting query per thread/iteration so different
            // query shapes overlap instead of running in lockstep.
            const size_t q =
                (qi + static_cast<size_t>(t) + static_cast<size_t>(iter)) %
                queries.size();
            auto r = engine.ExecuteSql(queries[q]);
            if (!r.ok()) {
              return Status::Internal(queries[q] + ": " +
                                      r.status().ToString());
            }
            if (r.value().ToCsv() != expected[q]) {
              return Status::Internal(queries[q] +
                                      ": answer drifted under concurrency");
            }
          }
        }
        return Status::OK();
      });
  ASSERT_TRUE(st.ok()) << st.ToString();
}

TEST(ConcurrentQueries, ExchangeWrappedPlansShareThePool) {
  Engine engine;
  auto fact = engine.ImportTextBuffer(FactCsv(3000), "fact");
  ASSERT_TRUE(fact.ok()) << fact.status().ToString();
  std::shared_ptr<Table> table = fact.value();

  // Reference: total v over rows the compressed filter keeps.
  auto make_plan = [&]() {
    return Plan::Scan(table)
        .Filter(expr::Lt(expr::Col("v"), expr::Int(50)))
        .ExchangeBy(/*workers=*/0)  // auto: scheduler-suggested fan-out
        .Aggregate({}, {{AggKind::kSum, "v", "total"}});
  };
  auto ref = engine.Execute(make_plan());
  ASSERT_TRUE(ref.ok()) << ref.status().ToString();
  const std::string want = ref.value().ToCsv();

  const int iters = StressIters();
  const Status st = testutil::RunConcurrently(
      StressThreads(), [&](int) -> Status {
        for (int iter = 0; iter < iters * 2; ++iter) {
          auto r = engine.Execute(make_plan());
          if (!r.ok()) return r.status();
          if (r.value().ToCsv() != want) {
            return Status::Internal("exchange-wrapped sum drifted");
          }
        }
        return Status::OK();
      });
  ASSERT_TRUE(st.ok()) << st.ToString();
}

TEST(ConcurrentQueries, AppendsNeverTearForConcurrentReaders) {
  Engine engine;
  const int kBatchRows = 256;

  // Batch 0 arrives via import: a=0 for every row.
  std::string csv = "a,b\n";
  for (int i = 0; i < kBatchRows; ++i) {
    csv += "0," + std::to_string(i) + "\n";
  }
  ASSERT_TRUE(engine.ImportTextBuffer(std::move(csv), "grow").ok());

  const int appends = 4 * StressIters();
  std::atomic<bool> writer_done{false};

  // Thread 0 appends batch k (a=k throughout); readers must always see a
  // whole number of batches with the matching prefix checksum — the
  // engine's append/query exclusion makes half-applied appends invisible.
  const Status st = testutil::RunConcurrently(
      1 + StressThreads(), [&](int t) -> Status {
        if (t == 0) {
          for (int k = 1; k <= appends; ++k) {
            Block rows;
            for (int c = 0; c < 2; ++c) {
              ColumnVector cv;
              cv.type = TypeId::kInteger;
              for (int i = 0; i < kBatchRows; ++i) {
                cv.lanes.push_back(c == 0 ? Lane{k} : Lane{i});
              }
              rows.columns.push_back(std::move(cv));
            }
            auto n = engine.AppendRows("grow", rows);
            if (!n.ok()) {
              writer_done.store(true);
              return n.status();
            }
            // Give the readers a window between batches so intermediate
            // row counts are actually observed, not just the final one.
            std::this_thread::sleep_for(std::chrono::milliseconds(1));
          }
          writer_done.store(true);
          return Status::OK();
        }
        auto check_snapshot = [&]() -> Status {
          auto r = engine.ExecuteSql(
              "SELECT COUNT(*) AS c, SUM(a) AS sa FROM grow");
          if (!r.ok()) return r.status();
          const int64_t count = r.value().Value(0, 0);
          const int64_t sum = r.value().Value(0, 1);
          if (count % kBatchRows != 0) {
            return Status::Internal("torn append: count " +
                                    std::to_string(count));
          }
          const int64_t k = count / kBatchRows - 1;  // appended batches
          const int64_t want = kBatchRows * (k * (k + 1) / 2);
          if (sum != want) {
            return Status::Internal(
                "inconsistent snapshot at " + std::to_string(k) +
                " batches: SUM(a)=" + std::to_string(sum) + " want " +
                std::to_string(want));
          }
          return Status::OK();
        };
        while (!writer_done.load()) {
          TDE_RETURN_NOT_OK(check_snapshot());
          // Pace the readers: back-to-back shared locks from several
          // threads overlap continuously and starve the writer's
          // exclusive acquisition on reader-preferring rwlocks.
          std::this_thread::sleep_for(std::chrono::microseconds(200));
        }
        // One read after the writer finished: everything must be visible.
        auto r = engine.ExecuteSql("SELECT COUNT(*) AS c FROM grow");
        if (!r.ok()) return r.status();
        const int64_t final_count = r.value().Value(0, 0);
        if (final_count != int64_t{kBatchRows} * (appends + 1)) {
          return Status::Internal("final count " +
                                  std::to_string(final_count));
        }
        return Status::OK();
      });
  ASSERT_TRUE(st.ok()) << st.ToString();
}

}  // namespace
}  // namespace tde
