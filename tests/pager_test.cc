#include "src/storage/pager/format.h"

#include <cstdio>
#include <cstdlib>
#include <thread>

#include <gtest/gtest.h>

#include "src/core/engine.h"
#include "src/exec/flow_table.h"
#include "src/exec/table_scan.h"
#include "src/observe/metrics.h"
#include "src/storage/heap_accelerator.h"
#include "src/storage/pager/column_cache.h"
#include "src/storage/pager/crc32c.h"
#include "src/storage/pager/file_reader.h"

namespace tde {
namespace {

using pager::ColumnCache;
using pager::Crc32c;

std::shared_ptr<Column> MakeIntColumn(const std::string& name,
                                      const std::vector<Lane>& v) {
  ColumnBuildInput in;
  in.name = name;
  in.type = TypeId::kInteger;
  in.lanes = v;
  auto r = BuildColumn(std::move(in), FlowTableOptions{});
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  return r.MoveValue();
}

std::shared_ptr<Column> MakeStringColumn(
    const std::string& name, const std::vector<std::string>& strings) {
  ColumnBuildInput in;
  in.name = name;
  in.type = TypeId::kString;
  in.heap = std::make_shared<StringHeap>();
  HeapAccelerator acc(in.heap.get());
  for (const auto& s : strings) in.lanes.push_back(acc.Add(s));
  in.accel_active = true;
  in.accel_distinct = acc.distinct_count();
  in.accel_arrived_sorted = acc.arrived_sorted();
  auto r = BuildColumn(std::move(in), FlowTableOptions{});
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  return r.MoveValue();
}

/// Indexes into an explicit fixed-width dictionary (array compression).
std::shared_ptr<Column> MakeDictColumn(const std::string& name,
                                       const std::vector<Lane>& dict_values,
                                       const std::vector<Lane>& indexes) {
  auto col = MakeIntColumn(name, indexes);
  auto d = std::make_shared<ArrayDictionary>();
  d->type = TypeId::kInteger;
  d->values = dict_values;
  d->sorted = true;
  col->set_array_dict(std::move(d));
  col->set_compression(CompressionKind::kArrayDict);
  return col;
}

Database MakeDatabase() {
  Database db;
  auto t = std::make_shared<Table>("facts");
  t->AddColumn(MakeIntColumn("id", {1, 2, 3, 4, 5}));
  t->AddColumn(MakeIntColumn("v", {90, 80, 70, 60, 50}));
  t->AddColumn(MakeStringColumn("tag", {"b", "a", "b", "c", "a"}));
  t->AddColumn(MakeDictColumn("dim", {100, 200, 300}, {0, 2, 1, 0, 2}));
  db.AddTable(t);
  return db;
}

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

void WriteFile(const std::string& path, const std::vector<uint8_t>& bytes) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  ASSERT_EQ(std::fwrite(bytes.data(), 1, bytes.size(), f), bytes.size());
  std::fclose(f);
}

void CheckFactsTable(const Table& t) {
  ASSERT_EQ(t.num_columns(), 4u);
  EXPECT_EQ(t.rows(), 5u);

  auto id = t.ColumnByName("id").value();
  std::vector<Lane> lanes(5);
  ASSERT_TRUE(id->GetLanes(0, 5, lanes.data()).ok());
  EXPECT_EQ(lanes, (std::vector<Lane>{1, 2, 3, 4, 5}));
  EXPECT_TRUE(id->metadata().dense);
  EXPECT_TRUE(id->metadata().unique);

  auto tag = t.ColumnByName("tag").value();
  ASSERT_TRUE(tag->GetLanes(0, 5, lanes.data()).ok());
  auto pin = tag->Pin();
  ASSERT_TRUE(pin.ok()) << pin.status().ToString();
  EXPECT_EQ(tag->GetString(lanes[0]), "b");
  EXPECT_EQ(tag->GetString(lanes[3]), "c");
  EXPECT_EQ(tag->GetString(lanes[4]), "a");

  auto dim = t.ColumnByName("dim").value();
  ASSERT_TRUE(dim->GetLanes(0, 5, lanes.data()).ok());
  auto dim_pin = dim->Pin();
  ASSERT_TRUE(dim_pin.ok());
  const ArrayDictionary* d = dim->array_dict();
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->values[static_cast<size_t>(lanes[1])], 300);
  EXPECT_EQ(d->values[static_cast<size_t>(lanes[4])], 300);
}

TEST(Crc32cTest, KnownVectors) {
  // RFC 3720 test vector: 32 zero bytes.
  std::vector<uint8_t> zeros(32, 0);
  EXPECT_EQ(Crc32c(zeros.data(), zeros.size()), 0x8A9136AAu);
  const char* s = "123456789";
  EXPECT_EQ(Crc32c(reinterpret_cast<const uint8_t*>(s), 9), 0xE3069283u);
  EXPECT_EQ(Crc32c(nullptr, 0), 0u);
}

TEST(FormatV2, EagerRoundTripThroughDeserializeDatabase) {
  Database db = MakeDatabase();
  std::vector<uint8_t> bytes;
  ASSERT_TRUE(pager::SerializeDatabaseV2(db, &bytes).ok());
  ASSERT_TRUE(pager::IsV2Magic(bytes.data(), bytes.size()));

  // DeserializeDatabase sniffs the v2 magic and takes the eager v2 path.
  auto back = DeserializeDatabase(bytes);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  auto t = back.value().GetTable("facts");
  ASSERT_TRUE(t.ok());
  CheckFactsTable(*t.value());
}

TEST(FormatV2, LazyOpenRoundTrip) {
  const std::string path = TempPath("pager_roundtrip.tde");
  ASSERT_TRUE(pager::WriteDatabaseV2(MakeDatabase(), path).ok());

  auto cache = std::make_shared<ColumnCache>(64ull << 20);
  auto db = pager::OpenDatabaseV2(path, cache);
  ASSERT_TRUE(db.ok()) << db.status().ToString();
  auto t = db.value().GetTable("facts");
  ASSERT_TRUE(t.ok());

  // Everything is cold after an O(directory) open.
  for (size_t i = 0; i < t.value()->num_columns(); ++i) {
    EXPECT_TRUE(t.value()->column(i).cold());
    EXPECT_FALSE(t.value()->column(i).resident());
  }
  CheckFactsTable(*t.value());
  std::remove(path.c_str());
}

TEST(FormatV2, DirectorySurvivesWithoutFaultingData) {
  const std::string path = TempPath("pager_meta.tde");
  ASSERT_TRUE(pager::WriteDatabaseV2(MakeDatabase(), path).ok());
  auto cache = std::make_shared<ColumnCache>(64ull << 20);
  auto db = pager::OpenDatabaseV2(path, cache);
  ASSERT_TRUE(db.ok());
  auto t = db.value().GetTable("facts").value();

  // Planner-facing facts answer from the directory; nothing materializes.
  auto id = t->ColumnByName("id").value();
  EXPECT_EQ(id->rows(), 5u);
  EXPECT_GT(id->PhysicalSize(), 0u);
  EXPECT_EQ(id->LogicalSize(), 40u);
  EXPECT_TRUE(id->metadata().unique);
  (void)id->encoding_type();
  (void)id->TokenWidth();
  for (size_t i = 0; i < t->num_columns(); ++i) {
    EXPECT_FALSE(t->column(i).resident());
  }
  EXPECT_EQ(cache->bytes_resident(), 0u);
  std::remove(path.c_str());
}

TEST(FormatV2, ColdOpenMaterializesOnlyTouchedColumns) {
  // The assertions below read pager counters, which only move with the
  // stats layer on (a TDE_STATS=0 CI pass runs this suite too).
  observe::SetStatsEnabled(true);
  const std::string path = TempPath("pager_cold.tde");
  ASSERT_TRUE(pager::WriteDatabaseV2(MakeDatabase(), path).ok());
  auto& reg = observe::MetricsRegistry::Global();
  reg.Reset();

  auto cache = std::make_shared<ColumnCache>(64ull << 20);
  auto db = pager::OpenDatabaseV2(path, cache);
  ASSERT_TRUE(db.ok());
  auto t = db.value().GetTable("facts").value();

  // Scan 2 of the 4 columns through the real operator.
  TableScanOptions opts;
  opts.columns = {"id", "tag"};
  TableScan scan(t, opts);
  ASSERT_TRUE(scan.Open().ok());
  Block b;
  bool eos = false;
  uint64_t rows = 0;
  while (!eos) {
    ASSERT_TRUE(scan.Next(&b, &eos).ok());
    if (!eos) rows += b.rows();
  }
  scan.Close();
  EXPECT_EQ(rows, 5u);

  EXPECT_TRUE(t->ColumnByName("id").value()->resident());
  EXPECT_TRUE(t->ColumnByName("tag").value()->resident());
  EXPECT_FALSE(t->ColumnByName("v").value()->resident());
  EXPECT_FALSE(t->ColumnByName("dim").value()->resident());
  EXPECT_EQ(reg.GetCounter("pager.misses")->value(), 2u);
  EXPECT_GT(reg.GetGauge("pager.bytes_resident")->value(), 0);
  std::remove(path.c_str());
}

TEST(FormatV2, EvictionUnderTightBudgetStillAnswersCorrectly) {
  const std::string path = TempPath("pager_evict.tde");
  ASSERT_TRUE(pager::WriteDatabaseV2(MakeDatabase(), path).ok());
  auto& reg = observe::MetricsRegistry::Global();
  reg.Reset();

  // A 1-byte budget: every materialization is over budget, so each new
  // load evicts whatever unpinned payload preceded it.
  auto cache = std::make_shared<ColumnCache>(1);
  auto db = pager::OpenDatabaseV2(path, cache);
  ASSERT_TRUE(db.ok());
  auto t = db.value().GetTable("facts").value();

  for (int round = 0; round < 3; ++round) {
    CheckFactsTable(*t);
  }
  EXPECT_GT(reg.GetCounter("pager.evictions")->value(), 0u);
  // With no pins outstanding, at most the last loaded column lingers.
  EXPECT_LE(cache->bytes_resident(),
            t->ColumnByName("tag").value()->PhysicalSize() +
                t->ColumnByName("dim").value()->PhysicalSize());
  std::remove(path.c_str());
}

TEST(FormatV2, CorruptBlobFailsWithStatusNamingTheColumn) {
  Database db = MakeDatabase();
  std::vector<uint8_t> bytes;
  pager::WriteOptionsV2 wopts;
  wopts.page_size = 512;
  ASSERT_TRUE(pager::SerializeDatabaseV2(db, &bytes, wopts).ok());

  // Flip one bit inside the first blob (the "id" stream at the first page).
  std::vector<uint8_t> bad = bytes;
  bad[512 + 9] ^= 0x40;
  const std::string path = TempPath("pager_corrupt.tde");
  WriteFile(path, bad);

  auto cache = std::make_shared<ColumnCache>(64ull << 20);
  auto opened = pager::OpenDatabaseV2(path, cache);
  ASSERT_TRUE(opened.ok()) << "open is O(directory), blobs unread";
  auto t = opened.value().GetTable("facts").value();
  auto id = t->ColumnByName("id").value();
  Lane lane;
  const Status st = id->GetLanes(0, 1, &lane);
  EXPECT_EQ(st.code(), StatusCode::kIOError);
  EXPECT_NE(st.message().find("facts.id"), std::string::npos)
      << st.ToString();
  EXPECT_NE(st.message().find("checksum"), std::string::npos);
  // Untouched columns still answer.
  auto tag = t->ColumnByName("tag").value();
  std::vector<Lane> lanes(5);
  EXPECT_TRUE(tag->GetLanes(0, 5, lanes.data()).ok());
  std::remove(path.c_str());
}

TEST(FormatV2, HeaderAndDirectoryCorruptionFailTheOpen) {
  Database db = MakeDatabase();
  std::vector<uint8_t> bytes;
  ASSERT_TRUE(pager::SerializeDatabaseV2(db, &bytes).ok());

  {  // Header bit flip: checksum catches it.
    std::vector<uint8_t> bad = bytes;
    bad[20] ^= 1;
    EXPECT_FALSE(pager::ParseDirectoryV2(bad).ok());
  }
  {  // Directory bit flip (last byte of the file is directory tail).
    std::vector<uint8_t> bad = bytes;
    bad[bad.size() - 1] ^= 1;
    EXPECT_FALSE(pager::ParseDirectoryV2(bad).ok());
  }
  {  // Truncations never crash, always IOError.
    for (size_t keep : {0ul, 7ul, 63ul, 64ul, 1000ul, bytes.size() - 1}) {
      if (keep >= bytes.size()) continue;
      std::vector<uint8_t> bad(bytes.begin(),
                               bytes.begin() + static_cast<ptrdiff_t>(keep));
      EXPECT_FALSE(pager::ParseDirectoryV2(bad).ok()) << keep;
    }
  }
}

TEST(FormatV2, PreadFallbackMatchesMmap) {
  const std::string path = TempPath("pager_pread.tde");
  ASSERT_TRUE(pager::WriteDatabaseV2(MakeDatabase(), path).ok());

  ::setenv("TDE_NO_MMAP", "1", 1);
  auto cache = std::make_shared<ColumnCache>(64ull << 20);
  auto db = pager::OpenDatabaseV2(path, cache);
  ::unsetenv("TDE_NO_MMAP");
  ASSERT_TRUE(db.ok()) << db.status().ToString();
  auto t = db.value().GetTable("facts").value();
  CheckFactsTable(*t);
  std::remove(path.c_str());
}

TEST(FormatV2, ConcurrentQueriesUnderTightBudget) {
  const std::string path = TempPath("pager_threads.tde");
  ASSERT_TRUE(pager::WriteDatabaseV2(MakeDatabase(), path).ok());
  auto cache = std::make_shared<ColumnCache>(1);  // constant churn
  auto db = pager::OpenDatabaseV2(path, cache);
  ASSERT_TRUE(db.ok());
  auto t = db.value().GetTable("facts").value();

  std::vector<std::thread> threads;
  std::atomic<int> failures{0};
  for (int w = 0; w < 4; ++w) {
    threads.emplace_back([&] {
      for (int i = 0; i < 50; ++i) {
        std::vector<Lane> lanes(5);
        auto id = t->ColumnByName("id").value();
        auto tag = t->ColumnByName("tag").value();
        if (!id->GetLanes(0, 5, lanes.data()).ok() ||
            lanes != std::vector<Lane>({1, 2, 3, 4, 5})) {
          ++failures;
        }
        auto pin = tag->Pin();
        if (!pin.ok() || !tag->GetLanes(0, 5, lanes.data()).ok() ||
            tag->GetString(lanes[3]) != "c") {
          ++failures;
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(failures.load(), 0);
  std::remove(path.c_str());
}

TEST(FormatV2, SaveOfLazyDatabaseCopiesThrough) {
  const std::string path = TempPath("pager_resave_src.tde");
  const std::string path2 = TempPath("pager_resave_dst.tde");
  ASSERT_TRUE(pager::WriteDatabaseV2(MakeDatabase(), path).ok());
  auto cache = std::make_shared<ColumnCache>(64ull << 20);
  auto db = pager::OpenDatabaseV2(path, cache);
  ASSERT_TRUE(db.ok());

  // Serializing a cold database pins each column in turn (v1 and v2).
  ASSERT_TRUE(pager::WriteDatabaseV2(db.value(), path2).ok());
  auto back = pager::OpenDatabaseV2(path2, cache);
  ASSERT_TRUE(back.ok());
  CheckFactsTable(*back.value().GetTable("facts").value());

  std::vector<uint8_t> v1_bytes;
  ASSERT_TRUE(SerializeDatabase(db.value(), &v1_bytes).ok());
  auto v1_back = DeserializeDatabase(v1_bytes);
  ASSERT_TRUE(v1_back.ok());
  CheckFactsTable(*v1_back.value().GetTable("facts").value());
  std::remove(path.c_str());
  std::remove(path2.c_str());
}

TEST(FormatV2, SaveToSourcePathOfLazyDatabaseKeepsColdReadsValid) {
  const std::string path = TempPath("pager_inplace.tde");
  ASSERT_TRUE(pager::WriteDatabaseV2(MakeDatabase(), path).ok());
  auto cache = std::make_shared<ColumnCache>(64ull << 20);
  auto db = pager::OpenDatabaseV2(path, cache);
  ASSERT_TRUE(db.ok());
  auto t = db.value().GetTable("facts").value();

  // Materialize one column; the rest stay cold against the open file.
  std::vector<Lane> lanes(5);
  ASSERT_TRUE(t->ColumnByName("id").value()->GetLanes(0, 5, lanes.data()).ok());

  // The open→optimize→save flow: rewrite the file the engine is lazily
  // reading from. The temp-file + rename() switch keeps the old inode
  // alive under the engine's mmap/fd, so cold directory offsets stay valid.
  ASSERT_TRUE(pager::WriteDatabaseV2(db.value(), path).ok());
  std::FILE* leftover = std::fopen((path + ".tmp").c_str(), "rb");
  EXPECT_EQ(leftover, nullptr) << "temp file must not survive the rename";
  if (leftover != nullptr) std::fclose(leftover);

  // Still-cold columns fault in through the original mapping.
  CheckFactsTable(*t);

  // Evict everything and re-read: evicted columns also reload correctly
  // after the save (reads go to the original inode, not the new file).
  cache->set_budget_bytes(0);
  for (size_t i = 0; i < t->num_columns(); ++i) {
    EXPECT_FALSE(t->column(i).resident());
  }
  CheckFactsTable(*t);

  // And the rewritten file itself opens clean.
  auto cache2 = std::make_shared<ColumnCache>(64ull << 20);
  auto reopened = pager::OpenDatabaseV2(path, cache2);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  CheckFactsTable(*reopened.value().GetTable("facts").value());
  std::remove(path.c_str());
}

TEST(FormatV2, WarmRacesWithConcurrentReaders) {
  const std::string path = TempPath("pager_warmrace.tde");
  ASSERT_TRUE(pager::WriteDatabaseV2(MakeDatabase(), path).ok());
  for (int round = 0; round < 20; ++round) {
    auto cache = std::make_shared<ColumnCache>(1);  // constant churn
    auto db = pager::OpenDatabaseV2(path, cache);
    ASSERT_TRUE(db.ok());
    auto t = db.value().GetTable("facts").value();
    auto tag = t->ColumnByName("tag").value();

    std::atomic<int> failures{0};
    std::vector<std::thread> readers;
    for (int w = 0; w < 3; ++w) {
      readers.emplace_back([&] {
        for (int i = 0; i < 30; ++i) {
          std::vector<Lane> lanes(5);
          auto pin = tag->Pin();
          if (!pin.ok() || !tag->GetLanes(0, 5, lanes.data()).ok() ||
              tag->GetString(lanes[3]) != "c") {
            ++failures;
          }
          (void)tag->rows();
          (void)tag->PhysicalSize();
          (void)tag->encoding_type();
        }
      });
    }
    // Warm mid-flight, as OptimizeTable would on a live shared table.
    std::thread warmer([&] {
      if (!tag->Warm().ok()) ++failures;
    });
    for (auto& th : readers) th.join();
    warmer.join();
    EXPECT_EQ(failures.load(), 0);
    EXPECT_FALSE(tag->cold());
  }
  std::remove(path.c_str());
}

TEST(FormatV2, ConcurrentLoadsOfDistinctColumnsDoNotSerialize) {
  const std::string path = TempPath("pager_parallel.tde");
  ASSERT_TRUE(pager::WriteDatabaseV2(MakeDatabase(), path).ok());
  auto cache = std::make_shared<ColumnCache>(64ull << 20);
  auto db = pager::OpenDatabaseV2(path, cache);
  ASSERT_TRUE(db.ok());
  auto t = db.value().GetTable("facts").value();

  // Four threads fault in four different columns at once; each load runs
  // its I/O outside the cache lock, and every result must be correct.
  const char* names[] = {"id", "v", "tag", "dim"};
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (const char* name : names) {
    threads.emplace_back([&, name] {
      auto col = t->ColumnByName(name).value();
      std::vector<Lane> lanes(5);
      for (int i = 0; i < 20; ++i) {
        if (!col->GetLanes(0, 5, lanes.data()).ok()) ++failures;
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(failures.load(), 0);
  for (const char* name : names) {
    EXPECT_TRUE(t->ColumnByName(name).value()->resident()) << name;
  }
  std::remove(path.c_str());
}

TEST(EngineV2, OpenDatabaseIsLazyAndStatsAreVisibleInSql) {
  Engine engine;
  std::vector<Lane> big(10000);
  for (size_t i = 0; i < big.size(); ++i) big[i] = static_cast<Lane>(i % 7);
  auto t = std::make_shared<Table>("t");
  t->AddColumn(MakeIntColumn("a", big));
  t->AddColumn(MakeIntColumn("b", big));
  engine.database()->AddTable(t);

  const std::string path = TempPath("pager_engine.tde");
  ASSERT_TRUE(engine.SaveDatabase(path).ok());

  observe::SetStatsEnabled(true);  // the test reads pager.misses below
  observe::MetricsRegistry::Global().Reset();
  Engine::OpenOptions oopts;
  oopts.cache_budget_bytes = 32ull << 20;
  auto reopened = Engine::OpenDatabase(path, oopts);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  Engine& e2 = reopened.value();
  ASSERT_NE(e2.column_cache(), nullptr);
  EXPECT_EQ(e2.column_cache()->bytes_resident(), 0u);

  // A single-column aggregate touches only column `a`.
  auto r = e2.ExecuteSql("SELECT SUM(a) AS s FROM t");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  auto t2 = e2.database()->GetTable("t").value();
  EXPECT_TRUE(t2->ColumnByName("a").value()->resident());
  EXPECT_FALSE(t2->ColumnByName("b").value()->resident());

  // The pager metrics are visible through the tde_stats virtual table.
  auto stats = e2.ExecuteSql(
      "SELECT metric, value FROM tde_stats WHERE metric = 'pager.misses'");
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  ASSERT_EQ(stats.value().num_rows(), 1u);
  const Block& sb = stats.value().blocks()[0];
  EXPECT_EQ(sb.columns[1].lanes[0], 1);  // exactly one column materialized
  std::remove(path.c_str());
}

TEST(EngineV2, V1FilesStillOpen) {
  Database db = MakeDatabase();
  const std::string path = TempPath("pager_v1.tde");
  ASSERT_TRUE(WriteDatabase(db, path).ok());  // v1 writer
  auto e = Engine::OpenDatabase(path);
  ASSERT_TRUE(e.ok()) << e.status().ToString();
  EXPECT_EQ(e.value().column_cache(), nullptr);  // eager: no cache
  CheckFactsTable(*e.value().database()->GetTable("facts").value());
  std::remove(path.c_str());
}

TEST(EngineV2, OptimizeTableDoesNotDetachRejectedForCandidates) {
  Engine engine;
  // Range 65536 (16-bit FOR packing, > the 15-bit dictionary cap) and more
  // distinct values than the dictionary tracker follows, so the encoder
  // picks frame-of-reference and OptimizeTable must reject the column.
  std::vector<Lane> wide(70000);
  for (size_t i = 0; i < wide.size(); ++i) {
    wide[i] = 1000000 + static_cast<Lane>((i * 48271) % 65536);
  }
  auto t = std::make_shared<Table>("w");
  t->AddColumn(MakeIntColumn("a", wide));
  engine.database()->AddTable(t);
  ASSERT_EQ(t->column(0).encoding_type(), EncodingType::kFrameOfReference);
  ASSERT_GT(t->column(0).data()->bits(), 15);

  const std::string path = TempPath("pager_optreject.tde");
  ASSERT_TRUE(engine.SaveDatabase(path).ok());

  Engine::OpenOptions oopts;
  oopts.cache_budget_bytes = 32ull << 20;
  auto reopened = Engine::OpenDatabase(path, oopts);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  Engine& e2 = reopened.value();
  auto converted = e2.OptimizeTable("w");
  ASSERT_TRUE(converted.ok()) << converted.status().ToString();
  EXPECT_EQ(converted.value(), 0);

  // The bit-width peek used a transient pin, not Warm(): the rejected
  // candidate stays cold and its payload still answers to the budget.
  auto col = e2.database()->GetTable("w").value()->ColumnByName("a").value();
  EXPECT_TRUE(col->cold());
  ASSERT_NE(e2.column_cache(), nullptr);
  e2.column_cache()->set_budget_bytes(0);
  EXPECT_FALSE(col->resident());
  std::remove(path.c_str());
}

TEST(EngineV2, WarmPromotesAndDetachesFromCache) {
  const std::string path = TempPath("pager_warm.tde");
  ASSERT_TRUE(pager::WriteDatabaseV2(MakeDatabase(), path).ok());
  auto cache = std::make_shared<ColumnCache>(64ull << 20);
  auto db = pager::OpenDatabaseV2(path, cache);
  ASSERT_TRUE(db.ok());
  auto t = db.value().GetTable("facts").value();
  auto id = t->ColumnByName("id").value();
  ASSERT_TRUE(id->Warm().ok());
  EXPECT_FALSE(id->cold());
  EXPECT_EQ(cache->bytes_resident(), 0u);
  std::vector<Lane> lanes(5);
  ASSERT_TRUE(id->GetLanes(0, 5, lanes.data()).ok());
  EXPECT_EQ(lanes, (std::vector<Lane>{1, 2, 3, 4, 5}));
  std::remove(path.c_str());
}

}  // namespace
}  // namespace tde
