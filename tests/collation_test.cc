#include "src/common/collation.h"

#include <gtest/gtest.h>

namespace tde {
namespace {

TEST(Collation, BinaryOrdersBytes) {
  EXPECT_LT(Collate(Collation::kBinary, "Apple", "apple"), 0);
  EXPECT_EQ(Collate(Collation::kBinary, "abc", "abc"), 0);
  EXPECT_GT(Collate(Collation::kBinary, "abd", "abc"), 0);
  EXPECT_LT(Collate(Collation::kBinary, "ab", "abc"), 0);
}

TEST(Collation, LocaleFoldsCase) {
  EXPECT_LT(Collate(Collation::kLocale, "apple", "BANANA"), 0);
  EXPECT_GT(Collate(Collation::kLocale, "cherry", "BANANA"), 0);
}

TEST(Collation, LocaleIsTotalOrder) {
  // Case differences break ties deterministically.
  const int ab = Collate(Collation::kLocale, "Apple", "apple");
  const int ba = Collate(Collation::kLocale, "apple", "Apple");
  EXPECT_NE(ab, 0);
  EXPECT_EQ(ab > 0, ba < 0);
}

TEST(Collation, LocaleFoldsLatin1Accents) {
  const std::string a = "caf\xE9";  // café in Latin-1
  const std::string b = "cafe";
  // Primary weights equal; tie broken by bytes, so order is consistent
  // but 'é' sorts adjacent to 'e', not after 'z'.
  const std::string z = "cafz";
  EXPECT_LT(Collate(Collation::kLocale, a, z), 0);
  EXPECT_GT(Collate(Collation::kBinary, a, z), 0);
  (void)b;
}

TEST(CollationHash, EqualStringsHashAlike) {
  EXPECT_EQ(CollationHash(Collation::kBinary, "abc"),
            CollationHash(Collation::kBinary, "abc"));
  EXPECT_NE(CollationHash(Collation::kBinary, "abc"),
            CollationHash(Collation::kBinary, "abd"));
}

TEST(CollationHash, LocaleHashFoldsCase) {
  EXPECT_EQ(CollationHash(Collation::kLocale, "ABC"),
            CollationHash(Collation::kLocale, "abc"));
  EXPECT_NE(CollationHash(Collation::kBinary, "ABC"),
            CollationHash(Collation::kBinary, "abc"));
}

TEST(Collation, EmptyStrings) {
  EXPECT_EQ(Collate(Collation::kLocale, "", ""), 0);
  EXPECT_LT(Collate(Collation::kLocale, "", "a"), 0);
}

}  // namespace
}  // namespace tde
