#ifndef TDE_TESTS_TEST_UTIL_H_
#define TDE_TESTS_TEST_UTIL_H_

#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "src/exec/block.h"
#include "src/exec/flow_table.h"
#include "src/storage/heap_accelerator.h"

namespace tde {
namespace testutil {

/// A flow operator backed by in-memory lanes (column-major).
class VectorSource : public Operator {
 public:
  VectorSource(Schema schema, std::vector<ColumnVector> columns)
      : schema_(std::move(schema)), columns_(std::move(columns)) {}

  static std::unique_ptr<VectorSource> Ints(
      std::vector<std::pair<std::string, std::vector<Lane>>> cols) {
    Schema schema;
    std::vector<ColumnVector> data;
    for (auto& [name, lanes] : cols) {
      schema.AddField({name, TypeId::kInteger});
      ColumnVector cv;
      cv.type = TypeId::kInteger;
      cv.lanes = std::move(lanes);
      data.push_back(std::move(cv));
    }
    return std::make_unique<VectorSource>(std::move(schema), std::move(data));
  }

  /// Adds a string column built from literal values.
  void AddStringColumn(const std::string& name,
                       const std::vector<std::string>& values) {
    schema_.AddField({name, TypeId::kString});
    ColumnVector cv;
    cv.type = TypeId::kString;
    auto heap = std::make_shared<StringHeap>();
    HeapAccelerator acc(heap.get());
    for (const auto& s : values) cv.lanes.push_back(acc.Add(s));
    cv.heap = std::move(heap);
    columns_.push_back(std::move(cv));
  }

  Status Open() override {
    row_ = 0;
    return Status::OK();
  }

  Status Next(Block* block, bool* eos) override {
    const uint64_t total = columns_.empty() ? 0 : columns_[0].lanes.size();
    if (row_ >= total) {
      block->columns.clear();
      *eos = true;
      return Status::OK();
    }
    const size_t take =
        static_cast<size_t>(std::min<uint64_t>(kBlockSize, total - row_));
    block->columns.clear();
    for (const ColumnVector& src : columns_) {
      ColumnVector cv;
      cv.type = src.type;
      cv.heap = src.heap;
      cv.lanes.assign(
          src.lanes.begin() + static_cast<ptrdiff_t>(row_),
          src.lanes.begin() + static_cast<ptrdiff_t>(row_ + take));
      block->columns.push_back(std::move(cv));
    }
    row_ += take;
    *eos = false;
    return Status::OK();
  }

  const Schema& output_schema() const override { return schema_; }

 private:
  Schema schema_;
  std::vector<ColumnVector> columns_;
  uint64_t row_ = 0;
};

/// Flattens one column of drained blocks into a lane vector.
inline std::vector<Lane> Flatten(const std::vector<Block>& blocks,
                                 size_t col) {
  std::vector<Lane> out;
  for (const Block& b : blocks) {
    out.insert(out.end(), b.columns[col].lanes.begin(),
               b.columns[col].lanes.end());
  }
  return out;
}

/// Runs `fn(thread_index)` on `n` threads simultaneously (a start barrier
/// maximizes interleaving) and returns the first failure, prefixed with
/// the failing thread's index so a seeded workload can be replayed:
/// "[thread 3] <status>". OK when every thread succeeded. gtest-free so
/// scheduler/engine stress drivers and benchmarks can share it; in a test,
/// assert `RunConcurrently(...).ok()`.
inline Status RunConcurrently(int n,
                              const std::function<Status(int)>& fn) {
  std::mutex mu;
  std::condition_variable cv;
  int ready = 0;
  bool go = false;
  Status first_failure;
  std::vector<std::thread> threads;
  threads.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    threads.emplace_back([&, i]() {
      {
        std::unique_lock<std::mutex> lock(mu);
        if (++ready == n) {
          go = true;
          cv.notify_all();
        } else {
          cv.wait(lock, [&]() { return go; });
        }
      }
      Status st = fn(i);
      if (!st.ok()) {
        std::lock_guard<std::mutex> lock(mu);
        if (first_failure.ok()) {
          first_failure = Status(st.code(), "[thread " + std::to_string(i) +
                                                "] " + std::string(st.message()));
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  return first_failure;
}

/// Drains an operator, aborting on failure (gtest-free so benchmarks can
/// share this header).
inline std::vector<Block> Drain(Operator* op) {
  std::vector<Block> out;
  const Status st = DrainOperator(op, &out);
  if (!st.ok()) {
    std::fprintf(stderr, "Drain failed: %s\n", st.ToString().c_str());
    std::abort();
  }
  return out;
}

}  // namespace testutil
}  // namespace tde

#endif  // TDE_TESTS_TEST_UTIL_H_
