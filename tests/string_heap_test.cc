#include "src/storage/string_heap.h"

#include <gtest/gtest.h>

#include "src/storage/heap_accelerator.h"

namespace tde {
namespace {

TEST(StringHeap, AddAndGet) {
  StringHeap h;
  const Lane a = h.Add("hello");
  const Lane b = h.Add("world");
  EXPECT_EQ(h.Get(a), "hello");
  EXPECT_EQ(h.Get(b), "world");
  EXPECT_EQ(h.entry_count(), 2u);
  // Tokens are byte offsets: 4-byte header + 5 chars.
  EXPECT_EQ(a, 0);
  EXPECT_EQ(b, 9);
}

TEST(StringHeap, EmptyStringIsStorable) {
  StringHeap h;
  const Lane t = h.Add("");
  EXPECT_EQ(h.Get(t), "");
}

TEST(StringHeap, AllTokensWalksEntries) {
  StringHeap h;
  std::vector<Lane> expect;
  for (const char* s : {"a", "bb", "ccc"}) expect.push_back(h.Add(s));
  EXPECT_EQ(h.AllTokens(), expect);
}

TEST(StringHeap, SortedHeapComparesTokensDirectly) {
  StringHeap h;
  const Lane a = h.Add("apple");
  const Lane b = h.Add("banana");
  h.set_sorted(true);
  EXPECT_LT(h.CompareTokens(a, b), 0);
  EXPECT_GT(h.CompareTokens(b, a), 0);
  EXPECT_EQ(h.CompareTokens(a, a), 0);
}

TEST(StringHeap, UnsortedHeapCollates) {
  StringHeap h(Collation::kLocale);
  const Lane b = h.Add("banana");
  const Lane a = h.Add("APPLE");
  EXPECT_FALSE(h.sorted());
  EXPECT_LT(h.CompareTokens(a, b), 0);  // case-folded order, not token order
}

TEST(StringHeap, FromPartsRestoresState) {
  StringHeap h;
  h.Add("x");
  h.Add("y");
  StringHeap copy = StringHeap::FromParts(h.buffer(), h.entry_count(), true,
                                          Collation::kBinary);
  EXPECT_EQ(copy.Get(0), "x");
  EXPECT_TRUE(copy.sorted());
  EXPECT_EQ(copy.entry_count(), 2u);
}

TEST(Accelerator, DeduplicatesStrings) {
  StringHeap h;
  HeapAccelerator acc(&h);
  const Lane a1 = acc.Add("dup");
  const Lane b = acc.Add("other");
  const Lane a2 = acc.Add("dup");
  EXPECT_EQ(a1, a2);
  EXPECT_NE(a1, b);
  EXPECT_EQ(h.entry_count(), 2u);
  EXPECT_EQ(acc.distinct_count(), 2u);
}

TEST(Accelerator, ManyStringsStayDistinct) {
  StringHeap h;
  HeapAccelerator acc(&h);
  for (int round = 0; round < 3; ++round) {
    for (int i = 0; i < 5000; ++i) {
      acc.Add("value_" + std::to_string(i));
    }
  }
  EXPECT_EQ(acc.distinct_count(), 5000u);
  EXPECT_EQ(h.entry_count(), 5000u);
}

TEST(Accelerator, GivesUpPastThreshold) {
  StringHeap h;
  HeapAccelerator acc(&h, /*give_up_threshold=*/10);
  for (int i = 0; i < 50; ++i) acc.Add("s" + std::to_string(i));
  EXPECT_FALSE(acc.active());
  // After giving up, duplicates are appended blindly.
  const Lane t1 = acc.Add("s1");
  EXPECT_NE(t1, acc.Add("s1"));
}

TEST(Accelerator, DetectsSortedArrival) {
  StringHeap h;
  HeapAccelerator acc(&h);
  for (const char* s : {"alpha", "beta", "beta", "gamma"}) acc.Add(s);
  EXPECT_TRUE(acc.arrived_sorted());
  acc.Add("aardvark");
  EXPECT_FALSE(acc.arrived_sorted());
}

TEST(Accelerator, HashQualityUnderCollisions) {
  // Strings engineered to share prefixes still resolve distinctly.
  StringHeap h;
  HeapAccelerator acc(&h);
  std::vector<Lane> tokens;
  for (int i = 0; i < 1000; ++i) {
    tokens.push_back(acc.Add(std::string(20, 'x') + std::to_string(i)));
  }
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(acc.Add(std::string(20, 'x') + std::to_string(i)), tokens[i]);
  }
}

}  // namespace
}  // namespace tde
