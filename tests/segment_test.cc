// Segmented column storage: per-segment encodings and zone maps, zone-map
// pruning through the strategic planner and executor, segment-granular cold
// loading on the lazy v3 path, the segment-partitioned Exchange, incremental
// append, and the tde_segments observability surface.

#include <cstdio>
#include <cstdlib>
#include <numeric>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/core/engine.h"
#include "src/exec/flow_table.h"
#include "src/observe/metrics.h"
#include "src/plan/strategic.h"
#include "src/storage/database_file.h"
#include "src/storage/heap_accelerator.h"
#include "src/storage/pager/column_cache.h"
#include "src/storage/pager/format.h"
#include "src/storage/segment/segmented_stream.h"

namespace tde {
namespace {

using expr::And;
using expr::Col;
using expr::Ge;
using expr::Gt;
using expr::Int;
using expr::Le;
using expr::Lt;

std::shared_ptr<Column> MakeSegmentedInt(const std::string& name,
                                         const std::vector<Lane>& v,
                                         uint64_t segment_rows) {
  ColumnBuildInput in;
  in.name = name;
  in.type = TypeId::kInteger;
  in.lanes = v;
  FlowTableOptions opt;
  opt.segment_rows = segment_rows;
  auto r = BuildColumn(std::move(in), opt);
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  return r.MoveValue();
}

std::shared_ptr<Column> MakeMonolithicInt(const std::string& name,
                                          const std::vector<Lane>& v) {
  ColumnBuildInput in;
  in.name = name;
  in.type = TypeId::kInteger;
  in.lanes = v;
  auto r = BuildColumn(std::move(in), FlowTableOptions{});
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  return r.MoveValue();
}

// A table whose `x` column is clustered by segment: segment k holds values
// [k*1000, k*1000+99], so a narrow range predicate selects exactly one
// segment's zone map. `y` is the row id (a distinct payload to aggregate).
std::shared_ptr<Table> ClusteredTable(uint64_t rows, uint64_t segment_rows) {
  std::vector<Lane> x(rows), y(rows);
  for (uint64_t i = 0; i < rows; ++i) {
    x[i] = static_cast<Lane>((i / segment_rows) * 1000 + i % segment_rows);
    y[i] = static_cast<Lane>(i);
  }
  auto t = std::make_shared<Table>("t");
  t->AddColumn(MakeSegmentedInt("x", x, segment_rows));
  t->AddColumn(MakeSegmentedInt("y", y, segment_rows));
  return t;
}

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

TEST(SegmentedBuild, ShapesZoneMapsAndValues) {
  const uint64_t kRows = 1000, kSeg = 100;
  std::vector<Lane> v(kRows);
  for (uint64_t i = 0; i < kRows; ++i) {
    v[i] = static_cast<Lane>((i / kSeg) * 1000 + i % kSeg);
  }
  auto col = MakeSegmentedInt("x", v, kSeg);

  EXPECT_TRUE(col->segmented_storage());
  const std::vector<SegmentShape> shapes = col->SegmentShapes();
  ASSERT_EQ(shapes.size(), 10u);
  for (size_t s = 0; s < shapes.size(); ++s) {
    EXPECT_EQ(shapes[s].start_row, s * kSeg);
    EXPECT_EQ(shapes[s].rows, kSeg);
    EXPECT_FALSE(shapes[s].open_tail);
    ASSERT_TRUE(shapes[s].zone.meta.min_max_known);
    EXPECT_EQ(shapes[s].zone.meta.min_value,
              static_cast<int64_t>(s * 1000));
    EXPECT_EQ(shapes[s].zone.meta.max_value,
              static_cast<int64_t>(s * 1000 + kSeg - 1));
  }

  std::vector<Lane> got(kRows);
  ASSERT_TRUE(col->GetLanes(0, kRows, got.data()).ok());
  EXPECT_EQ(got, v);
  // Unaligned read crossing a segment boundary.
  std::vector<Lane> mid(150);
  ASSERT_TRUE(col->GetLanes(250, 150, mid.data()).ok());
  for (size_t i = 0; i < mid.size(); ++i) EXPECT_EQ(mid[i], v[250 + i]);
}

TEST(SegmentedBuild, ShortColumnStaysMonolithic) {
  std::vector<Lane> v(50);
  std::iota(v.begin(), v.end(), 0);
  auto col = MakeSegmentedInt("x", v, 100);
  EXPECT_FALSE(col->segmented_storage());
  EXPECT_EQ(col->SegmentShapes().size(), 1u);  // the pseudo-segment
}

TEST(ZoneMapPruning, FoldsSegmentsAgainstZoneMaps) {
  auto t = ClusteredTable(1000, 100);
  // x in [3000, 3099]: only segment 3's zone map overlaps.
  auto pred = And(Ge(Col("x"), Int(3000)), Le(Col("x"), Int(3099)));
  const SegmentPruneResult prune = PruneScanSegments(*t, pred);
  EXPECT_EQ(prune.segments_pruned, 9u);
  EXPECT_EQ(prune.rows_pruned, 900u);
  ASSERT_EQ(prune.ranges.size(), 1u);
  EXPECT_EQ(prune.ranges[0].begin, 300u);
  EXPECT_EQ(prune.ranges[0].end, 400u);

  // A predicate no zone map refutes prunes nothing.
  const SegmentPruneResult none =
      PruneScanSegments(*t, Ge(Col("x"), Int(0)));
  EXPECT_EQ(none.segments_pruned, 0u);
  EXPECT_TRUE(none.ranges.empty());
}

TEST(ZoneMapPruning, FilteredQueryAnswersAndCounts) {
  const bool was = observe::StatsEnabled();
  observe::SetStatsEnabled(true);
  observe::MetricsRegistry& reg = observe::MetricsRegistry::Global();

  Engine engine;
  engine.database()->AddTable(ClusteredTable(1000, 100));

  const uint64_t before =
      reg.GetCounter("filter.segments_pruned")->value();
  auto r = engine.ExecuteSql(
      "SELECT SUM(y) AS s FROM t WHERE x >= 3000 AND x <= 3099");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_EQ(r.value().num_rows(), 1u);
  // sum(300..399)
  EXPECT_EQ(r.value().Value(0, 0), 34950);
  EXPECT_EQ(reg.GetCounter("filter.segments_pruned")->value(), before + 9);

  // EXPLAIN ANALYZE surfaces the pruning note and counter.
  auto analyzed = engine.ExecuteSql(
      "EXPLAIN ANALYZE SELECT SUM(y) AS s FROM t "
      "WHERE x >= 3000 AND x <= 3099");
  ASSERT_TRUE(analyzed.ok()) << analyzed.status().ToString();
  const std::string text = analyzed.value().ToCsv();
  EXPECT_NE(text.find("segments_pruned"), std::string::npos) << text;

  observe::SetStatsEnabled(was);
}

TEST(ZoneMapPruning, FullyPrunedScanReturnsEmpty) {
  Engine engine;
  engine.database()->AddTable(ClusteredTable(1000, 100));
  auto r = engine.ExecuteSql("SELECT x, y FROM t WHERE x > 100000");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r.value().num_rows(), 0u);
}

TEST(LazyV3, SelectiveQueryFaultsOnlyTouchedSegments) {
  const std::string path = TempPath("segment_lazy_v3.tde");
  {
    Database db;
    db.AddTable(ClusteredTable(1000, 100));
    ASSERT_TRUE(pager::WriteDatabaseV2(db, path).ok());
  }

  auto engine = Engine::OpenDatabase(path);
  ASSERT_TRUE(engine.ok()) << engine.status().ToString();
  auto r = engine.value().ExecuteSql(
      "SELECT SUM(y) AS s FROM t WHERE x >= 3000 AND x <= 3099");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r.value().Value(0, 0), 34950);

  // Only the surviving segment's blobs faulted in; the nine pruned
  // segments of both columns stayed on disk.
  const Engine& opened = engine.value();
  auto t = opened.database().GetTable("t").value();
  for (const char* name : {"x", "y"}) {
    auto col = t->ColumnByName(name).value();
    const std::vector<SegmentShape> shapes = col->SegmentShapes();
    ASSERT_EQ(shapes.size(), 10u);
    size_t resident = 0;
    for (const SegmentShape& s : shapes) resident += s.resident ? 1 : 0;
    EXPECT_EQ(resident, 1u) << name;
    EXPECT_TRUE(shapes[3].resident) << name;
  }
  std::remove(path.c_str());
}

TEST(SegmentedExchange, PartitionedFilterScanMatches) {
  auto t = ClusteredTable(1000, 100);
  // x in [2000, 4999] selects rows 200..499 (segments 2, 3, 4).
  auto plan = Plan::Scan(t)
                  .Filter(And(Ge(Col("x"), Int(2000)),
                              Lt(Col("x"), Int(5000))))
                  .ExchangeBy(4)
                  .Aggregate({}, {{AggKind::kSum, "y", "s"},
                                  {AggKind::kCount, "y", "n"}});
  auto r = ExecutePlan(plan);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_EQ(r.value().num_rows(), 1u);
  // sum(200..499) and 300 surviving rows.
  EXPECT_EQ(r.value().Value(0, 0), 104850);
  EXPECT_EQ(r.value().Value(0, 1), 300);

  // The partitioned route is visible in the analyzed plan.
  const bool was = observe::StatsEnabled();
  observe::SetStatsEnabled(true);
  QueryResult result;
  auto analyzed = ExplainAnalyzePlan(
      Plan::Scan(t)
          .Filter(And(Ge(Col("x"), Int(2000)), Lt(Col("x"), Int(5000))))
          .ExchangeBy(4),
      &result);
  observe::SetStatsEnabled(was);
  ASSERT_TRUE(analyzed.ok()) << analyzed.status().ToString();
  EXPECT_NE(analyzed.value().find("partitioned"), std::string::npos)
      << analyzed.value();
  EXPECT_EQ(result.num_rows(), 300u);
}

TEST(SegmentedExchange, UnpartitionableFallsBackToSharedQueue) {
  // A monolithic table has one segment range: the partitioned route needs
  // at least two pieces, so the classic producer/worker Exchange runs.
  std::vector<Lane> v(500);
  std::iota(v.begin(), v.end(), 0);
  auto t = std::make_shared<Table>("m");
  t->AddColumn(MakeMonolithicInt("x", v));
  auto r = ExecutePlan(Plan::Scan(t)
                           .Filter(Gt(Col("x"), Int(249)))
                           .ExchangeBy(4)
                           .Aggregate({}, {{AggKind::kCount, "x", "n"}}));
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r.value().Value(0, 0), 250);
}

TEST(AppendRows, WrapsSealsAndKeepsOpenTail) {
  const char* prev = getenv("TDE_SEGMENT_ROWS");
  const std::string saved = prev != nullptr ? prev : "";
  setenv("TDE_SEGMENT_ROWS", "16", 1);

  Engine engine;
  auto t = std::make_shared<Table>("t");
  std::vector<Lane> init(10);
  std::iota(init.begin(), init.end(), 0);
  t->AddColumn(MakeMonolithicInt("x", init));
  engine.database()->AddTable(t);

  // Append 40 rows in two batches of 20.
  int64_t expected_sum = std::accumulate(init.begin(), init.end(), int64_t{0});
  for (int batch = 0; batch < 2; ++batch) {
    Block rows;
    ColumnVector cv;
    cv.type = TypeId::kInteger;
    for (int i = 0; i < 20; ++i) {
      const Lane v = 100 + batch * 20 + i;
      cv.lanes.push_back(v);
      expected_sum += v;
    }
    rows.columns.push_back(std::move(cv));
    auto n = engine.AppendRows("t", rows);
    ASSERT_TRUE(n.ok()) << n.status().ToString();
    EXPECT_EQ(n.value(), 10u + 20u * (batch + 1));
  }
  if (prev != nullptr) {
    setenv("TDE_SEGMENT_ROWS", saved.c_str(), 1);
  } else {
    unsetenv("TDE_SEGMENT_ROWS");
  }

  // Shapes: the adopted segment 0 (10 rows), two sealed 16-row segments,
  // and an 8-row open tail.
  auto col = t->ColumnByName("x").value();
  EXPECT_TRUE(col->segmented_storage());
  const std::vector<SegmentShape> shapes = col->SegmentShapes();
  ASSERT_EQ(shapes.size(), 4u);
  EXPECT_EQ(shapes[0].rows, 10u);
  EXPECT_EQ(shapes[1].rows, 16u);
  EXPECT_EQ(shapes[2].rows, 16u);
  EXPECT_EQ(shapes[3].rows, 8u);
  EXPECT_TRUE(shapes[3].open_tail);
  for (int s = 0; s < 3; ++s) EXPECT_FALSE(shapes[s].open_tail);

  auto r = engine.ExecuteSql("SELECT SUM(x) AS s, COUNT(x) AS n FROM t");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r.value().Value(0, 0), expected_sum);
  EXPECT_EQ(r.value().Value(0, 1), 50);
}

TEST(AppendRows, StringColumnsReinternThroughTheColumnHeap) {
  Engine engine;
  auto t = std::make_shared<Table>("t");
  {
    ColumnBuildInput in;
    in.name = "s";
    in.type = TypeId::kString;
    in.heap = std::make_shared<StringHeap>();
    HeapAccelerator acc(in.heap.get());
    for (const char* s : {"b", "a", "b", "c"}) in.lanes.push_back(acc.Add(s));
    in.accel_active = true;
    in.accel_distinct = acc.distinct_count();
    in.accel_arrived_sorted = acc.arrived_sorted();
    auto r = BuildColumn(std::move(in), FlowTableOptions{});
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    t->AddColumn(r.MoveValue());
  }
  engine.database()->AddTable(t);

  Block rows;
  ColumnVector cv;
  cv.type = TypeId::kString;
  auto heap = std::make_shared<StringHeap>();
  for (const char* s : {"b", "d", "b"}) {
    cv.lanes.push_back(heap->Add(s));
  }
  cv.heap = std::move(heap);
  rows.columns.push_back(std::move(cv));
  auto n = engine.AppendRows("t", rows);
  ASSERT_TRUE(n.ok()) << n.status().ToString();
  EXPECT_EQ(n.value(), 7u);

  auto r = engine.ExecuteSql("SELECT COUNT(s) AS n FROM t WHERE s = 'b'");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r.value().Value(0, 0), 4);
  auto r2 = engine.ExecuteSql("SELECT COUNT(s) AS n FROM t WHERE s = 'd'");
  ASSERT_TRUE(r2.ok()) << r2.status().ToString();
  EXPECT_EQ(r2.value().Value(0, 0), 1);
}

TEST(AppendRows, RejectsMalformedBlocks) {
  Engine engine;
  auto t = std::make_shared<Table>("t");
  t->AddColumn(MakeMonolithicInt("x", {1, 2, 3}));
  engine.database()->AddTable(t);

  EXPECT_FALSE(engine.AppendRows("absent", Block{}).ok());

  Block two_cols;
  two_cols.columns.resize(2);
  two_cols.columns[0].type = TypeId::kInteger;
  two_cols.columns[0].lanes = {1};
  two_cols.columns[1].type = TypeId::kInteger;
  two_cols.columns[1].lanes = {1};
  EXPECT_FALSE(engine.AppendRows("t", two_cols).ok());

  Block wrong_type;
  wrong_type.columns.resize(1);
  wrong_type.columns[0].type = TypeId::kString;
  wrong_type.columns[0].heap = std::make_shared<StringHeap>();
  wrong_type.columns[0].lanes = {0};
  EXPECT_FALSE(engine.AppendRows("t", wrong_type).ok());
}

TEST(AppendRows, PersistsThroughV3AndV1) {
  Engine engine;
  auto t = std::make_shared<Table>("t");
  std::vector<Lane> init(10);
  std::iota(init.begin(), init.end(), 0);
  t->AddColumn(MakeMonolithicInt("x", init));
  engine.database()->AddTable(t);

  Block rows;
  ColumnVector cv;
  cv.type = TypeId::kInteger;
  for (int i = 0; i < 7; ++i) cv.lanes.push_back(1000 + i);
  rows.columns.push_back(std::move(cv));
  ASSERT_TRUE(engine.AppendRows("t", rows).ok());
  // 0..9 plus 1000..1006.
  const int64_t expected = 45 + 7 * 1000 + 21;

  // v2/v3 save round-trips the open tail.
  const std::string path = TempPath("segment_append_v3.tde");
  ASSERT_TRUE(engine.SaveDatabase(path).ok());
  auto back = Engine::OpenDatabase(path);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  auto r = back.value().ExecuteSql("SELECT SUM(x) AS s FROM t");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r.value().Value(0, 0), expected);
  std::remove(path.c_str());

  // The v1 writer materializes segmented columns monolithic.
  std::vector<uint8_t> v1;
  ASSERT_TRUE(SerializeDatabase(*engine.database(), &v1).ok());
  auto eager = DeserializeDatabase(v1);
  ASSERT_TRUE(eager.ok()) << eager.status().ToString();
  auto col = eager.value().GetTable("t").value()->ColumnByName("x").value();
  EXPECT_FALSE(col->segmented_storage());
  std::vector<Lane> got(17);
  ASSERT_TRUE(col->GetLanes(0, 17, got.data()).ok());
  EXPECT_EQ(got[0], 0);
  EXPECT_EQ(got[16], 1006);
}

TEST(Observability, TdeSegmentsAndStorageReport) {
  Engine engine;
  engine.database()->AddTable(ClusteredTable(1000, 100));

  auto count = engine.ExecuteSql(
      "SELECT COUNT(segment) AS n FROM tde_segments "
      "WHERE table_name = 't' AND column_name = 'x'");
  ASSERT_TRUE(count.ok()) << count.status().ToString();
  EXPECT_EQ(count.value().Value(0, 0), 10);

  auto seg3 = engine.ExecuteSql(
      "SELECT start_row, rows, min_value, max_value FROM tde_segments "
      "WHERE table_name = 't' AND column_name = 'x' AND segment = 3");
  ASSERT_TRUE(seg3.ok()) << seg3.status().ToString();
  ASSERT_EQ(seg3.value().num_rows(), 1u);
  EXPECT_EQ(seg3.value().Value(0, 0), 300);
  EXPECT_EQ(seg3.value().Value(0, 1), 100);
  EXPECT_EQ(seg3.value().Value(0, 2), 3000);
  EXPECT_EQ(seg3.value().Value(0, 3), 3099);

  const std::string report = engine.StorageReportJson();
  EXPECT_NE(report.find("\"segments\":["), std::string::npos);
  EXPECT_NE(report.find("\"open_tail\":false"), std::string::npos);
}

TEST(Optimize, SegmentedColumnsCollapseBeforeDictionaryConversion) {
  Engine engine;
  auto t = std::make_shared<Table>("t");
  // Small-domain values: OptimizeTable dictionary-compresses, collapsing
  // the segmented stream to one monolithic stream first.
  std::vector<Lane> v(1000);
  for (size_t i = 0; i < v.size(); ++i) v[i] = static_cast<Lane>(i % 3);
  t->AddColumn(MakeSegmentedInt("x", v, 100));
  engine.database()->AddTable(t);
  ASSERT_TRUE(t->column(0).segmented_storage());

  auto n = engine.OptimizeTable("t");
  ASSERT_TRUE(n.ok()) << n.status().ToString();
  EXPECT_EQ(n.value(), 1);
  EXPECT_EQ(t->column(0).compression(), CompressionKind::kArrayDict);
  EXPECT_FALSE(t->column(0).segmented_storage());

  auto r = engine.ExecuteSql("SELECT SUM(x) AS s FROM t");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r.value().Value(0, 0), 999);

  // A dictionary-compressed column is frozen against appends.
  Block rows;
  rows.columns.resize(1);
  rows.columns[0].type = TypeId::kInteger;
  rows.columns[0].lanes = {1};
  EXPECT_FALSE(engine.AppendRows("t", rows).ok());
}

// --- Regressions from the differential harness (tests/differential_test) --

/// 40 rows, 8-row segments; `x` is NULL at rows 0, 13, 26 and 39, so some
/// segments carry nulls and some (rows 16..23) are null-free.
void ImportSegmentedNullable(Engine* e) {
  std::string csv = "x,y\n";
  for (int i = 0; i < 40; ++i) {
    if (i % 13 != 0) csv += std::to_string(i);
    csv += "," + std::to_string(i) + "\n";
  }
  ImportOptions opt;
  opt.flow.segment_rows = 8;
  auto r = e->ImportTextBuffer(csv, "n", opt);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_TRUE(r.value()->ColumnByName("x").value()->segmented_storage());
}

/// Zone maps summarize values; NULL rows must be accounted for separately
/// (null_count), or pruning drops exactly the rows IS NULL asks for. The
/// differential sweeps exercise this via the "no metadata" vs "default"
/// config pair on segmented layouts.
TEST(SegmentedNulls, IsNullFilterSurvivesZoneMapPruning) {
  Engine engine;
  ImportSegmentedNullable(&engine);

  auto r = engine.ExecuteSql("SELECT y FROM n WHERE x IS NULL ORDER BY y");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_EQ(r.value().num_rows(), 4u);
  EXPECT_EQ(r.value().Value(0, 0), 0);
  EXPECT_EQ(r.value().Value(1, 0), 13);
  EXPECT_EQ(r.value().Value(2, 0), 26);
  EXPECT_EQ(r.value().Value(3, 0), 39);

  // Two-valued NULL contract: NOT(IS NULL) keeps exactly the complement.
  auto inv = engine.ExecuteSql(
      "SELECT COUNT(y) AS c FROM n WHERE NOT (x IS NULL)");
  ASSERT_TRUE(inv.ok()) << inv.status().ToString();
  EXPECT_EQ(inv.value().Value(0, 0), 36);

  // Comparisons are false on NULL, so min/max folds over a zone that
  // contains the sentinel must never prove a predicate always-true.
  auto cmp = engine.ExecuteSql("SELECT COUNT(y) AS c FROM n WHERE x < 100");
  ASSERT_TRUE(cmp.ok()) << cmp.status().ToString();
  EXPECT_EQ(cmp.value().Value(0, 0), 36);
}

/// Found by the differential harness: the sort comparator dispatched on
/// type before checking for NULL, so the sentinel masqueraded as INT64_MIN
/// (integers) or -0.0 (reals). Contract: NULL orders below every value —
/// first under ASC, last under DESC — across segment boundaries.
TEST(SegmentedNulls, OrderByPlacesNullsBelowEveryValue) {
  Engine engine;
  ImportSegmentedNullable(&engine);

  auto asc = engine.ExecuteSql("SELECT x FROM n ORDER BY x");
  ASSERT_TRUE(asc.ok()) << asc.status().ToString();
  ASSERT_EQ(asc.value().num_rows(), 40u);
  for (uint64_t i = 0; i < 4; ++i) {
    EXPECT_EQ(asc.value().ValueString(i, 0), "NULL") << i;
  }
  for (uint64_t i = 5; i < 40; ++i) {
    EXPECT_LT(asc.value().Value(i - 1, 0), asc.value().Value(i, 0)) << i;
  }

  auto desc = engine.ExecuteSql("SELECT x FROM n ORDER BY x DESC");
  ASSERT_TRUE(desc.ok()) << desc.status().ToString();
  ASSERT_EQ(desc.value().num_rows(), 40u);
  for (uint64_t i = 36; i < 40; ++i) {
    EXPECT_EQ(desc.value().ValueString(i, 0), "NULL") << i;
  }
  for (uint64_t i = 1; i < 36; ++i) {
    EXPECT_GT(desc.value().Value(i - 1, 0), desc.value().Value(i, 0)) << i;
  }
}

}  // namespace
}  // namespace tde
