#include "src/core/engine.h"

#include <atomic>
#include <cstdio>
#include <thread>

#include <gtest/gtest.h>

#include "src/workload/flights.h"
#include "src/workload/tpch.h"
#include "tests/test_util.h"

namespace tde {
namespace {

using namespace tde::expr;  // NOLINT

TEST(Engine, ImportQueryRoundTrip) {
  Engine engine;
  auto t = engine.ImportTextBuffer(
      "city,pop\n"
      "seattle,750000\n"
      "portland,650000\n"
      "spokane,230000\n",
      "cities");
  ASSERT_TRUE(t.ok()) << t.status().ToString();
  EXPECT_EQ(t.value()->rows(), 3u);
  auto r = engine.Execute(Plan::Scan(t.value())
                              .Filter(Gt(Col("pop"), Int(500000))));
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r.value().num_rows(), 2u);
}

TEST(Engine, SaveAndReopenDatabase) {
  Engine engine;
  auto t = engine.ImportTextBuffer("k,v\n1,a\n2,b\n", "t").MoveValue();
  const std::string path = ::testing::TempDir() + "/engine_test.tde";
  ASSERT_TRUE(engine.SaveDatabase(path).ok());
  auto reopened = Engine::OpenDatabase(path);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  auto t2 = reopened.value().database()->GetTable("t").value();
  EXPECT_EQ(t2->rows(), 2u);
  auto r = reopened.value().Execute(
      Plan::Scan(t2).Filter(Eq(Col("k"), Int(2))));
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().num_rows(), 1u);
  EXPECT_EQ(r.value().ValueString(0, 1), "b");
  std::remove(path.c_str());
}

TEST(Engine, TpchLineitemImportEndToEnd) {
  Engine engine;
  ImportOptions opts;
  opts.text.field_separator = '|';
  auto t = engine.ImportTextBuffer(
      GenerateTpchTable(TpchTable::kLineitem, 0.001), "lineitem", opts);
  ASSERT_TRUE(t.ok()) << t.status().ToString();
  const Table& li = *t.value();
  EXPECT_GT(li.rows(), 1000u);
  EXPECT_EQ(li.num_columns(), 16u);
  // Shipmode has 7 values: dictionary-encoded, sorted heap, 1-byte tokens.
  auto shipmode = li.ColumnByName("l_shipmode").value();
  EXPECT_EQ(shipmode->data()->type(), EncodingType::kDictionary);
  EXPECT_TRUE(shipmode->heap()->sorted());
  EXPECT_EQ(shipmode->TokenWidth(), 1);
  // Quantity is 1..50 -> narrowed to one byte.
  EXPECT_EQ(li.ColumnByName("l_quantity").value()->TokenWidth(), 1);
  // l_orderkey repeats per order and ascends -> sorted metadata.
  EXPECT_TRUE(li.ColumnByName("l_orderkey").value()->metadata().sorted);

  // A Tableau-ish query: returned-flag breakdown of quantities.
  auto r = engine.Execute(
      Plan::Scan(t.value())
          .Aggregate({"l_returnflag"}, {{AggKind::kSum, "l_quantity", "qty"},
                                        {AggKind::kCountStar, "", "n"}}));
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r.value().num_rows(), 3u);
}

TEST(Engine, FlightsImportShapes) {
  Engine engine;
  auto t = engine.ImportTextBuffer(GenerateFlights(20000), "flights");
  ASSERT_TRUE(t.ok()) << t.status().ToString();
  const Table& fl = *t.value();
  EXPECT_EQ(fl.rows(), 20000u);
  // Dates ascend -> sorted; carrier domain is tiny -> dictionary.
  EXPECT_TRUE(fl.ColumnByName("flight_date").value()->metadata().sorted);
  auto carrier = fl.ColumnByName("carrier").value();
  EXPECT_EQ(carrier->data()->type(), EncodingType::kDictionary);
  EXPECT_TRUE(carrier->metadata().cardinality_known);
  EXPECT_LE(carrier->metadata().cardinality, 20u);
}

TEST(Engine, AlterColumnToDictionaryOnDictEncodedScalars) {
  Engine engine;
  // Dates with a small domain, out of order.
  std::string csv = "d\n";
  const char* dates[] = {"2001-03-15", "2001-01-02", "2001-02-10"};
  for (int i = 0; i < 900; ++i) csv += std::string(dates[i % 3]) + "\n";
  auto t = engine.ImportTextBuffer(csv, "dates").MoveValue();
  auto col = t->ColumnByName("d").value();
  ASSERT_EQ(col->data()->type(), EncodingType::kDictionary);

  ASSERT_TRUE(AlterColumnToDictionary(col.get()).ok());
  EXPECT_EQ(col->compression(), CompressionKind::kArrayDict);
  ASSERT_NE(col->array_dict(), nullptr);
  EXPECT_TRUE(col->array_dict()->sorted);
  EXPECT_EQ(col->array_dict()->values.size(), 3u);
  EXPECT_EQ(col->TokenWidth(), 1);

  // Scanning decodes through the dictionary.
  auto r = engine.Execute(Plan::Scan(t).Aggregate(
      {"d"}, {{AggKind::kCountStar, "", "n"}}));
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r.value().num_rows(), 3u);
}

TEST(Engine, AlterColumnRleRoute) {
  Engine engine;
  std::string csv = "v\n";
  for (int run = 0; run < 200; ++run) {
    for (int i = 0; i < 300; ++i) {
      csv += std::to_string(run % 7 * 1000) + "\n";
    }
  }
  auto t = engine.ImportTextBuffer(csv, "runs").MoveValue();
  auto col = t->ColumnByName("v").value();
  ASSERT_EQ(col->data()->type(), EncodingType::kRunLength);
  ASSERT_TRUE(AlterColumnToDictionary(col.get()).ok());
  // Scalar dictionary compression with an RLE token stream (Sect. 3.4.3).
  EXPECT_EQ(col->compression(), CompressionKind::kArrayDict);
  EXPECT_EQ(col->data()->type(), EncodingType::kRunLength);
  EXPECT_EQ(col->array_dict()->values.size(), 7u);
  std::vector<Lane> lanes(10);
  ASSERT_TRUE(col->GetLanes(0, 10, lanes.data()).ok());
  EXPECT_EQ(col->array_dict()->values[static_cast<size_t>(lanes[0])], 0);
}

TEST(Engine, InvisibleJoinEndToEndThroughOptimizer) {
  Engine engine;
  std::string csv = "region,sales\n";
  const char* regions[] = {"west", "east", "north", "south"};
  for (int i = 0; i < 2000; ++i) {
    csv += std::string(regions[i % 4]) + "," + std::to_string(i) + "\n";
  }
  auto t = engine.ImportTextBuffer(csv, "sales").MoveValue();
  auto r = engine.Execute(
      Plan::Scan(t)
          .Filter(Eq(Col("region"), Str("west")))
          .Aggregate({}, {{AggKind::kCountStar, "", "n"},
                          {AggKind::kSum, "sales", "total"}}));
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r.value().Value(0, 0), 500);
  int64_t expect = 0;
  for (int i = 0; i < 2000; i += 4) expect += i;
  EXPECT_EQ(r.value().Value(0, 1), expect);
}

TEST(Engine, CountDistinctAndMedianSupplementTableau) {
  Engine engine;
  auto t = engine
               .ImportTextBuffer(
                   "g,v\n1,5\n1,5\n1,9\n2,1\n2,2\n2,3\n2,4\n", "t")
               .MoveValue();
  auto r = engine.Execute(Plan::Scan(t).Aggregate(
      {"g"}, {{AggKind::kCountDistinct, "v", "cd"},
              {AggKind::kMedian, "v", "med"}}));
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r.value().num_rows(), 2u);
  EXPECT_EQ(r.value().Value(0, 1), 2);  // distinct {5, 9}
  EXPECT_EQ(r.value().Value(0, 2), 5);
  EXPECT_EQ(r.value().Value(1, 1), 4);
  EXPECT_EQ(r.value().Value(1, 2), 2);  // lower median of 1,2,3,4
}

TEST(Engine, AlterColumnForRoute) {
  Engine engine;
  // Values in a narrow window with > 2^15 rows of repeats: FoR-encoded.
  std::string csv = "v\n";
  for (int i = 0; i < 3000; ++i) csv += std::to_string(500 + i * 7 % 90) + "\n";
  auto t = engine.ImportTextBuffer(csv, "t").MoveValue();
  auto col = t->ColumnByName("v").value();
  ASSERT_EQ(col->data()->type(), EncodingType::kFrameOfReference);
  ASSERT_TRUE(AlterColumnToDictionary(col.get()).ok());
  EXPECT_EQ(col->compression(), CompressionKind::kArrayDict);
  EXPECT_TRUE(col->array_dict()->sorted);
  // The envelope dictionary may hold absent values (the paper's caveat).
  EXPECT_GE(col->array_dict()->values.size(), 90u);
  std::vector<Lane> lanes(3);
  ASSERT_TRUE(col->GetLanes(0, 3, lanes.data()).ok());
  EXPECT_EQ(col->array_dict()->values[static_cast<size_t>(lanes[0])], 500);
}

TEST(Engine, AttachAndRefreshExternalFile) {
  const std::string path = ::testing::TempDir() + "/tde_attach.csv";
  {
    std::FILE* f = std::fopen(path.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    std::fputs("v\n1\n2\n3\n", f);
    std::fclose(f);
  }
  Engine engine;
  auto t = engine.AttachTextFile(path, "ext");
  ASSERT_TRUE(t.ok()) << t.status().ToString();
  EXPECT_EQ(t.value()->rows(), 3u);

  // No change -> nothing rebuilt.
  auto n = engine.RefreshChanged();
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(n.value(), 0);

  // Grow the file -> rebuilt on refresh (Sect. 8).
  {
    std::FILE* f = std::fopen(path.c_str(), "ab");
    ASSERT_NE(f, nullptr);
    std::fputs("4\n5\n", f);
    std::fclose(f);
  }
  n = engine.RefreshChanged();
  ASSERT_TRUE(n.ok()) << n.status().ToString();
  EXPECT_EQ(n.value(), 1);
  auto t2 = engine.database()->GetTable("ext").value();
  EXPECT_EQ(t2->rows(), 5u);
  std::remove(path.c_str());
}

TEST(Engine, InvisibleJoinOverScalarDictionaryBecomesFetchJoin) {
  // The full Sect. 4.1.2 story through the optimizer: a date column is
  // dictionary compressed (AlterColumn), a range predicate filters the
  // DictionaryTable to a dense token range, FlowTable reasserts density
  // and the join runs as a fetch join.
  Engine engine;
  std::string csv = "d,v\n";
  const int64_t start = DaysFromCivil(2019, 1, 1);
  for (int i = 0; i < 40000; ++i) {
    csv += FormatLane(TypeId::kDate, start + i / 200) + "," +
           std::to_string(i % 97) + "\n";
  }
  auto t = engine.ImportTextBuffer(csv, "events").MoveValue();
  auto col = t->ColumnByName("d").value();
  ASSERT_TRUE(AlterColumnToDictionary(col.get()).ok());
  ASSERT_EQ(col->compression(), CompressionKind::kArrayDict);

  auto plan = Plan::Scan(t)
                  .Filter(And(Ge(Col("d"), Date(2019, 3, 1)),
                              Lt(Col("d"), Date(2019, 4, 1))))
                  .Aggregate({}, {{AggKind::kCountStar, "", "n"},
                                  {AggKind::kSum, "v", "s"}});
  auto explain = ExplainPlan(plan);
  ASSERT_TRUE(explain.ok()) << explain.status().ToString();
  EXPECT_NE(explain.value().find("InvisibleJoin(d)"), std::string::npos)
      << explain.value();
  EXPECT_NE(explain.value().find("fetch"), std::string::npos)
      << explain.value();

  auto rewritten = engine.Execute(plan).MoveValue();
  StrategicOptions off;
  off.enable_invisible_join = false;
  auto control = engine.Execute(plan, off).MoveValue();
  EXPECT_EQ(rewritten.Value(0, 0), control.Value(0, 0));
  EXPECT_EQ(rewritten.Value(0, 1), control.Value(0, 1));
  EXPECT_EQ(rewritten.Value(0, 0), 31 * 200);  // March days x 200 rows
}

TEST(Engine, OptimizeTableConvertsScalarDimensions) {
  Engine engine;
  // A dimension-shaped date column (small domain, many rows), a measure
  // (wide domain) and a string column.
  std::string csv = "d,measure,tag\n";
  const int64_t start = DaysFromCivil(2021, 1, 1);
  for (int i = 0; i < 30000; ++i) {
    csv += FormatLane(TypeId::kDate, start + i % 30) + "," +
           std::to_string(i * 7) + ",t" + std::to_string(i % 5) + "\n";
  }
  auto t = engine.ImportTextBuffer(csv, "dims").MoveValue();
  auto n = engine.OptimizeTable("dims");
  ASSERT_TRUE(n.ok()) << n.status().ToString();
  EXPECT_GE(n.value(), 1);
  // The date became dictionary compressed; the measure did not; the
  // string column keeps its heap compression.
  EXPECT_EQ(t->ColumnByName("d").value()->compression(),
            CompressionKind::kArrayDict);
  EXPECT_EQ(t->ColumnByName("measure").value()->compression(),
            CompressionKind::kNone);
  EXPECT_EQ(t->ColumnByName("tag").value()->compression(),
            CompressionKind::kHeap);
  // Queries still answer correctly, now through invisible joins.
  auto r = engine.ExecuteSql(
      "SELECT COUNT(*) AS n FROM dims WHERE d = DATE '2021-01-05'");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r.value().Value(0, 0), 1000);
  EXPECT_EQ(engine.OptimizeTable("nope").status().code(),
            StatusCode::kNotFound);
}

TEST(Engine, NullSentinelsJoinLikeValues) {
  // Tableau's NULL join semantics (Sect. 2.3): NULL keys match NULL keys —
  // a natural consequence of the sentinel representation.
  Engine engine;
  auto dim = engine.ImportTextBuffer("k,name\n,missing\n1,one\n", "dim")
                 .MoveValue();
  ASSERT_TRUE(dim->ColumnByName("k").value()->metadata().has_nulls);
  auto fact =
      engine.ImportTextBuffer("k,v\n1,10\n,20\n1,30\n", "facts").MoveValue();
  HashJoinOptions join;
  join.outer_key = "k";
  join.inner_key = "k";
  join.inner_payload = {"name"};
  auto r = engine.Execute(Plan::Scan(fact).Join(dim, join)).MoveValue();
  ASSERT_EQ(r.num_rows(), 3u);
  EXPECT_EQ(r.ValueString(1, 2), "missing");  // NULL joined to NULL
}

TEST(Engine, SortedImportImprovesEncoding) {
  // Dates arriving shuffled: without sorting the column cannot run-length
  // encode; sorting on import restores the runs (Sect. 5.2).
  std::string csv = "d\n";
  const int64_t start = DaysFromCivil(2015, 1, 1);
  for (int i = 0; i < 20000; ++i) {
    csv += FormatLane(TypeId::kDate, start + (i * 7919) % 60) + "\n";
  }
  Engine engine;
  auto unsorted = engine.ImportTextBuffer(csv, "unsorted").MoveValue();
  ImportOptions opts;
  opts.sort_by = {{"d", true}};
  auto sorted = engine.ImportTextBuffer(csv, "sorted", opts).MoveValue();
  auto uc = unsorted->ColumnByName("d").value();
  auto sc = sorted->ColumnByName("d").value();
  EXPECT_TRUE(sc->metadata().sorted);
  EXPECT_FALSE(uc->metadata().sorted);
  EXPECT_EQ(sc->data()->type(), EncodingType::kRunLength);
  EXPECT_LT(sc->PhysicalSize() * 4, uc->PhysicalSize());
}

TEST(Engine, ExplainReportsRewritesAndTactics) {
  Engine engine;
  std::string csv = "region,sales\n";
  const char* regions[] = {"west", "east", "north", "south"};
  for (int i = 0; i < 2000; ++i) {
    csv += std::string(regions[i % 4]) + "," + std::to_string(i % 100) + "\n";
  }
  auto t = engine.ImportTextBuffer(csv, "sales").MoveValue();
  auto explain = ExplainPlan(
      Plan::Scan(t)
          .Filter(Eq(Col("region"), Str("west")))
          .Aggregate({"sales"}, {{AggKind::kCountStar, "", "n"}}));
  ASSERT_TRUE(explain.ok()) << explain.status().ToString();
  const std::string& s = explain.value();
  EXPECT_NE(s.find("InvisibleJoin"), std::string::npos) << s;
  EXPECT_NE(s.find("invisible join(region)"), std::string::npos) << s;
  EXPECT_NE(s.find("aggregate(sales)"), std::string::npos) << s;
}

TEST(Engine, QueryResultToCsv) {
  Engine engine;
  auto t = engine.ImportTextBuffer("name|n\nplain|1\na,b|2\n", "t",
                                   {{.field_separator = '|'}, {}, {}})
               .MoveValue();
  auto r = engine.Execute(Plan::Scan(t)).MoveValue();
  // Strings containing separators are quoted on export.
  EXPECT_EQ(r.ToCsv(), "name,n\nplain,1\n\"a,b\",2\n");
}

TEST(Engine, QueriesSurviveSaveAndReload) {
  // The single-file copy must preserve everything queries depend on:
  // encodings, heaps, dictionaries and metadata (tactical choices).
  Engine engine;
  ImportOptions opts;
  opts.text.field_separator = '|';
  auto t = engine
               .ImportTextBuffer(
                   GenerateTpchTable(TpchTable::kLineitem, 0.001),
                   "lineitem", opts)
               .MoveValue();
  const std::string q =
      "SELECT l_returnflag, COUNT(*) AS n, SUM(l_quantity) AS qty "
      "FROM lineitem WHERE l_shipmode IN ('MAIL', 'SHIP') "
      "GROUP BY l_returnflag ORDER BY l_returnflag";
  auto before = engine.ExecuteSql(q).MoveValue();

  const std::string path = ::testing::TempDir() + "/reload.tde";
  ASSERT_TRUE(engine.SaveDatabase(path).ok());
  auto reopened = Engine::OpenDatabase(path).MoveValue();
  auto after = reopened.ExecuteSql(q).MoveValue();
  std::remove(path.c_str());

  ASSERT_EQ(before.num_rows(), after.num_rows());
  for (uint64_t r = 0; r < before.num_rows(); ++r) {
    EXPECT_EQ(before.ValueString(r, 0), after.ValueString(r, 0));
    EXPECT_EQ(before.Value(r, 1), after.Value(r, 1));
    EXPECT_EQ(before.Value(r, 2), after.Value(r, 2));
  }
  // Reloaded columns keep their metadata (min/max, sortedness, heaps).
  auto col = reopened.database()->GetTable("lineitem").value()
                 ->ColumnByName("l_shipmode").value();
  EXPECT_TRUE(col->heap()->sorted());
  EXPECT_TRUE(col->metadata().cardinality_known);
}

// Regression: ReplaceTable while queries run. Readers resolve the table to
// a shared_ptr snapshot, so a concurrent swap must never crash them, and
// every answer must be consistent with one full version of the table —
// SUM(v) is either 1*N or 2*N, never a mix.
TEST(Engine, ReplaceTableWhileQueriesRun) {
  constexpr int kRows = 512;
  constexpr int kSwaps = 40;
  auto build = [&](int value) {
    std::string csv = "v\n";
    for (int i = 0; i < kRows; ++i) csv += std::to_string(value) + "\n";
    return csv;
  };

  Engine engine;
  ASSERT_TRUE(engine.ImportTextBuffer(build(1), "t").ok());

  std::atomic<bool> stop{false};
  std::atomic<int> bad{0};
  std::vector<std::thread> readers;
  for (int r = 0; r < 3; ++r) {
    readers.emplace_back([&] {
      while (!stop.load(std::memory_order_relaxed)) {
        auto res = engine.ExecuteSql("SELECT SUM(v) AS s FROM t");
        if (!res.ok()) {
          ++bad;
          continue;
        }
        const Lane s = res.value().Value(0, 0);
        if (s != 1 * kRows && s != 2 * kRows) ++bad;
      }
    });
  }

  // Swap between the two versions; each replacement goes through a fresh
  // import so the new table is fully built before it enters the catalog.
  for (int i = 0; i < kSwaps; ++i) {
    Engine staging;
    auto t = staging.ImportTextBuffer(build(1 + i % 2), "t");
    ASSERT_TRUE(t.ok()) << t.status().ToString();
    ASSERT_TRUE(engine.database()->ReplaceTable(t.value()).ok());
  }
  stop = true;
  for (auto& th : readers) th.join();
  EXPECT_EQ(bad.load(), 0);

  // The final state answers from the last version swapped in.
  auto res = engine.ExecuteSql("SELECT SUM(v) AS s FROM t");
  ASSERT_TRUE(res.ok());
  EXPECT_EQ(res.value().Value(0, 0),
            static_cast<Lane>((1 + (kSwaps - 1) % 2) * kRows));
}

TEST(Workload, TpchGeneratorDeterministic) {
  EXPECT_EQ(GenerateTpchTable(TpchTable::kNation, 1),
            GenerateTpchTable(TpchTable::kNation, 1));
}

}  // namespace
}  // namespace tde
