#include "src/common/types.h"

#include <gtest/gtest.h>

namespace tde {
namespace {

TEST(Types, MinSignedWidth) {
  EXPECT_EQ(MinSignedWidth(0, 0), 1);
  EXPECT_EQ(MinSignedWidth(-128, 127), 1);
  EXPECT_EQ(MinSignedWidth(-129, 0), 2);
  EXPECT_EQ(MinSignedWidth(0, 128), 2);
  EXPECT_EQ(MinSignedWidth(-32768, 32767), 2);
  EXPECT_EQ(MinSignedWidth(0, 32768), 4);
  EXPECT_EQ(MinSignedWidth(-2147483648LL, 2147483647LL), 4);
  EXPECT_EQ(MinSignedWidth(0, 2147483648LL), 8);
  EXPECT_EQ(MinSignedWidth(INT64_MIN, INT64_MAX), 8);
}

TEST(Types, MinUnsignedWidth) {
  EXPECT_EQ(MinUnsignedWidth(0), 1);
  EXPECT_EQ(MinUnsignedWidth(255), 1);
  EXPECT_EQ(MinUnsignedWidth(256), 2);
  EXPECT_EQ(MinUnsignedWidth(65535), 2);
  EXPECT_EQ(MinUnsignedWidth(65536), 4);
  EXPECT_EQ(MinUnsignedWidth(4294967295ULL), 4);
  EXPECT_EQ(MinUnsignedWidth(4294967296ULL), 8);
}

TEST(Types, CivilDateKnownValues) {
  EXPECT_EQ(DaysFromCivil(1970, 1, 1), 0);
  EXPECT_EQ(DaysFromCivil(1970, 1, 2), 1);
  EXPECT_EQ(DaysFromCivil(1969, 12, 31), -1);
  EXPECT_EQ(DaysFromCivil(2000, 3, 1), 11017);
  EXPECT_EQ(DaysFromCivil(1992, 1, 1), 8035);
}

TEST(Types, CivilRoundTripSweep) {
  // Every 17 days across ~80 years, plus leap-year edges.
  for (int64_t d = DaysFromCivil(1960, 1, 1); d < DaysFromCivil(2040, 1, 1);
       d += 17) {
    int y;
    unsigned m, dd;
    CivilFromDays(d, &y, &m, &dd);
    EXPECT_EQ(DaysFromCivil(y, m, dd), d);
  }
  for (int year : {1996, 2000, 2024, 1900, 2100}) {
    const int64_t feb28 = DaysFromCivil(year, 2, 28);
    int y;
    unsigned m, dd;
    CivilFromDays(feb28 + 1, &y, &m, &dd);
    const bool leap =
        (year % 4 == 0 && year % 100 != 0) || year % 400 == 0;
    EXPECT_EQ(m, leap ? 2u : 3u) << year;
  }
}

TEST(Types, Truncations) {
  const int64_t d = DaysFromCivil(1994, 6, 22);
  EXPECT_EQ(TruncateToMonth(d), DaysFromCivil(1994, 6, 1));
  EXPECT_EQ(TruncateToYear(d), DaysFromCivil(1994, 1, 1));
  EXPECT_EQ(DateYear(d), 1994);
  EXPECT_EQ(DateMonth(d), 6);
  EXPECT_EQ(DateDay(d), 22);
}

TEST(Types, FormatLane) {
  EXPECT_EQ(FormatLane(TypeId::kInteger, 42), "42");
  EXPECT_EQ(FormatLane(TypeId::kBool, 1), "true");
  EXPECT_EQ(FormatLane(TypeId::kBool, 0), "false");
  EXPECT_EQ(FormatLane(TypeId::kDate, DaysFromCivil(2014, 6, 22)),
            "2014-06-22");
  EXPECT_EQ(FormatLane(TypeId::kInteger, kNullSentinel), "NULL");
  const Lane half = static_cast<Lane>(std::bit_cast<uint64_t>(0.5));
  EXPECT_EQ(FormatLane(TypeId::kReal, half), "0.5");
}

TEST(Types, FormatDateTime) {
  const int64_t t = DaysFromCivil(2014, 6, 22) * 86400 + 3723;  // 01:02:03
  EXPECT_EQ(FormatLane(TypeId::kDateTime, t), "2014-06-22 01:02:03");
}

TEST(Types, SignednessByType) {
  EXPECT_TRUE(IsSignedType(TypeId::kInteger));
  EXPECT_TRUE(IsSignedType(TypeId::kDate));
  EXPECT_TRUE(IsSignedType(TypeId::kDateTime));
  EXPECT_FALSE(IsSignedType(TypeId::kString));
  EXPECT_FALSE(IsSignedType(TypeId::kBool));
}

}  // namespace
}  // namespace tde
