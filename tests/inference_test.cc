#include "src/textscan/inference.h"

#include <gtest/gtest.h>

namespace tde {
namespace {

TEST(Records, NextRecordHandlesLineEndings) {
  const std::string data = "a\nb\r\nc";
  size_t pos = 0;
  std::string_view rec;
  ASSERT_TRUE(NextRecord(data, &pos, &rec));
  EXPECT_EQ(rec, "a");
  ASSERT_TRUE(NextRecord(data, &pos, &rec));
  EXPECT_EQ(rec, "b");
  ASSERT_TRUE(NextRecord(data, &pos, &rec));
  EXPECT_EQ(rec, "c");
  EXPECT_FALSE(NextRecord(data, &pos, &rec));
}

TEST(Records, SplitRecord) {
  std::vector<std::string_view> f;
  SplitRecord("a|b||d", '|', &f);
  ASSERT_EQ(f.size(), 4u);
  EXPECT_EQ(f[0], "a");
  EXPECT_EQ(f[2], "");
  EXPECT_EQ(f[3], "d");
  SplitRecord("", '|', &f);
  ASSERT_EQ(f.size(), 1u);
}

TEST(Records, SplitRecordKeepsQuotedSeparators) {
  std::vector<std::string_view> f;
  SplitRecord("a,\"b,c\",d", ',', &f);
  ASSERT_EQ(f.size(), 3u);
  EXPECT_EQ(f[0], "a");
  EXPECT_EQ(f[1], "\"b,c\"");  // quotes kept; UnquoteField strips them
  EXPECT_EQ(f[2], "d");
  // A doubled quote inside a quoted field does not end the quoting.
  SplitRecord("\"say \"\"hi, there\"\"\",2", ',', &f);
  ASSERT_EQ(f.size(), 2u);
  EXPECT_EQ(f[0], "\"say \"\"hi, there\"\"\"");
  EXPECT_EQ(f[1], "2");
}

TEST(Records, NextRecordKeepsQuotedNewlines) {
  const std::string data = "a,\"line1\nline2\",z\nnext,row,here\n";
  size_t pos = 0;
  std::string_view rec;
  ASSERT_TRUE(NextRecord(data, &pos, &rec));
  EXPECT_EQ(rec, "a,\"line1\nline2\",z");
  ASSERT_TRUE(NextRecord(data, &pos, &rec));
  EXPECT_EQ(rec, "next,row,here");
  EXPECT_FALSE(NextRecord(data, &pos, &rec));
}

TEST(Inference, QuotedSeparatorsDoNotSkewSeparatorDetection) {
  // Every row has commas inside quotes; the real separator is '|'.
  auto r = InferFormat(
      "\"a,b,c\"|1\n\"d,e,f\"|2\n\"g,h,i\"|3\n\"j,k,l\"|4\n");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().field_separator, '|');
  EXPECT_EQ(r.value().schema.num_fields(), 2u);
}

TEST(Inference, QuotedHeaderNamesAreUnescaped) {
  auto r = InferFormat(
      "\"name\",\"the \"\"big\"\" one\"\nx,1\ny,2\n");
  ASSERT_TRUE(r.ok());
  ASSERT_TRUE(r.value().has_header);
  ASSERT_EQ(r.value().schema.num_fields(), 2u);
  EXPECT_EQ(r.value().schema.field(0).name, "name");
  EXPECT_EQ(r.value().schema.field(1).name, "the \"big\" one");
}

TEST(Inference, DetectsCommaSeparator) {
  auto r = InferFormat("a,b,c\n1,2,3\n4,5,6\n");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().field_separator, ',');
}

TEST(Inference, DetectsPipeSeparator) {
  auto r = InferFormat("1|2,5|x\n3|4,7|y\n9|1,2|z\n");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().field_separator, '|');
}

TEST(Inference, DetectsTabSeparator) {
  auto r = InferFormat("1\t2\n3\t4\n");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().field_separator, '\t');
}

TEST(Inference, CompetitiveTyping) {
  auto r = InferFormat(
      "id,price,when,flag,name\n"
      "1,2.5,2001-02-03,true,alice\n"
      "2,3.75,2002-03-04,false,bob\n"
      "3,4,2003-04-05,true,carol\n");
  ASSERT_TRUE(r.ok());
  const Schema& s = r.value().schema;
  ASSERT_EQ(s.num_fields(), 5u);
  EXPECT_EQ(s.field(0).type, TypeId::kInteger);
  EXPECT_EQ(s.field(1).type, TypeId::kReal);
  EXPECT_EQ(s.field(2).type, TypeId::kDate);
  EXPECT_EQ(s.field(3).type, TypeId::kBool);
  EXPECT_EQ(s.field(4).type, TypeId::kString);
}

TEST(Inference, HeaderDetectedByParserErrorsOnFirstRow) {
  auto with = InferFormat("count,when\n1,2001-01-01\n2,2001-01-02\n");
  ASSERT_TRUE(with.ok());
  EXPECT_TRUE(with.value().has_header);
  EXPECT_EQ(with.value().schema.field(0).name, "count");
  EXPECT_EQ(with.value().schema.field(1).name, "when");

  auto without = InferFormat("5,2001-01-01\n6,2001-01-02\n7,2001-01-03\n");
  ASSERT_TRUE(without.ok());
  EXPECT_FALSE(without.value().has_header);
  EXPECT_EQ(without.value().schema.field(0).name, "col0");
}

TEST(Inference, DirtyColumnFallsBackToString) {
  auto r = InferFormat("x\n1\n2\noops\n4\n");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().schema.field(0).type, TypeId::kString);
}

TEST(Inference, EmptyValuesDoNotVote) {
  auto r = InferFormat("x\n1\n\n2\n\n3\n");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().schema.field(0).type, TypeId::kInteger);
}

TEST(Inference, DateTimeBeatsDateWhenNeeded) {
  auto r = InferFormat("t\n2001-01-01 10:00:00\n2001-01-02 11:30:00\n");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().schema.field(0).type, TypeId::kDateTime);
}

TEST(Inference, EmptyInputFails) {
  EXPECT_EQ(InferFormat("").status().code(), StatusCode::kParseError);
}

}  // namespace
}  // namespace tde
