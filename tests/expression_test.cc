#include "src/exec/expression.h"

#include <bit>

#include <gtest/gtest.h>

namespace tde {
namespace {

using namespace tde::expr;  // NOLINT: test readability

struct Fixture {
  Schema schema;
  Block block;

  Fixture() {
    schema.AddField({"i", TypeId::kInteger});
    schema.AddField({"r", TypeId::kReal});
    schema.AddField({"d", TypeId::kDate});
    schema.AddField({"s", TypeId::kString});
    block.columns.resize(4);
    block.columns[0].type = TypeId::kInteger;
    block.columns[0].lanes = {1, 2, kNullSentinel, 40};
    block.columns[1].type = TypeId::kReal;
    for (double v : {0.5, -1.0, 2.25, 100.0}) {
      block.columns[1].lanes.push_back(
          static_cast<Lane>(std::bit_cast<uint64_t>(v)));
    }
    block.columns[2].type = TypeId::kDate;
    block.columns[2].lanes = {
        DaysFromCivil(2001, 3, 15), DaysFromCivil(2001, 3, 20),
        DaysFromCivil(2002, 7, 1), DaysFromCivil(1999, 12, 31)};
    auto heap = std::make_shared<StringHeap>();
    block.columns[3].type = TypeId::kString;
    for (const char* s : {"/a/b.html", "x.JPG", "noext", "q.css?v=2"}) {
      block.columns[3].lanes.push_back(heap->Add(s));
    }
    block.columns[3].heap = heap;
  }

  ColumnVector Eval(const ExprPtr& e) {
    auto r = e->Eval(block, schema);
    EXPECT_TRUE(r.ok()) << r.status().ToString();
    return r.MoveValue();
  }
};

TEST(Expr, ColumnRefAndLiteral) {
  Fixture f;
  EXPECT_EQ(f.Eval(Col("i")).lanes[3], 40);
  EXPECT_EQ(f.Eval(Int(9)).lanes, (std::vector<Lane>(4, 9)));
  EXPECT_NE(Col("i")->AsColumnRef(), nullptr);
  EXPECT_EQ(Int(9)->AsColumnRef(), nullptr);
}

TEST(Expr, UnknownColumnFails) {
  Fixture f;
  EXPECT_EQ(Col("zzz")->Eval(f.block, f.schema).status().code(),
            StatusCode::kNotFound);
}

TEST(Expr, IntegerComparisons) {
  Fixture f;
  EXPECT_EQ(f.Eval(Gt(Col("i"), Int(1))).lanes,
            (std::vector<Lane>{0, 1, 0, 1}));  // NULL compares false
  EXPECT_EQ(f.Eval(Eq(Col("i"), Int(2))).lanes,
            (std::vector<Lane>{0, 1, 0, 0}));
  EXPECT_EQ(f.Eval(Le(Col("i"), Int(2))).lanes,
            (std::vector<Lane>{1, 1, 0, 0}));
  EXPECT_EQ(f.Eval(Ne(Col("i"), Int(1))).lanes,
            (std::vector<Lane>{0, 1, 0, 1}));
}

TEST(Expr, RealComparisonsPromote) {
  Fixture f;
  EXPECT_EQ(f.Eval(Lt(Col("r"), Int(1))).lanes,
            (std::vector<Lane>{1, 1, 0, 0}));
  EXPECT_EQ(f.Eval(Ge(Col("r"), Real(2.25))).lanes,
            (std::vector<Lane>{0, 0, 1, 1}));
}

TEST(Expr, DateComparisons) {
  Fixture f;
  EXPECT_EQ(f.Eval(Ge(Col("d"), Date(2001, 3, 20))).lanes,
            (std::vector<Lane>{0, 1, 1, 0}));
}

TEST(Expr, StringComparisonsCollate) {
  Fixture f;
  EXPECT_EQ(f.Eval(Eq(Col("s"), Str("noext"))).lanes,
            (std::vector<Lane>{0, 0, 1, 0}));
  // Locale collation folds case at primary strength but (like ICU's
  // default tertiary strength) still distinguishes case for equality...
  EXPECT_EQ(f.Eval(Eq(Col("s"), Str("X.jpg"))).lanes,
            (std::vector<Lane>{0, 0, 0, 0}));
  // ...while ordering is case-insensitive: "x.JPG" < "Y" under locale.
  EXPECT_EQ(f.Eval(Lt(Col("s"), Str("Y"))).lanes,
            (std::vector<Lane>{1, 1, 1, 1}));
}

TEST(Expr, Arithmetic) {
  Fixture f;
  EXPECT_EQ(f.Eval(Add(Col("i"), Int(10))).lanes,
            (std::vector<Lane>{11, 12, kNullSentinel, 50}));
  EXPECT_EQ(f.Eval(Mul(Col("i"), Col("i"))).lanes,
            (std::vector<Lane>{1, 4, kNullSentinel, 1600}));
  EXPECT_EQ(f.Eval(Div(Col("i"), Int(0))).lanes,
            (std::vector<Lane>(4, kNullSentinel)));
  EXPECT_EQ(f.Eval(Arith(ArithOp::kMod, Col("i"), Int(3))).lanes,
            (std::vector<Lane>{1, 2, kNullSentinel, 1}));
}

TEST(Expr, RealArithmetic) {
  Fixture f;
  const auto v = f.Eval(Mul(Col("r"), Real(2.0)));
  EXPECT_EQ(v.type, TypeId::kReal);
  EXPECT_DOUBLE_EQ(std::bit_cast<double>(static_cast<uint64_t>(v.lanes[0])),
                   1.0);
}

TEST(Expr, LogicalOps) {
  Fixture f;
  const auto a = Gt(Col("i"), Int(1));
  const auto b = Lt(Col("i"), Int(40));
  EXPECT_EQ(f.Eval(And(a, b)).lanes, (std::vector<Lane>{0, 1, 0, 0}));
  EXPECT_EQ(f.Eval(Or(a, b)).lanes, (std::vector<Lane>{1, 1, 0, 1}));
  EXPECT_EQ(f.Eval(Not(a)).lanes, (std::vector<Lane>{1, 0, 1, 0}));
}

TEST(Expr, IsNull) {
  Fixture f;
  EXPECT_EQ(f.Eval(IsNull(Col("i"))).lanes, (std::vector<Lane>{0, 0, 1, 0}));
}

TEST(Expr, DateFunctions) {
  Fixture f;
  EXPECT_EQ(f.Eval(DateF(DateFunc::kYear, Col("d"))).lanes,
            (std::vector<Lane>{2001, 2001, 2002, 1999}));
  EXPECT_EQ(f.Eval(DateF(DateFunc::kMonth, Col("d"))).lanes,
            (std::vector<Lane>{3, 3, 7, 12}));
  const auto trunc = f.Eval(DateF(DateFunc::kTruncMonth, Col("d")));
  EXPECT_EQ(trunc.type, TypeId::kDate);
  EXPECT_EQ(trunc.lanes[0], DaysFromCivil(2001, 3, 1));
  EXPECT_EQ(trunc.lanes[1], DaysFromCivil(2001, 3, 1));
}

TEST(Expr, StringExtension) {
  Fixture f;
  const auto v = f.Eval(StrF(StrFunc::kExtension, Col("s")));
  ASSERT_EQ(v.type, TypeId::kString);
  EXPECT_EQ(v.heap->Get(v.lanes[0]), "html");
  EXPECT_EQ(v.heap->Get(v.lanes[1]), "JPG");
  EXPECT_EQ(v.heap->Get(v.lanes[2]), "");
  EXPECT_EQ(v.heap->Get(v.lanes[3]), "css");  // query string stripped
}

TEST(Expr, StringUpperLowerLength) {
  Fixture f;
  const auto up = f.Eval(StrF(StrFunc::kUpper, Col("s")));
  EXPECT_EQ(up.heap->Get(up.lanes[2]), "NOEXT");
  const auto low = f.Eval(StrF(StrFunc::kLower, Col("s")));
  EXPECT_EQ(low.heap->Get(low.lanes[1]), "x.jpg");
  EXPECT_EQ(f.Eval(StrF(StrFunc::kLength, Col("s"))).lanes,
            (std::vector<Lane>{9, 5, 5, 9}));
}

TEST(Expr, ToStringRendersTree) {
  const auto e = And(Gt(Col("x"), Int(5)), Eq(Col("y"), Str("a")));
  EXPECT_EQ(e->ToString(), "((x > 5) AND (y = 'a'))");
}

TEST(Expr, CollectColumns) {
  std::vector<std::string> cols;
  Add(Col("a"), Mul(Col("b"), Col("a")))->CollectColumns(&cols);
  ASSERT_EQ(cols.size(), 3u);
  EXPECT_EQ(cols[0], "a");
  EXPECT_EQ(cols[1], "b");
}

}  // namespace
}  // namespace tde
