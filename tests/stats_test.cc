#include "src/encoding/stats.h"

#include <gtest/gtest.h>

namespace tde {
namespace {

EncodingStats Make(const std::vector<Lane>& v) {
  EncodingStats s;
  s.Update(v.data(), v.size());
  return s;
}

TEST(Stats, TracksRangeAndDeltas) {
  auto s = Make({5, 2, 9, 9, 3});
  EXPECT_EQ(s.count(), 5u);
  EXPECT_EQ(s.min_value(), 2);
  EXPECT_EQ(s.max_value(), 9);
  EXPECT_EQ(s.first_value(), 5);
  EXPECT_EQ(s.last_value(), 3);
  EXPECT_EQ(static_cast<int64_t>(s.min_delta()), -6);
  EXPECT_EQ(static_cast<int64_t>(s.max_delta()), 7);
  EXPECT_FALSE(s.sorted());
}

TEST(Stats, SortedAndConstantDelta) {
  auto sorted = Make({1, 3, 3, 7});
  EXPECT_TRUE(sorted.sorted());
  EXPECT_FALSE(sorted.constant_delta());
  auto affine = Make({10, 13, 16, 19});
  EXPECT_TRUE(affine.constant_delta());
  EXPECT_EQ(static_cast<int64_t>(affine.min_delta()), 3);
}

TEST(Stats, IncrementalUpdatesMatchBatch) {
  std::vector<Lane> v = {9, -4, 100, 100, 100, 7, 8};
  auto batch = Make(v);
  EncodingStats inc;
  for (Lane x : v) inc.Update(&x, 1);
  EXPECT_EQ(inc.min_value(), batch.min_value());
  EXPECT_EQ(inc.max_value(), batch.max_value());
  EXPECT_EQ(inc.run_count(), batch.run_count());
  EXPECT_EQ(inc.max_run_length(), batch.max_run_length());
  EXPECT_EQ(inc.cardinality(), batch.cardinality());
  EXPECT_TRUE(inc.min_delta() == batch.min_delta());
}

TEST(Stats, RunsAndCardinality) {
  auto s = Make({1, 1, 1, 2, 2, 1});
  EXPECT_EQ(s.run_count(), 3u);
  EXPECT_EQ(s.max_run_length(), 3u);
  ASSERT_TRUE(s.cardinality_known());
  EXPECT_EQ(s.cardinality(), 2u);
}

TEST(Stats, DistinctTrackingAbandonedPastDictLimit) {
  EncodingStats s;
  std::vector<Lane> v(kMaxDictEntries + 10);
  for (size_t i = 0; i < v.size(); ++i) v[i] = static_cast<Lane>(i);
  s.Update(v.data(), v.size());
  EXPECT_FALSE(s.cardinality_known());
}

TEST(Stats, NullCounting) {
  auto s = Make({1, kNullSentinel, 3});
  EXPECT_EQ(s.null_count(), 1u);
}

TEST(Stats, Int64ExtremesDoNotOverflowDeltas) {
  auto s = Make({INT64_MAX, INT64_MIN, INT64_MAX});
  EXPECT_EQ(s.min_value(), INT64_MIN);
  EXPECT_EQ(s.max_value(), INT64_MAX);
  // min delta is below int64 range -> delta encoding impossible.
  EXPECT_EQ(s.EstimateSize(EncodingType::kDelta, 8), UINT64_MAX);
}

TEST(Stats, ChoosesAffineForArithmeticSequence) {
  std::vector<Lane> v(kBlockSize * 3);
  for (size_t i = 0; i < v.size(); ++i) v[i] = 100 + 2 * static_cast<Lane>(i);
  EXPECT_EQ(Make(v).ChooseEncoding(8, kAllowAll), EncodingType::kAffine);
}

TEST(Stats, ChoosesRleForLongRuns) {
  std::vector<Lane> v;
  for (int i = 0; i < 10; ++i) {
    v.insert(v.end(), 5000, (i * 37) % 11 - 5);  // few runs, narrow values
  }
  EXPECT_EQ(Make(v).ChooseEncoding(8, kAllowAll), EncodingType::kRunLength);
}

TEST(Stats, RleExcludedByRandomAccessMask) {
  std::vector<Lane> v;
  for (int i = 0; i < 10; ++i) v.insert(v.end(), 5000, (i * 37) % 11 - 5);
  const EncodingType t = Make(v).ChooseEncoding(8, kAllowRandomAccess);
  EXPECT_NE(t, EncodingType::kRunLength);
}

TEST(Stats, ChoosesDictForSmallScatteredDomain) {
  std::vector<Lane> v(20000);
  for (size_t i = 0; i < v.size(); ++i) {
    v[i] = static_cast<Lane>((i * 7919) % 40) * 1000000007LL;  // wide values
  }
  EXPECT_EQ(Make(v).ChooseEncoding(8, kAllowAll), EncodingType::kDictionary);
}

TEST(Stats, ChoosesForWhenRangeNarrow) {
  std::vector<Lane> v(100000);
  for (size_t i = 0; i < v.size(); ++i) {
    // > 2^15 distinct values (kills dict), small range, unsorted.
    v[i] = 1000000 + static_cast<Lane>((i * 48271) % 70000);
  }
  EXPECT_EQ(Make(v).ChooseEncoding(8, kAllowAll),
            EncodingType::kFrameOfReference);
}

TEST(Stats, ChoosesDeltaForSortedDriftingValues) {
  std::vector<Lane> v(100000);
  Lane acc = 0;
  for (size_t i = 0; i < v.size(); ++i) {
    acc += static_cast<Lane>((i * 31) % 256);  // unique-ish sorted, wide range
    v[i] = acc * 257;                          // spread out the range
  }
  const auto s = Make(v);
  EXPECT_LT(s.EstimateSize(EncodingType::kDelta, 8),
            s.EstimateSize(EncodingType::kFrameOfReference, 8));
  EXPECT_EQ(s.ChooseEncoding(8, kAllowAll), EncodingType::kDelta);
}

TEST(Stats, UncompressedIsTheFallback) {
  // Random 64-bit values: nothing helps.
  std::vector<Lane> v(100000);
  uint64_t x = 12345;
  for (auto& o : v) {
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    o = static_cast<Lane>(x);
  }
  EXPECT_EQ(Make(v).ChooseEncoding(8, kAllowAll),
            EncodingType::kUncompressed);
}

TEST(Stats, EstimateAffineImpossibleWhenNotConstant) {
  EXPECT_EQ(Make({1, 2, 4}).EstimateSize(EncodingType::kAffine, 8),
            UINT64_MAX);
}

TEST(Stats, EstimateDictImpossibleWhenDomainTooBig) {
  EncodingStats s;
  std::vector<Lane> v(kMaxDictEntries + 1);
  for (size_t i = 0; i < v.size(); ++i) v[i] = static_cast<Lane>(i * 3);
  s.Update(v.data(), v.size());
  EXPECT_EQ(s.EstimateSize(EncodingType::kDictionary, 8), UINT64_MAX);
}

}  // namespace
}  // namespace tde
