#include "src/exec/parallel_rollup.h"

#include <gtest/gtest.h>

#include "src/exec/flow_table.h"
#include "src/exec/hash_aggregate.h"
#include "src/storage/heap_accelerator.h"
#include "tests/test_util.h"

namespace tde {
namespace {

using testutil::VectorSource;

/// A table with a sorted date-like column (runs per day) and a value.
std::shared_ptr<Table> DailyTable(int days, int rows_per_day) {
  std::vector<Lane> day, value;
  const int64_t start = DaysFromCivil(2010, 1, 1);
  for (int d = 0; d < days; ++d) {
    for (int i = 0; i < rows_per_day; ++i) {
      day.push_back(start + d);
      value.push_back(d * 1000 + i);
    }
  }
  return FlowTable::Build(VectorSource::Ints({{"day", day}, {"value", value}}))
      .MoveValue();
}

TEST(RollUpIndex, ConvertsDayIndexToMonthIndex) {
  auto t = DailyTable(90, 10);  // Jan, Feb, Mar 2010
  auto index = BuildIndexTable(*t->ColumnByName("day").value()).MoveValue();
  ASSERT_EQ(index.size(), 90u);
  auto monthly = RollUpIndex(index, TruncateToMonth).MoveValue();
  ASSERT_EQ(monthly.size(), 3u);
  EXPECT_EQ(monthly[0].value, DaysFromCivil(2010, 1, 1));
  EXPECT_EQ(monthly[0].count, 310u);  // 31 days x 10
  EXPECT_EQ(monthly[0].start, 0u);
  EXPECT_EQ(monthly[1].value, DaysFromCivil(2010, 2, 1));
  EXPECT_EQ(monthly[1].count, 280u);
  EXPECT_EQ(monthly[1].start, 310u);
  EXPECT_EQ(monthly[2].count, 310u);
}

TEST(RollUpIndex, RejectsNonOrderPreservingFunction) {
  auto t = DailyTable(60, 5);
  auto index = BuildIndexTable(*t->ColumnByName("day").value()).MoveValue();
  // Day-of-month is not order preserving over two months: groups repeat.
  auto r = RollUpIndex(index, [](Lane d) { return Lane{DateDay(d)}; });
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

TEST(RollUpIndex, IdentityIsANoOp) {
  auto t = DailyTable(10, 3);
  auto index = BuildIndexTable(*t->ColumnByName("day").value()).MoveValue();
  auto same = RollUpIndex(index, [](Lane v) { return v; }).MoveValue();
  ASSERT_EQ(same.size(), index.size());
  for (size_t i = 0; i < index.size(); ++i) {
    EXPECT_EQ(same[i].value, index[i].value);
    EXPECT_EQ(same[i].count, index[i].count);
    EXPECT_EQ(same[i].start, index[i].start);
  }
}

class ParallelRollup : public ::testing::TestWithParam<int> {};

TEST_P(ParallelRollup, MatchesSerialAndIsOrdered) {
  const int workers = GetParam();
  auto t = DailyTable(365, 20);
  auto index = BuildIndexTable(*t->ColumnByName("day").value()).MoveValue();
  auto monthly = RollUpIndex(index, TruncateToMonth).MoveValue();

  ParallelRollupOptions opts;
  opts.value_name = "month";
  opts.payload = {"value"};
  opts.aggs = {{AggKind::kSum, "value", "total"},
               {AggKind::kCountStar, "", "rows"}};
  opts.workers = workers;
  auto par = ParallelIndexedAggregate(t, monthly, opts);
  ASSERT_TRUE(par.ok()) << par.status().ToString();

  opts.workers = 1;
  auto ser = ParallelIndexedAggregate(t, monthly, opts).MoveValue();

  const auto pk = testutil::Flatten(par.value().blocks, 0);
  const auto sk = testutil::Flatten(ser.blocks, 0);
  EXPECT_EQ(pk, sk);
  EXPECT_EQ(testutil::Flatten(par.value().blocks, 1),
            testutil::Flatten(ser.blocks, 1));
  EXPECT_EQ(testutil::Flatten(par.value().blocks, 2),
            testutil::Flatten(ser.blocks, 2));
  // Globally ordered output (12 months ascending).
  ASSERT_EQ(pk.size(), 12u);
  EXPECT_TRUE(std::is_sorted(pk.begin(), pk.end()));
  // Totals: 365 days x 20 rows.
  uint64_t rows = 0;
  for (Lane n : testutil::Flatten(par.value().blocks, 2)) {
    rows += static_cast<uint64_t>(n);
  }
  EXPECT_EQ(rows, 365u * 20u);
}

INSTANTIATE_TEST_SUITE_P(WorkerCounts, ParallelRollup,
                         ::testing::Values(1, 2, 3, 7));

TEST(ParallelRollup, EmptyIndexYieldsEmptyResult) {
  auto t = DailyTable(5, 2);
  ParallelRollupOptions opts;
  opts.value_name = "day";
  opts.payload = {"value"};
  opts.aggs = {{AggKind::kCountStar, "", "n"}};
  auto r = ParallelIndexedAggregate(t, {}, opts);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  uint64_t rows = 0;
  for (const Block& b : r.value().blocks) rows += b.rows();
  EXPECT_EQ(rows, 0u);
  EXPECT_EQ(r.value().schema.num_fields(), 2u);
}

TEST(ParallelRollup, PartitionBoundariesRespectGroups) {
  // Two giant groups, many workers: each group must stay intact.
  std::vector<Lane> day(5000, 1), value(5000, 1);
  for (int i = 0; i < 5000; ++i) {
    if (i >= 2500) day[static_cast<size_t>(i)] = 2;
  }
  auto t = FlowTable::Build(
               VectorSource::Ints({{"day", day}, {"value", value}}))
               .MoveValue();
  auto index = BuildIndexTable(*t->ColumnByName("day").value()).MoveValue();
  ParallelRollupOptions opts;
  opts.value_name = "day";
  opts.payload = {"value"};
  opts.aggs = {{AggKind::kCountStar, "", "n"}};
  opts.workers = 8;
  auto r = ParallelIndexedAggregate(t, index, opts).MoveValue();
  EXPECT_EQ(testutil::Flatten(r.blocks, 0), (std::vector<Lane>{1, 2}));
  EXPECT_EQ(testutil::Flatten(r.blocks, 1), (std::vector<Lane>{2500, 2500}));
}

// --- Regressions from the differential harness (tests/differential_test) --

/// Found by differential seeds 5/8: MIN/MAX/MEDIAN over strings compared
/// raw heap tokens — insertion order — instead of collation order. A heap
/// built in arrival order (fed straight to the operator, no FlowTable
/// re-sort) makes the two orders disagree.
TEST(AggregateStrings, MinMaxMedianFollowCollationNotTokenOrder) {
  Schema schema;
  schema.AddField({"s", TypeId::kString});
  std::vector<ColumnVector> cols(1);
  cols[0].type = TypeId::kString;
  auto heap = std::make_shared<StringHeap>();
  HeapAccelerator acc(heap.get());
  for (const char* w : {"pear", "apple", "zucchini", "mango", "fig"}) {
    cols[0].lanes.push_back(acc.Add(w));
  }
  cols[0].heap = heap;
  auto src = std::make_unique<testutil::VectorSource>(std::move(schema),
                                                      std::move(cols));
  AggregateOptions opts;
  opts.aggs = {{AggKind::kMin, "s", "mn"},
               {AggKind::kMax, "s", "mx"},
               {AggKind::kMedian, "s", "md"}};
  HashAggregate agg(std::move(src), opts);
  auto blocks = testutil::Drain(&agg);
  ASSERT_EQ(blocks.size(), 1u);
  ASSERT_EQ(blocks[0].rows(), 1u);
  auto render = [&](size_t c) {
    const ColumnVector& cv = blocks[0].columns[c];
    return std::string(cv.heap->Get(cv.lanes[0]));
  };
  EXPECT_EQ(render(0), "apple");
  EXPECT_EQ(render(1), "zucchini");
  EXPECT_EQ(render(2), "mango");  // apple fig [mango] pear zucchini
}

}  // namespace
}  // namespace tde
