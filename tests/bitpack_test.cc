#include "src/encoding/bitpack.h"

#include <random>
#include <vector>

#include <gtest/gtest.h>

namespace tde {
namespace {

TEST(BitPack, PackedBytesFormula) {
  EXPECT_EQ(PackedBytes(0, 7), 0u);
  EXPECT_EQ(PackedBytes(8, 1), 1u);
  EXPECT_EQ(PackedBytes(9, 1), 2u);
  EXPECT_EQ(PackedBytes(32, 5), 20u);
  EXPECT_EQ(PackedBytes(1024, 0), 0u);
  EXPECT_EQ(PackedBytes(3, 64), 24u);
}

TEST(BitPack, ZeroBitsDecodesToZeros) {
  std::vector<uint64_t> out(16, 123);
  UnpackBits(nullptr, 16, 0, out.data());
  for (uint64_t v : out) EXPECT_EQ(v, 0u);
}

TEST(BitPack, SingleValueLowBits) {
  uint64_t v = 0b101;
  std::vector<uint8_t> buf(PackedBytes(1, 3));
  PackBits(&v, 1, 3, buf.data());
  EXPECT_EQ(buf[0], 0b101);
  uint64_t back = 0;
  UnpackBits(buf.data(), 1, 3, &back);
  EXPECT_EQ(back, v);
}

TEST(BitPack, ValuesCrossByteBoundaries) {
  // 3 values x 5 bits = 15 bits -> 2 bytes.
  std::vector<uint64_t> vals = {0b10101, 0b01010, 0b11111};
  std::vector<uint8_t> buf(PackedBytes(vals.size(), 5));
  ASSERT_EQ(buf.size(), 2u);
  PackBits(vals.data(), vals.size(), 5, buf.data());
  std::vector<uint64_t> back(vals.size());
  UnpackBits(buf.data(), back.size(), 5, back.data());
  EXPECT_EQ(back, vals);
}

TEST(BitPack, MasksHighBitsOnPack) {
  uint64_t v = 0xFF;  // only the low 4 bits should survive
  std::vector<uint8_t> buf(PackedBytes(1, 4));
  PackBits(&v, 1, 4, buf.data());
  uint64_t back = 0;
  UnpackBits(buf.data(), 1, 4, &back);
  EXPECT_EQ(back, 0xFu);
}

class BitPackRoundTrip : public ::testing::TestWithParam<int> {};

TEST_P(BitPackRoundTrip, RandomValues) {
  const uint8_t bits = static_cast<uint8_t>(GetParam());
  std::mt19937_64 rng(42 + bits);
  const size_t n = 1024;
  const uint64_t mask =
      bits >= 64 ? ~uint64_t{0} : (uint64_t{1} << bits) - 1;
  std::vector<uint64_t> vals(n);
  for (auto& v : vals) v = rng() & mask;
  std::vector<uint8_t> buf(PackedBytes(n, bits));
  PackBits(vals.data(), n, bits, buf.data());
  std::vector<uint64_t> back(n);
  UnpackBits(buf.data(), n, bits, back.data());
  EXPECT_EQ(back, vals) << "bits=" << static_cast<int>(bits);
}

TEST_P(BitPackRoundTrip, ExtremeValues) {
  const uint8_t bits = static_cast<uint8_t>(GetParam());
  if (bits == 0) GTEST_SKIP();
  const uint64_t mask =
      bits >= 64 ? ~uint64_t{0} : (uint64_t{1} << bits) - 1;
  std::vector<uint64_t> vals = {0, mask, 0, mask, mask, 0, 1, mask - 1};
  std::vector<uint8_t> buf(PackedBytes(vals.size(), bits));
  PackBits(vals.data(), vals.size(), bits, buf.data());
  std::vector<uint64_t> back(vals.size());
  UnpackBits(buf.data(), back.size(), bits, back.data());
  EXPECT_EQ(back, vals);
}

INSTANTIATE_TEST_SUITE_P(AllWidths, BitPackRoundTrip,
                         ::testing::Range(0, 65));

}  // namespace
}  // namespace tde
