// Property-based sweeps over the core invariants:
//   * whatever values go into a dynamic encoder come back out, for any
//     value distribution;
//   * the strategic rewrites never change query answers;
//   * a table written as text and imported again holds the same values;
//   * run-length random access agrees with a reference vector under
//     arbitrary access patterns.

#include <bit>
#include <limits>
#include <map>
#include <random>

#include <gtest/gtest.h>

#include "src/core/engine.h"
#include "src/encoding/dynamic_encoder.h"
#include "src/exec/ordered_aggregate.h"
#include "src/workload/rle_data.h"
#include "tests/test_util.h"

namespace tde {
namespace {

using testutil::VectorSource;
using namespace tde::expr;  // NOLINT

// ---------------------------------------------------------------- encoder

struct Distribution {
  const char* name;
  std::function<Lane(std::mt19937_64&, size_t)> gen;
};

std::vector<Distribution> Distributions() {
  return {
      {"constant", [](std::mt19937_64&, size_t) { return Lane{7}; }},
      {"ramp", [](std::mt19937_64&, size_t i) { return static_cast<Lane>(i); }},
      {"strided",
       [](std::mt19937_64&, size_t i) { return static_cast<Lane>(i) * 37; }},
      {"small_domain",
       [](std::mt19937_64& r, size_t) { return static_cast<Lane>(r() % 13); }},
      {"narrow_range",
       [](std::mt19937_64& r, size_t) {
         return 1000000 + static_cast<Lane>(r() % 5000);
       }},
      {"runs",
       [](std::mt19937_64& r, size_t i) {
         return static_cast<Lane>((i / (1 + r() % 3 * 0 + 700)) % 9);
       }},
      {"sorted_drift",
       [](std::mt19937_64& r, size_t i) {
         return static_cast<Lane>(i) * 11 + static_cast<Lane>(r() % 10);
       }},
      {"wild",
       [](std::mt19937_64& r, size_t) { return static_cast<Lane>(r()); }},
      {"negative",
       [](std::mt19937_64& r, size_t) {
         return -static_cast<Lane>(r() % 100000);
       }},
      {"nulls",
       [](std::mt19937_64& r, size_t) {
         return r() % 10 == 0 ? kNullSentinel
                              : static_cast<Lane>(r() % 50);
       }},
      {"mode_switch",
       [](std::mt19937_64& r, size_t i) {
         // Starts affine, turns random: forces mid-stream re-encodes.
         return i < 3000 ? static_cast<Lane>(i)
                         : static_cast<Lane>(r() % 1000000);
       }},
      {"extremes",
       [](std::mt19937_64& r, size_t) {
         switch (r() % 4) {
           case 0: return std::numeric_limits<Lane>::max();
           case 1: return std::numeric_limits<Lane>::min() + 1;
           case 2: return Lane{0};
           default: return Lane{-1};
         }
       }},
  };
}

class EncoderProperty
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(EncoderProperty, RoundTripsAnyDistribution) {
  const auto [dist_idx, seed] = GetParam();
  const Distribution dist = Distributions()[static_cast<size_t>(dist_idx)];
  std::mt19937_64 rng(static_cast<uint64_t>(seed) * 7919 + 13);
  const size_t n = 5000 + rng() % 3000;
  std::vector<Lane> values(n);
  for (size_t i = 0; i < n; ++i) values[i] = dist.gen(rng, i);

  DynamicEncoder enc(DynamicEncoderOptions{});
  for (size_t i = 0; i < n; i += kBlockSize) {
    const size_t take = std::min<size_t>(kBlockSize, n - i);
    ASSERT_TRUE(enc.Append(values.data() + i, take).ok());
  }
  auto col = enc.Finalize();
  ASSERT_TRUE(col.ok()) << dist.name << ": " << col.status().ToString();
  ASSERT_EQ(col.value().stream->size(), n);
  std::vector<Lane> back(n);
  ASSERT_TRUE(col.value().stream->Get(0, n, back.data()).ok());
  EXPECT_EQ(back, values) << dist.name;

  // Serialize/reopen preserves everything too.
  auto reopened = EncodedStream::Open(col.value().stream->buffer());
  ASSERT_TRUE(reopened.ok()) << dist.name;
  std::vector<Lane> back2(n);
  ASSERT_TRUE(reopened.value()->Get(0, n, back2.data()).ok());
  EXPECT_EQ(back2, values) << dist.name;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, EncoderProperty,
    ::testing::Combine(::testing::Range(0, 12), ::testing::Range(0, 3)),
    [](const auto& info) {
      return std::string(
                 Distributions()[static_cast<size_t>(
                                     std::get<0>(info.param))]
                     .name) +
             "_s" + std::to_string(std::get<1>(info.param));
    });

// ------------------------------------------------------ plan equivalence

class RankJoinEquivalence : public ::testing::TestWithParam<int> {};

TEST_P(RankJoinEquivalence, RewrittenPlansAnswerIdentically) {
  const int selectivity = GetParam();
  static const auto table = MakeRleTable(200000).MoveValue();
  auto make = [&]() {
    return Plan::Scan(table)
        .Filter(Gt(Col("secondary"), Int(100 - selectivity)))
        .Aggregate({"secondary"}, {{AggKind::kMax, "primary", "mx"},
                                   {AggKind::kMin, "primary", "mn"},
                                   {AggKind::kCountStar, "", "n"}});
  };
  StrategicOptions off;
  off.enable_rank_join = false;
  off.enable_invisible_join = false;
  auto control =
      ExecutePlanNode(StrategicOptimize(make().root(), off).MoveValue())
          .MoveValue();
  auto indexed =
      ExecutePlanNode(StrategicOptimize(make().root()).MoveValue())
          .MoveValue();
  ASSERT_EQ(control.num_rows(), indexed.num_rows()) << selectivity;
  std::map<Lane, std::vector<Lane>> c, x;
  for (uint64_t r = 0; r < control.num_rows(); ++r) {
    c[control.Value(r, 0)] = {control.Value(r, 1), control.Value(r, 2),
                              control.Value(r, 3)};
    x[indexed.Value(r, 0)] = {indexed.Value(r, 1), indexed.Value(r, 2),
                              indexed.Value(r, 3)};
  }
  EXPECT_EQ(c, x) << selectivity;
}

INSTANTIATE_TEST_SUITE_P(Selectivities, RankJoinEquivalence,
                         ::testing::Values(0, 1, 5, 33, 50, 99, 100));

class InvisibleJoinEquivalence : public ::testing::TestWithParam<int> {};

TEST_P(InvisibleJoinEquivalence, RewrittenPlansAnswerIdentically) {
  const int seed = GetParam();
  std::mt19937_64 rng(static_cast<uint64_t>(seed));
  const char* colors[] = {"red", "green", "blue", "cyan", "violet"};
  std::string csv = "color,v\n";
  for (int i = 0; i < 5000; ++i) {
    csv += colors[rng() % 5];
    csv += ",";
    csv += std::to_string(rng() % 1000);
    csv += "\n";
  }
  Engine engine;
  auto t = engine.ImportTextBuffer(csv, "t").MoveValue();
  const char* target = colors[rng() % 5];
  auto make = [&]() {
    return Plan::Scan(t)
        .Filter(Eq(Col("color"), Str(target)))
        .Aggregate({}, {{AggKind::kSum, "v", "s"},
                        {AggKind::kCountStar, "", "n"}});
  };
  StrategicOptions off;
  off.enable_invisible_join = false;
  auto control = engine.Execute(make(), off).MoveValue();
  auto invisible = engine.Execute(make()).MoveValue();
  EXPECT_EQ(control.Value(0, 0), invisible.Value(0, 0)) << target;
  EXPECT_EQ(control.Value(0, 1), invisible.Value(0, 1)) << target;
}

INSTANTIATE_TEST_SUITE_P(Seeds, InvisibleJoinEquivalence,
                         ::testing::Range(0, 8));

// ----------------------------------------------------- text round trips

class TextRoundTrip : public ::testing::TestWithParam<int> {};

TEST_P(TextRoundTrip, ImportedValuesMatchGenerated) {
  std::mt19937_64 rng(static_cast<uint64_t>(GetParam()) * 101 + 7);
  const size_t rows = 500 + rng() % 2000;
  std::vector<int64_t> ints(rows);
  std::vector<double> reals(rows);
  std::vector<int64_t> dates(rows);
  std::vector<std::string> strs(rows);
  std::string csv = "i,r,d,s\n";
  for (size_t i = 0; i < rows; ++i) {
    ints[i] = static_cast<int64_t>(rng() % 2000000) - 1000000;
    reals[i] = static_cast<double>(rng() % 1000000) / 64.0;
    dates[i] = static_cast<int64_t>(rng() % 20000);
    strs[i] = "w" + std::to_string(rng() % 300);
    csv += std::to_string(ints[i]) + "," + std::to_string(reals[i]) + "," +
           FormatLane(TypeId::kDate, dates[i]) + "," + strs[i] + "\n";
  }
  Engine engine;
  auto t = engine.ImportTextBuffer(csv, "t").MoveValue();
  ASSERT_EQ(t->rows(), rows);
  auto result = engine.Execute(Plan::Scan(t)).MoveValue();
  for (size_t i = 0; i < rows; i += 97) {
    EXPECT_EQ(result.Value(i, 0), ints[i]);
    EXPECT_DOUBLE_EQ(
        std::bit_cast<double>(static_cast<uint64_t>(result.Value(i, 1))),
        reals[i]);
    EXPECT_EQ(result.Value(i, 2), dates[i]);
    EXPECT_EQ(result.ValueString(i, 3), strs[i]);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TextRoundTrip, ::testing::Range(0, 5));

// --------------------------------------------------- RLE random access

TEST(RleAccessProperty, ArbitrarySeekPatternMatchesReference) {
  std::mt19937_64 rng(4242);
  std::vector<Lane> reference;
  for (int i = 0; i < 500; ++i) {
    reference.insert(reference.end(), 1 + rng() % 200,
                     static_cast<Lane>(rng() % 30));
  }
  EncodingStats stats;
  stats.Update(reference.data(), reference.size());
  auto s = EncodedStream::Create(EncodingType::kRunLength, 8, true, stats, 0)
               .MoveValue();
  ASSERT_TRUE(s->Append(reference.data(), reference.size()).ok());
  ASSERT_TRUE(s->Finalize().ok());
  for (int i = 0; i < 500; ++i) {
    const uint64_t start = rng() % reference.size();
    const size_t len = 1 + rng() % (reference.size() - start);
    std::vector<Lane> got(len);
    ASSERT_TRUE(s->Get(start, len, got.data()).ok());
    for (size_t j = 0; j < len; ++j) {
      ASSERT_EQ(got[j], reference[start + j]) << start << "+" << j;
    }
  }
}

// --------------------------------------- segmented/monolithic equivalence

// A segmented column is an implementation detail: for every value
// distribution and segment size (including a 1-row final segment and the
// TDE_SEGMENT_ROWS env knob), scans, filters and aggregates must answer
// exactly as the monolithic build does.
class SegmentedEquivalence
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(SegmentedEquivalence, QueriesAnswerIdentically) {
  const auto [dist_idx, segment_rows] = GetParam();
  const Distribution dist = Distributions()[static_cast<size_t>(dist_idx)];
  std::mt19937_64 rng(static_cast<uint64_t>(dist_idx) * 31 +
                      static_cast<uint64_t>(segment_rows));
  const size_t n = 701;  // 701 = 100*7 + 1: a 1-row tail at segment_rows=7
  std::vector<Lane> x(n), y(n);
  for (size_t i = 0; i < n; ++i) {
    x[i] = dist.gen(rng, i);
    y[i] = static_cast<Lane>(i);
  }

  auto build = [&](uint64_t seg) {
    auto make_col = [&](const char* name, const std::vector<Lane>& v) {
      ColumnBuildInput in;
      in.name = name;
      in.type = TypeId::kInteger;
      in.lanes = v;
      FlowTableOptions opt;
      opt.segment_rows = seg;
      return BuildColumn(std::move(in), opt).MoveValue();
    };
    auto t = std::make_shared<Table>(seg == 0 ? "mono" : "seg");
    t->AddColumn(make_col("x", x));
    t->AddColumn(make_col("y", y));
    return t;
  };

  auto mono = build(0);
  std::shared_ptr<Table> seg;
  if (segment_rows == 7) {
    // Exercise the TDE_SEGMENT_ROWS knob instead of the explicit option,
    // preserving whatever value the suite itself runs under.
    const char* prev = getenv("TDE_SEGMENT_ROWS");
    const std::string saved = prev != nullptr ? prev : "";
    setenv("TDE_SEGMENT_ROWS", "7", 1);
    FlowTableOptions defaulted;
    EXPECT_EQ(defaulted.segment_rows, 0u);
    seg = build(7);  // explicit and env agree; env read is per-build
    if (prev != nullptr) {
      setenv("TDE_SEGMENT_ROWS", saved.c_str(), 1);
    } else {
      unsetenv("TDE_SEGMENT_ROWS");
    }
  } else {
    seg = build(static_cast<uint64_t>(segment_rows));
  }
  ASSERT_GE(seg->column(0).SegmentShapes().size(), 2u) << dist.name;

  auto both = [&](Plan (*make)(std::shared_ptr<Table>, Lane, Lane), Lane a,
                  Lane b) {
    auto c = ExecutePlan(make(mono, a, b)).MoveValue();
    auto s = ExecutePlan(make(seg, a, b)).MoveValue();
    ASSERT_EQ(c.num_rows(), s.num_rows()) << dist.name;
    for (uint64_t r = 0; r < c.num_rows(); ++r) {
      for (size_t col = 0; col < c.num_columns(); ++col) {
        ASSERT_EQ(c.Value(r, col), s.Value(r, col))
            << dist.name << " row " << r << " col " << col;
      }
    }
  };

  // Full scan: every value, in row order.
  both(
      [](std::shared_ptr<Table> t, Lane, Lane) { return Plan::Scan(t); }, 0,
      0);

  // Range filters at random thresholds (some empty, some everything).
  // Saturate at the Lane extremes: a null-heavy distribution can pick the
  // INT64_MIN sentinel as pivot.
  for (int trial = 0; trial < 4; ++trial) {
    const Lane pivot = x[rng() % n];
    const Lane width = static_cast<Lane>(rng() % 1000);
    const Lane kMin = std::numeric_limits<Lane>::min();
    const Lane kMax = std::numeric_limits<Lane>::max();
    const Lane lo = pivot < kMin + width ? kMin : pivot - width;
    const Lane hi = pivot > kMax - width ? kMax : pivot + width;
    both(
        [](std::shared_ptr<Table> t, Lane a, Lane b) {
          return Plan::Scan(t).Filter(
              And(Ge(Col("x"), Int(a)), Le(Col("x"), Int(b))));
        },
        lo, hi);
  }

  // Aggregates over a filtered scan.
  both(
      [](std::shared_ptr<Table> t, Lane a, Lane) {
        return Plan::Scan(t)
            .Filter(Ge(Col("x"), Int(a)))
            .Aggregate({}, {{AggKind::kSum, "y", "s"},
                            {AggKind::kCount, "x", "cnt"},
                            {AggKind::kMin, "x", "mn"},
                            {AggKind::kMax, "x", "mx"}});
      },
      x[rng() % n], 0);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, SegmentedEquivalence,
    ::testing::Combine(::testing::Range(0, 12),
                       ::testing::Values(7, 64, 256)),
    [](const auto& info) {
      return std::string(
                 Distributions()[static_cast<size_t>(
                                     std::get<0>(info.param))]
                     .name) +
             "_seg" + std::to_string(std::get<1>(info.param));
    });

// ---------------------------------------------- aggregation equivalence

TEST(AggregationProperty, OrderedEqualsHashOnSortedInputs) {
  std::mt19937_64 rng(99);
  for (int trial = 0; trial < 5; ++trial) {
    std::vector<Lane> keys, vals;
    Lane k = 0;
    while (keys.size() < 20000) {
      k += 1 + rng() % 3;
      const size_t run = 1 + rng() % 50;
      for (size_t i = 0; i < run; ++i) {
        keys.push_back(k);
        vals.push_back(static_cast<Lane>(rng() % 100000));
      }
    }
    AggregateOptions opts;
    opts.group_by = {"k"};
    opts.aggs = {{AggKind::kSum, "v", "s"},
                 {AggKind::kMedian, "v", "med"},
                 {AggKind::kCountDistinct, "v", "cd"}};
    OrderedAggregate ordered(VectorSource::Ints({{"k", keys}, {"v", vals}}),
                             opts);
    HashAggregate hashed(VectorSource::Ints({{"k", keys}, {"v", vals}}),
                         opts);
    auto ob = testutil::Drain(&ordered);
    auto hb = testutil::Drain(&hashed);
    for (size_t c = 0; c < 4; ++c) {
      ASSERT_EQ(testutil::Flatten(ob, c), testutil::Flatten(hb, c))
          << "trial " << trial << " col " << c;
    }
  }
}

}  // namespace
}  // namespace tde
