#include "src/encoding/stream.h"

#include <random>

#include <gtest/gtest.h>

#include "src/encoding/bitpack.h"
#include "src/encoding/streams_internal.h"

namespace tde {
namespace {

EncodingStats StatsOf(const std::vector<Lane>& v) {
  EncodingStats s;
  s.Update(v.data(), v.size());
  return s;
}

std::unique_ptr<EncodedStream> MakeStream(EncodingType t,
                                          const std::vector<Lane>& v,
                                          uint8_t headroom = 0,
                                          bool sign_extend = true) {
  auto r = EncodedStream::Create(t, 8, sign_extend, StatsOf(v), headroom);
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  auto s = r.MoveValue();
  EXPECT_TRUE(s->Append(v.data(), v.size()).ok());
  return s;
}

void ExpectRoundTrip(EncodedStream* s, const std::vector<Lane>& expect) {
  ASSERT_TRUE(s->Finalize().ok());
  ASSERT_EQ(s->size(), expect.size());
  std::vector<Lane> got(expect.size());
  ASSERT_TRUE(s->Get(0, got.size(), got.data()).ok());
  EXPECT_EQ(got, expect);
}

std::vector<Lane> Sequence(size_t n, Lane base, Lane step) {
  std::vector<Lane> v(n);
  for (size_t i = 0; i < n; ++i) v[i] = base + static_cast<Lane>(i) * step;
  return v;
}

// ---------------------------------------------------------------- headers

TEST(Header, Fig1LayoutIsByteExact) {
  auto s = MakeStream(EncodingType::kFrameOfReference,
                      Sequence(2048, 1000, 1));
  ASSERT_TRUE(s->Finalize().ok());
  const std::vector<uint8_t>& buf = s->buffer();
  ConstHeaderView h(buf);
  // [0,8): logical size.
  EXPECT_EQ(h.logical_size(), 2048u);
  // [8,16): data offset (frame field ends at 32).
  EXPECT_EQ(h.data_offset(), 32u);
  // [16,20): block size, multiple of 32.
  EXPECT_EQ(h.block_size(), kBlockSize);
  EXPECT_EQ(kBlockSize % 32, 0u);
  // [20]: algorithm; [21]: width; [22]: bits.
  EXPECT_EQ(h.algorithm(), EncodingType::kFrameOfReference);
  EXPECT_EQ(h.width(), 8);
  EXPECT_EQ(h.bits(), 11);  // range 2047 needs 11 bits
  // [24,32): frame value.
  EXPECT_EQ(h.GetI64(24), 1000);
}

TEST(Header, PhysicalContainsOnlyCompleteBlocks) {
  // 100 values still occupy one full decompression block.
  auto s = MakeStream(EncodingType::kFrameOfReference, Sequence(100, 0, 1));
  ASSERT_TRUE(s->Finalize().ok());
  ConstHeaderView h(s->buffer());
  EXPECT_EQ(h.logical_size(), 100u);
  const size_t block_bytes = PackedBytes(kBlockSize, h.bits());
  EXPECT_EQ(s->buffer().size(), h.data_offset() + block_bytes);
}

// ------------------------------------------------------------ round trips

struct StreamCase {
  const char* name;
  EncodingType type;
  std::vector<Lane> values;
};

class StreamRoundTrip : public ::testing::TestWithParam<StreamCase> {};

TEST_P(StreamRoundTrip, AppendFinalizeGet) {
  const auto& p = GetParam();
  auto s = MakeStream(p.type, p.values);
  EXPECT_EQ(s->type(), p.type);
  ExpectRoundTrip(s.get(), p.values);
}

TEST_P(StreamRoundTrip, SerializeReopen) {
  const auto& p = GetParam();
  auto s = MakeStream(p.type, p.values);
  ASSERT_TRUE(s->Finalize().ok());
  auto reopened = EncodedStream::Open(s->buffer());
  ASSERT_TRUE(reopened.ok());
  std::vector<Lane> got(p.values.size());
  ASSERT_TRUE(reopened.value()->Get(0, got.size(), got.data()).ok());
  EXPECT_EQ(got, p.values);
  EXPECT_EQ(reopened.value()->type(), p.type);
}

TEST_P(StreamRoundTrip, RandomAccessWindows) {
  const auto& p = GetParam();
  auto s = MakeStream(p.type, p.values);
  ASSERT_TRUE(s->Finalize().ok());
  std::mt19937_64 rng(7);
  for (int i = 0; i < 50; ++i) {
    const uint64_t start = rng() % p.values.size();
    const size_t len =
        1 + static_cast<size_t>(rng() % (p.values.size() - start));
    std::vector<Lane> got(len);
    ASSERT_TRUE(s->Get(start, len, got.data()).ok());
    for (size_t j = 0; j < len; ++j) {
      ASSERT_EQ(got[j], p.values[start + j]) << "at " << start + j;
    }
  }
}

TEST_P(StreamRoundTrip, GetBeforeFinalizeSeesPending) {
  const auto& p = GetParam();
  auto s = MakeStream(p.type, p.values);
  std::vector<Lane> got(p.values.size());
  ASSERT_TRUE(s->Get(0, got.size(), got.data()).ok());
  EXPECT_EQ(got, p.values);
}

std::vector<StreamCase> Cases() {
  std::mt19937_64 rng(99);
  std::vector<Lane> small_domain(5000);
  for (auto& v : small_domain) v = static_cast<Lane>(rng() % 37) * 13 - 200;
  std::vector<Lane> runs;
  for (int i = 0; i < 300; ++i) {
    const Lane val = static_cast<Lane>(rng() % 50);
    const size_t len = 1 + rng() % 40;
    runs.insert(runs.end(), len, val);
  }
  std::vector<Lane> wild(3000);
  for (auto& v : wild) v = static_cast<Lane>(rng());
  std::vector<Lane> sorted_drift(4000);
  Lane acc = -100000;
  for (auto& v : sorted_drift) {
    acc += static_cast<Lane>(rng() % 97);
    v = acc;
  }
  return {
      {"uncompressed_wild", EncodingType::kUncompressed, wild},
      {"for_small_range", EncodingType::kFrameOfReference, small_domain},
      {"delta_sorted", EncodingType::kDelta, sorted_drift},
      {"dict_small_domain", EncodingType::kDictionary, small_domain},
      {"affine_ramp", EncodingType::kAffine, Sequence(5000, -17, 3)},
      {"affine_constant", EncodingType::kAffine,
       std::vector<Lane>(2500, 42)},
      {"rle_runs", EncodingType::kRunLength, runs},
      {"for_negative", EncodingType::kFrameOfReference,
       Sequence(2000, -5000, 2)},
      {"delta_descending", EncodingType::kDelta, Sequence(3000, 10000, -3)},
  };
}

INSTANTIATE_TEST_SUITE_P(AllEncodings, StreamRoundTrip,
                         ::testing::ValuesIn(Cases()),
                         [](const auto& info) { return info.param.name; });

// ----------------------------------------------------- failure semantics

TEST(ForStream, RejectsValueBelowFrame) {
  auto s = MakeStream(EncodingType::kFrameOfReference, Sequence(10, 100, 1));
  Lane bad = 99;
  const Status st = s->Append(&bad, 1);
  EXPECT_EQ(st.code(), StatusCode::kOutOfRange);
  // All-or-nothing: the stream is untouched.
  EXPECT_EQ(s->size(), 10u);
}

TEST(ForStream, RejectsValueAboveRange) {
  auto s = MakeStream(EncodingType::kFrameOfReference, Sequence(10, 0, 1));
  Lane bad = 1 << 20;
  EXPECT_EQ(s->Append(&bad, 1).code(), StatusCode::kOutOfRange);
}

TEST(ForStream, HeadroomAdmitsDriftBothWays) {
  std::vector<Lane> v = Sequence(10, 0, 1);  // range 9 -> 4 bits
  auto r = EncodedStream::Create(EncodingType::kFrameOfReference, 8, true,
                                 StatsOf(v), /*headroom=*/2);
  auto s = r.MoveValue();
  ASSERT_TRUE(s->Append(v.data(), v.size()).ok());
  // 4+2 = 6 packing bits, envelope centered on [0, 9]: slack 27 each way.
  Lane up = 30;
  EXPECT_TRUE(s->Append(&up, 1).ok());
  Lane down = -20;
  EXPECT_TRUE(s->Append(&down, 1).ok());
  Lane too_far = 70;
  EXPECT_EQ(s->Append(&too_far, 1).code(), StatusCode::kOutOfRange);
  Lane too_low = -40;
  EXPECT_EQ(s->Append(&too_low, 1).code(), StatusCode::kOutOfRange);
}

TEST(DictStream, RejectsWhenFull) {
  std::vector<Lane> v = {1, 2, 3, 4};
  auto r = EncodedStream::Create(EncodingType::kDictionary, 8, true,
                                 StatsOf(v), 0);
  auto s = r.MoveValue();  // 2 bits -> 4 entries
  ASSERT_TRUE(s->Append(v.data(), v.size()).ok());
  Lane fifth = 5;
  EXPECT_EQ(s->Append(&fifth, 1).code(), StatusCode::kCapacityExceeded);
  Lane repeat = 2;  // existing entry still fine
  EXPECT_TRUE(s->Append(&repeat, 1).ok());
}

TEST(DictStream, GrowsInPlaceUpToCapacity) {
  std::vector<Lane> first = {10};
  auto r = EncodedStream::Create(EncodingType::kDictionary, 8, true,
                                 StatsOf(first), /*headroom=*/3);
  auto s = r.MoveValue();  // 1+3 = 4 bits -> 16 entries
  const uint64_t data_offset = ConstHeaderView(s->buffer()).data_offset();
  for (Lane v = 0; v < 16; ++v) {
    ASSERT_TRUE(s->Append(&v, 1).ok()) << v;
  }
  // Entry space was reserved up front: offset to packed data unchanged.
  EXPECT_EQ(ConstHeaderView(s->buffer()).data_offset(), data_offset);
  Lane overflow = 100;
  EXPECT_EQ(s->Append(&overflow, 1).code(), StatusCode::kCapacityExceeded);
}

TEST(AffineStream, RejectsBrokenProgression) {
  auto s = MakeStream(EncodingType::kAffine, Sequence(100, 5, 7));
  Lane next_ok = 5 + 100 * 7;
  EXPECT_TRUE(s->Append(&next_ok, 1).ok());
  Lane broken = next_ok + 1;
  EXPECT_EQ(s->Append(&broken, 1).code(), StatusCode::kOutOfRange);
}

TEST(AffineStream, CarriesNoPackedData) {
  auto s = MakeStream(EncodingType::kAffine, Sequence(100000, 0, 1));
  ASSERT_TRUE(s->Finalize().ok());
  // Constant storage regardless of row count (Sect. 3.1.4).
  EXPECT_EQ(s->PhysicalSize(), 40u);
  EXPECT_EQ(s->bits(), 0);
}

TEST(DeltaStream, RejectsDeltaOutsideRange) {
  auto s = MakeStream(EncodingType::kDelta, Sequence(100, 0, 3));
  Lane back = -100;  // delta -397 < min delta 3
  EXPECT_EQ(s->Append(&back, 1).code(), StatusCode::kOutOfRange);
}

TEST(DeltaStream, BlocksStartWithRunningTotal) {
  std::vector<Lane> v = Sequence(2 * kBlockSize, 1000000, 5);
  auto s = MakeStream(EncodingType::kDelta, v);
  ASSERT_TRUE(s->Finalize().ok());
  ConstHeaderView h(s->buffer());
  // Second block's 8-byte header equals its first value, enabling random
  // access without a scan (Sect. 3.1.2).
  const size_t block_bytes = 8 + PackedBytes(kBlockSize, h.bits());
  const int64_t second_first = static_cast<int64_t>(LoadUnsigned(
      s->buffer().data() + h.data_offset() + block_bytes, 8));
  EXPECT_EQ(second_first, v[kBlockSize]);
}

TEST(RleStream, RunsAreMergedAcrossAppends) {
  std::vector<Lane> a(100, 7);
  auto s = MakeStream(EncodingType::kRunLength, a);
  std::vector<Lane> b(50, 7);
  ASSERT_TRUE(s->Append(b.data(), b.size()).ok());
  auto* rle = static_cast<internal::RleStream*>(s.get());
  EXPECT_EQ(rle->run_count(), 1u);
  std::vector<RleRun> runs;
  ASSERT_TRUE(s->GetRuns(&runs).ok());
  ASSERT_EQ(runs.size(), 1u);
  EXPECT_EQ(runs[0].value, 7);
  EXPECT_EQ(runs[0].count, 150u);
}

TEST(RleStream, BackwardSeekRestartsFromStreamStart) {
  std::vector<Lane> v;
  for (int i = 0; i < 100; ++i) v.insert(v.end(), 10, i);
  auto s = MakeStream(EncodingType::kRunLength, v);
  ASSERT_TRUE(s->Finalize().ok());
  Lane x;
  ASSERT_TRUE(s->Get(900, 1, &x).ok());
  EXPECT_EQ(x, 90);
  // Backwards read still yields the right answer (via a rescan).
  ASSERT_TRUE(s->Get(50, 1, &x).ok());
  EXPECT_EQ(x, 5);
}

TEST(RleStream, CountFieldOverflowSplitsRuns) {
  // 1-byte count field: a 600-run must split into 3 pairs.
  auto s = internal::RleStream::Make(8, true, /*count_width=*/1,
                                     /*value_width=*/1);
  ASSERT_TRUE(s->AppendRun(9, 600).ok());
  ASSERT_TRUE(s->Finalize().ok());
  EXPECT_EQ(s->size(), 600u);
  EXPECT_GE(s->run_count(), 3u);
  std::vector<Lane> got(600);
  ASSERT_TRUE(s->Get(0, 600, got.data()).ok());
  for (Lane g : got) ASSERT_EQ(g, 9);
}

TEST(RleStream, RejectsWideValue) {
  auto s = internal::RleStream::Make(8, true, 2, /*value_width=*/1);
  Lane bad = 1000;
  EXPECT_EQ(s->Append(&bad, 1).code(), StatusCode::kOutOfRange);
}

TEST(Stream, GetPastEndFails) {
  auto s = MakeStream(EncodingType::kFrameOfReference, Sequence(100, 0, 1));
  Lane buf[8];
  EXPECT_EQ(s->Get(95, 8, buf).code(), StatusCode::kOutOfRange);
}

TEST(Stream, GenericGetRunsCoalesces) {
  std::vector<Lane> v = {1, 1, 1, 2, 2, 3, 1, 1};
  auto s = MakeStream(EncodingType::kFrameOfReference, v);
  ASSERT_TRUE(s->Finalize().ok());
  std::vector<RleRun> runs;
  ASSERT_TRUE(s->GetRuns(&runs).ok());
  ASSERT_EQ(runs.size(), 4u);
  EXPECT_EQ(runs[0].count, 3u);
  EXPECT_EQ(runs[3].value, 1);
  EXPECT_EQ(runs[3].count, 2u);
}

TEST(Stream, LogicalVsPhysicalSize) {
  std::vector<Lane> v(10000, 5);
  v[0] = 0;  // range [0,5]
  auto s = MakeStream(EncodingType::kFrameOfReference, v);
  ASSERT_TRUE(s->Finalize().ok());
  EXPECT_EQ(s->LogicalBytes(), 80000u);
  EXPECT_LT(s->PhysicalSize(), 5000u);  // 3 bits/value + header
}

TEST(Stream, UnsignedWidthOneRoundTrip) {
  std::vector<Lane> v = {0, 255, 17, 200};
  auto r = EncodedStream::Create(EncodingType::kUncompressed, 1,
                                 /*sign_extend=*/false, StatsOf(v), 0);
  auto s = r.MoveValue();
  ASSERT_TRUE(s->Append(v.data(), v.size()).ok());
  ExpectRoundTrip(s.get(), v);
}

TEST(Stream, SignedNarrowWidthRejectsOverflow) {
  std::vector<Lane> v = {-128, 127};
  auto r = EncodedStream::Create(EncodingType::kUncompressed, 1,
                                 /*sign_extend=*/true, StatsOf(v), 0);
  auto s = r.MoveValue();
  ASSERT_TRUE(s->Append(v.data(), v.size()).ok());
  Lane big = 128;
  EXPECT_EQ(s->Append(&big, 1).code(), StatusCode::kOutOfRange);
}

}  // namespace
}  // namespace tde
