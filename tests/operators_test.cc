#include <algorithm>
#include <bit>
#include <limits>
#include <numeric>

#include <gtest/gtest.h>

#include "src/exec/filter.h"
#include "src/exec/hash_aggregate.h"
#include "src/exec/ordered_aggregate.h"
#include "src/exec/project.h"
#include "src/exec/sort.h"
#include "src/exec/table_scan.h"
#include "src/exec/topn.h"
#include "tests/test_util.h"

namespace tde {
namespace {

using testutil::Drain;
using testutil::Flatten;
using testutil::VectorSource;
using namespace tde::expr;  // NOLINT

TEST(Filter, KeepsMatchingRows) {
  auto src = VectorSource::Ints({{"x", {1, 5, 2, 8, 3}}});
  Filter f(std::move(src), Gt(Col("x"), Int(2)));
  const auto got = Flatten(Drain(&f), 0);
  EXPECT_EQ(got, (std::vector<Lane>{5, 8, 3}));
  EXPECT_EQ(f.rows_in(), 5u);
  EXPECT_EQ(f.rows_out(), 3u);
}

TEST(Filter, EmptyResultIsCleanEos) {
  auto src = VectorSource::Ints({{"x", {1, 2}}});
  Filter f(std::move(src), Gt(Col("x"), Int(100)));
  EXPECT_TRUE(Drain(&f).empty());
}

TEST(Filter, SpansManyBlocks) {
  std::vector<Lane> v(5 * kBlockSize);
  std::iota(v.begin(), v.end(), 0);
  auto src = VectorSource::Ints({{"x", v}});
  Filter f(std::move(src),
           Eq(Arith(ArithOp::kMod, Col("x"), Int(2)), Int(0)));
  const auto got = Flatten(Drain(&f), 0);
  ASSERT_EQ(got.size(), v.size() / 2);
  EXPECT_EQ(got[1], 2);
}

TEST(Project, ComputesExpressions) {
  auto src = VectorSource::Ints({{"x", {1, 2, 3}}});
  Project p(std::move(src), {{Add(Col("x"), Int(10)), "y"},
                             {Col("x"), "x"}});
  ASSERT_TRUE(p.Open().ok());
  EXPECT_EQ(p.output_schema().field(0).name, "y");
  EXPECT_EQ(p.output_schema().field(0).type, TypeId::kInteger);
  std::vector<Block> blocks;
  ASSERT_TRUE(DrainOperator(&p, &blocks).ok());
  EXPECT_EQ(Flatten(blocks, 0), (std::vector<Lane>{11, 12, 13}));
  EXPECT_EQ(Flatten(blocks, 1), (std::vector<Lane>{1, 2, 3}));
}

TEST(Sort, SingleKeyAscendingDescending) {
  auto src = VectorSource::Ints({{"x", {3, 1, 2}}, {"y", {30, 10, 20}}});
  Sort asc(std::move(src), {{"x", true}});
  auto blocks = Drain(&asc);
  EXPECT_EQ(Flatten(blocks, 0), (std::vector<Lane>{1, 2, 3}));
  EXPECT_EQ(Flatten(blocks, 1), (std::vector<Lane>{10, 20, 30}));

  auto src2 = VectorSource::Ints({{"x", {3, 1, 2}}});
  Sort desc(std::move(src2), {{"x", false}});
  EXPECT_EQ(Flatten(Drain(&desc), 0), (std::vector<Lane>{3, 2, 1}));
}

TEST(Sort, MultiKeyIsStable) {
  auto src = VectorSource::Ints(
      {{"a", {1, 2, 1, 2}}, {"b", {9, 8, 7, 6}}, {"id", {0, 1, 2, 3}}});
  Sort s(std::move(src), {{"a", true}, {"b", true}});
  auto blocks = Drain(&s);
  EXPECT_EQ(Flatten(blocks, 2), (std::vector<Lane>{2, 0, 3, 1}));
}

TEST(Sort, StringKeysUseCollation) {
  auto src = VectorSource::Ints({{"id", {0, 1, 2}}});
  src->AddStringColumn("s", {"banana", "APPLE", "cherry"});
  Sort s(std::move(src), {{"s", true}});
  auto blocks = Drain(&s);
  EXPECT_EQ(Flatten(blocks, 0), (std::vector<Lane>{1, 0, 2}));
}

TEST(Sort, DescendingPutsNullsLast) {
  // NULL orders below every value; DESC negates after that rule, so NULLs
  // come out last — the engine and the reference oracle agree on this.
  auto src = VectorSource::Ints(
      {{"x", {5, kNullSentinel, 1, kNullSentinel, 9}},
       {"id", {0, 1, 2, 3, 4}}});
  Sort s(std::move(src), {{"x", false}});
  auto blocks = Drain(&s);
  EXPECT_EQ(Flatten(blocks, 0),
            (std::vector<Lane>{9, 5, 1, kNullSentinel, kNullSentinel}));
  // Equal keys (the two NULLs) keep input order: stable.
  EXPECT_EQ(Flatten(blocks, 1), (std::vector<Lane>{4, 0, 2, 1, 3}));
}

TEST(Sort, MixedDirectionMultiKeyIsStable) {
  auto src = VectorSource::Ints({{"a", {1, 2, 1, 2, 1}},
                                 {"b", {7, 8, 7, 6, 9}},
                                 {"id", {0, 1, 2, 3, 4}}});
  Sort s(std::move(src), {{"a", true}, {"b", false}});
  auto blocks = Drain(&s);
  // a=1: b desc 9,7,7 (ids 4 then 0,2 in input order); a=2: b desc 8,6.
  EXPECT_EQ(Flatten(blocks, 2), (std::vector<Lane>{4, 0, 2, 1, 3}));
}

TEST(Sort, EmptyInput) {
  auto src = VectorSource::Ints({{"x", {}}});
  Sort s(std::move(src), {{"x", true}});
  EXPECT_TRUE(Drain(&s).empty());
}

TEST(Sort, BlockSizeBoundaries) {
  // Exactly one block and one block plus one row: the shapes where an
  // off-by-one in the buffering loop or the emit slicing would bite.
  for (const size_t n : {kBlockSize, kBlockSize + 1}) {
    std::vector<Lane> v(n);
    std::iota(v.begin(), v.end(), 0);
    std::reverse(v.begin(), v.end());
    auto src = VectorSource::Ints({{"x", v}});
    Sort s(std::move(src), {{"x", true}});
    const auto got = Flatten(Drain(&s), 0);
    ASSERT_EQ(got.size(), n);
    for (size_t i = 0; i < n; ++i) {
      ASSERT_EQ(got[i], static_cast<Lane>(i)) << "n=" << n << " i=" << i;
    }
  }
}

TEST(Sort, NanKeepsTotalOrder) {
  const auto lane = [](double d) {
    return static_cast<Lane>(std::bit_cast<uint64_t>(d));
  };
  const double nan = std::numeric_limits<double>::quiet_NaN();
  const double inf = std::numeric_limits<double>::infinity();
  Schema schema;
  schema.AddField({"d", TypeId::kReal});
  schema.AddField({"id", TypeId::kInteger});
  ColumnVector dcol;
  dcol.type = TypeId::kReal;
  dcol.lanes = {lane(1.5), lane(nan), lane(inf), kNullSentinel, lane(-2.0),
                lane(nan)};
  ColumnVector idcol;
  idcol.type = TypeId::kInteger;
  idcol.lanes = {0, 1, 2, 3, 4, 5};
  std::vector<ColumnVector> cols;
  cols.push_back(std::move(dcol));
  cols.push_back(std::move(idcol));
  auto src =
      std::make_unique<VectorSource>(std::move(schema), std::move(cols));
  // Total order: NULL < -2 < 1.5 < +inf < NaN == NaN (ties stable).
  Sort s(std::move(src), {{"d", true}});
  auto blocks = Drain(&s);
  EXPECT_EQ(Flatten(blocks, 1), (std::vector<Lane>{3, 4, 0, 2, 1, 5}));
}

/// Emits one block per value set, each with its own freshly built
/// StringHeap — the shape CASE/computed string projections produce, where
/// equal strings get different tokens (and equal tokens different strings)
/// across blocks.
class PerBlockHeapSource : public Operator {
 public:
  PerBlockHeapSource(std::vector<std::vector<std::string>> blocks_of_strings)
      : blocks_(std::move(blocks_of_strings)) {
    schema_.AddField({"s", TypeId::kString});
    schema_.AddField({"id", TypeId::kInteger});
  }

  Status Open() override {
    at_ = 0;
    id_ = 0;
    return Status::OK();
  }

  Status Next(Block* block, bool* eos) override {
    block->columns.clear();
    if (at_ >= blocks_.size()) {
      *eos = true;
      return Status::OK();
    }
    auto heap = std::make_shared<StringHeap>();
    ColumnVector sv;
    sv.type = TypeId::kString;
    for (const std::string& s : blocks_[at_]) {
      sv.lanes.push_back(heap->Add(s));
    }
    sv.heap = std::move(heap);
    ColumnVector idv;
    idv.type = TypeId::kInteger;
    for (size_t i = 0; i < blocks_[at_].size(); ++i) {
      idv.lanes.push_back(id_++);
    }
    block->columns.push_back(std::move(sv));
    block->columns.push_back(std::move(idv));
    ++at_;
    *eos = false;
    return Status::OK();
  }

  const Schema& output_schema() const override { return schema_; }

 private:
  std::vector<std::vector<std::string>> blocks_;
  Schema schema_;
  size_t at_ = 0;
  Lane id_ = 0;
};

std::vector<std::string> HeapStrings(const std::vector<Block>& blocks,
                                     size_t col) {
  std::vector<std::string> out;
  for (const Block& b : blocks) {
    for (Lane t : b.columns[col].lanes) {
      out.push_back(t == kNullSentinel
                        ? "NULL"
                        : std::string(b.columns[col].heap->Get(t)));
    }
  }
  return out;
}

TEST(Sort, ReinternsPerBlockHeaps) {
  // Regression: Sort used to keep only the first block's heap, so later
  // blocks' tokens resolved against the wrong heap. Both the key and the
  // output strings must survive blocks whose heaps disagree on tokens.
  Sort s(std::make_unique<PerBlockHeapSource>(std::vector<std::vector<
             std::string>>{{"cherry", "apple"}, {"banana", "apple"},
                           {"date", "banana"}}),
         {{"s", true}});
  auto blocks = Drain(&s);
  EXPECT_EQ(HeapStrings(blocks, 0),
            (std::vector<std::string>{"apple", "apple", "banana", "banana",
                                      "cherry", "date"}));
  // Equal strings from different blocks stay in input order.
  EXPECT_EQ(Flatten(blocks, 1), (std::vector<Lane>{1, 3, 2, 5, 0, 4}));
}

TEST(TopN, MatchesFullSortPrefix) {
  // Pseudo-random lanes with heavy ties: the bounded heap must agree with
  // the full sort on order, ties (stability) and NULL placement.
  std::vector<Lane> x, id;
  uint64_t st = 42;
  for (Lane i = 0; i < 3000; ++i) {
    st = st * 6364136223846793005ull + 1442695040888963407ull;
    x.push_back((st >> 33) % 11 == 0 ? kNullSentinel
                                     : static_cast<Lane>((st >> 40) % 17));
    id.push_back(i);
  }
  for (const bool asc : {true, false}) {
    for (const uint64_t k : {1ull, 7ull, 100ull}) {
      Sort full(VectorSource::Ints({{"x", x}, {"id", id}}), {{"x", asc}});
      auto want = Flatten(Drain(&full), 1);
      want.resize(std::min<size_t>(want.size(), k));
      TopN top(VectorSource::Ints({{"x", x}, {"id", id}}), {{"x", asc}}, k);
      const auto got = Flatten(Drain(&top), 1);
      EXPECT_EQ(got, want) << "asc=" << asc << " k=" << k;
      EXPECT_EQ(top.input_rows(), 3000u);
      EXPECT_GE(top.rows_materialized(), want.size());
      // The win the counter exists to show: a bounded heap writes far
      // fewer rows than the input it consumed.
      EXPECT_LT(top.rows_materialized(), top.input_rows() / 2)
          << "asc=" << asc << " k=" << k;
    }
  }
}

TEST(TopN, LimitZeroAndLimitBeyondInput) {
  TopN zero(VectorSource::Ints({{"x", {3, 1, 2}}}), {{"x", true}}, 0);
  EXPECT_TRUE(Drain(&zero).empty());

  TopN all(VectorSource::Ints({{"x", {3, 1, 2}}}), {{"x", true}}, 99);
  EXPECT_EQ(Flatten(Drain(&all), 0), (std::vector<Lane>{1, 2, 3}));
}

/// An operator that must never be opened — stands in for a zone-skipped
/// segment whose cold columns would otherwise fault in.
class MustNotOpen : public Operator {
 public:
  MustNotOpen() { schema_.AddField({"x", TypeId::kInteger}); }
  Status Open() override {
    ADD_FAILURE() << "zone-skipped source was opened";
    return Status::Internal("opened");
  }
  Status Next(Block*, bool* eos) override {
    *eos = true;
    return Status::OK();
  }
  const Schema& output_schema() const override { return schema_; }

 private:
  Schema schema_;
};

TEST(TopN, ZoneSkipNeverOpensLosingSegments) {
  // Segment 1 fills the heap with {1..5}; segment 2's minimum (50) cannot
  // beat the worst kept row (5), so it is skipped without opening.
  std::vector<TopNSource> sources;
  sources.emplace_back();
  sources.back().op = VectorSource::Ints({{"x", {5, 3, 1, 4, 2}}});
  sources.emplace_back();
  sources.back().op = std::make_unique<MustNotOpen>();
  sources.back().zone_known = true;
  sources.back().min_value = 50;
  sources.back().max_value = 90;
  sources.back().has_nulls = false;
  // A third segment that can win rows must still be drained.
  sources.emplace_back();
  sources.back().op = VectorSource::Ints({{"x", {0, 60}}});
  sources.back().zone_known = true;
  sources.back().min_value = 0;
  sources.back().max_value = 60;
  sources.back().has_nulls = false;
  TopN top(std::move(sources), {{"x", true}}, 5);
  EXPECT_EQ(Flatten(Drain(&top), 0), (std::vector<Lane>{0, 1, 2, 3, 4}));
  EXPECT_EQ(top.segments_skipped(), 1u);
}

TEST(TopN, ZoneSkipRespectsNullsUnderAscending) {
  // NULL orders below every value: a segment whose minimum loses but which
  // may hold NULLs cannot be skipped ascending.
  std::vector<TopNSource> sources;
  sources.emplace_back();
  sources.back().op = VectorSource::Ints({{"x", {1, 2, 3}}});
  sources.emplace_back();
  sources.back().op =
      VectorSource::Ints({{"x", {kNullSentinel, 70}}});
  sources.back().zone_known = true;
  sources.back().min_value = 70;
  sources.back().max_value = 70;
  sources.back().has_nulls = true;
  TopN top(std::move(sources), {{"x", true}}, 3);
  EXPECT_EQ(Flatten(Drain(&top), 0),
            (std::vector<Lane>{kNullSentinel, 1, 2}));
  EXPECT_EQ(top.segments_skipped(), 0u);
}

TEST(TopN, SortedInputStopsEarly) {
  std::vector<Lane> v(4 * kBlockSize);
  std::iota(v.begin(), v.end(), 0);
  TopNOptions opts;
  opts.input_sorted = true;
  TopN top(VectorSource::Ints({{"x", v}}), {{"x", true}}, 3, opts);
  EXPECT_EQ(Flatten(Drain(&top), 0), (std::vector<Lane>{0, 1, 2}));
  EXPECT_TRUE(top.early_stopped());
  EXPECT_LT(top.input_rows(), v.size());
}

TEST(TopN, ReinternsPerBlockHeapsOnKey) {
  // String key whose heap changes per block: TopN must downgrade its
  // compressed key mode and keep both order and output strings correct.
  TopN top(std::make_unique<PerBlockHeapSource>(std::vector<std::vector<
               std::string>>{{"cherry", "apple"}, {"banana", "apple"},
                             {"date", "banana"}}),
           {{"s", true}}, 4);
  auto blocks = Drain(&top);
  EXPECT_EQ(HeapStrings(blocks, 0),
            (std::vector<std::string>{"apple", "apple", "banana", "banana"}));
  EXPECT_EQ(Flatten(blocks, 1), (std::vector<Lane>{1, 3, 2, 5}));
}

TEST(TopN, DictSortOffStillOrdersStrings) {
  auto src = VectorSource::Ints({{"id", {0, 1, 2}}});
  src->AddStringColumn("s", {"banana", "APPLE", "cherry"});
  TopNOptions opts;
  opts.dict_sort = false;
  TopN top(std::move(src), {{"s", true}}, 2, opts);
  auto blocks = Drain(&top);
  EXPECT_EQ(Flatten(blocks, 0), (std::vector<Lane>{1, 0}));
  EXPECT_EQ(top.dict_keys(), 0u);
}

TEST(HashAggregate, AllAggKinds) {
  auto src = VectorSource::Ints(
      {{"k", {1, 2, 1, 2, 1}}, {"v", {10, 20, 30, kNullSentinel, 50}}});
  AggregateOptions opts;
  opts.group_by = {"k"};
  opts.aggs = {{AggKind::kCountStar, "", "n"},
               {AggKind::kCount, "v", "cnt"},
               {AggKind::kSum, "v", "sum"},
               {AggKind::kMin, "v", "mn"},
               {AggKind::kMax, "v", "mx"},
               {AggKind::kAvg, "v", "avg"},
               {AggKind::kCountDistinct, "v", "cd"},
               {AggKind::kMedian, "v", "med"}};
  HashAggregate agg(std::move(src), opts);
  auto blocks = Drain(&agg);
  const auto keys = Flatten(blocks, 0);
  ASSERT_EQ(keys, (std::vector<Lane>{1, 2}));  // insertion order
  EXPECT_EQ(Flatten(blocks, 1), (std::vector<Lane>{3, 2}));   // COUNT(*)
  EXPECT_EQ(Flatten(blocks, 2), (std::vector<Lane>{3, 1}));   // COUNT(v)
  EXPECT_EQ(Flatten(blocks, 3), (std::vector<Lane>{90, 20}));
  EXPECT_EQ(Flatten(blocks, 4), (std::vector<Lane>{10, 20}));
  EXPECT_EQ(Flatten(blocks, 5), (std::vector<Lane>{50, 20}));
  const auto avg = Flatten(blocks, 6);
  EXPECT_DOUBLE_EQ(std::bit_cast<double>(static_cast<uint64_t>(avg[0])), 30.0);
  EXPECT_EQ(Flatten(blocks, 7), (std::vector<Lane>{3, 1}));   // COUNTD
  EXPECT_EQ(Flatten(blocks, 8), (std::vector<Lane>{30, 20}));  // MEDIAN
}

TEST(HashAggregate, GlobalAggregationWithoutKeys) {
  auto src = VectorSource::Ints({{"v", {1, 2, 3, 4}}});
  AggregateOptions opts;
  opts.aggs = {{AggKind::kSum, "v", "s"}, {AggKind::kCountStar, "", "n"}};
  HashAggregate agg(std::move(src), opts);
  auto blocks = Drain(&agg);
  EXPECT_EQ(Flatten(blocks, 0), (std::vector<Lane>{10}));
  EXPECT_EQ(Flatten(blocks, 1), (std::vector<Lane>{4}));
}

TEST(HashAggregate, MultiKeyGrouping) {
  auto src = VectorSource::Ints(
      {{"a", {1, 1, 2, 1}}, {"b", {5, 6, 5, 5}}, {"v", {1, 1, 1, 1}}});
  AggregateOptions opts;
  opts.group_by = {"a", "b"};
  opts.aggs = {{AggKind::kCountStar, "", "n"}};
  HashAggregate agg(std::move(src), opts);
  auto blocks = Drain(&agg);
  EXPECT_EQ(Flatten(blocks, 0), (std::vector<Lane>{1, 1, 2}));
  EXPECT_EQ(Flatten(blocks, 1), (std::vector<Lane>{5, 6, 5}));
  EXPECT_EQ(Flatten(blocks, 2), (std::vector<Lane>{2, 1, 1}));
}

TEST(HashAggregate, ManyGroupsAcrossGrowth) {
  std::vector<Lane> keys(20000);
  for (size_t i = 0; i < keys.size(); ++i) {
    keys[i] = static_cast<Lane>(i % 5000);
  }
  auto src = VectorSource::Ints({{"k", keys}, {"v", keys}});
  AggregateOptions opts;
  opts.group_by = {"k"};
  opts.aggs = {{AggKind::kCountStar, "", "n"}};
  HashAggregate agg(std::move(src), opts);
  auto blocks = Drain(&agg);
  EXPECT_EQ(Flatten(blocks, 0).size(), 5000u);
  for (Lane n : Flatten(blocks, 1)) ASSERT_EQ(n, 4);
}

class AggAlgorithms : public ::testing::TestWithParam<HashAlgorithm> {};

TEST_P(AggAlgorithms, SameResultsUnderEveryTacticalChoice) {
  std::vector<Lane> keys, vals;
  for (int i = 0; i < 10000; ++i) {
    keys.push_back(i % 97);
    vals.push_back(i);
  }
  auto src = VectorSource::Ints({{"k", keys}, {"v", vals}});
  AggregateOptions opts;
  opts.group_by = {"k"};
  opts.aggs = {{AggKind::kSum, "v", "s"}};
  opts.hash_algorithm = GetParam();
  opts.key_min = 0;
  opts.key_max = 96;
  HashAggregate agg(std::move(src), opts);
  auto blocks = Drain(&agg);
  EXPECT_EQ(agg.algorithm_used(), GetParam());
  const auto k = Flatten(blocks, 0);
  const auto s = Flatten(blocks, 1);
  ASSERT_EQ(k.size(), 97u);
  int64_t total = 0;
  for (Lane x : s) total += x;
  EXPECT_EQ(total, 10000LL * 9999 / 2);
}

INSTANTIATE_TEST_SUITE_P(
    All, AggAlgorithms,
    ::testing::Values(HashAlgorithm::kDirect, HashAlgorithm::kPerfect,
                      HashAlgorithm::kCollision),
    [](const auto& info) { return HashAlgorithmName(info.param); });

TEST(OrderedAggregate, MatchesHashOnGroupedInput) {
  std::vector<Lane> keys, vals;
  for (int g = 0; g < 50; ++g) {
    for (int i = 0; i < 100; ++i) {
      keys.push_back(g);
      vals.push_back(g * 1000 + i);
    }
  }
  AggregateOptions opts;
  opts.group_by = {"k"};
  opts.aggs = {{AggKind::kMax, "v", "m"}, {AggKind::kCountStar, "", "n"}};

  OrderedAggregate ordered(VectorSource::Ints({{"k", keys}, {"v", vals}}),
                           opts);
  auto ob = Drain(&ordered);
  HashAggregate hashed(VectorSource::Ints({{"k", keys}, {"v", vals}}), opts);
  auto hb = Drain(&hashed);
  EXPECT_EQ(Flatten(ob, 0), Flatten(hb, 0));
  EXPECT_EQ(Flatten(ob, 1), Flatten(hb, 1));
  EXPECT_EQ(Flatten(ob, 2), Flatten(hb, 2));
}

TEST(OrderedAggregate, GroupSpanningBlockBoundary) {
  std::vector<Lane> keys(kBlockSize + 100, 1);
  std::vector<Lane> vals(keys.size(), 2);
  AggregateOptions opts;
  opts.group_by = {"k"};
  opts.aggs = {{AggKind::kSum, "v", "s"}};
  OrderedAggregate agg(VectorSource::Ints({{"k", keys}, {"v", vals}}), opts);
  auto blocks = Drain(&agg);
  EXPECT_EQ(Flatten(blocks, 0), (std::vector<Lane>{1}));
  EXPECT_EQ(Flatten(blocks, 1),
            (std::vector<Lane>{2 * static_cast<Lane>(keys.size())}));
}

TEST(OrderedAggregate, RequiresSingleKey) {
  AggregateOptions opts;
  opts.group_by = {"a", "b"};
  OrderedAggregate agg(VectorSource::Ints({{"a", {}}, {"b", {}}}), opts);
  EXPECT_EQ(agg.Open().code(), StatusCode::kInvalidArgument);
}

TEST(HashAggregate, MinMaxOnStringsViaSortedTokens) {
  auto src = VectorSource::Ints({{"k", {1, 1, 1}}});
  src->AddStringColumn("s", {"b", "a", "c"});
  // Tokens from an accelerator heap ascend by first occurrence; min/max of
  // tokens equal min/max strings only when the heap is sorted. Here the
  // arrival order b,a,c is unsorted, so we aggregate on token values — this
  // test documents that min/max strings require sorted heaps.
  AggregateOptions opts;
  opts.group_by = {"k"};
  opts.aggs = {{AggKind::kCountDistinct, "s", "cd"}};
  HashAggregate agg(std::move(src), opts);
  auto blocks = Drain(&agg);
  EXPECT_EQ(Flatten(blocks, 1), (std::vector<Lane>{3}));
}

}  // namespace
}  // namespace tde
