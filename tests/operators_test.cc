#include <bit>
#include <numeric>

#include <gtest/gtest.h>

#include "src/exec/filter.h"
#include "src/exec/hash_aggregate.h"
#include "src/exec/ordered_aggregate.h"
#include "src/exec/project.h"
#include "src/exec/sort.h"
#include "src/exec/table_scan.h"
#include "tests/test_util.h"

namespace tde {
namespace {

using testutil::Drain;
using testutil::Flatten;
using testutil::VectorSource;
using namespace tde::expr;  // NOLINT

TEST(Filter, KeepsMatchingRows) {
  auto src = VectorSource::Ints({{"x", {1, 5, 2, 8, 3}}});
  Filter f(std::move(src), Gt(Col("x"), Int(2)));
  const auto got = Flatten(Drain(&f), 0);
  EXPECT_EQ(got, (std::vector<Lane>{5, 8, 3}));
  EXPECT_EQ(f.rows_in(), 5u);
  EXPECT_EQ(f.rows_out(), 3u);
}

TEST(Filter, EmptyResultIsCleanEos) {
  auto src = VectorSource::Ints({{"x", {1, 2}}});
  Filter f(std::move(src), Gt(Col("x"), Int(100)));
  EXPECT_TRUE(Drain(&f).empty());
}

TEST(Filter, SpansManyBlocks) {
  std::vector<Lane> v(5 * kBlockSize);
  std::iota(v.begin(), v.end(), 0);
  auto src = VectorSource::Ints({{"x", v}});
  Filter f(std::move(src),
           Eq(Arith(ArithOp::kMod, Col("x"), Int(2)), Int(0)));
  const auto got = Flatten(Drain(&f), 0);
  ASSERT_EQ(got.size(), v.size() / 2);
  EXPECT_EQ(got[1], 2);
}

TEST(Project, ComputesExpressions) {
  auto src = VectorSource::Ints({{"x", {1, 2, 3}}});
  Project p(std::move(src), {{Add(Col("x"), Int(10)), "y"},
                             {Col("x"), "x"}});
  ASSERT_TRUE(p.Open().ok());
  EXPECT_EQ(p.output_schema().field(0).name, "y");
  EXPECT_EQ(p.output_schema().field(0).type, TypeId::kInteger);
  std::vector<Block> blocks;
  ASSERT_TRUE(DrainOperator(&p, &blocks).ok());
  EXPECT_EQ(Flatten(blocks, 0), (std::vector<Lane>{11, 12, 13}));
  EXPECT_EQ(Flatten(blocks, 1), (std::vector<Lane>{1, 2, 3}));
}

TEST(Sort, SingleKeyAscendingDescending) {
  auto src = VectorSource::Ints({{"x", {3, 1, 2}}, {"y", {30, 10, 20}}});
  Sort asc(std::move(src), {{"x", true}});
  auto blocks = Drain(&asc);
  EXPECT_EQ(Flatten(blocks, 0), (std::vector<Lane>{1, 2, 3}));
  EXPECT_EQ(Flatten(blocks, 1), (std::vector<Lane>{10, 20, 30}));

  auto src2 = VectorSource::Ints({{"x", {3, 1, 2}}});
  Sort desc(std::move(src2), {{"x", false}});
  EXPECT_EQ(Flatten(Drain(&desc), 0), (std::vector<Lane>{3, 2, 1}));
}

TEST(Sort, MultiKeyIsStable) {
  auto src = VectorSource::Ints(
      {{"a", {1, 2, 1, 2}}, {"b", {9, 8, 7, 6}}, {"id", {0, 1, 2, 3}}});
  Sort s(std::move(src), {{"a", true}, {"b", true}});
  auto blocks = Drain(&s);
  EXPECT_EQ(Flatten(blocks, 2), (std::vector<Lane>{2, 0, 3, 1}));
}

TEST(Sort, StringKeysUseCollation) {
  auto src = VectorSource::Ints({{"id", {0, 1, 2}}});
  src->AddStringColumn("s", {"banana", "APPLE", "cherry"});
  Sort s(std::move(src), {{"s", true}});
  auto blocks = Drain(&s);
  EXPECT_EQ(Flatten(blocks, 0), (std::vector<Lane>{1, 0, 2}));
}

TEST(HashAggregate, AllAggKinds) {
  auto src = VectorSource::Ints(
      {{"k", {1, 2, 1, 2, 1}}, {"v", {10, 20, 30, kNullSentinel, 50}}});
  AggregateOptions opts;
  opts.group_by = {"k"};
  opts.aggs = {{AggKind::kCountStar, "", "n"},
               {AggKind::kCount, "v", "cnt"},
               {AggKind::kSum, "v", "sum"},
               {AggKind::kMin, "v", "mn"},
               {AggKind::kMax, "v", "mx"},
               {AggKind::kAvg, "v", "avg"},
               {AggKind::kCountDistinct, "v", "cd"},
               {AggKind::kMedian, "v", "med"}};
  HashAggregate agg(std::move(src), opts);
  auto blocks = Drain(&agg);
  const auto keys = Flatten(blocks, 0);
  ASSERT_EQ(keys, (std::vector<Lane>{1, 2}));  // insertion order
  EXPECT_EQ(Flatten(blocks, 1), (std::vector<Lane>{3, 2}));   // COUNT(*)
  EXPECT_EQ(Flatten(blocks, 2), (std::vector<Lane>{3, 1}));   // COUNT(v)
  EXPECT_EQ(Flatten(blocks, 3), (std::vector<Lane>{90, 20}));
  EXPECT_EQ(Flatten(blocks, 4), (std::vector<Lane>{10, 20}));
  EXPECT_EQ(Flatten(blocks, 5), (std::vector<Lane>{50, 20}));
  const auto avg = Flatten(blocks, 6);
  EXPECT_DOUBLE_EQ(std::bit_cast<double>(static_cast<uint64_t>(avg[0])), 30.0);
  EXPECT_EQ(Flatten(blocks, 7), (std::vector<Lane>{3, 1}));   // COUNTD
  EXPECT_EQ(Flatten(blocks, 8), (std::vector<Lane>{30, 20}));  // MEDIAN
}

TEST(HashAggregate, GlobalAggregationWithoutKeys) {
  auto src = VectorSource::Ints({{"v", {1, 2, 3, 4}}});
  AggregateOptions opts;
  opts.aggs = {{AggKind::kSum, "v", "s"}, {AggKind::kCountStar, "", "n"}};
  HashAggregate agg(std::move(src), opts);
  auto blocks = Drain(&agg);
  EXPECT_EQ(Flatten(blocks, 0), (std::vector<Lane>{10}));
  EXPECT_EQ(Flatten(blocks, 1), (std::vector<Lane>{4}));
}

TEST(HashAggregate, MultiKeyGrouping) {
  auto src = VectorSource::Ints(
      {{"a", {1, 1, 2, 1}}, {"b", {5, 6, 5, 5}}, {"v", {1, 1, 1, 1}}});
  AggregateOptions opts;
  opts.group_by = {"a", "b"};
  opts.aggs = {{AggKind::kCountStar, "", "n"}};
  HashAggregate agg(std::move(src), opts);
  auto blocks = Drain(&agg);
  EXPECT_EQ(Flatten(blocks, 0), (std::vector<Lane>{1, 1, 2}));
  EXPECT_EQ(Flatten(blocks, 1), (std::vector<Lane>{5, 6, 5}));
  EXPECT_EQ(Flatten(blocks, 2), (std::vector<Lane>{2, 1, 1}));
}

TEST(HashAggregate, ManyGroupsAcrossGrowth) {
  std::vector<Lane> keys(20000);
  for (size_t i = 0; i < keys.size(); ++i) {
    keys[i] = static_cast<Lane>(i % 5000);
  }
  auto src = VectorSource::Ints({{"k", keys}, {"v", keys}});
  AggregateOptions opts;
  opts.group_by = {"k"};
  opts.aggs = {{AggKind::kCountStar, "", "n"}};
  HashAggregate agg(std::move(src), opts);
  auto blocks = Drain(&agg);
  EXPECT_EQ(Flatten(blocks, 0).size(), 5000u);
  for (Lane n : Flatten(blocks, 1)) ASSERT_EQ(n, 4);
}

class AggAlgorithms : public ::testing::TestWithParam<HashAlgorithm> {};

TEST_P(AggAlgorithms, SameResultsUnderEveryTacticalChoice) {
  std::vector<Lane> keys, vals;
  for (int i = 0; i < 10000; ++i) {
    keys.push_back(i % 97);
    vals.push_back(i);
  }
  auto src = VectorSource::Ints({{"k", keys}, {"v", vals}});
  AggregateOptions opts;
  opts.group_by = {"k"};
  opts.aggs = {{AggKind::kSum, "v", "s"}};
  opts.hash_algorithm = GetParam();
  opts.key_min = 0;
  opts.key_max = 96;
  HashAggregate agg(std::move(src), opts);
  auto blocks = Drain(&agg);
  EXPECT_EQ(agg.algorithm_used(), GetParam());
  const auto k = Flatten(blocks, 0);
  const auto s = Flatten(blocks, 1);
  ASSERT_EQ(k.size(), 97u);
  int64_t total = 0;
  for (Lane x : s) total += x;
  EXPECT_EQ(total, 10000LL * 9999 / 2);
}

INSTANTIATE_TEST_SUITE_P(
    All, AggAlgorithms,
    ::testing::Values(HashAlgorithm::kDirect, HashAlgorithm::kPerfect,
                      HashAlgorithm::kCollision),
    [](const auto& info) { return HashAlgorithmName(info.param); });

TEST(OrderedAggregate, MatchesHashOnGroupedInput) {
  std::vector<Lane> keys, vals;
  for (int g = 0; g < 50; ++g) {
    for (int i = 0; i < 100; ++i) {
      keys.push_back(g);
      vals.push_back(g * 1000 + i);
    }
  }
  AggregateOptions opts;
  opts.group_by = {"k"};
  opts.aggs = {{AggKind::kMax, "v", "m"}, {AggKind::kCountStar, "", "n"}};

  OrderedAggregate ordered(VectorSource::Ints({{"k", keys}, {"v", vals}}),
                           opts);
  auto ob = Drain(&ordered);
  HashAggregate hashed(VectorSource::Ints({{"k", keys}, {"v", vals}}), opts);
  auto hb = Drain(&hashed);
  EXPECT_EQ(Flatten(ob, 0), Flatten(hb, 0));
  EXPECT_EQ(Flatten(ob, 1), Flatten(hb, 1));
  EXPECT_EQ(Flatten(ob, 2), Flatten(hb, 2));
}

TEST(OrderedAggregate, GroupSpanningBlockBoundary) {
  std::vector<Lane> keys(kBlockSize + 100, 1);
  std::vector<Lane> vals(keys.size(), 2);
  AggregateOptions opts;
  opts.group_by = {"k"};
  opts.aggs = {{AggKind::kSum, "v", "s"}};
  OrderedAggregate agg(VectorSource::Ints({{"k", keys}, {"v", vals}}), opts);
  auto blocks = Drain(&agg);
  EXPECT_EQ(Flatten(blocks, 0), (std::vector<Lane>{1}));
  EXPECT_EQ(Flatten(blocks, 1),
            (std::vector<Lane>{2 * static_cast<Lane>(keys.size())}));
}

TEST(OrderedAggregate, RequiresSingleKey) {
  AggregateOptions opts;
  opts.group_by = {"a", "b"};
  OrderedAggregate agg(VectorSource::Ints({{"a", {}}, {"b", {}}}), opts);
  EXPECT_EQ(agg.Open().code(), StatusCode::kInvalidArgument);
}

TEST(HashAggregate, MinMaxOnStringsViaSortedTokens) {
  auto src = VectorSource::Ints({{"k", {1, 1, 1}}});
  src->AddStringColumn("s", {"b", "a", "c"});
  // Tokens from an accelerator heap ascend by first occurrence; min/max of
  // tokens equal min/max strings only when the heap is sorted. Here the
  // arrival order b,a,c is unsorted, so we aggregate on token values — this
  // test documents that min/max strings require sorted heaps.
  AggregateOptions opts;
  opts.group_by = {"k"};
  opts.aggs = {{AggKind::kCountDistinct, "s", "cd"}};
  HashAggregate agg(std::move(src), opts);
  auto blocks = Drain(&agg);
  EXPECT_EQ(Flatten(blocks, 1), (std::vector<Lane>{3}));
}

}  // namespace
}  // namespace tde
