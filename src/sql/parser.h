#ifndef TDE_SQL_PARSER_H_
#define TDE_SQL_PARSER_H_

#include <string>

#include "src/plan/plan.h"
#include "src/storage/database_file.h"

namespace tde {
namespace sql {

/// Parses a SQL query against the tables of `db` and builds a logical plan
/// (which the usual strategic/tactical machinery then optimizes and runs).
///
/// Supported grammar — the Tableau-shaped analytic subset:
///
///   [EXPLAIN [ANALYZE]] SELECT select_item [, ...] FROM table
///     [WHERE expr]
///     [GROUP BY name [, ...]]
///     [ORDER BY name [ASC|DESC] [, ...]]
///     [LIMIT n]
///
///   select_item := * | expr [AS alias]
///   expr        := literals (42, 1.5, 'text', DATE '1994-01-01',
///                  TRUE/FALSE/NULL), column refs, + - * / %, comparisons,
///                  AND/OR/NOT, BETWEEN, IS [NOT] NULL, scalar functions
///                  (YEAR MONTH DAY TRUNC_MONTH TRUNC_YEAR UPPER LOWER
///                  LENGTH EXTENSION) and aggregates (COUNT(*), COUNT,
///                  COUNTD, SUM, MIN, MAX, AVG, MEDIAN).
///
/// Aggregate queries: every non-aggregate select item must be (an alias
/// of) a GROUP BY key; computed keys and computed aggregate inputs get a
/// projection inserted beneath the aggregation.
struct ParsedQuery {
  Plan plan;
  bool explain = false;
  /// EXPLAIN ANALYZE: run the query and annotate the operator tree with
  /// per-operator rows, blocks and wall time.
  bool analyze = false;
};

Result<ParsedQuery> ParseQuery(const std::string& text, const Database& db);

/// Parses a standalone scalar expression (tests, REPL conveniences).
Result<ExprPtr> ParseExpression(const std::string& text);

}  // namespace sql
}  // namespace tde

#endif  // TDE_SQL_PARSER_H_
