#include "src/sql/parser.h"

#include <algorithm>
#include <cctype>
#include <optional>

#include "src/sql/lexer.h"
#include "src/textscan/parsers.h"

namespace tde {
namespace sql {

namespace {

using expr::Col;

std::string Lower(std::string s) {
  for (char& c : s) {
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  return s;
}

std::optional<AggKind> AggByName(const std::string& upper) {
  if (upper == "COUNT") return AggKind::kCount;
  if (upper == "COUNTD") return AggKind::kCountDistinct;
  if (upper == "SUM") return AggKind::kSum;
  if (upper == "MIN") return AggKind::kMin;
  if (upper == "MAX") return AggKind::kMax;
  if (upper == "AVG") return AggKind::kAvg;
  if (upper == "MEDIAN") return AggKind::kMedian;
  return std::nullopt;
}

std::optional<DateFunc> DateFuncByName(const std::string& upper) {
  if (upper == "YEAR") return DateFunc::kYear;
  if (upper == "MONTH") return DateFunc::kMonth;
  if (upper == "DAY") return DateFunc::kDay;
  if (upper == "TRUNC_MONTH") return DateFunc::kTruncMonth;
  if (upper == "TRUNC_YEAR") return DateFunc::kTruncYear;
  return std::nullopt;
}

std::optional<StrFunc> StrFuncByName(const std::string& upper) {
  if (upper == "UPPER") return StrFunc::kUpper;
  if (upper == "LOWER") return StrFunc::kLower;
  if (upper == "LENGTH") return StrFunc::kLength;
  if (upper == "EXTENSION") return StrFunc::kExtension;
  return std::nullopt;
}

/// One SELECT output: either a scalar expression or a top-level aggregate.
struct SelectItem {
  bool star = false;
  bool is_agg = false;
  AggKind agg_kind = AggKind::kCountStar;
  ExprPtr expr;  // scalar expression, or the aggregate's input (may be null
                 // for COUNT(*))
  std::string alias;
};

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : toks_(std::move(tokens)) {}

  Result<ParsedQuery> Query(const Database& db);
  Result<ExprPtr> Expression() { return OrExpr(); }
  Status ExpectEnd() {
    if (AcceptSym(";")) {
    }
    if (Cur().kind != TokenKind::kEnd) {
      return Error("unexpected trailing input");
    }
    return Status::OK();
  }

 private:
  const Token& Cur() const { return toks_[i_]; }
  void Advance() {
    if (i_ + 1 < toks_.size()) ++i_;
  }
  bool AcceptKw(const char* kw) {
    if (IsKeyword(Cur(), kw)) {
      Advance();
      return true;
    }
    return false;
  }
  bool AcceptSym(const char* s) {
    if (IsSymbol(Cur(), s)) {
      Advance();
      return true;
    }
    return false;
  }
  Status Error(const std::string& msg) const {
    return Status::ParseError(msg + " at offset " +
                              std::to_string(Cur().pos) +
                              (Cur().text.empty() ? "" : " near '" +
                                                            Cur().text + "'"));
  }
  Status ExpectSym(const char* s) {
    if (!AcceptSym(s)) return Error(std::string("expected '") + s + "'");
    return Status::OK();
  }

  Result<SelectItem> ParseSelectItem();
  Result<ExprPtr> OrExpr();
  Result<ExprPtr> AndExpr();
  Result<ExprPtr> NotExprP();
  Result<ExprPtr> Comparison();
  Result<ExprPtr> Additive();
  Result<ExprPtr> Multiplicative();
  Result<ExprPtr> Unary();
  Result<ExprPtr> Primary();

  struct JoinClause {
    std::string table;
    std::string outer_key;
    std::string inner_key;
  };

  Result<JoinClause> ParseJoinClause();
  Result<Plan> BuildPlan(const Database& db, const std::string& table_name,
                         std::vector<JoinClause> joins,
                         std::vector<SelectItem> items, ExprPtr where,
                         std::vector<std::string> group_by, ExprPtr having,
                         std::vector<SortKey> order_by,
                         std::optional<uint64_t> limit);

  std::vector<Token> toks_;
  size_t i_ = 0;
};

Result<ExprPtr> Parser::OrExpr() {
  TDE_ASSIGN_OR_RETURN(ExprPtr left, AndExpr());
  while (AcceptKw("OR")) {
    TDE_ASSIGN_OR_RETURN(ExprPtr right, AndExpr());
    left = expr::Or(left, right);
  }
  return left;
}

Result<ExprPtr> Parser::AndExpr() {
  TDE_ASSIGN_OR_RETURN(ExprPtr left, NotExprP());
  while (AcceptKw("AND")) {
    TDE_ASSIGN_OR_RETURN(ExprPtr right, NotExprP());
    left = expr::And(left, right);
  }
  return left;
}

Result<ExprPtr> Parser::NotExprP() {
  if (AcceptKw("NOT")) {
    TDE_ASSIGN_OR_RETURN(ExprPtr inner, NotExprP());
    return expr::Not(inner);
  }
  return Comparison();
}

Result<ExprPtr> Parser::Comparison() {
  TDE_ASSIGN_OR_RETURN(ExprPtr left, Additive());
  if (AcceptKw("IS")) {
    const bool negated = AcceptKw("NOT");
    if (!AcceptKw("NULL")) return {Error("expected NULL after IS")};
    ExprPtr e = expr::IsNull(left);
    return negated ? expr::Not(e) : e;
  }
  if (AcceptKw("LIKE")) {
    if (Cur().kind != TokenKind::kString) {
      return {Error("expected pattern string after LIKE")};
    }
    const std::string pattern = Cur().text;
    Advance();
    return expr::Like(left, pattern);
  }
  const bool negated_in = IsKeyword(Cur(), "NOT") &&
                          i_ + 1 < toks_.size() &&
                          IsKeyword(toks_[i_ + 1], "IN");
  if (negated_in) Advance();
  if (AcceptKw("IN")) {
    TDE_RETURN_NOT_OK(ExpectSym("("));
    ExprPtr any;
    do {
      TDE_ASSIGN_OR_RETURN(ExprPtr option, Additive());
      ExprPtr eq = expr::Eq(left, option);
      any = any == nullptr ? eq : expr::Or(any, eq);
    } while (AcceptSym(","));
    TDE_RETURN_NOT_OK(ExpectSym(")"));
    return negated_in ? expr::Not(any) : any;
  }
  if (negated_in) return {Error("expected IN after NOT")};
  if (AcceptKw("BETWEEN")) {
    TDE_ASSIGN_OR_RETURN(ExprPtr lo, Additive());
    if (!AcceptKw("AND")) return {Error("expected AND in BETWEEN")};
    TDE_ASSIGN_OR_RETURN(ExprPtr hi, Additive());
    return expr::And(expr::Ge(left, lo), expr::Le(left, hi));
  }
  struct OpMap {
    const char* sym;
    CompareOp op;
  };
  static const OpMap kOps[] = {{"<=", CompareOp::kLe}, {">=", CompareOp::kGe},
                               {"<>", CompareOp::kNe}, {"!=", CompareOp::kNe},
                               {"==", CompareOp::kEq}, {"=", CompareOp::kEq},
                               {"<", CompareOp::kLt},  {">", CompareOp::kGt}};
  for (const OpMap& m : kOps) {
    if (AcceptSym(m.sym)) {
      TDE_ASSIGN_OR_RETURN(ExprPtr right, Additive());
      return expr::Cmp(m.op, left, right);
    }
  }
  return left;
}

Result<ExprPtr> Parser::Additive() {
  TDE_ASSIGN_OR_RETURN(ExprPtr left, Multiplicative());
  while (true) {
    if (AcceptSym("+")) {
      TDE_ASSIGN_OR_RETURN(ExprPtr r, Multiplicative());
      left = expr::Add(left, r);
    } else if (AcceptSym("-")) {
      TDE_ASSIGN_OR_RETURN(ExprPtr r, Multiplicative());
      left = expr::Sub(left, r);
    } else {
      return left;
    }
  }
}

Result<ExprPtr> Parser::Multiplicative() {
  TDE_ASSIGN_OR_RETURN(ExprPtr left, Unary());
  while (true) {
    if (AcceptSym("*")) {
      TDE_ASSIGN_OR_RETURN(ExprPtr r, Unary());
      left = expr::Mul(left, r);
    } else if (AcceptSym("/")) {
      TDE_ASSIGN_OR_RETURN(ExprPtr r, Unary());
      left = expr::Div(left, r);
    } else if (AcceptSym("%")) {
      TDE_ASSIGN_OR_RETURN(ExprPtr r, Unary());
      left = expr::Arith(ArithOp::kMod, left, r);
    } else {
      return left;
    }
  }
}

Result<ExprPtr> Parser::Unary() {
  if (AcceptSym("-")) {
    TDE_ASSIGN_OR_RETURN(ExprPtr inner, Unary());
    return expr::Simplify(expr::Sub(expr::Int(0), inner));
  }
  return Primary();
}

Result<ExprPtr> Parser::Primary() {
  const Token t = Cur();
  switch (t.kind) {
    case TokenKind::kInteger: {
      Advance();
      int64_t v = 0;
      if (!ParseInt64(t.text, &v)) return {Error("bad integer literal")};
      return expr::Int(v);
    }
    case TokenKind::kReal: {
      Advance();
      double d = 0;
      if (!ParseDouble(t.text, &d)) return {Error("bad real literal")};
      return expr::Real(d);
    }
    case TokenKind::kString:
      Advance();
      return expr::Str(t.text);
    case TokenKind::kKeyword:
      if (AcceptKw("TRUE")) return expr::Bool(true);
      if (AcceptKw("FALSE")) return expr::Bool(false);
      if (AcceptKw("NULL")) return expr::Null(TypeId::kInteger);
      if (AcceptKw("CASE")) {
        std::vector<expr::CaseBranch> branches;
        while (AcceptKw("WHEN")) {
          expr::CaseBranch b;
          TDE_ASSIGN_OR_RETURN(b.condition, OrExpr());
          if (!AcceptKw("THEN")) return {Error("expected THEN")};
          TDE_ASSIGN_OR_RETURN(b.value, OrExpr());
          branches.push_back(std::move(b));
        }
        if (branches.empty()) {
          return {Error("CASE requires at least one WHEN branch")};
        }
        ExprPtr otherwise;
        if (AcceptKw("ELSE")) {
          TDE_ASSIGN_OR_RETURN(otherwise, OrExpr());
        }
        if (!AcceptKw("END")) return {Error("expected END")};
        return expr::Case(std::move(branches), std::move(otherwise));
      }
      if (AcceptKw("DATE")) {
        const Token lit = Cur();
        if (lit.kind != TokenKind::kString) {
          return {Error("expected date string after DATE")};
        }
        Advance();
        int64_t days = 0;
        if (!ParseDate(lit.text, &days)) {
          return {Error("bad date literal '" + lit.text + "'")};
        }
        int y;
        unsigned m, d;
        CivilFromDays(days, &y, &m, &d);
        return expr::Date(y, m, d);
      }
      return {Error("unexpected keyword")};
    case TokenKind::kIdent: {
      Advance();
      if (AcceptSym(".")) {
        // Qualified reference `table.column`: the engine's plans bind by
        // column name, so the qualifier is only checked syntactically.
        if (Cur().kind != TokenKind::kIdent) {
          return {Error("expected column after '.'")};
        }
        const std::string col = Cur().text;
        Advance();
        return Col(col);
      }
      if (!IsSymbol(Cur(), "(")) return Col(t.text);
      // Function call.
      Advance();
      const std::string upper = [&] {
        std::string u = t.text;
        for (char& c : u) {
          c = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
        }
        return u;
      }();
      if (AggByName(upper).has_value()) {
        return {Error("aggregate '" + t.text +
                      "' is only allowed at the top of a SELECT item")};
      }
      TDE_ASSIGN_OR_RETURN(ExprPtr arg, OrExpr());
      TDE_RETURN_NOT_OK(ExpectSym(")"));
      if (auto df = DateFuncByName(upper)) return expr::DateF(*df, arg);
      if (auto sf = StrFuncByName(upper)) return expr::StrF(*sf, arg);
      return {Error("unknown function '" + t.text + "'")};
    }
    case TokenKind::kSymbol:
      if (AcceptSym("(")) {
        TDE_ASSIGN_OR_RETURN(ExprPtr inner, OrExpr());
        TDE_RETURN_NOT_OK(ExpectSym(")"));
        return inner;
      }
      return {Error("unexpected symbol")};
    case TokenKind::kEnd:
      return {Error("unexpected end of input")};
  }
  return {Error("unexpected token")};
}

Result<SelectItem> Parser::ParseSelectItem() {
  SelectItem item;
  if (AcceptSym("*")) {
    item.star = true;
    return item;
  }
  // Top-level aggregate?
  if (Cur().kind == TokenKind::kIdent && i_ + 1 < toks_.size() &&
      IsSymbol(toks_[i_ + 1], "(")) {
    std::string upper = Cur().text;
    for (char& c : upper) {
      c = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
    }
    if (auto kind = AggByName(upper)) {
      Advance();  // name
      Advance();  // (
      item.is_agg = true;
      if (*kind == AggKind::kCount && AcceptSym("*")) {
        item.agg_kind = AggKind::kCountStar;
      } else {
        item.agg_kind = *kind;
        TDE_ASSIGN_OR_RETURN(item.expr, OrExpr());
      }
      TDE_RETURN_NOT_OK(ExpectSym(")"));
      if (AcceptKw("AS")) {
        if (Cur().kind != TokenKind::kIdent) {
          return {Error("expected alias after AS")};
        }
        item.alias = Cur().text;
        Advance();
      }
      return item;
    }
  }
  TDE_ASSIGN_OR_RETURN(item.expr, OrExpr());
  if (AcceptKw("AS")) {
    if (Cur().kind != TokenKind::kIdent) {
      return {Error("expected alias after AS")};
    }
    item.alias = Cur().text;
    Advance();
  }
  return item;
}

Result<ParsedQuery> Parser::Query(const Database& db) {
  ParsedQuery out;
  out.explain = AcceptKw("EXPLAIN");
  if (out.explain) out.analyze = AcceptKw("ANALYZE");
  if (!AcceptKw("SELECT")) return {Error("expected SELECT")};

  std::vector<SelectItem> items;
  do {
    TDE_ASSIGN_OR_RETURN(SelectItem item, ParseSelectItem());
    items.push_back(std::move(item));
  } while (AcceptSym(","));

  if (!AcceptKw("FROM")) return {Error("expected FROM")};
  if (Cur().kind != TokenKind::kIdent) return {Error("expected table name")};
  const std::string table_name = Cur().text;
  Advance();

  std::vector<JoinClause> joins;
  while (IsKeyword(Cur(), "JOIN") || IsKeyword(Cur(), "INNER")) {
    AcceptKw("INNER");
    if (!AcceptKw("JOIN")) return {Error("expected JOIN")};
    TDE_ASSIGN_OR_RETURN(JoinClause jc, ParseJoinClause());
    joins.push_back(std::move(jc));
  }

  ExprPtr where;
  if (AcceptKw("WHERE")) {
    TDE_ASSIGN_OR_RETURN(where, OrExpr());
  }
  std::vector<std::string> group_by;
  if (AcceptKw("GROUP")) {
    if (!AcceptKw("BY")) return {Error("expected BY after GROUP")};
    do {
      if (Cur().kind != TokenKind::kIdent) {
        return {Error("expected column in GROUP BY")};
      }
      group_by.push_back(Cur().text);
      Advance();
    } while (AcceptSym(","));
  }
  ExprPtr having;
  if (AcceptKw("HAVING")) {
    TDE_ASSIGN_OR_RETURN(having, OrExpr());
  }
  std::vector<SortKey> order_by;
  if (AcceptKw("ORDER")) {
    if (!AcceptKw("BY")) return {Error("expected BY after ORDER")};
    do {
      if (Cur().kind != TokenKind::kIdent) {
        return {Error("expected column in ORDER BY")};
      }
      SortKey key{Cur().text, true};
      Advance();
      if (AcceptKw("DESC")) {
        key.ascending = false;
      } else {
        AcceptKw("ASC");
      }
      order_by.push_back(std::move(key));
    } while (AcceptSym(","));
  }
  std::optional<uint64_t> limit;
  if (AcceptKw("LIMIT")) {
    if (Cur().kind != TokenKind::kInteger) {
      return {Error("expected integer after LIMIT")};
    }
    int64_t n = 0;
    if (!ParseInt64(Cur().text, &n) || n < 0) {
      return {Error("bad LIMIT value")};
    }
    Advance();
    limit = static_cast<uint64_t>(n);
  }
  TDE_RETURN_NOT_OK(ExpectEnd());
  TDE_ASSIGN_OR_RETURN(
      out.plan, BuildPlan(db, table_name, std::move(joins), std::move(items),
                          where, std::move(group_by), having,
                          std::move(order_by), limit));
  return out;
}

Result<Parser::JoinClause> Parser::ParseJoinClause() {
  JoinClause jc;
  if (Cur().kind != TokenKind::kIdent) return {Error("expected table name")};
  jc.table = Cur().text;
  Advance();
  if (AcceptKw("USING")) {
    TDE_RETURN_NOT_OK(ExpectSym("("));
    if (Cur().kind != TokenKind::kIdent) {
      return {Error("expected column in USING")};
    }
    jc.outer_key = jc.inner_key = Cur().text;
    Advance();
    TDE_RETURN_NOT_OK(ExpectSym(")"));
    return jc;
  }
  if (!AcceptKw("ON")) return {Error("expected ON or USING after JOIN")};
  // ON [qual.]a = [qual.]b — the side naming the joined table is the inner
  // key; resolved against the tables in BuildPlan.
  auto parse_side = [&]() -> Result<std::pair<std::string, std::string>> {
    if (Cur().kind != TokenKind::kIdent) {
      return {Error("expected column in ON")};
    }
    std::string first = Cur().text;
    Advance();
    std::string qualifier;
    if (AcceptSym(".")) {
      if (Cur().kind != TokenKind::kIdent) {
        return {Error("expected column after '.'")};
      }
      qualifier = first;
      first = Cur().text;
      Advance();
    }
    return std::make_pair(qualifier, first);
  };
  TDE_ASSIGN_OR_RETURN(auto lhs, parse_side());
  TDE_RETURN_NOT_OK(ExpectSym("="));
  TDE_ASSIGN_OR_RETURN(auto rhs, parse_side());
  if (lhs.first == jc.table) {
    jc.inner_key = lhs.second;
    jc.outer_key = rhs.second;
  } else {
    jc.outer_key = lhs.second;
    jc.inner_key = rhs.second;
  }
  return jc;
}

Result<Plan> Parser::BuildPlan(const Database& db,
                               const std::string& table_name,
                               std::vector<JoinClause> joins,
                               std::vector<SelectItem> items, ExprPtr where,
                               std::vector<std::string> group_by,
                               ExprPtr having,
                               std::vector<SortKey> order_by,
                               std::optional<uint64_t> limit) {
  TDE_ASSIGN_OR_RETURN(auto table, db.GetTable(table_name));
  Plan plan = Plan::Scan(table);
  // Many-to-one joins: the joined table is the (unique-keyed) inner side;
  // all its other columns come along as payload unless the name is taken.
  std::vector<std::string> taken;
  for (size_t i = 0; i < table->num_columns(); ++i) {
    taken.push_back(table->column(i).name());
  }
  for (JoinClause& jc : joins) {
    TDE_ASSIGN_OR_RETURN(auto inner, db.GetTable(jc.table));
    HashJoinOptions opts;
    opts.outer_key = jc.outer_key;
    opts.inner_key = jc.inner_key;
    for (size_t i = 0; i < inner->num_columns(); ++i) {
      const std::string& n = inner->column(i).name();
      if (n == jc.inner_key) continue;
      if (std::find(taken.begin(), taken.end(), n) != taken.end()) continue;
      opts.inner_payload.push_back(n);
      taken.push_back(n);
    }
    plan = std::move(plan).Join(inner, std::move(opts));
  }
  if (where != nullptr) plan = std::move(plan).Filter(where);

  const bool has_aggs =
      std::any_of(items.begin(), items.end(),
                  [](const SelectItem& s) { return s.is_agg; });
  if (!has_aggs && group_by.empty()) {
    if (having != nullptr) {
      return {Status::ParseError("HAVING requires GROUP BY or aggregates")};
    }
    // Pure selection. '*' anywhere means all columns.
    const bool star = std::any_of(items.begin(), items.end(),
                                  [](const SelectItem& s) { return s.star; });
    if (!star) {
      std::vector<ProjectedColumn> cols;
      int anon = 0;
      for (SelectItem& s : items) {
        std::string name = s.alias;
        if (name.empty()) {
          if (const std::string* ref = s.expr->AsColumnRef()) {
            name = *ref;
          } else {
            name = "expr" + std::to_string(anon++);
          }
        }
        cols.push_back({std::move(s.expr), std::move(name)});
      }
      plan = std::move(plan).Project(std::move(cols));
    }
  } else {
    // Aggregate query. Resolve names, insert a pre-projection when keys or
    // aggregate inputs are computed.
    if (std::any_of(items.begin(), items.end(),
                    [](const SelectItem& s) { return s.star; })) {
      return {Status::ParseError("SELECT * cannot be combined with "
                                 "aggregates")};
    }
    // Output name for every item.
    int anon = 0;
    std::vector<std::string> out_names(items.size());
    for (size_t k = 0; k < items.size(); ++k) {
      SelectItem& s = items[k];
      if (!s.alias.empty()) {
        out_names[k] = s.alias;
      } else if (!s.is_agg && s.expr->AsColumnRef() != nullptr) {
        out_names[k] = *s.expr->AsColumnRef();
      } else if (s.is_agg) {
        std::string base = [&] {
          switch (s.agg_kind) {
            case AggKind::kCountStar:
            case AggKind::kCount: return std::string("count");
            case AggKind::kCountDistinct: return std::string("countd");
            case AggKind::kSum: return std::string("sum");
            case AggKind::kMin: return std::string("min");
            case AggKind::kMax: return std::string("max");
            case AggKind::kAvg: return std::string("avg");
            case AggKind::kMedian: return std::string("median");
          }
          return std::string("agg");
        }();
        if (s.expr != nullptr && s.expr->AsColumnRef() != nullptr) {
          base += "_" + *s.expr->AsColumnRef();
        }
        out_names[k] = base;
      } else {
        out_names[k] = "expr" + std::to_string(anon++);
      }
    }
    // GROUP BY keys default to the non-aggregate select items.
    if (group_by.empty()) {
      for (size_t k = 0; k < items.size(); ++k) {
        if (!items[k].is_agg) group_by.push_back(out_names[k]);
      }
    }
    // Key name -> expression (from select aliases, else a column ref).
    std::vector<ProjectedColumn> pre;
    bool pre_needed = false;
    for (const std::string& key : group_by) {
      ExprPtr e;
      for (size_t k = 0; k < items.size(); ++k) {
        if (!items[k].is_agg && out_names[k] == key) {
          e = items[k].expr;
          break;
        }
      }
      if (e == nullptr) e = Col(key);
      if (e->AsColumnRef() == nullptr || *e->AsColumnRef() != key) {
        pre_needed = true;
      }
      pre.push_back({std::move(e), key});
    }
    // Every non-aggregate select item must be a grouping key.
    for (size_t k = 0; k < items.size(); ++k) {
      if (items[k].is_agg) continue;
      if (std::find(group_by.begin(), group_by.end(), out_names[k]) ==
          group_by.end()) {
        return {Status::ParseError("non-aggregate select item '" +
                                   out_names[k] +
                                   "' must appear in GROUP BY")};
      }
    }
    // Aggregate inputs.
    std::vector<AggSpec> aggs;
    int synth = 0;
    for (size_t k = 0; k < items.size(); ++k) {
      if (!items[k].is_agg) continue;
      AggSpec spec;
      spec.kind = items[k].agg_kind;
      spec.output = out_names[k];
      if (spec.kind != AggKind::kCountStar) {
        if (const std::string* ref = items[k].expr->AsColumnRef()) {
          spec.input = *ref;
          pre.push_back({items[k].expr, *ref});
        } else {
          spec.input = "$agg" + std::to_string(synth++);
          pre.push_back({items[k].expr, spec.input});
          pre_needed = true;
        }
      }
      aggs.push_back(std::move(spec));
    }
    if (pre_needed) {
      plan = std::move(plan).Project(std::move(pre));
    }
    plan = std::move(plan).Aggregate(group_by, std::move(aggs));
    if (having != nullptr) plan = std::move(plan).Filter(having);
    // Final projection restores the SELECT order (and drops unselected
    // keys).
    std::vector<ProjectedColumn> post;
    for (size_t k = 0; k < items.size(); ++k) {
      post.push_back({Col(out_names[k]), out_names[k]});
    }
    plan = std::move(plan).Project(std::move(post));
  }

  if (!order_by.empty()) plan = std::move(plan).OrderBy(std::move(order_by));
  if (limit.has_value()) plan = std::move(plan).Limit(*limit);
  return plan;
}

}  // namespace

Result<ParsedQuery> ParseQuery(const std::string& text, const Database& db) {
  TDE_ASSIGN_OR_RETURN(auto tokens, Lex(text));
  Parser p(std::move(tokens));
  return p.Query(db);
}

Result<ExprPtr> ParseExpression(const std::string& text) {
  TDE_ASSIGN_OR_RETURN(auto tokens, Lex(text));
  Parser p(std::move(tokens));
  TDE_ASSIGN_OR_RETURN(ExprPtr e, p.Expression());
  TDE_RETURN_NOT_OK(p.ExpectEnd());
  return e;
}

}  // namespace sql
}  // namespace tde
