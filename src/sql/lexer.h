#ifndef TDE_SQL_LEXER_H_
#define TDE_SQL_LEXER_H_

#include <string>
#include <vector>

#include "src/common/status.h"

namespace tde {
namespace sql {

enum class TokenKind {
  kIdent,    // bare identifier (case preserved) or "quoted"
  kKeyword,  // recognized keyword, upper-cased in `text`
  kInteger,
  kReal,
  kString,   // single-quoted literal, unescaped in `text`
  kSymbol,   // operators and punctuation, e.g. "<=", ",", "("
  kEnd,
};

struct Token {
  TokenKind kind;
  std::string text;
  size_t pos;  // byte offset in the input, for error messages
};

/// Tokenizes a SQL string. Keywords are recognized case-insensitively and
/// normalized to upper case; identifiers keep their spelling. Returns a
/// ParseError with the offending position on bad input.
Result<std::vector<Token>> Lex(const std::string& input);

/// True if `t` is the given keyword (already upper-cased by the lexer).
inline bool IsKeyword(const Token& t, const char* kw) {
  return t.kind == TokenKind::kKeyword && t.text == kw;
}
inline bool IsSymbol(const Token& t, const char* s) {
  return t.kind == TokenKind::kSymbol && t.text == s;
}

}  // namespace sql
}  // namespace tde

#endif  // TDE_SQL_LEXER_H_
