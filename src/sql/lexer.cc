#include "src/sql/lexer.h"

#include <array>
#include <cctype>

namespace tde {
namespace sql {

namespace {

constexpr std::array<const char*, 34> kKeywords = {
    "SELECT", "FROM",  "WHERE", "GROUP",  "BY",      "ORDER",   "LIMIT",
    "AS",     "AND",   "OR",    "NOT",    "IS",      "NULL",    "TRUE",
    "FALSE",  "ASC",   "DESC",  "DATE",   "BETWEEN", "EXPLAIN", "IN",
    "LIKE",   "HAVING", "DISTINCT", "JOIN", "ON",    "INNER",   "USING",
    "CASE",   "WHEN",  "THEN",  "ELSE",   "END",     "ANALYZE"};

bool IsIdentStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}
bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_' || c == '$';
}

std::string Upper(std::string s) {
  for (char& c : s) c = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
  return s;
}

}  // namespace

Result<std::vector<Token>> Lex(const std::string& in) {
  std::vector<Token> out;
  size_t i = 0;
  while (i < in.size()) {
    const char c = in[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    const size_t start = i;
    if (IsIdentStart(c)) {
      while (i < in.size() && IsIdentChar(in[i])) ++i;
      std::string word = in.substr(start, i - start);
      const std::string upper = Upper(word);
      bool is_kw = false;
      for (const char* kw : kKeywords) {
        if (upper == kw) {
          is_kw = true;
          break;
        }
      }
      out.push_back({is_kw ? TokenKind::kKeyword : TokenKind::kIdent,
                     is_kw ? upper : std::move(word), start});
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '.' && i + 1 < in.size() &&
         std::isdigit(static_cast<unsigned char>(in[i + 1])))) {
      bool real = false;
      while (i < in.size() &&
             (std::isdigit(static_cast<unsigned char>(in[i])) ||
              in[i] == '.' || in[i] == 'e' || in[i] == 'E' ||
              ((in[i] == '+' || in[i] == '-') && i > start &&
               (in[i - 1] == 'e' || in[i - 1] == 'E')))) {
        if (in[i] == '.' || in[i] == 'e' || in[i] == 'E') real = true;
        ++i;
      }
      out.push_back({real ? TokenKind::kReal : TokenKind::kInteger,
                     in.substr(start, i - start), start});
      continue;
    }
    if (c == '\'') {
      std::string text;
      ++i;
      bool closed = false;
      while (i < in.size()) {
        if (in[i] == '\'') {
          if (i + 1 < in.size() && in[i + 1] == '\'') {
            text.push_back('\'');  // '' escapes a quote
            i += 2;
            continue;
          }
          ++i;
          closed = true;
          break;
        }
        text.push_back(in[i]);
        ++i;
      }
      if (!closed) {
        return {Status::ParseError("unterminated string literal at offset " +
                                   std::to_string(start))};
      }
      out.push_back({TokenKind::kString, std::move(text), start});
      continue;
    }
    if (c == '"') {
      std::string text;
      ++i;
      bool closed = false;
      while (i < in.size()) {
        if (in[i] == '"') {
          ++i;
          closed = true;
          break;
        }
        text.push_back(in[i]);
        ++i;
      }
      if (!closed) {
        return {Status::ParseError(
            "unterminated quoted identifier at offset " +
            std::to_string(start))};
      }
      out.push_back({TokenKind::kIdent, std::move(text), start});
      continue;
    }
    // Multi-character operators first.
    static const char* kTwo[] = {"<=", ">=", "<>", "!=", "=="};
    bool matched = false;
    for (const char* op : kTwo) {
      if (in.compare(i, 2, op) == 0) {
        out.push_back({TokenKind::kSymbol, op, start});
        i += 2;
        matched = true;
        break;
      }
    }
    if (matched) continue;
    static const std::string kSingles = "+-*/%(),=<>.;";
    if (kSingles.find(c) != std::string::npos) {
      out.push_back({TokenKind::kSymbol, std::string(1, c), start});
      ++i;
      continue;
    }
    return {Status::ParseError("unexpected character '" + std::string(1, c) +
                               "' at offset " + std::to_string(start))};
  }
  out.push_back({TokenKind::kEnd, "", in.size()});
  return out;
}

}  // namespace sql
}  // namespace tde
