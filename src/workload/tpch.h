#ifndef TDE_WORKLOAD_TPCH_H_
#define TDE_WORKLOAD_TPCH_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/storage/schema.h"

namespace tde {

/// TPC-H dbgen-equivalent text generator (the paper's import corpus,
/// Sect. 5.2). Produces '|'-separated text compatible with TextScan, with
/// the column shapes that drive the paper's encoding results:
///   - c_name:     "Customer#000000001" — fixed-width unique strings whose
///                 equally spaced heap offsets trigger affine encoding;
///   - l_comment:  random word salad — a large, low-duplication domain the
///                 accelerator cannot compress;
///   - flags, modes, instructions, segments: tiny domains -> dictionary;
///   - dates in [1992-01-01, 1998-12-31];
///   - keys: dense or near-dense ascending integers.
///
/// The scale factor multiplies row counts exactly as dbgen's does
/// (lineitem ~ 6M rows at SF 1). Generation is deterministic per seed.
enum class TpchTable {
  kRegion,
  kNation,
  kSupplier,
  kCustomer,
  kPart,
  kPartsupp,
  kOrders,
  kLineitem,
};

/// All eight tables in generation order.
const std::vector<TpchTable>& AllTpchTables();

const char* TpchTableName(TpchTable t);

/// The table's schema (types as Tableau models them).
Schema TpchSchema(TpchTable t);

/// Number of rows at the given scale factor (lineitem is approximate, as
/// in dbgen: orders have 1-7 lines each).
uint64_t TpchRowCount(TpchTable t, double scale_factor);

/// Generates the table as separated text with a header row.
std::string GenerateTpchTable(TpchTable t, double scale_factor,
                              uint64_t seed = 19940622);

/// Generates and writes to a file.
Status WriteTpchTable(TpchTable t, double scale_factor,
                      const std::string& path, uint64_t seed = 19940622);

}  // namespace tde

#endif  // TDE_WORKLOAD_TPCH_H_
