#include "src/workload/tpch.h"

#include <array>
#include <cstdio>
#include <cstring>

#include "src/common/types.h"

namespace tde {

namespace {

/// Deterministic 64-bit generator (splitmix64 stream).
class Rng {
 public:
  explicit Rng(uint64_t seed) : state_(seed) {}
  uint64_t Next() {
    state_ += 0x9e3779b97f4a7c15ULL;
    uint64_t z = state_;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }
  /// Uniform in [lo, hi] inclusive.
  int64_t Range(int64_t lo, int64_t hi) {
    return lo + static_cast<int64_t>(Next() %
                                     static_cast<uint64_t>(hi - lo + 1));
  }
  double Real(double lo, double hi) {
    return lo + (hi - lo) * (static_cast<double>(Next() >> 11) /
                             9007199254740992.0);
  }

 private:
  uint64_t state_;
};

constexpr std::array<const char*, 64> kWords = {
    "furiously",  "quickly",  "slyly",     "carefully", "blithely",
    "ironic",     "final",    "express",   "regular",   "special",
    "pending",    "bold",     "even",      "silent",    "unusual",
    "accounts",   "packages", "deposits",  "requests",  "instructions",
    "theodolites", "pinto",   "beans",     "foxes",     "dependencies",
    "platelets",  "asymptotes", "ideas",   "dolphins",  "sauternes",
    "warhorses",  "sheaves",  "excuses",   "dugouts",   "courts",
    "realms",     "pearls",   "sentiments", "braids",   "frets",
    "across",     "above",    "against",   "along",     "among",
    "beneath",    "beside",   "between",   "sleep",     "wake",
    "haggle",     "nag",      "cajole",    "detect",    "integrate",
    "use",        "boost",    "engage",    "affix",     "doze",
    "the",        "of",       "to",        "are"};

constexpr std::array<const char*, 5> kSegments = {
    "AUTOMOBILE", "BUILDING", "FURNITURE", "MACHINERY", "HOUSEHOLD"};
constexpr std::array<const char*, 5> kPriorities = {
    "1-URGENT", "2-HIGH", "3-MEDIUM", "4-NOT SPECIFIED", "5-LOW"};
constexpr std::array<const char*, 4> kInstructions = {
    "DELIVER IN PERSON", "COLLECT COD", "NONE", "TAKE BACK RETURN"};
constexpr std::array<const char*, 7> kModes = {
    "REG AIR", "AIR", "RAIL", "SHIP", "TRUCK", "MAIL", "FOB"};
constexpr std::array<const char*, 5> kMfgrs = {
    "Manufacturer#1", "Manufacturer#2", "Manufacturer#3", "Manufacturer#4",
    "Manufacturer#5"};
constexpr std::array<const char*, 25> kNations = {
    "ALGERIA", "ARGENTINA", "BRAZIL",     "CANADA",  "EGYPT",
    "ETHIOPIA", "FRANCE",   "GERMANY",    "INDIA",   "INDONESIA",
    "IRAN",     "IRAQ",     "JAPAN",      "JORDAN",  "KENYA",
    "MOROCCO",  "MOZAMBIQUE", "PERU",     "CHINA",   "ROMANIA",
    "SAUDI ARABIA", "VIETNAM", "RUSSIA",  "UNITED KINGDOM",
    "UNITED STATES"};
constexpr std::array<const char*, 5> kRegions = {
    "AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST"};
constexpr std::array<const char*, 6> kTypes1 = {"STANDARD", "SMALL", "MEDIUM",
                                                "LARGE", "ECONOMY", "PROMO"};
constexpr std::array<const char*, 5> kTypes2 = {"ANODIZED", "BURNISHED",
                                                "PLATED", "POLISHED",
                                                "BRUSHED"};
constexpr std::array<const char*, 5> kTypes3 = {"TIN", "NICKEL", "BRASS",
                                                "STEEL", "COPPER"};
constexpr std::array<const char*, 8> kContainers1 = {
    "SM", "LG", "MED", "JUMBO", "WRAP", "SMALL", "LARGE", "BIG"};
constexpr std::array<const char*, 5> kContainers2 = {"CASE", "BOX", "BAG",
                                                     "JAR", "PKG"};

const int64_t kStartDate = DaysFromCivil(1992, 1, 1);
const int64_t kEndDate = DaysFromCivil(1998, 12, 1);

void AppendComment(Rng* rng, int min_words, int max_words, std::string* out) {
  const int n = static_cast<int>(rng->Range(min_words, max_words));
  for (int i = 0; i < n; ++i) {
    if (i > 0) out->push_back(' ');
    out->append(kWords[rng->Next() % kWords.size()]);
  }
}

void AppendMoney(double v, std::string* out) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.2f", v);
  out->append(buf);
}

void AppendDate(int64_t days, std::string* out) {
  out->append(FormatLane(TypeId::kDate, days));
}

void AppendKeyedName(const char* prefix, int64_t key, std::string* out) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%s#%09lld", prefix,
                static_cast<long long>(key));
  out->append(buf);
}

void AppendPhone(Rng* rng, int64_t nation, std::string* out) {
  char buf[96];
  std::snprintf(buf, sizeof(buf), "%02lld-%03lld-%03lld-%04lld",
                static_cast<long long>(10 + nation),
                static_cast<long long>(rng->Range(100, 999)),
                static_cast<long long>(rng->Range(100, 999)),
                static_cast<long long>(rng->Range(1000, 9999)));
  out->append(buf);
}

}  // namespace

const std::vector<TpchTable>& AllTpchTables() {
  static const std::vector<TpchTable> kAll = {
      TpchTable::kRegion,   TpchTable::kNation, TpchTable::kSupplier,
      TpchTable::kCustomer, TpchTable::kPart,   TpchTable::kPartsupp,
      TpchTable::kOrders,   TpchTable::kLineitem};
  return kAll;
}

const char* TpchTableName(TpchTable t) {
  switch (t) {
    case TpchTable::kRegion: return "region";
    case TpchTable::kNation: return "nation";
    case TpchTable::kSupplier: return "supplier";
    case TpchTable::kCustomer: return "customer";
    case TpchTable::kPart: return "part";
    case TpchTable::kPartsupp: return "partsupp";
    case TpchTable::kOrders: return "orders";
    case TpchTable::kLineitem: return "lineitem";
  }
  return "?";
}

Schema TpchSchema(TpchTable t) {
  using T = TypeId;
  switch (t) {
    case TpchTable::kRegion:
      return Schema({{"r_regionkey", T::kInteger},
                     {"r_name", T::kString},
                     {"r_comment", T::kString}});
    case TpchTable::kNation:
      return Schema({{"n_nationkey", T::kInteger},
                     {"n_name", T::kString},
                     {"n_regionkey", T::kInteger},
                     {"n_comment", T::kString}});
    case TpchTable::kSupplier:
      return Schema({{"s_suppkey", T::kInteger},
                     {"s_name", T::kString},
                     {"s_address", T::kString},
                     {"s_nationkey", T::kInteger},
                     {"s_phone", T::kString},
                     {"s_acctbal", T::kReal},
                     {"s_comment", T::kString}});
    case TpchTable::kCustomer:
      return Schema({{"c_custkey", T::kInteger},
                     {"c_name", T::kString},
                     {"c_address", T::kString},
                     {"c_nationkey", T::kInteger},
                     {"c_phone", T::kString},
                     {"c_acctbal", T::kReal},
                     {"c_mktsegment", T::kString},
                     {"c_comment", T::kString}});
    case TpchTable::kPart:
      return Schema({{"p_partkey", T::kInteger},
                     {"p_name", T::kString},
                     {"p_mfgr", T::kString},
                     {"p_brand", T::kString},
                     {"p_type", T::kString},
                     {"p_size", T::kInteger},
                     {"p_container", T::kString},
                     {"p_retailprice", T::kReal},
                     {"p_comment", T::kString}});
    case TpchTable::kPartsupp:
      return Schema({{"ps_partkey", T::kInteger},
                     {"ps_suppkey", T::kInteger},
                     {"ps_availqty", T::kInteger},
                     {"ps_supplycost", T::kReal},
                     {"ps_comment", T::kString}});
    case TpchTable::kOrders:
      return Schema({{"o_orderkey", T::kInteger},
                     {"o_custkey", T::kInteger},
                     {"o_orderstatus", T::kString},
                     {"o_totalprice", T::kReal},
                     {"o_orderdate", T::kDate},
                     {"o_orderpriority", T::kString},
                     {"o_clerk", T::kString},
                     {"o_shippriority", T::kInteger},
                     {"o_comment", T::kString}});
    case TpchTable::kLineitem:
      return Schema({{"l_orderkey", T::kInteger},
                     {"l_partkey", T::kInteger},
                     {"l_suppkey", T::kInteger},
                     {"l_linenumber", T::kInteger},
                     {"l_quantity", T::kInteger},
                     {"l_extendedprice", T::kReal},
                     {"l_discount", T::kReal},
                     {"l_tax", T::kReal},
                     {"l_returnflag", T::kString},
                     {"l_linestatus", T::kString},
                     {"l_shipdate", T::kDate},
                     {"l_commitdate", T::kDate},
                     {"l_receiptdate", T::kDate},
                     {"l_shipinstruct", T::kString},
                     {"l_shipmode", T::kString},
                     {"l_comment", T::kString}});
  }
  return Schema();
}

uint64_t TpchRowCount(TpchTable t, double sf) {
  switch (t) {
    case TpchTable::kRegion: return 5;
    case TpchTable::kNation: return 25;
    case TpchTable::kSupplier: return static_cast<uint64_t>(10000 * sf);
    case TpchTable::kCustomer: return static_cast<uint64_t>(150000 * sf);
    case TpchTable::kPart: return static_cast<uint64_t>(200000 * sf);
    case TpchTable::kPartsupp: return static_cast<uint64_t>(800000 * sf);
    case TpchTable::kOrders: return static_cast<uint64_t>(1500000 * sf);
    case TpchTable::kLineitem:
      return static_cast<uint64_t>(1500000 * sf) * 4;  // approximate
  }
  return 0;
}

std::string GenerateTpchTable(TpchTable t, double sf, uint64_t seed) {
  Rng rng(seed ^ (static_cast<uint64_t>(t) << 32));
  std::string out;
  const Schema schema = TpchSchema(t);
  for (size_t i = 0; i < schema.num_fields(); ++i) {
    if (i > 0) out.push_back('|');
    out.append(schema.field(i).name);
  }
  out.push_back('\n');

  auto f = [&out]() { out.push_back('|'); };
  switch (t) {
    case TpchTable::kRegion:
      for (int64_t k = 0; k < 5; ++k) {
        out.append(std::to_string(k));
        f();
        out.append(kRegions[k]);
        f();
        AppendComment(&rng, 4, 12, &out);
        out.push_back('\n');
      }
      break;
    case TpchTable::kNation:
      for (int64_t k = 0; k < 25; ++k) {
        out.append(std::to_string(k));
        f();
        out.append(kNations[k]);
        f();
        out.append(std::to_string(k % 5));
        f();
        AppendComment(&rng, 4, 12, &out);
        out.push_back('\n');
      }
      break;
    case TpchTable::kSupplier: {
      const int64_t n = static_cast<int64_t>(TpchRowCount(t, sf));
      for (int64_t k = 1; k <= n; ++k) {
        const int64_t nation = rng.Range(0, 24);
        out.append(std::to_string(k));
        f();
        AppendKeyedName("Supplier", k, &out);
        f();
        AppendComment(&rng, 2, 4, &out);
        f();
        out.append(std::to_string(nation));
        f();
        AppendPhone(&rng, nation, &out);
        f();
        AppendMoney(rng.Real(-999.99, 9999.99), &out);
        f();
        AppendComment(&rng, 5, 12, &out);
        out.push_back('\n');
      }
      break;
    }
    case TpchTable::kCustomer: {
      const int64_t n = static_cast<int64_t>(TpchRowCount(t, sf));
      for (int64_t k = 1; k <= n; ++k) {
        const int64_t nation = rng.Range(0, 24);
        out.append(std::to_string(k));
        f();
        AppendKeyedName("Customer", k, &out);
        f();
        AppendComment(&rng, 2, 4, &out);
        f();
        out.append(std::to_string(nation));
        f();
        AppendPhone(&rng, nation, &out);
        f();
        AppendMoney(rng.Real(-999.99, 9999.99), &out);
        f();
        out.append(kSegments[rng.Next() % kSegments.size()]);
        f();
        AppendComment(&rng, 6, 16, &out);
        out.push_back('\n');
      }
      break;
    }
    case TpchTable::kPart: {
      const int64_t n = static_cast<int64_t>(TpchRowCount(t, sf));
      for (int64_t k = 1; k <= n; ++k) {
        out.append(std::to_string(k));
        f();
        AppendComment(&rng, 3, 5, &out);  // p_name: a few words
        f();
        const size_t m = rng.Next() % kMfgrs.size();
        out.append(kMfgrs[m]);
        f();
        out.append("Brand#");
        out.append(std::to_string(m + 1));
        out.append(std::to_string(rng.Range(1, 5)));
        f();
        out.append(kTypes1[rng.Next() % kTypes1.size()]);
        out.push_back(' ');
        out.append(kTypes2[rng.Next() % kTypes2.size()]);
        out.push_back(' ');
        out.append(kTypes3[rng.Next() % kTypes3.size()]);
        f();
        out.append(std::to_string(rng.Range(1, 50)));
        f();
        out.append(kContainers1[rng.Next() % kContainers1.size()]);
        out.push_back(' ');
        out.append(kContainers2[rng.Next() % kContainers2.size()]);
        f();
        AppendMoney(900.0 + static_cast<double>(k % 1000), &out);
        f();
        AppendComment(&rng, 2, 6, &out);
        out.push_back('\n');
      }
      break;
    }
    case TpchTable::kPartsupp: {
      const int64_t parts = static_cast<int64_t>(
          TpchRowCount(TpchTable::kPart, sf));
      const int64_t sups = std::max<int64_t>(
          1, static_cast<int64_t>(TpchRowCount(TpchTable::kSupplier, sf)));
      for (int64_t p = 1; p <= parts; ++p) {
        for (int64_t s = 0; s < 4; ++s) {
          out.append(std::to_string(p));
          f();
          out.append(std::to_string((p + s * (sups / 4 + 1)) % sups + 1));
          f();
          out.append(std::to_string(rng.Range(1, 9999)));
          f();
          AppendMoney(rng.Real(1.0, 1000.0), &out);
          f();
          AppendComment(&rng, 4, 10, &out);
          out.push_back('\n');
        }
      }
      break;
    }
    case TpchTable::kOrders: {
      const int64_t n = static_cast<int64_t>(TpchRowCount(t, sf));
      const int64_t customers = std::max<int64_t>(
          1, static_cast<int64_t>(TpchRowCount(TpchTable::kCustomer, sf)));
      for (int64_t i = 0; i < n; ++i) {
        // dbgen's sparse order keys: 8 consecutive, then a gap of 24.
        const int64_t key = (i / 8) * 32 + (i % 8) + 1;
        int64_t cust = rng.Range(1, customers);
        if (cust % 3 == 0) cust = (cust % customers) + 1;  // skip thirds
        const int64_t date = rng.Range(kStartDate, kEndDate - 151);
        out.append(std::to_string(key));
        f();
        out.append(std::to_string(cust));
        f();
        out.push_back("FOP"[rng.Next() % 3]);
        f();
        AppendMoney(rng.Real(800.0, 350000.0), &out);
        f();
        AppendDate(date, &out);
        f();
        out.append(kPriorities[rng.Next() % kPriorities.size()]);
        f();
        AppendKeyedName("Clerk", rng.Range(1, std::max<int64_t>(
                                                  1, static_cast<int64_t>(
                                                         1000 * sf))),
                        &out);
        f();
        out.push_back('0');
        f();
        AppendComment(&rng, 5, 16, &out);
        out.push_back('\n');
      }
      break;
    }
    case TpchTable::kLineitem: {
      const int64_t orders = static_cast<int64_t>(
          TpchRowCount(TpchTable::kOrders, sf));
      const int64_t parts = std::max<int64_t>(
          1, static_cast<int64_t>(TpchRowCount(TpchTable::kPart, sf)));
      const int64_t sups = std::max<int64_t>(
          1, static_cast<int64_t>(TpchRowCount(TpchTable::kSupplier, sf)));
      for (int64_t i = 0; i < orders; ++i) {
        const int64_t key = (i / 8) * 32 + (i % 8) + 1;
        const int64_t odate = rng.Range(kStartDate, kEndDate - 151);
        const int64_t lines = rng.Range(1, 7);
        for (int64_t l = 1; l <= lines; ++l) {
          const int64_t part = rng.Range(1, parts);
          const int64_t qty = rng.Range(1, 50);
          const int64_t ship = odate + rng.Range(1, 121);
          out.append(std::to_string(key));
          f();
          out.append(std::to_string(part));
          f();
          out.append(std::to_string((part + l * (sups / 4 + 1)) % sups + 1));
          f();
          out.append(std::to_string(l));
          f();
          out.append(std::to_string(qty));
          f();
          AppendMoney(static_cast<double>(qty) *
                          (900.0 + static_cast<double>(part % 1000)),
                      &out);
          f();
          AppendMoney(rng.Real(0.0, 0.10), &out);
          f();
          AppendMoney(rng.Real(0.0, 0.08), &out);
          f();
          out.push_back("ANR"[rng.Next() % 3]);
          f();
          out.push_back("OF"[rng.Next() % 2]);
          f();
          AppendDate(ship, &out);
          f();
          AppendDate(odate + rng.Range(30, 90), &out);
          f();
          AppendDate(ship + rng.Range(1, 30), &out);
          f();
          out.append(kInstructions[rng.Next() % kInstructions.size()]);
          f();
          out.append(kModes[rng.Next() % kModes.size()]);
          f();
          AppendComment(&rng, 2, 6, &out);
          out.push_back('\n');
        }
      }
      break;
    }
  }
  return out;
}

Status WriteTpchTable(TpchTable t, double sf, const std::string& path,
                      uint64_t seed) {
  const std::string data = GenerateTpchTable(t, sf, seed);
  std::FILE* file = std::fopen(path.c_str(), "wb");
  if (file == nullptr) return Status::IOError("cannot open '" + path + "'");
  const size_t written = std::fwrite(data.data(), 1, data.size(), file);
  std::fclose(file);
  if (written != data.size()) {
    return Status::IOError("short write to '" + path + "'");
  }
  return Status::OK();
}

}  // namespace tde
