#include "src/workload/tpch_queries.h"

#include "src/workload/tpch.h"

namespace tde {

const std::vector<TpchQuery>& TpchQueries() {
  static const std::vector<TpchQuery>* kQueries = new std::vector<TpchQuery>{
      {"Q1", "pricing summary report",
       "SELECT l_returnflag, l_linestatus, "
       "SUM(l_quantity) AS sum_qty, "
       "SUM(l_extendedprice) AS sum_base_price, "
       "SUM(l_extendedprice * (1 - l_discount)) AS sum_disc_price, "
       "AVG(l_quantity) AS avg_qty, AVG(l_extendedprice) AS avg_price, "
       "AVG(l_discount) AS avg_disc, COUNT(*) AS count_order "
       "FROM lineitem WHERE l_shipdate <= DATE '1998-09-02' "
       "GROUP BY l_returnflag, l_linestatus "
       "ORDER BY l_returnflag, l_linestatus"},
      {"Q3", "shipping priority (3-way join)",
       "SELECT l_orderkey, SUM(l_extendedprice * (1 - l_discount)) AS "
       "revenue, o_orderdate, o_shippriority "
       "FROM lineitem "
       "JOIN orders ON lineitem.l_orderkey = orders.o_orderkey "
       "JOIN customer ON orders.o_custkey = customer.c_custkey "
       "WHERE c_mktsegment = 'BUILDING' AND o_orderdate < DATE '1995-03-15' "
       "AND l_shipdate > DATE '1995-03-15' "
       "GROUP BY l_orderkey, o_orderdate, o_shippriority "
       "ORDER BY revenue DESC, o_orderdate LIMIT 10"},
      {"Q4lite", "order priority checking (no EXISTS subquery)",
       "SELECT o_orderpriority, COUNT(*) AS order_count FROM orders "
       "WHERE o_orderdate >= DATE '1993-07-01' AND "
       "o_orderdate < DATE '1993-10-01' "
       "GROUP BY o_orderpriority ORDER BY o_orderpriority"},
      {"Q6", "forecast revenue change",
       "SELECT SUM(l_extendedprice * l_discount) AS revenue FROM lineitem "
       "WHERE l_shipdate >= DATE '1994-01-01' AND "
       "l_shipdate < DATE '1995-01-01' AND "
       "l_discount BETWEEN 0.05 AND 0.07 AND l_quantity < 24"},
      {"Q12", "shipmode and order priority (join, IN, CASE)",
       "SELECT l_shipmode, "
       "SUM(CASE WHEN o_orderpriority = '1-URGENT' OR "
       "o_orderpriority = '2-HIGH' THEN 1 ELSE 0 END) AS high_line_count, "
       "SUM(CASE WHEN o_orderpriority <> '1-URGENT' AND "
       "o_orderpriority <> '2-HIGH' THEN 1 ELSE 0 END) AS low_line_count "
       "FROM lineitem JOIN orders ON lineitem.l_orderkey = orders.o_orderkey "
       "WHERE l_shipmode IN ('MAIL', 'SHIP') "
       "AND l_receiptdate >= DATE '1994-01-01' "
       "AND l_receiptdate < DATE '1995-01-01' "
       "GROUP BY l_shipmode ORDER BY l_shipmode"},
  };
  return *kQueries;
}

Status LoadTpchTables(Engine* engine, double sf) {
  ImportOptions opts;
  opts.text.field_separator = '|';
  for (TpchTable t : {TpchTable::kLineitem, TpchTable::kOrders,
                      TpchTable::kCustomer}) {
    TDE_ASSIGN_OR_RETURN(auto unused,
                         engine->ImportTextBuffer(GenerateTpchTable(t, sf),
                                                  TpchTableName(t), opts));
    (void)unused;
  }
  return Status::OK();
}

}  // namespace tde
