#ifndef TDE_WORKLOAD_RLE_DATA_H_
#define TDE_WORKLOAD_RLE_DATA_H_

#include <cstdint>
#include <memory>

#include "src/storage/table.h"

namespace tde {

/// The artificial run-length data set of Sect. 5.3: two columns "primary"
/// and "secondary" of uniformly distributed values in [0, 100), with the
/// table sorted ascending on (primary, secondary) — so both columns
/// run-length encode, primary with runs of ~rows/100 and secondary with
/// runs of ~rows/10000. The paper used 1M- and 1B-row instances; we scale
/// the large one down (see DESIGN.md) because the crossover depends on the
/// secondary run length relative to the block size, not on absolute rows.
///
/// The returned table also carries an "other" value usable as the
/// non-filtered aggregation input (the paper aggregates whichever of the
/// two columns it is not filtering).
Result<std::shared_ptr<Table>> MakeRleTable(uint64_t rows,
                                            uint64_t seed = 51094);

}  // namespace tde

#endif  // TDE_WORKLOAD_RLE_DATA_H_
