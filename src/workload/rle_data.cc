#include "src/workload/rle_data.h"

#include <algorithm>
#include <array>

#include "src/exec/flow_table.h"

namespace tde {

namespace {

/// Streams the sorted (primary, secondary) rows without materializing the
/// unsorted input: uniform sampling into 100x100 cell counts, then emission
/// in cell order — equivalent to generating and sorting.
class RleRowSource : public Operator {
 public:
  RleRowSource(uint64_t rows, uint64_t seed) {
    schema_.AddField({"primary", TypeId::kInteger});
    schema_.AddField({"secondary", TypeId::kInteger});
    counts_.fill(0);
    uint64_t s = seed;
    for (uint64_t i = 0; i < rows; ++i) {
      s += 0x9e3779b97f4a7c15ULL;
      uint64_t z = s;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      z ^= z >> 31;
      ++counts_[z % 10000];
    }
  }

  Status Open() override {
    cell_ = 0;
    emitted_in_cell_ = 0;
    return Status::OK();
  }

  Status Next(Block* block, bool* eos) override {
    block->columns.assign(2, ColumnVector{});
    block->columns[0].type = TypeId::kInteger;
    block->columns[1].type = TypeId::kInteger;
    while (cell_ < counts_.size() && counts_[cell_] == emitted_in_cell_) {
      ++cell_;
      emitted_in_cell_ = 0;
    }
    if (cell_ >= counts_.size()) {
      *eos = true;
      return Status::OK();
    }
    auto& p = block->columns[0].lanes;
    auto& q = block->columns[1].lanes;
    while (p.size() < kBlockSize && cell_ < counts_.size()) {
      if (emitted_in_cell_ == counts_[cell_]) {
        ++cell_;
        emitted_in_cell_ = 0;
        continue;
      }
      p.push_back(static_cast<Lane>(cell_ / 100));
      q.push_back(static_cast<Lane>(cell_ % 100));
      ++emitted_in_cell_;
    }
    *eos = false;
    return Status::OK();
  }

  const Schema& output_schema() const override { return schema_; }

 private:
  Schema schema_;
  std::array<uint64_t, 10000> counts_;
  size_t cell_ = 0;
  uint64_t emitted_in_cell_ = 0;
};

}  // namespace

Result<std::shared_ptr<Table>> MakeRleTable(uint64_t rows, uint64_t seed) {
  FlowTableOptions opts;
  opts.table_name = "rle_" + std::to_string(rows);
  return FlowTable::Build(std::make_unique<RleRowSource>(rows, seed), opts);
}

}  // namespace tde
