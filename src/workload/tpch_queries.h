#ifndef TDE_WORKLOAD_TPCH_QUERIES_H_
#define TDE_WORKLOAD_TPCH_QUERIES_H_

#include <string>
#include <vector>

#include "src/core/engine.h"

namespace tde {

/// A TPC-H query adapted to the engine's SQL subset (single fact table
/// with many-to-one joins — the shape Tableau itself generates).
struct TpchQuery {
  const char* id;       // "Q1", "Q3", ...
  const char* title;
  std::string sql;
};

/// The TPC-H queries expressible in the engine's analytic subset:
/// Q1 (pricing summary), Q3 (shipping priority, 3-way join), Q4-lite
/// (order priority counts), Q6 (forecast revenue change), Q12 (shipmode
/// priority, join + OR predicate).
const std::vector<TpchQuery>& TpchQueries();

/// Imports the TPC-H tables a query set needs (lineitem, orders, customer)
/// at the given scale factor into `engine`.
Status LoadTpchTables(Engine* engine, double scale_factor);

}  // namespace tde

#endif  // TDE_WORKLOAD_TPCH_QUERIES_H_
