#ifndef TDE_WORKLOAD_FLIGHTS_H_
#define TDE_WORKLOAD_FLIGHTS_H_

#include <cstdint>
#include <string>

#include "src/common/status.h"
#include "src/storage/schema.h"

namespace tde {

/// Synthetic substitute for the paper's proprietary 67M-row FAA on-time
/// "Flights" database (Sect. 5.2). The property the paper leans on is that
/// Flights — unlike lineitem — has *no* large random string column: every
/// string column has a small domain (carriers, airports), which is typical
/// of the data sets customers actually analyse. The generator reproduces
/// exactly that shape: ten years of sorted dates, ~20 carriers, ~300
/// airports, small-range delay/taxi integers, a boolean.
Schema FlightsSchema();

/// Generates `rows` flight records as comma-separated text with a header,
/// dates ascending (the natural arrival order of an on-time database).
std::string GenerateFlights(uint64_t rows, uint64_t seed = 20140622);

Status WriteFlights(uint64_t rows, const std::string& path,
                    uint64_t seed = 20140622);

}  // namespace tde

#endif  // TDE_WORKLOAD_FLIGHTS_H_
