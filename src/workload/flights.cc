#include "src/workload/flights.h"

#include <array>
#include <cstdio>

#include "src/common/types.h"

namespace tde {

namespace {

constexpr std::array<const char*, 20> kCarriers = {
    "AA", "AS", "B6", "CO", "DL", "EV", "F9", "FL", "HA", "MQ",
    "NW", "OH", "OO", "TZ", "UA", "US", "WN", "XE", "YV", "9E"};

std::string Airport(uint64_t i) {
  // 300 synthetic three-letter codes.
  std::string s(3, 'A');
  s[0] = static_cast<char>('A' + (i / 100) % 26);
  s[1] = static_cast<char>('A' + (i / 10) % 10 + 3);
  s[2] = static_cast<char>('A' + i % 10 + 7);
  return s;
}

uint64_t Splitmix(uint64_t* s) {
  *s += 0x9e3779b97f4a7c15ULL;
  uint64_t z = *s;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

}  // namespace

Schema FlightsSchema() {
  using T = TypeId;
  return Schema({{"flight_date", T::kDate},
                 {"carrier", T::kString},
                 {"flight_num", T::kInteger},
                 {"origin", T::kString},
                 {"dest", T::kString},
                 {"crs_dep_time", T::kInteger},
                 {"dep_delay", T::kInteger},
                 {"arr_delay", T::kInteger},
                 {"distance", T::kInteger},
                 {"cancelled", T::kBool},
                 {"taxi_in", T::kInteger},
                 {"taxi_out", T::kInteger}});
}

std::string GenerateFlights(uint64_t rows, uint64_t seed) {
  std::string out;
  const Schema schema = FlightsSchema();
  for (size_t i = 0; i < schema.num_fields(); ++i) {
    if (i > 0) out.push_back(',');
    out.append(schema.field(i).name);
  }
  out.push_back('\n');

  const int64_t start = DaysFromCivil(1998, 1, 1);
  const int64_t days = 3652;  // ten years
  uint64_t s = seed;
  // Flights per day so dates ascend across the file.
  const uint64_t per_day = std::max<uint64_t>(1, rows / static_cast<uint64_t>(days));
  uint64_t emitted = 0;
  for (int64_t d = 0; d < days && emitted < rows; ++d) {
    const uint64_t today =
        d + 1 == days ? rows - emitted : std::min(per_day, rows - emitted);
    for (uint64_t i = 0; i < today; ++i, ++emitted) {
      const uint64_t r = Splitmix(&s);
      const uint64_t origin = r % 300;
      uint64_t dest = (r >> 16) % 300;
      if (dest == origin) dest = (dest + 1) % 300;
      const int64_t dep_delay =
          static_cast<int64_t>((r >> 24) % 90) - 15;  // [-15, 74]
      const int64_t arr_delay = dep_delay + static_cast<int64_t>((r >> 32) % 31) - 15;
      const bool cancelled = (r % 997) == 0;
      char buf[160];
      std::snprintf(
          buf, sizeof(buf), "%s,%s,%lld,%s,%s,%lld,%lld,%lld,%lld,%s,%lld,%lld\n",
          FormatLane(TypeId::kDate, start + d).c_str(),
          kCarriers[(r >> 8) % kCarriers.size()],
          static_cast<long long>(r % 7000 + 1), Airport(origin).c_str(),
          Airport(dest).c_str(),
          static_cast<long long>((r >> 40) % 24 * 100 + (r >> 48) % 60),
          static_cast<long long>(dep_delay),
          static_cast<long long>(arr_delay),
          static_cast<long long>((origin * 37 + dest * 59) % 2500 + 100),
          cancelled ? "true" : "false",
          static_cast<long long>((r >> 52) % 30 + 1),
          static_cast<long long>((r >> 56) % 40 + 5));
      out.append(buf);
    }
  }
  return out;
}

Status WriteFlights(uint64_t rows, const std::string& path, uint64_t seed) {
  const std::string data = GenerateFlights(rows, seed);
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return Status::IOError("cannot open '" + path + "'");
  const size_t written = std::fwrite(data.data(), 1, data.size(), f);
  std::fclose(f);
  if (written != data.size()) {
    return Status::IOError("short write to '" + path + "'");
  }
  return Status::OK();
}

}  // namespace tde
