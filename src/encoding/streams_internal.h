#ifndef TDE_ENCODING_STREAMS_INTERNAL_H_
#define TDE_ENCODING_STREAMS_INTERNAL_H_

#include <vector>

#include "src/encoding/stream.h"

namespace tde {
namespace internal {

/// Bit 0 of the reserved header byte: sign-extend values narrower than 8
/// bytes on load. A storage detail, not type knowledge: encodings remain
/// semantically neutral, they just need a lossless load.
inline constexpr uint8_t kSignExtendFlag = 1;

inline bool SignExtendOf(const ConstHeaderView& h) {
  return (h.GetU64(16) >> 56) & kSignExtendFlag;  // byte 23
}

/// Sizes the buffer to `data_offset` and writes the common 24-byte prefix.
inline void InitHeader(std::vector<uint8_t>* buf, EncodingType type,
                       uint8_t width, uint8_t bits, bool sign_extend,
                       uint64_t data_offset) {
  buf->assign(data_offset, 0);
  HeaderView h(buf);
  h.set_logical_size(0);
  h.set_data_offset(data_offset);
  h.set_block_size(kBlockSize);
  h.set_algorithm(type);
  h.set_width(width);
  h.set_bits(bits);
  if (sign_extend) (*buf)[23] = kSignExtendFlag;
}

/// Loads a `width`-byte value honoring the stream's sign-extension flag.
inline Lane LoadLane(const uint8_t* p, uint8_t width, bool sign_extend) {
  return sign_extend ? LoadSigned(p, width)
                     : static_cast<Lane>(LoadUnsigned(p, width));
}

/// True if `v` can be stored in `width` bytes under the given signedness.
inline bool LaneFits(Lane v, uint8_t width, bool sign_extend) {
  return sign_extend ? FitsSigned(v, width)
                     : FitsUnsigned(static_cast<uint64_t>(v), width);
}

/// Uncompressed: raw little-endian `width`-byte values, bits == 8 * width.
class UncompressedStream : public BlockedStream {
 public:
  static std::unique_ptr<UncompressedStream> Make(uint8_t width,
                                                  bool sign_extend);
  static std::unique_ptr<UncompressedStream> FromBuffer(
      std::vector<uint8_t> buf);

 protected:
  size_t BlockBytes() const override;
  Status CheckAppend(const Lane* values, size_t count) const override;
  void PackBlock(const Lane* values) override;
  void DecodeBlock(uint64_t block_idx, Lane* out) const override;
};

/// Frame-of-reference (Sect. 3.1.1): header holds an 8-byte frame value;
/// packed values are added to it.
class ForStream : public BlockedStream {
 public:
  static constexpr uint64_t kFrameOffset = 24;
  static std::unique_ptr<ForStream> Make(uint8_t width, int64_t frame,
                                         uint8_t bits);
  static std::unique_ptr<ForStream> FromBuffer(std::vector<uint8_t> buf);

  int64_t frame() const { return header().GetI64(kFrameOffset); }

 protected:
  size_t BlockBytes() const override;
  Status CheckAppend(const Lane* values, size_t count) const override;
  void PackBlock(const Lane* values) override;
  void DecodeBlock(uint64_t block_idx, Lane* out) const override;
};

/// Delta (Sect. 3.1.2): header holds the 8-byte minimum delta; each block
/// starts with an 8-byte running total (the block's first value) so the
/// stream supports random as well as sequential access.
class DeltaStream : public BlockedStream {
 public:
  static constexpr uint64_t kMinDeltaOffset = 24;
  static std::unique_ptr<DeltaStream> Make(uint8_t width, int64_t min_delta,
                                           uint8_t bits);
  static std::unique_ptr<DeltaStream> FromBuffer(std::vector<uint8_t> buf);

  int64_t min_delta() const { return header().GetI64(kMinDeltaOffset); }

 protected:
  size_t BlockBytes() const override;
  Status CheckAppend(const Lane* values, size_t count) const override;
  void PackBlock(const Lane* values) override;
  void DecodeBlock(uint64_t block_idx, Lane* out) const override;
  void OnCommit(const Lane* values, size_t count) override;

 private:
  bool have_last_ = false;
  Lane last_ = 0;
};

/// Dictionary (Sect. 3.1.3): header holds the entry count followed by space
/// for 2^bits entries of `width` bytes, so the dictionary can grow in place
/// up to the limit; packed values are indexes. The value->index map is a
/// cuckoo hash (kept small because entries are capped at 2^15).
class DictStream : public BlockedStream {
 public:
  static constexpr uint64_t kEntryCountOffset = 24;
  static constexpr uint64_t kEntriesOffset = 32;

  static std::unique_ptr<DictStream> Make(uint8_t width, bool sign_extend,
                                          uint8_t bits);
  static std::unique_ptr<DictStream> FromBuffer(std::vector<uint8_t> buf);

  uint64_t entry_count() const { return header().GetU64(kEntryCountOffset); }
  /// Dictionary entry `idx` as a lane.
  Lane Entry(uint64_t idx) const;
  /// All entries, in index order.
  std::vector<Lane> Entries() const;

  /// Compressed-domain reads: codes are the packed indexes themselves, so
  /// this skips the per-row entry decode of Get().
  bool GetCodes(uint64_t row, size_t count, Lane* out) const override;
  std::vector<Lane> CodeEntries() const override { return Entries(); }

 protected:
  size_t BlockBytes() const override;
  Status CheckAppend(const Lane* values, size_t count) const override;
  void PackBlock(const Lane* values) override;
  void DecodeBlock(uint64_t block_idx, Lane* out) const override;
  void OnCommit(const Lane* values, size_t count) override;

 private:
  /// Cuckoo hash value->index; two buckets per key, relocation on insert.
  struct Cuckoo {
    std::vector<Lane> keys;
    std::vector<uint32_t> vals;
    std::vector<uint8_t> used;
    uint64_t mask = 0;
    void Init(uint64_t capacity_pow2);
    uint32_t Find(Lane key) const;  // UINT32_MAX if absent
    void Insert(Lane key, uint32_t val);
    void Grow();
  };

  void RebuildMap();
  uint32_t Lookup(Lane v) const { return map_.Find(v); }

  Cuckoo map_;
};

/// Affine (Sect. 3.1.4): value = base + row * delta; zero packed bits.
class AffineStream : public BlockedStream {
 public:
  static constexpr uint64_t kBaseOffset = 24;
  static constexpr uint64_t kDeltaOffset = 32;

  static std::unique_ptr<AffineStream> Make(uint8_t width, int64_t base,
                                            int64_t delta);
  static std::unique_ptr<AffineStream> FromBuffer(std::vector<uint8_t> buf);

  int64_t base() const { return header().GetI64(kBaseOffset); }
  int64_t delta() const { return header().GetI64(kDeltaOffset); }

 protected:
  size_t BlockBytes() const override { return 0; }
  Status CheckAppend(const Lane* values, size_t count) const override;
  void PackBlock(const Lane* values) override;
  void DecodeBlock(uint64_t block_idx, Lane* out) const override;
};

/// Run-length (Sect. 3.1.5): its own format — the common prefix plus two
/// field-width bytes, then length/value pairs. Backwards seeks degrade to a
/// sequential scan from the start of the stream, which is why the strategic
/// optimizer keeps RLE off hash-join inner sides (Sect. 4.3).
class RleStream : public EncodedStream {
 public:
  static constexpr uint64_t kCountWidthOffset = 24;
  static constexpr uint64_t kValueWidthOffset = 25;
  static constexpr uint64_t kPairsOffset = 32;

  static std::unique_ptr<RleStream> Make(uint8_t width, bool sign_extend,
                                         uint8_t count_width,
                                         uint8_t value_width);
  static std::unique_ptr<RleStream> FromBuffer(std::vector<uint8_t> buf);

  Status Append(const Lane* values, size_t count) override;
  /// Appends a whole run in O(1) (used by RLE rebuild, Sect. 3.4.1).
  Status AppendRun(Lane value, uint64_t count);
  Status Finalize() override;
  Status Get(uint64_t row, size_t count, Lane* out) const override;
  Status GetRuns(std::vector<RleRun>* out) const override;
  uint64_t size() const override { return total_; }

  uint8_t count_width() const { return buf_[kCountWidthOffset]; }
  uint8_t value_width() const { return buf_[kValueWidthOffset]; }
  uint64_t run_count() const;

 private:
  void EmitRun();
  Lane RunValue(uint64_t pair_idx) const;
  uint64_t RunCount(uint64_t pair_idx) const;

  uint64_t total_ = 0;
  bool in_run_ = false;
  Lane cur_value_ = 0;
  uint64_t cur_count_ = 0;
  bool finalized_stream_ = false;
  // Sequential-access cursor (Sect. 4.3): remembers the last decoded
  // position; a backwards seek resets it to the start.
  mutable uint64_t cursor_pair_ = 0;
  mutable uint64_t cursor_row_ = 0;
};

}  // namespace internal
}  // namespace tde

#endif  // TDE_ENCODING_STREAMS_INTERNAL_H_
