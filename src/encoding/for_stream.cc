#include <memory>

#include "src/encoding/bitpack.h"
#include "src/encoding/streams_internal.h"

namespace tde {
namespace internal {

std::unique_ptr<ForStream> ForStream::Make(uint8_t width, int64_t frame,
                                           uint8_t bits) {
  auto s = std::unique_ptr<ForStream>(new ForStream());
  InitHeader(s->mutable_buffer(), EncodingType::kFrameOfReference, width, bits,
             /*sign_extend=*/false, kFrameOffset + 8);
  HeaderView(s->mutable_buffer()).SetI64(kFrameOffset, frame);
  return s;
}

std::unique_ptr<ForStream> ForStream::FromBuffer(std::vector<uint8_t> buf) {
  auto s = std::unique_ptr<ForStream>(new ForStream());
  *s->mutable_buffer() = std::move(buf);
  s->finalized_ = s->header().logical_size();
  s->finalized_stream_ = true;
  return s;
}

size_t ForStream::BlockBytes() const {
  return PackedBytes(kBlockSize, bits());
}

Status ForStream::CheckAppend(const Lane* values, size_t count) const {
  const int64_t f = frame();
  const uint8_t b = bits();
  for (size_t i = 0; i < count; ++i) {
    // Packed value = v - frame, which must be in [0, 2^bits).
    if (values[i] < f) return Status::OutOfRange("value below frame");
    const uint64_t packed =
        static_cast<uint64_t>(values[i]) - static_cast<uint64_t>(f);
    if (b < 64 && packed >= (uint64_t{1} << b)) {
      return Status::OutOfRange("value exceeds frame range");
    }
  }
  return Status::OK();
}

void ForStream::PackBlock(const Lane* values) {
  const int64_t f = frame();
  uint64_t packed[kBlockSize];
  for (uint32_t i = 0; i < kBlockSize; ++i) {
    packed[i] = static_cast<uint64_t>(values[i]) - static_cast<uint64_t>(f);
  }
  const size_t old = buf_.size();
  buf_.resize(old + BlockBytes());
  PackBits(packed, kBlockSize, bits(), buf_.data() + old);
}

void ForStream::DecodeBlock(uint64_t block_idx, Lane* out) const {
  const int64_t f = frame();
  uint64_t packed[kBlockSize];
  UnpackBits(BlockData(block_idx), kBlockSize, bits(), packed);
  for (uint32_t i = 0; i < kBlockSize; ++i) {
    out[i] = static_cast<Lane>(static_cast<uint64_t>(f) + packed[i]);
  }
}

}  // namespace internal
}  // namespace tde
