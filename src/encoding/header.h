#ifndef TDE_ENCODING_HEADER_H_
#define TDE_ENCODING_HEADER_H_

#include <cstdint>
#include <vector>

#include "src/common/bitutil.h"

namespace tde {

/// The lightweight encodings of Sect. 3.1, plus the segmented container.
enum class EncodingType : uint8_t {
  kUncompressed = 0,
  kFrameOfReference = 1,
  kDelta = 2,
  kDictionary = 3,
  kAffine = 4,
  kRunLength = 5,
  /// A column stored as an ordered list of independently-encoded segments
  /// (SegmentedStream). Never a serialized stream-blob algorithm: segment
  /// payloads are one of the five physical encodings above. This value
  /// appears only in synthetic headers and in the format-v3 directory as
  /// the "mixed encodings" representative.
  kSegmented = 6,
};

const char* EncodingName(EncodingType t);

/// Serialized bit-packed stream header, byte-exact per Fig. 1 of the paper:
///
///   [0,  8)  logical size — number of values in the stream (the physical
///            size can be larger because streams only contain complete
///            decompression blocks)
///   [8, 16)  offset from buffer start to the bit-packed data; lets the
///            header grow/shrink without disturbing the packing
///   [16, 20) decompression block size (values per block, multiple of 32)
///   [20]     encoding algorithm
///   [21]     element width in bytes (1, 2, 4 or 8)
///   [22]     number of packing bits
///   [23]     reserved
///   [24, ..) encoding-specific fields:
///     frame-of-reference: [24,32) frame value (8 bytes even if narrower)
///     delta:              [24,32) minimum delta value
///     dictionary:         [24,32) entry count, then width * 2^bits bytes
///                         of entry space (the dictionary may grow in place
///                         up to the 2^bits limit)
///     affine:             [24,32) base, [32,40) delta; bits == 0
///     run-length:         [24] run-count field width, [25] value field
///                         width; the "packed data" is length/value pairs
///
/// The layout is deliberately editable in place: the O(1) type-narrowing
/// and dictionary manipulations of Sect. 3.4 are literal byte edits here.
class HeaderView {
 public:
  explicit HeaderView(std::vector<uint8_t>* buf) : buf_(buf) {}

  static constexpr uint64_t kLogicalSizeOffset = 0;
  static constexpr uint64_t kDataOffsetOffset = 8;
  static constexpr uint64_t kBlockSizeOffset = 16;
  static constexpr uint64_t kAlgorithmOffset = 20;
  static constexpr uint64_t kWidthOffset = 21;
  static constexpr uint64_t kBitsOffset = 22;
  static constexpr uint64_t kExtraOffset = 24;  // encoding-specific fields

  uint64_t logical_size() const { return GetU64(kLogicalSizeOffset); }
  void set_logical_size(uint64_t v) { SetU64(kLogicalSizeOffset, v); }

  uint64_t data_offset() const { return GetU64(kDataOffsetOffset); }
  void set_data_offset(uint64_t v) { SetU64(kDataOffsetOffset, v); }

  uint32_t block_size() const {
    return static_cast<uint32_t>(LoadUnsigned(data() + kBlockSizeOffset, 4));
  }
  void set_block_size(uint32_t v) { StoreBytes(mdata() + kBlockSizeOffset, v, 4); }

  EncodingType algorithm() const {
    return static_cast<EncodingType>((*buf_)[kAlgorithmOffset]);
  }
  void set_algorithm(EncodingType t) {
    (*buf_)[kAlgorithmOffset] = static_cast<uint8_t>(t);
  }

  uint8_t width() const { return (*buf_)[kWidthOffset]; }
  void set_width(uint8_t w) { (*buf_)[kWidthOffset] = w; }

  uint8_t bits() const { return (*buf_)[kBitsOffset]; }
  void set_bits(uint8_t b) { (*buf_)[kBitsOffset] = b; }

  int64_t GetI64(uint64_t offset) const {
    return LoadSigned(data() + offset, 8);
  }
  uint64_t GetU64(uint64_t offset) const {
    return LoadUnsigned(data() + offset, 8);
  }
  void SetU64(uint64_t offset, uint64_t v) {
    StoreBytes(mdata() + offset, v, 8);
  }
  void SetI64(uint64_t offset, int64_t v) {
    StoreBytes(mdata() + offset, static_cast<uint64_t>(v), 8);
  }

  const uint8_t* data() const { return buf_->data(); }
  uint8_t* mdata() { return buf_->data(); }

 private:
  std::vector<uint8_t>* buf_;
};

/// Read-only view over a const buffer (same layout as HeaderView).
class ConstHeaderView {
 public:
  explicit ConstHeaderView(const std::vector<uint8_t>& buf) : buf_(&buf) {}

  uint64_t logical_size() const {
    return LoadUnsigned(buf_->data() + HeaderView::kLogicalSizeOffset, 8);
  }
  uint64_t data_offset() const {
    return LoadUnsigned(buf_->data() + HeaderView::kDataOffsetOffset, 8);
  }
  uint32_t block_size() const {
    return static_cast<uint32_t>(
        LoadUnsigned(buf_->data() + HeaderView::kBlockSizeOffset, 4));
  }
  EncodingType algorithm() const {
    return static_cast<EncodingType>((*buf_)[HeaderView::kAlgorithmOffset]);
  }
  uint8_t width() const { return (*buf_)[HeaderView::kWidthOffset]; }
  uint8_t bits() const { return (*buf_)[HeaderView::kBitsOffset]; }
  int64_t GetI64(uint64_t offset) const {
    return LoadSigned(buf_->data() + offset, 8);
  }
  uint64_t GetU64(uint64_t offset) const {
    return LoadUnsigned(buf_->data() + offset, 8);
  }

 private:
  const std::vector<uint8_t>* buf_;
};

}  // namespace tde

#endif  // TDE_ENCODING_HEADER_H_
