#ifndef TDE_ENCODING_DYNAMIC_ENCODER_H_
#define TDE_ENCODING_DYNAMIC_ENCODER_H_

#include <memory>

#include "src/encoding/stream.h"

namespace tde {

/// Options controlling a dynamic encoder.
struct DynamicEncoderOptions {
  /// With encoding disabled, values pass straight into an uncompressed
  /// stream and no statistics are gathered (the paper's "encoding off"
  /// baseline configuration).
  bool enable_encodings = true;
  /// Bitmask of admissible encodings (EncodingMask). The strategic
  /// optimizer passes kAllowRandomAccess for hash-join inner sides.
  uint32_t allowed = kAllowAll;
  /// Extra packing bits beyond what the observed data requires, so modest
  /// drift does not immediately force a re-encode.
  uint8_t headroom_bits = 2;
  /// Convert to the optimal encoding at Finalize if the current one is not
  /// (Sect. 3.2: "compare the current encoding with the optimal one and
  /// convert to this optimal format if desired").
  bool convert_to_optimal = true;
  /// Element width and signedness of the stream.
  uint8_t width = 8;
  bool sign_extend = true;
  /// Prefer dictionary encoding whenever it compresses at all, even if a
  /// pure size ranking would pick frame-of-reference or delta. Used for
  /// string token streams (Sect. 6.3: heap tokens "typically end up being
  /// dictionary encoded if the domain is small"), because the dictionary's
  /// entry list is what makes cheap heap sorting and invisible-join
  /// reasoning possible. Affine still wins when it applies — it is the
  /// paper's own c_name example.
  bool prefer_dictionary = false;
};

/// The finished product of dynamically encoding one column.
struct EncodedColumn {
  std::unique_ptr<EncodedStream> stream;
  EncodingStats stats;
  /// Number of times the encoder had to re-encode mid-stream (the paper
  /// reports 2 for TPC-H SF-1 lineitem).
  int encoding_changes = 0;
  /// Total bytes written including rewrites — comparable against the
  /// unencoded column size to verify rewrites still save I/O.
  uint64_t bytes_written = 0;
};

/// Dynamic encoding (Sect. 3.2): statistics are tracked continually as
/// values are inserted; each block updates the stats *before* being
/// appended, so whenever an append fails (representation limits, full
/// dictionary) the encoder can consult the stats, pick the new best
/// encoding and rewrite the stream. At Finalize the current encoding is
/// compared against the optimal one and converted if requested.
class DynamicEncoder {
 public:
  explicit DynamicEncoder(DynamicEncoderOptions options);

  DynamicEncoder(const DynamicEncoder&) = delete;
  DynamicEncoder& operator=(const DynamicEncoder&) = delete;

  /// Appends one block of lanes.
  Status Append(const Lane* values, size_t count);

  /// Finalizes (optionally converting to the optimal encoding) and
  /// releases the encoded column.
  Result<EncodedColumn> Finalize();

  const EncodingStats& stats() const { return stats_; }
  int encoding_changes() const { return changes_; }
  /// Current encoding choice (for tests and progress reporting).
  EncodingType current_encoding() const;

 private:
  EncodingType Choose() const;
  Status Reencode(EncodingType next, const Lane* more, size_t more_count);

  DynamicEncoderOptions options_;
  EncodingStats stats_;
  std::unique_ptr<EncodedStream> stream_;
  int changes_ = 0;
  uint64_t bytes_written_ = 0;
};

}  // namespace tde

#endif  // TDE_ENCODING_DYNAMIC_ENCODER_H_
