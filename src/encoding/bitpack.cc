#include "src/encoding/bitpack.h"

#include <cstring>

namespace tde {

void PackBits(const uint64_t* values, size_t n, uint8_t bits, uint8_t* out) {
  if (bits == 0) return;
  if (bits == 64) {
    std::memcpy(out, values, n * 8);
    return;
  }
  std::memset(out, 0, PackedBytes(n, bits));
  const uint64_t mask = (uint64_t{1} << bits) - 1;
  size_t bit_pos = 0;
  for (size_t i = 0; i < n; ++i) {
    uint64_t v = values[i] & mask;
    size_t byte = bit_pos >> 3;
    const unsigned shift = bit_pos & 7;
    // Write up to 9 bytes; the value occupies bits [shift, shift + bits).
    out[byte] |= static_cast<uint8_t>(v << shift);
    unsigned written = 8 - shift;
    v >>= written;
    while (written < bits) {
      ++byte;
      out[byte] |= static_cast<uint8_t>(v);
      v >>= 8;
      written += 8;
    }
    bit_pos += bits;
  }
}

void UnpackBits(const uint8_t* in, size_t n, uint8_t bits, uint64_t* out) {
  if (bits == 0) {
    std::memset(out, 0, n * 8);
    return;
  }
  if (bits == 64) {
    std::memcpy(out, in, n * 8);
    return;
  }
  const uint64_t mask = (uint64_t{1} << bits) - 1;
  size_t bit_pos = 0;
  for (size_t i = 0; i < n; ++i) {
    size_t byte = bit_pos >> 3;
    const unsigned shift = bit_pos & 7;
    uint64_t v = static_cast<uint64_t>(in[byte]) >> shift;
    unsigned have = 8 - shift;
    while (have < bits) {
      ++byte;
      v |= static_cast<uint64_t>(in[byte]) << have;
      have += 8;
    }
    out[i] = v & mask;
    bit_pos += bits;
  }
}

}  // namespace tde
