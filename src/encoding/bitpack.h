#ifndef TDE_ENCODING_BITPACK_H_
#define TDE_ENCODING_BITPACK_H_

#include <cstddef>
#include <cstdint>

namespace tde {

/// Number of bytes occupied by n values of `bits` bits each.
inline size_t PackedBytes(size_t n, uint8_t bits) {
  return (n * static_cast<size_t>(bits) + 7) / 8;
}

/// Packs n unsigned values of `bits` significant bits each into `out`,
/// little-endian bit order. `out` must have PackedBytes(n, bits) writable
/// bytes, zeroed or about to be fully overwritten. bits may be 0 (no-op) up
/// to 64.
void PackBits(const uint64_t* values, size_t n, uint8_t bits, uint8_t* out);

/// Inverse of PackBits.
void UnpackBits(const uint8_t* in, size_t n, uint8_t bits, uint64_t* out);

}  // namespace tde

#endif  // TDE_ENCODING_BITPACK_H_
