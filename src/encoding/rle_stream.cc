#include <algorithm>
#include <memory>

#include "src/encoding/streams_internal.h"

namespace tde {
namespace internal {

std::unique_ptr<RleStream> RleStream::Make(uint8_t width, bool sign_extend,
                                           uint8_t count_width,
                                           uint8_t value_width) {
  auto s = std::unique_ptr<RleStream>(new RleStream());
  InitHeader(s->mutable_buffer(), EncodingType::kRunLength, width, /*bits=*/0,
             sign_extend, kPairsOffset);
  (*s->mutable_buffer())[kCountWidthOffset] = count_width;
  (*s->mutable_buffer())[kValueWidthOffset] = value_width;
  return s;
}

std::unique_ptr<RleStream> RleStream::FromBuffer(std::vector<uint8_t> buf) {
  auto s = std::unique_ptr<RleStream>(new RleStream());
  *s->mutable_buffer() = std::move(buf);
  s->total_ = s->header().logical_size();
  s->finalized_stream_ = true;
  return s;
}

uint64_t RleStream::run_count() const {
  const uint64_t pair_bytes = count_width() + value_width();
  const uint64_t stored =
      (buf_.size() - header().data_offset()) / pair_bytes;
  return stored + (in_run_ ? 1 : 0);
}

Lane RleStream::RunValue(uint64_t pair_idx) const {
  const uint64_t pair_bytes = count_width() + value_width();
  const uint8_t* p =
      buf_.data() + header().data_offset() + pair_idx * pair_bytes;
  // Value follows the count within the pair; values honor signedness.
  return LoadLane(p + count_width(), value_width(), SignExtendOf(header()));
}

uint64_t RleStream::RunCount(uint64_t pair_idx) const {
  const uint64_t pair_bytes = count_width() + value_width();
  const uint8_t* p =
      buf_.data() + header().data_offset() + pair_idx * pair_bytes;
  return LoadUnsigned(p, count_width());
}

void RleStream::EmitRun() {
  const uint8_t cw = count_width();
  const uint8_t vw = value_width();
  const size_t old = buf_.size();
  buf_.resize(old + cw + vw);
  StoreBytes(buf_.data() + old, cur_count_, cw);
  StoreBytes(buf_.data() + old + cw, static_cast<uint64_t>(cur_value_), vw);
  in_run_ = false;
  cur_count_ = 0;
}

Status RleStream::Append(const Lane* values, size_t count) {
  if (finalized_stream_) {
    return Status::Internal("append to a finalized stream");
  }
  const uint8_t vw = value_width();
  const bool se = SignExtendOf(header());
  for (size_t i = 0; i < count; ++i) {
    if (!LaneFits(values[i], vw, se)) {
      return Status::OutOfRange("run value exceeds value field width");
    }
  }
  const uint64_t max_count =
      count_width() >= 8 ? ~uint64_t{0}
                         : (uint64_t{1} << (8 * count_width())) - 1;
  for (size_t i = 0; i < count; ++i) {
    if (in_run_ && values[i] == cur_value_ && cur_count_ < max_count) {
      ++cur_count_;
    } else {
      if (in_run_) EmitRun();
      in_run_ = true;
      cur_value_ = values[i];
      cur_count_ = 1;
    }
  }
  total_ += count;
  return Status::OK();
}

Status RleStream::AppendRun(Lane value, uint64_t count) {
  if (finalized_stream_) {
    return Status::Internal("append to a finalized stream");
  }
  if (count == 0) return Status::OK();
  if (!LaneFits(value, value_width(), SignExtendOf(header()))) {
    return Status::OutOfRange("run value exceeds value field width");
  }
  const uint64_t max_count =
      count_width() >= 8 ? ~uint64_t{0}
                         : (uint64_t{1} << (8 * count_width())) - 1;
  if (in_run_ && value != cur_value_) EmitRun();
  if (!in_run_) {
    in_run_ = true;
    cur_value_ = value;
    cur_count_ = 0;
  }
  // Split into as many maximal pairs as the count field requires.
  uint64_t remaining = count;
  while (cur_count_ + remaining > max_count) {
    const uint64_t take = max_count - cur_count_;
    cur_count_ = max_count;
    remaining -= take;
    EmitRun();
    in_run_ = true;
    cur_value_ = value;
    cur_count_ = 0;
  }
  cur_count_ += remaining;
  if (cur_count_ == 0) in_run_ = false;
  total_ += count;
  return Status::OK();
}

Status RleStream::Finalize() {
  if (finalized_stream_) return Status::OK();
  if (in_run_) EmitRun();
  mheader().set_logical_size(total_);
  finalized_stream_ = true;
  return Status::OK();
}

Status RleStream::Get(uint64_t row, size_t count, Lane* out) const {
  if (row + count > total_) {
    return Status::OutOfRange("read past end of stream");
  }
  const uint64_t stored_pairs =
      (buf_.size() - header().data_offset()) / (count_width() + value_width());
  // Seeking backwards requires a sequential scan from the start of the
  // data stream (Sect. 4.3) — that asymmetry is why the planner keeps RLE
  // off hash-join inner sides.
  if (row < cursor_row_) {
    cursor_pair_ = 0;
    cursor_row_ = 0;
  }
  uint64_t pair = cursor_pair_;
  uint64_t pair_start = cursor_row_;
  size_t produced = 0;
  while (produced < count) {
    uint64_t run_len;
    Lane value;
    if (pair < stored_pairs) {
      run_len = RunCount(pair);
      value = RunValue(pair);
    } else {
      run_len = cur_count_;
      value = cur_value_;
    }
    const uint64_t run_end = pair_start + run_len;
    const uint64_t abs = row + produced;
    if (abs >= run_end) {
      pair_start = run_end;
      ++pair;
      continue;
    }
    const size_t take = static_cast<size_t>(
        std::min<uint64_t>(run_end - abs, count - produced));
    for (size_t i = 0; i < take; ++i) out[produced + i] = value;
    produced += take;
  }
  cursor_pair_ = pair;
  cursor_row_ = pair_start;
  return Status::OK();
}

Status RleStream::GetRuns(std::vector<RleRun>* out) const {
  out->clear();
  const uint64_t stored_pairs =
      (buf_.size() - header().data_offset()) / (count_width() + value_width());
  out->reserve(stored_pairs + 1);
  for (uint64_t i = 0; i < stored_pairs; ++i) {
    out->push_back({RunValue(i), RunCount(i)});
  }
  if (in_run_) out->push_back({cur_value_, cur_count_});
  return Status::OK();
}

}  // namespace internal
}  // namespace tde
