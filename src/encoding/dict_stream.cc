#include <algorithm>
#include <limits>
#include <memory>
#include <unordered_set>

#include "src/common/hash.h"
#include "src/encoding/bitpack.h"
#include "src/encoding/streams_internal.h"

namespace tde {
namespace internal {

namespace {
constexpr uint32_t kAbsent = std::numeric_limits<uint32_t>::max();
}  // namespace

void DictStream::Cuckoo::Init(uint64_t capacity_pow2) {
  keys.assign(capacity_pow2, 0);
  vals.assign(capacity_pow2, 0);
  used.assign(capacity_pow2, 0);
  mask = capacity_pow2 - 1;
}

uint32_t DictStream::Cuckoo::Find(Lane key) const {
  const uint64_t h1 = Mix64(static_cast<uint64_t>(key)) & mask;
  if (used[h1] && keys[h1] == key) return vals[h1];
  const uint64_t h2 = Mix64(~static_cast<uint64_t>(key)) & mask;
  if (used[h2] && keys[h2] == key) return vals[h2];
  return kAbsent;
}

void DictStream::Cuckoo::Insert(Lane key, uint32_t val) {
  // Displacement loop with a relocation bound; grow and retry on a cycle.
  Lane k = key;
  uint32_t v = val;
  for (int attempt = 0; attempt < 64; ++attempt) {
    const uint64_t h1 = Mix64(static_cast<uint64_t>(k)) & mask;
    if (!used[h1]) {
      keys[h1] = k;
      vals[h1] = v;
      used[h1] = 1;
      return;
    }
    const uint64_t h2 = Mix64(~static_cast<uint64_t>(k)) & mask;
    if (!used[h2]) {
      keys[h2] = k;
      vals[h2] = v;
      used[h2] = 1;
      return;
    }
    // Evict the occupant of the first bucket and re-place it.
    std::swap(k, keys[h1]);
    std::swap(v, vals[h1]);
  }
  Grow();
  Insert(k, v);
}

void DictStream::Cuckoo::Grow() {
  std::vector<Lane> old_keys = std::move(keys);
  std::vector<uint32_t> old_vals = std::move(vals);
  std::vector<uint8_t> old_used = std::move(used);
  Init((mask + 1) * 2);
  for (size_t i = 0; i < old_used.size(); ++i) {
    if (old_used[i]) Insert(old_keys[i], old_vals[i]);
  }
}

std::unique_ptr<DictStream> DictStream::Make(uint8_t width, bool sign_extend,
                                             uint8_t bits) {
  auto s = std::unique_ptr<DictStream>(new DictStream());
  // Reserve entry space for 2^bits entries up front so the dictionary can
  // grow in place (Sect. 3.1.3) without moving the packed data.
  const uint64_t data_offset =
      kEntriesOffset + static_cast<uint64_t>(width) * (uint64_t{1} << bits);
  InitHeader(s->mutable_buffer(), EncodingType::kDictionary, width, bits,
             sign_extend, data_offset);
  HeaderView(s->mutable_buffer()).SetU64(kEntryCountOffset, 0);
  s->map_.Init(256);
  return s;
}

std::unique_ptr<DictStream> DictStream::FromBuffer(std::vector<uint8_t> buf) {
  auto s = std::unique_ptr<DictStream>(new DictStream());
  *s->mutable_buffer() = std::move(buf);
  s->finalized_ = s->header().logical_size();
  s->finalized_stream_ = true;
  s->map_.Init(256);
  s->RebuildMap();
  return s;
}

void DictStream::RebuildMap() {
  const uint64_t n = entry_count();
  for (uint64_t i = 0; i < n; ++i) {
    map_.Insert(Entry(i), static_cast<uint32_t>(i));
  }
}

Lane DictStream::Entry(uint64_t idx) const {
  const uint8_t w = width();
  return LoadLane(buf_.data() + kEntriesOffset + idx * w, w,
                  SignExtendOf(header()));
}

std::vector<Lane> DictStream::Entries() const {
  const uint64_t n = entry_count();
  std::vector<Lane> out(n);
  for (uint64_t i = 0; i < n; ++i) out[i] = Entry(i);
  return out;
}

size_t DictStream::BlockBytes() const {
  return PackedBytes(kBlockSize, bits());
}

Status DictStream::CheckAppend(const Lane* values, size_t count) const {
  const uint64_t capacity = uint64_t{1} << bits();
  const uint8_t w = width();
  const bool se = SignExtendOf(header());
  uint64_t new_entries = 0;
  std::unordered_set<Lane> batch_new;
  for (size_t i = 0; i < count; ++i) {
    if (map_.Find(values[i]) != kAbsent) continue;
    if (!LaneFits(values[i], w, se)) {
      return Status::OutOfRange("dictionary entry exceeds element width");
    }
    if (batch_new.insert(values[i]).second) ++new_entries;
  }
  if (entry_count() + new_entries > capacity) {
    return Status::CapacityExceeded("dictionary full");
  }
  return Status::OK();
}

void DictStream::OnCommit(const Lane* values, size_t count) {
  HeaderView h = mheader();
  uint64_t n = entry_count();
  const uint8_t w = width();
  for (size_t i = 0; i < count; ++i) {
    if (map_.Find(values[i]) != kAbsent) continue;
    map_.Insert(values[i], static_cast<uint32_t>(n));
    StoreBytes(buf_.data() + kEntriesOffset + n * w,
               static_cast<uint64_t>(values[i]), w);
    ++n;
  }
  h.SetU64(kEntryCountOffset, n);
}

void DictStream::PackBlock(const Lane* values) {
  uint64_t packed[kBlockSize];
  for (uint32_t i = 0; i < kBlockSize; ++i) {
    packed[i] = Lookup(values[i]);
  }
  const size_t old = buf_.size();
  buf_.resize(old + BlockBytes());
  PackBits(packed, kBlockSize, bits(), buf_.data() + old);
}

void DictStream::DecodeBlock(uint64_t block_idx, Lane* out) const {
  uint64_t packed[kBlockSize];
  UnpackBits(BlockData(block_idx), kBlockSize, bits(), packed);
  for (uint32_t i = 0; i < kBlockSize; ++i) {
    out[i] = Entry(packed[i]);
  }
}

bool DictStream::GetCodes(uint64_t row, size_t count, Lane* out) const {
  if (row + count > size()) return false;
  size_t produced = 0;
  uint64_t packed[kBlockSize];
  // Finalized (packed) region: unpack the indexes, skip the entry decode.
  while (produced < count && row + produced < finalized_) {
    const uint64_t abs = row + produced;
    const uint64_t block = abs / kBlockSize;
    const uint64_t in_block = abs % kBlockSize;
    if (in_block == 0 && count - produced >= kBlockSize &&
        finalized_ - abs >= kBlockSize) {
      // Aligned full block: unpack straight into the caller's lanes.
      // Lane is the signed counterpart of uint64_t, so the cast aliases
      // legally.
      UnpackBits(BlockData(block), kBlockSize, bits(),
                 reinterpret_cast<uint64_t*>(out + produced));
      produced += kBlockSize;
      continue;
    }
    UnpackBits(BlockData(block), kBlockSize, bits(), packed);
    const size_t take = static_cast<size_t>(
        std::min<uint64_t>(kBlockSize - in_block,
                           std::min<uint64_t>(count - produced,
                                              finalized_ - abs)));
    for (size_t i = 0; i < take; ++i) {
      out[produced + i] = static_cast<Lane>(packed[in_block + i]);
    }
    produced += take;
  }
  // Pending tail: OnCommit registered every committed value, so the map
  // resolves each one.
  while (produced < count) {
    const uint64_t abs = row + produced;
    const uint32_t c = map_.Find(pending_[abs - finalized_]);
    if (c == kAbsent) return false;
    out[produced++] = static_cast<Lane>(c);
  }
  return true;
}

}  // namespace internal
}  // namespace tde
