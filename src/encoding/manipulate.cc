#include "src/encoding/manipulate.h"

#include <algorithm>
#include <limits>
#include <numeric>

#include "src/common/bitutil.h"
#include "src/encoding/streams_internal.h"
#include "src/observe/metrics.h"

namespace tde {

namespace {

int64_t ClampToI64(__int128 v) {
  if (v > std::numeric_limits<int64_t>::max()) {
    return std::numeric_limits<int64_t>::max();
  }
  if (v < std::numeric_limits<int64_t>::min()) {
    return std::numeric_limits<int64_t>::min();
  }
  return static_cast<int64_t>(v);
}

uint8_t WidthForEnvelope(int64_t lo, int64_t hi, bool signed_values) {
  if (signed_values) return MinSignedWidth(lo, hi);
  if (lo < 0) return 8;
  return MinUnsignedWidth(static_cast<uint64_t>(hi));
}

}  // namespace

Result<uint8_t> NarrowStreamWidth(std::vector<uint8_t>* buf,
                                  bool signed_values) {
  if (observe::StatsEnabled()) {
    // The O(1)/O(entries) header-edit counters of Sect. 3.4, exported
    // through the tde_stats virtual table.
    static observe::Counter* ops =
        observe::MetricsRegistry::Global().GetCounter(
            "encoding.narrow_width_ops");
    ops->Add();
  }
  HeaderView h(buf);
  const uint8_t old_width = h.width();
  switch (h.algorithm()) {
    case EncodingType::kFrameOfReference: {
      // Envelope from the frame value and the bit width (Sect. 3.4.1):
      // O(1), independent of the size of the column.
      const int64_t frame = h.GetI64(internal::ForStream::kFrameOffset);
      const uint8_t bits = h.bits();
      const __int128 hi =
          static_cast<__int128>(frame) +
          (bits >= 64 ? static_cast<__int128>(
                            std::numeric_limits<uint64_t>::max())
                      : static_cast<__int128>((uint64_t{1} << bits) - 1));
      const uint8_t w =
          WidthForEnvelope(frame, ClampToI64(hi), signed_values);
      if (w < old_width) h.set_width(w);
      return h.width();
    }
    case EncodingType::kAffine: {
      const int64_t base = h.GetI64(internal::AffineStream::kBaseOffset);
      const int64_t delta = h.GetI64(internal::AffineStream::kDeltaOffset);
      const uint64_t n = h.logical_size();
      const __int128 last =
          static_cast<__int128>(base) +
          static_cast<__int128>(delta) * (n == 0 ? 0 : n - 1);
      const int64_t lo = std::min<int64_t>(base, ClampToI64(last));
      const int64_t hi = std::max<int64_t>(base, ClampToI64(last));
      const uint8_t w = WidthForEnvelope(lo, hi, signed_values);
      if (w < old_width) h.set_width(w);
      return h.width();
    }
    case EncodingType::kDictionary: {
      // O(2^bits): scan the actual entries and rewrite them at the new
      // stride. The data offset stays put, so the packing never moves.
      const uint64_t n = h.GetU64(internal::DictStream::kEntryCountOffset);
      if (n == 0) return old_width;
      const bool se = (*buf)[23] & internal::kSignExtendFlag;
      int64_t lo = std::numeric_limits<int64_t>::max();
      int64_t hi = std::numeric_limits<int64_t>::min();
      for (uint64_t i = 0; i < n; ++i) {
        const Lane v = internal::LoadLane(
            buf->data() + internal::DictStream::kEntriesOffset + i * old_width,
            old_width, se);
        lo = std::min(lo, v);
        hi = std::max(hi, v);
      }
      const uint8_t w = WidthForEnvelope(lo, hi, signed_values);
      if (w >= old_width) return old_width;
      for (uint64_t i = 0; i < n; ++i) {
        const Lane v = internal::LoadLane(
            buf->data() + internal::DictStream::kEntriesOffset + i * old_width,
            old_width, se);
        StoreBytes(buf->data() + internal::DictStream::kEntriesOffset + i * w,
                   static_cast<uint64_t>(v), w);
      }
      h.set_width(w);
      return w;
    }
    case EncodingType::kDelta:
    case EncodingType::kRunLength:
      // Delta embeds running totals in each block and run-length embeds
      // values in each pair (Sect. 3.4.1): not amenable to header edits.
      return old_width;
    case EncodingType::kUncompressed:
      return old_width;
    case EncodingType::kSegmented:
      // Narrowing applies per segment, to each segment's own buffer.
      return old_width;
  }
  return Status::InvalidArgument("unknown encoding");
}

Status RemapDictEntries(std::vector<uint8_t>* buf,
                        const std::function<Lane(Lane)>& fn) {
  if (observe::StatsEnabled()) {
    static observe::Counter* ops =
        observe::MetricsRegistry::Global().GetCounter(
            "encoding.dict_remap_ops");
    ops->Add();
  }
  HeaderView h(buf);
  if (h.algorithm() != EncodingType::kDictionary) {
    return Status::InvalidArgument("not a dictionary-encoded stream");
  }
  const uint8_t w = h.width();
  const bool se = (*buf)[23] & internal::kSignExtendFlag;
  const uint64_t n = h.GetU64(internal::DictStream::kEntryCountOffset);
  for (uint64_t i = 0; i < n; ++i) {
    uint8_t* p = buf->data() + internal::DictStream::kEntriesOffset + i * w;
    const Lane old_value = internal::LoadLane(p, w, se);
    const Lane new_value = fn(old_value);
    if (!internal::LaneFits(new_value, w, se)) {
      return Status::OutOfRange("remapped entry exceeds element width");
    }
    StoreBytes(p, static_cast<uint64_t>(new_value), w);
  }
  return Status::OK();
}

Result<RleDecomposition> DecomposeRle(const EncodedStream& stream) {
  if (stream.type() != EncodingType::kRunLength) {
    return {Status::InvalidArgument("not a run-length stream")};
  }
  std::vector<RleRun> runs;
  TDE_RETURN_NOT_OK(stream.GetRuns(&runs));
  RleDecomposition out;
  out.values.reserve(runs.size());
  out.counts.reserve(runs.size());
  for (const RleRun& r : runs) {
    out.values.push_back(r.value);
    out.counts.push_back(r.count);
  }
  return out;
}

Result<std::unique_ptr<EncodedStream>> RebuildRle(
    const RleDecomposition& parts, uint8_t width, bool sign_extend) {
  if (parts.values.size() != parts.counts.size()) {
    return {Status::InvalidArgument("value/count stream length mismatch")};
  }
  int64_t lo = 0, hi = 0;
  uint64_t max_count = 1;
  for (size_t i = 0; i < parts.values.size(); ++i) {
    if (i == 0) {
      lo = hi = parts.values[0];
    } else {
      lo = std::min(lo, parts.values[i]);
      hi = std::max(hi, parts.values[i]);
    }
    max_count = std::max(max_count, parts.counts[i]);
  }
  const uint8_t vw = sign_extend
                         ? MinSignedWidth(lo, hi)
                         : MinUnsignedWidth(static_cast<uint64_t>(hi));
  auto s = internal::RleStream::Make(width, sign_extend,
                                     MinUnsignedWidth(max_count), vw);
  for (size_t i = 0; i < parts.values.size(); ++i) {
    TDE_RETURN_NOT_OK(s->AppendRun(parts.values[i], parts.counts[i]));
  }
  return {std::unique_ptr<EncodedStream>(std::move(s))};
}

Result<DictCompression> EncodingToCompression(const EncodedStream& stream,
                                              bool signed_values) {
  if (stream.type() != EncodingType::kDictionary) {
    return {Status::InvalidArgument("not a dictionary-encoded stream")};
  }
  const auto* dict = static_cast<const internal::DictStream*>(&stream);
  std::vector<Lane> entries = dict->Entries();

  // Sort the (small) domain and compute each old entry's rank: the rank
  // becomes its compression token, so tokens are distinct, comparable and
  // minimal-width — all without touching the packed row data.
  DictCompression out;
  out.dictionary = entries;
  std::sort(out.dictionary.begin(), out.dictionary.end());
  out.dictionary.erase(
      std::unique(out.dictionary.begin(), out.dictionary.end()),
      out.dictionary.end());

  std::vector<uint8_t> buf = stream.buffer();  // copy, then edit the header
  TDE_RETURN_NOT_OK(RemapDictEntries(&buf, [&](Lane v) {
    const auto it =
        std::lower_bound(out.dictionary.begin(), out.dictionary.end(), v);
    return static_cast<Lane>(it - out.dictionary.begin());
  }));
  // Tokens are unsigned ranks now; narrow them (Sect. 3.4.3 "again,
  // narrowing them if desired").
  buf[23] &= static_cast<uint8_t>(~internal::kSignExtendFlag);
  TDE_ASSIGN_OR_RETURN(uint8_t unused_w,
                       NarrowStreamWidth(&buf, /*signed_values=*/false));
  (void)unused_w;
  (void)signed_values;
  TDE_ASSIGN_OR_RETURN(out.tokens, EncodedStream::Open(std::move(buf)));
  return out;
}

Result<DictCompression> ForToCompression(const EncodedStream& stream) {
  if (stream.type() != EncodingType::kFrameOfReference) {
    return {Status::InvalidArgument("not a frame-of-reference stream")};
  }
  const ConstHeaderView h(stream.buffer());
  const uint8_t bits = h.bits();
  if (bits > 15) {
    return {Status::CapacityExceeded(
        "frame envelope exceeds the dictionary limit")};
  }
  const int64_t frame = h.GetI64(internal::ForStream::kFrameOffset);
  DictCompression out;
  const uint64_t n = uint64_t{1} << bits;
  out.dictionary.resize(n);
  for (uint64_t i = 0; i < n; ++i) {
    out.dictionary[i] = frame + static_cast<int64_t>(i);
  }
  // Token stream = the same packing reinterpreted: with the frame edited
  // to zero, decoding yields the unsigned dictionary indexes directly.
  std::vector<uint8_t> buf = stream.buffer();
  HeaderView mh(&buf);
  mh.SetI64(internal::ForStream::kFrameOffset, 0);
  buf[23] &= static_cast<uint8_t>(~internal::kSignExtendFlag);
  TDE_ASSIGN_OR_RETURN(uint8_t w,
                       NarrowStreamWidth(&buf, /*signed_values=*/false));
  (void)w;
  TDE_ASSIGN_OR_RETURN(out.tokens, EncodedStream::Open(std::move(buf)));
  return out;
}

}  // namespace tde
