#include "src/encoding/stream.h"

#include <algorithm>
#include <cstring>
#include <limits>

#include "src/common/bitutil.h"
#include "src/encoding/bitpack.h"
#include "src/encoding/streams_internal.h"

namespace tde {

Status EncodedStream::GetRuns(std::vector<RleRun>* out) const {
  // Generic derivation: scan the stream block-wise and coalesce runs.
  out->clear();
  const uint64_t n = size();
  std::vector<Lane> buf(kBlockSize);
  for (uint64_t row = 0; row < n; row += kBlockSize) {
    const size_t take = static_cast<size_t>(std::min<uint64_t>(kBlockSize, n - row));
    TDE_RETURN_NOT_OK(Get(row, take, buf.data()));
    for (size_t i = 0; i < take; ++i) {
      if (!out->empty() && out->back().value == buf[i]) {
        ++out->back().count;
      } else {
        out->push_back({buf[i], 1});
      }
    }
  }
  return Status::OK();
}

Status BlockedStream::Append(const Lane* values, size_t count) {
  if (finalized_stream_) {
    return Status::Internal("append to a finalized stream");
  }
  TDE_RETURN_NOT_OK(CheckAppend(values, count));
  OnCommit(values, count);
  pending_.insert(pending_.end(), values, values + count);
  // Pack every complete decompression block.
  size_t consumed = 0;
  while (pending_.size() - consumed >= kBlockSize) {
    PackBlock(pending_.data() + consumed);
    finalized_ += kBlockSize;
    consumed += kBlockSize;
  }
  if (consumed > 0) {
    pending_.erase(pending_.begin(),
                   pending_.begin() + static_cast<ptrdiff_t>(consumed));
  }
  return Status::OK();
}

Status BlockedStream::Finalize() {
  if (finalized_stream_) return Status::OK();
  const uint64_t logical = finalized_ + pending_.size();
  if (!pending_.empty()) {
    // Streams contain only complete decompression blocks (Sect. 3.1): pad
    // the tail with its last value, which is representable by construction.
    std::vector<Lane> block(pending_.begin(), pending_.end());
    block.resize(kBlockSize, pending_.back());
    PackBlock(block.data());
    finalized_ += pending_.size();
    pending_.clear();
  }
  mheader().set_logical_size(logical);
  finalized_stream_ = true;
  return Status::OK();
}

Status BlockedStream::Get(uint64_t row, size_t count, Lane* out) const {
  const uint64_t logical = size();
  if (row + count > logical) {
    return Status::OutOfRange("read past end of stream");
  }
  size_t produced = 0;
  // Finalized (packed) region.
  if (row < finalized_) {
    Lane block_buf[kBlockSize];
    while (produced < count && row + produced < finalized_) {
      const uint64_t abs = row + produced;
      const uint64_t block = abs / kBlockSize;
      const uint64_t in_block = abs % kBlockSize;
      DecodeBlock(block, block_buf);
      const size_t take = static_cast<size_t>(
          std::min<uint64_t>(kBlockSize - in_block,
                             std::min<uint64_t>(count - produced,
                                                finalized_ - abs)));
      std::memcpy(out + produced, block_buf + in_block, take * sizeof(Lane));
      produced += take;
    }
  }
  // Pending tail.
  while (produced < count) {
    const uint64_t abs = row + produced;
    out[produced] = pending_[abs - finalized_];
    ++produced;
  }
  return Status::OK();
}

void BlockedStream::OnCommit(const Lane*, size_t) {}

Result<std::unique_ptr<EncodedStream>> EncodedStream::Create(
    EncodingType type, uint8_t width, bool sign_extend,
    const EncodingStats& stats, uint8_t headroom_bits) {
  switch (type) {
    case EncodingType::kUncompressed:
      return {std::unique_ptr<EncodedStream>(
          internal::UncompressedStream::Make(width, sign_extend))};
    case EncodingType::kFrameOfReference: {
      const uint64_t range = static_cast<uint64_t>(stats.max_value()) -
                             static_cast<uint64_t>(stats.min_value());
      uint8_t bits = BitsFor(range);
      bits = static_cast<uint8_t>(std::min<int>(64, bits + headroom_bits));
      // Center the headroom: future values may drift below the observed
      // minimum just as easily as above the maximum.
      int64_t frame = stats.min_value();
      if (headroom_bits > 0 && bits < 64) {
        const uint64_t capacity = (uint64_t{1} << bits) - 1;
        const uint64_t slack = (capacity - range) / 2;
        const __int128 lowered = static_cast<__int128>(frame) -
                                 static_cast<__int128>(slack);
        frame = lowered < std::numeric_limits<int64_t>::min()
                    ? std::numeric_limits<int64_t>::min()
                    : static_cast<int64_t>(lowered);
      }
      return {std::unique_ptr<EncodedStream>(
          internal::ForStream::Make(width, frame, bits))};
    }
    case EncodingType::kDelta: {
      __int128 min_delta = stats.has_deltas() ? stats.min_delta() : 0;
      __int128 drange =
          stats.has_deltas() ? stats.max_delta() - stats.min_delta() : 0;
      if (min_delta < std::numeric_limits<int64_t>::min() ||
          min_delta > std::numeric_limits<int64_t>::max() ||
          drange > static_cast<__int128>(std::numeric_limits<uint64_t>::max())) {
        return {Status::OutOfRange("delta range not representable")};
      }
      uint8_t bits = BitsFor(static_cast<uint64_t>(drange));
      bits = static_cast<uint8_t>(std::min<int>(64, bits + headroom_bits));
      // Center the delta headroom as well.
      __int128 base_delta = min_delta;
      if (headroom_bits > 0 && bits < 64) {
        const uint64_t capacity = (uint64_t{1} << bits) - 1;
        const uint64_t slack =
            (capacity - static_cast<uint64_t>(drange)) / 2;
        base_delta -= static_cast<__int128>(slack);
        if (base_delta < std::numeric_limits<int64_t>::min()) {
          base_delta = std::numeric_limits<int64_t>::min();
        }
      }
      return {std::unique_ptr<EncodedStream>(internal::DeltaStream::Make(
          width, static_cast<int64_t>(base_delta), bits))};
    }
    case EncodingType::kDictionary: {
      if (!stats.cardinality_known()) {
        return {Status::CapacityExceeded("domain exceeds dictionary limit")};
      }
      const uint64_t card = std::max<uint64_t>(1, stats.cardinality());
      uint8_t bits = std::max<uint8_t>(1, BitsFor(card - 1));
      bits = static_cast<uint8_t>(std::min<int>(15, bits + headroom_bits));
      return {std::unique_ptr<EncodedStream>(
          internal::DictStream::Make(width, sign_extend, bits))};
    }
    case EncodingType::kAffine: {
      const int64_t delta =
          stats.has_deltas() ? static_cast<int64_t>(stats.min_delta()) : 0;
      return {std::unique_ptr<EncodedStream>(
          internal::AffineStream::Make(width, stats.first_value(), delta))};
    }
    case EncodingType::kRunLength: {
      const uint8_t count_width =
          MinUnsignedWidth(std::max<uint64_t>(1, stats.max_run_length()));
      uint8_t value_width = MinSignedWidth(stats.min_value(),
                                           stats.max_value());
      if (headroom_bits > 0 && value_width < 8) {
        value_width = static_cast<uint8_t>(value_width * 2);
      }
      return {std::unique_ptr<EncodedStream>(internal::RleStream::Make(
          width, sign_extend, count_width, value_width))};
    }
    case EncodingType::kSegmented:
      // Segmented is a container over the physical encodings above, built
      // through SegmentedStream, never through the dynamic encoder.
      return {Status::InvalidArgument(
          "segmented streams are built via SegmentedStream")};
  }
  return {Status::InvalidArgument("unknown encoding type")};
}

uint8_t EncodedStream::TokenWidthBytes() const {
  switch (type()) {
    case EncodingType::kDictionary:
      // The per-row data of a dictionary-encoded stream is its packed index.
      return static_cast<uint8_t>((bits() + 7) / 8);
    case EncodingType::kRunLength:
      // Per-row values occupy the run value field width.
      return buf_[internal::RleStream::kValueWidthOffset];
    default:
      return width();
  }
}

namespace {

/// Structural validation of a serialized stream before trusting it: a
/// corrupt single-file database must fail cleanly, never fault.
Status ValidateStreamBuffer(const std::vector<uint8_t>& buf) {
  if (buf.size() < HeaderView::kExtraOffset) {
    return Status::IOError("stream buffer too small for header");
  }
  const ConstHeaderView h(buf);
  const uint8_t w = h.width();
  if (w != 1 && w != 2 && w != 4 && w != 8) {
    return Status::IOError("invalid element width in stream header");
  }
  if (h.bits() > 64) {
    return Status::IOError("invalid packing bit count in stream header");
  }
  if (h.block_size() == 0 || h.block_size() % 32 != 0) {
    return Status::IOError("invalid decompression block size");
  }
  if (h.data_offset() < HeaderView::kExtraOffset ||
      h.data_offset() > buf.size()) {
    return Status::IOError("data offset outside stream buffer");
  }
  const uint64_t logical = h.logical_size();
  const uint64_t data_bytes = buf.size() - h.data_offset();
  switch (h.algorithm()) {
    case EncodingType::kUncompressed:
    case EncodingType::kFrameOfReference:
    case EncodingType::kDelta:
    case EncodingType::kDictionary: {
      uint64_t block_bytes = PackedBytes(h.block_size(), h.bits());
      if (h.algorithm() == EncodingType::kDelta) block_bytes += 8;
      if (h.algorithm() == EncodingType::kUncompressed) {
        block_bytes = static_cast<uint64_t>(h.block_size()) * w;
      }
      const uint64_t blocks =
          (logical + h.block_size() - 1) / h.block_size();
      if (blocks * block_bytes > data_bytes) {
        return Status::IOError("stream data truncated");
      }
      if (h.algorithm() == EncodingType::kDictionary) {
        if (h.bits() > 15) {
          return Status::IOError("dictionary bit count exceeds limit");
        }
        const uint64_t entry_space =
            static_cast<uint64_t>(w) * (uint64_t{1} << h.bits());
        if (32 + entry_space > h.data_offset()) {
          return Status::IOError("dictionary entry space truncated");
        }
        if (h.GetU64(24) > (uint64_t{1} << h.bits())) {
          return Status::IOError("dictionary entry count exceeds capacity");
        }
      }
      break;
    }
    case EncodingType::kAffine:
      if (h.data_offset() < 40) {
        return Status::IOError("affine header truncated");
      }
      break;
    case EncodingType::kRunLength: {
      const uint8_t cw = buf[24];
      const uint8_t vw = buf[25];
      if (cw == 0 || cw > 8 || vw == 0 || vw > 8) {
        return Status::IOError("invalid run-length field widths");
      }
      uint64_t total = 0;
      const uint64_t pairs = data_bytes / (cw + vw);
      for (uint64_t i = 0; i < pairs && total < logical; ++i) {
        total += LoadUnsigned(
            buf.data() + h.data_offset() + i * (cw + vw), cw);
      }
      if (total < logical) {
        return Status::IOError("run-length pairs cover fewer values than "
                               "the logical size");
      }
      break;
    }
    default:
      return Status::IOError("unknown encoding in stream header");
  }
  return Status::OK();
}

}  // namespace

Result<std::unique_ptr<EncodedStream>> EncodedStream::Open(
    std::vector<uint8_t> buf) {
  TDE_RETURN_NOT_OK(ValidateStreamBuffer(buf));
  const EncodingType type = ConstHeaderView(buf).algorithm();
  switch (type) {
    case EncodingType::kUncompressed:
      return {std::unique_ptr<EncodedStream>(
          internal::UncompressedStream::FromBuffer(std::move(buf)))};
    case EncodingType::kFrameOfReference:
      return {std::unique_ptr<EncodedStream>(
          internal::ForStream::FromBuffer(std::move(buf)))};
    case EncodingType::kDelta:
      return {std::unique_ptr<EncodedStream>(
          internal::DeltaStream::FromBuffer(std::move(buf)))};
    case EncodingType::kDictionary:
      return {std::unique_ptr<EncodedStream>(
          internal::DictStream::FromBuffer(std::move(buf)))};
    case EncodingType::kAffine:
      return {std::unique_ptr<EncodedStream>(
          internal::AffineStream::FromBuffer(std::move(buf)))};
    case EncodingType::kRunLength:
      return {std::unique_ptr<EncodedStream>(
          internal::RleStream::FromBuffer(std::move(buf)))};
    case EncodingType::kSegmented:
      // A segmented column is recorded as a directory segment table, never
      // as one serialized stream blob (ValidateStreamBuffer rejects it too).
      return {Status::IOError("segmented container is not a stream blob")};
  }
  return {Status::InvalidArgument("unknown encoding in stream header")};
}

}  // namespace tde
