#include "src/encoding/header.h"

namespace tde {

const char* EncodingName(EncodingType t) {
  switch (t) {
    case EncodingType::kUncompressed:
      return "uncompressed";
    case EncodingType::kFrameOfReference:
      return "frame-of-reference";
    case EncodingType::kDelta:
      return "delta";
    case EncodingType::kDictionary:
      return "dictionary";
    case EncodingType::kAffine:
      return "affine";
    case EncodingType::kRunLength:
      return "run-length";
    case EncodingType::kSegmented:
      return "segmented";
  }
  return "unknown";
}

}  // namespace tde
