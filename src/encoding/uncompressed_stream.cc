#include <cstring>
#include <memory>

#include "src/encoding/streams_internal.h"

namespace tde {
namespace internal {

std::unique_ptr<UncompressedStream> UncompressedStream::Make(
    uint8_t width, bool sign_extend) {
  auto s = std::unique_ptr<UncompressedStream>(new UncompressedStream());
  InitHeader(s->mutable_buffer(), EncodingType::kUncompressed, width,
             static_cast<uint8_t>(8 * width), sign_extend,
             HeaderView::kExtraOffset);
  return s;
}

std::unique_ptr<UncompressedStream> UncompressedStream::FromBuffer(
    std::vector<uint8_t> buf) {
  auto s = std::unique_ptr<UncompressedStream>(new UncompressedStream());
  *s->mutable_buffer() = std::move(buf);
  s->finalized_ = s->header().logical_size();
  s->finalized_stream_ = true;
  return s;
}

size_t UncompressedStream::BlockBytes() const {
  return static_cast<size_t>(kBlockSize) * width();
}

Status UncompressedStream::CheckAppend(const Lane* values,
                                       size_t count) const {
  const uint8_t w = width();
  if (w == 8) return Status::OK();
  const bool se = SignExtendOf(header());
  for (size_t i = 0; i < count; ++i) {
    if (!LaneFits(values[i], w, se)) {
      return Status::OutOfRange("value exceeds element width");
    }
  }
  return Status::OK();
}

void UncompressedStream::PackBlock(const Lane* values) {
  const uint8_t w = width();
  const size_t old = buf_.size();
  buf_.resize(old + BlockBytes());
  uint8_t* out = buf_.data() + old;
  for (uint32_t i = 0; i < kBlockSize; ++i) {
    StoreBytes(out + static_cast<size_t>(i) * w,
               static_cast<uint64_t>(values[i]), w);
  }
}

void UncompressedStream::DecodeBlock(uint64_t block_idx, Lane* out) const {
  const uint8_t w = width();
  const bool se = SignExtendOf(header());
  const uint8_t* in = BlockData(block_idx);
  for (uint32_t i = 0; i < kBlockSize; ++i) {
    out[i] = LoadLane(in + static_cast<size_t>(i) * w, w, se);
  }
}

}  // namespace internal
}  // namespace tde
