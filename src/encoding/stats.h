#ifndef TDE_ENCODING_STATS_H_
#define TDE_ENCODING_STATS_H_

#include <cstdint>
#include <unordered_set>

#include "src/common/types.h"
#include "src/encoding/header.h"

namespace tde {

/// Bitmask of encodings a dynamic encoder is allowed to pick. The strategic
/// optimizer restricts this set for FlowTables on the inner side of hash
/// joins, whose random access patterns are hostile to run-length encoding
/// (Sect. 4.3).
enum EncodingMask : uint32_t {
  kAllowUncompressed = 1u << static_cast<int>(EncodingType::kUncompressed),
  kAllowFor = 1u << static_cast<int>(EncodingType::kFrameOfReference),
  kAllowDelta = 1u << static_cast<int>(EncodingType::kDelta),
  kAllowDict = 1u << static_cast<int>(EncodingType::kDictionary),
  kAllowAffine = 1u << static_cast<int>(EncodingType::kAffine),
  kAllowRle = 1u << static_cast<int>(EncodingType::kRunLength),
  kAllowAll = kAllowUncompressed | kAllowFor | kAllowDelta | kAllowDict |
              kAllowAffine | kAllowRle,
  /// Everything with good random access (no RLE) — hash join inner sides.
  kAllowRandomAccess =
      kAllowUncompressed | kAllowFor | kAllowDelta | kAllowDict | kAllowAffine,
};

/// Streaming column statistics (Sect. 3.2): "simple to gather, consisting
/// mostly of the value range and delta range". Updated one block at a time
/// before the block is inserted into the column's encoding stream; consulted
/// whenever an insert fails to pick the next encoding, and at the end to
/// pick the optimal one. Also the source of all extracted metadata
/// (Sect. 3.4.2).
class EncodingStats {
 public:
  EncodingStats();

  /// Folds a block of values into the statistics.
  void Update(const Lane* values, size_t count);

  uint64_t count() const { return count_; }
  bool empty() const { return count_ == 0; }

  int64_t min_value() const { return min_; }
  int64_t max_value() const { return max_; }
  /// First value inserted (needed as the base of an affine encoding).
  int64_t first_value() const { return first_; }
  /// Last value inserted (the delta context for appended blocks).
  int64_t last_value() const { return prev_; }

  /// Delta range over consecutive values (valid once count >= 2). Deltas
  /// are tracked in 128-bit arithmetic so int64 extremes cannot overflow.
  __int128 min_delta() const { return min_delta_; }
  __int128 max_delta() const { return max_delta_; }
  bool has_deltas() const { return count_ >= 2; }

  /// True while every delta seen so far is >= 0 (column is sorted).
  bool sorted() const { return count_ < 2 || min_delta_ >= 0; }
  /// True while every delta is identical (affine applies).
  bool constant_delta() const {
    return count_ >= 2 && min_delta_ == max_delta_;
  }

  /// Number of runs of equal consecutive values.
  uint64_t run_count() const { return count_ == 0 ? 0 : runs_; }
  uint64_t max_run_length() const { return max_run_; }

  /// Distinct-value tracking, abandoned past the dictionary limit.
  bool cardinality_known() const { return distinct_tracking_; }
  uint64_t cardinality() const { return distinct_.size(); }

  /// NULL sentinel occurrences.
  uint64_t null_count() const { return nulls_; }

  /// Estimated physical bytes if the whole column (current count) were
  /// encoded as `type` at element width `width`. Returns UINT64_MAX when
  /// the encoding cannot represent the data at all.
  uint64_t EstimateSize(EncodingType type, uint8_t width) const;

  /// The cheapest admissible encoding for the data seen so far
  /// (Sect. 3.2: "we can quickly determine the best of the available
  /// choices"). `width` is the column's element width; `allowed` masks the
  /// admissible encodings.
  EncodingType ChooseEncoding(uint8_t width, uint32_t allowed) const;

 private:
  uint64_t count_ = 0;
  int64_t min_ = 0;
  int64_t max_ = 0;
  int64_t first_ = 0;
  int64_t prev_ = 0;
  __int128 min_delta_ = 0;
  __int128 max_delta_ = 0;
  uint64_t runs_ = 0;
  uint64_t cur_run_ = 0;
  uint64_t max_run_ = 0;
  uint64_t nulls_ = 0;
  bool distinct_tracking_ = true;
  std::unordered_set<Lane> distinct_;
};

}  // namespace tde

#endif  // TDE_ENCODING_STATS_H_
