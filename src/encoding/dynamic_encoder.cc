#include "src/encoding/dynamic_encoder.h"

#include <algorithm>
#include <vector>

namespace tde {

DynamicEncoder::DynamicEncoder(DynamicEncoderOptions options)
    : options_(options) {
  if (!options_.enable_encodings) {
    options_.allowed = kAllowUncompressed;
  }
}

EncodingType DynamicEncoder::Choose() const {
  EncodingType best = stats_.ChooseEncoding(options_.width, options_.allowed);
  if (options_.prefer_dictionary && (options_.allowed & kAllowDict) != 0 &&
      best != EncodingType::kAffine && best != EncodingType::kDictionary) {
    const uint64_t dict_size =
        stats_.EstimateSize(EncodingType::kDictionary, options_.width);
    if (dict_size <
        stats_.EstimateSize(EncodingType::kUncompressed, options_.width)) {
      best = EncodingType::kDictionary;
    }
  }
  return best;
}

EncodingType DynamicEncoder::current_encoding() const {
  return stream_ ? stream_->type() : EncodingType::kUncompressed;
}

Status DynamicEncoder::Append(const Lane* values, size_t count) {
  if (count == 0) return Status::OK();
  // Update the column statistics with the block before inserting it
  // (Sect. 3.2), so a failed insert can consult stats that already cover
  // the offending values.
  if (options_.enable_encodings) {
    stats_.Update(values, count);
  }
  if (stream_ == nullptr) {
    const EncodingType first =
        options_.enable_encodings ? Choose() : EncodingType::kUncompressed;
    TDE_ASSIGN_OR_RETURN(
        stream_, EncodedStream::Create(first, options_.width,
                                       options_.sign_extend, stats_,
                                       options_.headroom_bits));
  }
  Status st = stream_->Append(values, count);
  if (st.ok()) {
    bytes_written_ += count * options_.width;  // steady-state write cost
    return st;
  }
  if (st.code() != StatusCode::kOutOfRange &&
      st.code() != StatusCode::kCapacityExceeded) {
    return st;
  }
  // Representation failure: choose a new encoding from the statistics and
  // rewrite the stream.
  return Reencode(Choose(), values, count);
}

Status DynamicEncoder::Reencode(EncodingType next, const Lane* more,
                                size_t more_count) {
  const uint64_t old_count = stream_->size();
  std::vector<Lane> all(old_count + more_count);
  if (old_count > 0) {
    TDE_RETURN_NOT_OK(stream_->Get(0, old_count, all.data()));
  }
  std::copy(more, more + more_count, all.begin() + old_count);

  TDE_ASSIGN_OR_RETURN(
      auto fresh, EncodedStream::Create(next, options_.width,
                                        options_.sign_extend, stats_,
                                        options_.headroom_bits));
  Status st = fresh->Append(all.data(), all.size());
  if (!st.ok()) {
    // The stats-chosen encoding must admit the data it described; if even
    // that fails (e.g. headroom rounding), fall back to uncompressed.
    TDE_ASSIGN_OR_RETURN(
        fresh, EncodedStream::Create(EncodingType::kUncompressed,
                                     options_.width, options_.sign_extend,
                                     stats_, 0));
    TDE_RETURN_NOT_OK(fresh->Append(all.data(), all.size()));
  }
  stream_ = std::move(fresh);
  ++changes_;
  bytes_written_ += stream_->PhysicalSize();  // the rewrite I/O
  return Status::OK();
}

Result<EncodedColumn> DynamicEncoder::Finalize() {
  if (stream_ == nullptr) {
    TDE_ASSIGN_OR_RETURN(
        stream_, EncodedStream::Create(EncodingType::kUncompressed,
                                       options_.width, options_.sign_extend,
                                       stats_, 0));
  }
  if (options_.enable_encodings && options_.convert_to_optimal &&
      stream_->size() > 0) {
    // With the whole column seen, stats describe it exactly: re-encode with
    // zero headroom if a different/denser format wins (Sect. 3.2).
    const EncodingType optimal = Choose();
    const uint64_t optimal_size =
        stats_.EstimateSize(optimal, options_.width);
    if (optimal != stream_->type() ||
        optimal_size < stream_->ProjectedPhysicalSize()) {
      const uint8_t saved = options_.headroom_bits;
      options_.headroom_bits = 0;
      TDE_RETURN_NOT_OK(Reencode(optimal, nullptr, 0));
      options_.headroom_bits = saved;
      --changes_;  // the final conversion is not a mid-stream change
    }
  }
  TDE_RETURN_NOT_OK(stream_->Finalize());
  EncodedColumn out;
  out.stream = std::move(stream_);
  out.stats = stats_;
  out.encoding_changes = changes_;
  out.bytes_written = bytes_written_;
  return out;
}

}  // namespace tde
