#include "src/encoding/metadata.h"

namespace tde {

int ColumnMetadata::DetectedCount() const {
  int n = 0;
  if (min_max_known) n += 2;  // min and max
  if (cardinality_known) ++n;
  if (null_known) ++n;
  if (sorted) ++n;
  if (dense) ++n;
  if (unique) ++n;
  return n;
}

std::string ColumnMetadata::ToString() const {
  std::string s;
  if (sorted) s += "sorted ";
  if (dense) s += "dense ";
  if (unique) s += "unique ";
  if (min_max_known) {
    s += "min=" + std::to_string(min_value) +
         " max=" + std::to_string(max_value) + " ";
  }
  if (cardinality_known) {
    s += "card=" + std::to_string(cardinality) + " ";
  }
  if (null_known) s += has_nulls ? "nullable " : "no-nulls ";
  if (s.empty()) return "(none)";
  s.pop_back();
  return s;
}

ColumnMetadata ExtractMetadata(const EncodingStats& stats) {
  ColumnMetadata m;
  if (stats.empty()) return m;
  m.min_max_known = true;
  m.min_value = stats.min_value();
  m.max_value = stats.max_value();
  // The TDE uses sentinel values for NULL, so nullability falls out of the
  // statistics for free (Sect. 3.4.2).
  m.null_known = true;
  m.has_nulls = stats.null_count() > 0;
  m.sorted = stats.sorted();
  if (stats.cardinality_known()) {
    m.cardinality_known = true;
    m.cardinality = stats.cardinality();
    if (m.cardinality == stats.count()) m.unique = true;
  }
  if (stats.count() >= 2 && stats.constant_delta()) {
    const __int128 d = stats.min_delta();
    if (d != 0) m.unique = true;
    // Affine with delta 1: not only sorted but dense and unique, which
    // enables fetch joins downstream (Sect. 3.4.2).
    if (d == 1) m.dense = true;
  } else if (stats.count() == 1) {
    m.dense = true;
    m.unique = true;
  }
  return m;
}

}  // namespace tde
