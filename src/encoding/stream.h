#ifndef TDE_ENCODING_STREAM_H_
#define TDE_ENCODING_STREAM_H_

#include <memory>
#include <vector>

#include "src/common/status.h"
#include "src/common/types.h"
#include "src/encoding/header.h"
#include "src/encoding/stats.h"

namespace tde {

/// One run of a run-length encoded stream.
struct RleRun {
  Lane value;
  uint64_t count;
};

/// An encoded stream (Sect. 2.3.2): externally a paged array of fixed-width
/// values, internally one of the Sect. 3.1 formats serialized into a single
/// byte buffer whose first bytes are the Fig.-1 header. Encodings are
/// semantically neutral — they see 64-bit lanes and an element width, never
/// the logical type.
///
/// Building protocol: Append() blocks of lanes (all-or-nothing; a
/// representation failure returns OutOfRange/CapacityExceeded and leaves the
/// stream untouched so the dynamic encoder can re-encode), then Finalize()
/// once, which pads the tail to a complete decompression block and stamps
/// the logical size. Get() provides random access at any point.
class EncodedStream {
 public:
  virtual ~EncodedStream() = default;

  EncodedStream(const EncodedStream&) = delete;
  EncodedStream& operator=(const EncodedStream&) = delete;

  /// Creates an empty stream of the given encoding. `stats` describes the
  /// data about to be inserted (at minimum the first pending block) and
  /// parameterizes the format: frame value, minimum delta, dictionary bits,
  /// affine base/delta, run field widths. `headroom_bits` widens the bit
  /// field beyond what `stats` strictly requires so that the encoding
  /// survives modest drift before the dynamic encoder must re-encode.
  static Result<std::unique_ptr<EncodedStream>> Create(
      EncodingType type, uint8_t width, bool sign_extend,
      const EncodingStats& stats, uint8_t headroom_bits);

  /// Opens a finalized serialized stream (takes ownership of the buffer).
  static Result<std::unique_ptr<EncodedStream>> Open(std::vector<uint8_t> buf);

  /// Appends `count` lanes; all-or-nothing on representation failure.
  virtual Status Append(const Lane* values, size_t count) = 0;

  /// Flushes the pending tail as a complete decompression block and stamps
  /// the header. Idempotent.
  virtual Status Finalize() = 0;

  /// Random access: decodes lanes [row, row + count).
  virtual Status Get(uint64_t row, size_t count, Lane* out) const = 0;

  /// Runs of the stream, in order (cheap for run-length streams, derived
  /// for others). Used to build IndexTables (Sect. 4.2).
  virtual Status GetRuns(std::vector<RleRun>* out) const;

  /// Dictionary-coded fast path: writes the dense dictionary code of rows
  /// [row, row + count) into `out`, skipping the per-row entry decode.
  /// Codes index CodeEntries(). Returns false (out unspecified) for
  /// streams that are not dictionary-coded.
  virtual bool GetCodes(uint64_t row, size_t count, Lane* out) const {
    (void)row;
    (void)count;
    (void)out;
    return false;
  }

  /// Entry table of a dictionary-coded stream: code -> decoded lane, in
  /// code order. Empty unless GetCodes is supported.
  virtual std::vector<Lane> CodeEntries() const { return {}; }

  EncodingType type() const { return header().algorithm(); }
  uint8_t width() const { return header().width(); }
  uint8_t bits() const { return header().bits(); }

  /// True for SegmentedStream: the column is an ordered list of
  /// independently-encoded segments rather than one serialized buffer, and
  /// buffer() holds only a synthetic header (no packed data).
  virtual bool segmented() const { return false; }

  /// Bytes one logical value occupies in the packed representation: the
  /// packed code width for dictionaries, the run value field width for
  /// run-length, the element width otherwise. Prices scans in compressed
  /// bytes (Sect. 6.5).
  virtual uint8_t TokenWidthBytes() const;

  /// Logical number of values (including not-yet-finalized ones).
  virtual uint64_t size() const = 0;

  /// Serialized bytes (header + packed data) — the on-disk footprint.
  virtual uint64_t PhysicalSize() const { return buf_.size(); }
  /// Physical size once pending values are flushed into complete blocks
  /// (equals PhysicalSize() after Finalize).
  virtual uint64_t ProjectedPhysicalSize() const { return buf_.size(); }
  /// Un-encoded footprint: logical size * element width (Fig. 5's
  /// "logical size" baseline).
  uint64_t LogicalBytes() const { return size() * width(); }

  const std::vector<uint8_t>& buffer() const { return buf_; }
  std::vector<uint8_t>* mutable_buffer() { return &buf_; }

 protected:
  EncodedStream() = default;

  ConstHeaderView header() const { return ConstHeaderView(buf_); }
  HeaderView mheader() { return HeaderView(&buf_); }

  std::vector<uint8_t> buf_;
};

/// Shared implementation for the five block-structured encodings
/// (uncompressed, frame-of-reference, delta, dictionary, affine). Run-length
/// encoding has its own layout and implementation (RleStream).
class BlockedStream : public EncodedStream {
 public:
  Status Append(const Lane* values, size_t count) override;
  Status Finalize() override;
  Status Get(uint64_t row, size_t count, Lane* out) const override;
  uint64_t size() const override {
    return finalized_ + pending_.size();
  }
  uint64_t ProjectedPhysicalSize() const override {
    const uint64_t tail_blocks =
        (pending_.size() + kBlockSize - 1) / kBlockSize;
    return buf_.size() + tail_blocks * BlockBytes();
  }

 protected:
  /// Bytes one packed decompression block occupies.
  virtual size_t BlockBytes() const = 0;
  /// Verifies every value is representable given the current stream state;
  /// must not mutate the stream.
  virtual Status CheckAppend(const Lane* values, size_t count) const = 0;
  /// Packs exactly kBlockSize lanes and appends them to buf_.
  virtual void PackBlock(const Lane* values) = 0;
  /// Decodes finalized block `block_idx` into out[kBlockSize].
  virtual void DecodeBlock(uint64_t block_idx, Lane* out) const = 0;
  /// Hook for subclasses to observe committed values (delta context, dict
  /// inserts). Called after CheckAppend succeeded.
  virtual void OnCommit(const Lane* values, size_t count);

  const uint8_t* BlockData(uint64_t block_idx) const {
    return buf_.data() + header().data_offset() + block_idx * BlockBytes();
  }

  uint64_t finalized_ = 0;        // values packed into buf_
  std::vector<Lane> pending_;     // tail not yet forming a complete block
  bool finalized_stream_ = false;
};

}  // namespace tde

#endif  // TDE_ENCODING_STREAM_H_
