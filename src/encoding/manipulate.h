#ifndef TDE_ENCODING_MANIPULATE_H_
#define TDE_ENCODING_MANIPULATE_H_

#include <functional>
#include <memory>
#include <vector>

#include "src/encoding/stream.h"

namespace tde {

/// Encoding manipulations (Sect. 3.4): fast header edits that change the
/// semantics of an entire column independent of the number of rows. The
/// unifying principle is that lightweight compression makes it easy to
/// transform the whole compressed data set in semantically meaningful ways.

/// Type narrowing (Sect. 3.4.1). Rewrites the header of a serialized
/// frame-of-reference, dictionary or affine stream in place so that its
/// element width is the minimum that represents the value envelope:
///   - frame-of-reference: envelope [frame, frame + 2^bits - 1], O(1);
///   - affine: endpoints base and base + delta * (n - 1), O(1);
///   - dictionary: actual entry min/max, entries rewritten at the new
///     stride, O(2^bits) — independent of the column's row count.
/// The data offset is left untouched (it is stored in the header, so the
/// bit packing never moves). Delta and run-length streams are not amenable
/// (Sect. 3.4.1) and are returned unchanged; so are streams already at
/// minimum width. Returns the stream's (possibly new) element width.
Result<uint8_t> NarrowStreamWidth(std::vector<uint8_t>* buf,
                                  bool signed_values);

/// Rewrites every dictionary entry through `fn`, in place, O(entries).
/// This is the Sect. 3.4.3 primitive behind sorted heaps: replace each old
/// heap-offset token with its offset in a rebuilt sorted heap without
/// touching the (arbitrarily many) packed row indexes.
Status RemapDictEntries(std::vector<uint8_t>* buf,
                        const std::function<Lane(Lane)>& fn);

/// Decomposition of a run-length stream into a value stream and a count
/// stream (Sect. 3.4.1), so the narrowing/dictionary machinery can run on
/// the values alone and the stream can be rebuilt with the original counts.
struct RleDecomposition {
  std::vector<Lane> values;
  std::vector<uint64_t> counts;
};
Result<RleDecomposition> DecomposeRle(const EncodedStream& stream);

/// Rebuilds a run-length stream from (possibly transformed) values and the
/// original counts.
Result<std::unique_ptr<EncodedStream>> RebuildRle(
    const RleDecomposition& parts, uint8_t width, bool sign_extend);

/// Encoding-becomes-compression (Sect. 3.4.3) for scalar columns: converts
/// a dictionary-*encoded* stream into (dictionary values, token stream)
/// where tokens are dense indexes 0..n-1 at minimal width. The returned
/// dictionary is sorted and tokens remapped accordingly, so the resulting
/// compressed column has comparable, distinct, minimal-width tokens.
struct DictCompression {
  /// The compression dictionary: sorted distinct values.
  std::vector<Lane> dictionary;
  /// The main column rewritten as indexes into `dictionary`.
  std::unique_ptr<EncodedStream> tokens;
};
Result<DictCompression> EncodingToCompression(const EncodedStream& stream,
                                              bool signed_values);

/// The frame-of-reference variant of encoding-becomes-compression
/// (Sect. 3.4.3, sketched as future work in the paper): the frame value
/// and bit width define the outer envelope of values, so a *sorted* scalar
/// dictionary {frame, frame+1, ..., frame + 2^bits - 1} can be generated
/// directly and the packed values become its unsigned tokens — a header
/// edit, no row data touched. Caveat (the paper's): the dictionary may
/// contain values that are not actually present in the column. Rejected
/// when 2^bits exceeds the dictionary limit.
Result<DictCompression> ForToCompression(const EncodedStream& stream);

}  // namespace tde

#endif  // TDE_ENCODING_MANIPULATE_H_
