#include "src/encoding/stats.h"

#include <limits>

#include "src/common/bitutil.h"
#include "src/encoding/bitpack.h"

namespace tde {

namespace {
constexpr uint64_t kImpossible = std::numeric_limits<uint64_t>::max();

uint64_t BlocksFor(uint64_t count) {
  return (count + kBlockSize - 1) / kBlockSize;
}
}  // namespace

EncodingStats::EncodingStats() { distinct_.reserve(256); }

void EncodingStats::Update(const Lane* values, size_t count) {
  for (size_t i = 0; i < count; ++i) {
    const Lane v = values[i];
    if (v == kNullSentinel) ++nulls_;
    if (count_ == 0) {
      min_ = max_ = first_ = v;
      runs_ = 1;
      cur_run_ = 1;
      max_run_ = 1;
    } else {
      if (v < min_) min_ = v;
      if (v > max_) max_ = v;
      const __int128 delta =
          static_cast<__int128>(v) - static_cast<__int128>(prev_);
      if (count_ == 1) {
        min_delta_ = max_delta_ = delta;
      } else {
        if (delta < min_delta_) min_delta_ = delta;
        if (delta > max_delta_) max_delta_ = delta;
      }
      if (v == prev_) {
        ++cur_run_;
      } else {
        ++runs_;
        cur_run_ = 1;
      }
      if (cur_run_ > max_run_) max_run_ = cur_run_;
    }
    if (distinct_tracking_) {
      distinct_.insert(v);
      if (distinct_.size() > kMaxDictEntries) {
        distinct_tracking_ = false;
        distinct_.clear();
      }
    }
    prev_ = v;
    ++count_;
  }
}

uint64_t EncodingStats::EstimateSize(EncodingType type, uint8_t width) const {
  const uint64_t blocks = BlocksFor(count_);
  switch (type) {
    case EncodingType::kUncompressed:
      return 24 + blocks * kBlockSize * width;
    case EncodingType::kFrameOfReference: {
      const uint64_t range =
          static_cast<uint64_t>(max_) - static_cast<uint64_t>(min_);
      const uint8_t bits = BitsFor(range);
      return 32 + blocks * PackedBytes(kBlockSize, bits);
    }
    case EncodingType::kDelta: {
      if (count_ < 2) return 32 + blocks * (8 + PackedBytes(kBlockSize, 0));
      const __int128 drange = max_delta_ - min_delta_;
      if (drange > static_cast<__int128>(
                       std::numeric_limits<uint64_t>::max())) {
        return kImpossible;
      }
      // The minimum delta is stored in an 8-byte header field (Fig. 1).
      if (min_delta_ < std::numeric_limits<int64_t>::min() ||
          min_delta_ > std::numeric_limits<int64_t>::max()) {
        return kImpossible;
      }
      const uint8_t bits = BitsFor(static_cast<uint64_t>(drange));
      return 32 + blocks * (8 + PackedBytes(kBlockSize, bits));
    }
    case EncodingType::kDictionary: {
      if (!distinct_tracking_ || distinct_.empty()) return kImpossible;
      const uint64_t card = distinct_.size();
      if (card > kMaxDictEntries) return kImpossible;
      uint8_t bits = BitsFor(card - 1);
      if (bits == 0) bits = 1;
      return 32 + width * (uint64_t{1} << bits) +
             blocks * PackedBytes(kBlockSize, bits);
    }
    case EncodingType::kAffine:
      if (count_ >= 2 && !constant_delta()) return kImpossible;
      if (count_ >= 2) {
        // base + row * delta must be exact in int64 for every row; the
        // tracked min/max already are, so only delta width can disqualify.
        const __int128 d = min_delta_;
        if (d < std::numeric_limits<int64_t>::min() ||
            d > std::numeric_limits<int64_t>::max()) {
          return kImpossible;
        }
      }
      return 40;
    case EncodingType::kRunLength: {
      const uint8_t count_width = MinUnsignedWidth(max_run_);
      const uint8_t value_width = MinSignedWidth(min_, max_);
      return 26 + run_count() * (count_width + value_width);
    }
    case EncodingType::kSegmented:
      // The container has no physical layout of its own; segments are
      // estimated individually.
      return kImpossible;
  }
  return kImpossible;
}

EncodingType EncodingStats::ChooseEncoding(uint8_t width,
                                           uint32_t allowed) const {
  // Preference order breaks ties toward the encodings with the most useful
  // downstream properties (affine => dense/unique, dictionary => domain).
  static constexpr EncodingType kOrder[] = {
      EncodingType::kAffine,     EncodingType::kDictionary,
      EncodingType::kFrameOfReference, EncodingType::kDelta,
      EncodingType::kRunLength,  EncodingType::kUncompressed,
  };
  EncodingType best = EncodingType::kUncompressed;
  uint64_t best_size = kImpossible;
  for (EncodingType t : kOrder) {
    if ((allowed & (1u << static_cast<int>(t))) == 0) continue;
    // Run-length encoding only makes sense when there are actual runs;
    // otherwise its apparent size advantage on tiny streams (everything
    // else pads to a complete decompression block) buys hostile access
    // patterns for nothing.
    if (t == EncodingType::kRunLength && run_count() * 2 > count_) continue;
    const uint64_t size = EstimateSize(t, width);
    if (size < best_size) {
      best = t;
      best_size = size;
    }
  }
  return best;
}

}  // namespace tde
