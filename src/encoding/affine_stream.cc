#include <memory>

#include "src/encoding/streams_internal.h"

namespace tde {
namespace internal {

std::unique_ptr<AffineStream> AffineStream::Make(uint8_t width, int64_t base,
                                                 int64_t delta) {
  auto s = std::unique_ptr<AffineStream>(new AffineStream());
  InitHeader(s->mutable_buffer(), EncodingType::kAffine, width, /*bits=*/0,
             /*sign_extend=*/false, kDeltaOffset + 8);
  HeaderView h(s->mutable_buffer());
  h.SetI64(kBaseOffset, base);
  h.SetI64(kDeltaOffset, delta);
  return s;
}

std::unique_ptr<AffineStream> AffineStream::FromBuffer(
    std::vector<uint8_t> buf) {
  auto s = std::unique_ptr<AffineStream>(new AffineStream());
  *s->mutable_buffer() = std::move(buf);
  s->finalized_ = s->header().logical_size();
  s->finalized_stream_ = true;
  return s;
}

Status AffineStream::CheckAppend(const Lane* values, size_t count) const {
  // value must equal base + row * delta for its row.
  const uint64_t b = static_cast<uint64_t>(base());
  const uint64_t d = static_cast<uint64_t>(delta());
  uint64_t row = size();
  for (size_t i = 0; i < count; ++i, ++row) {
    const uint64_t expect = b + row * d;
    if (static_cast<uint64_t>(values[i]) != expect) {
      return Status::OutOfRange("value breaks affine progression");
    }
  }
  return Status::OK();
}

void AffineStream::PackBlock(const Lane*) {
  // Affine streams carry no packed data (bits == 0); values are recomputed
  // as base + row * delta.
}

void AffineStream::DecodeBlock(uint64_t block_idx, Lane* out) const {
  const uint64_t b = static_cast<uint64_t>(base());
  const uint64_t d = static_cast<uint64_t>(delta());
  uint64_t row = block_idx * kBlockSize;
  for (uint32_t i = 0; i < kBlockSize; ++i, ++row) {
    out[i] = static_cast<Lane>(b + row * d);
  }
}

}  // namespace internal
}  // namespace tde
