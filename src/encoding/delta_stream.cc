#include <memory>

#include "src/encoding/bitpack.h"
#include "src/encoding/streams_internal.h"

namespace tde {
namespace internal {

std::unique_ptr<DeltaStream> DeltaStream::Make(uint8_t width,
                                               int64_t min_delta,
                                               uint8_t bits) {
  auto s = std::unique_ptr<DeltaStream>(new DeltaStream());
  InitHeader(s->mutable_buffer(), EncodingType::kDelta, width, bits,
             /*sign_extend=*/false, kMinDeltaOffset + 8);
  HeaderView(s->mutable_buffer()).SetI64(kMinDeltaOffset, min_delta);
  return s;
}

std::unique_ptr<DeltaStream> DeltaStream::FromBuffer(
    std::vector<uint8_t> buf) {
  auto s = std::unique_ptr<DeltaStream>(new DeltaStream());
  *s->mutable_buffer() = std::move(buf);
  s->finalized_ = s->header().logical_size();
  s->finalized_stream_ = true;
  return s;
}

size_t DeltaStream::BlockBytes() const {
  // 8-byte running total (the block's first value) + packed deltas.
  return 8 + PackedBytes(kBlockSize, bits());
}

Status DeltaStream::CheckAppend(const Lane* values, size_t count) const {
  const __int128 md = min_delta();
  const uint8_t b = bits();
  bool have_prev = have_last_;
  Lane prev = last_;
  for (size_t i = 0; i < count; ++i) {
    if (have_prev) {
      const __int128 delta =
          static_cast<__int128>(values[i]) - static_cast<__int128>(prev);
      const __int128 packed = delta - md;
      if (packed < 0 ||
          (b < 64 && packed >= (static_cast<__int128>(1) << b))) {
        return Status::OutOfRange("delta exceeds encoded range");
      }
    }
    prev = values[i];
    have_prev = true;
  }
  return Status::OK();
}

void DeltaStream::OnCommit(const Lane* values, size_t count) {
  if (count > 0) {
    last_ = values[count - 1];
    have_last_ = true;
  }
}

void DeltaStream::PackBlock(const Lane* values) {
  const int64_t md = min_delta();
  uint64_t packed[kBlockSize];
  packed[0] = 0;  // values[0] is stored raw as the running total
  for (uint32_t i = 1; i < kBlockSize; ++i) {
    const uint64_t delta =
        static_cast<uint64_t>(values[i]) - static_cast<uint64_t>(values[i - 1]);
    packed[i] = delta - static_cast<uint64_t>(md);
  }
  const size_t old = buf_.size();
  buf_.resize(old + BlockBytes());
  StoreBytes(buf_.data() + old, static_cast<uint64_t>(values[0]), 8);
  PackBits(packed, kBlockSize, bits(), buf_.data() + old + 8);
}

void DeltaStream::DecodeBlock(uint64_t block_idx, Lane* out) const {
  const uint64_t md = static_cast<uint64_t>(min_delta());
  const uint8_t* data = BlockData(block_idx);
  uint64_t packed[kBlockSize];
  UnpackBits(data + 8, kBlockSize, bits(), packed);
  uint64_t v = LoadUnsigned(data, 8);
  out[0] = static_cast<Lane>(v);
  for (uint32_t i = 1; i < kBlockSize; ++i) {
    v += md + packed[i];
    out[i] = static_cast<Lane>(v);
  }
}

}  // namespace internal
}  // namespace tde
