#ifndef TDE_ENCODING_METADATA_H_
#define TDE_ENCODING_METADATA_H_

#include <string>

#include "src/common/types.h"
#include "src/encoding/stats.h"

namespace tde {

/// Column-level metadata extracted from encoding statistics (Sect. 3.4.2).
/// These properties feed the tactical optimizer (fetch joins, hash choice,
/// ordered aggregation) and can be reported to the visualization client.
struct ColumnMetadata {
  /// Values are non-decreasing (delta encoding with min delta >= 0).
  bool sorted = false;
  /// Values are consecutive with step 1 (affine with delta 1): sorted,
  /// dense AND unique — the precondition of a fetch join (Sect. 2.3.5).
  bool dense = false;
  /// No value occurs twice (any non-zero constant delta, or cardinality
  /// equal to the row count).
  bool unique = false;

  bool min_max_known = false;
  int64_t min_value = 0;
  int64_t max_value = 0;

  bool cardinality_known = false;
  uint64_t cardinality = 0;

  /// NULL sentinel occurrence is known (and whether any were seen).
  bool null_known = false;
  bool has_nulls = false;

  /// Number of detected properties, for the Fig. 7 experiment: one each
  /// for min, max, cardinality, nullability, sorted, dense, unique.
  int DetectedCount() const;

  std::string ToString() const;
};

/// Derives metadata from the statistics the dynamic encoder gathered.
ColumnMetadata ExtractMetadata(const EncodingStats& stats);

}  // namespace tde

#endif  // TDE_ENCODING_METADATA_H_
