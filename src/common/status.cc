#include "src/common/status.h"

namespace tde {

namespace {
const char* CodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kNotImplemented:
      return "NotImplemented";
    case StatusCode::kIOError:
      return "IOError";
    case StatusCode::kParseError:
      return "ParseError";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kCapacityExceeded:
      return "CapacityExceeded";
  }
  return "Unknown";
}
}  // namespace

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string s = CodeName(code_);
  if (!msg_.empty()) {
    s += ": ";
    s += msg_;
  }
  return s;
}

}  // namespace tde
