#ifndef TDE_COMMON_TYPES_H_
#define TDE_COMMON_TYPES_H_

#include <cstdint>
#include <limits>
#include <string>

namespace tde {

/// The Tableau logical type model (Sect. 2.3.4 of the paper): Tableau only
/// distinguishes Boolean, integer, real, date, timestamp and collated
/// string. The engine is free to pick any physical representation.
enum class TypeId : uint8_t {
  kBool = 0,
  kInteger = 1,   // 64-bit signed at the logical level
  kReal = 2,      // IEEE double, stored as its raw 64-bit pattern
  kDate = 3,      // days since 1970-01-01, signed
  kDateTime = 4,  // seconds since epoch, signed
  kString = 5,    // token (offset or index) into a string heap/dictionary
};

/// Number of distinct TypeId values.
inline constexpr int kNumTypes = 6;

/// Block iteration size of the execution engine. Also the decompression
/// block size of every encoded stream (Sect. 3.1 requires a multiple of 32
/// so bit packing ends on a byte boundary; making them equal means one
/// decode call per iteration block).
inline constexpr uint32_t kBlockSize = 1024;

/// Dictionary encoding entry limit (Sect. 3.1.3): 2^15 keeps the dictionary
/// in cache and the cuckoo hash simple.
inline constexpr uint32_t kMaxDictEntries = 1u << 15;

/// All column values travel through the engine as 64-bit lanes. Integers,
/// dates and datetimes are sign-extended; reals are bit-cast doubles;
/// string tokens are zero-extended unsigned offsets/indexes.
using Lane = int64_t;

/// NULL is represented by a sentinel (the minimum of the physical domain),
/// as in the TDE. Nullability detection then falls out of min/max stats.
inline constexpr int64_t kNullSentinel = std::numeric_limits<int64_t>::min();

/// Three-way comparison of two reals under the engine's total order: NaN
/// (either sign, any payload) equals NaN and orders above every number,
/// including +inf. A plain `a < b` comparator is not a strict weak order
/// once NaN appears (NaN is "equal" to everything, breaking transitivity
/// and making std::sort undefined); every real comparison — predicates,
/// MIN/MAX, sorting — goes through this one definition so the engine and
/// the reference oracle cannot disagree. NULL is the callers' job: the
/// sentinel must be peeled off before the lanes are read as doubles.
inline int CompareReals(double a, double b) {
  const bool na = a != a;  // NaN is the only value that differs from itself
  const bool nb = b != b;
  if (na || nb) return na == nb ? 0 : (na ? 1 : -1);
  return a < b ? -1 : (a > b ? 1 : 0);
}

/// True for types whose lanes compare as signed integers.
bool IsSignedType(TypeId t);

/// Human-readable type name ("integer", "string", ...).
const char* TypeName(TypeId t);

/// Smallest power-of-two byte width (1, 2, 4, 8) that can represent every
/// signed value in [min_value, max_value].
uint8_t MinSignedWidth(int64_t min_value, int64_t max_value);

/// Smallest power-of-two byte width that can represent every unsigned value
/// in [0, max_value].
uint8_t MinUnsignedWidth(uint64_t max_value);

/// Formats a lane of the given type for display ("2024-05-01", "3.25", ...).
/// String lanes are formatted as their numeric token; callers that have the
/// heap should resolve tokens themselves.
std::string FormatLane(TypeId t, Lane v);

/// Civil-date helpers used by the date parsers, generators and roll-ups.
/// days <-> (year, month, day) with the proleptic Gregorian calendar.
int64_t DaysFromCivil(int y, unsigned m, unsigned d);
void CivilFromDays(int64_t z, int* y, unsigned* m, unsigned* d);

/// Roll a date (days since epoch) down to the first day of its month/year.
int64_t TruncateToMonth(int64_t days);
int64_t TruncateToYear(int64_t days);
/// Extract calendar fields from a date lane.
int DateYear(int64_t days);
int DateMonth(int64_t days);
int DateDay(int64_t days);

}  // namespace tde

#endif  // TDE_COMMON_TYPES_H_
