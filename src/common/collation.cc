#include "src/common/collation.h"

#include <algorithm>
#include <cstring>

namespace tde {

namespace {

// A tiny collation-element table: fold ASCII case and a few Latin-1
// accented code points. The point is not linguistic fidelity but a
// per-character table lookup cost comparable in shape to a real collator.
uint16_t CollationElement(unsigned char ch) {
  if (ch >= 'A' && ch <= 'Z') return static_cast<uint16_t>(ch - 'A' + 'a');
  // Latin-1 supplement accents folded to their base letter.
  if (ch >= 0xC0 && ch <= 0xC5) return 'a';
  if (ch >= 0xE0 && ch <= 0xE5) return 'a';
  if (ch >= 0xC8 && ch <= 0xCB) return 'e';
  if (ch >= 0xE8 && ch <= 0xEB) return 'e';
  return ch;
}

}  // namespace

int Collate(Collation c, std::string_view a, std::string_view b) {
  if (c == Collation::kBinary) {
    const int r = std::memcmp(a.data(), b.data(), std::min(a.size(), b.size()));
    if (r != 0) return r;
    return a.size() < b.size() ? -1 : (a.size() > b.size() ? 1 : 0);
  }
  // Locale collation: primary pass over folded elements, tie broken by a
  // secondary binary pass (so the order is total and deterministic).
  const size_t n = std::min(a.size(), b.size());
  for (size_t i = 0; i < n; ++i) {
    const uint16_t ea = CollationElement(static_cast<unsigned char>(a[i]));
    const uint16_t eb = CollationElement(static_cast<unsigned char>(b[i]));
    if (ea != eb) return ea < eb ? -1 : 1;
  }
  if (a.size() != b.size()) return a.size() < b.size() ? -1 : 1;
  const int r = std::memcmp(a.data(), b.data(), a.size());
  return r;
}

uint64_t CollationHash(Collation c, std::string_view s) {
  // FNV-1a over (folded) bytes.
  uint64_t h = 14695981039346656037ULL;
  for (char raw : s) {
    const unsigned char ch = static_cast<unsigned char>(raw);
    const uint16_t e =
        c == Collation::kBinary ? ch : CollationElement(ch);
    h ^= static_cast<uint64_t>(e & 0xFF);
    h *= 1099511628211ULL;
    h ^= static_cast<uint64_t>(e >> 8);
    h *= 1099511628211ULL;
  }
  return h;
}

}  // namespace tde
