#ifndef TDE_COMMON_STATUS_H_
#define TDE_COMMON_STATUS_H_

#include <string>
#include <utility>
#include <variant>

namespace tde {

/// Error categories used throughout the engine. Mirrors the Arrow/RocksDB
/// convention of status-code error handling: no exceptions cross an API
/// boundary.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kOutOfRange,       // value not representable in the current encoding
  kNotFound,
  kAlreadyExists,
  kNotImplemented,
  kIOError,
  kParseError,
  kInternal,
  kCapacityExceeded,  // e.g. dictionary encoding past its 2^15 entry limit
};

/// A success-or-error result with an optional message.
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string msg)
      : code_(code), msg_(std::move(msg)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status NotImplemented(std::string msg) {
    return Status(StatusCode::kNotImplemented, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status CapacityExceeded(std::string msg) {
    return Status(StatusCode::kCapacityExceeded, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return msg_; }

  /// Human-readable rendering, e.g. "OutOfRange: value 70000 needs 17 bits".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string msg_;
};

/// Either a value of type T or an error Status. Modeled on arrow::Result.
template <typename T>
class Result {
 public:
  Result(T value) : v_(std::move(value)) {}          // NOLINT(runtime/explicit)
  Result(Status status) : v_(std::move(status)) {}   // NOLINT(runtime/explicit)

  bool ok() const { return std::holds_alternative<T>(v_); }
  const Status& status() const {
    static const Status kOkStatus;
    if (ok()) return kOkStatus;
    return std::get<Status>(v_);
  }
  T& value() { return std::get<T>(v_); }
  const T& value() const { return std::get<T>(v_); }
  T&& MoveValue() { return std::move(std::get<T>(v_)); }

 private:
  std::variant<T, Status> v_;
};

}  // namespace tde

/// Propagate a non-OK Status to the caller.
#define TDE_RETURN_NOT_OK(expr)              \
  do {                                       \
    ::tde::Status _st = (expr);              \
    if (!_st.ok()) return _st;               \
  } while (0)

#define TDE_CONCAT_IMPL(x, y) x##y
#define TDE_CONCAT(x, y) TDE_CONCAT_IMPL(x, y)

/// Evaluate a Result-returning expression; on success bind the value to
/// `lhs`, otherwise propagate the error Status.
#define TDE_ASSIGN_OR_RETURN(lhs, rexpr)                      \
  auto TDE_CONCAT(_res_, __LINE__) = (rexpr);                 \
  if (!TDE_CONCAT(_res_, __LINE__).ok())                      \
    return TDE_CONCAT(_res_, __LINE__).status();              \
  lhs = TDE_CONCAT(_res_, __LINE__).MoveValue()

#endif  // TDE_COMMON_STATUS_H_
