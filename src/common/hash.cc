#include "src/common/hash.h"

#include <limits>

namespace tde {

namespace {
constexpr uint32_t kEmpty = std::numeric_limits<uint32_t>::max();
constexpr uint64_t kMaxPerfectSlots = uint64_t{1} << 24;
}  // namespace

const char* HashAlgorithmName(HashAlgorithm a) {
  switch (a) {
    case HashAlgorithm::kDirect:
      return "direct";
    case HashAlgorithm::kPerfect:
      return "perfect";
    case HashAlgorithm::kCollision:
      return "collision";
  }
  return "unknown";
}

HashAlgorithm ChooseHashAlgorithm(uint8_t width, bool range_known,
                                  int64_t min_value, int64_t max_value) {
  if (width <= 2) return HashAlgorithm::kDirect;
  if (width <= 4 && range_known) {
    const uint64_t slots =
        static_cast<uint64_t>(max_value) - static_cast<uint64_t>(min_value) + 1;
    if (slots <= kMaxPerfectSlots) return HashAlgorithm::kPerfect;
  }
  return HashAlgorithm::kCollision;
}

GroupMap::GroupMap(HashAlgorithm algorithm, int64_t min_value,
                   int64_t max_value)
    : algorithm_(algorithm), min_value_(min_value) {
  switch (algorithm_) {
    case HashAlgorithm::kDirect:
      min_value_ = 0;
      table_.assign(1u << 16, kEmpty);
      break;
    case HashAlgorithm::kPerfect: {
      const uint64_t slots = static_cast<uint64_t>(max_value) -
                             static_cast<uint64_t>(min_value) + 1;
      table_.assign(slots, kEmpty);
      break;
    }
    case HashAlgorithm::kCollision: {
      const uint64_t capacity = 1u << 10;
      slot_keys_.assign(capacity, 0);
      slot_groups_.assign(capacity, kEmpty);
      mask_ = capacity - 1;
      break;
    }
  }
}

uint32_t GroupMap::GetOrInsert(Lane key) {
  switch (algorithm_) {
    case HashAlgorithm::kDirect: {
      // Keys are at most 2 bytes wide; index by the low 16 bits.
      const uint32_t idx = static_cast<uint32_t>(key) & 0xFFFFu;
      uint32_t& slot = table_[idx];
      if (slot == kEmpty) {
        slot = static_cast<uint32_t>(keys_.size());
        keys_.push_back(key);
      }
      return slot;
    }
    case HashAlgorithm::kPerfect: {
      const uint64_t idx =
          static_cast<uint64_t>(key) - static_cast<uint64_t>(min_value_);
      uint32_t& slot = table_[idx];
      if (slot == kEmpty) {
        slot = static_cast<uint32_t>(keys_.size());
        keys_.push_back(key);
      }
      return slot;
    }
    case HashAlgorithm::kCollision: {
      if ((used_ + 1) * 2 > slot_groups_.size()) Grow();
      uint64_t idx = Mix64(static_cast<uint64_t>(key)) & mask_;
      while (slot_groups_[idx] != kEmpty) {
        if (slot_keys_[idx] == key) return slot_groups_[idx];
        ++collisions_;
        idx = (idx + 1) & mask_;
      }
      slot_keys_[idx] = key;
      slot_groups_[idx] = static_cast<uint32_t>(keys_.size());
      keys_.push_back(key);
      ++used_;
      return slot_groups_[idx];
    }
  }
  return kEmpty;
}

uint32_t GroupMap::Find(Lane key) const {
  switch (algorithm_) {
    case HashAlgorithm::kDirect: {
      // Inserted keys are at most 2 bytes wide, but probe keys may be
      // arbitrary 64-bit lanes (e.g. the null sentinel): verify the stored
      // key so wide probes that alias in the low 16 bits do not match.
      const uint32_t g = table_[static_cast<uint32_t>(key) & 0xFFFFu];
      if (g == kEmpty || keys_[g] != key) return kEmpty;
      return g;
    }
    case HashAlgorithm::kPerfect: {
      const uint64_t idx =
          static_cast<uint64_t>(key) - static_cast<uint64_t>(min_value_);
      if (idx >= table_.size()) return kEmpty;
      return table_[idx];
    }
    case HashAlgorithm::kCollision: {
      uint64_t idx = Mix64(static_cast<uint64_t>(key)) & mask_;
      while (slot_groups_[idx] != kEmpty) {
        if (slot_keys_[idx] == key) return slot_groups_[idx];
        ++collisions_;
        idx = (idx + 1) & mask_;
      }
      return kEmpty;
    }
  }
  return kEmpty;
}

void GroupMap::Grow() {
  const uint64_t capacity = slot_groups_.size() * 2;
  std::vector<Lane> old_keys = std::move(slot_keys_);
  std::vector<uint32_t> old_groups = std::move(slot_groups_);
  slot_keys_.assign(capacity, 0);
  slot_groups_.assign(capacity, kEmpty);
  mask_ = capacity - 1;
  for (size_t i = 0; i < old_groups.size(); ++i) {
    if (old_groups[i] == kEmpty) continue;
    uint64_t idx = Mix64(static_cast<uint64_t>(old_keys[i])) & mask_;
    while (slot_groups_[idx] != kEmpty) idx = (idx + 1) & mask_;
    slot_keys_[idx] = old_keys[i];
    slot_groups_[idx] = old_groups[i];
  }
}

}  // namespace tde
