#ifndef TDE_COMMON_BITUTIL_H_
#define TDE_COMMON_BITUTIL_H_

#include <cstdint>
#include <cstring>

namespace tde {

/// Number of bits needed to represent the unsigned value v (0 needs 0 bits).
inline uint8_t BitsFor(uint64_t v) {
  uint8_t bits = 0;
  while (v != 0) {
    ++bits;
    v >>= 1;
  }
  return bits;
}

/// Little-endian load of `width` bytes (1, 2, 4 or 8), zero-extended.
inline uint64_t LoadUnsigned(const uint8_t* p, uint8_t width) {
  uint64_t v = 0;
  std::memcpy(&v, p, width);
  return v;
}

/// Little-endian load of `width` bytes, sign-extended to int64.
inline int64_t LoadSigned(const uint8_t* p, uint8_t width) {
  uint64_t v = LoadUnsigned(p, width);
  const unsigned shift = 64 - 8u * width;
  return static_cast<int64_t>(v << shift) >> shift;
}

/// Little-endian store of the low `width` bytes of v.
inline void StoreBytes(uint8_t* p, uint64_t v, uint8_t width) {
  std::memcpy(p, &v, width);
}

/// True if the signed value fits in `width` bytes.
inline bool FitsSigned(int64_t v, uint8_t width) {
  if (width >= 8) return true;
  const int64_t lo = -(int64_t{1} << (8 * width - 1));
  const int64_t hi = (int64_t{1} << (8 * width - 1)) - 1;
  return v >= lo && v <= hi;
}

/// True if the unsigned value fits in `width` bytes.
inline bool FitsUnsigned(uint64_t v, uint8_t width) {
  if (width >= 8) return true;
  return v < (uint64_t{1} << (8 * width));
}

/// Round x up to the next multiple of m (m > 0).
inline uint64_t RoundUp(uint64_t x, uint64_t m) { return (x + m - 1) / m * m; }

}  // namespace tde

#endif  // TDE_COMMON_BITUTIL_H_
