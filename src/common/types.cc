#include "src/common/types.h"

#include <bit>
#include <cstdio>

namespace tde {

bool IsSignedType(TypeId t) {
  switch (t) {
    case TypeId::kInteger:
    case TypeId::kDate:
    case TypeId::kDateTime:
    case TypeId::kReal:
      return true;
    case TypeId::kBool:
    case TypeId::kString:
      return false;
  }
  return true;
}

const char* TypeName(TypeId t) {
  switch (t) {
    case TypeId::kBool:
      return "boolean";
    case TypeId::kInteger:
      return "integer";
    case TypeId::kReal:
      return "real";
    case TypeId::kDate:
      return "date";
    case TypeId::kDateTime:
      return "datetime";
    case TypeId::kString:
      return "string";
  }
  return "unknown";
}

uint8_t MinSignedWidth(int64_t min_value, int64_t max_value) {
  if (min_value >= std::numeric_limits<int8_t>::min() &&
      max_value <= std::numeric_limits<int8_t>::max()) {
    return 1;
  }
  if (min_value >= std::numeric_limits<int16_t>::min() &&
      max_value <= std::numeric_limits<int16_t>::max()) {
    return 2;
  }
  if (min_value >= std::numeric_limits<int32_t>::min() &&
      max_value <= std::numeric_limits<int32_t>::max()) {
    return 4;
  }
  return 8;
}

uint8_t MinUnsignedWidth(uint64_t max_value) {
  if (max_value <= std::numeric_limits<uint8_t>::max()) return 1;
  if (max_value <= std::numeric_limits<uint16_t>::max()) return 2;
  if (max_value <= std::numeric_limits<uint32_t>::max()) return 4;
  return 8;
}

std::string FormatLane(TypeId t, Lane v) {
  char buf[64];
  if (v == kNullSentinel) return "NULL";
  switch (t) {
    case TypeId::kBool:
      return v ? "true" : "false";
    case TypeId::kInteger:
    case TypeId::kString:
      std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v));
      return buf;
    case TypeId::kReal: {
      double d = std::bit_cast<double>(static_cast<uint64_t>(v));
      std::snprintf(buf, sizeof(buf), "%g", d);
      return buf;
    }
    case TypeId::kDate: {
      int y;
      unsigned m, d;
      CivilFromDays(v, &y, &m, &d);
      std::snprintf(buf, sizeof(buf), "%04d-%02u-%02u", y, m, d);
      return buf;
    }
    case TypeId::kDateTime: {
      int64_t days = v / 86400;
      int64_t secs = v % 86400;
      if (secs < 0) {
        secs += 86400;
        --days;
      }
      int y;
      unsigned m, d;
      CivilFromDays(days, &y, &m, &d);
      std::snprintf(buf, sizeof(buf), "%04d-%02u-%02u %02lld:%02lld:%02lld", y,
                    m, d, static_cast<long long>(secs / 3600),
                    static_cast<long long>((secs / 60) % 60),
                    static_cast<long long>(secs % 60));
      return buf;
    }
  }
  return "?";
}

// Howard Hinnant's proleptic Gregorian algorithms.
int64_t DaysFromCivil(int y, unsigned m, unsigned d) {
  y -= m <= 2;
  const int64_t era = (y >= 0 ? y : y - 399) / 400;
  const unsigned yoe = static_cast<unsigned>(y - era * 400);            // [0, 399]
  const unsigned doy = (153 * (m + (m > 2 ? -3 : 9)) + 2) / 5 + d - 1;  // [0, 365]
  const unsigned doe = yoe * 365 + yoe / 4 - yoe / 100 + doy;           // [0, 146096]
  return era * 146097 + static_cast<int64_t>(doe) - 719468;
}

void CivilFromDays(int64_t z, int* y, unsigned* m, unsigned* d) {
  z += 719468;
  const int64_t era = (z >= 0 ? z : z - 146096) / 146097;
  const unsigned doe = static_cast<unsigned>(z - era * 146097);  // [0, 146096]
  const unsigned yoe =
      (doe - doe / 1460 + doe / 36524 - doe / 146096) / 365;  // [0, 399]
  const int64_t yy = static_cast<int64_t>(yoe) + era * 400;
  const unsigned doy = doe - (365 * yoe + yoe / 4 - yoe / 100);  // [0, 365]
  const unsigned mp = (5 * doy + 2) / 153;                       // [0, 11]
  *d = doy - (153 * mp + 2) / 5 + 1;                             // [1, 31]
  *m = mp + (mp < 10 ? 3 : -9);                                  // [1, 12]
  *y = static_cast<int>(yy + (*m <= 2));
}

int64_t TruncateToMonth(int64_t days) {
  int y;
  unsigned m, d;
  CivilFromDays(days, &y, &m, &d);
  return DaysFromCivil(y, m, 1);
}

int64_t TruncateToYear(int64_t days) {
  int y;
  unsigned m, d;
  CivilFromDays(days, &y, &m, &d);
  return DaysFromCivil(y, 1, 1);
}

int DateYear(int64_t days) {
  int y;
  unsigned m, d;
  CivilFromDays(days, &y, &m, &d);
  return y;
}

int DateMonth(int64_t days) {
  int y;
  unsigned m, d;
  CivilFromDays(days, &y, &m, &d);
  return static_cast<int>(m);
}

int DateDay(int64_t days) {
  int y;
  unsigned m, d;
  CivilFromDays(days, &y, &m, &d);
  return static_cast<int>(d);
}

}  // namespace tde
