#ifndef TDE_COMMON_HASH_H_
#define TDE_COMMON_HASH_H_

#include <cstdint>
#include <vector>

#include "src/common/types.h"

namespace tde {

/// The TDE's tactical hash family (Sect. 2.3.4): keys of 1-2 bytes use a
/// direct 64K-element table; 3-4 byte keys with a known range use a perfect
/// hash (index = value - min); anything wider needs a general hash with
/// collision detection.
enum class HashAlgorithm : uint8_t {
  kDirect = 0,
  kPerfect = 1,
  kCollision = 2,
};

const char* HashAlgorithmName(HashAlgorithm a);

/// Tactical choice of hash algorithm for a single key column.
///
/// `width` is the physical byte width of the key (after any narrowing).
/// If [min_value, max_value] is known (range_known), a perfect hash can be
/// built whenever the range has at most 2^24 slots.
HashAlgorithm ChooseHashAlgorithm(uint8_t width, bool range_known,
                                  int64_t min_value, int64_t max_value);

/// 64-bit finalizing mix (splitmix64) used by collision hash tables.
inline uint64_t Mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// Maps key lanes to dense group ids [0, group_count) using whichever of the
/// three algorithms the tactical optimizer selected. This is the shared
/// grouping kernel behind hash aggregation and hash join builds.
class GroupMap {
 public:
  /// For kDirect the table is always 65536 entries; for kPerfect it spans
  /// [min_value, max_value]; min/max are ignored for kCollision.
  GroupMap(HashAlgorithm algorithm, int64_t min_value, int64_t max_value);

  /// Returns the group id for `key`, assigning the next id if unseen.
  uint32_t GetOrInsert(Lane key);

  /// Returns the group id for `key` or UINT32_MAX if absent (no insertion).
  uint32_t Find(Lane key) const;

  uint32_t group_count() const { return static_cast<uint32_t>(keys_.size()); }
  HashAlgorithm algorithm() const { return algorithm_; }

  /// The distinct keys in insertion (group-id) order.
  const std::vector<Lane>& keys() const { return keys_; }

  /// Number of probe collisions observed (always 0 for direct/perfect);
  /// exposed so benchmarks can show the cost the tactical choice avoids.
  uint64_t collisions() const { return collisions_; }

 private:
  void Grow();

  HashAlgorithm algorithm_;
  int64_t min_value_ = 0;
  // Direct/perfect: slot per possible key value, UINT32_MAX = empty.
  std::vector<uint32_t> table_;
  // Collision: open addressing over (key, group) slots.
  std::vector<Lane> slot_keys_;
  std::vector<uint32_t> slot_groups_;
  uint64_t mask_ = 0;
  uint64_t used_ = 0;
  mutable uint64_t collisions_ = 0;
  std::vector<Lane> keys_;
};

}  // namespace tde

#endif  // TDE_COMMON_HASH_H_
