#ifndef TDE_COMMON_COLLATION_H_
#define TDE_COMMON_COLLATION_H_

#include <cstdint>
#include <string_view>

namespace tde {

/// String collations. Unlike most column stores, the TDE must implement
/// locale-sensitive collations (Sect. 2.3.4), which are far more expensive
/// than binary comparison — that cost is exactly what sorted heaps with
/// directly-comparable tokens avoid. We model a locale collation with a
/// case-insensitive, accent-folding comparison that, like ICU, walks both
/// strings computing collation elements.
enum class Collation : uint8_t {
  kBinary = 0,
  kLocale = 1,
};

/// Three-way comparison under the collation (<0, 0, >0).
int Collate(Collation c, std::string_view a, std::string_view b);

/// Collation-consistent hash: equal strings under the collation hash alike.
uint64_t CollationHash(Collation c, std::string_view s);

}  // namespace tde

#endif  // TDE_COMMON_COLLATION_H_
