#include "src/testing/reference.h"

#include <algorithm>
#include <bit>
#include <cctype>
#include <set>
#include <utility>

#include "src/common/collation.h"

namespace tde {
namespace testing {
namespace {

RefValue NullOf(TypeId t) {
  RefValue v;
  v.type = t;
  v.null = true;
  return v;
}

RefValue BoolVal(bool b) {
  RefValue v;
  v.type = TypeId::kBool;
  v.null = false;
  v.i = b ? 1 : 0;
  return v;
}

RefValue IntVal(TypeId t, int64_t x) {
  RefValue v;
  v.type = t;
  v.null = false;
  v.i = x;
  return v;
}

RefValue RealVal(double d) {
  RefValue v;
  v.type = TypeId::kReal;
  v.null = false;
  v.d = d;
  return v;
}

RefValue StrVal(std::string s) {
  RefValue v;
  v.type = TypeId::kString;
  v.null = false;
  v.s = std::move(s);
  return v;
}

double AsDouble(const RefValue& v) {
  return v.type == TypeId::kReal ? v.d : static_cast<double>(v.i);
}

/// Mirrors the engine's boolean consumption: connectives and filters treat
/// a lane as true iff it equals 1; a NULL lane is never 1, so NULL acts as
/// false. Reals mirror the raw-lane check bit for bit; strings are tokens
/// in the engine and are never meaningfully truthy.
bool Truthy(const RefValue& v) {
  if (v.null) return false;
  if (v.type == TypeId::kReal) {
    return std::bit_cast<int64_t>(v.d) == 1;
  }
  if (v.type == TypeId::kString) return false;
  return v.i == 1;
}

size_t CodePointLen(unsigned char lead) {
  if (lead < 0x80) return 1;
  if ((lead >> 5) == 0x6) return 2;
  if ((lead >> 4) == 0xe) return 3;
  if ((lead >> 3) == 0x1e) return 4;
  return 1;  // stray continuation byte: treat as one character
}

bool CodePointEq(std::string_view a, size_t alen, std::string_view b,
                 size_t blen, bool fold_case) {
  if (alen == 1 && blen == 1) {
    if (!fold_case) return a[0] == b[0];
    return std::tolower(static_cast<unsigned char>(a[0])) ==
           std::tolower(static_cast<unsigned char>(b[0]));
  }
  return alen == blen && a.substr(0, alen) == b.substr(0, blen);
}

}  // namespace

bool ReferenceLikeMatch(std::string_view s, std::string_view p,
                        bool fold_case) {
  if (p.empty()) return s.empty();
  const unsigned char pc = static_cast<unsigned char>(p[0]);
  if (pc == '%') {
    // Any run of characters: try every code point boundary, including the
    // end of the string.
    size_t i = 0;
    while (true) {
      if (ReferenceLikeMatch(s.substr(i), p.substr(1), fold_case)) {
        return true;
      }
      if (i >= s.size()) return false;
      i += CodePointLen(static_cast<unsigned char>(s[i]));
    }
  }
  if (s.empty()) return false;
  const size_t slen = CodePointLen(static_cast<unsigned char>(s[0]));
  if (pc == '_') {
    return ReferenceLikeMatch(s.substr(slen), p.substr(1), fold_case);
  }
  const size_t plen = CodePointLen(pc);
  if (!CodePointEq(p, plen, s, slen, fold_case)) return false;
  return ReferenceLikeMatch(s.substr(slen), p.substr(plen), fold_case);
}

int CompareRefValues(const RefValue& a, const RefValue& b) {
  if (a.type == TypeId::kString || b.type == TypeId::kString) {
    return Collate(Collation::kLocale, a.s, b.s);
  }
  if (a.type == TypeId::kReal || b.type == TypeId::kReal) {
    // Same total order as the engine (CompareReals): NaN equals NaN and
    // sorts above every number, so NaN-seeded data cannot produce a
    // comparator that is not a strict weak ordering on either side.
    return CompareReals(AsDouble(a), AsDouble(b));
  }
  return a.i < b.i ? -1 : (a.i > b.i ? 1 : 0);
}

std::string RefValueString(const RefValue& v) {
  if (v.null) return "NULL";
  if (v.type == TypeId::kString) return v.s;
  if (v.type == TypeId::kReal) {
    return FormatLane(TypeId::kReal,
                      static_cast<Lane>(std::bit_cast<uint64_t>(v.d)));
  }
  return FormatLane(v.type, v.i);
}

namespace {

using Row = std::vector<RefValue>;

Status OracleError(const std::string& what) {
  return Status::InvalidArgument("reference interpreter: " + what);
}

Result<size_t> FieldIndex(const std::vector<RefField>& fields,
                          const std::string& name) {
  for (size_t i = 0; i < fields.size(); ++i) {
    if (fields[i].name == name) return i;
  }
  return {OracleError("unknown column '" + name + "'")};
}

/// Row-at-a-time expression evaluation mirroring the documented engine
/// semantics (see DESIGN.md, "The reference semantics contract").
Result<RefValue> EvalExpr(const ExprPtr& e, const std::vector<RefField>& fields,
                          const Row& row) {
  // Column reference.
  if (const std::string* name = e->AsColumnRef()) {
    TDE_ASSIGN_OR_RETURN(size_t i, FieldIndex(fields, *name));
    return row[i];
  }
  // String literal.
  if (const std::string* text = e->AsStringLiteral()) {
    return StrVal(*text);
  }
  // Scalar literal.
  {
    TypeId t;
    Lane v;
    if (e->AsLiteral(&t, &v)) {
      if (v == kNullSentinel) return NullOf(t);
      if (t == TypeId::kReal) {
        return RealVal(std::bit_cast<double>(static_cast<uint64_t>(v)));
      }
      return IntVal(t, v);
    }
  }
  const std::vector<ExprPtr> kids = e->Children();
  // Comparison: NULL on either side is false; strings collate; a real on
  // either side promotes to double.
  {
    CompareOp op;
    if (e->AsCompare(&op)) {
      TDE_ASSIGN_OR_RETURN(RefValue l, EvalExpr(kids[0], fields, row));
      TDE_ASSIGN_OR_RETURN(RefValue r, EvalExpr(kids[1], fields, row));
      if (l.null || r.null) return BoolVal(false);
      if ((l.type == TypeId::kString) != (r.type == TypeId::kString)) {
        return {OracleError("comparison between string and non-string")};
      }
      const int cmp = CompareRefValues(l, r);
      switch (op) {
        case CompareOp::kEq: return BoolVal(cmp == 0);
        case CompareOp::kNe: return BoolVal(cmp != 0);
        case CompareOp::kLt: return BoolVal(cmp < 0);
        case CompareOp::kLe: return BoolVal(cmp <= 0);
        case CompareOp::kGt: return BoolVal(cmp > 0);
        case CompareOp::kGe: return BoolVal(cmp >= 0);
      }
      return BoolVal(false);
    }
  }
  // Arithmetic: NULL propagates; division/modulo by zero is NULL; integer
  // ops wrap two's-complement; a real operand promotes the result.
  {
    ArithOp op;
    if (e->AsArith(&op)) {
      TDE_ASSIGN_OR_RETURN(RefValue l, EvalExpr(kids[0], fields, row));
      TDE_ASSIGN_OR_RETURN(RefValue r, EvalExpr(kids[1], fields, row));
      if (l.type == TypeId::kString || r.type == TypeId::kString) {
        return {OracleError("arithmetic over strings")};
      }
      const bool real = l.type == TypeId::kReal || r.type == TypeId::kReal;
      const TypeId out = real ? TypeId::kReal : TypeId::kInteger;
      if (l.null || r.null) return NullOf(out);
      if (real) {
        const double a = AsDouble(l);
        const double b = AsDouble(r);
        switch (op) {
          case ArithOp::kAdd: return RealVal(a + b);
          case ArithOp::kSub: return RealVal(a - b);
          case ArithOp::kMul: return RealVal(a * b);
          case ArithOp::kDiv:
            return b == 0 ? NullOf(out) : RealVal(a / b);
          case ArithOp::kMod: return NullOf(out);
        }
        return NullOf(out);
      }
      const uint64_t a = static_cast<uint64_t>(l.i);
      const uint64_t b = static_cast<uint64_t>(r.i);
      switch (op) {
        case ArithOp::kAdd: return IntVal(out, static_cast<int64_t>(a + b));
        case ArithOp::kSub: return IntVal(out, static_cast<int64_t>(a - b));
        case ArithOp::kMul: return IntVal(out, static_cast<int64_t>(a * b));
        case ArithOp::kDiv:
          return r.i == 0 ? NullOf(out) : IntVal(out, l.i / r.i);
        case ArithOp::kMod:
          return r.i == 0 ? NullOf(out) : IntVal(out, l.i % r.i);
      }
      return NullOf(out);
    }
  }
  // Connectives, IS NULL, IN.
  switch (e->Shape()) {
    case ExprShape::kAnd:
    case ExprShape::kOr: {
      TDE_ASSIGN_OR_RETURN(RefValue l, EvalExpr(kids[0], fields, row));
      TDE_ASSIGN_OR_RETURN(RefValue r, EvalExpr(kids[1], fields, row));
      const bool a = Truthy(l);
      const bool b = Truthy(r);
      return BoolVal(e->Shape() == ExprShape::kAnd ? (a && b) : (a || b));
    }
    case ExprShape::kNot: {
      TDE_ASSIGN_OR_RETURN(RefValue v, EvalExpr(kids[0], fields, row));
      // Two-valued: NOT of anything that is not exactly TRUE is TRUE —
      // NOT (x < NULL) is TRUE under the sentinel model.
      return BoolVal(!Truthy(v));
    }
    case ExprShape::kIsNull: {
      TDE_ASSIGN_OR_RETURN(RefValue v, EvalExpr(kids[0], fields, row));
      return BoolVal(v.null);
    }
    case ExprShape::kIn: {
      TDE_ASSIGN_OR_RETURN(RefValue in, EvalExpr(kids[0], fields, row));
      if (in.null) return BoolVal(false);  // NULL never matches
      for (size_t k = 1; k < kids.size(); ++k) {
        TDE_ASSIGN_OR_RETURN(RefValue v, EvalExpr(kids[k], fields, row));
        if (v.null) continue;
        if ((in.type == TypeId::kString) != (v.type == TypeId::kString)) {
          return {OracleError("IN between string and non-string")};
        }
        if (CompareRefValues(in, v) == 0) return BoolVal(true);
      }
      return BoolVal(false);
    }
    default:
      break;
  }
  // LIKE.
  if (const std::string* pattern = e->AsLikePattern()) {
    TDE_ASSIGN_OR_RETURN(RefValue v, EvalExpr(kids[0], fields, row));
    if (v.type != TypeId::kString) {
      return {OracleError("LIKE over non-string input")};
    }
    if (v.null) return BoolVal(false);
    // Locale collation folds case; every heap in this engine collates
    // locale by default.
    return BoolVal(ReferenceLikeMatch(v.s, *pattern, /*fold_case=*/true));
  }
  // Date functions.
  {
    DateFunc f;
    if (e->AsDateFunc(&f)) {
      TDE_ASSIGN_OR_RETURN(RefValue v, EvalExpr(kids[0], fields, row));
      const TypeId out =
          (f == DateFunc::kTruncMonth || f == DateFunc::kTruncYear)
              ? TypeId::kDate
              : TypeId::kInteger;
      if (v.null) return NullOf(out);
      switch (f) {
        case DateFunc::kYear: return IntVal(out, DateYear(v.i));
        case DateFunc::kMonth: return IntVal(out, DateMonth(v.i));
        case DateFunc::kDay: return IntVal(out, DateDay(v.i));
        case DateFunc::kTruncMonth: return IntVal(out, TruncateToMonth(v.i));
        case DateFunc::kTruncYear: return IntVal(out, TruncateToYear(v.i));
      }
      return NullOf(out);
    }
  }
  // String functions.
  {
    StrFunc f;
    if (e->AsStrFunc(&f)) {
      TDE_ASSIGN_OR_RETURN(RefValue v, EvalExpr(kids[0], fields, row));
      if (v.type != TypeId::kString) {
        return {OracleError("string function over non-string input")};
      }
      const TypeId out =
          f == StrFunc::kLength ? TypeId::kInteger : TypeId::kString;
      if (v.null) return NullOf(out);
      switch (f) {
        case StrFunc::kLength:
          return IntVal(out, static_cast<int64_t>(v.s.size()));
        case StrFunc::kUpper: {
          std::string t = v.s;
          std::transform(t.begin(), t.end(), t.begin(), [](char c) {
            return static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
          });
          return StrVal(std::move(t));
        }
        case StrFunc::kLower: {
          std::string t = v.s;
          std::transform(t.begin(), t.end(), t.begin(), [](char c) {
            return static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
          });
          return StrVal(std::move(t));
        }
        case StrFunc::kExtension: {
          std::string t = v.s;
          const size_t dot = t.rfind('.');
          const size_t slash = t.rfind('/');
          if (dot == std::string::npos ||
              (slash != std::string::npos && dot < slash)) {
            t.clear();
          } else {
            t = t.substr(dot + 1);
            const size_t q = t.find('?');
            if (q != std::string::npos) t.resize(q);
          }
          return StrVal(std::move(t));
        }
      }
      return NullOf(out);
    }
  }
  // CASE: every branch evaluates (errors in untaken branches propagate,
  // as in the block-at-a-time engine); the first true condition wins.
  {
    size_t nbranches;
    bool has_else;
    if (e->AsCase(&nbranches, &has_else)) {
      std::vector<RefValue> conds(nbranches), vals(nbranches);
      for (size_t b = 0; b < nbranches; ++b) {
        TDE_ASSIGN_OR_RETURN(conds[b], EvalExpr(kids[2 * b], fields, row));
        TDE_ASSIGN_OR_RETURN(vals[b], EvalExpr(kids[2 * b + 1], fields, row));
      }
      RefValue other = NullOf(vals.empty() ? TypeId::kInteger : vals[0].type);
      if (has_else) {
        TDE_ASSIGN_OR_RETURN(other, EvalExpr(kids.back(), fields, row));
      }
      for (size_t b = 0; b < nbranches; ++b) {
        if (Truthy(conds[b])) return vals[b];
      }
      return other;
    }
  }
  return {OracleError("unsupported expression: " + e->ToString())};
}

struct RefRelation {
  std::vector<RefField> fields;
  std::vector<Row> rows;
};

Schema ToSchema(const std::vector<RefField>& fields) {
  Schema s;
  for (const RefField& f : fields) s.AddField({f.name, f.type});
  return s;
}

/// Grouping/join-key comparator: NULL is one key value (grouped together,
/// below everything), then the reference value ordering.
struct KeyLess {
  bool operator()(const Row& a, const Row& b) const {
    for (size_t i = 0; i < a.size(); ++i) {
      if (a[i].null != b[i].null) return a[i].null;
      if (a[i].null) continue;
      const int cmp = CompareRefValues(a[i], b[i]);
      if (cmp != 0) return cmp < 0;
    }
    return false;
  }
};

struct AggAccum {
  uint64_t n = 0;
  __int128 sum_i = 0;
  double sum_d = 0;
  bool seen = false;
  RefValue best;                 // MIN/MAX champion
  std::vector<RefValue> values;  // MEDIAN
  std::set<RefValue, bool (*)(const RefValue&, const RefValue&)> distinct{
      [](const RefValue& a, const RefValue& b) {
        return CompareRefValues(a, b) < 0;
      }};
};

Status Accumulate(AggKind kind, TypeId in_type, const RefValue& v,
                  AggAccum* s) {
  if (kind == AggKind::kCountStar) {
    ++s->n;
    return Status::OK();
  }
  if (v.null) return Status::OK();  // aggregates ignore NULLs
  switch (kind) {
    case AggKind::kCountStar:
      break;
    case AggKind::kCount:
      ++s->n;
      break;
    case AggKind::kSum:
      if (in_type == TypeId::kReal) {
        s->sum_d += v.d;
      } else {
        s->sum_i += v.i;
        if (s->sum_i > INT64_MAX || s->sum_i < INT64_MIN) {
          return Status::OutOfRange(
              "integer overflow in SUM: result exceeds int64");
        }
      }
      ++s->n;
      break;
    case AggKind::kMin:
      if (!s->seen || CompareRefValues(v, s->best) < 0) s->best = v;
      s->seen = true;
      break;
    case AggKind::kMax:
      if (!s->seen || CompareRefValues(v, s->best) > 0) s->best = v;
      s->seen = true;
      break;
    case AggKind::kAvg:
      s->sum_d += AsDouble(v);
      ++s->n;
      break;
    case AggKind::kCountDistinct:
      s->distinct.insert(v);
      break;
    case AggKind::kMedian:
      s->values.push_back(v);
      break;
  }
  return Status::OK();
}

RefValue FinalizeAccum(AggKind kind, TypeId in_type, AggAccum* s) {
  const TypeId out = agg_internal::OutputType(kind, in_type);
  switch (kind) {
    case AggKind::kCountStar:
    case AggKind::kCount:
      return IntVal(out, static_cast<int64_t>(s->n));
    case AggKind::kSum:
      if (s->n == 0) return NullOf(out);
      return in_type == TypeId::kReal
                 ? RealVal(s->sum_d)
                 : IntVal(out, static_cast<int64_t>(s->sum_i));
    case AggKind::kMin:
    case AggKind::kMax:
      return s->seen ? s->best : NullOf(out);
    case AggKind::kAvg:
      return s->n == 0 ? NullOf(out)
                       : RealVal(s->sum_d / static_cast<double>(s->n));
    case AggKind::kCountDistinct:
      return IntVal(out, static_cast<int64_t>(s->distinct.size()));
    case AggKind::kMedian: {
      if (s->values.empty()) return NullOf(out);
      std::stable_sort(s->values.begin(), s->values.end(),
                       [](const RefValue& a, const RefValue& b) {
                         return CompareRefValues(a, b) < 0;
                       });
      return s->values[(s->values.size() - 1) / 2];  // lower median
    }
  }
  return NullOf(out);
}

Result<RefRelation> EvalPlan(const PlanNodePtr& node,
                             const std::map<std::string, const RefTable*>& tables);

Result<RefRelation> EvalScan(const PlanNode& node,
                             const std::map<std::string, const RefTable*>& tables) {
  if (!node.token_columns.empty() || !node.code_columns.empty()) {
    return {OracleError("scan carries rewrite-only column lists")};
  }
  if (node.table == nullptr) return {OracleError("scan without table")};
  const auto it = tables.find(node.table->name());
  if (it == tables.end()) {
    return {OracleError("no decoded table '" + node.table->name() + "'")};
  }
  const RefTable& t = *it->second;
  RefRelation out;
  if (node.columns.empty()) {
    out.fields = t.fields;
    out.rows = t.rows;
    return out;
  }
  std::vector<size_t> idx;
  for (const std::string& c : node.columns) {
    TDE_ASSIGN_OR_RETURN(size_t i, FieldIndex(t.fields, c));
    idx.push_back(i);
    out.fields.push_back(t.fields[i]);
  }
  out.rows.reserve(t.rows.size());
  for (const Row& r : t.rows) {
    Row slim;
    slim.reserve(idx.size());
    for (size_t i : idx) slim.push_back(r[i]);
    out.rows.push_back(std::move(slim));
  }
  return out;
}

Result<RefRelation> EvalAggregate(const PlanNode& node, RefRelation in) {
  if (node.metadata_answered || node.fold_runs) {
    return {OracleError("aggregate carries rewrite-only flags")};
  }
  const AggregateOptions& opt = node.agg;
  std::vector<size_t> key_idx;
  for (const std::string& k : opt.group_by) {
    TDE_ASSIGN_OR_RETURN(size_t i, FieldIndex(in.fields, k));
    key_idx.push_back(i);
  }
  std::vector<size_t> agg_idx(opt.aggs.size(), 0);
  std::vector<TypeId> agg_type(opt.aggs.size(), TypeId::kInteger);
  for (size_t a = 0; a < opt.aggs.size(); ++a) {
    if (opt.aggs[a].kind == AggKind::kCountStar) continue;
    TDE_ASSIGN_OR_RETURN(size_t i, FieldIndex(in.fields, opt.aggs[a].input));
    agg_idx[a] = i;
    agg_type[a] = in.fields[i].type;
  }

  std::map<Row, size_t, KeyLess> group_of;
  std::vector<Row> group_keys;                   // first-seen order
  std::vector<std::vector<AggAccum>> states;     // one per group
  for (const Row& r : in.rows) {
    Row key;
    key.reserve(key_idx.size());
    for (size_t i : key_idx) key.push_back(r[i]);
    auto [it, inserted] = group_of.try_emplace(key, group_keys.size());
    if (inserted) {
      group_keys.push_back(std::move(key));
      states.emplace_back(opt.aggs.size());
    }
    std::vector<AggAccum>& s = states[it->second];
    for (size_t a = 0; a < opt.aggs.size(); ++a) {
      TDE_RETURN_NOT_OK(
          Accumulate(opt.aggs[a].kind, agg_type[a], r[agg_idx[a]], &s[a]));
    }
  }
  // A grand aggregate (no keys) over zero rows still yields one row.
  if (opt.group_by.empty() && group_keys.empty()) {
    group_keys.emplace_back();
    states.emplace_back(opt.aggs.size());
  }

  RefRelation out;
  for (size_t i : key_idx) out.fields.push_back(in.fields[i]);
  for (size_t a = 0; a < opt.aggs.size(); ++a) {
    out.fields.push_back(
        {opt.aggs[a].output,
         agg_internal::OutputType(opt.aggs[a].kind, agg_type[a])});
  }
  for (size_t g = 0; g < group_keys.size(); ++g) {
    Row r = group_keys[g];
    for (size_t a = 0; a < opt.aggs.size(); ++a) {
      r.push_back(FinalizeAccum(opt.aggs[a].kind, agg_type[a], &states[g][a]));
    }
    out.rows.push_back(std::move(r));
  }
  return out;
}

Result<RefRelation> EvalJoin(const PlanNode& node, RefRelation outer,
                             const std::map<std::string, const RefTable*>& tables) {
  if (node.inner_table == nullptr) return {OracleError("join without inner")};
  const auto it = tables.find(node.inner_table->name());
  if (it == tables.end()) {
    return {OracleError("no decoded table '" + node.inner_table->name() + "'")};
  }
  const RefTable& inner = *it->second;
  TDE_ASSIGN_OR_RETURN(size_t outer_key, FieldIndex(outer.fields, node.join.outer_key));
  TDE_ASSIGN_OR_RETURN(size_t inner_key, FieldIndex(inner.fields, node.join.inner_key));
  std::vector<size_t> payload_idx;
  for (const std::string& p : node.join.inner_payload) {
    TDE_ASSIGN_OR_RETURN(size_t i, FieldIndex(inner.fields, p));
    payload_idx.push_back(i);
  }
  // Many-to-one: the inner key must be unique.
  std::map<Row, size_t, KeyLess> inner_of;
  for (size_t r = 0; r < inner.rows.size(); ++r) {
    const RefValue& k = inner.rows[r][inner_key];
    if (k.null) continue;  // a NULL inner key can never be matched
    if (!inner_of.try_emplace(Row{k}, r).second) {
      return {OracleError("duplicate inner join key")};
    }
  }
  RefRelation out;
  out.fields = outer.fields;
  for (size_t i : payload_idx) out.fields.push_back(inner.fields[i]);
  for (Row& r : outer.rows) {
    const RefValue& k = r[outer_key];
    if (k.null) continue;  // NULL never matches
    const auto match = inner_of.find(Row{k});
    if (match == inner_of.end()) continue;  // unmatched outer rows drop
    Row joined = std::move(r);
    for (size_t i : payload_idx) {
      joined.push_back(inner.rows[match->second][i]);
    }
    out.rows.push_back(std::move(joined));
  }
  return out;
}

Result<RefRelation> EvalPlan(const PlanNodePtr& node,
                             const std::map<std::string, const RefTable*>& tables) {
  switch (node->kind) {
    case PlanNodeKind::kScan:
      return EvalScan(*node, tables);
    case PlanNodeKind::kFilter: {
      TDE_ASSIGN_OR_RETURN(RefRelation in, EvalPlan(node->children[0], tables));
      RefRelation out;
      out.fields = in.fields;
      for (Row& r : in.rows) {
        TDE_ASSIGN_OR_RETURN(RefValue v, EvalExpr(node->predicate, in.fields, r));
        if (Truthy(v)) out.rows.push_back(std::move(r));
      }
      return out;
    }
    case PlanNodeKind::kProject: {
      TDE_ASSIGN_OR_RETURN(RefRelation in, EvalPlan(node->children[0], tables));
      RefRelation out;
      const Schema schema = ToSchema(in.fields);
      for (const ProjectedColumn& p : node->projections) {
        TDE_ASSIGN_OR_RETURN(TypeId t, p.expr->ResultType(schema));
        out.fields.push_back({p.name, t});
      }
      for (const Row& r : in.rows) {
        Row projected;
        projected.reserve(node->projections.size());
        for (const ProjectedColumn& p : node->projections) {
          TDE_ASSIGN_OR_RETURN(RefValue v, EvalExpr(p.expr, in.fields, r));
          projected.push_back(std::move(v));
        }
        out.rows.push_back(std::move(projected));
      }
      return out;
    }
    case PlanNodeKind::kAggregate: {
      TDE_ASSIGN_OR_RETURN(RefRelation in, EvalPlan(node->children[0], tables));
      return EvalAggregate(*node, std::move(in));
    }
    case PlanNodeKind::kSort: {
      TDE_ASSIGN_OR_RETURN(RefRelation in, EvalPlan(node->children[0], tables));
      std::vector<size_t> key_idx;
      for (const SortKey& k : node->sort_keys) {
        TDE_ASSIGN_OR_RETURN(size_t i, FieldIndex(in.fields, k.column));
        key_idx.push_back(i);
      }
      // Stable; NULL sorts below every value: first under ASC, last under
      // DESC.
      std::stable_sort(
          in.rows.begin(), in.rows.end(), [&](const Row& a, const Row& b) {
            for (size_t k = 0; k < key_idx.size(); ++k) {
              const RefValue& va = a[key_idx[k]];
              const RefValue& vb = b[key_idx[k]];
              int cmp;
              if (va.null || vb.null) {
                cmp = va.null == vb.null ? 0 : (va.null ? -1 : 1);
              } else {
                cmp = CompareRefValues(va, vb);
              }
              if (cmp != 0) {
                return node->sort_keys[k].ascending ? cmp < 0 : cmp > 0;
              }
            }
            return false;
          });
      return in;
    }
    case PlanNodeKind::kLimit: {
      TDE_ASSIGN_OR_RETURN(RefRelation in, EvalPlan(node->children[0], tables));
      if (in.rows.size() > node->limit) in.rows.resize(node->limit);
      return in;
    }
    case PlanNodeKind::kJoinTable: {
      TDE_ASSIGN_OR_RETURN(RefRelation in, EvalPlan(node->children[0], tables));
      return EvalJoin(*node, std::move(in), tables);
    }
    case PlanNodeKind::kExchange:
    case PlanNodeKind::kMaterialize:
      // Semantically transparent.
      return EvalPlan(node->children[0], tables);
    default:
      return {OracleError("rewritten plan node (oracle interprets logical "
                          "plans only)")};
  }
}

}  // namespace

Result<RefResult> EvalReference(
    const PlanNodePtr& node,
    const std::map<std::string, const RefTable*>& tables) {
  TDE_ASSIGN_OR_RETURN(RefRelation rel, EvalPlan(node, tables));
  RefResult out;
  out.fields = std::move(rel.fields);
  out.rows = std::move(rel.rows);
  return out;
}

}  // namespace testing
}  // namespace tde
