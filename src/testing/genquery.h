#ifndef TDE_TESTING_GENQUERY_H_
#define TDE_TESTING_GENQUERY_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/testing/reference.h"

namespace tde {
namespace testing {

/// Value distributions, chosen to steer FlowTable's dynamic encoding
/// choice: every shape reliably lands on one of the five encodings.
enum class ColumnShape {
  kSequential,  // row-id-linear with jitter -> delta / affine
  kNarrow,      // small uniform range -> frame-of-reference
  kRunny,       // long value runs -> run-length
  kLowCard,     // few distinct values -> dictionary
  kScattered,   // wide uniform -> uncompressed
};

struct ColumnSpec {
  std::string name;
  TypeId type = TypeId::kInteger;  // kInteger, kReal, kString, kDate
  ColumnShape shape = ColumnShape::kScattered;
  /// Probability (in 1/256ths) that a row is NULL.
  uint8_t null_chance = 0;
  /// Integer columns only: when > 0, values are drawn uniformly from
  /// [0, range) regardless of shape — used for the join key, whose domain
  /// must line up with the dimension table's key space.
  int64_t range = 0;
};

struct TableSpec {
  std::string name;
  uint64_t rows = 0;
  uint64_t seed = 0;
  std::vector<ColumnSpec> columns;

  /// Printable repro: everything needed to regenerate the table.
  std::string ToString() const;
};

/// A deterministic dataset: the CSV text the import path parses and the
/// decoded rows the oracle reads come from one generation pass, so they
/// agree by construction and share nothing downstream.
struct Dataset {
  TableSpec spec;
  RefTable ref;
  std::string csv;
};

Dataset GenerateDataset(const TableSpec& spec);

/// The standard differential pair: a fact table covering every shape ×
/// type combination the engine encodes, and a unique-keyed dimension table
/// for many-to-one joins (`fk` references `dk`, with some dangling keys).
TableSpec MakeFactSpec(uint64_t seed, uint64_t rows);
TableSpec MakeDimSpec(uint64_t seed, uint64_t rows);

struct GeneratedQuery {
  std::string sql;
  bool is_aggregate = false;
  bool has_join = false;
  bool has_order_by = false;
  bool has_limit = false;
  /// The LIMIT count when has_limit (for the harness's prefix check on
  /// unordered LIMIT queries).
  uint64_t limit = 0;
};

/// Generates one SQL statement, fully determined by `seed`, over the fact
/// table (and the dimension table, when joining). Coverage: filters (=,
/// <>, <, <=, >, >=, BETWEEN, IN, NOT IN, LIKE, IS [NOT] NULL) under
/// AND/OR/NOT, computed projections (arithmetic, date and string
/// functions, CASE), single- and multi-key GROUP BY with every aggregate,
/// HAVING, ORDER BY ASC/DESC over nullable keys, LIMIT, and two-table
/// joins. Aggregate ORDER BY lists always end with every grouping key, so
/// an ordered result is totally ordered and engine/oracle rows can be
/// compared positionally.
GeneratedQuery GenerateQuery(uint64_t seed, const Dataset& fact,
                             const Dataset& dim);

}  // namespace testing
}  // namespace tde

#endif  // TDE_TESTING_GENQUERY_H_
