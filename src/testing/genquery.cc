#include "src/testing/genquery.h"

#include <cmath>
#include <cstdio>
#include <limits>
#include <set>
#include <utility>

namespace tde {
namespace testing {
namespace {

/// splitmix64: tiny, deterministic across platforms and standard-library
/// implementations — a repro seed must mean the same workload everywhere.
struct Rng {
  uint64_t state;

  uint64_t Next() {
    state += 0x9E3779B97F4A7C15ull;
    uint64_t z = state;
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    return z ^ (z >> 31);
  }
  uint64_t U(uint64_t n) { return n == 0 ? 0 : Next() % n; }
  int64_t Range(int64_t lo, int64_t hi) {
    return lo + static_cast<int64_t>(U(static_cast<uint64_t>(hi - lo + 1)));
  }
  bool Chance(uint32_t pct) { return U(100) < pct; }
};

/// Low-cardinality vocabulary. Every entry stays distinct under the locale
/// collation (case- and accent-folding): token-level distinctness in the
/// engine then agrees with collation-level distinctness in the oracle for
/// grouping and COUNTD.
const char* const kWords[] = {"alder", "birch",  "cedar", "drift",
                              "émigré", "fjord", "ginkgo", "hazel",
                              "naïve",  "oak",   "über",   "willow"};
constexpr size_t kNumWords = sizeof(kWords) / sizeof(kWords[0]);

size_t CodePointLen(unsigned char lead) {
  if (lead < 0x80) return 1;
  if ((lead >> 5) == 0x6) return 2;
  if ((lead >> 4) == 0xe) return 3;
  if ((lead >> 3) == 0x1e) return 4;
  return 1;
}

std::string FormatReal(double d) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.2f", d);
  return buf;
}

const char* ShapeName(ColumnShape s) {
  switch (s) {
    case ColumnShape::kSequential: return "sequential";
    case ColumnShape::kNarrow: return "narrow";
    case ColumnShape::kRunny: return "runny";
    case ColumnShape::kLowCard: return "lowcard";
    case ColumnShape::kScattered: return "scattered";
  }
  return "?";
}

const char* SpecTypeName(TypeId t) {
  switch (t) {
    case TypeId::kInteger: return "int";
    case TypeId::kReal: return "real";
    case TypeId::kString: return "str";
    case TypeId::kDate: return "date";
    default: return "?";
  }
}

}  // namespace

std::string TableSpec::ToString() const {
  std::string out = "table " + name + " seed=" + std::to_string(seed) +
                    " rows=" + std::to_string(rows) + " cols=[";
  for (size_t i = 0; i < columns.size(); ++i) {
    const ColumnSpec& c = columns[i];
    if (i > 0) out += ", ";
    out += c.name;
    out += ":";
    out += SpecTypeName(c.type);
    out += ":";
    out += ShapeName(c.shape);
    out += ":null=" + std::to_string(c.null_chance);
    if (c.range > 0) out += ":range=" + std::to_string(c.range);
  }
  return out + "]";
}

Dataset GenerateDataset(const TableSpec& spec) {
  Dataset d;
  d.spec = spec;
  const int64_t epoch = DaysFromCivil(1994, 1, 1);

  // Column-major generation, one independent deterministic stream per
  // column.
  std::vector<std::vector<RefValue>> cols(spec.columns.size());
  for (size_t c = 0; c < spec.columns.size(); ++c) {
    const ColumnSpec& cs = spec.columns[c];
    Rng rng{spec.seed * 0x100000001B3ull + c * 0x9E3779B9ull + 1};
    cols[c].resize(spec.rows);
    // Run state for kRunny shapes.
    RefValue run_value;
    uint64_t run_left = 0;
    for (uint64_t r = 0; r < spec.rows; ++r) {
      RefValue v;
      v.type = cs.type;
      const bool is_null = rng.U(256) < cs.null_chance;
      // Advance the run state even for NULL rows so runs survive sparse
      // NULLs instead of restarting after each one.
      const bool new_run = cs.shape == ColumnShape::kRunny && run_left == 0;
      if (run_left > 0) --run_left;
      if (new_run) run_left = 24 + rng.U(40);
      v.null = false;
      switch (cs.type) {
        case TypeId::kInteger: {
          if (cs.range > 0) {
            v.i = static_cast<int64_t>(rng.U(static_cast<uint64_t>(cs.range)));
            break;
          }
          switch (cs.shape) {
            case ColumnShape::kSequential:
              v.i = static_cast<int64_t>(r) * 3 + static_cast<int64_t>(rng.U(3));
              break;
            case ColumnShape::kNarrow:
              v.i = static_cast<int64_t>(rng.U(60));
              break;
            case ColumnShape::kRunny:
              if (new_run) run_value = v, run_value.i = static_cast<int64_t>(rng.U(10));
              v.i = run_value.i;
              break;
            case ColumnShape::kLowCard:
              v.i = static_cast<int64_t>(rng.U(8)) * 7;
              break;
            case ColumnShape::kScattered:
              v.i = rng.Range(-1000000, 1000000);
              break;
          }
          break;
        }
        case TypeId::kReal: {
          // Quarters only: sums and averages stay exactly representable,
          // so compressed-domain accumulation order cannot introduce
          // floating-point drift the comparison would mistake for a bug.
          switch (cs.shape) {
            case ColumnShape::kSequential:
              v.d = static_cast<double>(r) * 0.25;
              break;
            case ColumnShape::kNarrow:
              v.d = static_cast<double>(rng.U(40)) * 0.25;
              break;
            case ColumnShape::kRunny:
              if (new_run) run_value = v, run_value.d = static_cast<double>(rng.U(16)) * 0.25;
              v.d = run_value.d;
              break;
            case ColumnShape::kLowCard:
              v.d = static_cast<double>(rng.U(8)) * 0.25;
              break;
            case ColumnShape::kScattered:
              // A few NaNs ride along: sorts, aggregates and comparisons
              // must hold the engine/oracle total order (NaN above +inf,
              // NaN == NaN) instead of the IEEE partial order, which
              // breaks strict weak ordering and corrupts sorted output.
              v.d = rng.Chance(4)
                        ? std::numeric_limits<double>::quiet_NaN()
                        : static_cast<double>(rng.Range(-400, 400)) * 0.25;
              break;
          }
          break;
        }
        case TypeId::kString: {
          switch (cs.shape) {
            case ColumnShape::kRunny:
              if (new_run) run_value = v, run_value.s = kWords[rng.U(kNumWords)];
              v.s = run_value.s;
              break;
            case ColumnShape::kScattered:
              v.s = std::string(kWords[rng.U(kNumWords)]) + "-" +
                    std::to_string(rng.U(500));
              break;
            default:  // low cardinality
              v.s = kWords[rng.U(8)];
              break;
          }
          break;
        }
        case TypeId::kDate: {
          switch (cs.shape) {
            case ColumnShape::kSequential:
              v.i = epoch + static_cast<int64_t>(r);
              break;
            case ColumnShape::kNarrow:
              v.i = epoch + static_cast<int64_t>(rng.U(90));
              break;
            case ColumnShape::kRunny:
              v.i = epoch + static_cast<int64_t>(r / 16);
              break;
            case ColumnShape::kLowCard:
              v.i = epoch + static_cast<int64_t>(rng.U(8)) * 30;
              break;
            case ColumnShape::kScattered:
              v.i = epoch + static_cast<int64_t>(rng.U(730));
              break;
          }
          break;
        }
        default:
          break;
      }
      if (is_null) {
        v = RefValue{};
        v.type = cs.type;
      }
      cols[c][r] = std::move(v);
    }
  }

  // Assemble the oracle's rows and the importer's CSV from the same
  // values.
  for (const ColumnSpec& cs : spec.columns) {
    d.ref.fields.push_back({cs.name, cs.type});
  }
  d.ref.rows.resize(spec.rows);
  std::string& csv = d.csv;
  for (size_t c = 0; c < spec.columns.size(); ++c) {
    if (c > 0) csv += ",";
    csv += spec.columns[c].name;
  }
  csv += "\n";
  for (uint64_t r = 0; r < spec.rows; ++r) {
    auto& row = d.ref.rows[r];
    row.reserve(spec.columns.size());
    for (size_t c = 0; c < spec.columns.size(); ++c) {
      if (c > 0) csv += ",";
      const RefValue& v = cols[c][r];
      if (!v.null) {
        switch (v.type) {
          case TypeId::kReal: csv += FormatReal(v.d); break;
          case TypeId::kString: csv += v.s; break;
          default: csv += FormatLane(v.type, v.i); break;
        }
      }
      row.push_back(std::move(cols[c][r]));
    }
    csv += "\n";
  }
  return d;
}

TableSpec MakeFactSpec(uint64_t seed, uint64_t rows) {
  TableSpec t;
  t.name = "fact";
  t.seed = seed;
  t.rows = rows;
  t.columns = {
      // Join key into dim.dk (40 rows), with two dangling values.
      {"fk", TypeId::kInteger, ColumnShape::kLowCard, 20, 42},
      {"a", TypeId::kInteger, ColumnShape::kNarrow, 26},
      {"b", TypeId::kInteger, ColumnShape::kSequential, 0},
      {"c", TypeId::kInteger, ColumnShape::kRunny, 20},
      {"d", TypeId::kReal, ColumnShape::kScattered, 30},
      {"s", TypeId::kString, ColumnShape::kLowCard, 26},
      {"t", TypeId::kString, ColumnShape::kScattered, 26},
      {"dt", TypeId::kDate, ColumnShape::kRunny, 26},
  };
  return t;
}

TableSpec MakeDimSpec(uint64_t seed, uint64_t rows) {
  TableSpec t;
  t.name = "dim";
  t.seed = seed;
  t.rows = rows;
  t.columns = {
      {"dk", TypeId::kInteger, ColumnShape::kSequential, 0},
      {"dv", TypeId::kInteger, ColumnShape::kNarrow, 13},
      {"dn", TypeId::kString, ColumnShape::kLowCard, 13},
  };
  return t;
}

namespace {

/// Schema the generator draws predicate/projection columns from: fact
/// columns, plus dim payload columns after a join.
struct GenColumn {
  std::string name;
  TypeId type;
  const Dataset* source;  // where to sample literals from
  size_t source_col;
};

class SqlBuilder {
 public:
  SqlBuilder(Rng* rng, std::vector<GenColumn> cols)
      : rng_(rng), cols_(std::move(cols)) {}

  const GenColumn& AnyColumn() { return cols_[rng_->U(cols_.size())]; }
  const GenColumn& TypedColumn(TypeId t) {
    std::vector<const GenColumn*> match;
    for (const GenColumn& c : cols_) {
      if (c.type == t) match.push_back(&c);
    }
    return match.empty() ? cols_[0] : *match[rng_->U(match.size())];
  }

  /// Samples an actual (non-NULL) value of the column and renders it as a
  /// SQL literal; distribution-agnostic and a guaranteed domain hit.
  std::string SampleLiteral(const GenColumn& c) {
    const auto& rows = c.source->ref.rows;
    for (int attempt = 0; attempt < 16; ++attempt) {
      const RefValue& v = rows[rng_->U(rows.size())][c.source_col];
      if (v.null) continue;
      switch (v.type) {
        case TypeId::kInteger: {
          int64_t x = v.i;
          if (rng_->Chance(25)) x += rng_->Range(-3, 3);  // near miss
          return std::to_string(x);
        }
        case TypeId::kReal:
          // NaN has no SQL literal spelling ("nan" lexes as an
          // identifier); resample like a NULL hit.
          if (std::isnan(v.d)) continue;
          return FormatReal(v.d);
        case TypeId::kString:
          return "'" + v.s + "'";
        case TypeId::kDate:
          return "DATE '" + FormatLane(TypeId::kDate, v.i) + "'";
        default:
          return "0";
      }
    }
    return c.type == TypeId::kString ? "'oak'" : "0";
  }

  std::string SampleString(const GenColumn& c) {
    const auto& rows = c.source->ref.rows;
    for (int attempt = 0; attempt < 16; ++attempt) {
      const RefValue& v = rows[rng_->U(rows.size())][c.source_col];
      if (!v.null && !v.s.empty()) return v.s;
    }
    return "oak";
  }

  std::string LikePattern(const std::string& w) {
    // Code point boundaries of w.
    std::vector<size_t> cp = {0};
    while (cp.back() < w.size()) {
      cp.push_back(cp.back() + CodePointLen(static_cast<unsigned char>(w[cp.back()])));
    }
    const size_t n = cp.size() - 1;  // code points
    switch (rng_->U(10)) {
      case 0: return w.substr(0, cp[1 + rng_->U(n)]) + "%";  // trailing %
      case 1: return "%" + w.substr(cp[rng_->U(n)]);
      case 2: {  // %mid%
        const size_t lo = rng_->U(n);
        const size_t hi = lo + 1 + rng_->U(n - lo);
        return "%" + w.substr(cp[lo], cp[hi] - cp[lo]) + "%";
      }
      case 3: {  // one code point replaced by _
        const size_t k = rng_->U(n);
        return w.substr(0, cp[k]) + "_" + w.substr(cp[k + 1]);
      }
      case 4: return "%%" + w;            // consecutive wildcards
      case 5: return "";                  // empty pattern
      case 6: return "%";                 // match-all
      case 7: return std::string(n, '_');  // all-underscores, cp length
      case 8: return "_%";                // at least one character
      default: return w;                  // exact
    }
  }

  std::string Atom() {
    const GenColumn& c = AnyColumn();
    static const char* kCmp[] = {"=", "<>", "<", "<=", ">", ">="};
    switch (rng_->U(6)) {
      case 0:  // comparison with a literal
        return "(" + c.name + " " + kCmp[rng_->U(6)] + " " +
               SampleLiteral(c) + ")";
      case 1: {  // BETWEEN (occasionally reversed -> provably empty)
        std::string lo = SampleLiteral(c);
        std::string hi = SampleLiteral(c);
        return "(" + c.name + " BETWEEN " + lo + " AND " + hi + ")";
      }
      case 2: {  // IN / NOT IN
        std::string list = SampleLiteral(c);
        const size_t extra = 1 + rng_->U(3);
        for (size_t i = 0; i < extra; ++i) list += ", " + SampleLiteral(c);
        const char* neg = rng_->Chance(35) ? " NOT" : "";
        return "(" + c.name + neg + " IN (" + list + "))";
      }
      case 3:
        return "(" + c.name + (rng_->Chance(50) ? " IS NULL" : " IS NOT NULL") +
               ")";
      case 4: {  // LIKE over a string column
        const GenColumn& s = TypedColumn(TypeId::kString);
        if (s.type != TypeId::kString) return Atom();
        return "(" + s.name + " LIKE '" + LikePattern(SampleString(s)) + "')";
      }
      default: {  // comparison between two columns of the same type
        const GenColumn& l = AnyColumn();
        const GenColumn& r = TypedColumn(l.type);
        return "(" + l.name + " " + kCmp[rng_->U(6)] + " " + r.name + ")";
      }
    }
  }

  std::string Predicate(int depth = 0) {
    if (depth >= 2 || rng_->Chance(45)) {
      std::string a = Atom();
      return rng_->Chance(20) ? "NOT " + a : a;
    }
    const char* conn = rng_->Chance(50) ? " AND " : " OR ";
    return "(" + Predicate(depth + 1) + conn + Predicate(depth + 1) + ")";
  }

  /// A computed scalar select expression and a short description of its
  /// type (for ORDER BY eligibility).
  std::string ComputedExpr() {
    switch (rng_->U(8)) {
      case 0: {
        const GenColumn& c = TypedColumn(TypeId::kInteger);
        return "(" + c.name + " + " + SampleLiteral(c) + ")";
      }
      case 1: {
        const GenColumn& c = TypedColumn(TypeId::kInteger);
        return "(" + c.name + " % 7)";
      }
      case 2: {
        const GenColumn& c = TypedColumn(TypeId::kReal);
        if (c.type != TypeId::kReal) return ComputedExpr();
        return "(" + c.name + " * 2)";
      }
      case 3: {
        const GenColumn& c = TypedColumn(TypeId::kDate);
        if (c.type != TypeId::kDate) return ComputedExpr();
        static const char* kFns[] = {"YEAR", "MONTH", "DAY", "TRUNC_MONTH"};
        return std::string(kFns[rng_->U(4)]) + "(" + c.name + ")";
      }
      case 4: {
        const GenColumn& c = TypedColumn(TypeId::kString);
        if (c.type != TypeId::kString) return ComputedExpr();
        return "LENGTH(" + c.name + ")";
      }
      case 5: {
        const GenColumn& c = TypedColumn(TypeId::kString);
        if (c.type != TypeId::kString) return ComputedExpr();
        return std::string(rng_->Chance(50) ? "UPPER" : "LOWER") + "(" +
               c.name + ")";
      }
      case 6: {  // integer CASE
        return "CASE WHEN " + Atom() + " THEN 1 WHEN " + Atom() +
               " THEN 2 ELSE 0 END";
      }
      default: {  // string CASE
        return "CASE WHEN " + Atom() + " THEN 'low' ELSE 'high' END";
      }
    }
  }

  Rng* rng_;
  std::vector<GenColumn> cols_;
};

struct AggChoice {
  std::string sql;    // e.g. "SUM(a)"
  std::string alias;  // e.g. "g0"
  bool is_count = false;
};

}  // namespace

GeneratedQuery GenerateQuery(uint64_t seed, const Dataset& fact,
                             const Dataset& dim) {
  Rng rng{seed * 0x2545F4914F6CDD1Dull + 0x9E3779B97F4A7C15ull};
  GeneratedQuery q;
  q.has_join = rng.Chance(30);

  std::vector<GenColumn> cols;
  for (size_t i = 0; i < fact.ref.fields.size(); ++i) {
    cols.push_back({fact.ref.fields[i].name, fact.ref.fields[i].type, &fact, i});
  }
  if (q.has_join) {
    for (size_t i = 0; i < dim.ref.fields.size(); ++i) {
      if (dim.ref.fields[i].name == "dk") continue;  // join key, not payload
      cols.push_back({dim.ref.fields[i].name, dim.ref.fields[i].type, &dim, i});
    }
  }
  SqlBuilder b(&rng, cols);

  const std::string from =
      q.has_join ? "FROM fact JOIN dim ON dim.dk = fk" : "FROM fact";
  q.is_aggregate = rng.Chance(45);

  std::string where;
  if (rng.Chance(75)) where = " WHERE " + b.Predicate();

  if (!q.is_aggregate) {
    // Plain selection.
    std::vector<std::pair<std::string, std::string>> items;  // sql, out name
    if (rng.Chance(12)) {
      items.push_back({"*", ""});
    } else {
      const size_t n = 2 + rng.U(4);
      int anon = 0;
      for (size_t i = 0; i < n; ++i) {
        if (rng.Chance(70)) {
          const GenColumn& c = b.AnyColumn();
          items.push_back({c.name, c.name});
        } else {
          const std::string alias = "e" + std::to_string(anon++);
          items.push_back({b.ComputedExpr() + " AS " + alias, alias});
        }
      }
    }
    const bool want_order = rng.Chance(55);
    if (want_order) {
      // `b` is unique and non-NULL by construction; appending it as the
      // final key makes every plain ORDER BY a total order, so engine and
      // oracle rows compare positionally regardless of scan order or sort
      // stability.
      bool has_b = items[0].second.empty();  // SELECT * includes b
      for (const auto& it : items) has_b = has_b || it.second == "b";
      if (!has_b) items.push_back({"b", "b"});
    }
    std::string select = "SELECT ";
    for (size_t i = 0; i < items.size(); ++i) {
      if (i > 0) select += ", ";
      select += items[i].first;
    }
    q.sql = select + " " + from + where;
    if (want_order) {
      std::set<std::string> used = {"b"};
      std::string order;
      const size_t keys = rng.U(3);
      for (size_t k = 0; k < keys; ++k) {
        const auto& it = items[rng.U(items.size())];
        if (it.second.empty() || !used.insert(it.second).second) continue;
        if (!order.empty()) order += ", ";
        order += it.second + (rng.Chance(40) ? " DESC" : "");
      }
      if (!order.empty()) order += ", ";
      order += "b";
      if (rng.Chance(40)) order += " DESC";
      q.sql += " ORDER BY " + order;
      q.has_order_by = true;
    }
    if (rng.Chance(30)) {
      // Small k half the time: the Top-N rewrite's interesting regime
      // (bounded heap, zone skips); large k degenerates to the full sort.
      q.limit = rng.Chance(50) ? rng.U(25) : rng.U(fact.spec.rows + 10);
      q.sql += " LIMIT " + std::to_string(q.limit);
      q.has_limit = true;
    }
    return q;
  }

  // Aggregate query: 0-2 keys, 1-3 aggregates over type-suitable inputs.
  struct Key {
    std::string sql;   // select-list entry
    std::string name;  // output name
  };
  std::vector<Key> keys;
  const size_t nkeys = rng.U(3);
  for (size_t k = 0; k < nkeys; ++k) {
    if (rng.Chance(25)) {
      const GenColumn& c = b.TypedColumn(TypeId::kDate);
      if (c.type == TypeId::kDate) {
        const std::string alias = "k" + std::to_string(k);
        keys.push_back({"YEAR(" + c.name + ") AS " + alias, alias});
        continue;
      }
    }
    const GenColumn& c = b.AnyColumn();
    bool dup = false;
    for (const Key& existing : keys) dup = dup || existing.name == c.name;
    if (dup) continue;
    keys.push_back({c.name, c.name});
  }

  std::vector<AggChoice> aggs;
  const size_t naggs = 1 + rng.U(3);
  for (size_t a = 0; a < naggs; ++a) {
    AggChoice choice;
    choice.alias = "g" + std::to_string(a);
    switch (rng.U(8)) {
      case 0:
        choice.sql = "COUNT(*)";
        choice.is_count = true;
        break;
      case 1: {
        const GenColumn& c = b.AnyColumn();
        choice.sql = "COUNT(" + c.name + ")";
        choice.is_count = true;
        break;
      }
      case 2: {
        const GenColumn& c = b.AnyColumn();
        choice.sql = "COUNTD(" + c.name + ")";
        break;
      }
      case 3: {
        const GenColumn& c =
            b.TypedColumn(rng.Chance(50) ? TypeId::kInteger : TypeId::kReal);
        choice.sql = "SUM(" + c.name + ")";
        break;
      }
      case 4: {
        const GenColumn& c =
            b.TypedColumn(rng.Chance(50) ? TypeId::kInteger : TypeId::kReal);
        choice.sql = "AVG(" + c.name + ")";
        break;
      }
      case 5: {
        const GenColumn& c = b.AnyColumn();
        choice.sql = std::string(rng.Chance(50) ? "MIN" : "MAX") + "(" +
                     c.name + ")";
        break;
      }
      case 6: {
        const GenColumn& c =
            b.TypedColumn(rng.Chance(50) ? TypeId::kInteger : TypeId::kReal);
        choice.sql = "MEDIAN(" + c.name + ")";
        break;
      }
      default: {
        const GenColumn& c = b.AnyColumn();
        choice.sql = "MEDIAN(" + c.name + ")";
        break;
      }
    }
    aggs.push_back(std::move(choice));
  }

  std::string select = "SELECT ";
  for (size_t k = 0; k < keys.size(); ++k) {
    if (k > 0) select += ", ";
    select += keys[k].sql;
  }
  for (size_t a = 0; a < aggs.size(); ++a) {
    if (a > 0 || !keys.empty()) select += ", ";
    select += aggs[a].sql + " AS " + aggs[a].alias;
  }
  q.sql = select + " " + from + where;

  // Explicit GROUP BY half the time (it must name the same keys).
  if (!keys.empty() && rng.Chance(50)) {
    std::string group;
    for (size_t k = 0; k < keys.size(); ++k) {
      if (k > 0) group += ", ";
      group += keys[k].name;
    }
    q.sql += " GROUP BY " + group;
  }
  // HAVING over a count alias.
  for (const AggChoice& a : aggs) {
    if (a.is_count && rng.Chance(25)) {
      q.sql += " HAVING " + a.alias + " > " + std::to_string(1 + rng.U(3));
      break;
    }
  }
  // ORDER BY: optionally an aggregate, then every key — a total order, so
  // ordered results compare positionally.
  if (!keys.empty() && rng.Chance(60)) {
    std::string order;
    if (rng.Chance(40)) {
      order = aggs[rng.U(aggs.size())].alias + (rng.Chance(50) ? " DESC" : "");
    }
    for (const Key& k : keys) {
      if (!order.empty()) order += ", ";
      order += k.name + (rng.Chance(40) ? " DESC" : "");
    }
    q.sql += " ORDER BY " + order;
    q.has_order_by = true;
    if (rng.Chance(20)) {
      q.limit = 1 + rng.U(20);
      q.sql += " LIMIT " + std::to_string(q.limit);
      q.has_limit = true;
    }
  }
  return q;
}

}  // namespace testing
}  // namespace tde
