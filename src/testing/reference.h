#ifndef TDE_TESTING_REFERENCE_H_
#define TDE_TESTING_REFERENCE_H_

#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "src/plan/plan.h"

namespace tde {
namespace testing {

/// One cell of the reference interpreter's world: a plain tagged value.
/// No sentinels, no heaps, no tokens — nullness is an explicit flag and
/// strings are owned text, so the oracle cannot share a bug with the
/// engine's lane representation.
struct RefValue {
  TypeId type = TypeId::kInteger;
  bool null = true;
  int64_t i = 0;    // kBool / kInteger / kDate / kDateTime
  double d = 0.0;   // kReal
  std::string s;    // kString
};

struct RefField {
  std::string name;
  TypeId type = TypeId::kInteger;
};

/// A fully decoded row-major table. The harness hands the same row data to
/// the import path (as CSV text) and to the oracle (as a RefTable), so the
/// two sides never share storage or decoding code.
struct RefTable {
  std::vector<RefField> fields;
  std::vector<std::vector<RefValue>> rows;
};

/// An oracle answer: schema plus row-major values, in the deterministic
/// order the reference semantics produce (input order; groups in
/// first-seen order; sorted output after an ORDER BY).
struct RefResult {
  std::vector<RefField> fields;
  std::vector<std::vector<RefValue>> rows;
};

/// The semantics contract the oracle implements — and the engine is held
/// to — is written down in DESIGN.md ("The reference semantics contract").
/// Highlights: comparisons involving NULL are false and NOT is two-valued
/// (NOT of a NULL comparison is TRUE); strings compare under the locale
/// collation; NULL sorts below every value (first ASC, last DESC); sorts
/// are stable; aggregates ignore NULLs; SUM over integers reports overflow
/// as an error; MEDIAN is the lower median.
///
/// Evaluates a *logical* plan row-at-a-time over the decoded tables: scan
/// resolves `PlanNode::table` by name in `tables`. Rewritten node kinds
/// (InvisibleJoin, IndexedScan) and rewrite-only fields are rejected — the
/// oracle interprets pre-optimization plans only.
Result<RefResult> EvalReference(
    const PlanNodePtr& node,
    const std::map<std::string, const RefTable*>& tables);

/// Renders one value exactly like QueryResult::ValueString renders the
/// engine's lanes ("NULL", raw string text, FormatLane otherwise), so
/// differential comparison is string equality per cell.
std::string RefValueString(const RefValue& v);

/// The oracle's LIKE matcher, exposed for the LikeExpr audit tests:
/// textbook glob semantics where '%' matches any run of *characters*,
/// '_' exactly one character (a full UTF-8 code point, never a lone
/// continuation byte), and literals match code point by code point with
/// ASCII case folding when `fold_case` is set.
bool ReferenceLikeMatch(std::string_view s, std::string_view pattern,
                        bool fold_case);

/// Three-way comparison under the reference semantics, for non-null
/// values: strings collate under the locale collation, a real on either
/// side compares as double, everything else as int64. Exposed for the
/// harness's ordering checks.
int CompareRefValues(const RefValue& a, const RefValue& b);

}  // namespace testing
}  // namespace tde

#endif  // TDE_TESTING_REFERENCE_H_
