#include "src/exec/table_scan.h"

#include <algorithm>

#include "src/observe/journal.h"

namespace tde {

TableScan::TableScan(std::shared_ptr<const Table> table,
                     TableScanOptions options)
    : table_(std::move(table)), options_(std::move(options)) {
  if (options_.columns.empty()) {
    for (size_t i = 0; i < table_->num_columns(); ++i) {
      cols_.push_back(table_->column_ptr(i));
    }
  } else {
    for (const std::string& name : options_.columns) {
      auto r = table_->ColumnByName(name);
      if (!r.ok()) {
        init_error_ = r.status();
        return;
      }
      cols_.push_back(r.MoveValue());
    }
  }
  const size_t named = cols_.size();
  for (const std::string& name : options_.token_columns) {
    auto r = table_->ColumnByName(name);
    if (!r.ok()) {
      init_error_ = r.status();
      return;
    }
    cols_.push_back(r.MoveValue());
  }
  for (size_t i = 0; i < cols_.size(); ++i) {
    if (i < named) {
      schema_.AddField({cols_[i]->name(), cols_[i]->type()});
    } else {
      // Token columns are opaque integers: join keys, never decoded.
      schema_.AddField({cols_[i]->name() + "$token", TypeId::kInteger});
    }
  }
  first_token_col_ = named;
}

Status TableScan::Open() {
  rows_scanned_ = 0;
  TDE_RETURN_NOT_OK(init_error_);
  // Normalize the visit list once: sorted, disjoint, clamped to the table.
  ranges_ = NormalizeRanges(options_.ranges);
  const uint64_t total = table_->rows();
  if (ranges_.empty()) {
    ranges_.push_back({0, total});
  } else {
    for (RowRange& r : ranges_) r.end = std::min(r.end, total);
    ranges_ = NormalizeRanges(std::move(ranges_));
    if (ranges_.empty()) ranges_.push_back({0, 0});  // fully pruned scan
  }
  range_idx_ = 0;
  row_ = ranges_.front().begin;
  // Per-row stored width across the scanned columns, priced once: the
  // decode loop only bumps a row count, and Close converts rows into the
  // compressed/decoded byte counters.
  stored_bytes_per_block_row_ = 0;
  for (const auto& col : cols_) {
    stored_bytes_per_block_row_ += col->TokenWidth();
  }
  // Pin cold columns for the whole scan: one cache touch per column per
  // query, and the payload cannot be evicted while blocks reference it.
  pins_.assign(cols_.size(), nullptr);
  for (size_t i = 0; i < cols_.size(); ++i) {
    TDE_ASSIGN_OR_RETURN(pins_[i], cols_[i]->Pin());
  }
  // Entry tables for code-mode columns. Built once here so every block
  // shares one table and the mode cannot change mid-scan.
  code_dicts_.assign(cols_.size(), nullptr);
  for (size_t i = 0; i < first_token_col_; ++i) {
    const auto& names = options_.code_columns;
    if (std::find(names.begin(), names.end(), cols_[i]->name()) ==
        names.end()) {
      continue;
    }
    const EncodedStream* stream =
        pins_[i] ? pins_[i]->stream.get() : cols_[i]->data();
    if (stream == nullptr ||
        stream->type() != EncodingType::kDictionary ||
        cols_[i]->compression() == CompressionKind::kArrayDict) {
      continue;  // not dictionary-coded: the column decodes normally
    }
    auto d = std::make_shared<ArrayDictionary>();
    d->type = cols_[i]->type();
    d->values = stream->CodeEntries();
    code_dicts_[i] = std::move(d);
  }
  return Status::OK();
}

void TableScan::Close() {
  pins_.clear();
  observe::QueryCount(observe::QueryCounter::kBytesScannedCompressed,
                      rows_scanned_ * stored_bytes_per_block_row_);
  observe::QueryCount(observe::QueryCounter::kBytesScannedDecoded,
                      rows_scanned_ * cols_.size() * sizeof(Lane));
  rows_scanned_ = 0;
}

Status TableScan::Next(Block* block, bool* eos) {
  block->columns.assign(cols_.size(), ColumnVector{});
  while (range_idx_ < ranges_.size() && row_ >= ranges_[range_idx_].end) {
    ++range_idx_;
    if (range_idx_ < ranges_.size()) row_ = ranges_[range_idx_].begin;
  }
  if (range_idx_ >= ranges_.size()) {
    *eos = true;
    return Status::OK();
  }
  const size_t take = static_cast<size_t>(
      std::min<uint64_t>(kBlockSize, ranges_[range_idx_].end - row_));
  for (size_t i = 0; i < cols_.size(); ++i) {
    const Column& col = *cols_[i];
    const pager::LoadedColumn* pin = pins_[i].get();
    ColumnVector& out = block->columns[i];
    out.type = col.type();
    out.lanes.resize(take);
    const EncodedStream* stream = pin ? pin->stream.get() : col.data();
    if (stream == nullptr) {
      return Status::Internal("column has no data stream");
    }
    if (code_dicts_[i] != nullptr &&
        stream->GetCodes(row_, take, out.lanes.data())) {
      // Compressed-domain emission: lanes are dense dictionary codes into
      // the attached entry table. Only the dict-grouping rewrite requests
      // this, and only for columns the aggregate consumes as group keys.
      out.dict = code_dicts_[i];
      if (col.compression() == CompressionKind::kHeap) {
        out.heap = pin ? std::shared_ptr<const StringHeap>(pin->heap)
                       : std::shared_ptr<const StringHeap>(cols_[i],
                                                           col.heap());
      }
      continue;
    }
    TDE_RETURN_NOT_OK(stream->Get(row_, take, out.lanes.data()));
    if (i >= first_token_col_) {
      // Emit the raw token lanes (heap offsets or dictionary indexes).
      out.type = TypeId::kInteger;
      continue;
    }
    if (col.compression() == CompressionKind::kHeap) {
      // A pinned payload's heap shared_ptr keeps the bytes alive past
      // eviction; for hot columns the column itself anchors the heap.
      out.heap = pin ? std::shared_ptr<const StringHeap>(pin->heap)
                     : std::shared_ptr<const StringHeap>(cols_[i], col.heap());
    } else if (col.compression() == CompressionKind::kArrayDict) {
      const ArrayDictionary* dict = pin ? pin->dict.get() : col.array_dict();
      if (options_.decode_dictionaries) {
        const auto& values = dict->values;
        for (Lane& v : out.lanes) v = values[static_cast<size_t>(v)];
      } else {
        out.dict = pin ? std::shared_ptr<const ArrayDictionary>(pin->dict)
                       : std::shared_ptr<const ArrayDictionary>(cols_[i],
                                                                dict);
      }
    }
  }
  row_ += take;
  rows_scanned_ += take;
  *eos = false;
  return Status::OK();
}

}  // namespace tde
