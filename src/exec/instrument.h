#ifndef TDE_EXEC_INSTRUMENT_H_
#define TDE_EXEC_INSTRUMENT_H_

#include <functional>
#include <memory>
#include <utility>

#include "src/exec/block.h"
#include "src/observe/query_stats.h"

namespace tde {

/// The uniform operator instrumentation wrapper: forwards Open/Next/Close
/// to the wrapped operator and records wall-time, emitted blocks and rows
/// into an OperatorStats node. The executor wraps every lowered operator
/// with one of these (when stats are enabled), so the whole tree reports
/// per-operator numbers without any operator knowing about it.
///
/// Times are inclusive of the subtree — an operator pulls its children
/// from inside its own Next —, so self time is derived by subtracting the
/// children's totals (OperatorStats::self_ns).
class Instrumented : public Operator {
 public:
  /// `on_close` runs once, right after the wrapped operator's Close, with
  /// the stats node — the hook operators with internal observations (e.g.
  /// Exchange worker counters) use to export them.
  Instrumented(std::unique_ptr<Operator> op,
               std::shared_ptr<observe::OperatorStats> stats,
               std::function<void(observe::OperatorStats*)> on_close = {})
      : op_(std::move(op)),
        stats_(std::move(stats)),
        on_close_(std::move(on_close)) {}

  Status Open() override;
  Status Next(Block* block, bool* eos) override;
  void Close() override;
  const Schema& output_schema() const override {
    return op_->output_schema();
  }

  const observe::OperatorStats& stats() const { return *stats_; }
  Operator* inner() const { return op_.get(); }

 private:
  std::unique_ptr<Operator> op_;
  std::shared_ptr<observe::OperatorStats> stats_;
  std::function<void(observe::OperatorStats*)> on_close_;
  bool closed_ = false;
};

/// Wraps `op` in an Instrumented recording into `stats`. Pass-through
/// when stats collection is globally disabled (observe::StatsEnabled()),
/// so the disabled configuration pays nothing.
std::unique_ptr<Operator> Instrument(
    std::unique_ptr<Operator> op,
    std::shared_ptr<observe::OperatorStats> stats,
    std::function<void(observe::OperatorStats*)> on_close = {});

/// Strips instrumentation wrappers from `op` — for code (tests, benches)
/// that inspects the concrete operator the executor produced.
Operator* Unwrap(Operator* op);

}  // namespace tde

#endif  // TDE_EXEC_INSTRUMENT_H_
