#include "src/exec/ordered_aggregate.h"

#include <algorithm>

namespace tde {

OrderedAggregate::OrderedAggregate(std::unique_ptr<Operator> child,
                                   AggregateOptions options)
    : child_(std::move(child)), options_(std::move(options)) {}

Status OrderedAggregate::Open() {
  if (options_.group_by.size() != 1) {
    return Status::InvalidArgument(
        "ordered aggregation requires exactly one grouping key");
  }
  TDE_RETURN_NOT_OK(child_->Open());
  const Schema& in = child_->output_schema();
  TDE_ASSIGN_OR_RETURN(key_idx_, in.FieldIndex(options_.group_by[0]));
  key_type_ = in.field(key_idx_).type;
  schema_ = Schema();
  schema_.AddField({options_.group_by[0], key_type_});
  agg_idx_.clear();
  agg_types_.clear();
  for (const AggSpec& a : options_.aggs) {
    size_t i = 0;
    TypeId input_type = TypeId::kInteger;
    if (a.kind != AggKind::kCountStar) {
      TDE_ASSIGN_OR_RETURN(i, in.FieldIndex(a.input));
      input_type = in.field(i).type;
    }
    agg_idx_.push_back(i);
    agg_types_.push_back(input_type);
    schema_.AddField({a.output, agg_internal::OutputType(a.kind, input_type)});
  }
  group_open_ = false;
  input_done_ = false;
  pending_keys_.clear();
  pending_aggs_.assign(options_.aggs.size(), {});
  states_.assign(options_.aggs.size(), AggState{});
  agg_heaps_.assign(options_.aggs.size(), nullptr);
  norm_.reset();
  norm_state_ = -1;
  groups_late_materialized_ = 0;
  return Status::OK();
}

void OrderedAggregate::CloseGroup() {
  if (!group_open_) return;
  pending_keys_.push_back(group_key_);
  if (norm_state_ == 1) ++groups_late_materialized_;
  for (size_t a = 0; a < states_.size(); ++a) {
    pending_aggs_[a].push_back(agg_internal::Finalize(
        options_.aggs[a].kind, agg_types_[a], &states_[a],
        agg_heaps_[a].get()));
    states_[a] = AggState{};
  }
  group_open_ = false;
}

Status OrderedAggregate::Next(Block* block, bool* eos) {
  block->columns.clear();
  while (!input_done_ && pending_keys_.size() < kBlockSize) {
    Block in;
    bool child_eos = false;
    TDE_RETURN_NOT_OK(child_->Next(&in, &child_eos));
    if (child_eos) {
      input_done_ = true;
      CloseGroup();
      break;
    }
    const size_t n = in.rows();
    if (n > 0 && key_type_ == TypeId::kString && key_heap_ == nullptr) {
      key_heap_ = in.columns[key_idx_].heap;
    }
    if (n > 0 && norm_state_ == -1) {
      const bool on = options_.dict_code_keys &&
                      key_type_ == TypeId::kString &&
                      in.columns[key_idx_].heap != nullptr;
      norm_state_ = on ? 1 : 0;
      if (on) norm_ = std::make_unique<StringKeyNormalizer>();
    }
    if (n > 0) {
      for (size_t a = 0; a < agg_idx_.size(); ++a) {
        if (agg_heaps_[a] == nullptr &&
            options_.aggs[a].kind != AggKind::kCountStar &&
            agg_types_[a] == TypeId::kString) {
          agg_heaps_[a] = in.columns[agg_idx_[a]].heap;
        }
      }
    }
    for (size_t r = 0; r < n; ++r) {
      Lane key = in.columns[key_idx_].lanes[r];
      if (norm_state_ == 1) {
        key = static_cast<Lane>(
            norm_->Code(in.columns[key_idx_].heap, key));
      }
      if (!group_open_ || key != group_key_) {
        CloseGroup();
        group_open_ = true;
        group_key_ = key;
      }
      for (size_t a = 0; a < states_.size(); ++a) {
        const Lane v = options_.aggs[a].kind == AggKind::kCountStar
                           ? 0
                           : in.columns[agg_idx_[a]].lanes[r];
        TDE_RETURN_NOT_OK(agg_internal::Update(options_.aggs[a].kind,
                                               agg_types_[a], v, &states_[a],
                                               agg_heaps_[a].get()));
      }
    }
  }
  if (pending_keys_.empty()) {
    *eos = true;
    return Status::OK();
  }
  const size_t take = std::min<size_t>(pending_keys_.size(), kBlockSize);
  ColumnVector keys;
  keys.type = key_type_;
  keys.heap = key_heap_;
  keys.lanes.assign(pending_keys_.begin(),
                    pending_keys_.begin() + static_cast<ptrdiff_t>(take));
  if (norm_state_ == 1) {
    // Late materialization: codes resolve against the normalizer's emit
    // heap as of this block; earlier blocks keep the heap they captured.
    keys.heap = norm_->emit_heap();
    for (Lane& l : keys.lanes) {
      l = norm_->Token(static_cast<uint32_t>(l));
    }
  }
  block->columns.push_back(std::move(keys));
  for (size_t a = 0; a < pending_aggs_.size(); ++a) {
    ColumnVector cv;
    cv.type = schema_.field(1 + a).type;
    if (cv.type == TypeId::kString) cv.heap = agg_heaps_[a];
    cv.lanes.assign(pending_aggs_[a].begin(),
                    pending_aggs_[a].begin() + static_cast<ptrdiff_t>(take));
    block->columns.push_back(std::move(cv));
    pending_aggs_[a].erase(
        pending_aggs_[a].begin(),
        pending_aggs_[a].begin() + static_cast<ptrdiff_t>(take));
  }
  pending_keys_.erase(pending_keys_.begin(),
                      pending_keys_.begin() + static_cast<ptrdiff_t>(take));
  *eos = false;
  return Status::OK();
}

}  // namespace tde
