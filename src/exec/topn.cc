#include "src/exec/topn.h"

#include <algorithm>
#include <utility>

namespace tde {

namespace {

/// Types whose stored lane order is the sort order, making segment
/// min/max lanes directly comparable against heap thresholds. Reals are
/// excluded (the IEEE bit pattern is not order-isomorphic as an int64)
/// and strings are excluded (zone lanes would be heap tokens).
bool ZoneComparable(TypeId t) {
  return t == TypeId::kInteger || t == TypeId::kDate ||
         t == TypeId::kDateTime || t == TypeId::kBool;
}

std::vector<TopNSource> OneSource(std::unique_ptr<Operator> child) {
  std::vector<TopNSource> sources;
  sources.emplace_back();
  sources.back().op = std::move(child);
  return sources;
}

}  // namespace

TopN::TopN(std::vector<TopNSource> sources, std::vector<SortKey> keys,
           uint64_t limit, TopNOptions options)
    : sources_(std::move(sources)),
      keys_(std::move(keys)),
      limit_(limit),
      options_(options) {}

TopN::TopN(std::unique_ptr<Operator> child, std::vector<SortKey> keys,
           uint64_t limit, TopNOptions options)
    : TopN(OneSource(std::move(child)), std::move(keys), limit, options) {}

const Schema& TopN::output_schema() const {
  return sources_.front().op->output_schema();
}

void TopN::RefreshKeys() {
  for (size_t k = 0; k < keys_.size(); ++k) {
    sortkeys::PreparedKey& p = prepared_[k];
    if (p.type != TypeId::kString) continue;
    const size_t col = key_cols_[k];
    const std::shared_ptr<const StringHeap>& owner = unifiers_[col].heap();
    const StringHeap* heap = owner.get();
    sortkeys::StringKeyMode mode;
    if (heap == nullptr || !options_.dict_sort || translated_[col]) {
      // A column that re-interned a foreign heap keeps growing, so raw
      // tokens / cached ranks are stale the moment they are built; the
      // collation fallback stays correct as the heap grows.
      mode = sortkeys::StringKeyMode::kCollate;
    } else if (heap->sorted()) {
      mode = sortkeys::StringKeyMode::kRawTokens;
    } else {
      mode = sortkeys::StringKeyMode::kRanks;
    }
    if (mode == p.mode && heap == p.heap) continue;
    const sortkeys::StringKeyMode prev = p.mode;
    p.mode = mode;
    p.heap = heap;
    // Rank lanes and token lanes live in different integer domains; on a
    // mode change re-derive the stored comparison lanes from the kept
    // rows' tokens. All three modes order identically (rank order ==
    // token order of a sorted heap == collation order), so the heap's
    // shape stays valid.
    if (prev == sortkeys::StringKeyMode::kRanks ||
        mode == sortkeys::StringKeyMode::kRanks) {
      for (size_t i = 0; i < key_store_[k].size(); ++i) {
        const Lane token = store_[col].lanes[i];
        key_store_[k][i] = mode == sortkeys::StringKeyMode::kRanks
                               ? rank_cache_.Rank(owner, token)
                               : token;
      }
    }
  }
}

bool TopN::RowLess(uint32_t a, uint32_t b) const {
  for (size_t k = 0; k < prepared_.size(); ++k) {
    const int cmp = sortkeys::KeyCompareDirected(prepared_[k],
                                                 key_store_[k][a],
                                                 key_store_[k][b]);
    if (cmp != 0) return cmp < 0;
  }
  return seq_store_[a] < seq_store_[b];
}

bool TopN::CandidateBeats(uint32_t slot) const {
  for (size_t k = 0; k < prepared_.size(); ++k) {
    const int cmp = sortkeys::KeyCompareDirected(prepared_[k], cand_[k],
                                                 key_store_[k][slot]);
    if (cmp != 0) return cmp < 0;
  }
  return false;  // full tie: the stored row came first and wins
}

Status TopN::DrainSource(Operator* op, bool sorted_source) {
  const auto less = [this](uint32_t a, uint32_t b) { return RowLess(a, b); };
  bool stop = false;
  while (!stop) {
    Block b;
    bool eos = false;
    TDE_RETURN_NOT_OK(op->Next(&b, &eos));
    if (eos) break;
    for (size_t i = 0; i < b.columns.size() && i < store_.size(); ++i) {
      ColumnVector& in = b.columns[i];
      if (in.heap != nullptr) {
        const StringHeap* prev = unifiers_[i].heap().get();
        unifiers_[i].UnifyBlock(&in);
        if (prev != nullptr && unifiers_[i].heap().get() != prev) {
          translated_[i] = true;
        }
      }
      if (store_[i].dict == nullptr) store_[i].dict = in.dict;
    }
    RefreshKeys();
    const size_t rows = b.rows();
    for (size_t r = 0; r < rows; ++r) {
      ++input_rows_;
      ++seq_;
      for (size_t k = 0; k < keys_.size(); ++k) {
        Lane lane = b.columns[key_cols_[k]].lanes[r];
        if (prepared_[k].mode == sortkeys::StringKeyMode::kRanks) {
          // kRanks implies the unifier holds the (non-null) heap the
          // prepared key was refreshed against.
          lane = rank_cache_.Rank(unifiers_[key_cols_[k]].heap(), lane);
        }
        cand_[k] = lane;
      }
      const bool full = heap_.size() >= limit_;
      if (full) {
        if (sorted_source && !keys_.empty()) {
          const int cmp0 = sortkeys::KeyCompareDirected(
              prepared_[0], cand_[0], key_store_[0][heap_.front()]);
          if (cmp0 > 0 || (cmp0 == 0 && keys_.size() == 1)) {
            // Sorted input: every later row is at least this bad.
            early_stopped_ = true;
            stop = true;
            break;
          }
        }
        if (!CandidateBeats(heap_.front())) continue;
        std::pop_heap(heap_.begin(), heap_.end(), less);
        const uint32_t slot = heap_.back();
        for (size_t i = 0; i < store_.size(); ++i) {
          store_[i].lanes[slot] = b.columns[i].lanes[r];
        }
        for (size_t k = 0; k < keys_.size(); ++k) {
          key_store_[k][slot] = cand_[k];
        }
        seq_store_[slot] = seq_;
        ++rows_materialized_;
        std::push_heap(heap_.begin(), heap_.end(), less);
      } else {
        const uint32_t slot = static_cast<uint32_t>(seq_store_.size());
        for (size_t i = 0; i < store_.size(); ++i) {
          store_[i].lanes.push_back(b.columns[i].lanes[r]);
        }
        for (size_t k = 0; k < keys_.size(); ++k) {
          key_store_[k].push_back(cand_[k]);
        }
        seq_store_.push_back(seq_);
        ++rows_materialized_;
        heap_.push_back(slot);
        std::push_heap(heap_.begin(), heap_.end(), less);
      }
    }
  }
  op->Close();
  return Status::OK();
}

void TopN::Finalize() {
  for (size_t i = 0; i < store_.size(); ++i) {
    if (unifiers_[i].heap() != nullptr) store_[i].heap = unifiers_[i].heap();
  }
  result_.resize(seq_store_.size());
  for (uint32_t i = 0; i < result_.size(); ++i) result_[i] = i;
  std::sort(result_.begin(), result_.end(),
            [this](uint32_t a, uint32_t b) { return RowLess(a, b); });
  for (const sortkeys::PreparedKey& p : prepared_) {
    if (p.type == TypeId::kString &&
        p.mode != sortkeys::StringKeyMode::kCollate) {
      ++dict_keys_;
    }
  }
}

Status TopN::Open() {
  // Flow operators only know their output schema once opened, so the first
  // source opens before key preparation. It is never a lost opportunity:
  // the heap is empty until the first source drains, so the first source
  // can never be zone-skipped anyway.
  TDE_RETURN_NOT_OK(sources_.front().op->Open());
  const Schema& schema = output_schema();
  store_.assign(schema.num_fields(), ColumnVector{});
  unifiers_.assign(schema.num_fields(), sortkeys::HeapUnifier{});
  translated_.assign(schema.num_fields(), 0);
  for (size_t i = 0; i < schema.num_fields(); ++i) {
    store_[i].type = schema.field(i).type;
  }
  key_cols_.clear();
  prepared_.clear();
  for (const SortKey& key : keys_) {
    TDE_ASSIGN_OR_RETURN(size_t idx, schema.FieldIndex(key.column));
    key_cols_.push_back(idx);
    sortkeys::PreparedKey p;
    p.col = idx;
    p.ascending = key.ascending;
    p.type = schema.field(idx).type;
    p.mode = sortkeys::StringKeyMode::kCollate;
    prepared_.push_back(p);
  }
  key_store_.assign(keys_.size(), {});
  cand_.assign(keys_.size(), 0);
  emit_ = 0;
  if (limit_ == 0) {
    // Nothing can ever surface; the (already open) first source closes
    // unread and the remaining sources never open at all.
    sources_.front().op->Close();
    return Status::OK();
  }

  const bool single_sorted = options_.input_sorted && sources_.size() == 1;
  bool first = true;
  for (TopNSource& src : sources_) {
    if (!first) {
      if (heap_.size() >= limit_ && src.zone_known && !keys_.empty() &&
          ZoneComparable(prepared_[0].type)) {
        // Best row this source could hold, under the first key's direction
        // (ascending: its minimum, or NULL which orders below everything;
        // descending: its maximum — NULLs order last there).
        const Lane best = keys_[0].ascending
                              ? (src.has_nulls ? kNullSentinel : src.min_value)
                              : src.max_value;
        const int cmp = sortkeys::KeyCompareDirected(
            prepared_[0], best, key_store_[0][heap_.front()]);
        if (cmp > 0 || (cmp == 0 && keys_.size() == 1)) {
          // Skipped sources are never opened: their cold columns stay on
          // disk.
          ++segments_skipped_;
          continue;
        }
      }
      TDE_RETURN_NOT_OK(src.op->Open());
    }
    first = false;
    TDE_RETURN_NOT_OK(DrainSource(src.op.get(), single_sorted));
  }
  Finalize();
  return Status::OK();
}

Status TopN::Next(Block* block, bool* eos) {
  block->columns.clear();
  const uint64_t n = result_.size();
  if (emit_ >= n) {
    *eos = true;
    return Status::OK();
  }
  const size_t take =
      static_cast<size_t>(std::min<uint64_t>(kBlockSize, n - emit_));
  block->columns.reserve(store_.size());
  for (const ColumnVector& col : store_) {
    ColumnVector out;
    out.type = col.type;
    out.heap = col.heap;
    out.dict = col.dict;
    out.lanes.resize(take);
    for (size_t i = 0; i < take; ++i) {
      out.lanes[i] = col.lanes[result_[emit_ + i]];
    }
    block->columns.push_back(std::move(out));
  }
  emit_ += take;
  *eos = false;
  return Status::OK();
}

}  // namespace tde
