#include "src/exec/exchange.h"

#include <chrono>

#include "src/observe/journal.h"

namespace tde {

namespace {
uint64_t NowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}
}  // namespace

struct Exchange::Shared {
  std::mutex mu;
  std::condition_variable cv_input;
  std::condition_variable cv_output;

  // Producer -> workers.
  std::deque<std::pair<uint64_t, Block>> input;
  bool input_done = false;
  // Workers -> consumer, keyed by sequence number.
  std::map<uint64_t, Block> output;
  std::deque<Block> unordered_output;
  int workers_running = 0;
  Status error;
  bool stop = false;
  // Blocks admitted by the producer / emitted to the consumer. Their
  // difference is the total number of blocks in flight (input queue +
  // workers + output), which is what the admission bound limits — so any
  // admitted block can always be pushed to the output side and the
  // order-preserving merge can never wedge on a bounded output queue.
  uint64_t admitted = 0;
  uint64_t emitted = 0;

  static constexpr uint64_t kInFlightLimit = 32;

  /// True when producer and workers should cease (abort or failure).
  bool aborted() const { return stop || !error.ok(); }
};

Exchange::Exchange(std::unique_ptr<Operator> child, ExchangeOptions options)
    : child_(std::move(child)), options_(std::move(options)) {}

Exchange::Exchange(std::vector<std::unique_ptr<Operator>> partitions,
                   ExchangeOptions options)
    : partitions_(std::move(partitions)), options_(std::move(options)) {
  // Partitions drain independently and interleave as they finish; there is
  // no global sequence numbering to restore, so ordered merge is off.
  options_.order_preserving = false;
  options_.workers = static_cast<int>(partitions_.size());
}

Exchange::~Exchange() { StopThreads(); }

Status Exchange::Open() {
  shared_ = std::make_unique<Shared>();
  next_to_emit_ = 0;
  run_stats_ = ExchangeRunStats{};
  run_stats_.workers.resize(static_cast<size_t>(options_.workers));
  shared_->workers_running = options_.workers;
  // Producer and workers adopt the opening thread's query scope, so the
  // counters they bump (scan bytes, pager faults, prunes) are attributed
  // to the query that spawned them.
  observe::StatsScope* scope = observe::StatsScope::Current();
  if (!partitions_.empty()) {
    for (auto& p : partitions_) TDE_RETURN_NOT_OK(p->Open());
    for (size_t i = 0; i < partitions_.size(); ++i) {
      threads_.emplace_back([this, i, scope]() {
        observe::StatsScope::Bind bind(scope);
        PartitionWorkerLoop(i);
      });
    }
    return Status::OK();
  }
  TDE_RETURN_NOT_OK(child_->Open());
  threads_.emplace_back([this, scope]() {
    observe::StatsScope::Bind bind(scope);
    ProducerLoop();
  });
  for (int i = 0; i < options_.workers; ++i) {
    threads_.emplace_back([this, i, scope]() {
      observe::StatsScope::Bind bind(scope);
      WorkerLoop(static_cast<size_t>(i));
    });
  }
  return Status::OK();
}

void Exchange::ProducerLoop() {
  while (true) {
    {
      // Admission control: wait until there is in-flight headroom before
      // pulling the next block from the child, so an aborted or slow
      // consumer never lets queued blocks grow without bound.
      std::unique_lock<std::mutex> lock(shared_->mu);
      const uint64_t t0 = NowNs();
      shared_->cv_output.wait(lock, [this]() {
        return shared_->admitted - shared_->emitted < Shared::kInFlightLimit ||
               shared_->aborted();
      });
      run_stats_.producer_wait_ns += NowNs() - t0;
      if (shared_->aborted()) {
        shared_->input_done = true;
        shared_->cv_input.notify_all();
        return;
      }
    }
    Block b;
    bool eos = false;
    Status st = child_->Next(&b, &eos);
    std::unique_lock<std::mutex> lock(shared_->mu);
    if (!st.ok()) {
      shared_->error = st;
      shared_->input_done = true;
      shared_->cv_input.notify_all();
      shared_->cv_output.notify_all();
      return;
    }
    if (eos) {
      shared_->input_done = true;
      shared_->cv_input.notify_all();
      return;
    }
    shared_->input.emplace_back(shared_->admitted++, std::move(b));
    run_stats_.blocks_in++;
    shared_->cv_input.notify_one();
  }
}

void Exchange::WorkerLoop(size_t worker_index) {
  ExchangeWorkerStats& ws = run_stats_.workers[worker_index];
  while (true) {
    std::pair<uint64_t, Block> item;
    {
      std::unique_lock<std::mutex> lock(shared_->mu);
      const uint64_t t0 = NowNs();
      shared_->cv_input.wait(lock, [this]() {
        return !shared_->input.empty() || shared_->input_done ||
               shared_->aborted();
      });
      ws.queue_wait_ns += NowNs() - t0;
      if (shared_->aborted() ||
          (shared_->input.empty() && shared_->input_done)) {
        --shared_->workers_running;
        shared_->cv_output.notify_all();
        return;
      }
      item = std::move(shared_->input.front());
      shared_->input.pop_front();
    }
    Status st;
    if (options_.transform) {
      st = options_.transform(child_->output_schema(), &item.second);
    }
    std::unique_lock<std::mutex> lock(shared_->mu);
    if (!st.ok()) {
      if (shared_->error.ok()) shared_->error = st;
      // Failure short-circuit: wake everyone so the producer stops pulling
      // blocks and sibling workers drain out.
      shared_->cv_input.notify_all();
    } else {
      ws.blocks++;
      ws.rows_emitted += item.second.rows();
      if (options_.order_preserving) {
        shared_->output.emplace(item.first, std::move(item.second));
      } else {
        shared_->unordered_output.push_back(std::move(item.second));
      }
    }
    shared_->cv_output.notify_all();
  }
}

void Exchange::PartitionWorkerLoop(size_t worker_index) {
  ExchangeWorkerStats& ws = run_stats_.workers[worker_index];
  Operator* source = partitions_[worker_index].get();
  while (true) {
    {
      // Same admission bound as the shared-queue mode: a worker reserves
      // in-flight headroom before pulling its next block, so a slow
      // consumer throttles all partitions instead of buffering them.
      std::unique_lock<std::mutex> lock(shared_->mu);
      const uint64_t t0 = NowNs();
      shared_->cv_output.wait(lock, [this]() {
        return shared_->admitted - shared_->emitted < Shared::kInFlightLimit ||
               shared_->aborted();
      });
      ws.queue_wait_ns += NowNs() - t0;
      if (shared_->aborted()) {
        --shared_->workers_running;
        shared_->cv_output.notify_all();
        return;
      }
      ++shared_->admitted;
    }
    Block b;
    bool eos = false;
    Status st = source->Next(&b, &eos);
    if (st.ok() && !eos && options_.transform) {
      st = options_.transform(source->output_schema(), &b);
    }
    std::unique_lock<std::mutex> lock(shared_->mu);
    if (!st.ok() || eos) {
      --shared_->admitted;  // the reserved slot was never filled
      if (!st.ok() && shared_->error.ok()) shared_->error = st;
      --shared_->workers_running;
      shared_->cv_output.notify_all();
      return;
    }
    run_stats_.blocks_in++;
    ws.blocks++;
    ws.rows_emitted += b.rows();
    shared_->unordered_output.push_back(std::move(b));
    shared_->cv_output.notify_all();
  }
}

Status Exchange::Next(Block* block, bool* eos) {
  if (shared_ == nullptr) {
    return Status::Internal("Exchange::Next before successful Open");
  }
  std::unique_lock<std::mutex> lock(shared_->mu);
  while (true) {
    if (!shared_->error.ok()) return shared_->error;
    if (options_.order_preserving) {
      auto it = shared_->output.find(next_to_emit_);
      if (it != shared_->output.end()) {
        *block = std::move(it->second);
        shared_->output.erase(it);
        ++next_to_emit_;
        ++shared_->emitted;
        shared_->cv_output.notify_all();
        *eos = false;
        return Status::OK();
      }
    } else if (!shared_->unordered_output.empty()) {
      *block = std::move(shared_->unordered_output.front());
      shared_->unordered_output.pop_front();
      ++shared_->emitted;
      shared_->cv_output.notify_all();
      *eos = false;
      return Status::OK();
    }
    if (shared_->workers_running == 0 && shared_->input.empty()) {
      // Order-preserving: any remaining out-of-order blocks are complete.
      if (options_.order_preserving && !shared_->output.empty()) {
        auto it = shared_->output.begin();
        *block = std::move(it->second);
        shared_->output.erase(it);
        *eos = false;
        return Status::OK();
      }
      *eos = true;
      return Status::OK();
    }
    const uint64_t t0 = NowNs();
    shared_->cv_output.wait(lock);
    run_stats_.consumer_wait_ns += NowNs() - t0;
  }
}

void Exchange::StopThreads() {
  if (shared_ != nullptr) {
    {
      std::unique_lock<std::mutex> lock(shared_->mu);
      shared_->stop = true;
      shared_->cv_input.notify_all();
      shared_->cv_output.notify_all();
    }
    for (auto& t : threads_) {
      if (t.joinable()) t.join();
    }
    threads_.clear();
  }
}

void Exchange::Close() {
  StopThreads();
  if (child_ != nullptr) child_->Close();
  for (auto& p : partitions_) p->Close();
}

}  // namespace tde
