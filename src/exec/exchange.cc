#include "src/exec/exchange.h"

#include <chrono>
#include <condition_variable>
#include <thread>

#include "src/observe/journal.h"

namespace tde {

namespace {
uint64_t NowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}
}  // namespace

struct Exchange::Shared {
  std::mutex mu;
  std::condition_variable cv_output;

  // Producer -> transform tasks (child mode).
  std::deque<std::pair<uint64_t, Block>> input;
  bool producer_done = false;       // child mode: eos, error or abort seen
  uint64_t pending_transforms = 0;  // transform tasks submitted, unfinished
  int partitions_active = 0;        // partition mode: sources still draining
  // Workers -> consumer, keyed by sequence number.
  std::map<uint64_t, Block> output;
  std::deque<Block> unordered_output;
  Status error;
  bool stop = false;
  // Blocks admitted by the producer / emitted to the consumer. Their
  // difference is the total number of blocks in flight (input queue +
  // workers + output), which is what the admission bound limits — so any
  // admitted block can always be pushed to the output side and the
  // order-preserving merge can never wedge on a bounded output queue.
  uint64_t admitted = 0;
  uint64_t emitted = 0;

  // Parked tasks: a producer/partition out of in-flight headroom exits its
  // task (never blocks a pool slot) and records itself here; the consumer
  // resubmits it as emits free headroom.
  bool producer_parked = false;
  uint64_t producer_parked_at = 0;
  std::deque<size_t> parked_partitions;
  std::vector<uint64_t> partition_parked_at;

  // Open() ran on a pool worker (nested exchange): degrade to synchronous
  // pass-through so a fixed pool can never deadlock on itself.
  bool inline_mode = false;

  static constexpr uint64_t kInFlightLimit = 32;
  // Blocks a producer/partition task processes before resubmitting itself,
  // so the scheduler's round-robin can interleave other groups' work.
  static constexpr int kTaskQuantum = 8;

  /// True when producer and workers should cease (abort or failure).
  bool aborted() const { return stop || !error.ok(); }
  bool headroom() const { return admitted - emitted < kInFlightLimit; }
};

Exchange::Exchange(std::unique_ptr<Operator> child, ExchangeOptions options)
    : child_(std::move(child)), options_(std::move(options)) {}

Exchange::Exchange(std::vector<std::unique_ptr<Operator>> partitions,
                   ExchangeOptions options)
    : partitions_(std::move(partitions)), options_(std::move(options)) {
  // Partitions drain independently and interleave as they finish; there is
  // no global sequence numbering to restore, so ordered merge is off.
  options_.order_preserving = false;
  options_.workers = static_cast<int>(partitions_.size());
}

Exchange::~Exchange() { StopTasks(); }

Status Exchange::Open() {
  shared_ = std::make_unique<Shared>();
  next_to_emit_ = 0;
  inline_partition_ = 0;
  run_stats_ = ExchangeRunStats{};
  scheduler_ = &TaskScheduler::Global();
  nslots_ = options_.workers > 0 ? options_.workers
                                 : scheduler_->SuggestedQueryParallelism();
  run_stats_.workers.resize(static_cast<size_t>(nslots_));
  shared_->inline_mode = TaskScheduler::OnWorkerThread();
  // The task group adopts the opening thread's query scope, so the
  // counters pool workers bump on our behalf (scan bytes, pager faults,
  // prunes) are attributed to the query that opened the exchange.
  if (!partitions_.empty()) {
    shared_->partitions_active = static_cast<int>(partitions_.size());
    shared_->partition_parked_at.assign(partitions_.size(), 0);
    for (auto& p : partitions_) TDE_RETURN_NOT_OK(p->Open());
    if (!shared_->inline_mode) {
      group_ = scheduler_->CreateGroup();
      for (size_t i = 0; i < partitions_.size(); ++i) {
        group_->Submit([this, i]() { PartitionStep(i); });
      }
    }
    return Status::OK();
  }
  TDE_RETURN_NOT_OK(child_->Open());
  if (!shared_->inline_mode) {
    group_ = scheduler_->CreateGroup();
    group_->Submit([this]() { ProducerStep(); });
  }
  return Status::OK();
}

void Exchange::ProducerStep() {
  for (int q = 0; q < Shared::kTaskQuantum; ++q) {
    {
      std::unique_lock<std::mutex> lock(shared_->mu);
      if (shared_->aborted()) {
        shared_->producer_done = true;
        shared_->cv_output.notify_all();
        return;
      }
      // Admission control: park until there is in-flight headroom before
      // pulling the next block from the child, so an aborted or slow
      // consumer never lets queued blocks grow without bound.
      if (!shared_->headroom()) {
        shared_->producer_parked = true;
        shared_->producer_parked_at = NowNs();
        return;  // the consumer resubmits us as it frees a slot
      }
    }
    Block b;
    bool eos = false;
    Status st = child_->Next(&b, &eos);
    std::unique_lock<std::mutex> lock(shared_->mu);
    if (!st.ok() || eos) {
      if (!st.ok() && shared_->error.ok()) shared_->error = st;
      shared_->producer_done = true;
      shared_->cv_output.notify_all();
      return;
    }
    shared_->input.emplace_back(shared_->admitted++, std::move(b));
    run_stats_.blocks_in++;
    shared_->pending_transforms++;
    const uint64_t submit_ns = NowNs();
    group_->Submit([this, submit_ns]() { TransformTask(submit_ns); });
  }
  group_->Submit([this]() { ProducerStep(); });  // yield to other groups
}

void Exchange::TransformTask(uint64_t submit_ns) {
  std::pair<uint64_t, Block> item;
  {
    std::unique_lock<std::mutex> lock(shared_->mu);
    if (shared_->aborted() || shared_->input.empty()) {
      shared_->pending_transforms--;
      shared_->cv_output.notify_all();
      return;
    }
    item = std::move(shared_->input.front());
    shared_->input.pop_front();
    // Attribute the scheduler's submit-to-start delay as this virtual
    // worker's input wait.
    run_stats_.workers[item.first % static_cast<uint64_t>(nslots_)]
        .queue_wait_ns += NowNs() - submit_ns;
  }
  Status st;
  if (options_.transform) {
    st = options_.transform(child_->output_schema(), &item.second);
  }
  std::unique_lock<std::mutex> lock(shared_->mu);
  shared_->pending_transforms--;
  if (!st.ok()) {
    if (shared_->error.ok()) shared_->error = st;
  } else {
    ExchangeWorkerStats& ws =
        run_stats_.workers[item.first % static_cast<uint64_t>(nslots_)];
    ws.blocks++;
    ws.rows_emitted += item.second.rows();
    if (options_.order_preserving) {
      shared_->output.emplace(item.first, std::move(item.second));
    } else {
      shared_->unordered_output.push_back(std::move(item.second));
    }
  }
  shared_->cv_output.notify_all();
}

void Exchange::PartitionStep(size_t partition_index) {
  Operator* source = partitions_[partition_index].get();
  for (int q = 0; q < Shared::kTaskQuantum; ++q) {
    {
      // Same admission bound as the shared-queue mode: a partition
      // reserves in-flight headroom before pulling its next block, so a
      // slow consumer throttles all partitions instead of buffering them.
      std::unique_lock<std::mutex> lock(shared_->mu);
      if (shared_->aborted()) {
        --shared_->partitions_active;
        shared_->cv_output.notify_all();
        return;
      }
      if (!shared_->headroom()) {
        shared_->parked_partitions.push_back(partition_index);
        shared_->partition_parked_at[partition_index] = NowNs();
        return;  // the consumer resubmits us as it frees a slot
      }
      ++shared_->admitted;
    }
    Block b;
    bool eos = false;
    Status st = source->Next(&b, &eos);
    if (st.ok() && !eos && options_.transform) {
      st = options_.transform(source->output_schema(), &b);
    }
    std::unique_lock<std::mutex> lock(shared_->mu);
    if (!st.ok() || eos) {
      --shared_->admitted;  // the reserved slot was never filled
      if (!st.ok() && shared_->error.ok()) shared_->error = st;
      --shared_->partitions_active;
      shared_->cv_output.notify_all();
      return;
    }
    ExchangeWorkerStats& ws = run_stats_.workers[partition_index];
    run_stats_.blocks_in++;
    ws.blocks++;
    ws.rows_emitted += b.rows();
    shared_->unordered_output.push_back(std::move(b));
    shared_->cv_output.notify_all();
  }
  group_->Submit([this, partition_index]() { PartitionStep(partition_index); });
}

void Exchange::UnparkForHeadroomLocked() {
  if (shared_->aborted() || !shared_->headroom()) return;
  if (shared_->producer_parked) {
    shared_->producer_parked = false;
    run_stats_.producer_wait_ns += NowNs() - shared_->producer_parked_at;
    group_->Submit([this]() { ProducerStep(); });
    return;
  }
  if (!shared_->parked_partitions.empty()) {
    const size_t i = shared_->parked_partitions.front();
    shared_->parked_partitions.pop_front();
    run_stats_.workers[i].queue_wait_ns +=
        NowNs() - shared_->partition_parked_at[i];
    group_->Submit([this, i]() { PartitionStep(i); });
  }
}

Status Exchange::NextInline(Block* block, bool* eos) {
  if (!shared_->error.ok()) return shared_->error;
  if (shared_->stop) {
    *eos = true;
    return Status::OK();
  }
  if (child_ != nullptr) {
    Block b;
    bool child_eos = false;
    Status st = child_->Next(&b, &child_eos);
    if (st.ok() && !child_eos && options_.transform) {
      st = options_.transform(child_->output_schema(), &b);
    }
    if (!st.ok()) {
      shared_->error = st;
      return st;
    }
    if (child_eos) {
      *eos = true;
      return Status::OK();
    }
    ExchangeWorkerStats& ws =
        run_stats_.workers[run_stats_.blocks_in %
                           static_cast<uint64_t>(nslots_)];
    run_stats_.blocks_in++;
    ws.blocks++;
    ws.rows_emitted += b.rows();
    *block = std::move(b);
    *eos = false;
    return Status::OK();
  }
  while (inline_partition_ < partitions_.size()) {
    Operator* source = partitions_[inline_partition_].get();
    Block b;
    bool part_eos = false;
    Status st = source->Next(&b, &part_eos);
    if (st.ok() && !part_eos && options_.transform) {
      st = options_.transform(source->output_schema(), &b);
    }
    if (!st.ok()) {
      shared_->error = st;
      return st;
    }
    if (part_eos) {
      ++inline_partition_;
      continue;
    }
    ExchangeWorkerStats& ws = run_stats_.workers[inline_partition_];
    run_stats_.blocks_in++;
    ws.blocks++;
    ws.rows_emitted += b.rows();
    *block = std::move(b);
    *eos = false;
    return Status::OK();
  }
  *eos = true;
  return Status::OK();
}

Status Exchange::Next(Block* block, bool* eos) {
  if (shared_ == nullptr) {
    return Status::Internal("Exchange::Next before successful Open");
  }
  if (shared_->inline_mode) return NextInline(block, eos);
  std::unique_lock<std::mutex> lock(shared_->mu);
  while (true) {
    if (!shared_->error.ok()) return shared_->error;
    if (shared_->stop) {
      *eos = true;
      return Status::OK();
    }
    if (options_.order_preserving) {
      auto it = shared_->output.find(next_to_emit_);
      if (it != shared_->output.end()) {
        *block = std::move(it->second);
        shared_->output.erase(it);
        ++next_to_emit_;
        ++shared_->emitted;
        UnparkForHeadroomLocked();
        *eos = false;
        return Status::OK();
      }
    } else if (!shared_->unordered_output.empty()) {
      *block = std::move(shared_->unordered_output.front());
      shared_->unordered_output.pop_front();
      ++shared_->emitted;
      UnparkForHeadroomLocked();
      *eos = false;
      return Status::OK();
    }
    const bool work_done =
        child_ != nullptr
            ? (shared_->producer_done && shared_->pending_transforms == 0)
            : shared_->partitions_active == 0;
    if (work_done && shared_->input.empty()) {
      // Order-preserving: any remaining out-of-order blocks are complete.
      if (options_.order_preserving && !shared_->output.empty()) {
        auto it = shared_->output.begin();
        *block = std::move(it->second);
        shared_->output.erase(it);
        *eos = false;
        return Status::OK();
      }
      *eos = true;
      return Status::OK();
    }
    const uint64_t t0 = NowNs();
    if (TaskScheduler::OnWorkerThread()) {
      // Consuming from a pool thread (nested exchange): run pool tasks
      // ourselves instead of blocking a fixed-pool slot on work that may
      // be queued behind us.
      lock.unlock();
      if (!scheduler_->TryRunOneTask()) std::this_thread::yield();
      lock.lock();
    } else {
      shared_->cv_output.wait(lock);
    }
    run_stats_.consumer_wait_ns += NowNs() - t0;
  }
}

void Exchange::StopTasks() {
  if (shared_ == nullptr) return;
  {
    std::unique_lock<std::mutex> lock(shared_->mu);
    shared_->stop = true;
    shared_->cv_output.notify_all();
  }
  if (group_ != nullptr) {
    // Queued tasks retire unrun; in-flight ones observe the stop flag at
    // their next lock point. Wait() helps drain, so this cannot wedge even
    // when the pool is saturated by other queries.
    group_->Cancel();
    group_->Wait();
    group_.reset();
  }
}

void Exchange::Close() {
  StopTasks();
  if (child_ != nullptr) child_->Close();
  for (auto& p : partitions_) p->Close();
}

}  // namespace tde
