#include "src/exec/exchange.h"

namespace tde {

struct Exchange::Shared {
  std::mutex mu;
  std::condition_variable cv_input;
  std::condition_variable cv_output;

  // Producer -> workers.
  std::deque<std::pair<uint64_t, Block>> input;
  bool input_done = false;
  // Workers -> consumer, keyed by sequence number.
  std::map<uint64_t, Block> output;
  std::deque<Block> unordered_output;
  int workers_running = 0;
  Status error;
  bool stop = false;

  static constexpr size_t kQueueLimit = 16;
};

Exchange::Exchange(std::unique_ptr<Operator> child, ExchangeOptions options)
    : child_(std::move(child)), options_(std::move(options)) {}

Exchange::~Exchange() { StopThreads(); }

Status Exchange::Open() {
  TDE_RETURN_NOT_OK(child_->Open());
  shared_ = std::make_unique<Shared>();
  next_to_emit_ = 0;
  shared_->workers_running = options_.workers;
  threads_.emplace_back([this]() { ProducerLoop(); });
  for (int i = 0; i < options_.workers; ++i) {
    threads_.emplace_back([this]() { WorkerLoop(); });
  }
  return Status::OK();
}

void Exchange::ProducerLoop() {
  uint64_t seq = 0;
  while (true) {
    Block b;
    bool eos = false;
    Status st = child_->Next(&b, &eos);
    std::unique_lock<std::mutex> lock(shared_->mu);
    if (!st.ok()) {
      shared_->error = st;
      shared_->input_done = true;
      shared_->cv_input.notify_all();
      return;
    }
    if (eos) {
      shared_->input_done = true;
      shared_->cv_input.notify_all();
      return;
    }
    shared_->cv_output.wait(lock, [this]() {
      return shared_->input.size() < Shared::kQueueLimit || shared_->stop;
    });
    if (shared_->stop) return;
    shared_->input.emplace_back(seq++, std::move(b));
    shared_->cv_input.notify_one();
  }
}

void Exchange::WorkerLoop() {
  while (true) {
    std::pair<uint64_t, Block> item;
    {
      std::unique_lock<std::mutex> lock(shared_->mu);
      shared_->cv_input.wait(lock, [this]() {
        return !shared_->input.empty() || shared_->input_done || shared_->stop;
      });
      if (shared_->stop ||
          (shared_->input.empty() && shared_->input_done)) {
        --shared_->workers_running;
        shared_->cv_output.notify_all();
        return;
      }
      item = std::move(shared_->input.front());
      shared_->input.pop_front();
      shared_->cv_output.notify_all();
    }
    Status st;
    if (options_.transform) {
      st = options_.transform(child_->output_schema(), &item.second);
    }
    std::unique_lock<std::mutex> lock(shared_->mu);
    if (!st.ok()) {
      shared_->error = st;
    } else if (options_.order_preserving) {
      shared_->output.emplace(item.first, std::move(item.second));
    } else {
      shared_->unordered_output.push_back(std::move(item.second));
    }
    shared_->cv_output.notify_all();
  }
}

Status Exchange::Next(Block* block, bool* eos) {
  std::unique_lock<std::mutex> lock(shared_->mu);
  while (true) {
    if (!shared_->error.ok()) return shared_->error;
    if (options_.order_preserving) {
      auto it = shared_->output.find(next_to_emit_);
      if (it != shared_->output.end()) {
        *block = std::move(it->second);
        shared_->output.erase(it);
        ++next_to_emit_;
        *eos = false;
        return Status::OK();
      }
    } else if (!shared_->unordered_output.empty()) {
      *block = std::move(shared_->unordered_output.front());
      shared_->unordered_output.pop_front();
      *eos = false;
      return Status::OK();
    }
    if (shared_->workers_running == 0 && shared_->input.empty()) {
      // Order-preserving: any remaining out-of-order blocks are complete.
      if (options_.order_preserving && !shared_->output.empty()) {
        auto it = shared_->output.begin();
        *block = std::move(it->second);
        shared_->output.erase(it);
        *eos = false;
        return Status::OK();
      }
      *eos = true;
      return Status::OK();
    }
    shared_->cv_output.wait(lock);
  }
}

void Exchange::StopThreads() {
  if (shared_ != nullptr) {
    {
      std::unique_lock<std::mutex> lock(shared_->mu);
      shared_->stop = true;
      shared_->cv_input.notify_all();
      shared_->cv_output.notify_all();
    }
    for (auto& t : threads_) {
      if (t.joinable()) t.join();
    }
    threads_.clear();
  }
}

void Exchange::Close() {
  StopThreads();
  child_->Close();
}

}  // namespace tde
