#include "src/exec/compressed_predicate.h"

#include <algorithm>
#include <mutex>
#include <unordered_set>
#include <utility>
#include <vector>

namespace tde {
namespace expr {

namespace {

/// The compiled form of one predicate against one heap: the subtree's
/// truth table over the token domain. Tokens of a heap ascend strictly
/// (each entry starts past the previous one), so when the matching tokens
/// are consecutive entries the whole set collapses to one interval — the
/// O(1)-per-row payoff of the Sect. 3.4 header sort, since a sorted heap
/// lays range predicates out contiguously.
struct DictTranslation {
  bool is_range = true;
  Lane lo = 1, hi = 0;  // empty interval unless filled in
  std::unordered_set<Lane> tokens;
  bool null_result = false;

  bool Matches(Lane token) const {
    if (is_range) return token >= lo && token <= hi;
    return tokens.count(token) != 0;
  }
};

class DictCodePredicate : public Expression {
 public:
  DictCodePredicate(std::string column, ExprPtr inner)
      : column_(std::move(column)), inner_(std::move(inner)) {}

  Result<ColumnVector> Eval(const Block& block,
                            const Schema& schema) const override {
    auto idx = schema.FieldIndex(column_);
    if (!idx.ok()) return inner_->Eval(block, schema);
    const ColumnVector& cv = block.columns[idx.value()];
    if (cv.type != TypeId::kString || cv.heap == nullptr) {
      return inner_->Eval(block, schema);  // nothing compressed to leverage
    }
    TDE_ASSIGN_OR_RETURN(std::shared_ptr<const DictTranslation> t,
                         Translate(cv.heap));
    ColumnVector out;
    out.type = TypeId::kBool;
    const size_t n = block.rows();
    out.lanes.resize(n);
    for (size_t i = 0; i < n; ++i) {
      const Lane lane = cv.lanes[i];
      out.lanes[i] =
          (lane == kNullSentinel ? t->null_result : t->Matches(lane)) ? 1 : 0;
    }
    return out;
  }
  Result<TypeId> ResultType(const Schema&) const override {
    return TypeId::kBool;
  }
  std::string ToString() const override {
    return "dict_code[" + inner_->ToString() + "]";
  }
  void CollectColumns(std::vector<std::string>* out) const override {
    inner_->CollectColumns(out);
  }
  std::vector<ExprPtr> Children() const override { return {inner_}; }
  ExprPtr WithChildren(std::vector<ExprPtr> c) const override {
    return std::make_shared<DictCodePredicate>(column_, std::move(c[0]));
  }

  const ExprPtr& inner() const { return inner_; }

 private:
  /// Blocks of one query normally share one column heap, but expression-
  /// produced strings carry a fresh heap per block; a few slots absorb
  /// both shapes without growing unboundedly.
  static constexpr size_t kMaxCachedHeaps = 4;

  Result<std::shared_ptr<const DictTranslation>> Translate(
      const std::shared_ptr<const StringHeap>& heap) const {
    {
      std::lock_guard<std::mutex> lock(mu_);
      for (const auto& [h, t] : cache_) {
        if (h == heap) return t;
      }
    }
    // Evaluate the original subtree once over the whole token domain plus
    // the NULL sentinel (IS NULL / NOT make NULL rows pass, so the null
    // verdict must come from the expression itself, not be assumed false).
    const std::vector<Lane> domain = heap->AllTokens();
    Block b;
    b.columns.resize(1);
    ColumnVector& col = b.columns[0];
    col.type = TypeId::kString;
    col.heap = heap;
    col.lanes = domain;
    col.lanes.push_back(kNullSentinel);
    Schema schema;
    schema.AddField({column_, TypeId::kString});
    TDE_ASSIGN_OR_RETURN(ColumnVector mask, inner_->Eval(b, schema));

    auto t = std::make_shared<DictTranslation>();
    t->null_result = mask.lanes.back() == 1;
    size_t first = domain.size(), last = 0, count = 0;
    for (size_t i = 0; i < domain.size(); ++i) {
      if (mask.lanes[i] != 1) continue;
      if (count == 0) first = i;
      last = i;
      ++count;
    }
    if (count > 0 && count == last - first + 1) {
      t->lo = domain[first];  // consecutive entries -> one interval
      t->hi = domain[last];
    } else if (count > 0) {
      t->is_range = false;
      t->tokens.reserve(count);
      for (size_t i = first; i <= last; ++i) {
        if (mask.lanes[i] == 1) t->tokens.insert(domain[i]);
      }
    }
    std::lock_guard<std::mutex> lock(mu_);
    if (cache_.size() >= kMaxCachedHeaps) cache_.erase(cache_.begin());
    cache_.emplace_back(heap, t);
    return {std::shared_ptr<const DictTranslation>(t)};
  }

  std::string column_;
  ExprPtr inner_;
  // Keyed by the owning shared_ptr: holding it pins the heap's identity,
  // so a recycled address can never alias a cached translation. Exchange
  // workers evaluate one shared predicate concurrently, hence the mutex.
  mutable std::mutex mu_;
  mutable std::vector<std::pair<std::shared_ptr<const StringHeap>,
                                std::shared_ptr<const DictTranslation>>>
      cache_;
};

/// The single column a predicate reads, if exactly one.
bool SingleColumnOf(const ExprPtr& e, std::string* name) {
  std::vector<std::string> cols;
  e->CollectColumns(&cols);
  if (cols.empty()) return false;
  for (const auto& c : cols) {
    if (c != cols[0]) return false;
  }
  *name = cols[0];
  return true;
}

}  // namespace

ExprPtr RewriteDictPredicates(const ExprPtr& pred, const Schema& schema,
                              int* rewrites) {
  if (IsDictCodePredicate(pred)) return pred;  // idempotent
  std::string col;
  if (SingleColumnOf(pred, &col)) {
    auto fi = schema.FieldIndex(col);
    if (fi.ok() && schema.field(fi.value()).type == TypeId::kString) {
      auto rt = pred->ResultType(schema);
      if (rt.ok() && rt.value() == TypeId::kBool) {
        ++*rewrites;
        return std::make_shared<DictCodePredicate>(col, pred);
      }
    }
  }
  std::vector<ExprPtr> kids = pred->Children();
  if (kids.empty()) return pred;
  bool changed = false;
  for (ExprPtr& k : kids) {
    ExprPtr r = RewriteDictPredicates(k, schema, rewrites);
    changed = changed || r.get() != k.get();
    k = std::move(r);
  }
  if (!changed) return pred;
  ExprPtr rebuilt = pred->WithChildren(std::move(kids));
  return rebuilt != nullptr ? rebuilt : pred;
}

bool IsDictCodePredicate(const ExprPtr& e) {
  return dynamic_cast<const DictCodePredicate*>(e.get()) != nullptr;
}

}  // namespace expr
}  // namespace tde
