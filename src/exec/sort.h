#ifndef TDE_EXEC_SORT_H_
#define TDE_EXEC_SORT_H_

#include <memory>
#include <string>
#include <vector>

#include "src/exec/block.h"

namespace tde {

struct SortKey {
  std::string column;
  bool ascending = true;
};

/// Stop-and-go sort. String keys compare through the heap: an integer
/// comparison when the heap is sorted, a locale collation otherwise —
/// which is why FlowTable's heap sorting (Sect. 6.3) speeds up downstream
/// sorts.
class Sort : public Operator {
 public:
  Sort(std::unique_ptr<Operator> child, std::vector<SortKey> keys);

  Status Open() override;
  Status Next(Block* block, bool* eos) override;
  const Schema& output_schema() const override {
    return child_->output_schema();
  }

 private:
  std::unique_ptr<Operator> child_;
  std::vector<SortKey> keys_;
  std::vector<ColumnVector> cols_;  // materialized input
  std::vector<uint64_t> order_;
  uint64_t emit_ = 0;
};

}  // namespace tde

#endif  // TDE_EXEC_SORT_H_
