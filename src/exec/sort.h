#ifndef TDE_EXEC_SORT_H_
#define TDE_EXEC_SORT_H_

#include <memory>
#include <string>
#include <vector>

#include "src/exec/block.h"
#include "src/exec/sort_keys.h"

namespace tde {

struct SortKey {
  std::string column;
  bool ascending = true;
};

struct SortOptions {
  /// Compare string keys in the integer domain: raw tokens when the heap
  /// is sorted, else lanes translated once through a per-heap code->rank
  /// cache. Off = per-comparison CompareTokens (the enable_dict_sort kill
  /// switch).
  bool dict_sort = true;
  /// Sort contiguous chunks on the shared scheduler and merge, when the
  /// input is large enough and the pool has more than one worker.
  bool parallel = true;
};

/// Stop-and-go sort. String keys compare through the heap: an integer
/// comparison when the heap is sorted, a locale collation otherwise —
/// which is why FlowTable's heap sorting (Sect. 6.3) speeds up downstream
/// sorts. Inputs whose blocks carry different string heaps (per-block
/// output heaps from computed projections) are re-interned into one
/// unified heap per column before sorting.
class Sort : public Operator {
 public:
  Sort(std::unique_ptr<Operator> child, std::vector<SortKey> keys,
       SortOptions options = {});

  Status Open() override;
  Status Next(Block* block, bool* eos) override;
  const Schema& output_schema() const override {
    return child_->output_schema();
  }

  // Observed while sorting; read by the executor's instrumentation hook.
  uint64_t rows_sorted() const { return order_.size(); }
  /// String keys that compared as integers (raw sorted-heap tokens or
  /// cached ranks) instead of running the collation per comparison.
  uint64_t dict_key_sorts() const { return dict_key_sorts_; }
  /// Chunks sorted as parallel scheduler tasks (0 = serial sort).
  uint64_t parallel_chunks() const { return parallel_chunks_; }

 private:
  /// True when row `a` orders strictly before row `b`.
  bool RowBefore(uint64_t a, uint64_t b) const;
  void SortOrder();

  std::unique_ptr<Operator> child_;
  std::vector<SortKey> keys_;
  SortOptions options_;
  std::vector<ColumnVector> cols_;  // materialized input, unified heaps
  std::vector<sortkeys::HeapUnifier> unifiers_;
  std::vector<sortkeys::PreparedKey> prepared_;
  /// Comparison lanes per prepared key: rank-translated vectors for
  /// kRanks keys, else nullptr (compare the column's lanes directly).
  std::vector<std::vector<Lane>> rank_lanes_;
  std::vector<const Lane*> key_lanes_;
  std::vector<uint64_t> order_;
  uint64_t emit_ = 0;
  uint64_t dict_key_sorts_ = 0;
  uint64_t parallel_chunks_ = 0;
};

}  // namespace tde

#endif  // TDE_EXEC_SORT_H_
