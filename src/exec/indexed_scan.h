#ifndef TDE_EXEC_INDEXED_SCAN_H_
#define TDE_EXEC_INDEXED_SCAN_H_

#include <memory>
#include <string>
#include <vector>

#include "src/exec/block.h"
#include "src/storage/table.h"

namespace tde {

/// One row of an IndexTable (Sect. 4.2.1): a run-length encoded column
/// exposed to the optimizer as (value, count, start) rows, where start is
/// the running total of the counts. Joining it to the main table on
///   start <= rank < start + count
/// is a rank join, which the IndexedScan operator executes by translating
/// the ranges directly into storage accesses.
struct IndexEntry {
  Lane value;
  uint64_t count;
  uint64_t start;
};

/// Builds the IndexTable rows of a column (cheap when the column is
/// run-length encoded: value and count come straight from the pairs).
Result<std::vector<IndexEntry>> BuildIndexTable(const Column& column);

/// Sorts index entries by value (for the ordered-retrieval plan of
/// Sect. 4.2.2 — enables ordered aggregation on a non-primary sort key).
void SortIndexByValue(std::vector<IndexEntry>* index);

/// Total rows covered by an index (the sum of its run counts).
uint64_t IndexRowCount(const std::vector<IndexEntry>& index);

struct IndexedScanOptions {
  /// Name for the index value column in the output.
  std::string value_name;
  /// Logical type of the index values (dates stay dates; string token
  /// indexes carry their heap).
  TypeId value_type = TypeId::kInteger;
  std::shared_ptr<const StringHeap> value_heap;
  /// Outer-table columns to fetch for each qualifying range.
  std::vector<std::string> payload;
};

/// Rank-join scan (Sect. 4.2.1): accesses the outer table in the order
/// given by the inner (index) side, one block per index range segment —
/// which is precisely why many small runs degrade performance (Sect. 6.6).
class IndexedScan : public Operator {
 public:
  IndexedScan(std::shared_ptr<const Table> outer,
              std::vector<IndexEntry> index, IndexedScanOptions options);

  Status Open() override;
  Status Next(Block* block, bool* eos) override;
  void Close() override;
  const Schema& output_schema() const override { return schema_; }

  /// Number of blocks emitted (exposes the small-run overhead).
  uint64_t blocks_emitted() const { return blocks_emitted_; }

 private:
  std::shared_ptr<const Table> outer_;
  std::vector<IndexEntry> index_;
  IndexedScanOptions options_;
  std::vector<std::shared_ptr<Column>> payload_cols_;
  /// Pins for cold payload columns, held Open..Close (see TableScan).
  std::vector<std::shared_ptr<const pager::LoadedColumn>> pins_;
  Schema schema_;
  size_t entry_ = 0;
  uint64_t offset_in_entry_ = 0;
  uint64_t blocks_emitted_ = 0;
  Status init_error_;
};

}  // namespace tde

#endif  // TDE_EXEC_INDEXED_SCAN_H_
