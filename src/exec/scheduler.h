#ifndef TDE_EXEC_SCHEDULER_H_
#define TDE_EXEC_SCHEDULER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace tde {

namespace observe {
class Counter;
class Gauge;
class Histogram;
class StatsScope;
}  // namespace observe

/// Engine-wide shared worker pool (morsel-driven scheduling, Leis et al.
/// SIGMOD 2014): a fixed set of threads sized once from TDE_WORKERS (or
/// hardware_concurrency), with work expressed as finite tasks grouped per
/// query. Before the pool, every parallel site (Exchange, ParallelRollup,
/// TextScan import) spawned its own std::threads per query, so two
/// concurrent queries oversubscribed the machine; the pool bounds total
/// parallelism regardless of how many queries are in flight.
///
/// Fairness: ready groups are served FIFO — a worker takes one task from
/// the front group, then rotates the group to the back of the ready list,
/// so N concurrent queries interleave at task granularity instead of the
/// first query draining the pool.
///
/// Tasks must be finite and non-blocking: an operator that would block
/// (e.g. an Exchange producer out of in-flight headroom) parks — records
/// its state and returns — and is resubmitted by whichever event unblocks
/// it. A task that blocked on a condition serviced by another task of the
/// same pool could deadlock a fixed pool; parking makes that impossible by
/// construction. Consumers that must wait on a pool thread help instead
/// (TryRunOneTask / Group::Wait's inline draining).
///
/// Cancellation is cooperative: Group::Cancel retires the group's queued
/// tasks without running them (counted in stats().tasks_cancelled) and
/// without touching any other group's work; tasks already running keep
/// their own stop flags and finish on their own.
///
/// Observability: pool workers adopt the submitting query's StatsScope
/// (captured at CreateGroup) around every task, so per-query journal
/// deltas keep summing exactly to the global counters. Global metrics:
/// scheduler.tasks_run / scheduler.tasks_cancelled counters, a
/// scheduler.queue_wait_us histogram (submit-to-start latency), and
/// scheduler.workers / scheduler.groups_active gauges.
class TaskScheduler {
 public:
  using Task = std::function<void()>;

  /// Per-group observations, final once Wait() has returned.
  struct GroupStats {
    uint64_t tasks_run = 0;        // tasks executed (pool, helping, or Wait)
    uint64_t tasks_cancelled = 0;  // tasks retired unrun by Cancel
    uint64_t queue_wait_ns = 0;    // total submit-to-start latency
    uint64_t run_ns = 0;           // total task execution time
  };

  /// One query's (or one operator's) slice of the pool. Created via
  /// CreateGroup; must not outlive the scheduler. All members are
  /// thread-safe.
  class Group {
   public:
    /// Enqueues a task. If the group is cancelled the task is retired
    /// immediately (never runs). Tasks run under StatsScope::Bind of the
    /// scope that was current when the group was created.
    void Submit(Task task);

    /// Retires every queued task unrun; running tasks are unaffected
    /// (cooperative cancellation — they observe their own stop flags).
    /// Subsequent Submits retire immediately.
    void Cancel();

    /// Blocks until every submitted task has run or been retired.
    /// Wait helps: queued tasks of *this* group are drained inline on the
    /// calling thread before blocking, so Wait from a pool thread (nested
    /// parallelism) cannot deadlock the pool.
    void Wait();

    /// Snapshot of the group's stats so far.
    GroupStats stats() const;

   private:
    friend class TaskScheduler;
    struct Item {
      Task fn;
      uint64_t submit_ns = 0;
    };

    explicit Group(TaskScheduler* sched) : sched_(sched) {}

    TaskScheduler* sched_;
    observe::StatsScope* scope_ = nullptr;
    /// Self-reference so Submit can place the owning shared_ptr on the
    /// scheduler's ready list (set by CreateGroup).
    std::weak_ptr<Group> shared_self_;
    // All below guarded by sched_->mu_.
    std::deque<Item> queue_;
    uint64_t outstanding_ = 0;  // queued + running
    bool cancelled_ = false;
    bool in_ready_ = false;
    GroupStats stats_;
    std::condition_variable cv_done_;
  };

  /// workers <= 0 sizes the pool from TDE_WORKERS, falling back to
  /// hardware_concurrency (clamped to [1, 256]).
  explicit TaskScheduler(int workers = 0);
  ~TaskScheduler();

  TaskScheduler(const TaskScheduler&) = delete;
  TaskScheduler& operator=(const TaskScheduler&) = delete;

  /// The process-wide pool every engine shares (created on first use,
  /// intentionally never destroyed so in-flight work at exit is safe).
  /// Tests can reroute it with ScopedOverride.
  static TaskScheduler& Global();

  /// Creates a task group bound to the calling thread's StatsScope.
  std::shared_ptr<Group> CreateGroup();

  int workers() const { return static_cast<int>(threads_.size()); }

  /// How many virtual workers one query should use so a single query
  /// cannot monopolize the pool: half the pool (at least 2, capped at the
  /// pool size). Exchange/ParallelRollup resolve `workers = 0` through
  /// this.
  int SuggestedQueryParallelism() const;

  /// True when the calling thread is one of this-or-any scheduler's pool
  /// workers (operators use it to degrade to inline execution or to help
  /// instead of blocking).
  static bool OnWorkerThread();

  /// Runs one ready task (any group) on the calling thread. Returns false
  /// if nothing was ready. Lets a consumer stuck waiting for pool-produced
  /// output make the pool's progress itself instead of blocking a slot.
  bool TryRunOneTask();

  /// Redirects Global() to `scheduler` for the current process until
  /// destruction (tests: pin a pool of 2 and run the whole executor
  /// through it). Not reentrancy-safe across threads — install before
  /// spawning concurrent queries.
  class ScopedOverride {
   public:
    explicit ScopedOverride(TaskScheduler* scheduler);
    ~ScopedOverride();
    ScopedOverride(const ScopedOverride&) = delete;
    ScopedOverride& operator=(const ScopedOverride&) = delete;

   private:
    TaskScheduler* prev_;
  };

 private:
  void WorkerMain(int index);
  /// Pops the front ready group's next task and runs it on the calling
  /// thread. `lock` must hold mu_; it is released while the task runs and
  /// reacquired before returning. Returns false if nothing was ready.
  bool RunOneReadyTaskLocked(std::unique_lock<std::mutex>& lock);
  void FinishTaskLocked(Group* group);

  mutable std::mutex mu_;
  std::condition_variable cv_work_;
  std::deque<std::shared_ptr<Group>> ready_;
  std::vector<std::thread> threads_;
  bool shutdown_ = false;

  // Registry handles (process lifetime; see MetricsRegistry).
  observe::Counter* tasks_run_metric_;
  observe::Counter* tasks_cancelled_metric_;
  observe::Histogram* queue_wait_metric_;
  observe::Gauge* groups_active_metric_;
  int64_t groups_active_ = 0;  // guarded by mu_
};

}  // namespace tde

#endif  // TDE_EXEC_SCHEDULER_H_
