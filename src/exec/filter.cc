#include "src/exec/filter.h"

namespace tde {

Status Filter::Next(Block* block, bool* eos) {
  // Pull until a non-empty filtered block or end of stream, so downstream
  // operators are not flooded with empty blocks.
  while (true) {
    TDE_RETURN_NOT_OK(child_->Next(block, eos));
    if (*eos) return Status::OK();
    const size_t n = block->rows();
    if (n == 0) continue;
    TDE_ASSIGN_OR_RETURN(ColumnVector mask,
                         predicate_->Eval(*block, output_schema()));
    std::vector<char> keep(n);
    size_t kept = 0;
    for (size_t i = 0; i < n; ++i) {
      keep[i] = mask.lanes[i] == 1;
      kept += keep[i];
    }
    rows_in_ += n;
    rows_out_ += kept;
    if (kept == 0) continue;
    if (kept < n) block->Compact(keep);
    return Status::OK();
  }
}

}  // namespace tde
