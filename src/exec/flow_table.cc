#include "src/exec/flow_table.h"

#include <algorithm>
#include <map>
#include <unordered_map>
#include <unordered_set>

#include <chrono>

#include "src/encoding/manipulate.h"
#include "src/exec/scheduler.h"
#include "src/observe/metrics.h"
#include "src/storage/heap_accelerator.h"
#include "src/storage/segment/segmented_stream.h"

namespace tde {

namespace {

/// Sorts a dictionary-encoded string column's heap (Sect. 3.4.3 / 6.3):
/// the dictionary entries are the distinct heap tokens; sort their strings
/// (cheap — the domain is small), rebuild the heap in collation order and
/// write the new tokens back into the dictionary header. The rows of the
/// column — which can be arbitrarily many — are never touched. For a
/// segmented column the remap runs over every segment's own dictionary
/// (all segments must be dictionary-encoded, else the heap stays unsorted).
/// `*applied` reports whether a remap actually happened (import telemetry).
Status SortColumnHeap(Column* col, bool* applied) {
  *applied = false;
  auto* stream = col->mutable_data();
  StringHeap* heap = col->mutable_heap();
  if (heap == nullptr || heap->sorted()) return Status::OK();

  // The dictionary buffers to remap: one per segment, or the single
  // monolithic stream buffer.
  std::vector<std::vector<uint8_t>*> bufs;
  SegmentedStream* seg = nullptr;
  if (stream->segmented()) {
    seg = static_cast<SegmentedStream*>(stream);
    const std::vector<SegmentShape> shapes = seg->Shapes();
    for (size_t i = 0; i < shapes.size(); ++i) {
      if (shapes[i].encoding != EncodingType::kDictionary) return Status::OK();
      std::vector<uint8_t>* b = seg->MutableSegmentBuffer(i);
      if (b == nullptr) return Status::OK();
      bufs.push_back(b);
    }
    if (bufs.empty()) return Status::OK();
  } else {
    if (stream->type() != EncodingType::kDictionary) return Status::OK();
    bufs.push_back(stream->mutable_buffer());
  }
  *applied = true;

  // Collect the distinct tokens from the dictionary entries (an identity
  // remap that records what it sees; segments may share tokens).
  std::vector<Lane> old_tokens;
  std::unordered_set<Lane> seen;
  for (std::vector<uint8_t>* buf : bufs) {
    TDE_RETURN_NOT_OK(RemapDictEntries(buf, [&](Lane v) {
      if (v != kNullSentinel && seen.insert(v).second) old_tokens.push_back(v);
      return v;
    }));
  }

  std::vector<size_t> order(old_tokens.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return Collate(heap->collation(), heap->Get(old_tokens[a]),
                   heap->Get(old_tokens[b])) < 0;
  });

  auto sorted_heap = std::make_shared<StringHeap>(heap->collation());
  std::unordered_map<Lane, Lane> remap;
  remap.reserve(old_tokens.size() + 1);
  remap[kNullSentinel] = kNullSentinel;  // NULL entries never touch the heap
  for (size_t i : order) {
    remap[old_tokens[i]] = sorted_heap->Add(heap->Get(old_tokens[i]));
  }
  for (std::vector<uint8_t>* buf : bufs) {
    TDE_RETURN_NOT_OK(RemapDictEntries(
        buf, [&](Lane v) { return remap.find(v)->second; }));
  }
  sorted_heap->set_sorted(true);
  col->set_heap(std::move(sorted_heap));
  if (seg != nullptr) seg->RefreshSegmentFacts();
  return Status::OK();
}

}  // namespace

Result<std::shared_ptr<Column>> BuildColumn(
    ColumnBuildInput in, const FlowTableOptions& options,
    observe::ColumnImportStats* stats_out) {
  DynamicEncoderOptions enc;
  enc.enable_encodings = options.enable_encodings;
  enc.allowed = options.allowed;
  enc.width = 8;
  enc.sign_extend = in.type != TypeId::kString && IsSignedType(in.type);
  enc.prefer_dictionary = in.type == TypeId::kString;
  const size_t n = in.lanes.size();
  const uint64_t seg_rows =
      options.segment_rows != 0 ? options.segment_rows : DefaultSegmentRows();
  // Columns longer than one segment are built as a SegmentedStream: the
  // drain-accumulated lanes stream through Append, which seals (and
  // independently encodes) each full segment as its boundary passes.
  const bool segmented = static_cast<uint64_t>(n) > seg_rows;

  auto col = std::make_shared<Column>(in.name, in.type);
  EncodingStats stats;
  int encoding_changes = 0;
  uint64_t bytes_written = 0;
  if (segmented) {
    auto seg = std::make_shared<SegmentedStream>(enc, seg_rows);
    for (size_t row = 0; row < n; row += kBlockSize) {
      const size_t take = std::min<size_t>(kBlockSize, n - row);
      stats.Update(in.lanes.data() + row, take);
      TDE_RETURN_NOT_OK(seg->Append(in.lanes.data() + row, take));
    }
    TDE_RETURN_NOT_OK(seg->Finalize());
    encoding_changes = seg->encoding_changes();
    bytes_written = seg->bytes_written();
    col->set_data(std::move(seg));
  } else {
    DynamicEncoder encoder(enc);
    for (size_t row = 0; row < n; row += kBlockSize) {
      const size_t take = std::min<size_t>(kBlockSize, n - row);
      TDE_RETURN_NOT_OK(encoder.Append(in.lanes.data() + row, take));
    }
    TDE_ASSIGN_OR_RETURN(EncodedColumn encoded, encoder.Finalize());
    stats = encoded.stats;
    encoding_changes = encoded.encoding_changes;
    bytes_written = encoded.bytes_written;
    col->set_data(std::move(encoded.stream));
  }
  col->set_encoding_changes(encoding_changes);
  if (in.type == TypeId::kString) {
    col->set_compression(CompressionKind::kHeap);
    col->set_heap(in.heap);
  }

  ColumnMetadata meta;
  if (options.enable_encodings) {
    meta = ExtractMetadata(stats);
  } else if (in.type == TypeId::kString && in.accel_active) {
    // With encodings off, the only metadata comes from fortuitous
    // circumstances: the accelerator's statistics (Sect. 6.4).
    meta.cardinality_known = true;
    meta.cardinality = in.accel_distinct;
  }
  if (in.type == TypeId::kString && in.accel_active &&
      in.accel_arrived_sorted) {
    // Strings happened to arrive in collation order, so the heap is
    // already sorted (another fortuitous detection).
    col->mutable_heap()->set_sorted(true);
    meta.sorted = true;
  }
  *col->mutable_metadata() = meta;

  uint64_t manipulations = 0;
  if (options.enable_encodings && options.post_process) {
    // Sect. 3.4 manipulations, applied as a post-processing step of the
    // FlowTable build.
    bool heap_sorted = false;
    TDE_RETURN_NOT_OK(SortColumnHeap(col.get(), &heap_sorted));
    const bool signed_values =
        in.type != TypeId::kString && IsSignedType(in.type);
    bool narrowed = false;
    if (col->data()->segmented()) {
      // Narrowing is a header manipulation on one stream buffer; for a
      // segmented column it applies per segment (each may narrow to a
      // different width — that is the point of per-segment encodings).
      auto* seg = static_cast<SegmentedStream*>(col->mutable_data());
      const std::vector<SegmentShape> shapes = seg->Shapes();
      for (size_t i = 0; i < shapes.size(); ++i) {
        std::vector<uint8_t>* b = seg->MutableSegmentBuffer(i);
        if (b == nullptr) continue;
        TDE_ASSIGN_OR_RETURN(uint8_t w, NarrowStreamWidth(b, signed_values));
        narrowed |= w != shapes[i].width;
      }
      seg->RefreshSegmentFacts();
    } else {
      const uint8_t before = col->data()->width();
      TDE_ASSIGN_OR_RETURN(
          uint8_t w,
          NarrowStreamWidth(col->mutable_data()->mutable_buffer(),
                            signed_values));
      narrowed = w != before;
    }
    manipulations += (heap_sorted ? 1 : 0) + (narrowed ? 1 : 0);
  }

  if (stats_out != nullptr && observe::StatsEnabled()) {
    stats_out->column = col->name();
    stats_out->type = TypeName(in.type);
    stats_out->encoding = EncodingName(col->data()->type());
    stats_out->rows = col->rows();
    stats_out->input_bytes = col->LogicalSize();
    stats_out->encoded_bytes = col->PhysicalSize();
    stats_out->encoding_changes = encoding_changes;
    stats_out->bytes_written = bytes_written;
    stats_out->header_manipulations = manipulations;
    stats_out->token_width = col->TokenWidth();
  }
  return col;
}

FlowTable::FlowTable(std::unique_ptr<Operator> child, FlowTableOptions options)
    : child_(std::move(child)), options_(std::move(options)) {}

const Schema& FlowTable::output_schema() const {
  return built_ ? scan_->output_schema() : child_->output_schema();
}

Status FlowTable::Open() {
  if (built_) {
    return scan_->Open();
  }
  TDE_RETURN_NOT_OK(child_->Open());
  const Schema& in_schema = child_->output_schema();
  const size_t ncols = in_schema.num_fields();

  std::vector<ColumnBuildInput> inputs(ncols);
  std::vector<std::unique_ptr<HeapAccelerator>> accels(ncols);
  for (size_t i = 0; i < ncols; ++i) {
    inputs[i].name = in_schema.field(i).name;
    inputs[i].type = in_schema.field(i).type;
    if (inputs[i].type == TypeId::kString) {
      inputs[i].heap = std::make_shared<StringHeap>();
      if (options_.heap_acceleration) {
        accels[i] = std::make_unique<HeapAccelerator>(
            inputs[i].heap.get(), options_.accelerator_threshold);
      }
    }
  }

  // Drain the child, accumulating lanes; string tokens are re-homed into
  // this FlowTable's own heaps (deduplicated by the accelerator).
  while (true) {
    Block b;
    bool eos = false;
    TDE_RETURN_NOT_OK(child_->Next(&b, &eos));
    if (eos) break;
    const size_t rows = b.rows();
    for (size_t i = 0; i < ncols && i < b.columns.size(); ++i) {
      ColumnVector& cv = b.columns[i];
      ColumnBuildInput& in = inputs[i];
      if (in.type == TypeId::kString) {
        for (size_t r = 0; r < rows; ++r) {
          if (cv.lanes[r] == kNullSentinel) {
            in.lanes.push_back(kNullSentinel);
          } else if (accels[i] != nullptr) {
            in.lanes.push_back(accels[i]->Add(cv.heap->Get(cv.lanes[r])));
          } else {
            in.lanes.push_back(in.heap->Add(cv.heap->Get(cv.lanes[r])));
          }
        }
      } else {
        in.lanes.insert(in.lanes.end(), cv.lanes.begin(), cv.lanes.end());
      }
    }
  }
  child_->Close();
  for (size_t i = 0; i < ncols; ++i) {
    if (accels[i] != nullptr) {
      inputs[i].accel_active = true;
      inputs[i].accel_distinct = accels[i]->distinct_count();
      inputs[i].accel_arrived_sorted = accels[i]->arrived_sorted();
    }
  }

  // Encode each column — independently, so the work can be distributed
  // across cores (Sect. 3.3).
  const auto encode_start = std::chrono::steady_clock::now();
  auto table = std::make_shared<Table>(options_.table_name);
  std::vector<Result<std::shared_ptr<Column>>> results(
      ncols, Result<std::shared_ptr<Column>>(Status::OK()));
  column_stats_.assign(ncols, observe::ColumnImportStats{});
  if (options_.parallel_columns && ncols > 1) {
    // One task per column on the shared pool (bounded parallelism even
    // when several imports run concurrently); Wait() helps drain.
    auto group = TaskScheduler::Global().CreateGroup();
    for (size_t i = 0; i < ncols; ++i) {
      group->Submit([&, i]() {
        results[i] =
            BuildColumn(std::move(inputs[i]), options_, &column_stats_[i]);
      });
    }
    group->Wait();
  } else {
    for (size_t i = 0; i < ncols; ++i) {
      results[i] =
          BuildColumn(std::move(inputs[i]), options_, &column_stats_[i]);
    }
  }
  for (size_t i = 0; i < ncols; ++i) {
    TDE_RETURN_NOT_OK(results[i].status());
    table->AddColumn(results[i].MoveValue());
  }
  encode_seconds_ = std::chrono::duration<double>(
                        std::chrono::steady_clock::now() - encode_start)
                        .count();
  if (!observe::StatsEnabled()) column_stats_.clear();

  table_ = std::move(table);
  scan_ = std::make_unique<TableScan>(table_);
  built_ = true;
  return scan_->Open();
}

Status FlowTable::Next(Block* block, bool* eos) {
  return scan_->Next(block, eos);
}

void FlowTable::Close() {
  if (scan_) scan_->Close();
}

Result<std::shared_ptr<Table>> FlowTable::Build(
    std::unique_ptr<Operator> child, FlowTableOptions options) {
  FlowTable ft(std::move(child), std::move(options));
  TDE_RETURN_NOT_OK(ft.Open());
  ft.Close();
  return ft.table();
}

}  // namespace tde
