#ifndef TDE_EXEC_HASH_JOIN_H_
#define TDE_EXEC_HASH_JOIN_H_

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "src/common/hash.h"
#include "src/exec/block.h"
#include "src/storage/table.h"

namespace tde {

/// The join implementation the tactical optimizer picks at Open() time
/// (Sect. 2.3.4-2.3.5): a fetch join when the inner key is an affine
/// function of the row id (dense/unique metadata), otherwise a hash join
/// whose hash algorithm depends on the key width and range.
enum class JoinStrategy : uint8_t {
  kFetch = 0,
  kHashDirect = 1,
  kHashPerfect = 2,
  kHashCollision = 3,
};

const char* JoinStrategyName(JoinStrategy s);

/// The tactical choice for joining against `inner_key` of `inner`, plus
/// the affine parameters when a fetch join applies. Exposed so EXPLAIN can
/// report the decision without executing.
struct JoinStrategyChoice {
  JoinStrategy strategy = JoinStrategy::kHashCollision;
  int64_t fetch_base = 0;
  int64_t fetch_delta = 1;
};
Result<JoinStrategyChoice> ChooseJoinStrategy(const Table& inner,
                                              const std::string& inner_key);

struct HashJoinOptions {
  /// Join key column in the outer (flow) input.
  std::string outer_key;
  /// Join key column in the inner (stop-and-go) table; must be unique —
  /// the TDE uses these joins for many-to-one expansion.
  std::string inner_key;
  /// Inner columns attached to matching rows (empty = none: pure
  /// semi-join filtering, as in pushed-down predicates).
  std::vector<std::string> inner_payload;
  /// Force a strategy (tests/benchmarks); otherwise tactical choice.
  std::optional<JoinStrategy> force_strategy;
};

/// Many-to-one join: outer rows joined against a unique-keyed inner table.
/// Outer rows with no match are dropped, which is exactly how predicates
/// pushed down to a DictionaryTable take effect on the main table
/// (Sect. 4.1.1). The inner relation is a materialized table — the TDE
/// Join operator takes a stop-and-go operator (usually a FlowTable) as its
/// inner input (Sect. 4.1.2).
class HashJoin : public Operator {
 public:
  HashJoin(std::unique_ptr<Operator> outer, std::shared_ptr<const Table> inner,
           HashJoinOptions options);

  Status Open() override;
  Status Next(Block* block, bool* eos) override;
  void Close() override { outer_->Close(); }
  const Schema& output_schema() const override { return schema_; }

  /// The strategy the tactical optimizer chose (valid after Open).
  JoinStrategy strategy() const { return strategy_; }

 private:
  Status ChooseStrategy();

  std::unique_ptr<Operator> outer_;
  std::shared_ptr<const Table> inner_;
  HashJoinOptions options_;
  Schema schema_;
  size_t outer_key_idx_ = 0;

  JoinStrategy strategy_ = JoinStrategy::kHashCollision;
  // Fetch strategy: row = (key - base) / delta.
  int64_t fetch_base_ = 0;
  int64_t fetch_delta_ = 1;
  uint64_t inner_rows_ = 0;
  // Hash strategies.
  std::unique_ptr<GroupMap> map_;
  std::vector<uint32_t> group_to_row_;
  // Inner row keyed by the NULL sentinel, if any (a DictionaryTable built
  // with include_null_row). NULL outer keys join against it; without one
  // they are dropped like any other miss.
  std::optional<uint32_t> null_row_;
  // Materialized inner payload columns.
  struct InnerColumn {
    std::vector<Lane> lanes;
    TypeId type;
    std::shared_ptr<const StringHeap> heap;
    std::shared_ptr<const ArrayDictionary> dict;
  };
  std::vector<InnerColumn> payload_;
};

/// Convenience wrapper that forces the fetch-join strategy (Sect. 2.3.5):
/// fails at Open() if the inner key is not an affine transformation of the
/// row id.
std::unique_ptr<HashJoin> MakeFetchJoin(std::unique_ptr<Operator> outer,
                                        std::shared_ptr<const Table> inner,
                                        HashJoinOptions options);

}  // namespace tde

#endif  // TDE_EXEC_HASH_JOIN_H_
