#ifndef TDE_EXEC_ORDERED_AGGREGATE_H_
#define TDE_EXEC_ORDERED_AGGREGATE_H_

#include <memory>

#include "src/exec/hash_aggregate.h"

namespace tde {

/// Ordered ("sandwiched", Sect. 4.2.2) aggregation: the input is grouped —
/// all rows of a group arrive contiguously — so no hash table is needed;
/// the operator streams, closing a group whenever the key changes. The
/// IndexedScan plan of Sect. 6.6 sorts the index by value to establish
/// exactly this property on a non-primary sort key.
///
/// Only single-key grouping is supported (the grouped-input property is a
/// per-key ordering statement).
class OrderedAggregate : public Operator {
 public:
  OrderedAggregate(std::unique_ptr<Operator> child, AggregateOptions options);

  Status Open() override;
  Status Next(Block* block, bool* eos) override;
  void Close() override { child_->Close(); }
  const Schema& output_schema() const override { return schema_; }

  /// Groups whose key strings were materialized at emit time rather than
  /// compared per row; 0 when dictionary-code grouping did not engage.
  uint64_t groups_late_materialized() const {
    return groups_late_materialized_;
  }

 private:
  /// Finalizes the open group into the pending output row buffer.
  void CloseGroup();

  std::unique_ptr<Operator> child_;
  AggregateOptions options_;
  Schema schema_;
  size_t key_idx_ = 0;
  std::vector<size_t> agg_idx_;
  std::vector<TypeId> agg_types_;
  TypeId key_type_ = TypeId::kInteger;
  std::shared_ptr<const StringHeap> key_heap_;
  std::vector<std::shared_ptr<const StringHeap>> agg_heaps_;

  // Dictionary-code grouping: group boundaries compare dense per-heap
  // codes (stable across heap changes mid-stream); pending keys hold codes
  // that resolve to tokens at emit. -1 = undecided until the first block.
  std::unique_ptr<StringKeyNormalizer> norm_;
  int norm_state_ = -1;
  uint64_t groups_late_materialized_ = 0;

  bool group_open_ = false;
  Lane group_key_ = 0;
  std::vector<AggState> states_;  // one per agg of the open group

  // Output rows buffered until a block fills.
  std::vector<Lane> pending_keys_;
  std::vector<std::vector<Lane>> pending_aggs_;
  bool input_done_ = false;
};

}  // namespace tde

#endif  // TDE_EXEC_ORDERED_AGGREGATE_H_
