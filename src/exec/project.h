#ifndef TDE_EXEC_PROJECT_H_
#define TDE_EXEC_PROJECT_H_

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "src/exec/block.h"
#include "src/exec/expression.h"

namespace tde {

/// A projected output column: an expression and its output name.
struct ProjectedColumn {
  ExprPtr expr;
  std::string name;
};

/// Flow operator: evaluates expressions over each block (the TDE's Project
/// / computation operator).
class Project : public Operator {
 public:
  Project(std::unique_ptr<Operator> child, std::vector<ProjectedColumn> cols);

  Status Open() override;
  Status Next(Block* block, bool* eos) override;
  void Close() override { child_->Close(); }
  const Schema& output_schema() const override { return schema_; }

 private:
  std::unique_ptr<Operator> child_;
  std::vector<ProjectedColumn> cols_;
  Schema schema_;
};

}  // namespace tde

#endif  // TDE_EXEC_PROJECT_H_
