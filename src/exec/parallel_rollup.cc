#include "src/exec/parallel_rollup.h"

#include <algorithm>
#include <thread>

#include "src/exec/ordered_aggregate.h"

namespace tde {

Result<std::vector<IndexEntry>> RollUpIndex(
    const std::vector<IndexEntry>& index,
    const std::function<Lane(Lane)>& fn) {
  std::vector<IndexEntry> out;
  for (const IndexEntry& e : index) {
    const Lane rolled = fn(e.value);
    if (!out.empty() && out.back().value == rolled) {
      // Re-aggregate: MIN(start), SUM(count). Contiguity of the rolled
      // range is what makes the converted index valid.
      if (out.back().start + out.back().count != e.start) {
        return {Status::InvalidArgument(
            "roll-up function is not order-preserving over this index")};
      }
      out.back().count += e.count;
      out.back().start = std::min(out.back().start, e.start);
    } else {
      if (!out.empty() && fn(out.back().value) == rolled) {
        return {Status::InvalidArgument("roll-up produced a repeated group")};
      }
      out.push_back({rolled, e.count, e.start});
    }
  }
  return out;
}

Result<ParallelRollupResult> ParallelIndexedAggregate(
    std::shared_ptr<const Table> table, std::vector<IndexEntry> index,
    const ParallelRollupOptions& options) {
  // Partition the index range at group boundaries so each worker owns
  // whole groups and partition outputs concatenate in order.
  const int workers = std::max(1, options.workers);
  std::vector<std::pair<size_t, size_t>> parts;  // [begin, end) into index
  const size_t per = std::max<size_t>(1, index.size() / workers);
  size_t begin = 0;
  while (begin < index.size()) {
    size_t end = std::min(index.size(), begin + per);
    while (end < index.size() && index[end].value == index[end - 1].value) {
      ++end;
    }
    parts.emplace_back(begin, end);
    begin = end;
  }

  auto run_partition = [&](size_t b, size_t e,
                           std::vector<Block>* out) -> Status {
    std::vector<IndexEntry> slice(index.begin() + static_cast<ptrdiff_t>(b),
                                  index.begin() + static_cast<ptrdiff_t>(e));
    IndexedScanOptions scan;
    scan.value_name = options.value_name;
    scan.value_type = options.value_type;
    scan.payload = options.payload;
    auto iscan =
        std::make_unique<IndexedScan>(table, std::move(slice), scan);
    AggregateOptions agg;
    agg.group_by = {options.value_name};
    agg.aggs = options.aggs;
    OrderedAggregate oagg(std::move(iscan), agg);
    return DrainOperator(&oagg, out);
  };

  std::vector<std::vector<Block>> results(parts.size());
  std::vector<Status> statuses(parts.size());
  if (parts.size() > 1) {
    std::vector<std::thread> pool;
    for (size_t i = 0; i < parts.size(); ++i) {
      pool.emplace_back([&, i]() {
        statuses[i] =
            run_partition(parts[i].first, parts[i].second, &results[i]);
      });
    }
    for (auto& t : pool) t.join();
  } else if (parts.size() == 1) {
    statuses[0] = run_partition(parts[0].first, parts[0].second, &results[0]);
  }
  for (const Status& st : statuses) TDE_RETURN_NOT_OK(st);

  ParallelRollupResult out;
  // Schema: value column + aggregate outputs (derive via a throwaway
  // operator over an empty partition).
  {
    IndexedScanOptions scan;
    scan.value_name = options.value_name;
    scan.value_type = options.value_type;
    scan.payload = options.payload;
    auto iscan = std::make_unique<IndexedScan>(table,
                                               std::vector<IndexEntry>{}, scan);
    AggregateOptions agg;
    agg.group_by = {options.value_name};
    agg.aggs = options.aggs;
    OrderedAggregate oagg(std::move(iscan), agg);
    TDE_RETURN_NOT_OK(oagg.Open());
    out.schema = oagg.output_schema();
  }
  for (auto& blocks : results) {
    for (auto& b : blocks) out.blocks.push_back(std::move(b));
  }
  return out;
}

}  // namespace tde
