#include "src/exec/parallel_rollup.h"

#include <algorithm>

#include "src/exec/ordered_aggregate.h"
#include "src/exec/scheduler.h"
#include "src/observe/journal.h"
#include "src/observe/metrics.h"

namespace tde {

RunFoldAggregate::RunFoldAggregate(std::vector<IndexEntry> index,
                                   RunFoldOptions options)
    : index_(std::move(index)), options_(std::move(options)) {}

Status RunFoldAggregate::Open() {
  schema_ = Schema();
  if (options_.group_by_value) {
    schema_.AddField({options_.value_name, options_.value_type});
  }
  for (const AggSpec& a : options_.aggs) {
    if (a.kind != AggKind::kCountStar && a.input != options_.value_name) {
      return Status::InvalidArgument(
          "run folding requires every aggregate to read the index value: " +
          a.input);
    }
    schema_.AddField(
        {a.output, agg_internal::OutputType(a.kind, options_.value_type)});
  }

  const size_t naggs = options_.aggs.size();
  // Group in first-occurrence order of run values, exactly like the
  // row-at-a-time HashAggregate over the expanded rows.
  GroupMap map(HashAlgorithm::kCollision, 0, 0);
  uint64_t ngroups = options_.group_by_value ? 0 : 1;
  std::vector<AggState> states(ngroups * naggs);
  out_keys_.clear();
  for (const IndexEntry& e : index_) {
    uint32_t g = 0;
    if (options_.group_by_value) {
      g = map.GetOrInsert(e.value);
      if (g >= ngroups) {
        ngroups = g + 1;
        states.resize(ngroups * naggs);
        out_keys_.push_back(e.value);
      }
    }
    for (size_t a = 0; a < naggs; ++a) {
      TDE_RETURN_NOT_OK(agg_internal::UpdateRun(
          options_.aggs[a].kind, options_.value_type, e.value, e.count,
          &states[g * naggs + a]));
    }
  }
  runs_folded_ = index_.size();
  observe::QueryCount(observe::QueryCounter::kRunsFolded, runs_folded_);

  groups_ = ngroups;
  out_aggs_.assign(naggs, {});
  for (size_t a = 0; a < naggs; ++a) {
    out_aggs_[a].resize(groups_);
    for (uint64_t g = 0; g < groups_; ++g) {
      out_aggs_[a][g] = agg_internal::Finalize(
          options_.aggs[a].kind, options_.value_type, &states[g * naggs + a]);
    }
  }
  emit_ = 0;
  return Status::OK();
}

Status RunFoldAggregate::Next(Block* block, bool* eos) {
  block->columns.clear();
  if (emit_ >= groups_) {
    *eos = true;
    return Status::OK();
  }
  const size_t take =
      static_cast<size_t>(std::min<uint64_t>(kBlockSize, groups_ - emit_));
  if (options_.group_by_value) {
    ColumnVector cv;
    cv.type = options_.value_type;
    cv.heap = options_.value_heap;
    cv.lanes.assign(out_keys_.begin() + static_cast<ptrdiff_t>(emit_),
                    out_keys_.begin() + static_cast<ptrdiff_t>(emit_ + take));
    block->columns.push_back(std::move(cv));
  }
  for (size_t a = 0; a < out_aggs_.size(); ++a) {
    ColumnVector cv;
    cv.type = schema_.field((options_.group_by_value ? 1 : 0) + a).type;
    // Aggregate inputs are the value column, so string outputs (MIN/MAX)
    // resolve against its heap.
    if (cv.type == TypeId::kString) cv.heap = options_.value_heap;
    cv.lanes.assign(out_aggs_[a].begin() + static_cast<ptrdiff_t>(emit_),
                    out_aggs_[a].begin() + static_cast<ptrdiff_t>(emit_ + take));
    block->columns.push_back(std::move(cv));
  }
  emit_ += take;
  *eos = false;
  return Status::OK();
}

Result<std::vector<IndexEntry>> RollUpIndex(
    const std::vector<IndexEntry>& index,
    const std::function<Lane(Lane)>& fn) {
  std::vector<IndexEntry> out;
  for (const IndexEntry& e : index) {
    const Lane rolled = fn(e.value);
    if (!out.empty() && out.back().value == rolled) {
      // Re-aggregate: MIN(start), SUM(count). Contiguity of the rolled
      // range is what makes the converted index valid.
      if (out.back().start + out.back().count != e.start) {
        return {Status::InvalidArgument(
            "roll-up function is not order-preserving over this index")};
      }
      out.back().count += e.count;
      out.back().start = std::min(out.back().start, e.start);
    } else {
      if (!out.empty() && fn(out.back().value) == rolled) {
        return {Status::InvalidArgument("roll-up produced a repeated group")};
      }
      out.push_back({rolled, e.count, e.start});
    }
  }
  return out;
}

Result<ParallelRollupResult> ParallelIndexedAggregate(
    std::shared_ptr<const Table> table, std::vector<IndexEntry> index,
    const ParallelRollupOptions& options) {
  // Partition the index range at group boundaries so each worker owns
  // whole groups and partition outputs concatenate in order.
  const int workers =
      options.workers > 0
          ? options.workers
          : TaskScheduler::Global().SuggestedQueryParallelism();
  std::vector<std::pair<size_t, size_t>> parts;  // [begin, end) into index
  const size_t per = std::max<size_t>(1, index.size() / workers);
  size_t begin = 0;
  while (begin < index.size()) {
    size_t end = std::min(index.size(), begin + per);
    while (end < index.size() && index[end].value == index[end - 1].value) {
      ++end;
    }
    parts.emplace_back(begin, end);
    begin = end;
  }

  // Compressed-domain fast path: when no aggregate needs a payload row,
  // each partition folds its runs in O(1) per entry instead of expanding
  // rows through IndexedScan. Values within a partition are sorted, so
  // first-occurrence group order equals the ordered-aggregate order.
  bool foldable = options.fold_runs && options.value_type != TypeId::kReal;
  for (const AggSpec& a : options.aggs) {
    if (a.kind == AggKind::kCountStar) continue;
    if (a.input != options.value_name ||
        !agg_internal::FoldableOverRuns(a.kind)) {
      foldable = false;
      break;
    }
  }

  auto run_partition = [&](size_t b, size_t e,
                           std::vector<Block>* out) -> Status {
    std::vector<IndexEntry> slice(index.begin() + static_cast<ptrdiff_t>(b),
                                  index.begin() + static_cast<ptrdiff_t>(e));
    if (foldable) {
      RunFoldOptions fold;
      fold.value_name = options.value_name;
      fold.value_type = options.value_type;
      fold.group_by_value = true;
      fold.aggs = options.aggs;
      RunFoldAggregate fagg(std::move(slice), fold);
      return DrainOperator(&fagg, out);
    }
    IndexedScanOptions scan;
    scan.value_name = options.value_name;
    scan.value_type = options.value_type;
    scan.payload = options.payload;
    auto iscan =
        std::make_unique<IndexedScan>(table, std::move(slice), scan);
    AggregateOptions agg;
    agg.group_by = {options.value_name};
    agg.aggs = options.aggs;
    OrderedAggregate oagg(std::move(iscan), agg);
    return DrainOperator(&oagg, out);
  };

  std::vector<std::vector<Block>> results(parts.size());
  std::vector<Status> statuses(parts.size());
  if (parts.size() > 1) {
    // One task per partition on the shared pool. The group adopts the
    // spawning query's scope, so partition workers count against it (runs
    // folded, scan bytes) and their CPU time folds into it; Wait() helps
    // drain the group inline, so this is safe even on a pool thread.
    auto group = TaskScheduler::Global().CreateGroup();
    for (size_t i = 0; i < parts.size(); ++i) {
      group->Submit([&, i]() {
        statuses[i] =
            run_partition(parts[i].first, parts[i].second, &results[i]);
      });
    }
    group->Wait();
  } else if (parts.size() == 1) {
    statuses[0] = run_partition(parts[0].first, parts[0].second, &results[0]);
  }
  for (const Status& st : statuses) TDE_RETURN_NOT_OK(st);

  ParallelRollupResult out;
  // Schema: value column + aggregate outputs (derive via a throwaway
  // operator over an empty partition).
  {
    IndexedScanOptions scan;
    scan.value_name = options.value_name;
    scan.value_type = options.value_type;
    scan.payload = options.payload;
    auto iscan = std::make_unique<IndexedScan>(table,
                                               std::vector<IndexEntry>{}, scan);
    AggregateOptions agg;
    agg.group_by = {options.value_name};
    agg.aggs = options.aggs;
    OrderedAggregate oagg(std::move(iscan), agg);
    TDE_RETURN_NOT_OK(oagg.Open());
    out.schema = oagg.output_schema();
  }
  for (auto& blocks : results) {
    for (auto& b : blocks) out.blocks.push_back(std::move(b));
  }
  if (foldable) out.runs_folded = index.size();
  return out;
}

}  // namespace tde
