#ifndef TDE_EXEC_LIMIT_H_
#define TDE_EXEC_LIMIT_H_

#include <algorithm>
#include <memory>

#include "src/exec/block.h"

namespace tde {

/// Flow operator: passes through the first `limit` rows (Tableau's "top N"
/// views after an ORDER BY).
///
/// The child is shut down as soon as the limit is reached rather than at
/// the operator's own Close: upstream pipelines with background resources
/// (Exchange worker threads, pinned cold columns) stop producing instead
/// of filling queues nobody will drain. A LIMIT 0 keeps the child closed
/// whenever it can already name its schema — that is what lets a
/// metadata-pruned filter stand in for a scan without faulting a single
/// column; a child that only learns its schema at Open (a Project, say) is
/// opened just long enough to capture it, because an empty result still
/// carries the query's column list.
class Limit : public Operator {
 public:
  Limit(std::unique_ptr<Operator> child, uint64_t limit)
      : child_(std::move(child)), limit_(limit) {}

  Status Open() override {
    produced_ = 0;
    if (limit_ == 0) {
      if (child_->output_schema().num_fields() == 0) {
        TDE_RETURN_NOT_OK(child_->Open());
        schema_ = child_->output_schema();
        child_->Close();
      } else {
        schema_ = child_->output_schema();
      }
      return Status::OK();
    }
    TDE_RETURN_NOT_OK(child_->Open());
    child_open_ = true;
    return Status::OK();
  }

  Status Next(Block* block, bool* eos) override {
    if (produced_ >= limit_) {
      ReleaseChild();
      block->columns.clear();
      *eos = true;
      return Status::OK();
    }
    TDE_RETURN_NOT_OK(child_->Next(block, eos));
    if (*eos) {
      ReleaseChild();
      return Status::OK();
    }
    const uint64_t n = block->rows();
    if (produced_ + n > limit_) {
      const size_t keep_n = static_cast<size_t>(limit_ - produced_);
      for (auto& col : block->columns) col.lanes.resize(keep_n);
      produced_ = limit_;
      ReleaseChild();
    } else {
      produced_ += n;
    }
    return Status::OK();
  }

  void Close() override { ReleaseChild(); }
  const Schema& output_schema() const override {
    return limit_ == 0 ? schema_ : child_->output_schema();
  }

 private:
  void ReleaseChild() {
    if (!child_open_) return;
    child_open_ = false;
    child_->Close();
  }

  std::unique_ptr<Operator> child_;
  uint64_t limit_;
  Schema schema_;  // captured at Open when limit_ == 0
  uint64_t produced_ = 0;
  bool child_open_ = false;
};

}  // namespace tde

#endif  // TDE_EXEC_LIMIT_H_
