#ifndef TDE_EXEC_LIMIT_H_
#define TDE_EXEC_LIMIT_H_

#include <algorithm>
#include <memory>

#include "src/exec/block.h"

namespace tde {

/// Flow operator: passes through the first `limit` rows (Tableau's "top N"
/// views after an ORDER BY).
class Limit : public Operator {
 public:
  Limit(std::unique_ptr<Operator> child, uint64_t limit)
      : child_(std::move(child)), limit_(limit) {}

  Status Open() override {
    produced_ = 0;
    return child_->Open();
  }

  Status Next(Block* block, bool* eos) override {
    if (produced_ >= limit_) {
      block->columns.clear();
      *eos = true;
      return Status::OK();
    }
    TDE_RETURN_NOT_OK(child_->Next(block, eos));
    if (*eos) return Status::OK();
    const uint64_t n = block->rows();
    if (produced_ + n > limit_) {
      const size_t keep_n = static_cast<size_t>(limit_ - produced_);
      for (auto& col : block->columns) col.lanes.resize(keep_n);
      produced_ = limit_;
    } else {
      produced_ += n;
    }
    return Status::OK();
  }

  void Close() override { child_->Close(); }
  const Schema& output_schema() const override {
    return child_->output_schema();
  }

 private:
  std::unique_ptr<Operator> child_;
  uint64_t limit_;
  uint64_t produced_ = 0;
};

}  // namespace tde

#endif  // TDE_EXEC_LIMIT_H_
