#ifndef TDE_EXEC_PARALLEL_ROLLUP_H_
#define TDE_EXEC_PARALLEL_ROLLUP_H_

#include <functional>
#include <memory>

#include "src/exec/hash_aggregate.h"
#include "src/exec/indexed_scan.h"

namespace tde {

/// Index roll-up (Sect. 8): applies an order-preserving calculation (e.g.
/// truncating a date to the start of its month) to the *index* of a sorted
/// run-length column, then re-aggregates the ranges with MIN(start) and
/// SUM(count). This converts an index on raw values into an index on the
/// rolled-up values without touching the raw rows.
///
/// Requires the index to be sorted by value and `fn` to be
/// order-preserving; the resulting ranges must stay contiguous per rolled
/// value or an error is returned.
Result<std::vector<IndexEntry>> RollUpIndex(
    const std::vector<IndexEntry>& index,
    const std::function<Lane(Lane)>& fn);

/// Parallel ordered aggregation over an index (Sect. 8): partitions the
/// value-sorted index across `workers` at group boundaries, runs
/// IndexedScan + OrderedAggregate per partition as a task group on the
/// shared TaskScheduler pool, and concatenates the partition results —
/// which are globally ordered because the partitions are value-disjoint.
struct ParallelRollupOptions {
  std::string value_name;
  TypeId value_type = TypeId::kInteger;
  std::vector<AggSpec> aggs;  // inputs resolved against payload columns
  std::vector<std::string> payload;
  /// <= 0 derives the partition count from the shared pool's size, clamped
  /// so one query cannot monopolize the pool
  /// (TaskScheduler::SuggestedQueryParallelism).
  int workers = 0;
  /// When every aggregate reads the index value itself (or is COUNT(*)),
  /// fold whole runs in O(1) per index entry instead of expanding rows
  /// through IndexedScan. Kill switch mirrors
  /// StrategicOptions::enable_run_aggregation.
  bool fold_runs = true;
};

struct ParallelRollupResult {
  Schema schema;
  std::vector<Block> blocks;
  /// Index entries folded in O(1) instead of row expansion (0 when the
  /// fold path did not engage).
  uint64_t runs_folded = 0;
};

Result<ParallelRollupResult> ParallelIndexedAggregate(
    std::shared_ptr<const Table> table, std::vector<IndexEntry> index,
    const ParallelRollupOptions& options);

/// Options for RunFoldAggregate. Aggregate inputs must all name the index
/// value column (or be COUNT(*)); there is no payload — that restriction
/// is what makes every aggregate foldable per run.
struct RunFoldOptions {
  std::string value_name;
  TypeId value_type = TypeId::kInteger;
  std::shared_ptr<const StringHeap> value_heap;
  /// Group by the index value: one output row per distinct value in
  /// first-occurrence order (matching HashAggregate over the expanded
  /// rows). When false, a single whole-table row.
  bool group_by_value = true;
  std::vector<AggSpec> aggs;
};

/// Aggregation in the compressed domain (Sect. 4): consumes IndexTable
/// rows directly and folds each (value, count) run in O(1) —
/// `sum += value * count` — instead of expanding `count` rows through a
/// scan. Output is identical to HashAggregate over the decoded rows.
class RunFoldAggregate : public Operator {
 public:
  RunFoldAggregate(std::vector<IndexEntry> index, RunFoldOptions options);

  Status Open() override;
  Status Next(Block* block, bool* eos) override;
  const Schema& output_schema() const override { return schema_; }

  uint64_t runs_folded() const { return runs_folded_; }

 private:
  std::vector<IndexEntry> index_;
  RunFoldOptions options_;
  Schema schema_;
  std::vector<Lane> out_keys_;
  std::vector<std::vector<Lane>> out_aggs_;   // [agg][group]
  uint64_t groups_ = 0;
  uint64_t emit_ = 0;
  uint64_t runs_folded_ = 0;
};

}  // namespace tde

#endif  // TDE_EXEC_PARALLEL_ROLLUP_H_
