#ifndef TDE_EXEC_PARALLEL_ROLLUP_H_
#define TDE_EXEC_PARALLEL_ROLLUP_H_

#include <functional>
#include <memory>

#include "src/exec/hash_aggregate.h"
#include "src/exec/indexed_scan.h"

namespace tde {

/// Index roll-up (Sect. 8): applies an order-preserving calculation (e.g.
/// truncating a date to the start of its month) to the *index* of a sorted
/// run-length column, then re-aggregates the ranges with MIN(start) and
/// SUM(count). This converts an index on raw values into an index on the
/// rolled-up values without touching the raw rows.
///
/// Requires the index to be sorted by value and `fn` to be
/// order-preserving; the resulting ranges must stay contiguous per rolled
/// value or an error is returned.
Result<std::vector<IndexEntry>> RollUpIndex(
    const std::vector<IndexEntry>& index,
    const std::function<Lane(Lane)>& fn);

/// Parallel ordered aggregation over an index (Sect. 8): partitions the
/// value-sorted index across `workers` at group boundaries, runs
/// IndexedScan + OrderedAggregate per partition on its own thread, and
/// concatenates the partition results — which are globally ordered because
/// the partitions are value-disjoint.
struct ParallelRollupOptions {
  std::string value_name;
  TypeId value_type = TypeId::kInteger;
  std::vector<AggSpec> aggs;  // inputs resolved against payload columns
  std::vector<std::string> payload;
  int workers = 2;
};

struct ParallelRollupResult {
  Schema schema;
  std::vector<Block> blocks;
};

Result<ParallelRollupResult> ParallelIndexedAggregate(
    std::shared_ptr<const Table> table, std::vector<IndexEntry> index,
    const ParallelRollupOptions& options);

}  // namespace tde

#endif  // TDE_EXEC_PARALLEL_ROLLUP_H_
