#ifndef TDE_EXEC_FILTER_H_
#define TDE_EXEC_FILTER_H_

#include <memory>

#include "src/exec/block.h"
#include "src/exec/expression.h"

namespace tde {

/// Flow operator: keeps the rows for which `predicate` is true (the TDE's
/// Select operator).
class Filter : public Operator {
 public:
  Filter(std::unique_ptr<Operator> child, ExprPtr predicate)
      : child_(std::move(child)), predicate_(std::move(predicate)) {}

  Status Open() override { return child_->Open(); }
  Status Next(Block* block, bool* eos) override;
  void Close() override { child_->Close(); }
  const Schema& output_schema() const override {
    return child_->output_schema();
  }

  /// Rows evaluated and rows kept (selectivity observation for the
  /// tactical layer / tests).
  uint64_t rows_in() const { return rows_in_; }
  uint64_t rows_out() const { return rows_out_; }

 private:
  std::unique_ptr<Operator> child_;
  ExprPtr predicate_;
  uint64_t rows_in_ = 0;
  uint64_t rows_out_ = 0;
};

}  // namespace tde

#endif  // TDE_EXEC_FILTER_H_
