#ifndef TDE_EXEC_TABLE_SCAN_H_
#define TDE_EXEC_TABLE_SCAN_H_

#include <memory>
#include <string>
#include <vector>

#include "src/exec/block.h"
#include "src/storage/segment/segment.h"
#include "src/storage/table.h"

namespace tde {

struct TableScanOptions {
  /// Columns to scan (empty = all), in output order.
  std::vector<std::string> columns;
  /// Resolve array-dictionary tokens to values while scanning. The
  /// strategic optimizer turns this off when it expands the column through
  /// an invisible join instead (Sect. 4.1.1).
  bool decode_dictionaries = true;
  /// Compressed columns to emit as opaque integer token lanes named
  /// "<name>$token" (appended after `columns`). These are the outer join
  /// keys of invisible joins against a DictionaryTable.
  std::vector<std::string> token_columns;
  /// Columns to emit as dense dictionary codes with the code -> token
  /// entry table attached (ColumnVector::dict). Set by the dict-grouping
  /// rewrite so the aggregate groups on codes and decodes one key per
  /// group; ignored for columns whose stream is not dictionary-coded.
  std::vector<std::string> code_columns;
  /// Row ranges to visit (empty = the whole table). Set by the segment
  /// pruner and the exchange partitioner; normalized (sorted, disjoint,
  /// clamped to the table) at Open. Rows outside the ranges are never
  /// decoded — for a segmented cold column their segments never fault in.
  std::vector<RowRange> ranges;
};

/// Scans a stored table block by block, decoding each column's encoded
/// stream one decompression block per iteration block (they are the same
/// size by design, Sect. 3.1).
class TableScan : public Operator {
 public:
  TableScan(std::shared_ptr<const Table> table, TableScanOptions options = {});

  Status Open() override;
  Status Next(Block* block, bool* eos) override;
  void Close() override;
  const Schema& output_schema() const override { return schema_; }

 private:
  std::shared_ptr<const Table> table_;
  TableScanOptions options_;
  std::vector<std::shared_ptr<Column>> cols_;
  /// Pins for cold columns (null entries for hot ones), taken in Open and
  /// dropped in Close: the payloads cannot be evicted mid-query, and the
  /// heap/dict pointers emitted into blocks stay valid as long as the
  /// blocks share them.
  std::vector<std::shared_ptr<const pager::LoadedColumn>> pins_;
  Schema schema_;
  /// Per-column code -> lane entry table for code_columns, built at Open;
  /// null for columns emitted normally.
  std::vector<std::shared_ptr<const ArrayDictionary>> code_dicts_;
  size_t first_token_col_ = 0;
  /// Normalized visit list (always non-empty after Open; one full-table
  /// range when options_.ranges is empty) and the cursor into it.
  std::vector<RowRange> ranges_;
  size_t range_idx_ = 0;
  uint64_t row_ = 0;
  /// Scan-volume accounting, flushed to the query counters at Close: plain
  /// members updated per block so the decode loop touches no atomics.
  uint64_t rows_scanned_ = 0;
  uint64_t stored_bytes_per_block_row_ = 0;  // sum of per-row stored widths
  Status init_error_;
};

}  // namespace tde

#endif  // TDE_EXEC_TABLE_SCAN_H_
