#ifndef TDE_EXEC_DICTIONARY_TABLE_H_
#define TDE_EXEC_DICTIONARY_TABLE_H_

#include <memory>
#include <string>

#include "src/storage/table.h"

namespace tde {

/// Builds the DictionaryTable of a compressed column (Sect. 4.1.1): a
/// pseudo-table whose rows are the column's distinct tokens in heap order,
/// so expansion of the column becomes a foreign-key join and the strategic
/// optimizer can push filters and computations down to it.
///
/// The table has two columns:
///   "<name>$token" — the unique tokens (opaque integers: heap offsets for
///                    string columns, dictionary indexes for array-dict
///                    columns). The join key.
///   "<name>"       — the value each token stands for: for variable-width
///                    data a string column sharing the original heap; for
///                    fixed-width data a copy of the original column's
///                    fixed-width dictionary.
///
/// When `include_null_row` is set, a final row with the NULL sentinel in
/// both columns is appended. NULL lanes in the main table carry the
/// sentinel as their token, so this row is what they join against: pushed
/// down predicates and computations then see the NULL and decide its fate
/// with ordinary expression semantics (IS NULL keeps it, comparisons drop
/// it, LENGTH maps it to NULL) instead of the join silently dropping every
/// NULL row.
Result<std::shared_ptr<Table>> BuildDictionaryTable(
    std::shared_ptr<const Column> column, bool include_null_row = false);

}  // namespace tde

#endif  // TDE_EXEC_DICTIONARY_TABLE_H_
