#include "src/exec/indexed_scan.h"

#include <algorithm>

namespace tde {

Result<std::vector<IndexEntry>> BuildIndexTable(const Column& column) {
  // Cold columns materialize (and stay pinned) for the duration of the
  // build; hot columns answer from their direct stream.
  TDE_ASSIGN_OR_RETURN(auto pin, column.Pin());
  const EncodedStream* stream = pin ? pin->stream.get() : column.data();
  if (stream == nullptr) {
    return {Status::InvalidArgument("column has no data stream")};
  }
  // Value and count come directly from the column data; start is the
  // running total (Sect. 4.2.1). GetRuns is O(runs) for run-length
  // streams and derived by scanning otherwise.
  std::vector<RleRun> runs;
  TDE_RETURN_NOT_OK(stream->GetRuns(&runs));
  std::vector<IndexEntry> index;
  index.reserve(runs.size());
  uint64_t start = 0;
  for (const RleRun& r : runs) {
    index.push_back({r.value, r.count, start});
    start += r.count;
  }
  return index;
}

void SortIndexByValue(std::vector<IndexEntry>* index) {
  std::stable_sort(
      index->begin(), index->end(),
      [](const IndexEntry& a, const IndexEntry& b) { return a.value < b.value; });
}

uint64_t IndexRowCount(const std::vector<IndexEntry>& index) {
  uint64_t rows = 0;
  for (const IndexEntry& e : index) rows += e.count;
  return rows;
}

IndexedScan::IndexedScan(std::shared_ptr<const Table> outer,
                         std::vector<IndexEntry> index,
                         IndexedScanOptions options)
    : outer_(std::move(outer)),
      index_(std::move(index)),
      options_(std::move(options)) {
  schema_.AddField({options_.value_name, options_.value_type});
  for (const std::string& name : options_.payload) {
    auto r = outer_->ColumnByName(name);
    if (!r.ok()) {
      init_error_ = r.status();
      return;
    }
    payload_cols_.push_back(r.MoveValue());
    schema_.AddField({name, payload_cols_.back()->type()});
  }
}

Status IndexedScan::Open() {
  entry_ = 0;
  offset_in_entry_ = 0;
  blocks_emitted_ = 0;
  TDE_RETURN_NOT_OK(init_error_);
  pins_.assign(payload_cols_.size(), nullptr);
  for (size_t p = 0; p < payload_cols_.size(); ++p) {
    TDE_ASSIGN_OR_RETURN(pins_[p], payload_cols_[p]->Pin());
  }
  return Status::OK();
}

void IndexedScan::Close() { pins_.clear(); }

Status IndexedScan::Next(Block* block, bool* eos) {
  block->columns.clear();
  if (entry_ >= index_.size()) {
    *eos = true;
    return Status::OK();
  }
  // One block per *contiguous* qualifying range, up to the block size:
  // physically adjacent index entries are coalesced into a single storage
  // access. An index sorted by value loses this adjacency, which is
  // exactly why small runs degrade the ordered-retrieval plan (Sect. 6.6).
  const uint64_t block_row = index_[entry_].start + offset_in_entry_;
  uint64_t rows = 0;

  block->columns.resize(1 + payload_cols_.size());
  ColumnVector& value_col = block->columns[0];
  value_col.type = options_.value_type;
  value_col.heap = options_.value_heap;
  while (rows < kBlockSize && entry_ < index_.size()) {
    const IndexEntry& e = index_[entry_];
    if (e.start + offset_in_entry_ != block_row + rows) break;
    const size_t take = static_cast<size_t>(std::min<uint64_t>(
        e.count - offset_in_entry_, kBlockSize - rows));
    value_col.lanes.insert(value_col.lanes.end(), take, e.value);
    rows += take;
    offset_in_entry_ += take;
    if (offset_in_entry_ >= e.count) {
      ++entry_;
      offset_in_entry_ = 0;
    }
  }

  for (size_t p = 0; p < payload_cols_.size(); ++p) {
    const Column& col = *payload_cols_[p];
    const pager::LoadedColumn* pin = pins_[p].get();
    ColumnVector& out = block->columns[1 + p];
    out.type = col.type();
    out.lanes.resize(rows);
    // The coalesced range translates into one storage access.
    const EncodedStream* stream = pin ? pin->stream.get() : col.data();
    if (stream == nullptr) {
      return Status::Internal("column has no data stream");
    }
    TDE_RETURN_NOT_OK(stream->Get(block_row, rows, out.lanes.data()));
    if (col.compression() == CompressionKind::kHeap) {
      out.heap = pin ? std::shared_ptr<const StringHeap>(pin->heap)
                     : std::shared_ptr<const StringHeap>(payload_cols_[p],
                                                         col.heap());
    } else if (col.compression() == CompressionKind::kArrayDict) {
      const auto& values =
          (pin ? pin->dict.get() : col.array_dict())->values;
      for (Lane& v : out.lanes) v = values[static_cast<size_t>(v)];
    }
  }

  ++blocks_emitted_;
  *eos = false;
  return Status::OK();
}

}  // namespace tde
