#include "src/exec/scheduler.h"

#include <chrono>
#include <cstdlib>

#include "src/observe/journal.h"
#include "src/observe/metrics.h"

namespace tde {

namespace {

uint64_t NowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

int PoolSizeFromEnv(int requested) {
  if (requested <= 0) {
    if (const char* env = std::getenv("TDE_WORKERS")) {
      requested = std::atoi(env);
    }
  }
  if (requested <= 0) {
    requested = static_cast<int>(std::thread::hardware_concurrency());
  }
  if (requested <= 0) requested = 4;
  if (requested > 256) requested = 256;
  return requested;
}

// True on any scheduler's pool threads (set for the thread's lifetime).
thread_local bool t_on_worker_thread = false;

std::atomic<TaskScheduler*> g_override{nullptr};

}  // namespace

TaskScheduler::TaskScheduler(int workers) {
  auto& registry = observe::MetricsRegistry::Global();
  tasks_run_metric_ = registry.GetCounter("scheduler.tasks_run");
  tasks_cancelled_metric_ = registry.GetCounter("scheduler.tasks_cancelled");
  queue_wait_metric_ = registry.GetHistogram("scheduler.queue_wait_us");
  groups_active_metric_ = registry.GetGauge("scheduler.groups_active");

  const int n = PoolSizeFromEnv(workers);
  threads_.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    threads_.emplace_back([this, i]() { WorkerMain(i); });
  }
}

TaskScheduler::~TaskScheduler() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    shutdown_ = true;
    // Retire whatever is still queued so Wait()ers (if any) wake instead
    // of hanging on a dead pool. Running tasks finish on their own.
    while (!ready_.empty()) {
      std::shared_ptr<Group> g = std::move(ready_.front());
      ready_.pop_front();
      g->in_ready_ = false;
      while (!g->queue_.empty()) {
        g->queue_.pop_front();
        g->stats_.tasks_cancelled++;
        FinishTaskLocked(g.get());
      }
    }
    cv_work_.notify_all();
  }
  for (auto& t : threads_) {
    if (t.joinable()) t.join();
  }
}

TaskScheduler& TaskScheduler::Global() {
  if (TaskScheduler* o = g_override.load(std::memory_order_acquire)) {
    return *o;
  }
  // Leaked on purpose: pool threads may still be parked in their wait at
  // process exit, and destroying the pool during static teardown would
  // race them against already-destroyed globals.
  static TaskScheduler* scheduler = [] {
    auto* s = new TaskScheduler();
    observe::MetricsRegistry::Global().GetGauge("scheduler.workers")
        ->Set(s->workers());
    return s;
  }();
  return *scheduler;
}

TaskScheduler::ScopedOverride::ScopedOverride(TaskScheduler* scheduler) {
  prev_ = g_override.exchange(scheduler, std::memory_order_acq_rel);
}

TaskScheduler::ScopedOverride::~ScopedOverride() {
  g_override.store(prev_, std::memory_order_release);
}

std::shared_ptr<TaskScheduler::Group> TaskScheduler::CreateGroup() {
  std::shared_ptr<Group> g(new Group(this));
  g->scope_ = observe::StatsScope::Current();
  g->shared_self_ = g;
  return g;
}

int TaskScheduler::SuggestedQueryParallelism() const {
  const int n = workers();
  int suggested = n / 2;
  if (suggested < 2) suggested = 2;
  if (suggested > n) suggested = n;
  if (suggested < 1) suggested = 1;
  return suggested;
}

bool TaskScheduler::OnWorkerThread() { return t_on_worker_thread; }

void TaskScheduler::FinishTaskLocked(Group* group) {
  if (--group->outstanding_ == 0) {
    if (observe::StatsEnabled()) groups_active_metric_->Set(--groups_active_);
    group->cv_done_.notify_all();
  }
}

bool TaskScheduler::RunOneReadyTaskLocked(std::unique_lock<std::mutex>& lock) {
  while (!ready_.empty()) {
    std::shared_ptr<Group> g = std::move(ready_.front());
    ready_.pop_front();
    g->in_ready_ = false;
    if (g->queue_.empty()) continue;  // drained by Cancel or Wait-helping
    Group::Item item = std::move(g->queue_.front());
    g->queue_.pop_front();
    if (!g->queue_.empty()) {
      // Rotate to the back: one task per turn keeps concurrent queries
      // interleaving instead of the front group draining the pool.
      ready_.push_back(g);
      g->in_ready_ = true;
      cv_work_.notify_one();
    }
    if (g->cancelled_) {
      g->stats_.tasks_cancelled++;
      if (observe::StatsEnabled()) tasks_cancelled_metric_->Add(1);
      FinishTaskLocked(g.get());
      continue;
    }
    const uint64_t start_ns = NowNs();
    const uint64_t wait_ns = start_ns - item.submit_ns;
    g->stats_.queue_wait_ns += wait_ns;
    observe::StatsScope* scope = g->scope_;
    lock.unlock();
    if (observe::StatsEnabled()) {
      queue_wait_metric_->Record(wait_ns / 1000);
      tasks_run_metric_->Add(1);
    }
    {
      observe::StatsScope::Bind bind(
          scope == observe::StatsScope::Current() ? nullptr : scope);
      item.fn();
    }
    const uint64_t run_ns = NowNs() - start_ns;
    lock.lock();
    g->stats_.tasks_run++;
    g->stats_.run_ns += run_ns;
    FinishTaskLocked(g.get());
    return true;
  }
  return false;
}

void TaskScheduler::WorkerMain(int index) {
  (void)index;
  t_on_worker_thread = true;
  std::unique_lock<std::mutex> lock(mu_);
  while (true) {
    cv_work_.wait(lock, [this]() { return shutdown_ || !ready_.empty(); });
    if (shutdown_) return;
    RunOneReadyTaskLocked(lock);
  }
}

bool TaskScheduler::TryRunOneTask() {
  std::unique_lock<std::mutex> lock(mu_);
  return RunOneReadyTaskLocked(lock);
}

void TaskScheduler::Group::Submit(Task task) {
  std::unique_lock<std::mutex> lock(sched_->mu_);
  if (cancelled_ || sched_->shutdown_) {
    stats_.tasks_cancelled++;
    if (observe::StatsEnabled()) sched_->tasks_cancelled_metric_->Add(1);
    return;
  }
  if (outstanding_++ == 0) {
    if (observe::StatsEnabled()) {
      sched_->groups_active_metric_->Set(++sched_->groups_active_);
    }
  }
  queue_.push_back(Item{std::move(task), NowNs()});
  if (!in_ready_) {
    sched_->ready_.push_back(shared_self_.lock());
    in_ready_ = true;
    sched_->cv_work_.notify_one();
  }
}

void TaskScheduler::Group::Cancel() {
  std::unique_lock<std::mutex> lock(sched_->mu_);
  cancelled_ = true;
  while (!queue_.empty()) {
    queue_.pop_front();
    stats_.tasks_cancelled++;
    if (observe::StatsEnabled()) sched_->tasks_cancelled_metric_->Add(1);
    sched_->FinishTaskLocked(this);
  }
}

void TaskScheduler::Group::Wait() {
  std::unique_lock<std::mutex> lock(sched_->mu_);
  while (outstanding_ > 0) {
    if (!queue_.empty()) {
      // Help: drain our own queued tasks inline. Never blocks the pool
      // even when Wait is called from a pool worker (nested parallelism).
      Item item = std::move(queue_.front());
      queue_.pop_front();
      if (cancelled_) {
        stats_.tasks_cancelled++;
        if (observe::StatsEnabled()) sched_->tasks_cancelled_metric_->Add(1);
        sched_->FinishTaskLocked(this);
        continue;
      }
      const uint64_t start_ns = NowNs();
      stats_.queue_wait_ns += start_ns - item.submit_ns;
      observe::StatsScope* scope = scope_;
      lock.unlock();
      if (observe::StatsEnabled()) sched_->tasks_run_metric_->Add(1);
      {
        observe::StatsScope::Bind bind(
            scope == observe::StatsScope::Current() ? nullptr : scope);
        item.fn();
      }
      const uint64_t run_ns = NowNs() - start_ns;
      lock.lock();
      stats_.tasks_run++;
      stats_.run_ns += run_ns;
      sched_->FinishTaskLocked(this);
      continue;
    }
    cv_done_.wait(lock);
  }
}

TaskScheduler::GroupStats TaskScheduler::Group::stats() const {
  std::unique_lock<std::mutex> lock(sched_->mu_);
  return stats_;
}

}  // namespace tde
