#include "src/exec/dictionary_table.h"

#include <numeric>

#include "src/exec/flow_table.h"

namespace tde {

Result<std::shared_ptr<Table>> BuildDictionaryTable(
    std::shared_ptr<const Column> column, bool include_null_row) {
  FlowTableOptions opts;
  opts.post_process = false;  // dictionary tables are already minimal
  opts.table_name = column->name() + "$dict";

  auto table = std::make_shared<Table>(opts.table_name);

  // A cold column's heap/dictionary must be materialized (and held) while
  // this function reads them; the built table then owns its own pieces
  // (the heap case shares the payload heap via heap_ptr()).
  TDE_ASSIGN_OR_RETURN(auto pin, column->Pin());

  if (column->compression() == CompressionKind::kHeap) {
    // Variable-width data: the value column shares the original heap and
    // its data is the set of unique tokens in heap order (Fig. 2).
    std::vector<Lane> tokens = column->heap()->AllTokens();
    if (include_null_row) tokens.push_back(kNullSentinel);

    ColumnBuildInput token_in;
    token_in.name = column->name() + "$token";
    token_in.type = TypeId::kInteger;
    token_in.lanes = tokens;
    TDE_ASSIGN_OR_RETURN(auto token_col,
                         BuildColumn(std::move(token_in), opts));
    if (!include_null_row) {
      // Heap tokens ascend by construction; record it for the tactical
      // layer. The trailing sentinel row breaks both properties.
      token_col->mutable_metadata()->sorted = true;
      token_col->mutable_metadata()->unique = true;
    }
    table->AddColumn(std::move(token_col));

    ColumnBuildInput value_in;
    value_in.name = column->name();
    value_in.type = TypeId::kString;
    value_in.lanes = std::move(tokens);
    TDE_ASSIGN_OR_RETURN(auto value_col,
                         BuildColumn(std::move(value_in), opts));
    value_col->set_compression(CompressionKind::kHeap);
    value_col->set_heap(column->heap_ptr());
    table->AddColumn(std::move(value_col));
    return table;
  }

  if (column->compression() == CompressionKind::kArrayDict) {
    // Fixed-width data: token column (dense indexes — affine, so joins
    // against it become fetch joins) plus a copy of the fixed-width
    // dictionary.
    const ArrayDictionary& dict = *column->array_dict();
    std::vector<Lane> indexes(dict.values.size());
    std::iota(indexes.begin(), indexes.end(), 0);
    if (include_null_row) indexes.push_back(kNullSentinel);

    ColumnBuildInput token_in;
    token_in.name = column->name() + "$token";
    token_in.type = TypeId::kInteger;
    token_in.lanes = std::move(indexes);
    TDE_ASSIGN_OR_RETURN(auto token_col,
                         BuildColumn(std::move(token_in), opts));
    table->AddColumn(std::move(token_col));

    ColumnBuildInput value_in;
    value_in.name = column->name();
    value_in.type = dict.type;
    value_in.lanes = dict.values;
    if (include_null_row) value_in.lanes.push_back(kNullSentinel);
    TDE_ASSIGN_OR_RETURN(auto value_col,
                         BuildColumn(std::move(value_in), opts));
    if (dict.sorted) value_col->mutable_metadata()->sorted = true;
    table->AddColumn(std::move(value_col));
    return table;
  }

  return {Status::InvalidArgument("column '" + column->name() +
                                  "' is not dictionary compressed")};
}

}  // namespace tde
