#ifndef TDE_EXEC_FLOW_TABLE_H_
#define TDE_EXEC_FLOW_TABLE_H_

#include <memory>
#include <string>
#include <vector>

#include "src/exec/block.h"
#include "src/exec/table_scan.h"
#include "src/observe/import_stats.h"
#include "src/storage/table.h"

namespace tde {

struct FlowTableOptions {
  /// Apply lightweight encodings (off = the paper's baseline config).
  bool enable_encodings = true;
  /// Admissible encodings (EncodingMask); the strategic optimizer passes
  /// kAllowRandomAccess for hash-join inner sides (Sect. 4.3).
  uint32_t allowed = kAllowAll;
  /// Maintain the heap accelerator for string columns (Sect. 5.1.4).
  bool heap_acceleration = true;
  /// Element count past which the accelerator gives up hashing (the TDE
  /// uses 2^31; configurable for tests and memory budgets).
  uint64_t accelerator_threshold = uint64_t{1} << 31;
  /// Run the post-processing manipulations of Sect. 3.4: type narrowing,
  /// heap sorting for dictionary-encoded string columns, metadata
  /// extraction.
  bool post_process = true;
  /// Encode columns on separate threads (encoding of each column is
  /// independent, Sect. 3.3).
  bool parallel_columns = false;
  /// Rows per sealed segment (0 = the TDE_SEGMENT_ROWS knob / 64K
  /// default). Columns no longer than one segment stay monolithic.
  uint64_t segment_rows = 0;
  std::string table_name = "flow";
};

/// FlowTable (Sect. 3.3): the stop-and-go operator that turns a stream of
/// row blocks into a table. Each column is dynamically encoded
/// independently (and optionally in parallel); afterwards the Sect. 3.4
/// manipulations run as a post-processing step of the build, extracting
/// metadata for the tactical optimizer along the way.
class FlowTable : public Operator {
 public:
  FlowTable(std::unique_ptr<Operator> child, FlowTableOptions options = {});

  Status Open() override;
  Status Next(Block* block, bool* eos) override;
  void Close() override;
  const Schema& output_schema() const override;

  /// The built table; valid after Open().
  std::shared_ptr<Table> table() const { return table_; }

  /// Per-column encoding telemetry (chosen encoding, input vs. encoded
  /// bytes, re-encode count, header manipulations); valid after Open()
  /// when stats collection is enabled.
  const std::vector<observe::ColumnImportStats>& column_stats() const {
    return column_stats_;
  }
  /// Wall time of the encode phase (drain excluded); valid after Open().
  double encode_seconds() const { return encode_seconds_; }

  /// One-shot: drain `child` and build the table.
  static Result<std::shared_ptr<Table>> Build(
      std::unique_ptr<Operator> child, FlowTableOptions options = {});

 private:
  std::unique_ptr<Operator> child_;
  FlowTableOptions options_;
  std::shared_ptr<Table> table_;
  std::unique_ptr<TableScan> scan_;
  Schema schema_;
  bool built_ = false;
  std::vector<observe::ColumnImportStats> column_stats_;
  double encode_seconds_ = 0;
};

/// The per-column build pipeline FlowTable runs; exposed for reuse by the
/// import path and tests. Builds one encoded Column from accumulated lanes
/// (plus, for strings, the heap built during the drain).
struct ColumnBuildInput {
  std::string name;
  TypeId type;
  std::vector<Lane> lanes;
  std::shared_ptr<StringHeap> heap;  // strings only
  // Accelerator observations (strings with acceleration on):
  bool accel_active = false;
  uint64_t accel_distinct = 0;
  bool accel_arrived_sorted = false;
};

/// Builds one encoded column. When `stats_out` is non-null the encoding
/// outcome (chosen encoding, input vs. encoded bytes, re-encode count,
/// header manipulations) is recorded into it.
Result<std::shared_ptr<Column>> BuildColumn(
    ColumnBuildInput in, const FlowTableOptions& options,
    observe::ColumnImportStats* stats_out = nullptr);

}  // namespace tde

#endif  // TDE_EXEC_FLOW_TABLE_H_
