#include "src/exec/instrument.h"

#include <chrono>

#include "src/observe/metrics.h"
#include "src/observe/trace.h"

namespace tde {

namespace {

uint64_t NowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace

Status Instrumented::Open() {
  closed_ = false;
  const uint64_t t0 = NowNs();
  Status st = op_->Open();
  stats_->open_ns += NowNs() - t0;
  return st;
}

Status Instrumented::Next(Block* block, bool* eos) {
  const uint64_t t0 = NowNs();
  Status st = op_->Next(block, eos);
  stats_->next_ns += NowNs() - t0;
  if (st.ok() && !*eos) {
    const uint64_t rows = block->rows();
    if (rows > 0) {
      ++stats_->blocks;
      stats_->rows += rows;
    }
  }
  return st;
}

void Instrumented::Close() {
  if (closed_) return;
  closed_ = true;
  const uint64_t t0 = NowNs();
  op_->Close();
  stats_->close_ns += NowNs() - t0;
  if (on_close_) on_close_(stats_.get());
  // One trace slice per operator lifetime: offset back from "now" by the
  // operator's inclusive runtime so concurrent tracks line up sensibly.
  observe::TraceRecorder& rec = observe::TraceRecorder::Global();
  if (rec.enabled()) {
    observe::TraceEvent e;
    e.name = stats_->name;
    e.category = "operator";
    const uint64_t now_us = rec.NowMicros();
    const uint64_t dur_us = stats_->total_ns() / 1000;
    e.start_us = now_us > dur_us ? now_us - dur_us : 0;
    e.dur_us = dur_us;
    rec.Record(std::move(e));
  }
}

Operator* Unwrap(Operator* op) {
  while (auto* w = dynamic_cast<Instrumented*>(op)) op = w->inner();
  return op;
}

std::unique_ptr<Operator> Instrument(
    std::unique_ptr<Operator> op,
    std::shared_ptr<observe::OperatorStats> stats,
    std::function<void(observe::OperatorStats*)> on_close) {
  if (!observe::StatsEnabled() || stats == nullptr) return op;
  return std::make_unique<Instrumented>(std::move(op), std::move(stats),
                                        std::move(on_close));
}

}  // namespace tde
