#include "src/exec/hash_join.h"

#include <limits>

#include "src/encoding/header.h"

namespace tde {

namespace {
constexpr uint32_t kNoGroup = std::numeric_limits<uint32_t>::max();
}

const char* JoinStrategyName(JoinStrategy s) {
  switch (s) {
    case JoinStrategy::kFetch:
      return "fetch";
    case JoinStrategy::kHashDirect:
      return "hash-direct";
    case JoinStrategy::kHashPerfect:
      return "hash-perfect";
    case JoinStrategy::kHashCollision:
      return "hash-collision";
  }
  return "unknown";
}

HashJoin::HashJoin(std::unique_ptr<Operator> outer,
                   std::shared_ptr<const Table> inner, HashJoinOptions options)
    : outer_(std::move(outer)),
      inner_(std::move(inner)),
      options_(std::move(options)) {}

Result<JoinStrategyChoice> ChooseJoinStrategy(const Table& inner,
                                              const std::string& inner_key) {
  TDE_ASSIGN_OR_RETURN(auto key_col, inner.ColumnByName(inner_key));
  const ColumnMetadata& meta = key_col->metadata();
  JoinStrategyChoice c;

  // Tactical rule 1 (Sect. 2.3.5, 3.4.2): if the row id of the inner table
  // is an affine transformation of the key value — detected either from
  // the affine encoding itself or from dense/unique/sorted metadata — use
  // a fetch join: no lookup table at all.
  // Tactical decisions never fault cold data in: PinIfResident holds the
  // payload (if any) for the duration of the affine peek; an unresident
  // cold column falls through to the metadata rules below.
  const auto pin = key_col->PinIfResident();
  const EncodedStream* key_stream =
      key_col->cold() ? (pin ? pin->stream.get() : nullptr) : key_col->data();
  if (key_stream != nullptr && key_stream->type() == EncodingType::kAffine) {
    const ConstHeaderView h(key_stream->buffer());
    c.fetch_base = h.GetI64(24);
    c.fetch_delta = h.GetI64(32);
    if (c.fetch_delta != 0) {
      c.strategy = JoinStrategy::kFetch;
      return c;
    }
    c.fetch_delta = 1;
  } else if (meta.dense && meta.unique && meta.sorted && meta.min_max_known) {
    c.fetch_base = meta.min_value;
    c.fetch_delta = 1;
    c.strategy = JoinStrategy::kFetch;
    return c;
  }
  // Tactical rule 2 (Sect. 2.3.4): hash algorithm from key width/range.
  // The width that matters is the width of the key *values* flowing
  // through the join, derived from the extracted min/max metadata.
  const uint8_t value_width =
      meta.min_max_known ? MinSignedWidth(meta.min_value, meta.max_value) : 8;
  switch (ChooseHashAlgorithm(value_width, meta.min_max_known, meta.min_value,
                              meta.max_value)) {
    case HashAlgorithm::kDirect:
      c.strategy = JoinStrategy::kHashDirect;
      break;
    case HashAlgorithm::kPerfect:
      c.strategy = JoinStrategy::kHashPerfect;
      break;
    case HashAlgorithm::kCollision:
      c.strategy = JoinStrategy::kHashCollision;
      break;
  }
  return c;
}

Status HashJoin::ChooseStrategy() {
  TDE_ASSIGN_OR_RETURN(auto key_col, inner_->ColumnByName(options_.inner_key));
  const ColumnMetadata& meta = key_col->metadata();
  inner_rows_ = inner_->rows();

  TDE_ASSIGN_OR_RETURN(JoinStrategyChoice choice,
                       ChooseJoinStrategy(*inner_, options_.inner_key));
  fetch_base_ = choice.fetch_base;
  fetch_delta_ = choice.fetch_delta;
  if (options_.force_strategy.has_value()) {
    strategy_ = *options_.force_strategy;
    if (strategy_ == JoinStrategy::kFetch &&
        choice.strategy != JoinStrategy::kFetch) {
      return Status::InvalidArgument(
          "fetch join forced but inner key is not an affine function of the "
          "row id");
    }
  } else {
    strategy_ = choice.strategy;
  }

  // Find the NULL-sentinel inner row, if the inner table carries one (a
  // DictionaryTable built with include_null_row); it never
  // enters the hash map — NULL outer keys are matched to it directly.
  null_row_.reset();
  std::vector<Lane> keys(inner_rows_);
  if (inner_rows_ > 0) {
    TDE_RETURN_NOT_OK(key_col->GetLanes(0, inner_rows_, keys.data()));
  }
  for (uint64_t r = 0; r < inner_rows_; ++r) {
    if (keys[r] != kNullSentinel) continue;
    if (null_row_.has_value()) {
      return Status::InvalidArgument(
          "inner join key is not unique (many-to-one join required)");
    }
    null_row_ = static_cast<uint32_t>(r);
  }

  if (strategy_ != JoinStrategy::kFetch) {
    HashAlgorithm algo = HashAlgorithm::kCollision;
    if (strategy_ == JoinStrategy::kHashDirect) algo = HashAlgorithm::kDirect;
    if (strategy_ == JoinStrategy::kHashPerfect) {
      algo = HashAlgorithm::kPerfect;
    }
    map_ = std::make_unique<GroupMap>(algo, meta.min_value, meta.max_value);
    group_to_row_.resize(inner_rows_);
    for (uint64_t r = 0; r < inner_rows_; ++r) {
      if (keys[r] == kNullSentinel) continue;
      const uint32_t before = map_->group_count();
      const uint32_t g = map_->GetOrInsert(keys[r]);
      if (map_->group_count() == before) {
        return Status::InvalidArgument(
            "inner join key is not unique (many-to-one join required)");
      }
      group_to_row_[g] = static_cast<uint32_t>(r);
    }
  }
  return Status::OK();
}

Status HashJoin::Open() {
  TDE_RETURN_NOT_OK(outer_->Open());
  TDE_RETURN_NOT_OK(ChooseStrategy());

  // Materialize the requested inner payload columns (inner tables are
  // small — dictionaries, filtered dimension tables).
  payload_.clear();
  for (const std::string& name : options_.inner_payload) {
    TDE_ASSIGN_OR_RETURN(auto col, inner_->ColumnByName(name));
    // Hold cold columns resident while their lanes/heap/dict are read; the
    // emitted heap pointer shares the payload so it outlives eviction.
    TDE_ASSIGN_OR_RETURN(auto pin, col->Pin());
    InnerColumn ic;
    ic.type = col->type();
    ic.lanes.resize(inner_rows_);
    if (inner_rows_ > 0) {
      TDE_RETURN_NOT_OK(col->GetLanes(0, inner_rows_, ic.lanes.data()));
    }
    if (col->compression() == CompressionKind::kHeap) {
      ic.heap = pin ? std::shared_ptr<const StringHeap>(pin->heap)
                    : std::shared_ptr<const StringHeap>(col, col->heap());
    } else if (col->compression() == CompressionKind::kArrayDict) {
      // Decode dictionary tokens for payload delivery.
      const auto& values = (pin ? pin->dict.get() : col->array_dict())->values;
      for (Lane& v : ic.lanes) v = values[static_cast<size_t>(v)];
    }
    payload_.push_back(std::move(ic));
  }

  schema_ = Schema();
  const Schema& outer_schema = outer_->output_schema();
  for (const Field& f : outer_schema.fields()) schema_.AddField(f);
  for (size_t i = 0; i < options_.inner_payload.size(); ++i) {
    schema_.AddField({options_.inner_payload[i], payload_[i].type});
  }
  TDE_ASSIGN_OR_RETURN(outer_key_idx_,
                       outer_schema.FieldIndex(options_.outer_key));
  return Status::OK();
}

Status HashJoin::Next(Block* block, bool* eos) {
  while (true) {
    Block in;
    TDE_RETURN_NOT_OK(outer_->Next(&in, eos));
    block->columns.clear();
    if (*eos) return Status::OK();
    const size_t n = in.rows();
    if (n == 0) continue;

    // Resolve each outer row's inner row id; misses drop the row.
    std::vector<uint32_t> inner_row(n);
    std::vector<char> keep(n, 0);
    size_t kept = 0;
    const std::vector<Lane>& keys = in.columns[outer_key_idx_].lanes;
    const bool unit_fetch =
        strategy_ == JoinStrategy::kFetch && fetch_delta_ == 1;
    for (size_t i = 0; i < n; ++i) {
      uint32_t row = kNoGroup;
      if (keys[i] == kNullSentinel) {
        // NULL keys match only the designated NULL inner row (if any);
        // the strategies below must not see the sentinel as a value.
        if (null_row_.has_value()) row = *null_row_;
      } else if (unit_fetch) {
        // The fastest join available (Sect. 2.3.5): row id = key - base.
        // Unsigned arithmetic: a null-sentinel key must wrap far out of
        // range, not overflow.
        const uint64_t r = static_cast<uint64_t>(keys[i]) -
                           static_cast<uint64_t>(fetch_base_);
        if (r < inner_rows_) row = static_cast<uint32_t>(r);
      } else if (strategy_ == JoinStrategy::kFetch) {
        const int64_t num = static_cast<int64_t>(
            static_cast<uint64_t>(keys[i]) -
            static_cast<uint64_t>(fetch_base_));
        if (num % fetch_delta_ == 0) {
          const int64_t r = num / fetch_delta_;
          if (r >= 0 && static_cast<uint64_t>(r) < inner_rows_) {
            row = static_cast<uint32_t>(r);
          }
        }
      } else {
        const uint32_t g = map_->Find(keys[i]);
        if (g != kNoGroup) row = group_to_row_[g];
      }
      if (row != kNoGroup) {
        inner_row[i] = row;
        keep[i] = 1;
        ++kept;
      }
    }
    if (kept == 0) continue;

    *block = std::move(in);
    // Attach payload columns before compaction (gather by inner row).
    for (size_t p = 0; p < payload_.size(); ++p) {
      ColumnVector cv;
      cv.type = payload_[p].type;
      cv.heap = payload_[p].heap;
      cv.lanes.resize(n);
      for (size_t i = 0; i < n; ++i) {
        cv.lanes[i] = keep[i] ? payload_[p].lanes[inner_row[i]] : 0;
      }
      block->columns.push_back(std::move(cv));
    }
    if (kept < n) block->Compact(keep);
    return Status::OK();
  }
}

std::unique_ptr<HashJoin> MakeFetchJoin(std::unique_ptr<Operator> outer,
                                        std::shared_ptr<const Table> inner,
                                        HashJoinOptions options) {
  options.force_strategy = JoinStrategy::kFetch;
  return std::make_unique<HashJoin>(std::move(outer), std::move(inner),
                                    std::move(options));
}

}  // namespace tde
