#include "src/exec/sort.h"

#include <algorithm>
#include <bit>
#include <numeric>

namespace tde {

Sort::Sort(std::unique_ptr<Operator> child, std::vector<SortKey> keys)
    : child_(std::move(child)), keys_(std::move(keys)) {}

Status Sort::Open() {
  TDE_RETURN_NOT_OK(child_->Open());
  const Schema& schema = child_->output_schema();
  cols_.assign(schema.num_fields(), ColumnVector{});
  for (size_t i = 0; i < schema.num_fields(); ++i) {
    cols_[i].type = schema.field(i).type;
  }
  while (true) {
    Block b;
    bool eos = false;
    TDE_RETURN_NOT_OK(child_->Next(&b, &eos));
    if (eos) break;
    for (size_t i = 0; i < b.columns.size(); ++i) {
      if (cols_[i].heap == nullptr) cols_[i].heap = b.columns[i].heap;
      cols_[i].lanes.insert(cols_[i].lanes.end(), b.columns[i].lanes.begin(),
                            b.columns[i].lanes.end());
    }
  }
  child_->Close();

  std::vector<size_t> key_idx;
  for (const SortKey& k : keys_) {
    TDE_ASSIGN_OR_RETURN(size_t i, schema.FieldIndex(k.column));
    key_idx.push_back(i);
  }

  const uint64_t n = cols_.empty() ? 0 : cols_[0].lanes.size();
  order_.resize(n);
  std::iota(order_.begin(), order_.end(), 0);
  std::stable_sort(order_.begin(), order_.end(), [&](uint64_t a, uint64_t b) {
    for (size_t k = 0; k < key_idx.size(); ++k) {
      const ColumnVector& col = cols_[key_idx[k]];
      const Lane va = col.lanes[a];
      const Lane vb = col.lanes[b];
      // NULL orders below every value — before the type dispatch, because
      // the sentinel would otherwise masquerade as a value (-0.0 for reals,
      // INT64_MIN for integers, an out-of-range token for strings).
      if (va == kNullSentinel || vb == kNullSentinel) {
        if (va == vb) continue;
        const int cmp = va == kNullSentinel ? -1 : 1;
        return keys_[k].ascending ? cmp < 0 : cmp > 0;
      }
      int cmp;
      if (col.type == TypeId::kString && col.heap != nullptr) {
        cmp = col.heap->CompareTokens(va, vb);
      } else if (col.type == TypeId::kReal) {
        const double da = std::bit_cast<double>(static_cast<uint64_t>(va));
        const double db = std::bit_cast<double>(static_cast<uint64_t>(vb));
        cmp = da < db ? -1 : (da > db ? 1 : 0);
      } else {
        cmp = va < vb ? -1 : (va > vb ? 1 : 0);
      }
      if (cmp != 0) return keys_[k].ascending ? cmp < 0 : cmp > 0;
    }
    return false;
  });
  emit_ = 0;
  return Status::OK();
}

Status Sort::Next(Block* block, bool* eos) {
  block->columns.clear();
  const uint64_t n = order_.size();
  if (emit_ >= n) {
    *eos = true;
    return Status::OK();
  }
  const size_t take = static_cast<size_t>(std::min<uint64_t>(kBlockSize, n - emit_));
  block->columns.reserve(cols_.size());
  for (const ColumnVector& col : cols_) {
    ColumnVector out;
    out.type = col.type;
    out.heap = col.heap;
    out.dict = col.dict;
    out.lanes.resize(take);
    for (size_t i = 0; i < take; ++i) {
      out.lanes[i] = col.lanes[order_[emit_ + i]];
    }
    block->columns.push_back(std::move(out));
  }
  emit_ += take;
  *eos = false;
  return Status::OK();
}

}  // namespace tde
