#include "src/exec/sort.h"

#include <algorithm>
#include <numeric>
#include <utility>

#include "src/exec/scheduler.h"

namespace tde {

namespace {
/// Below this, chunk + merge bookkeeping costs more than it saves.
constexpr uint64_t kParallelSortMinRows = 8192;
}  // namespace

Sort::Sort(std::unique_ptr<Operator> child, std::vector<SortKey> keys,
           SortOptions options)
    : child_(std::move(child)), keys_(std::move(keys)), options_(options) {}

Status Sort::Open() {
  TDE_RETURN_NOT_OK(child_->Open());
  const Schema& schema = child_->output_schema();
  cols_.assign(schema.num_fields(), ColumnVector{});
  unifiers_.assign(schema.num_fields(), sortkeys::HeapUnifier{});
  for (size_t i = 0; i < schema.num_fields(); ++i) {
    cols_[i].type = schema.field(i).type;
  }
  while (true) {
    Block b;
    bool eos = false;
    TDE_RETURN_NOT_OK(child_->Next(&b, &eos));
    if (eos) break;
    for (size_t i = 0; i < b.columns.size(); ++i) {
      ColumnVector& in = b.columns[i];
      if (in.heap != nullptr) unifiers_[i].UnifyBlock(&in);
      if (cols_[i].dict == nullptr) cols_[i].dict = in.dict;
      cols_[i].lanes.insert(cols_[i].lanes.end(), in.lanes.begin(),
                            in.lanes.end());
    }
  }
  child_->Close();
  for (size_t i = 0; i < cols_.size(); ++i) {
    if (unifiers_[i].heap() != nullptr) cols_[i].heap = unifiers_[i].heap();
  }

  const uint64_t n = cols_.empty() ? 0 : cols_[0].lanes.size();
  prepared_.clear();
  rank_lanes_.assign(keys_.size(), {});
  key_lanes_.assign(keys_.size(), nullptr);
  sortkeys::StringRankCache rank_cache;
  for (size_t k = 0; k < keys_.size(); ++k) {
    TDE_ASSIGN_OR_RETURN(size_t idx, schema.FieldIndex(keys_[k].column));
    const ColumnVector& col = cols_[idx];
    sortkeys::PreparedKey p;
    p.col = idx;
    p.ascending = keys_[k].ascending;
    p.type = col.type;
    if (col.type == TypeId::kString && col.heap != nullptr) {
      if (!options_.dict_sort) {
        p.mode = sortkeys::StringKeyMode::kCollate;
        p.heap = col.heap.get();
      } else if (col.heap->sorted()) {
        p.mode = sortkeys::StringKeyMode::kRawTokens;
        ++dict_key_sorts_;
      } else {
        // Translate the key lanes to collation ranks once; every
        // comparison below is then integer.
        p.mode = sortkeys::StringKeyMode::kRanks;
        ++dict_key_sorts_;
        std::vector<Lane> ranks(col.lanes.size());
        for (size_t r = 0; r < col.lanes.size(); ++r) {
          ranks[r] = rank_cache.Rank(col.heap, col.lanes[r]);
        }
        rank_lanes_[k] = std::move(ranks);
      }
    }
    prepared_.push_back(p);
    key_lanes_[k] = p.mode == sortkeys::StringKeyMode::kRanks
                        ? rank_lanes_[k].data()
                        : col.lanes.data();
  }

  order_.resize(n);
  std::iota(order_.begin(), order_.end(), 0);
  SortOrder();
  emit_ = 0;
  return Status::OK();
}

bool Sort::RowBefore(uint64_t a, uint64_t b) const {
  for (size_t k = 0; k < prepared_.size(); ++k) {
    const int cmp = sortkeys::KeyCompareDirected(prepared_[k], key_lanes_[k][a],
                                                 key_lanes_[k][b]);
    if (cmp != 0) return cmp < 0;
  }
  return false;
}

void Sort::SortOrder() {
  const uint64_t n = order_.size();
  const auto cmp = [this](uint64_t a, uint64_t b) { return RowBefore(a, b); };
  TaskScheduler& sched = TaskScheduler::Global();
  const uint64_t workers =
      static_cast<uint64_t>(sched.SuggestedQueryParallelism());
  if (!options_.parallel || n < kParallelSortMinRows || workers < 2) {
    std::stable_sort(order_.begin(), order_.end(), cmp);
    return;
  }

  // Contiguous chunks in input order: each chunk stable-sorts as one
  // scheduler task, then pairwise merges reassemble them. std::merge is
  // stable and takes ties from the first (earlier-input) range, so the
  // result matches a serial stable_sort exactly.
  const uint64_t chunks =
      std::max<uint64_t>(2, std::min(workers, n / (kParallelSortMinRows / 2)));
  const uint64_t per = (n + chunks - 1) / chunks;
  std::vector<std::pair<uint64_t, uint64_t>> runs;
  auto group = sched.CreateGroup();
  for (uint64_t begin = 0; begin < n; begin += per) {
    const uint64_t end = std::min(n, begin + per);
    runs.emplace_back(begin, end);
    group->Submit([this, begin, end, cmp] {
      std::stable_sort(order_.begin() + static_cast<ptrdiff_t>(begin),
                       order_.begin() + static_cast<ptrdiff_t>(end), cmp);
    });
  }
  group->Wait();
  parallel_chunks_ = runs.size();

  std::vector<uint64_t> scratch(n);
  while (runs.size() > 1) {
    std::vector<std::pair<uint64_t, uint64_t>> next;
    auto merge_group = sched.CreateGroup();
    for (size_t i = 0; i + 1 < runs.size(); i += 2) {
      const uint64_t b1 = runs[i].first;
      const uint64_t e1 = runs[i].second;
      const uint64_t e2 = runs[i + 1].second;
      next.emplace_back(b1, e2);
      merge_group->Submit([this, &scratch, b1, e1, e2, cmp] {
        std::merge(order_.begin() + static_cast<ptrdiff_t>(b1),
                   order_.begin() + static_cast<ptrdiff_t>(e1),
                   order_.begin() + static_cast<ptrdiff_t>(e1),
                   order_.begin() + static_cast<ptrdiff_t>(e2),
                   scratch.begin() + static_cast<ptrdiff_t>(b1), cmp);
      });
    }
    if (runs.size() % 2 == 1) {
      const uint64_t b = runs.back().first;
      const uint64_t e = runs.back().second;
      next.emplace_back(b, e);
      std::copy(order_.begin() + static_cast<ptrdiff_t>(b),
                order_.begin() + static_cast<ptrdiff_t>(e),
                scratch.begin() + static_cast<ptrdiff_t>(b));
    }
    merge_group->Wait();
    order_.swap(scratch);
    runs = std::move(next);
  }
}

Status Sort::Next(Block* block, bool* eos) {
  block->columns.clear();
  const uint64_t n = order_.size();
  if (emit_ >= n) {
    *eos = true;
    return Status::OK();
  }
  const size_t take =
      static_cast<size_t>(std::min<uint64_t>(kBlockSize, n - emit_));
  block->columns.reserve(cols_.size());
  for (const ColumnVector& col : cols_) {
    ColumnVector out;
    out.type = col.type;
    out.heap = col.heap;
    out.dict = col.dict;
    out.lanes.resize(take);
    for (size_t i = 0; i < take; ++i) {
      out.lanes[i] = col.lanes[order_[emit_ + i]];
    }
    block->columns.push_back(std::move(out));
  }
  emit_ += take;
  *eos = false;
  return Status::OK();
}

}  // namespace tde
