#ifndef TDE_EXEC_TOPN_H_
#define TDE_EXEC_TOPN_H_

#include <memory>
#include <string>
#include <vector>

#include "src/exec/block.h"
#include "src/exec/sort.h"
#include "src/exec/sort_keys.h"

namespace tde {

/// One input of a TopN. A plain LIMIT-over-ORDER-BY has a single source;
/// the executor may split a Top-N directly over a scan into one source per
/// storage segment, attaching the first sort key's zone (segment min/max)
/// so whole segments are skipped — never opened, their cold columns never
/// faulted — once the heap's worst kept row proves they cannot contribute.
struct TopNSource {
  std::unique_ptr<Operator> op;
  /// First-key zone of this source's rows, when known. Only trusted for
  /// lane-comparable key types (integer/date/datetime/bool), where the
  /// stored lane order is the sort order.
  bool zone_known = false;
  Lane min_value = 0;
  Lane max_value = 0;
  bool has_nulls = true;
};

struct TopNOptions {
  /// Integer-domain string key comparisons (see SortOptions::dict_sort).
  bool dict_sort = true;
  /// Rows arrive non-decreasing on the first sort key (single ascending
  /// sorted source): once the heap is full and a row cannot enter, no
  /// later row can, so the drain short-circuits.
  bool input_sorted = false;
};

/// Bounded-heap ORDER BY ... LIMIT k: keeps the k best rows in a
/// max-heap-of-the-worst while streaming the input, O(n log k) comparisons
/// and O(k) materialized rows instead of a full sort's O(n log n) / O(n).
/// Output order and tie-breaking match Sort exactly (stable: equal-key
/// rows win by earlier input position), so enable_topn never changes
/// results, only work.
class TopN : public Operator {
 public:
  TopN(std::vector<TopNSource> sources, std::vector<SortKey> keys,
       uint64_t limit, TopNOptions options = {});
  TopN(std::unique_ptr<Operator> child, std::vector<SortKey> keys,
       uint64_t limit, TopNOptions options = {});

  Status Open() override;
  Status Next(Block* block, bool* eos) override;
  const Schema& output_schema() const override;

  // Observed while draining; read by the executor's instrumentation hook.
  uint64_t input_rows() const { return input_rows_; }
  /// Rows copied into the bounded store (appends + replacements) — the
  /// sort.rows_materialized of a Top-N, ideally << input_rows.
  uint64_t rows_materialized() const { return rows_materialized_; }
  /// Sources skipped without opening because their zone could not beat
  /// the heap's worst row.
  uint64_t segments_skipped() const { return segments_skipped_; }
  /// String keys compared in the integer domain (tokens or ranks).
  uint64_t dict_keys() const { return dict_keys_; }
  /// Whether a sorted input let the drain stop before exhaustion.
  bool early_stopped() const { return early_stopped_; }

 private:
  /// True when stored row `a` orders strictly before stored row `b`
  /// (full keys, then input order — the stable tie-break).
  bool RowLess(uint32_t a, uint32_t b) const;
  /// True when the candidate (comparison lanes in cand_) beats stored row
  /// `slot`. Key ties lose: the candidate arrived later.
  bool CandidateBeats(uint32_t slot) const;
  /// Re-derives each string key's comparison mode from its column's heap
  /// state, rebuilding that key's stored comparison lanes on a change.
  void RefreshKeys();
  Status DrainSource(Operator* op, bool sorted_source);
  void Finalize();

  std::vector<TopNSource> sources_;
  std::vector<SortKey> keys_;
  uint64_t limit_ = 0;
  TopNOptions options_;

  std::vector<size_t> key_cols_;
  std::vector<sortkeys::PreparedKey> prepared_;
  std::vector<sortkeys::HeapUnifier> unifiers_;
  /// Column ever re-interned a foreign heap: its heap now grows, so rank /
  /// raw-token modes are off the table (downgraded to kCollate).
  std::vector<char> translated_;
  sortkeys::StringRankCache rank_cache_;

  std::vector<ColumnVector> store_;            // kept rows, <= limit
  std::vector<std::vector<Lane>> key_store_;   // comparison lanes per key
  std::vector<uint64_t> seq_store_;            // input position per row
  std::vector<uint32_t> heap_;                 // slots, worst row on top
  std::vector<Lane> cand_;                     // current row's key lanes

  std::vector<uint32_t> result_;  // store slots in output order
  uint64_t emit_ = 0;
  uint64_t seq_ = 0;

  uint64_t input_rows_ = 0;
  uint64_t rows_materialized_ = 0;
  uint64_t segments_skipped_ = 0;
  uint64_t dict_keys_ = 0;
  bool early_stopped_ = false;
};

}  // namespace tde

#endif  // TDE_EXEC_TOPN_H_
