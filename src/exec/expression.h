#ifndef TDE_EXEC_EXPRESSION_H_
#define TDE_EXEC_EXPRESSION_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/exec/block.h"

namespace tde {

enum class CompareOp { kEq, kNe, kLt, kLe, kGt, kGe };
enum class ArithOp { kAdd, kSub, kMul, kDiv, kMod };
enum class DateFunc {
  kYear,        // calendar year as integer
  kMonth,       // calendar month 1-12
  kDay,         // day of month
  kTruncMonth,  // first day of the month (a date) — the Sect. 8 roll-up
  kTruncYear,   // first day of the year (a date)
};
enum class StrFunc {
  kUpper,
  kLower,
  kLength,
  kExtension,  // file extension of a URL/path (the Sect. 4.1.2 scenario)
};

class Expression;
using ExprPtr = std::shared_ptr<const Expression>;

/// Coarse structural tags for the optimizer's predicate analysis (metadata
/// folding needs to see through connectives without dynamic_cast).
enum class ExprShape { kOther, kAnd, kOr, kNot, kIsNull, kIn };

/// A scalar expression evaluated block-at-a-time. Expressions are immutable
/// and shareable; evaluation binds column references against the block's
/// schema by name.
///
/// NULL semantics follow the TDE's sentinel model: any NULL input lane
/// yields a NULL output lane; comparisons involving NULL are false.
class Expression {
 public:
  virtual ~Expression() = default;

  virtual Result<ColumnVector> Eval(const Block& block,
                                    const Schema& schema) const = 0;
  virtual Result<TypeId> ResultType(const Schema& schema) const = 0;
  virtual std::string ToString() const = 0;
  /// Appends the names of all referenced columns.
  virtual void CollectColumns(std::vector<std::string>* out) const = 0;
  /// Non-null iff this expression is a bare column reference (used for
  /// property derivation through projections).
  virtual const std::string* AsColumnRef() const { return nullptr; }

  /// True iff this is a scalar literal; fills type/value when so.
  virtual bool AsLiteral(TypeId* type, Lane* value) const {
    (void)type;
    (void)value;
    return false;
  }

  /// Structural tag for optimizer analysis (connectives, IS NULL, IN).
  virtual ExprShape Shape() const { return ExprShape::kOther; }

  /// True iff this is a comparison; fills the operator when so.
  virtual bool AsCompare(CompareOp* op) const {
    (void)op;
    return false;
  }

  // Introspection for the reference interpreter (src/testing): the
  // differential-testing oracle re-implements evaluation row-at-a-time from
  // scratch, so it must recover each node's identity from outside without
  // dynamic_cast. Each returns false/nullptr except on the matching node.

  /// True iff this is an arithmetic node; fills the operator when so.
  virtual bool AsArith(ArithOp* op) const {
    (void)op;
    return false;
  }
  /// Non-null iff this is LIKE; returns the pattern (child 0 is the input).
  virtual const std::string* AsLikePattern() const { return nullptr; }
  /// Non-null iff this is a string literal; returns the text.
  virtual const std::string* AsStringLiteral() const { return nullptr; }
  /// True iff this is a date function; fills the function when so.
  virtual bool AsDateFunc(DateFunc* f) const {
    (void)f;
    return false;
  }
  /// True iff this is a string function; fills the function when so.
  virtual bool AsStrFunc(StrFunc* f) const {
    (void)f;
    return false;
  }
  /// True iff this is CASE; fills the branch count and whether an ELSE
  /// exists. Children are cond0, val0, cond1, val1, ..., [otherwise].
  virtual bool AsCase(size_t* branches, bool* has_else) const {
    (void)branches;
    (void)has_else;
    return false;
  }

  /// Child expressions (empty for leaves).
  virtual std::vector<ExprPtr> Children() const { return {}; }
  /// Rebuilds this node over replacement children (same arity); leaves
  /// return nullptr.
  virtual ExprPtr WithChildren(std::vector<ExprPtr> children) const {
    (void)children;
    return nullptr;
  }
};

namespace expr {

/// Column reference by name.
ExprPtr Col(std::string name);

/// Literals.
ExprPtr Int(int64_t v);
ExprPtr Real(double v);
ExprPtr Bool(bool v);
ExprPtr Str(std::string v);
ExprPtr Date(int year, unsigned month, unsigned day);
ExprPtr Null(TypeId type);

/// Comparisons (strings compare under the heap's collation; tokens of a
/// shared sorted heap compare directly).
ExprPtr Cmp(CompareOp op, ExprPtr l, ExprPtr r);
inline ExprPtr Eq(ExprPtr l, ExprPtr r) { return Cmp(CompareOp::kEq, l, r); }
inline ExprPtr Ne(ExprPtr l, ExprPtr r) { return Cmp(CompareOp::kNe, l, r); }
inline ExprPtr Lt(ExprPtr l, ExprPtr r) { return Cmp(CompareOp::kLt, l, r); }
inline ExprPtr Le(ExprPtr l, ExprPtr r) { return Cmp(CompareOp::kLe, l, r); }
inline ExprPtr Gt(ExprPtr l, ExprPtr r) { return Cmp(CompareOp::kGt, l, r); }
inline ExprPtr Ge(ExprPtr l, ExprPtr r) { return Cmp(CompareOp::kGe, l, r); }

/// Arithmetic (integer, or real when either side is real; division by zero
/// yields NULL).
ExprPtr Arith(ArithOp op, ExprPtr l, ExprPtr r);
inline ExprPtr Add(ExprPtr l, ExprPtr r) { return Arith(ArithOp::kAdd, l, r); }
inline ExprPtr Sub(ExprPtr l, ExprPtr r) { return Arith(ArithOp::kSub, l, r); }
inline ExprPtr Mul(ExprPtr l, ExprPtr r) { return Arith(ArithOp::kMul, l, r); }
inline ExprPtr Div(ExprPtr l, ExprPtr r) { return Arith(ArithOp::kDiv, l, r); }

/// Boolean connectives (NULL treated as false).
ExprPtr And(ExprPtr l, ExprPtr r);
ExprPtr Or(ExprPtr l, ExprPtr r);
ExprPtr Not(ExprPtr e);

ExprPtr IsNull(ExprPtr e);

/// SQL IN over a literal list: true when the input equals any of `values`
/// (same comparison semantics as Eq — collation for strings, O(1) token
/// comparison when input and value share a sorted heap). A NULL input
/// never matches (comparisons with NULL are false).
ExprPtr In(ExprPtr input, std::vector<ExprPtr> values);

/// SQL LIKE over strings: '%' matches any run, '_' any single byte. Case
/// folding follows the input heap's collation (locale collation folds
/// case). Like every single-column string predicate, the optimizer can
/// push it to the DictionaryTable side of an invisible join.
ExprPtr Like(ExprPtr input, std::string pattern);

/// SQL CASE: the value of the first branch whose condition is true, else
/// `otherwise` (NULL when null). All THEN/ELSE values must share a type.
struct CaseBranch {
  ExprPtr condition;
  ExprPtr value;
};
ExprPtr Case(std::vector<CaseBranch> branches, ExprPtr otherwise);

/// Date calculations (the "expensive calculations on scalar dimensions"
/// the paper pushes to the dictionary side, Sect. 3.4.3).
ExprPtr DateF(DateFunc f, ExprPtr e);

/// String calculations (produce a fresh per-block heap; FlowTable
/// re-accumulates and deduplicates downstream).
ExprPtr StrF(StrFunc f, ExprPtr e);

/// Expression simplification (one of the strategic optimizer's rewrites,
/// Sect. 2.3.1): folds constant subtrees by evaluating them, applies
/// boolean identities (x AND true -> x, x OR true -> true, NOT NOT x -> x)
/// and returns the (possibly shared) simplified tree.
ExprPtr Simplify(const ExprPtr& e);

/// Rewrites every column reference through `rename` (missing names are
/// kept). Used to push filters through projections.
ExprPtr RenameColumns(const ExprPtr& e,
                      const std::map<std::string, std::string>& rename);

}  // namespace expr

}  // namespace tde

#endif  // TDE_EXEC_EXPRESSION_H_
