#ifndef TDE_EXEC_EXCHANGE_H_
#define TDE_EXEC_EXCHANGE_H_

#include <condition_variable>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <thread>

#include "src/exec/block.h"

namespace tde {

/// A per-block transformation applied by exchange workers (e.g. the
/// parallelized filter of the Sect. 4.3 example). Receives the block and
/// the child's schema; may shrink or rewrite it.
using BlockTransform =
    std::function<Status(const Schema& schema, Block* block)>;

struct ExchangeOptions {
  int workers = 2;
  /// Order-preserving routing (Sect. 4.3): number the blocks and output
  /// them in order, so downstream encodings are not degraded by block
  /// reordering. The paper measured a 10-15% overhead for this constraint.
  bool order_preserving = true;
  BlockTransform transform;  // identity if empty
};

/// Volcano-style exchange (Sect. 2.3.1, [Graefe 90]): parallelizes a flow
/// segment by fanning blocks out to worker threads and merging their
/// outputs. With order_preserving off, blocks are emitted as workers
/// complete them — faster, but it disturbs value order and can make the
/// downstream encodings much worse (Sect. 4.3).
class Exchange : public Operator {
 public:
  Exchange(std::unique_ptr<Operator> child, ExchangeOptions options);
  ~Exchange() override;

  Status Open() override;
  Status Next(Block* block, bool* eos) override;
  void Close() override;
  const Schema& output_schema() const override {
    return child_->output_schema();
  }

 private:
  struct Shared;
  void WorkerLoop();
  void ProducerLoop();
  void StopThreads();

  std::unique_ptr<Operator> child_;
  ExchangeOptions options_;
  std::unique_ptr<Shared> shared_;
  std::vector<std::thread> threads_;
  uint64_t next_to_emit_ = 0;
};

}  // namespace tde

#endif  // TDE_EXEC_EXCHANGE_H_
