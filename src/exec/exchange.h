#ifndef TDE_EXEC_EXCHANGE_H_
#define TDE_EXEC_EXCHANGE_H_

#include <condition_variable>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "src/exec/block.h"

namespace tde {

/// A per-block transformation applied by exchange workers (e.g. the
/// parallelized filter of the Sect. 4.3 example). Receives the block and
/// the child's schema; may shrink or rewrite it.
using BlockTransform =
    std::function<Status(const Schema& schema, Block* block)>;

struct ExchangeOptions {
  int workers = 2;
  /// Order-preserving routing (Sect. 4.3): number the blocks and output
  /// them in order, so downstream encodings are not degraded by block
  /// reordering. The paper measured a 10-15% overhead for this constraint.
  bool order_preserving = true;
  BlockTransform transform;  // identity if empty
};

/// Per-worker observations of one Exchange run.
struct ExchangeWorkerStats {
  uint64_t blocks = 0;        // blocks this worker processed
  uint64_t rows_emitted = 0;  // rows it pushed downstream (post-transform)
  uint64_t queue_wait_ns = 0; // time spent waiting for input
};

/// Observations of one Exchange run, final once Close() has joined the
/// threads. The queue-wait numbers are the paper's Sect. 4.3 cost model
/// made visible: how much of the wall time each side spent blocked on the
/// in-flight bound rather than doing work.
struct ExchangeRunStats {
  uint64_t blocks_in = 0;          // blocks admitted from the child
  uint64_t producer_wait_ns = 0;   // producer blocked on the bound
  uint64_t consumer_wait_ns = 0;   // consumer blocked waiting for output
  std::vector<ExchangeWorkerStats> workers;
};

/// Volcano-style exchange (Sect. 2.3.1, [Graefe 90]): parallelizes a flow
/// segment by fanning blocks out to worker threads and merging their
/// outputs. With order_preserving off, blocks are emitted as workers
/// complete them — faster, but it disturbs value order and can make the
/// downstream encodings much worse (Sect. 4.3).
///
/// Total blocks in flight (input queue + workers + output) are bounded, so
/// a slow consumer cannot balloon memory; a worker/transform error stops
/// the producer and workers early; and Close() mid-stream (a query abort)
/// or after an error drains and joins every thread without deadlock.
class Exchange : public Operator {
 public:
  Exchange(std::unique_ptr<Operator> child, ExchangeOptions options);

  /// Segment-partitioned exchange: one worker per source operator, each
  /// draining its own disjoint partition (range-restricted TableScans over
  /// segment subsets) — no shared producer queue, so workers never contend
  /// for input. Inherently unordered (partitions interleave as they
  /// finish); order_preserving is forced off. `partitions` must be
  /// non-empty; options.workers is overridden to the partition count.
  Exchange(std::vector<std::unique_ptr<Operator>> partitions,
           ExchangeOptions options);
  ~Exchange() override;

  Status Open() override;
  Status Next(Block* block, bool* eos) override;
  void Close() override;
  const Schema& output_schema() const override {
    return child_ != nullptr ? child_->output_schema()
                             : partitions_.front()->output_schema();
  }

  /// Run observations; final once Close() (or the destructor) has joined
  /// the threads.
  const ExchangeRunStats& run_stats() const { return run_stats_; }

 private:
  struct Shared;
  void WorkerLoop(size_t worker_index);
  void PartitionWorkerLoop(size_t worker_index);
  void ProducerLoop();
  void StopThreads();

  std::unique_ptr<Operator> child_;            // null in partition mode
  std::vector<std::unique_ptr<Operator>> partitions_;
  ExchangeOptions options_;
  std::unique_ptr<Shared> shared_;
  std::vector<std::thread> threads_;
  uint64_t next_to_emit_ = 0;
  ExchangeRunStats run_stats_;
};

}  // namespace tde

#endif  // TDE_EXEC_EXCHANGE_H_
