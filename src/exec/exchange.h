#ifndef TDE_EXEC_EXCHANGE_H_
#define TDE_EXEC_EXCHANGE_H_

#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <vector>

#include "src/exec/block.h"
#include "src/exec/scheduler.h"

namespace tde {

/// A per-block transformation applied by exchange workers (e.g. the
/// parallelized filter of the Sect. 4.3 example). Receives the block and
/// the child's schema; may shrink or rewrite it.
using BlockTransform =
    std::function<Status(const Schema& schema, Block* block)>;

struct ExchangeOptions {
  /// Virtual worker count (stats slots + max in-flight transforms).
  /// <= 0 derives it from the shared pool's size, clamped so one query
  /// cannot monopolize the pool (TaskScheduler::SuggestedQueryParallelism).
  int workers = 0;
  /// Order-preserving routing (Sect. 4.3): number the blocks and output
  /// them in order, so downstream encodings are not degraded by block
  /// reordering. The paper measured a 10-15% overhead for this constraint.
  bool order_preserving = true;
  BlockTransform transform;  // identity if empty
};

/// Per-worker observations of one Exchange run.
struct ExchangeWorkerStats {
  uint64_t blocks = 0;        // blocks this worker processed
  uint64_t rows_emitted = 0;  // rows it pushed downstream (post-transform)
  uint64_t queue_wait_ns = 0; // time spent waiting for input / pool slots
};

/// Observations of one Exchange run, final once Close() has retired the
/// task group. The queue-wait numbers are the paper's Sect. 4.3 cost model
/// made visible: how much of the wall time each side spent blocked on the
/// in-flight bound rather than doing work.
struct ExchangeRunStats {
  uint64_t blocks_in = 0;          // blocks admitted from the child
  uint64_t producer_wait_ns = 0;   // producer blocked on the bound
  uint64_t consumer_wait_ns = 0;   // consumer blocked waiting for output
  std::vector<ExchangeWorkerStats> workers;
};

/// Volcano-style exchange (Sect. 2.3.1, [Graefe 90]): parallelizes a flow
/// segment by fanning blocks out to workers and merging their outputs.
/// With order_preserving off, blocks are emitted as workers complete
/// them — faster, but it disturbs value order and can make the downstream
/// encodings much worse (Sect. 4.3).
///
/// Execution rides the shared TaskScheduler pool instead of spawning
/// threads: Open() creates one task group and submits a self-resubmitting
/// producer task (which fans each admitted block out as a one-block
/// transform task) or, in partition mode, one self-resubmitting task per
/// partition. Tasks never block the pool — a producer/partition out of
/// in-flight headroom parks (returns) and the consumer resubmits it as it
/// frees a slot. `workers` is a *virtual* width (stats slots and fan-out
/// granularity); actual concurrency is whatever slice of the pool the
/// scheduler grants this group. When Open() itself runs on a pool worker
/// (nested exchange), the operator degrades to inline pass-through, and a
/// consumer waiting on a pool thread helps the pool instead of blocking a
/// slot — both keep a fixed pool deadlock-free.
///
/// Total blocks in flight (input queue + workers + output) are bounded, so
/// a slow consumer cannot balloon memory; a worker/transform error stops
/// the producer and workers early; and Close() mid-stream (a query abort)
/// or after an error cancels and drains the task group without deadlock.
class Exchange : public Operator {
 public:
  Exchange(std::unique_ptr<Operator> child, ExchangeOptions options);

  /// Segment-partitioned exchange: one worker per source operator, each
  /// draining its own disjoint partition (range-restricted TableScans over
  /// segment subsets) — no shared producer queue, so workers never contend
  /// for input. Inherently unordered (partitions interleave as they
  /// finish); order_preserving is forced off. `partitions` must be
  /// non-empty; options.workers is overridden to the partition count.
  Exchange(std::vector<std::unique_ptr<Operator>> partitions,
           ExchangeOptions options);
  ~Exchange() override;

  Status Open() override;
  Status Next(Block* block, bool* eos) override;
  void Close() override;
  const Schema& output_schema() const override {
    return child_ != nullptr ? child_->output_schema()
                             : partitions_.front()->output_schema();
  }

  /// Run observations; final once Close() (or the destructor) has retired
  /// the task group.
  const ExchangeRunStats& run_stats() const { return run_stats_; }

 private:
  struct Shared;
  void ProducerStep();
  void PartitionStep(size_t partition_index);
  void TransformTask(uint64_t submit_ns);
  Status NextInline(Block* block, bool* eos);
  void UnparkForHeadroomLocked();
  void StopTasks();

  std::unique_ptr<Operator> child_;            // null in partition mode
  std::vector<std::unique_ptr<Operator>> partitions_;
  ExchangeOptions options_;
  TaskScheduler* scheduler_ = nullptr;
  std::shared_ptr<TaskScheduler::Group> group_;
  std::unique_ptr<Shared> shared_;
  int nslots_ = 0;  // resolved virtual worker count (stats slots)
  uint64_t next_to_emit_ = 0;
  size_t inline_partition_ = 0;  // inline mode: partition being drained
  ExchangeRunStats run_stats_;
};

}  // namespace tde

#endif  // TDE_EXEC_EXCHANGE_H_
