#ifndef TDE_EXEC_HASH_AGGREGATE_H_
#define TDE_EXEC_HASH_AGGREGATE_H_

#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "src/common/hash.h"
#include "src/exec/block.h"

namespace tde {

/// Aggregate functions. COUNTD and MEDIAN are the functions Tableau
/// extracts exist to supplement (Sect. 2.2).
enum class AggKind {
  kCountStar,
  kCount,   // non-NULL inputs
  kSum,
  kMin,
  kMax,
  kAvg,
  kCountDistinct,
  kMedian,
};

struct AggSpec {
  AggKind kind;
  std::string input;   // ignored for kCountStar
  std::string output;
};

struct AggregateOptions {
  std::vector<std::string> group_by;
  std::vector<AggSpec> aggs;
  /// Tactical hint for single-key grouping: the hash algorithm chosen from
  /// the key column's width and range metadata (Sect. 2.3.4). Unset =
  /// collision hashing.
  std::optional<HashAlgorithm> hash_algorithm;
  int64_t key_min = 0;
  int64_t key_max = 0;
  /// Dictionary-code grouping: string group keys are translated per heap
  /// into dense first-occurrence codes and grouped on those, so the key
  /// strings materialize once per *group* at finalize instead of once per
  /// row. Cleared when StrategicOptions::enable_dict_grouping is off.
  bool dict_code_keys = true;
};

/// Per-group aggregate state shared by the hash and ordered variants.
struct AggState {
  int64_t i = 0;            // sum / min / max / count
  double d = 0;             // real sum
  uint64_t n = 0;           // non-null inputs (avg / count)
  bool seen = false;
  std::unordered_set<Lane> distinct;   // COUNTD
  std::vector<Lane> values;            // MEDIAN
};

/// Folds one input lane into the state and finalizes it; shared kernels.
namespace agg_internal {
/// `heap` is the string-token context of the input column (may be null for
/// non-string inputs). MIN/MAX/MEDIAN over strings order tokens *by their
/// collated text* through it; without it tokens would compare as raw byte
/// offsets, which is insertion order on an unsorted heap.
Status Update(AggKind kind, TypeId type, Lane v, AggState* s,
              const StringHeap* heap = nullptr);
/// Column-at-a-time Update: folds `v[r]` into the state of group `g[r]` for
/// all `n` rows with one kind/type dispatch for the whole column. `v` may be
/// null for COUNT(*). `s0[g * stride]` must be row r's state; row order (and
/// so first-overflow SUM errors) matches n calls to Update exactly.
Status UpdateColumn(AggKind kind, TypeId type, const Lane* v,
                    const uint32_t* g, size_t n, size_t stride, AggState* s0,
                    const StringHeap* heap = nullptr);
/// Folds `count` copies of `v` in O(1) (SUM adds v*count, COUNT adds count,
/// MIN/MAX/COUNTD see the value once). MEDIAN degenerates to O(count).
Status UpdateRun(AggKind kind, TypeId type, Lane v, uint64_t count,
                 AggState* s, const StringHeap* heap = nullptr);
/// True when UpdateRun is O(1) for this kind.
bool FoldableOverRuns(AggKind kind);
Lane Finalize(AggKind kind, TypeId type, AggState* s,
              const StringHeap* heap = nullptr);
TypeId OutputType(AggKind kind, TypeId input_type);
}  // namespace agg_internal

/// Per-heap translation cache mapping string-key tokens to dense codes
/// assigned in first-occurrence order (NULL gets a code of its own), so a
/// single grouping key's code IS its group id. While every input block
/// shares one heap — the common case, since scans attach the column heap to
/// each block — no string is ever decoded; if a second heap appears the
/// cache re-keys itself onto a canonical heap, decoding one string per
/// distinct value, and keeps going.
class StringKeyNormalizer {
 public:
  /// Dense code for `token` resolved against `heap`. Equal strings map to
  /// equal codes across heaps; kNullSentinel consistently maps to one code.
  uint32_t Code(const std::shared_ptr<const StringHeap>& heap, Lane token);

  /// The token (or kNullSentinel) that renders code `c` against emit_heap().
  Lane Token(uint32_t c) const { return code_tokens_[c]; }

  /// Heap the emitted group keys resolve against: the original input heap
  /// while only one heap has been seen, a canonical first-seen-order heap
  /// after that.
  std::shared_ptr<const StringHeap> emit_heap() const;

  uint32_t distinct() const {
    return static_cast<uint32_t>(code_tokens_.size());
  }

 private:
  struct HeapCache {
    const StringHeap* raw = nullptr;
    std::shared_ptr<const StringHeap> keep;       // pins pointer identity
    std::vector<uint32_t> direct;                 // token offset -> code + 1
    std::unordered_map<Lane, uint32_t> spill;     // oversized heaps
    bool use_direct = true;
  };

  HeapCache* CacheFor(const std::shared_ptr<const StringHeap>& heap);
  uint32_t Assign(HeapCache* hc, Lane token);

  std::vector<std::unique_ptr<HeapCache>> heaps_;
  HeapCache* last_ = nullptr;
  std::vector<Lane> code_tokens_;                 // code -> emit-heap token
  std::shared_ptr<StringHeap> canon_;             // owned once >1 heap seen
  std::unordered_map<std::string, uint32_t> code_by_string_;  // canon mode
  uint32_t null_code_ = UINT32_MAX;               // unassigned until seen
};

/// Stop-and-go hash aggregation. The group map for single-key grouping is
/// chosen tactically: direct table for narrow keys, perfect hash when the
/// key range is known and small, collision hashing otherwise. String keys
/// group on dictionary codes (see StringKeyNormalizer) unless disabled.
class HashAggregate : public Operator {
 public:
  HashAggregate(std::unique_ptr<Operator> child, AggregateOptions options);

  Status Open() override;
  Status Next(Block* block, bool* eos) override;
  const Schema& output_schema() const override { return schema_; }

  HashAlgorithm algorithm_used() const { return algorithm_used_; }
  /// Groups whose key strings were materialized at finalize rather than
  /// compared per row; 0 when dictionary-code grouping did not engage.
  uint64_t groups_late_materialized() const {
    return groups_late_materialized_;
  }

 private:
  Status BuildSchema();

  std::unique_ptr<Operator> child_;
  AggregateOptions options_;
  Schema schema_;
  HashAlgorithm algorithm_used_ = HashAlgorithm::kCollision;

  // Results, emitted in group order after the build.
  std::vector<std::vector<Lane>> out_keys_;     // [key][group]
  std::vector<std::vector<Lane>> out_aggs_;     // [agg][group]
  std::vector<std::shared_ptr<const StringHeap>> key_heaps_;
  std::vector<std::shared_ptr<const StringHeap>> agg_heaps_;
  std::vector<TypeId> key_types_;
  std::vector<TypeId> agg_types_;
  uint64_t emit_ = 0;
  uint64_t groups_ = 0;
  uint64_t groups_late_materialized_ = 0;
};

}  // namespace tde

#endif  // TDE_EXEC_HASH_AGGREGATE_H_
