#ifndef TDE_EXEC_HASH_AGGREGATE_H_
#define TDE_EXEC_HASH_AGGREGATE_H_

#include <memory>
#include <optional>
#include <string>
#include <unordered_set>
#include <vector>

#include "src/common/hash.h"
#include "src/exec/block.h"

namespace tde {

/// Aggregate functions. COUNTD and MEDIAN are the functions Tableau
/// extracts exist to supplement (Sect. 2.2).
enum class AggKind {
  kCountStar,
  kCount,   // non-NULL inputs
  kSum,
  kMin,
  kMax,
  kAvg,
  kCountDistinct,
  kMedian,
};

struct AggSpec {
  AggKind kind;
  std::string input;   // ignored for kCountStar
  std::string output;
};

struct AggregateOptions {
  std::vector<std::string> group_by;
  std::vector<AggSpec> aggs;
  /// Tactical hint for single-key grouping: the hash algorithm chosen from
  /// the key column's width and range metadata (Sect. 2.3.4). Unset =
  /// collision hashing.
  std::optional<HashAlgorithm> hash_algorithm;
  int64_t key_min = 0;
  int64_t key_max = 0;
};

/// Per-group aggregate state shared by the hash and ordered variants.
struct AggState {
  int64_t i = 0;            // sum / min / max / count
  double d = 0;             // real sum
  uint64_t n = 0;           // non-null inputs (avg / count)
  bool seen = false;
  std::unordered_set<Lane> distinct;   // COUNTD
  std::vector<Lane> values;            // MEDIAN
};

/// Folds one input lane into the state and finalizes it; shared kernels.
namespace agg_internal {
void Update(AggKind kind, TypeId type, Lane v, AggState* s);
Lane Finalize(AggKind kind, TypeId type, AggState* s);
TypeId OutputType(AggKind kind, TypeId input_type);
}  // namespace agg_internal

/// Stop-and-go hash aggregation. The group map for single-key grouping is
/// chosen tactically: direct table for narrow keys, perfect hash when the
/// key range is known and small, collision hashing otherwise.
class HashAggregate : public Operator {
 public:
  HashAggregate(std::unique_ptr<Operator> child, AggregateOptions options);

  Status Open() override;
  Status Next(Block* block, bool* eos) override;
  const Schema& output_schema() const override { return schema_; }

  HashAlgorithm algorithm_used() const { return algorithm_used_; }

 private:
  Status BuildSchema();

  std::unique_ptr<Operator> child_;
  AggregateOptions options_;
  Schema schema_;
  HashAlgorithm algorithm_used_ = HashAlgorithm::kCollision;

  // Results, emitted in group order after the build.
  std::vector<std::vector<Lane>> out_keys_;     // [key][group]
  std::vector<std::vector<Lane>> out_aggs_;     // [agg][group]
  std::vector<std::shared_ptr<const StringHeap>> key_heaps_;
  std::vector<std::shared_ptr<const StringHeap>> agg_heaps_;
  std::vector<TypeId> key_types_;
  std::vector<TypeId> agg_types_;
  uint64_t emit_ = 0;
  uint64_t groups_ = 0;
};

}  // namespace tde

#endif  // TDE_EXEC_HASH_AGGREGATE_H_
