#ifndef TDE_EXEC_BLOCK_H_
#define TDE_EXEC_BLOCK_H_

#include <memory>
#include <vector>

#include "src/common/types.h"
#include "src/storage/dictionary.h"
#include "src/storage/schema.h"
#include "src/storage/string_heap.h"

namespace tde {

/// One column's worth of a row block: 64-bit lanes plus the dictionary
/// context needed to interpret them. String lanes are heap tokens; columns
/// flowing through an invisible join may instead carry array-dictionary
/// indexes with `dict` attached, and group-by keys emitted by a dict-code
/// scan carry dense dictionary codes with `dict` mapping code -> token
/// (plus `heap` for strings).
struct ColumnVector {
  TypeId type = TypeId::kInteger;
  std::vector<Lane> lanes;
  std::shared_ptr<const StringHeap> heap;        // string token context
  std::shared_ptr<const ArrayDictionary> dict;   // index token context

  /// Resolves lane i to its string (heap must be set).
  std::string_view GetString(size_t i) const { return heap->Get(lanes[i]); }
};

/// A block of rows (Sect. 2.3.1): the unit passed between Volcano-style
/// flow operators. At most kBlockSize rows.
struct Block {
  std::vector<ColumnVector> columns;

  size_t rows() const { return columns.empty() ? 0 : columns[0].lanes.size(); }
  size_t num_columns() const { return columns.size(); }

  void Clear() {
    for (auto& c : columns) c.lanes.clear();
  }

  /// Keeps only the rows whose `keep` flag is set (all columns).
  void Compact(const std::vector<char>& keep);
};

/// The block-iterated Volcano operator interface (Sect. 2.3.1). Flow
/// operators process one block at a time; stop-and-go operators (Sort,
/// FlowTable) consume their whole input inside Open()/first Next().
class Operator {
 public:
  virtual ~Operator() = default;

  Operator(const Operator&) = delete;
  Operator& operator=(const Operator&) = delete;

  virtual Status Open() = 0;

  /// Produces the next block. Sets *eos once the stream is exhausted (a
  /// block returned alongside *eos == true is empty).
  virtual Status Next(Block* block, bool* eos) = 0;

  virtual void Close() {}

  /// Names and types of the produced columns.
  virtual const Schema& output_schema() const = 0;

 protected:
  Operator() = default;
};

/// Drains an operator into a vector of blocks (test/utility helper).
Status DrainOperator(Operator* op, std::vector<Block>* out);

}  // namespace tde

#endif  // TDE_EXEC_BLOCK_H_
