#ifndef TDE_EXEC_SORT_KEYS_H_
#define TDE_EXEC_SORT_KEYS_H_

#include <bit>
#include <cstdint>
#include <map>
#include <memory>
#include <unordered_map>
#include <vector>

#include "src/exec/block.h"
#include "src/storage/string_heap.h"

namespace tde {
namespace sortkeys {

/// Per-column heap unification for operators that buffer rows across
/// blocks (Sort, TopN). A child usually shares one StringHeap across every
/// block it emits, but operators that build output heaps per block (CASE
/// over different columns, computed string projections) do not — and a
/// buffering operator that keeps only the first block's heap would resolve
/// later blocks' tokens against the wrong heap (wrong strings, or reads
/// past the heap buffer). The unifier adopts the first heap it sees and,
/// on a pointer change, re-interns foreign tokens into an owned copy; the
/// common shared-heap path stays one pointer comparison per block.
class HeapUnifier {
 public:
  /// The unified heap every stored token of this column is valid against.
  const std::shared_ptr<const StringHeap>& heap() const { return heap_; }

  /// True when `src` is not the unified heap (its tokens need Translate).
  bool NeedsTranslation(const StringHeap* src) const {
    return src != nullptr && src != heap_.get();
  }

  /// Rewrites `col`'s lanes to unified-heap tokens and stamps the unified
  /// heap on the vector. Adopts the heap outright on first use.
  void UnifyBlock(ColumnVector* col);

 private:
  void Adopt(const std::shared_ptr<const StringHeap>& src);
  /// Clones the adopted heap into an owned, appendable copy (token offsets
  /// are byte positions, so a verbatim buffer copy preserves them all).
  void EnsureOwned();

  std::shared_ptr<const StringHeap> heap_;
  std::shared_ptr<StringHeap> owned_;
  /// Keyed by owning pointer, not raw address: per-block expression heaps
  /// die with their block, and a later heap allocated at a recycled
  /// address must not replay the dead heap's translations. Holding the
  /// owner also keeps every memoized source heap alive.
  std::map<std::shared_ptr<const StringHeap>,
           std::unordered_map<Lane, Lane>> memo_;
};

/// How a string sort key is compared (the dict-code sort of the tentpole).
enum class StringKeyMode {
  /// Sorted heap: token order is collation order, compare lanes as
  /// integers and skip the heap entirely.
  kRawTokens,
  /// Unsorted heap: tokens were translated through a per-heap token->rank
  /// cache (collation-sorted entries, collation-equal entries sharing one
  /// rank), so comparisons are again integer.
  kRanks,
  /// Fallback (dict_sort kill switch off, or no heap): CompareTokens per
  /// comparison.
  kCollate,
};

/// Builds the token->rank map of `heap`: entries sorted by collation,
/// collation-equal entries assigned equal ranks so rank comparison agrees
/// exactly with CompareTokens. O(D log D) in distinct entries, built once
/// per heap and reused for every key and block over it.
class StringRankCache {
 public:
  /// Rank of `token` under `heap`'s collation. Builds the heap's map on
  /// first use. The NULL sentinel passes through unchanged.
  Lane Rank(const std::shared_ptr<const StringHeap>& heap, Lane token);

 private:
  /// Owner-keyed for the same reason as HeapUnifier::memo_: a recycled
  /// heap address must never resolve against a dead heap's ranks.
  std::map<std::shared_ptr<const StringHeap>,
           std::unordered_map<Lane, Lane>> ranks_;
};

/// One prepared sort key over buffered columns. `lanes` points at the
/// comparison lanes (rank-translated for kRanks); cmp handling of NULL and
/// type dispatch lives in KeyCompare.
struct PreparedKey {
  size_t col = 0;  // column index in the operator's buffered schema
  bool ascending = true;
  TypeId type = TypeId::kInteger;
  StringKeyMode mode = StringKeyMode::kCollate;
  const StringHeap* heap = nullptr;  // kCollate only
};

/// Three-way comparison of two non-NULL comparison lanes under `key`'s
/// domain. Callers peel the NULL sentinel off first (NULL orders below
/// every value regardless of type).
inline int KeyCompare(const PreparedKey& key, Lane a, Lane b) {
  if (key.type == TypeId::kReal) {
    return CompareReals(std::bit_cast<double>(static_cast<uint64_t>(a)),
                        std::bit_cast<double>(static_cast<uint64_t>(b)));
  }
  if (key.type == TypeId::kString && key.mode == StringKeyMode::kCollate &&
      key.heap != nullptr) {
    return key.heap->CompareTokens(a, b);
  }
  return a < b ? -1 : (a > b ? 1 : 0);
}

/// Three-way comparison including the NULL rule, with the per-key
/// direction applied: returns <0 when row lane `a` orders before `b`.
inline int KeyCompareDirected(const PreparedKey& key, Lane a, Lane b) {
  int cmp;
  if (a == kNullSentinel || b == kNullSentinel) {
    cmp = a == b ? 0 : (a == kNullSentinel ? -1 : 1);
  } else {
    cmp = KeyCompare(key, a, b);
  }
  return key.ascending ? cmp : -cmp;
}

}  // namespace sortkeys
}  // namespace tde

#endif  // TDE_EXEC_SORT_KEYS_H_
