#include "src/exec/expression.h"

#include <algorithm>
#include <bit>
#include <cctype>

#include "src/common/collation.h"

namespace tde {
namespace expr {
namespace {

double AsReal(TypeId t, Lane v) {
  if (t == TypeId::kReal) return std::bit_cast<double>(static_cast<uint64_t>(v));
  return static_cast<double>(v);
}

Lane RealLane(double d) {
  return static_cast<Lane>(std::bit_cast<uint64_t>(d));
}

class ColumnExpr : public Expression {
 public:
  explicit ColumnExpr(std::string name) : name_(std::move(name)) {}

  Result<ColumnVector> Eval(const Block& block,
                            const Schema& schema) const override {
    TDE_ASSIGN_OR_RETURN(size_t i, schema.FieldIndex(name_));
    return block.columns[i];  // copy of lanes + shared dictionary context
  }
  Result<TypeId> ResultType(const Schema& schema) const override {
    TDE_ASSIGN_OR_RETURN(size_t i, schema.FieldIndex(name_));
    return schema.field(i).type;
  }
  std::string ToString() const override { return name_; }
  void CollectColumns(std::vector<std::string>* out) const override {
    out->push_back(name_);
  }
  const std::string* AsColumnRef() const override { return &name_; }

 private:
  std::string name_;
};

class LiteralExpr : public Expression {
 public:
  LiteralExpr(TypeId type, Lane value) : type_(type), value_(value) {}

  Result<ColumnVector> Eval(const Block& block, const Schema&) const override {
    ColumnVector out;
    out.type = type_;
    out.lanes.assign(block.rows(), value_);
    return out;
  }
  Result<TypeId> ResultType(const Schema&) const override { return type_; }
  std::string ToString() const override { return FormatLane(type_, value_); }
  void CollectColumns(std::vector<std::string>*) const override {}
  bool AsLiteral(TypeId* type, Lane* value) const override {
    *type = type_;
    *value = value_;
    return true;
  }

 private:
  TypeId type_;
  Lane value_;
};

class StringLiteralExpr : public Expression {
 public:
  explicit StringLiteralExpr(std::string v) {
    auto heap = std::make_shared<StringHeap>();
    token_ = heap->Add(v);
    heap_ = std::move(heap);
    text_ = std::move(v);
  }

  Result<ColumnVector> Eval(const Block& block, const Schema&) const override {
    ColumnVector out;
    out.type = TypeId::kString;
    out.lanes.assign(block.rows(), token_);
    out.heap = heap_;
    return out;
  }
  Result<TypeId> ResultType(const Schema&) const override {
    return TypeId::kString;
  }
  std::string ToString() const override { return "'" + text_ + "'"; }
  void CollectColumns(std::vector<std::string>*) const override {}
  const std::string* AsStringLiteral() const override { return &text_; }

 private:
  std::shared_ptr<const StringHeap> heap_;
  Lane token_ = 0;
  std::string text_;
};

class CompareExpr : public Expression {
 public:
  CompareExpr(CompareOp op, ExprPtr l, ExprPtr r)
      : op_(op), l_(std::move(l)), r_(std::move(r)) {}

  Result<ColumnVector> Eval(const Block& block,
                            const Schema& schema) const override {
    TDE_ASSIGN_OR_RETURN(ColumnVector lv, l_->Eval(block, schema));
    TDE_ASSIGN_OR_RETURN(ColumnVector rv, r_->Eval(block, schema));
    ColumnVector out;
    out.type = TypeId::kBool;
    const size_t n = block.rows();
    out.lanes.resize(n);
    const bool strings = lv.type == TypeId::kString;
    const bool same_sorted_heap =
        strings && lv.heap != nullptr && lv.heap == rv.heap && lv.heap->sorted();
    const bool reals = lv.type == TypeId::kReal || rv.type == TypeId::kReal;
    for (size_t i = 0; i < n; ++i) {
      const Lane a = lv.lanes[i];
      const Lane b = rv.lanes[i];
      if (a == kNullSentinel || b == kNullSentinel) {
        out.lanes[i] = 0;  // comparisons with NULL are false
        continue;
      }
      int cmp;
      if (strings) {
        if (same_sorted_heap) {
          cmp = a < b ? -1 : (a > b ? 1 : 0);
        } else {
          cmp = Collate(lv.heap != nullptr ? lv.heap->collation()
                                           : Collation::kLocale,
                        lv.heap->Get(a), rv.heap->Get(b));
        }
      } else if (reals) {
        cmp = CompareReals(AsReal(lv.type, a), AsReal(rv.type, b));
      } else {
        cmp = a < b ? -1 : (a > b ? 1 : 0);
      }
      bool v = false;
      switch (op_) {
        case CompareOp::kEq: v = cmp == 0; break;
        case CompareOp::kNe: v = cmp != 0; break;
        case CompareOp::kLt: v = cmp < 0; break;
        case CompareOp::kLe: v = cmp <= 0; break;
        case CompareOp::kGt: v = cmp > 0; break;
        case CompareOp::kGe: v = cmp >= 0; break;
      }
      out.lanes[i] = v ? 1 : 0;
    }
    return out;
  }
  Result<TypeId> ResultType(const Schema&) const override {
    return TypeId::kBool;
  }
  std::string ToString() const override {
    static const char* kOps[] = {"=", "<>", "<", "<=", ">", ">="};
    return "(" + l_->ToString() + " " + kOps[static_cast<int>(op_)] + " " +
           r_->ToString() + ")";
  }
  void CollectColumns(std::vector<std::string>* out) const override {
    l_->CollectColumns(out);
    r_->CollectColumns(out);
  }
  bool AsCompare(CompareOp* op) const override {
    *op = op_;
    return true;
  }
  std::vector<ExprPtr> Children() const override { return {l_, r_}; }
  ExprPtr WithChildren(std::vector<ExprPtr> c) const override {
    return std::make_shared<CompareExpr>(op_, std::move(c[0]), std::move(c[1]));
  }

 private:
  CompareOp op_;
  ExprPtr l_, r_;
};

class ArithExpr : public Expression {
 public:
  ArithExpr(ArithOp op, ExprPtr l, ExprPtr r)
      : op_(op), l_(std::move(l)), r_(std::move(r)) {}

  Result<ColumnVector> Eval(const Block& block,
                            const Schema& schema) const override {
    TDE_ASSIGN_OR_RETURN(ColumnVector lv, l_->Eval(block, schema));
    TDE_ASSIGN_OR_RETURN(ColumnVector rv, r_->Eval(block, schema));
    const bool real = lv.type == TypeId::kReal || rv.type == TypeId::kReal;
    ColumnVector out;
    out.type = real ? TypeId::kReal : TypeId::kInteger;
    const size_t n = block.rows();
    out.lanes.resize(n);
    for (size_t i = 0; i < n; ++i) {
      const Lane a = lv.lanes[i];
      const Lane b = rv.lanes[i];
      if (a == kNullSentinel || b == kNullSentinel) {
        out.lanes[i] = kNullSentinel;
        continue;
      }
      if (real) {
        const double da = AsReal(lv.type, a);
        const double db = AsReal(rv.type, b);
        double v = 0;
        switch (op_) {
          case ArithOp::kAdd: v = da + db; break;
          case ArithOp::kSub: v = da - db; break;
          case ArithOp::kMul: v = da * db; break;
          case ArithOp::kDiv:
            if (db == 0) {
              out.lanes[i] = kNullSentinel;
              continue;
            }
            v = da / db;
            break;
          case ArithOp::kMod:
            out.lanes[i] = kNullSentinel;
            continue;
        }
        out.lanes[i] = RealLane(v);
      } else {
        switch (op_) {
          case ArithOp::kAdd:
            out.lanes[i] = static_cast<Lane>(static_cast<uint64_t>(a) +
                                             static_cast<uint64_t>(b));
            break;
          case ArithOp::kSub:
            out.lanes[i] = static_cast<Lane>(static_cast<uint64_t>(a) -
                                             static_cast<uint64_t>(b));
            break;
          case ArithOp::kMul:
            out.lanes[i] = static_cast<Lane>(static_cast<uint64_t>(a) *
                                             static_cast<uint64_t>(b));
            break;
          case ArithOp::kDiv:
            out.lanes[i] = b == 0 ? kNullSentinel : a / b;
            break;
          case ArithOp::kMod:
            out.lanes[i] = b == 0 ? kNullSentinel : a % b;
            break;
        }
      }
    }
    return out;
  }
  Result<TypeId> ResultType(const Schema& schema) const override {
    TDE_ASSIGN_OR_RETURN(TypeId lt, l_->ResultType(schema));
    TDE_ASSIGN_OR_RETURN(TypeId rt, r_->ResultType(schema));
    return (lt == TypeId::kReal || rt == TypeId::kReal) ? TypeId::kReal
                                                        : TypeId::kInteger;
  }
  std::string ToString() const override {
    static const char* kOps[] = {"+", "-", "*", "/", "%"};
    return "(" + l_->ToString() + " " + kOps[static_cast<int>(op_)] + " " +
           r_->ToString() + ")";
  }
  void CollectColumns(std::vector<std::string>* out) const override {
    l_->CollectColumns(out);
    r_->CollectColumns(out);
  }
  std::vector<ExprPtr> Children() const override { return {l_, r_}; }
  ExprPtr WithChildren(std::vector<ExprPtr> c) const override {
    return std::make_shared<ArithExpr>(op_, std::move(c[0]), std::move(c[1]));
  }
  bool AsArith(ArithOp* op) const override {
    *op = op_;
    return true;
  }

 private:
  ArithOp op_;
  ExprPtr l_, r_;
};

class LogicalExpr : public Expression {
 public:
  LogicalExpr(bool is_and, ExprPtr l, ExprPtr r)
      : is_and_(is_and), l_(std::move(l)), r_(std::move(r)) {}

  Result<ColumnVector> Eval(const Block& block,
                            const Schema& schema) const override {
    TDE_ASSIGN_OR_RETURN(ColumnVector lv, l_->Eval(block, schema));
    TDE_ASSIGN_OR_RETURN(ColumnVector rv, r_->Eval(block, schema));
    ColumnVector out;
    out.type = TypeId::kBool;
    const size_t n = block.rows();
    out.lanes.resize(n);
    for (size_t i = 0; i < n; ++i) {
      const bool a = lv.lanes[i] == 1;
      const bool b = rv.lanes[i] == 1;
      out.lanes[i] = (is_and_ ? (a && b) : (a || b)) ? 1 : 0;
    }
    return out;
  }
  Result<TypeId> ResultType(const Schema&) const override {
    return TypeId::kBool;
  }
  std::string ToString() const override {
    return "(" + l_->ToString() + (is_and_ ? " AND " : " OR ") +
           r_->ToString() + ")";
  }
  void CollectColumns(std::vector<std::string>* out) const override {
    l_->CollectColumns(out);
    r_->CollectColumns(out);
  }
  ExprShape Shape() const override {
    return is_and_ ? ExprShape::kAnd : ExprShape::kOr;
  }
  std::vector<ExprPtr> Children() const override { return {l_, r_}; }
  ExprPtr WithChildren(std::vector<ExprPtr> c) const override {
    return std::make_shared<LogicalExpr>(is_and_, std::move(c[0]),
                                         std::move(c[1]));
  }
  bool is_and() const { return is_and_; }

 private:
  bool is_and_;
  ExprPtr l_, r_;
};

class NotExpr : public Expression {
 public:
  explicit NotExpr(ExprPtr e) : e_(std::move(e)) {}

  Result<ColumnVector> Eval(const Block& block,
                            const Schema& schema) const override {
    TDE_ASSIGN_OR_RETURN(ColumnVector v, e_->Eval(block, schema));
    for (Lane& x : v.lanes) x = (x == 1) ? 0 : 1;
    v.type = TypeId::kBool;
    return v;
  }
  Result<TypeId> ResultType(const Schema&) const override {
    return TypeId::kBool;
  }
  std::string ToString() const override { return "NOT " + e_->ToString(); }
  void CollectColumns(std::vector<std::string>* out) const override {
    e_->CollectColumns(out);
  }
  ExprShape Shape() const override { return ExprShape::kNot; }
  std::vector<ExprPtr> Children() const override { return {e_}; }
  ExprPtr WithChildren(std::vector<ExprPtr> c) const override {
    return std::make_shared<NotExpr>(std::move(c[0]));
  }
  const ExprPtr& child() const { return e_; }

 private:
  ExprPtr e_;
};

class IsNullExpr : public Expression {
 public:
  explicit IsNullExpr(ExprPtr e) : e_(std::move(e)) {}

  Result<ColumnVector> Eval(const Block& block,
                            const Schema& schema) const override {
    TDE_ASSIGN_OR_RETURN(ColumnVector v, e_->Eval(block, schema));
    ColumnVector out;
    out.type = TypeId::kBool;
    out.lanes.resize(v.lanes.size());
    for (size_t i = 0; i < v.lanes.size(); ++i) {
      out.lanes[i] = v.lanes[i] == kNullSentinel ? 1 : 0;
    }
    return out;
  }
  Result<TypeId> ResultType(const Schema&) const override {
    return TypeId::kBool;
  }
  std::string ToString() const override {
    return e_->ToString() + " IS NULL";
  }
  void CollectColumns(std::vector<std::string>* out) const override {
    e_->CollectColumns(out);
  }
  ExprShape Shape() const override { return ExprShape::kIsNull; }
  std::vector<ExprPtr> Children() const override { return {e_}; }
  ExprPtr WithChildren(std::vector<ExprPtr> c) const override {
    return std::make_shared<IsNullExpr>(std::move(c[0]));
  }

 private:
  ExprPtr e_;
};

class InExpr : public Expression {
 public:
  InExpr(ExprPtr input, std::vector<ExprPtr> values)
      : input_(std::move(input)), values_(std::move(values)) {}

  Result<ColumnVector> Eval(const Block& block,
                            const Schema& schema) const override {
    TDE_ASSIGN_OR_RETURN(ColumnVector in, input_->Eval(block, schema));
    std::vector<ColumnVector> vals;
    vals.reserve(values_.size());
    for (const ExprPtr& v : values_) {
      TDE_ASSIGN_OR_RETURN(ColumnVector cv, v->Eval(block, schema));
      vals.push_back(std::move(cv));
    }
    ColumnVector out;
    out.type = TypeId::kBool;
    const size_t n = block.rows();
    out.lanes.assign(n, 0);
    const bool strings = in.type == TypeId::kString;
    for (size_t i = 0; i < n; ++i) {
      const Lane a = in.lanes[i];
      if (a == kNullSentinel) continue;  // NULL never matches
      for (const ColumnVector& vv : vals) {
        const Lane b = vv.lanes[i];
        if (b == kNullSentinel) continue;
        bool eq;
        if (strings) {
          if (in.heap != nullptr && in.heap == vv.heap && in.heap->sorted()) {
            eq = a == b;
          } else {
            eq = Collate(in.heap != nullptr ? in.heap->collation()
                                            : Collation::kLocale,
                         in.heap->Get(a), vv.heap->Get(b)) == 0;
          }
        } else if (in.type == TypeId::kReal || vv.type == TypeId::kReal) {
          eq = CompareReals(AsReal(in.type, a), AsReal(vv.type, b)) == 0;
        } else {
          eq = a == b;
        }
        if (eq) {
          out.lanes[i] = 1;
          break;
        }
      }
    }
    return out;
  }
  Result<TypeId> ResultType(const Schema&) const override {
    return TypeId::kBool;
  }
  std::string ToString() const override {
    std::string s = "(" + input_->ToString() + " IN (";
    for (size_t i = 0; i < values_.size(); ++i) {
      if (i > 0) s += ", ";
      s += values_[i]->ToString();
    }
    return s + "))";
  }
  void CollectColumns(std::vector<std::string>* out) const override {
    input_->CollectColumns(out);
    for (const ExprPtr& v : values_) v->CollectColumns(out);
  }
  ExprShape Shape() const override { return ExprShape::kIn; }
  std::vector<ExprPtr> Children() const override {
    std::vector<ExprPtr> kids = {input_};
    kids.insert(kids.end(), values_.begin(), values_.end());
    return kids;
  }
  ExprPtr WithChildren(std::vector<ExprPtr> c) const override {
    ExprPtr input = std::move(c[0]);
    c.erase(c.begin());
    return std::make_shared<InExpr>(std::move(input), std::move(c));
  }

 private:
  ExprPtr input_;
  std::vector<ExprPtr> values_;
};

class LikeExpr : public Expression {
 public:
  LikeExpr(ExprPtr input, std::string pattern)
      : input_(std::move(input)), pattern_(std::move(pattern)) {}

  static size_t CodePointLen(unsigned char lead) {
    if (lead < 0x80) return 1;
    if ((lead >> 5) == 0x6) return 2;
    if ((lead >> 4) == 0xe) return 3;
    if ((lead >> 3) == 0x1e) return 4;
    return 1;  // stray continuation byte: treat as one character
  }

  /// Classic two-pointer glob matcher ('%' = any run of code points,
  /// '_' = exactly one code point). Wildcards count UTF-8 code points, not
  /// bytes; literals compare byte-wise with ASCII case folding, which
  /// matches multi-byte code points exactly (continuation bytes are
  /// fold-invariant).
  static bool Match(std::string_view s, std::string_view p, bool fold_case) {
    auto eq = [fold_case](char a, char b) {
      if (!fold_case) return a == b;
      return std::tolower(static_cast<unsigned char>(a)) ==
             std::tolower(static_cast<unsigned char>(b));
    };
    size_t si = 0, pi = 0;
    size_t star_p = std::string_view::npos, star_s = 0;
    while (si < s.size()) {
      if (pi < p.size() && p[pi] == '%') {
        star_p = pi++;
        star_s = si;
      } else if (pi < p.size() && p[pi] == '_') {
        si += CodePointLen(static_cast<unsigned char>(s[si]));
        ++pi;
      } else if (pi < p.size() && eq(p[pi], s[si])) {
        ++si;
        ++pi;
      } else if (star_p != std::string_view::npos) {
        pi = star_p + 1;
        star_s += CodePointLen(static_cast<unsigned char>(s[star_s]));
        si = star_s;
      } else {
        return false;
      }
    }
    while (pi < p.size() && p[pi] == '%') ++pi;
    return pi == p.size();
  }

  Result<ColumnVector> Eval(const Block& block,
                            const Schema& schema) const override {
    TDE_ASSIGN_OR_RETURN(ColumnVector v, input_->Eval(block, schema));
    if (v.type != TypeId::kString || v.heap == nullptr) {
      return {Status::InvalidArgument("LIKE over non-string input")};
    }
    const bool fold = v.heap->collation() == Collation::kLocale;
    ColumnVector out;
    out.type = TypeId::kBool;
    out.lanes.resize(v.lanes.size());
    for (size_t i = 0; i < v.lanes.size(); ++i) {
      out.lanes[i] =
          v.lanes[i] != kNullSentinel &&
                  Match(v.heap->Get(v.lanes[i]), pattern_, fold)
              ? 1
              : 0;
    }
    return out;
  }
  Result<TypeId> ResultType(const Schema&) const override {
    return TypeId::kBool;
  }
  std::string ToString() const override {
    return "(" + input_->ToString() + " LIKE '" + pattern_ + "')";
  }
  void CollectColumns(std::vector<std::string>* out) const override {
    input_->CollectColumns(out);
  }
  std::vector<ExprPtr> Children() const override { return {input_}; }
  ExprPtr WithChildren(std::vector<ExprPtr> c) const override {
    return std::make_shared<LikeExpr>(std::move(c[0]), pattern_);
  }
  const std::string* AsLikePattern() const override { return &pattern_; }

 private:
  ExprPtr input_;
  std::string pattern_;
};

class CaseExpr : public Expression {
 public:
  CaseExpr(std::vector<CaseBranch> branches, ExprPtr otherwise)
      : branches_(std::move(branches)), otherwise_(std::move(otherwise)) {}

  Result<ColumnVector> Eval(const Block& block,
                            const Schema& schema) const override {
    std::vector<ColumnVector> conds, vals;
    for (const CaseBranch& b : branches_) {
      TDE_ASSIGN_OR_RETURN(ColumnVector c, b.condition->Eval(block, schema));
      TDE_ASSIGN_OR_RETURN(ColumnVector v, b.value->Eval(block, schema));
      conds.push_back(std::move(c));
      vals.push_back(std::move(v));
    }
    ColumnVector other;
    if (otherwise_ != nullptr) {
      TDE_ASSIGN_OR_RETURN(other, otherwise_->Eval(block, schema));
    }
    ColumnVector out;
    TDE_ASSIGN_OR_RETURN(TypeId t, ResultType(schema));
    out.type = t;
    const size_t n = block.rows();
    out.lanes.assign(n, kNullSentinel);
    // String branches may carry tokens into *different* heaps (each string
    // literal owns its own), so the selected lane cannot be copied as-is
    // under a single output heap: resolve it to text and re-add it into a
    // merged heap. Fast path: every string source already shares one heap.
    bool same_heap = true;
    const StringHeap* first_heap =
        !vals.empty() ? vals[0].heap.get() : nullptr;
    for (const ColumnVector& v : vals) {
      same_heap = same_heap && v.heap.get() == first_heap;
    }
    if (otherwise_ != nullptr) {
      same_heap = same_heap && other.heap.get() == first_heap;
    }
    std::shared_ptr<StringHeap> merged;
    if (t == TypeId::kString && !same_heap) {
      merged = std::make_shared<StringHeap>(
          first_heap != nullptr ? first_heap->collation()
                                : Collation::kLocale);
    }
    auto emit = [&](size_t i, const ColumnVector& src) {
      const Lane lane = src.lanes[i];
      if (merged == nullptr || lane == kNullSentinel ||
          src.heap == nullptr) {
        out.lanes[i] = lane;
        return;
      }
      out.lanes[i] = merged->Add(src.heap->Get(lane));
    };
    for (size_t i = 0; i < n; ++i) {
      bool taken = false;
      for (size_t b = 0; b < branches_.size(); ++b) {
        if (conds[b].lanes[i] == 1) {
          emit(i, vals[b]);
          taken = true;
          break;
        }
      }
      if (!taken && otherwise_ != nullptr) emit(i, other);
    }
    if (merged != nullptr) {
      out.heap = std::move(merged);
    } else if (!vals.empty() && vals[0].heap != nullptr) {
      out.heap = vals[0].heap;
    }
    return out;
  }
  Result<TypeId> ResultType(const Schema& schema) const override {
    return branches_[0].value->ResultType(schema);
  }
  std::string ToString() const override {
    std::string s = "CASE";
    for (const CaseBranch& b : branches_) {
      s += " WHEN " + b.condition->ToString() + " THEN " +
           b.value->ToString();
    }
    if (otherwise_ != nullptr) s += " ELSE " + otherwise_->ToString();
    return s + " END";
  }
  void CollectColumns(std::vector<std::string>* out) const override {
    for (const CaseBranch& b : branches_) {
      b.condition->CollectColumns(out);
      b.value->CollectColumns(out);
    }
    if (otherwise_ != nullptr) otherwise_->CollectColumns(out);
  }
  std::vector<ExprPtr> Children() const override {
    std::vector<ExprPtr> kids;
    for (const CaseBranch& b : branches_) {
      kids.push_back(b.condition);
      kids.push_back(b.value);
    }
    if (otherwise_ != nullptr) kids.push_back(otherwise_);
    return kids;
  }
  ExprPtr WithChildren(std::vector<ExprPtr> c) const override {
    std::vector<CaseBranch> branches(branches_.size());
    for (size_t b = 0; b < branches.size(); ++b) {
      branches[b] = {std::move(c[2 * b]), std::move(c[2 * b + 1])};
    }
    ExprPtr otherwise =
        otherwise_ != nullptr ? std::move(c.back()) : nullptr;
    return std::make_shared<CaseExpr>(std::move(branches),
                                      std::move(otherwise));
  }
  bool AsCase(size_t* branches, bool* has_else) const override {
    *branches = branches_.size();
    *has_else = otherwise_ != nullptr;
    return true;
  }

 private:
  std::vector<CaseBranch> branches_;
  ExprPtr otherwise_;
};

class DateFuncExpr : public Expression {
 public:
  DateFuncExpr(DateFunc f, ExprPtr e) : f_(f), e_(std::move(e)) {}

  Result<ColumnVector> Eval(const Block& block,
                            const Schema& schema) const override {
    TDE_ASSIGN_OR_RETURN(ColumnVector v, e_->Eval(block, schema));
    ColumnVector out;
    out.type = (f_ == DateFunc::kTruncMonth || f_ == DateFunc::kTruncYear)
                   ? TypeId::kDate
                   : TypeId::kInteger;
    out.lanes.resize(v.lanes.size());
    for (size_t i = 0; i < v.lanes.size(); ++i) {
      const Lane d = v.lanes[i];
      if (d == kNullSentinel) {
        out.lanes[i] = kNullSentinel;
        continue;
      }
      switch (f_) {
        case DateFunc::kYear: out.lanes[i] = DateYear(d); break;
        case DateFunc::kMonth: out.lanes[i] = DateMonth(d); break;
        case DateFunc::kDay: out.lanes[i] = DateDay(d); break;
        case DateFunc::kTruncMonth: out.lanes[i] = TruncateToMonth(d); break;
        case DateFunc::kTruncYear: out.lanes[i] = TruncateToYear(d); break;
      }
    }
    return out;
  }
  Result<TypeId> ResultType(const Schema&) const override {
    return (f_ == DateFunc::kTruncMonth || f_ == DateFunc::kTruncYear)
               ? TypeId::kDate
               : TypeId::kInteger;
  }
  std::string ToString() const override {
    static const char* kNames[] = {"YEAR", "MONTH", "DAY", "TRUNC_MONTH",
                                   "TRUNC_YEAR"};
    return std::string(kNames[static_cast<int>(f_)]) + "(" + e_->ToString() +
           ")";
  }
  void CollectColumns(std::vector<std::string>* out) const override {
    e_->CollectColumns(out);
  }
  std::vector<ExprPtr> Children() const override { return {e_}; }
  ExprPtr WithChildren(std::vector<ExprPtr> c) const override {
    return std::make_shared<DateFuncExpr>(f_, std::move(c[0]));
  }
  bool AsDateFunc(DateFunc* f) const override {
    *f = f_;
    return true;
  }

 private:
  DateFunc f_;
  ExprPtr e_;
};

class StrFuncExpr : public Expression {
 public:
  StrFuncExpr(StrFunc f, ExprPtr e) : f_(f), e_(std::move(e)) {}

  Result<ColumnVector> Eval(const Block& block,
                            const Schema& schema) const override {
    TDE_ASSIGN_OR_RETURN(ColumnVector v, e_->Eval(block, schema));
    if (v.type != TypeId::kString || v.heap == nullptr) {
      return {Status::InvalidArgument("string function over non-string input")};
    }
    ColumnVector out;
    if (f_ == StrFunc::kLength) {
      out.type = TypeId::kInteger;
      out.lanes.resize(v.lanes.size());
      for (size_t i = 0; i < v.lanes.size(); ++i) {
        out.lanes[i] = v.lanes[i] == kNullSentinel
                           ? kNullSentinel
                           : static_cast<Lane>(v.heap->Get(v.lanes[i]).size());
      }
      return out;
    }
    // String producers: the string function library cannot estimate the
    // result domain ahead of time (Sect. 4.1.2), so the output is a fresh
    // heap with wide tokens; FlowTable later sorts and minimizes it.
    auto heap = std::make_shared<StringHeap>(v.heap->collation());
    out.type = TypeId::kString;
    out.lanes.resize(v.lanes.size());
    std::string tmp;
    for (size_t i = 0; i < v.lanes.size(); ++i) {
      if (v.lanes[i] == kNullSentinel) {
        out.lanes[i] = kNullSentinel;
        continue;
      }
      const std::string_view s = v.heap->Get(v.lanes[i]);
      tmp.assign(s);
      switch (f_) {
        case StrFunc::kUpper:
          std::transform(tmp.begin(), tmp.end(), tmp.begin(), [](char c) {
            return static_cast<char>(
                std::toupper(static_cast<unsigned char>(c)));
          });
          break;
        case StrFunc::kLower:
          std::transform(tmp.begin(), tmp.end(), tmp.begin(), [](char c) {
            return static_cast<char>(
                std::tolower(static_cast<unsigned char>(c)));
          });
          break;
        case StrFunc::kExtension: {
          const size_t dot = tmp.rfind('.');
          const size_t slash = tmp.rfind('/');
          if (dot == std::string::npos ||
              (slash != std::string::npos && dot < slash)) {
            tmp.clear();
          } else {
            tmp = tmp.substr(dot + 1);
            // Strip any query string.
            const size_t q = tmp.find('?');
            if (q != std::string::npos) tmp.resize(q);
          }
          break;
        }
        case StrFunc::kLength:
          break;  // handled above
      }
      out.lanes[i] = heap->Add(tmp);
    }
    out.heap = std::move(heap);
    return out;
  }
  Result<TypeId> ResultType(const Schema&) const override {
    return f_ == StrFunc::kLength ? TypeId::kInteger : TypeId::kString;
  }
  std::string ToString() const override {
    static const char* kNames[] = {"UPPER", "LOWER", "LENGTH", "EXTENSION"};
    return std::string(kNames[static_cast<int>(f_)]) + "(" + e_->ToString() +
           ")";
  }
  void CollectColumns(std::vector<std::string>* out) const override {
    e_->CollectColumns(out);
  }
  std::vector<ExprPtr> Children() const override { return {e_}; }
  ExprPtr WithChildren(std::vector<ExprPtr> c) const override {
    return std::make_shared<StrFuncExpr>(f_, std::move(c[0]));
  }
  bool AsStrFunc(StrFunc* f) const override {
    *f = f_;
    return true;
  }

 private:
  StrFunc f_;
  ExprPtr e_;
};

}  // namespace

ExprPtr Col(std::string name) {
  return std::make_shared<ColumnExpr>(std::move(name));
}
ExprPtr Int(int64_t v) {
  return std::make_shared<LiteralExpr>(TypeId::kInteger, v);
}
ExprPtr Real(double v) {
  return std::make_shared<LiteralExpr>(TypeId::kReal, RealLane(v));
}
ExprPtr Bool(bool v) {
  return std::make_shared<LiteralExpr>(TypeId::kBool, v ? 1 : 0);
}
ExprPtr Str(std::string v) {
  return std::make_shared<StringLiteralExpr>(std::move(v));
}
ExprPtr Date(int year, unsigned month, unsigned day) {
  return std::make_shared<LiteralExpr>(TypeId::kDate,
                                       DaysFromCivil(year, month, day));
}
ExprPtr Null(TypeId type) {
  return std::make_shared<LiteralExpr>(type, kNullSentinel);
}
ExprPtr Cmp(CompareOp op, ExprPtr l, ExprPtr r) {
  return std::make_shared<CompareExpr>(op, std::move(l), std::move(r));
}
ExprPtr Arith(ArithOp op, ExprPtr l, ExprPtr r) {
  return std::make_shared<ArithExpr>(op, std::move(l), std::move(r));
}
ExprPtr And(ExprPtr l, ExprPtr r) {
  return std::make_shared<LogicalExpr>(true, std::move(l), std::move(r));
}
ExprPtr Or(ExprPtr l, ExprPtr r) {
  return std::make_shared<LogicalExpr>(false, std::move(l), std::move(r));
}
ExprPtr Not(ExprPtr e) { return std::make_shared<NotExpr>(std::move(e)); }
ExprPtr IsNull(ExprPtr e) { return std::make_shared<IsNullExpr>(std::move(e)); }
ExprPtr In(ExprPtr input, std::vector<ExprPtr> values) {
  return std::make_shared<InExpr>(std::move(input), std::move(values));
}
ExprPtr Like(ExprPtr input, std::string pattern) {
  return std::make_shared<LikeExpr>(std::move(input), std::move(pattern));
}
ExprPtr Case(std::vector<CaseBranch> branches, ExprPtr otherwise) {
  return std::make_shared<CaseExpr>(std::move(branches),
                                    std::move(otherwise));
}
ExprPtr DateF(DateFunc f, ExprPtr e) {
  return std::make_shared<DateFuncExpr>(f, std::move(e));
}
ExprPtr StrF(StrFunc f, ExprPtr e) {
  return std::make_shared<StrFuncExpr>(f, std::move(e));
}

namespace {

/// Evaluates a column-free scalar subtree down to a literal, if possible.
ExprPtr TryFoldConstant(const ExprPtr& e) {
  TypeId t;
  Lane v;
  if (e->AsLiteral(&t, &v)) return nullptr;  // already minimal
  std::vector<std::string> cols;
  e->CollectColumns(&cols);
  if (!cols.empty()) return nullptr;
  Schema dummy_schema;
  dummy_schema.AddField({"$fold", TypeId::kInteger});
  auto rt = e->ResultType(dummy_schema);
  if (!rt.ok() || rt.value() == TypeId::kString) return nullptr;
  Block b;
  b.columns.resize(1);
  b.columns[0].type = TypeId::kInteger;
  b.columns[0].lanes = {0};
  auto r = e->Eval(b, dummy_schema);
  if (!r.ok() || r.value().lanes.size() != 1) return nullptr;
  return std::make_shared<LiteralExpr>(rt.value(), r.value().lanes[0]);
}

bool IsBoolLiteral(const ExprPtr& e, bool* value) {
  TypeId t;
  Lane v;
  if (!e->AsLiteral(&t, &v) || t != TypeId::kBool) return false;
  *value = v == 1;
  return true;
}

}  // namespace

ExprPtr Simplify(const ExprPtr& e) {
  // Bottom-up: simplify children, rebuild if any changed.
  ExprPtr cur = e;
  std::vector<ExprPtr> kids = e->Children();
  if (!kids.empty()) {
    bool changed = false;
    for (ExprPtr& k : kids) {
      ExprPtr s = Simplify(k);
      changed = changed || s.get() != k.get();
      k = std::move(s);
    }
    if (changed) {
      if (ExprPtr rebuilt = e->WithChildren(std::move(kids))) {
        cur = std::move(rebuilt);
      }
    }
    kids = cur->Children();
  }
  // Constant folding.
  if (ExprPtr folded = TryFoldConstant(cur)) return folded;
  // Boolean identities.
  if (const auto* lg = dynamic_cast<const LogicalExpr*>(cur.get())) {
    bool lv, rv;
    const bool l_lit = IsBoolLiteral(kids[0], &lv);
    const bool r_lit = IsBoolLiteral(kids[1], &rv);
    if (lg->is_and()) {
      if (l_lit) return lv ? kids[1] : Bool(false);
      if (r_lit) return rv ? kids[0] : Bool(false);
    } else {
      if (l_lit) return lv ? Bool(true) : kids[1];
      if (r_lit) return rv ? Bool(true) : kids[0];
    }
  }
  if (const auto* nt = dynamic_cast<const NotExpr*>(cur.get())) {
    if (const auto* inner = dynamic_cast<const NotExpr*>(nt->child().get())) {
      return inner->child();
    }
  }
  return cur;
}

ExprPtr RenameColumns(const ExprPtr& e,
                      const std::map<std::string, std::string>& rename) {
  if (const std::string* name = e->AsColumnRef()) {
    const auto it = rename.find(*name);
    return it == rename.end() ? e : Col(it->second);
  }
  std::vector<ExprPtr> kids = e->Children();
  if (kids.empty()) return e;
  bool changed = false;
  for (ExprPtr& k : kids) {
    ExprPtr s = RenameColumns(k, rename);
    changed = changed || s.get() != k.get();
    k = std::move(s);
  }
  if (!changed) return e;
  ExprPtr rebuilt = e->WithChildren(std::move(kids));
  return rebuilt != nullptr ? rebuilt : e;
}

}  // namespace expr
}  // namespace tde
