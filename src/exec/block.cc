#include "src/exec/block.h"

namespace tde {

void Block::Compact(const std::vector<char>& keep) {
  for (auto& col : columns) {
    size_t out = 0;
    for (size_t i = 0; i < col.lanes.size(); ++i) {
      if (keep[i]) col.lanes[out++] = col.lanes[i];
    }
    col.lanes.resize(out);
  }
}

Status DrainOperator(Operator* op, std::vector<Block>* out) {
  TDE_RETURN_NOT_OK(op->Open());
  while (true) {
    Block b;
    bool eos = false;
    TDE_RETURN_NOT_OK(op->Next(&b, &eos));
    if (eos) break;
    if (b.rows() > 0) out->push_back(std::move(b));
  }
  op->Close();
  return Status::OK();
}

}  // namespace tde
