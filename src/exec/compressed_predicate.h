#ifndef TDE_EXEC_COMPRESSED_PREDICATE_H_
#define TDE_EXEC_COMPRESSED_PREDICATE_H_

#include "src/exec/expression.h"

namespace tde {
namespace expr {

/// Dictionary-code predicate rewrite (the compressed-domain evaluation the
/// paper's Sect. 4.1 invisible join approximates for full table rewrites,
/// applied here to any filter): every maximal boolean subtree of `pred`
/// that reads exactly one string column is wrapped in a predicate that
/// translates it ONCE per distinct heap — by evaluating the original
/// subtree over the heap's token domain plus the NULL sentinel — into a
/// contiguous token range (sorted heaps turn equality/range predicates
/// into one interval) or a token set. Rows are then filtered with one
/// integer comparison or hash probe per lane: no heap lookups, no
/// collation calls.
///
/// The wrapper is behavior-preserving by construction: the translation is
/// the original predicate's truth table over the column's domain, so any
/// row-local boolean expression (=, <>, range, IN, LIKE, IS NULL, NOT and
/// combinations) is eligible. Blocks whose column carries no heap fall
/// back to the original expression.
///
/// Returns the rewritten predicate (or `pred` unchanged) and adds the
/// number of wrapped subtrees to *rewrites.
ExprPtr RewriteDictPredicates(const ExprPtr& pred, const Schema& schema,
                              int* rewrites);

/// True iff `e` is a dictionary-code wrapper produced by
/// RewriteDictPredicates (tests / EXPLAIN inspection).
bool IsDictCodePredicate(const ExprPtr& e);

}  // namespace expr
}  // namespace tde

#endif  // TDE_EXEC_COMPRESSED_PREDICATE_H_
