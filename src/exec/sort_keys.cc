#include "src/exec/sort_keys.h"

#include <algorithm>
#include <utility>

namespace tde {
namespace sortkeys {

void HeapUnifier::Adopt(const std::shared_ptr<const StringHeap>& src) {
  heap_ = src;
  owned_.reset();
}

void HeapUnifier::EnsureOwned() {
  if (owned_ != nullptr) return;
  if (heap_ == nullptr) {
    owned_ = std::make_shared<StringHeap>();
  } else {
    owned_ = std::make_shared<StringHeap>(StringHeap::FromParts(
        heap_->buffer(), heap_->entry_count(), heap_->sorted(),
        heap_->collation()));
  }
  heap_ = owned_;
}

void HeapUnifier::UnifyBlock(ColumnVector* col) {
  if (heap_ == nullptr) {
    Adopt(col->heap);
    return;
  }
  if (col->heap.get() == heap_.get() || col->heap == nullptr) {
    col->heap = heap_;
    return;
  }
  EnsureOwned();
  const std::shared_ptr<const StringHeap> src = col->heap;
  auto& memo = memo_[src];
  for (Lane& lane : col->lanes) {
    if (lane == kNullSentinel) continue;
    auto it = memo.find(lane);
    if (it != memo.end()) {
      lane = it->second;
      continue;
    }
    const Lane mapped = owned_->Add(src->Get(lane));
    owned_->set_sorted(false);
    memo.emplace(lane, mapped);
    lane = mapped;
  }
  col->heap = heap_;
}

Lane StringRankCache::Rank(const std::shared_ptr<const StringHeap>& heap,
                           Lane token) {
  if (token == kNullSentinel) return token;
  auto it = ranks_.find(heap);
  if (it == ranks_.end()) {
    std::vector<Lane> tokens = heap->AllTokens();
    std::stable_sort(tokens.begin(), tokens.end(), [&](Lane a, Lane b) {
      return Collate(heap->collation(), heap->Get(a), heap->Get(b)) < 0;
    });
    std::unordered_map<Lane, Lane> map;
    map.reserve(tokens.size());
    Lane rank = 0;
    for (size_t i = 0; i < tokens.size(); ++i) {
      // Collation-equal entries share a rank so rank comparison returns 0
      // exactly when CompareTokens would.
      if (i > 0 && Collate(heap->collation(), heap->Get(tokens[i - 1]),
                           heap->Get(tokens[i])) != 0) {
        ++rank;
      }
      map[tokens[i]] = rank;
    }
    it = ranks_.emplace(heap, std::move(map)).first;
  }
  const auto entry = it->second.find(token);
  // Tokens always come from the mapped heap; fall back to the sentinel-free
  // token itself if a caller hands us a foreign one.
  return entry != it->second.end() ? entry->second : token;
}

}  // namespace sortkeys
}  // namespace tde
