#include "src/exec/hash_aggregate.h"

#include <algorithm>
#include <bit>

namespace tde {

namespace agg_internal {

namespace {
double AsReal(Lane v) { return std::bit_cast<double>(static_cast<uint64_t>(v)); }
Lane RealLane(double d) { return static_cast<Lane>(std::bit_cast<uint64_t>(d)); }
}  // namespace

void Update(AggKind kind, TypeId type, Lane v, AggState* s) {
  if (kind == AggKind::kCountStar) {
    ++s->n;
    return;
  }
  if (v == kNullSentinel) return;  // aggregates ignore NULL inputs
  switch (kind) {
    case AggKind::kCountStar:
      break;
    case AggKind::kCount:
      ++s->n;
      break;
    case AggKind::kSum:
      if (type == TypeId::kReal) {
        s->d += AsReal(v);
      } else {
        s->i += v;
      }
      ++s->n;
      break;
    case AggKind::kMin:
      if (!s->seen ||
          (type == TypeId::kReal ? AsReal(v) < AsReal(s->i) : v < s->i)) {
        s->i = v;
      }
      s->seen = true;
      break;
    case AggKind::kMax:
      if (!s->seen ||
          (type == TypeId::kReal ? AsReal(v) > AsReal(s->i) : v > s->i)) {
        s->i = v;
      }
      s->seen = true;
      break;
    case AggKind::kAvg:
      s->d += type == TypeId::kReal ? AsReal(v) : static_cast<double>(v);
      ++s->n;
      break;
    case AggKind::kCountDistinct:
      s->distinct.insert(v);
      break;
    case AggKind::kMedian:
      s->values.push_back(v);
      break;
  }
}

Lane Finalize(AggKind kind, TypeId type, AggState* s) {
  switch (kind) {
    case AggKind::kCountStar:
    case AggKind::kCount:
      return static_cast<Lane>(s->n);
    case AggKind::kSum:
      if (s->n == 0) return kNullSentinel;
      return type == TypeId::kReal ? RealLane(s->d) : s->i;
    case AggKind::kMin:
    case AggKind::kMax:
      return s->seen ? s->i : kNullSentinel;
    case AggKind::kAvg:
      return s->n == 0 ? kNullSentinel : RealLane(s->d / static_cast<double>(s->n));
    case AggKind::kCountDistinct:
      return static_cast<Lane>(s->distinct.size());
    case AggKind::kMedian: {
      if (s->values.empty()) return kNullSentinel;
      const size_t mid = (s->values.size() - 1) / 2;
      if (type == TypeId::kReal) {
        std::nth_element(s->values.begin(), s->values.begin() + mid,
                         s->values.end(), [](Lane a, Lane b) {
                           return AsReal(a) < AsReal(b);
                         });
      } else {
        std::nth_element(s->values.begin(), s->values.begin() + mid,
                         s->values.end());
      }
      return s->values[mid];
    }
  }
  return kNullSentinel;
}

TypeId OutputType(AggKind kind, TypeId input_type) {
  switch (kind) {
    case AggKind::kCountStar:
    case AggKind::kCount:
    case AggKind::kCountDistinct:
      return TypeId::kInteger;
    case AggKind::kAvg:
      return TypeId::kReal;
    case AggKind::kSum:
      return input_type == TypeId::kReal ? TypeId::kReal : TypeId::kInteger;
    case AggKind::kMin:
    case AggKind::kMax:
    case AggKind::kMedian:
      return input_type;
  }
  return TypeId::kInteger;
}

}  // namespace agg_internal

HashAggregate::HashAggregate(std::unique_ptr<Operator> child,
                             AggregateOptions options)
    : child_(std::move(child)), options_(std::move(options)) {}

Status HashAggregate::BuildSchema() {
  schema_ = Schema();
  const Schema& in = child_->output_schema();
  key_types_.clear();
  agg_types_.clear();
  for (const std::string& k : options_.group_by) {
    TDE_ASSIGN_OR_RETURN(size_t i, in.FieldIndex(k));
    key_types_.push_back(in.field(i).type);
    schema_.AddField({k, in.field(i).type});
  }
  for (const AggSpec& a : options_.aggs) {
    TypeId input_type = TypeId::kInteger;
    if (a.kind != AggKind::kCountStar) {
      TDE_ASSIGN_OR_RETURN(size_t i, in.FieldIndex(a.input));
      input_type = in.field(i).type;
    }
    const TypeId out = agg_internal::OutputType(a.kind, input_type);
    agg_types_.push_back(input_type);
    schema_.AddField({a.output, out});
  }
  return Status::OK();
}

Status HashAggregate::Open() {
  TDE_RETURN_NOT_OK(child_->Open());
  TDE_RETURN_NOT_OK(BuildSchema());
  const Schema& in = child_->output_schema();

  std::vector<size_t> key_idx;
  for (const std::string& k : options_.group_by) {
    TDE_ASSIGN_OR_RETURN(size_t i, in.FieldIndex(k));
    key_idx.push_back(i);
  }
  std::vector<size_t> agg_idx;
  for (const AggSpec& a : options_.aggs) {
    size_t i = 0;
    if (a.kind != AggKind::kCountStar) {
      TDE_ASSIGN_OR_RETURN(i, in.FieldIndex(a.input));
    }
    agg_idx.push_back(i);
  }

  const size_t nkeys = key_idx.size();
  const size_t naggs = agg_idx.size();
  out_keys_.assign(nkeys, {});
  out_aggs_.assign(naggs, {});
  key_heaps_.assign(nkeys, nullptr);
  agg_heaps_.assign(naggs, nullptr);

  // Tactical single-key path: GroupMap with the hinted algorithm.
  std::unique_ptr<GroupMap> single;
  algorithm_used_ = options_.hash_algorithm.value_or(HashAlgorithm::kCollision);
  if (nkeys == 1) {
    single = std::make_unique<GroupMap>(algorithm_used_, options_.key_min,
                                        options_.key_max);
  }
  // Multi-key path: open-addressed map over mixed hashes of the tuple.
  std::vector<uint64_t> mk_slots;   // group id + 1, 0 = empty
  uint64_t mk_mask = 0;
  if (nkeys > 1) {
    mk_slots.assign(1u << 12, 0);
    mk_mask = mk_slots.size() - 1;
    algorithm_used_ = HashAlgorithm::kCollision;
  }

  // One state per (group, aggregate) pair, stride naggs.
  uint64_t ngroups = nkeys == 0 ? 1 : 0;
  std::vector<AggState> states(ngroups * naggs);

  while (true) {
    Block b;
    bool eos = false;
    TDE_RETURN_NOT_OK(child_->Next(&b, &eos));
    if (eos) break;
    const size_t n = b.rows();
    for (size_t k = 0; k < nkeys; ++k) {
      if (key_heaps_[k] == nullptr) key_heaps_[k] = b.columns[key_idx[k]].heap;
    }
    for (size_t a = 0; a < naggs; ++a) {
      if (agg_heaps_[a] == nullptr &&
          options_.aggs[a].kind != AggKind::kCountStar) {
        agg_heaps_[a] = b.columns[agg_idx[a]].heap;
      }
    }
    for (size_t r = 0; r < n; ++r) {
      uint32_t g;
      if (nkeys == 0) {
        g = 0;
      } else if (nkeys == 1) {
        g = single->GetOrInsert(b.columns[key_idx[0]].lanes[r]);
        if (g >= ngroups) {
          ngroups = g + 1;
          states.resize(ngroups * naggs);
          out_keys_[0].push_back(b.columns[key_idx[0]].lanes[r]);
        }
      } else {
        uint64_t h = 0xcbf29ce484222325ULL;
        for (size_t k = 0; k < nkeys; ++k) {
          h = Mix64(h ^ static_cast<uint64_t>(b.columns[key_idx[k]].lanes[r]));
        }
        uint64_t idx = h & mk_mask;
        while (true) {
          if (mk_slots[idx] == 0) {
            // New group.
            g = static_cast<uint32_t>(ngroups);
            mk_slots[idx] = g + 1;
            ++ngroups;
            states.resize(ngroups * naggs);
            for (size_t k = 0; k < nkeys; ++k) {
              out_keys_[k].push_back(b.columns[key_idx[k]].lanes[r]);
            }
            // Grow when half full.
            if (ngroups * 2 > mk_slots.size()) {
              std::vector<uint64_t> old = std::move(mk_slots);
              mk_slots.assign(old.size() * 2, 0);
              mk_mask = mk_slots.size() - 1;
              for (uint64_t gid = 0; gid < ngroups; ++gid) {
                uint64_t h2 = 0xcbf29ce484222325ULL;
                for (size_t k = 0; k < nkeys; ++k) {
                  h2 = Mix64(h2 ^ static_cast<uint64_t>(out_keys_[k][gid]));
                }
                uint64_t i2 = h2 & mk_mask;
                while (mk_slots[i2] != 0) i2 = (i2 + 1) & mk_mask;
                mk_slots[i2] = gid + 1;
              }
            }
            break;
          }
          const uint32_t cand = static_cast<uint32_t>(mk_slots[idx] - 1);
          bool same = true;
          for (size_t k = 0; k < nkeys; ++k) {
            if (out_keys_[k][cand] != b.columns[key_idx[k]].lanes[r]) {
              same = false;
              break;
            }
          }
          if (same) {
            g = cand;
            break;
          }
          idx = (idx + 1) & mk_mask;
        }
      }
      for (size_t a = 0; a < naggs; ++a) {
        const Lane v = options_.aggs[a].kind == AggKind::kCountStar
                           ? 0
                           : b.columns[agg_idx[a]].lanes[r];
        agg_internal::Update(options_.aggs[a].kind, agg_types_[a], v,
                             &states[g * naggs + a]);
      }
    }
  }
  child_->Close();

  groups_ = ngroups;
  for (size_t a = 0; a < naggs; ++a) {
    out_aggs_[a].resize(groups_);
    for (uint64_t g = 0; g < groups_; ++g) {
      out_aggs_[a][g] = agg_internal::Finalize(
          options_.aggs[a].kind, agg_types_[a], &states[g * naggs + a]);
    }
  }
  emit_ = 0;
  return Status::OK();
}

Status HashAggregate::Next(Block* block, bool* eos) {
  block->columns.clear();
  if (emit_ >= groups_) {
    *eos = true;
    return Status::OK();
  }
  const size_t take =
      static_cast<size_t>(std::min<uint64_t>(kBlockSize, groups_ - emit_));
  for (size_t k = 0; k < out_keys_.size(); ++k) {
    ColumnVector cv;
    cv.type = key_types_[k];
    cv.heap = key_heaps_[k];
    cv.lanes.assign(out_keys_[k].begin() + static_cast<ptrdiff_t>(emit_),
                    out_keys_[k].begin() + static_cast<ptrdiff_t>(emit_ + take));
    block->columns.push_back(std::move(cv));
  }
  for (size_t a = 0; a < out_aggs_.size(); ++a) {
    ColumnVector cv;
    cv.type = schema_.field(out_keys_.size() + a).type;
    if (cv.type == TypeId::kString) cv.heap = agg_heaps_[a];
    cv.lanes.assign(out_aggs_[a].begin() + static_cast<ptrdiff_t>(emit_),
                    out_aggs_[a].begin() + static_cast<ptrdiff_t>(emit_ + take));
    block->columns.push_back(std::move(cv));
  }
  emit_ += take;
  *eos = false;
  return Status::OK();
}

}  // namespace tde
