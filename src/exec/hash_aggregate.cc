#include "src/exec/hash_aggregate.h"

#include <algorithm>
#include <bit>
#include <string>

namespace tde {

namespace agg_internal {

namespace {
double AsReal(Lane v) { return std::bit_cast<double>(static_cast<uint64_t>(v)); }
Lane RealLane(double d) { return static_cast<Lane>(std::bit_cast<uint64_t>(d)); }

Status SumOverflow() {
  return Status::OutOfRange("integer overflow in SUM: result exceeds int64");
}
}  // namespace

namespace {
/// Three-way comparison of two input lanes under the input's semantics:
/// collated text for string tokens (O(1) on a sorted heap), double for
/// reals, raw int64 otherwise.
int CompareLanes(TypeId type, const StringHeap* heap, Lane a, Lane b) {
  if (type == TypeId::kString && heap != nullptr) {
    return heap->CompareTokens(a, b);
  }
  if (type == TypeId::kReal) {
    return CompareReals(AsReal(a), AsReal(b));
  }
  return a < b ? -1 : (a > b ? 1 : 0);
}
}  // namespace

Status Update(AggKind kind, TypeId type, Lane v, AggState* s,
              const StringHeap* heap) {
  if (kind == AggKind::kCountStar) {
    ++s->n;
    return Status::OK();
  }
  if (v == kNullSentinel) return Status::OK();  // aggregates ignore NULLs
  switch (kind) {
    case AggKind::kCountStar:
      break;
    case AggKind::kCount:
      ++s->n;
      break;
    case AggKind::kSum:
      if (type == TypeId::kReal) {
        s->d += AsReal(v);
      } else if (__builtin_add_overflow(s->i, v, &s->i)) {
        return SumOverflow();
      }
      ++s->n;
      break;
    case AggKind::kMin:
      if (!s->seen || CompareLanes(type, heap, v, s->i) < 0) s->i = v;
      s->seen = true;
      break;
    case AggKind::kMax:
      if (!s->seen || CompareLanes(type, heap, v, s->i) > 0) s->i = v;
      s->seen = true;
      break;
    case AggKind::kAvg:
      s->d += type == TypeId::kReal ? AsReal(v) : static_cast<double>(v);
      ++s->n;
      break;
    case AggKind::kCountDistinct:
      s->distinct.insert(v);
      break;
    case AggKind::kMedian:
      s->values.push_back(v);
      break;
  }
  return Status::OK();
}

Status UpdateColumn(AggKind kind, TypeId type, const Lane* v,
                    const uint32_t* g, size_t n, size_t stride, AggState* s0,
                    const StringHeap* heap) {
  switch (kind) {
    case AggKind::kCountStar:
      for (size_t r = 0; r < n; ++r) ++s0[g[r] * stride].n;
      return Status::OK();
    case AggKind::kCount:
      for (size_t r = 0; r < n; ++r) {
        if (v[r] != kNullSentinel) ++s0[g[r] * stride].n;
      }
      return Status::OK();
    case AggKind::kSum:
      if (type == TypeId::kReal) {
        for (size_t r = 0; r < n; ++r) {
          if (v[r] == kNullSentinel) continue;
          AggState& s = s0[g[r] * stride];
          s.d += AsReal(v[r]);
          ++s.n;
        }
      } else {
        for (size_t r = 0; r < n; ++r) {
          if (v[r] == kNullSentinel) continue;
          AggState& s = s0[g[r] * stride];
          if (__builtin_add_overflow(s.i, v[r], &s.i)) return SumOverflow();
          ++s.n;
        }
      }
      return Status::OK();
    default:
      for (size_t r = 0; r < n; ++r) {
        TDE_RETURN_NOT_OK(Update(kind, type, v[r], &s0[g[r] * stride], heap));
      }
      return Status::OK();
  }
}

Status UpdateRun(AggKind kind, TypeId type, Lane v, uint64_t count,
                 AggState* s, const StringHeap* heap) {
  if (count == 0) return Status::OK();
  if (kind == AggKind::kCountStar) {
    s->n += count;
    return Status::OK();
  }
  if (v == kNullSentinel) return Status::OK();
  switch (kind) {
    case AggKind::kCountStar:
      break;
    case AggKind::kCount:
      s->n += count;
      break;
    case AggKind::kSum:
      if (type == TypeId::kReal) {
        s->d += AsReal(v) * static_cast<double>(count);
      } else {
        // The row-at-a-time path adds v `count` times and errors on the
        // first overflowing prefix; prefixes are monotonic within a run, so
        // checking the run total accepts and rejects exactly the same sums.
        const __int128 total = static_cast<__int128>(s->i) +
                               static_cast<__int128>(v) *
                                   static_cast<__int128>(count);
        if (total > INT64_MAX || total < INT64_MIN) return SumOverflow();
        s->i = static_cast<int64_t>(total);
      }
      s->n += count;
      break;
    case AggKind::kMin:
    case AggKind::kMax:
      return Update(kind, type, v, s, heap);
    case AggKind::kAvg:
      s->d += (type == TypeId::kReal ? AsReal(v) : static_cast<double>(v)) *
              static_cast<double>(count);
      s->n += count;
      break;
    case AggKind::kCountDistinct:
      s->distinct.insert(v);
      break;
    case AggKind::kMedian:
      s->values.insert(s->values.end(), static_cast<size_t>(count), v);
      break;
  }
  return Status::OK();
}

bool FoldableOverRuns(AggKind kind) {
  return kind != AggKind::kMedian;
}

Lane Finalize(AggKind kind, TypeId type, AggState* s,
              const StringHeap* heap) {
  switch (kind) {
    case AggKind::kCountStar:
    case AggKind::kCount:
      return static_cast<Lane>(s->n);
    case AggKind::kSum:
      if (s->n == 0) return kNullSentinel;
      return type == TypeId::kReal ? RealLane(s->d) : s->i;
    case AggKind::kMin:
    case AggKind::kMax:
      return s->seen ? s->i : kNullSentinel;
    case AggKind::kAvg:
      return s->n == 0 ? kNullSentinel : RealLane(s->d / static_cast<double>(s->n));
    case AggKind::kCountDistinct:
      return static_cast<Lane>(s->distinct.size());
    case AggKind::kMedian: {
      if (s->values.empty()) return kNullSentinel;
      const size_t mid = (s->values.size() - 1) / 2;
      std::nth_element(s->values.begin(), s->values.begin() + mid,
                       s->values.end(), [&](Lane a, Lane b) {
                         return CompareLanes(type, heap, a, b) < 0;
                       });
      return s->values[mid];
    }
  }
  return kNullSentinel;
}

TypeId OutputType(AggKind kind, TypeId input_type) {
  switch (kind) {
    case AggKind::kCountStar:
    case AggKind::kCount:
    case AggKind::kCountDistinct:
      return TypeId::kInteger;
    case AggKind::kAvg:
      return TypeId::kReal;
    case AggKind::kSum:
      return input_type == TypeId::kReal ? TypeId::kReal : TypeId::kInteger;
    case AggKind::kMin:
    case AggKind::kMax:
    case AggKind::kMedian:
      return input_type;
  }
  return TypeId::kInteger;
}

}  // namespace agg_internal

namespace {
// Direct token->code arrays stop paying off once the heap outgrows the
// cache; larger heaps fall back to a hash map per heap.
constexpr uint64_t kDirectCacheBytes = 1u << 22;
}  // namespace

uint32_t StringKeyNormalizer::Code(
    const std::shared_ptr<const StringHeap>& heap, Lane token) {
  if (token == kNullSentinel) {
    if (null_code_ == UINT32_MAX) {
      null_code_ = static_cast<uint32_t>(code_tokens_.size());
      code_tokens_.push_back(kNullSentinel);
    }
    return null_code_;
  }
  HeapCache* hc =
      (last_ != nullptr && last_->raw == heap.get()) ? last_ : CacheFor(heap);
  if (hc->use_direct) {
    uint32_t& slot = hc->direct[static_cast<size_t>(token)];
    if (slot != 0) return slot - 1;
    const uint32_t code = Assign(hc, token);
    slot = code + 1;
    return code;
  }
  auto it = hc->spill.find(token);
  if (it != hc->spill.end()) return it->second;
  const uint32_t code = Assign(hc, token);
  hc->spill.emplace(token, code);
  return code;
}

StringKeyNormalizer::HeapCache* StringKeyNormalizer::CacheFor(
    const std::shared_ptr<const StringHeap>& heap) {
  for (const auto& hc : heaps_) {
    if (hc->raw == heap.get()) {
      last_ = hc.get();
      return last_;
    }
  }
  if (!heaps_.empty() && canon_ == nullptr) {
    // A second heap: tokens are no longer a shared namespace. Re-key every
    // code onto a canonical heap (first-seen order) — one decode per
    // distinct value so far, none per row.
    const StringHeap& first = *heaps_[0]->keep;
    canon_ = std::make_shared<StringHeap>(first.collation());
    for (uint32_t c = 0; c < code_tokens_.size(); ++c) {
      if (code_tokens_[c] == kNullSentinel) continue;  // the NULL code
      std::string s(first.Get(code_tokens_[c]));
      code_tokens_[c] = canon_->Add(s);
      code_by_string_.emplace(std::move(s), c);
    }
  }
  auto hc = std::make_unique<HeapCache>();
  hc->raw = heap.get();
  hc->keep = heap;
  if (heap->byte_size() <= kDirectCacheBytes) {
    hc->direct.assign(static_cast<size_t>(heap->byte_size()), 0);
  } else {
    hc->use_direct = false;
  }
  heaps_.push_back(std::move(hc));
  last_ = heaps_.back().get();
  return last_;
}

uint32_t StringKeyNormalizer::Assign(HeapCache* hc, Lane token) {
  if (canon_ == nullptr) {
    // Single-heap mode: the input heap is the emit heap, the token itself
    // renders the group — nothing is decoded.
    const uint32_t code = static_cast<uint32_t>(code_tokens_.size());
    code_tokens_.push_back(token);
    return code;
  }
  std::string s(hc->keep->Get(token));
  auto it = code_by_string_.find(s);
  if (it != code_by_string_.end()) return it->second;
  const uint32_t code = static_cast<uint32_t>(code_tokens_.size());
  const Lane ct = canon_->Add(s);
  code_tokens_.push_back(ct);
  code_by_string_.emplace(std::move(s), code);
  return code;
}

std::shared_ptr<const StringHeap> StringKeyNormalizer::emit_heap() const {
  if (canon_ != nullptr) return canon_;
  return heaps_.empty() ? nullptr : heaps_[0]->keep;
}

HashAggregate::HashAggregate(std::unique_ptr<Operator> child,
                             AggregateOptions options)
    : child_(std::move(child)), options_(std::move(options)) {}

Status HashAggregate::BuildSchema() {
  schema_ = Schema();
  const Schema& in = child_->output_schema();
  key_types_.clear();
  agg_types_.clear();
  for (const std::string& k : options_.group_by) {
    TDE_ASSIGN_OR_RETURN(size_t i, in.FieldIndex(k));
    key_types_.push_back(in.field(i).type);
    schema_.AddField({k, in.field(i).type});
  }
  for (const AggSpec& a : options_.aggs) {
    TypeId input_type = TypeId::kInteger;
    if (a.kind != AggKind::kCountStar) {
      TDE_ASSIGN_OR_RETURN(size_t i, in.FieldIndex(a.input));
      input_type = in.field(i).type;
    }
    const TypeId out = agg_internal::OutputType(a.kind, input_type);
    agg_types_.push_back(input_type);
    schema_.AddField({a.output, out});
  }
  return Status::OK();
}

Status HashAggregate::Open() {
  TDE_RETURN_NOT_OK(child_->Open());
  TDE_RETURN_NOT_OK(BuildSchema());
  const Schema& in = child_->output_schema();

  std::vector<size_t> key_idx;
  for (const std::string& k : options_.group_by) {
    TDE_ASSIGN_OR_RETURN(size_t i, in.FieldIndex(k));
    key_idx.push_back(i);
  }
  std::vector<size_t> agg_idx;
  for (const AggSpec& a : options_.aggs) {
    size_t i = 0;
    if (a.kind != AggKind::kCountStar) {
      TDE_ASSIGN_OR_RETURN(i, in.FieldIndex(a.input));
    }
    agg_idx.push_back(i);
  }

  const size_t nkeys = key_idx.size();
  const size_t naggs = agg_idx.size();
  out_keys_.assign(nkeys, {});
  out_aggs_.assign(naggs, {});
  key_heaps_.assign(nkeys, nullptr);
  agg_heaps_.assign(naggs, nullptr);
  groups_late_materialized_ = 0;

  // Dictionary-code grouping (Sect. 4, "decode as late as possible"): each
  // string key gets a per-heap translation cache; the per-key decision is
  // made on the first non-empty block, when the key's heap is visible.
  std::vector<std::unique_ptr<StringKeyNormalizer>> norms(nkeys);
  // -1 undecided, 0 raw, 1 codes, 2 pre-coded (dict-code scan: lanes are
  // dense entry-table codes, decoded once per group on first occurrence)
  std::vector<int> norm_state(nkeys, -1);
  std::vector<std::shared_ptr<const ArrayDictionary>> key_dicts(nkeys);
  std::vector<std::vector<uint32_t>> code_groups(nkeys);  // code -> g + 1

  // Tactical single-key path: GroupMap with the hinted algorithm.
  std::unique_ptr<GroupMap> single;
  algorithm_used_ = options_.hash_algorithm.value_or(HashAlgorithm::kCollision);
  if (nkeys == 1) {
    single = std::make_unique<GroupMap>(algorithm_used_, options_.key_min,
                                        options_.key_max);
  }
  // Multi-key path: open-addressed map over mixed hashes of the tuple.
  std::vector<uint64_t> mk_slots;   // group id + 1, 0 = empty
  uint64_t mk_mask = 0;
  if (nkeys > 1) {
    mk_slots.assign(1u << 12, 0);
    mk_mask = mk_slots.size() - 1;
    algorithm_used_ = HashAlgorithm::kCollision;
  }

  // One state per (group, aggregate) pair, stride naggs.
  uint64_t ngroups = nkeys == 0 ? 1 : 0;
  std::vector<AggState> states(ngroups * naggs);
  std::vector<Lane> keyrow(nkeys);

  // The update loop below runs once per (row, aggregate): keep its operands
  // in flat arrays instead of chasing options_/schema indirections per row.
  std::vector<AggKind> agg_kinds(naggs);
  for (size_t a = 0; a < naggs; ++a) agg_kinds[a] = options_.aggs[a].kind;
  std::vector<const Lane*> agg_lanes(naggs, nullptr);
  const TypeId* agg_ts = agg_types_.data();
  std::vector<uint32_t> gids;  // per-block row -> group id

  while (true) {
    Block b;
    bool eos = false;
    TDE_RETURN_NOT_OK(child_->Next(&b, &eos));
    if (eos) break;
    const size_t n = b.rows();
    for (size_t k = 0; k < nkeys; ++k) {
      if (norm_state[k] == -1 && n > 0) {
        const ColumnVector& cv = b.columns[key_idx[k]];
        if (cv.dict != nullptr) {
          // Pre-coded lanes must be interpreted against the entry table
          // regardless of the dict_code_keys option — the kill switch
          // gates the plan rewrite, not this consumption.
          norm_state[k] = 2;
          key_dicts[k] = cv.dict;
          code_groups[k].assign(cv.dict->values.size(), 0);
        } else {
          const bool on = options_.dict_code_keys &&
                          cv.type == TypeId::kString && cv.heap != nullptr;
          norm_state[k] = on ? 1 : 0;
          if (on) norms[k] = std::make_unique<StringKeyNormalizer>();
        }
      }
      if (key_heaps_[k] == nullptr) key_heaps_[k] = b.columns[key_idx[k]].heap;
    }
    for (size_t a = 0; a < naggs; ++a) {
      if (agg_heaps_[a] == nullptr && agg_kinds[a] != AggKind::kCountStar) {
        agg_heaps_[a] = b.columns[agg_idx[a]].heap;
      }
      agg_lanes[a] = agg_kinds[a] == AggKind::kCountStar
                         ? nullptr
                         : b.columns[agg_idx[a]].lanes.data();
    }
    const Lane* key_lanes = nkeys == 1
                                ? b.columns[key_idx[0]].lanes.data()
                                : nullptr;
    // Group resolution and aggregate updates run column-at-a-time: resolve
    // every row's group first, then fold each aggregate input with a single
    // kind/type dispatch for the block.
    if (gids.size() < n) gids.resize(n);
    for (size_t r = 0; r < n; ++r) {
      uint32_t g;
      if (nkeys == 0) {
        g = 0;
      } else if (nkeys == 1) {
        const ColumnVector& kv = b.columns[key_idx[0]];
        if (norm_state[0] == 1) {
          // Codes are dense and first-occurrence ordered: the code IS the
          // group id, no hashing at all.
          g = norms[0]->Code(kv.heap, key_lanes[r]);
          if (g >= ngroups) {
            ngroups = g + 1;
            states.resize(ngroups * naggs);
          }
        } else if (norm_state[0] == 2) {
          // Pre-coded: one array slot per dictionary entry, and the key
          // token materializes from the entry table once per group.
          uint32_t& slot = code_groups[0][static_cast<size_t>(key_lanes[r])];
          if (slot == 0) {
            out_keys_[0].push_back(
                key_dicts[0]->values[static_cast<size_t>(key_lanes[r])]);
            slot = static_cast<uint32_t>(ngroups) + 1;
            ++ngroups;
            states.resize(ngroups * naggs);
          }
          g = slot - 1;
        } else {
          g = single->GetOrInsert(key_lanes[r]);
          if (g >= ngroups) {
            ngroups = g + 1;
            states.resize(ngroups * naggs);
            out_keys_[0].push_back(key_lanes[r]);
          }
        }
      } else {
        for (size_t k = 0; k < nkeys; ++k) {
          const ColumnVector& kv = b.columns[key_idx[k]];
          keyrow[k] =
              norm_state[k] == 1
                  ? static_cast<Lane>(norms[k]->Code(kv.heap, kv.lanes[r]))
              : norm_state[k] == 2
                  // Resolve pre-coded lanes to tokens: multi-key groups
                  // hash the tuple, so keys must be a stable namespace.
                  ? key_dicts[k]->values[static_cast<size_t>(kv.lanes[r])]
                  : kv.lanes[r];
        }
        uint64_t h = 0xcbf29ce484222325ULL;
        for (size_t k = 0; k < nkeys; ++k) {
          h = Mix64(h ^ static_cast<uint64_t>(keyrow[k]));
        }
        uint64_t idx = h & mk_mask;
        while (true) {
          if (mk_slots[idx] == 0) {
            // New group.
            g = static_cast<uint32_t>(ngroups);
            mk_slots[idx] = g + 1;
            ++ngroups;
            states.resize(ngroups * naggs);
            for (size_t k = 0; k < nkeys; ++k) {
              out_keys_[k].push_back(keyrow[k]);
            }
            // Grow when half full.
            if (ngroups * 2 > mk_slots.size()) {
              std::vector<uint64_t> old = std::move(mk_slots);
              mk_slots.assign(old.size() * 2, 0);
              mk_mask = mk_slots.size() - 1;
              for (uint64_t gid = 0; gid < ngroups; ++gid) {
                uint64_t h2 = 0xcbf29ce484222325ULL;
                for (size_t k = 0; k < nkeys; ++k) {
                  h2 = Mix64(h2 ^ static_cast<uint64_t>(out_keys_[k][gid]));
                }
                uint64_t i2 = h2 & mk_mask;
                while (mk_slots[i2] != 0) i2 = (i2 + 1) & mk_mask;
                mk_slots[i2] = gid + 1;
              }
            }
            break;
          }
          const uint32_t cand = static_cast<uint32_t>(mk_slots[idx] - 1);
          bool same = true;
          for (size_t k = 0; k < nkeys; ++k) {
            if (out_keys_[k][cand] != keyrow[k]) {
              same = false;
              break;
            }
          }
          if (same) {
            g = cand;
            break;
          }
          idx = (idx + 1) & mk_mask;
        }
      }
      gids[r] = g;
    }
    for (size_t a = 0; a < naggs; ++a) {
      TDE_RETURN_NOT_OK(agg_internal::UpdateColumn(
          agg_kinds[a], agg_ts[a], agg_lanes[a], gids.data(), n, naggs,
          states.data() + a, agg_heaps_[a].get()));
    }
  }
  child_->Close();

  groups_ = ngroups;
  // Late materialization: resolve group codes back to key tokens — one
  // string per group, never one per row.
  bool late = false;
  for (size_t k = 0; k < nkeys; ++k) {
    if (norm_state[k] == 2) {
      // Pre-coded keys materialized from the entry table as groups were
      // created — already one decode per group.
      late = true;
      if (nkeys == 1) algorithm_used_ = HashAlgorithm::kDirect;
      continue;
    }
    if (norm_state[k] != 1) continue;
    late = true;
    key_heaps_[k] = norms[k]->emit_heap();
    if (nkeys == 1) {
      out_keys_[0].resize(groups_);
      for (uint64_t g = 0; g < groups_; ++g) {
        out_keys_[0][g] = norms[0]->Token(static_cast<uint32_t>(g));
      }
      algorithm_used_ = HashAlgorithm::kDirect;
    } else {
      for (uint64_t g = 0; g < groups_; ++g) {
        out_keys_[k][g] =
            norms[k]->Token(static_cast<uint32_t>(out_keys_[k][g]));
      }
    }
  }
  if (late) groups_late_materialized_ = groups_;
  for (size_t a = 0; a < naggs; ++a) {
    out_aggs_[a].resize(groups_);
    for (uint64_t g = 0; g < groups_; ++g) {
      out_aggs_[a][g] = agg_internal::Finalize(
          options_.aggs[a].kind, agg_types_[a], &states[g * naggs + a],
          agg_heaps_[a].get());
    }
  }
  emit_ = 0;
  return Status::OK();
}

Status HashAggregate::Next(Block* block, bool* eos) {
  block->columns.clear();
  if (emit_ >= groups_) {
    *eos = true;
    return Status::OK();
  }
  const size_t take =
      static_cast<size_t>(std::min<uint64_t>(kBlockSize, groups_ - emit_));
  for (size_t k = 0; k < out_keys_.size(); ++k) {
    ColumnVector cv;
    cv.type = key_types_[k];
    cv.heap = key_heaps_[k];
    cv.lanes.assign(out_keys_[k].begin() + static_cast<ptrdiff_t>(emit_),
                    out_keys_[k].begin() + static_cast<ptrdiff_t>(emit_ + take));
    block->columns.push_back(std::move(cv));
  }
  for (size_t a = 0; a < out_aggs_.size(); ++a) {
    ColumnVector cv;
    cv.type = schema_.field(out_keys_.size() + a).type;
    if (cv.type == TypeId::kString) cv.heap = agg_heaps_[a];
    cv.lanes.assign(out_aggs_[a].begin() + static_cast<ptrdiff_t>(emit_),
                    out_aggs_[a].begin() + static_cast<ptrdiff_t>(emit_ + take));
    block->columns.push_back(std::move(cv));
  }
  emit_ += take;
  *eos = false;
  return Status::OK();
}

}  // namespace tde
