#include "src/exec/project.h"

namespace tde {

Project::Project(std::unique_ptr<Operator> child,
                 std::vector<ProjectedColumn> cols)
    : child_(std::move(child)), cols_(std::move(cols)) {}

Status Project::Open() {
  TDE_RETURN_NOT_OK(child_->Open());
  schema_ = Schema();
  for (const auto& pc : cols_) {
    TDE_ASSIGN_OR_RETURN(TypeId t,
                         pc.expr->ResultType(child_->output_schema()));
    schema_.AddField({pc.name, t});
  }
  return Status::OK();
}

Status Project::Next(Block* block, bool* eos) {
  Block in;
  TDE_RETURN_NOT_OK(child_->Next(&in, eos));
  block->columns.clear();
  if (*eos) return Status::OK();
  block->columns.reserve(cols_.size());
  for (const auto& pc : cols_) {
    TDE_ASSIGN_OR_RETURN(ColumnVector v,
                         pc.expr->Eval(in, child_->output_schema()));
    block->columns.push_back(std::move(v));
  }
  return Status::OK();
}

}  // namespace tde
