#include "src/plan/plan.h"

namespace tde {

Plan Plan::Scan(std::shared_ptr<const Table> table,
                std::vector<std::string> columns) {
  Plan p;
  p.root_ = std::make_shared<PlanNode>();
  p.root_->kind = PlanNodeKind::kScan;
  p.root_->table = std::move(table);
  p.root_->columns = std::move(columns);
  return p;
}

Plan Plan::Filter(ExprPtr predicate) && {
  auto n = std::make_shared<PlanNode>();
  n->kind = PlanNodeKind::kFilter;
  n->predicate = std::move(predicate);
  n->children.push_back(std::move(root_));
  root_ = std::move(n);
  return std::move(*this);
}

Plan Plan::Project(std::vector<ProjectedColumn> projections) && {
  auto n = std::make_shared<PlanNode>();
  n->kind = PlanNodeKind::kProject;
  n->projections = std::move(projections);
  n->children.push_back(std::move(root_));
  root_ = std::move(n);
  return std::move(*this);
}

Plan Plan::Aggregate(std::vector<std::string> group_by,
                     std::vector<AggSpec> aggs) && {
  auto n = std::make_shared<PlanNode>();
  n->kind = PlanNodeKind::kAggregate;
  n->agg.group_by = std::move(group_by);
  n->agg.aggs = std::move(aggs);
  n->children.push_back(std::move(root_));
  root_ = std::move(n);
  return std::move(*this);
}

Plan Plan::OrderBy(std::vector<SortKey> keys) && {
  auto n = std::make_shared<PlanNode>();
  n->kind = PlanNodeKind::kSort;
  n->sort_keys = std::move(keys);
  n->children.push_back(std::move(root_));
  root_ = std::move(n);
  return std::move(*this);
}

Plan Plan::Join(std::shared_ptr<const Table> inner, HashJoinOptions join) && {
  auto n = std::make_shared<PlanNode>();
  n->kind = PlanNodeKind::kJoinTable;
  n->inner_table = std::move(inner);
  n->join = std::move(join);
  n->children.push_back(std::move(root_));
  root_ = std::move(n);
  return std::move(*this);
}

Plan Plan::ExchangeBy(int workers, bool order_preserving) && {
  auto n = std::make_shared<PlanNode>();
  n->kind = PlanNodeKind::kExchange;
  n->exchange_workers = workers;
  n->order_preserving = order_preserving;
  n->children.push_back(std::move(root_));
  root_ = std::move(n);
  return std::move(*this);
}

Plan Plan::Limit(uint64_t n) && {
  auto node = std::make_shared<PlanNode>();
  node->kind = PlanNodeKind::kLimit;
  node->limit = n;
  node->children.push_back(std::move(root_));
  root_ = std::move(node);
  return std::move(*this);
}

Plan Plan::Materialize(FlowTableOptions options) && {
  auto n = std::make_shared<PlanNode>();
  n->kind = PlanNodeKind::kMaterialize;
  n->flow = std::move(options);
  n->children.push_back(std::move(root_));
  root_ = std::move(n);
  return std::move(*this);
}

namespace {
void Print(const PlanNodePtr& node, int depth, std::string* out) {
  static const char* kNames[] = {
      "Scan",      "Filter",        "Project",     "Aggregate",
      "Sort",      "JoinTable",     "InvisibleJoin", "IndexedScan",
      "Exchange",  "Materialize",   "Limit",       "TopN"};
  out->append(static_cast<size_t>(depth) * 2, ' ');
  out->append(kNames[static_cast<int>(node->kind)]);
  switch (node->kind) {
    case PlanNodeKind::kScan:
      out->append("(" + node->table->name() + ")");
      break;
    case PlanNodeKind::kFilter:
      out->append("(" + node->predicate->ToString() + ")");
      break;
    case PlanNodeKind::kInvisibleJoin:
      out->append("(" + node->dict_column + ")");
      break;
    case PlanNodeKind::kIndexedScan:
      out->append("(" + node->index_column + ")");
      if (node->sort_runs) out->append("[run-sort]");
      break;
    case PlanNodeKind::kTopN:
      out->append("(" + std::to_string(node->limit) + ")");
      break;
    case PlanNodeKind::kAggregate:
      if (node->metadata_answered) out->append("[metadata]");
      if (node->fold_runs) out->append("[fold-runs]");
      if (node->grouped_input) out->append("[ordered]");
      break;
    case PlanNodeKind::kExchange:
      out->append(node->order_preserving ? "[ordered]" : "[unordered]");
      break;
    default:
      break;
  }
  out->push_back('\n');
  for (const auto& c : node->children) Print(c, depth + 1, out);
}
}  // namespace

std::string PlanToString(const PlanNodePtr& node) {
  std::string out;
  Print(node, 0, &out);
  return out;
}

PlanNodePtr ClonePlan(const PlanNodePtr& node) {
  if (node == nullptr) return nullptr;
  auto copy = std::make_shared<PlanNode>(*node);
  for (PlanNodePtr& child : copy->children) child = ClonePlan(child);
  return copy;
}

}  // namespace tde
