#ifndef TDE_PLAN_TACTICAL_H_
#define TDE_PLAN_TACTICAL_H_

#include <map>
#include <string>

#include "src/common/hash.h"
#include "src/encoding/metadata.h"
#include "src/exec/indexed_scan.h"

namespace tde {

/// Per-column properties derived on the go during plan lowering
/// (Sect. 2.3.1's "this time property derivation happens on-the-go and can
/// be more accurate"). Width matters because hash algorithm choice is a
/// function of key width (Sect. 2.3.4).
struct ColumnProps {
  ColumnMetadata meta;
  uint8_t width = 8;
};

using PropMap = std::map<std::string, ColumnProps>;

/// Tactical choice of grouping algorithm for a single aggregation key.
struct GroupingChoice {
  HashAlgorithm algorithm = HashAlgorithm::kCollision;
  int64_t key_min = 0;
  int64_t key_max = 0;
};
GroupingChoice ChooseGrouping(const ColumnProps& key);

/// Tactical choice for an IndexedScan feeding an aggregation
/// (Sect. 4.2.2/6.6): sorting the index by value enables ordered
/// aggregation, but if the runs are small the many small blocks cost more
/// than the ordered aggregation saves. The threshold is the block
/// iteration size, per the paper's conclusion.
struct IndexedAggChoice {
  bool sort_index = false;
  bool ordered_aggregation = false;
};
IndexedAggChoice ChooseIndexedAggregation(
    const std::vector<IndexEntry>& entries, bool already_value_ordered);

}  // namespace tde

#endif  // TDE_PLAN_TACTICAL_H_
