#include "src/plan/tactical.h"

namespace tde {

GroupingChoice ChooseGrouping(const ColumnProps& key) {
  GroupingChoice c;
  // The hash sees decoded lanes, so the deciding width is that of the
  // value range, not of the stored (possibly dictionary-packed) tokens.
  const uint8_t value_width =
      key.meta.min_max_known
          ? MinSignedWidth(key.meta.min_value, key.meta.max_value)
          : key.width;
  c.algorithm = ChooseHashAlgorithm(value_width, key.meta.min_max_known,
                                    key.meta.min_value, key.meta.max_value);
  c.key_min = key.meta.min_value;
  c.key_max = key.meta.max_value;
  return c;
}

IndexedAggChoice ChooseIndexedAggregation(
    const std::vector<IndexEntry>& entries, bool already_value_ordered) {
  IndexedAggChoice c;
  if (already_value_ordered) {
    // Primary sort key: the index is in value order for free.
    c.ordered_aggregation = true;
    return c;
  }
  if (entries.empty()) return c;
  uint64_t total = 0;
  for (const IndexEntry& e : entries) total += e.count;
  const uint64_t avg_run = total / entries.size();
  // Runs shorter than the block iteration size make the system process
  // many more small blocks, degrading past what ordered aggregation can
  // compensate (Sect. 6.6).
  if (avg_run >= kBlockSize) {
    c.sort_index = true;
    c.ordered_aggregation = true;
  }
  return c;
}

}  // namespace tde
